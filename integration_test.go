package repro

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dashboard"
	"repro/internal/hpcsim"
	"repro/internal/metricsdb"
	"repro/internal/ramble"
)

// TestIntegrationContinuousBenchmarking simulates a deployment over
// several "days": nightly suites run on two systems, results
// accumulate in one metrics database, the dashboard summarizes them,
// and an injected system change is caught as a regression.
func TestIntegrationContinuousBenchmarking(t *testing.T) {
	bp := core.New()

	// Three nights of saxpy on two systems.
	for night := 0; night < 3; night++ {
		for _, sysName := range []string{"cts1", "cloud-c5n"} {
			sess, err := bp.Setup("saxpy/openmp", sysName, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			rep, err := sess.RunAll()
			if err != nil {
				t.Fatal(err)
			}
			if rep.Failed > 0 {
				t.Fatalf("night %d on %s: %d failed", night, sysName, rep.Failed)
			}
		}
	}
	// 3 nights × 2 systems × 8 experiments.
	if got := bp.Metrics.Len(); got != 48 {
		t.Fatalf("metrics results = %d, want 48", got)
	}

	// Determinism across nights: identical FOM series per experiment.
	series := bp.Metrics.Series(metricsdb.Filter{
		Benchmark: "saxpy", System: "cts1", Experiment: "saxpy_openmp_512_1_8_2",
	}, "saxpy_time")
	if len(series) != 3 {
		t.Fatalf("series = %v", series)
	}
	if series[0].Value != series[1].Value || series[1].Value != series[2].Value {
		t.Errorf("nightly runs not reproducible: %v", series)
	}

	// The dashboard reflects both systems.
	dash := dashboard.Text(bp.Metrics)
	if !strings.Contains(dash, "cts1") || !strings.Contains(dash, "cloud-c5n") {
		t.Errorf("dashboard:\n%s", dash)
	}

	// The same experiment is slower on the cloud (higher network
	// latency shows in multi-node runs).
	ctsRes := bp.Metrics.Query(metricsdb.Filter{System: "cts1", Experiment: "saxpy_openmp_512_2_8_2"})
	cloudRes := bp.Metrics.Query(metricsdb.Filter{System: "cloud-c5n", Experiment: "saxpy_openmp_512_2_8_2"})
	if len(ctsRes) == 0 || len(cloudRes) == 0 {
		t.Fatal("missing cross-system results")
	}
	if cloudRes[0].FOMs["saxpy_time"] <= ctsRes[0].FOMs["saxpy_time"] {
		t.Errorf("cloud (%v) should be slower than cts1 (%v) on 2-node runs",
			cloudRes[0].FOMs["saxpy_time"], ctsRes[0].FOMs["saxpy_time"])
	}
}

// TestIntegrationManifestReproducibility: the manifest stored with a
// result is enough to identify the exact software stack (Section 5).
func TestIntegrationManifestReproducibility(t *testing.T) {
	bp := core.New()
	sess, err := bp.Setup("amg2023/openmp", "cts1", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RunAll(); err != nil {
		t.Fatal(err)
	}
	results := bp.Metrics.Query(metricsdb.Filter{Benchmark: "amg2023"})
	if len(results) == 0 {
		t.Fatal("no results")
	}
	m := results[0].Manifest
	for _, want := range []string{"system: cts1", "suite: amg2023/openmp", "root: amg2023@1.0"} {
		if !strings.Contains(m, want) {
			t.Errorf("manifest missing %q:\n%s", want, m)
		}
	}
	// The database round-trips through JSON with manifests intact.
	js, err := bp.Metrics.SaveJSON()
	if err != nil {
		t.Fatal(err)
	}
	db2, err := metricsdb.LoadJSON(js)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Query(metricsdb.Filter{Benchmark: "amg2023"})[0].Manifest != m {
		t.Error("manifest lost in persistence")
	}
}

// TestIntegrationHPCGSuite runs the hpcg suite (with the papi
// modifier) end to end and checks the modifier FOMs flow to the
// metrics database.
func TestIntegrationHPCGSuite(t *testing.T) {
	bp := core.New()
	sess, err := bp.Setup("hpcg/hpcg", "ats4", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed > 0 || rep.Total != 2 {
		t.Fatalf("hpcg: %d/%d failed", rep.Failed, rep.Total)
	}
	for _, e := range rep.Experiments {
		if e.FOMs["gflops"] == "" {
			t.Errorf("%s: no gflops FOM: %v", e.Name, e.FOMs)
		}
		if e.FOMs["papi_fp_ops"] == "" {
			t.Errorf("%s: papi modifier FOM missing: %v", e.Name, e.FOMs)
		}
		g, err := strconv.ParseFloat(e.FOMs["gflops"], 64)
		if err != nil || g <= 0 {
			t.Errorf("%s: gflops = %q", e.Name, e.FOMs["gflops"])
		}
	}
	results := bp.Metrics.Query(metricsdb.Filter{Benchmark: "hpcg"})
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if _, ok := results[0].FOMs["papi_fp_ops"]; !ok {
		t.Error("modifier FOM not persisted to metrics db")
	}
}

// TestIntegrationWorkspaceOnDisk verifies the generated workspace
// matches Figure 1a's layout, including the analyze outputs.
func TestIntegrationWorkspaceOnDisk(t *testing.T) {
	bp := core.New()
	dir := t.TempDir()
	sess, err := bp.Setup("saxpy/openmp", "cts1", dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"configs", "experiments", "logs"} {
		if fi, err := os.Stat(filepath.Join(dir, sub)); err != nil || !fi.IsDir() {
			t.Errorf("missing workspace dir %s", sub)
		}
	}
	for _, cfg := range []string{"compilers.yaml", "packages.yaml", "spack.yaml", "variables.yaml", "ramble.yaml"} {
		if _, err := os.Stat(filepath.Join(dir, "configs", cfg)); err != nil {
			t.Errorf("missing config %s", cfg)
		}
	}
	for _, e := range rep.Experiments {
		if _, err := os.Stat(filepath.Join(e.Dir, "execute_experiment.sh")); err != nil {
			t.Errorf("%s: script missing", e.Name)
		}
		if _, err := os.Stat(filepath.Join(e.Dir, e.Name+".out")); err != nil {
			t.Errorf("%s: output missing", e.Name)
		}
	}
}

// TestIntegrationAllSuitesOnAllCompatibleSystems smoke-tests every
// registered suite against every system it supports.
func TestIntegrationAllSuitesOnAllCompatibleSystems(t *testing.T) {
	if testing.Short() {
		t.Skip("long smoke matrix")
	}
	bp := core.New()
	ran := 0
	for _, suite := range core.ExperimentTemplates() {
		if strings.HasPrefix(suite, "osu/") {
			continue // scaling sweeps are covered by Figure 14 tests
		}
		for _, sysName := range []string{"cts1", "ats2", "ats4", "cloud-c5n", "fugaku-a64fx"} {
			sess, err := bp.Setup(suite, sysName, t.TempDir())
			if err != nil {
				// GPU variants on incompatible systems are expected to
				// be rejected at setup.
				continue
			}
			rep, err := sess.RunAll()
			if err != nil {
				t.Errorf("%s on %s: %v", suite, sysName, err)
				continue
			}
			if rep.Failed > 0 {
				for _, e := range rep.Experiments {
					if e.Status == ramble.Failed {
						t.Errorf("%s on %s: %s failed: %s", suite, sysName, e.Name, e.FailMsg)
					}
				}
			}
			ran++
		}
	}
	if ran < 15 {
		t.Errorf("only %d suite×system combinations ran", ran)
	}
	if len(bp.Metrics.Systems()) < 5 {
		t.Errorf("systems covered: %v", bp.Metrics.Systems())
	}
}

// TestIntegrationSection71ViaSuites: the cloud twin runs the suite
// rebuilt for its own target even though binaries from the on-prem
// twin would crash.
func TestIntegrationSection71ViaSuites(t *testing.T) {
	onprem, _ := hpcsim.Get("onprem-icelake")
	cloud, _ := hpcsim.Get("cloud-m6i")
	opArch, err := onprem.Microarch()
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := cloud.CanRunBinary(opArch.Name); ok {
		t.Fatal("cloud should reject the on-prem binary")
	}
	bp := core.New()
	sess, err := bp.Setup("saxpy/openmp", "cloud-m6i", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed > 0 {
		t.Fatalf("rebuilt suite failed on the cloud twin: %d", rep.Failed)
	}
	s, err := sess.InstalledSpec("saxpy")
	if err != nil {
		t.Fatal(err)
	}
	cloudArch, _ := cloud.Microarch()
	if s.Target != cloudArch.Name {
		t.Errorf("rebuild targeted %q, want detected %q", s.Target, cloudArch.Name)
	}
}

// TestIntegrationHardwareFaultDiagnosis models Section 1's "tracking
// system performance over time and diagnosing hardware failures": a
// DIMM failure halves memory bandwidth; continuous STREAM runs catch
// it as a throughput regression.
func TestIntegrationHardwareFaultDiagnosis(t *testing.T) {
	healthy, err := hpcsim.Get("cts1")
	if err != nil {
		t.Fatal(err)
	}
	degraded := healthy.Clone()
	degraded.Node.MemBWGBs /= 2 // lost one memory channel set

	b, err := bench.Get("stream")
	if err != nil {
		t.Fatal(err)
	}
	app, err := ramble.GetApplication("stream")
	if err != nil {
		t.Fatal(err)
	}
	db := metricsdb.New()
	run := func(sys *hpcsim.System) float64 {
		out, err := b.Run(bench.Params{
			System: sys, Ranks: 1, RanksPerNode: 1, Threads: sys.Node.Cores(),
			Vars: map[string]string{"n": "1000000", "iterations": "3"},
		})
		if err != nil {
			t.Fatal(err)
		}
		foms := metricsdb.ParseFOMs(app.ExtractFOMs(out.Text))
		db.Add(metricsdb.Result{Benchmark: "stream", System: "cts1", FOMs: foms})
		return foms["triad_bw"]
	}
	// Five healthy nights, then the fault.
	var healthyBW float64
	for i := 0; i < 5; i++ {
		healthyBW = run(healthy)
	}
	degradedBW := run(degraded)
	if degradedBW >= healthyBW*0.7 {
		t.Fatalf("degradation invisible: %v vs %v GB/s", degradedBW, healthyBW)
	}
	regs := db.DetectRegressions(metricsdb.Filter{Benchmark: "stream"}, "triad_bw", 4, 0.8)
	if len(regs) != 1 {
		t.Fatalf("regressions = %v", regs)
	}
	if regs[0].Ratio > 0.7 {
		t.Errorf("ratio = %v, expected ~0.5 after losing half the bandwidth", regs[0].Ratio)
	}
}
