// Command fedsmoke is the verify gate's end-to-end check of the
// results federation plane: it builds the real benchpark binary,
// boots a 4-shard primary and one snapshot-shipping follower on
// ephemeral ports, drives them with `benchpark loadtest` (≥100
// simulated federated runners), and asserts the contracts the
// federation layer exists for:
//
//   - the follower keeps serving reads WHILE the primary ingests;
//   - the follower's lag gauge drains to zero and its reads are then
//     byte-identical to the primary's across every query route;
//   - a shard driven past its bounded queue answers 429 +
//     Retry-After (typed ErrOverloaded) promptly — never a hang;
//   - the recorded benchmark files (BENCH_resultstore.json,
//     BENCH_benchlint.json) dogfood-push through the sharded service
//     and are queryable back out.
//
// Like opssmoke it exercises the binary and flag plumbing; the
// in-process federation tests already cover the handlers.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sync"
	"time"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fedsmoke: "+format+"\n", args...)
	os.Exit(1)
}

var httpc = &http.Client{Timeout: 10 * time.Second}

// get fetches base+path and returns status and body.
func get(base, path string) (int, []byte) {
	resp, err := httpc.Get(base + path)
	if err != nil {
		fatalf("GET %s%s: %v", base, path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("GET %s%s: reading body: %v", base, path, err)
	}
	return resp.StatusCode, body
}

// server is one running `benchpark serve` process.
type server struct {
	cmd  *exec.Cmd
	base string
}

func (s *server) stop() {
	s.cmd.Process.Kill()
	s.cmd.Wait()
}

// startServe launches the binary with the given serve arguments and
// waits for the announce line carrying the ephemeral address.
func startServe(bin string, args ...string) *server {
	cmd := exec.Command(bin, append([]string{"serve", "--addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fatalf("%v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		fatalf("starting serve %v: %v", args, err)
	}
	base, err := awaitAnnounce(stdout)
	if err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		fatalf("serve %v: %v", args, err)
	}
	return &server{cmd: cmd, base: base}
}

var announceRE = regexp.MustCompile(`on (http://\S+),`)

// awaitAnnounce scans serve's stdout for the announce line
// ("==> resultsd serving N results on http://HOST:PORT, MODE") and
// returns the base URL, draining the pipe afterwards.
func awaitAnnounce(stdout io.Reader) (string, error) {
	type scanResult struct {
		base string
		err  error
	}
	ch := make(chan scanResult, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := announceRE.FindStringSubmatch(sc.Text()); m != nil {
				ch <- scanResult{base: m[1]}
				for sc.Scan() { // keep draining so the child never blocks
				}
				return
			}
		}
		ch <- scanResult{err: fmt.Errorf("serve exited before announcing its address (scan err: %v)", sc.Err())}
	}()
	select {
	case r := <-ch:
		return r.base, r.err
	case <-time.After(30 * time.Second):
		return "", fmt.Errorf("serve did not announce its address within 30s")
	}
}

// followerStatus mirrors the /v1/replica/status body.
type followerStatus struct {
	Synced     bool   `json:"synced"`
	Syncs      int    `json:"syncs"`
	LagResults int    `json:"lag_results"`
	LastError  string `json:"last_error,omitempty"`
}

// loadReport mirrors the fields of loadgen.Report this smoke asserts.
type loadReport struct {
	Runners       int     `json:"runners"`
	BatchesPushed int     `json:"batches_pushed"`
	ResultsPushed int     `json:"results_pushed"`
	Duplicates    int     `json:"duplicates"`
	Overloads     int     `json:"overloads"`
	Errors        int     `json:"errors"`
	BatchesPerSec float64 `json:"batches_per_second"`
	FirstError    string  `json:"first_error,omitempty"`
}

func main() {
	tmp, err := os.MkdirTemp("", "fedsmoke-")
	if err != nil {
		fatalf("%v", err)
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "benchpark")
	build := exec.Command("go", "build", "-o", bin, "./cmd/benchpark")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		fatalf("building benchpark: %v", err)
	}

	// ---- Topology: 4-shard primary + 1 follower ----------------------
	// --shard-slow injects a small per-commit delay so the ingest phase
	// lasts long enough to observe the follower serving reads during it;
	// --shard-queue is sized so the ≤150 in-flight pushes never overflow
	// (the overload drill below uses a separate, deliberately tiny
	// topology).
	primary := startServe(bin,
		"--data", filepath.Join(tmp, "primary"),
		"--shards", "4", "--shard-queue", "256", "--shard-slow", "20ms",
		"--metrics")
	defer primary.stop()
	follower := startServe(bin, "--replica-of", primary.base, "--sync-interval", "25ms")
	defer follower.stop()
	fmt.Printf("    primary (4 shards) at %s, follower at %s\n", primary.base, follower.base)

	if code, body := get(primary.base, "/v1/replica/meta"); code != http.StatusOK || !bytes.Contains(body, []byte(`"shards":4`)) {
		fatalf("/v1/replica/meta = %d %s, want 200 with 4 shards", code, body)
	}

	// ---- Loadgen ingest with concurrent follower reads ---------------
	reportPath := filepath.Join(tmp, "BENCH_federation.json")
	lt := exec.Command(bin, "loadtest", primary.base,
		"--runners", "120", "--batches", "6", "--results", "5",
		"--out", reportPath)
	lt.Stdout = os.Stdout
	lt.Stderr = os.Stderr
	if err := lt.Start(); err != nil {
		fatalf("starting loadtest: %v", err)
	}
	ltDone := make(chan error, 1)
	go func() { ltDone <- lt.Wait() }()

	// While the fleet ingests, the follower must answer reads: that is
	// the point of snapshot-shipping replicas. Every read below happens
	// strictly before the loadtest process exits.
	readsDuringIngest := 0
ingest:
	for {
		select {
		case err := <-ltDone:
			if err != nil {
				fatalf("loadtest failed: %v", err)
			}
			break ingest
		default:
			if code, _ := get(follower.base, "/v1/systems"); code != http.StatusOK {
				fatalf("follower /v1/systems = %d during ingest, want 200", code)
			}
			if code, _ := get(follower.base, "/healthz"); code != http.StatusOK {
				fatalf("follower /healthz = %d during ingest, want 200", code)
			}
			readsDuringIngest++
			time.Sleep(2 * time.Millisecond)
		}
	}
	if readsDuringIngest < 3 {
		fatalf("only %d follower reads completed during ingest; the ingest window was too short to prove concurrent serving", readsDuringIngest)
	}
	fmt.Printf("    follower answered %d reads while the primary ingested\n", readsDuringIngest)

	var rep loadReport
	repData, err := os.ReadFile(reportPath)
	if err != nil {
		fatalf("loadtest report: %v", err)
	}
	if err := json.Unmarshal(repData, &rep); err != nil {
		fatalf("loadtest report: %v", err)
	}
	if rep.Runners < 100 {
		fatalf("loadtest ran %d runners, want >= 100", rep.Runners)
	}
	if want := 120 * 6; rep.BatchesPushed != want || rep.Errors != 0 || rep.Overloads != 0 {
		fatalf("loadtest pushed %d/%d batches with %d overloads, %d errors (first: %s)",
			rep.BatchesPushed, want, rep.Overloads, rep.Errors, rep.FirstError)
	}

	// ---- Lag drains to zero; reads go byte-identical -----------------
	deadline := time.Now().Add(15 * time.Second)
	var st followerStatus
	for {
		code, body := get(follower.base, "/v1/replica/status")
		if code != http.StatusOK {
			fatalf("/v1/replica/status = %d", code)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			fatalf("/v1/replica/status: %v\n%s", err, body)
		}
		if st.Synced && st.LagResults == 0 {
			break
		}
		if time.Now().After(deadline) {
			fatalf("follower never caught up: %s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("    follower caught up (lag 0 after %d syncs)\n", st.Syncs)
	if code, _ := get(follower.base, "/readyz"); code != http.StatusOK {
		fatalf("synced follower /readyz = %d, want 200", code)
	}

	for _, path := range []string{
		"/v1/systems",
		"/v1/series?benchmark=fedbench-00&system=fedsys-000&fom=figure_of_merit",
		"/v1/series?benchmark=fedbench-03&fom=figure_of_merit",
		"/v1/regressions?benchmark=fedbench-01&system=fedsys-001&fom=figure_of_merit",
	} {
		pcode, pbody := get(primary.base, path)
		fcode, fbody := get(follower.base, path)
		if pcode != http.StatusOK || fcode != http.StatusOK {
			fatalf("%s: primary %d, follower %d", path, pcode, fcode)
		}
		if !bytes.Equal(pbody, fbody) {
			fatalf("%s: follower bytes diverge from primary\nprimary:  %s\nfollower: %s", path, pbody, fbody)
		}
	}
	fmt.Println("    follower reads are byte-identical to the primary")

	// ---- Dogfood: push the recorded benchmark files through ---------
	dogfoodBench(primary.base, "BENCH_resultstore.json", "BenchmarkWALAppend")
	dogfoodBench(primary.base, "BENCH_benchlint.json", "BenchmarkSuiteModuleCached")

	// ---- Overload drill: full queue answers 429, never hangs ---------
	primary.stop()
	follower.stop()
	overloadDrill(bin, tmp)

	fmt.Println("    federation plane OK: sharded ingest, live follower reads, lag catch-up, byte-identical replicas, 429 backpressure")
}

// dogfoodBench pushes one of the repo's recorded benchmark files
// through the sharded service as ordinary results and queries a probe
// benchmark back — the perf trajectory rides the same pipe as
// everything else.
func dogfoodBench(base, file, probe string) {
	data, err := os.ReadFile(file)
	if err != nil {
		fatalf("reading %s: %v", file, err)
	}
	var bench struct {
		Benchmarks map[string]struct {
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &bench); err != nil {
		fatalf("%s: %v", file, err)
	}
	if len(bench.Benchmarks) == 0 {
		fatalf("%s holds no benchmarks", file)
	}
	type result struct {
		Benchmark string             `json:"benchmark"`
		Workload  string             `json:"workload"`
		System    string             `json:"system"`
		FOMs      map[string]float64 `json:"foms"`
	}
	req := struct {
		IngestKey string   `json:"ingest_key"`
		Results   []result `json:"results"`
	}{IngestKey: "fedsmoke-dogfood-" + file}
	for name, b := range bench.Benchmarks {
		req.Results = append(req.Results, result{
			Benchmark: name,
			Workload:  "microbench",
			System:    "ci-smoke",
			FOMs:      map[string]float64{"ns_per_op": b.NsPerOp},
		})
	}
	payload, err := json.Marshal(req)
	if err != nil {
		fatalf("%v", err)
	}
	resp, err := httpc.Post(base+"/v1/results", "application/json", bytes.NewReader(payload))
	if err != nil {
		fatalf("dogfood push: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatalf("dogfood push = %d %s", resp.StatusCode, body)
	}
	code, series := get(base, "/v1/series?benchmark="+probe+"&system=ci-smoke&fom=ns_per_op")
	if code != http.StatusOK || !bytes.Contains(series, []byte(`"value"`)) {
		fatalf("dogfood query = %d %s, want the pushed %s sample back", code, series, probe)
	}
	fmt.Printf("    dogfood: %d benchmarks from %s pushed through the shards and queried back\n", len(req.Results), file)
}

// overloadDrill boots a deliberately tiny topology (2 shards, queue
// depth 1, 300ms commits), fires 8 concurrent raw pushes pinned to one
// shard, and asserts the overflow answers are prompt 429s carrying
// Retry-After — the ErrOverloaded contract — rather than a wedge.
func overloadDrill(bin, tmp string) {
	srv := startServe(bin,
		"--data", filepath.Join(tmp, "overload"),
		"--shards", "2", "--shard-queue", "1", "--shard-slow", "300ms")
	defer srv.stop()

	type outcome struct {
		code       int
		retryAfter string
	}
	const posts = 8
	outcomes := make([]outcome, posts)
	var wg sync.WaitGroup
	for i := 0; i < posts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Same (system, benchmark) pins every push to one shard;
			// distinct keys keep dedup out of the way.
			body := fmt.Sprintf(`{"ingest_key":"overload-%d","results":[{"benchmark":"amg2023","workload":"w","system":"tioga","foms":{"figure_of_merit":1}}]}`, i)
			resp, err := httpc.Post(srv.base+"/v1/results", "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				fatalf("overload push %d: %v", i, err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			outcomes[i] = outcome{code: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		fatalf("overloaded shard hung: %d concurrent pushes did not all answer within 10s", posts)
	}

	accepted, overloaded := 0, 0
	for i, o := range outcomes {
		switch o.code {
		case http.StatusOK:
			accepted++
		case http.StatusTooManyRequests:
			if o.retryAfter == "" {
				fatalf("overload push %d: 429 without a Retry-After hint", i)
			}
			overloaded++
		default:
			fatalf("overload push %d = %d, want 200 or 429", i, o.code)
		}
	}
	if accepted == 0 || overloaded == 0 {
		fatalf("overload drill: %d accepted / %d overloaded of %d — the drill needs both outcomes to prove backpressure", accepted, overloaded, posts)
	}
	// The shard must come back once the queue drains: the overload is
	// load shedding, not a terminal state.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := httpc.Post(srv.base+"/v1/results", "application/json",
			bytes.NewReader([]byte(`{"ingest_key":"overload-recovery","results":[{"benchmark":"amg2023","workload":"w","system":"tioga","foms":{"figure_of_merit":2}}]}`)))
		if err != nil {
			fatalf("recovery push: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			fatalf("recovery push = %d, want 200 or 429", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			fatalf("shard never recovered from overload")
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Printf("    overload drill: %d accepted, %d refused with 429 + Retry-After, shard recovered\n", accepted, overloaded)
}
