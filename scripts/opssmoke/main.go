// Command opssmoke is the verify gate's end-to-end check of the ops
// plane: it builds the real benchpark binary, starts `benchpark serve
// --metrics --pprof` on an ephemeral port, scrapes every operations
// endpoint the way a monitoring stack would (liveness, readiness,
// Prometheus text, the JSON ops snapshot, a pprof profile), asserts
// each one's shape, and kills the process. It exercises the binary
// and the flag plumbing, not just the handlers — the in-process tests
// already cover those.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"time"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "opssmoke: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	tmp, err := os.MkdirTemp("", "opssmoke-")
	if err != nil {
		fatalf("%v", err)
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "benchpark")
	build := exec.Command("go", "build", "-o", bin, "./cmd/benchpark")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		fatalf("building benchpark: %v", err)
	}

	srv := exec.Command(bin, "serve",
		"--addr", "127.0.0.1:0",
		"--data", filepath.Join(tmp, "data"),
		"--metrics", "--pprof")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		fatalf("%v", err)
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		fatalf("starting serve: %v", err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()

	// The announce line carries the ephemeral address:
	//   ==> resultsd serving N results on http://HOST:PORT, MODE
	base, err := awaitAnnounce(stdout)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("    serve is up at %s\n", base)

	client := &http.Client{Timeout: 5 * time.Second}
	get := func(path string) (int, string, http.Header) {
		resp, err := client.Get(base + path)
		if err != nil {
			fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			fatalf("GET %s: reading body: %v", path, err)
		}
		return resp.StatusCode, string(body), resp.Header
	}

	if code, body, _ := get("/healthz"); code != http.StatusOK || body != "ok\n" {
		fatalf("/healthz = %d %q, want 200 ok", code, body)
	}
	if code, body, _ := get("/readyz"); code != http.StatusOK || body != "ready\n" {
		fatalf("/readyz = %d %q, want 200 ready", code, body)
	}

	code, text, hdr := get("/metrics")
	if code != http.StatusOK {
		fatalf("/metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		fatalf("/metrics content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE resultsd_requests_total counter",
		"resultsd_store_ready 1\n",
		"resultsd_inflight_requests",
		"resultsd_ingest_batches_total 0\n",
	} {
		if !strings.Contains(text, want) {
			fatalf("/metrics lacks %q:\n%s", want, text)
		}
	}

	code, body, _ := get("/debug/ops")
	if code != http.StatusOK {
		fatalf("/debug/ops = %d", code)
	}
	var ops struct {
		Store struct {
			Ready bool `json:"ready"`
		} `json:"store"`
		Routes map[string]json.RawMessage `json:"routes"`
	}
	if err := json.Unmarshal([]byte(body), &ops); err != nil {
		fatalf("/debug/ops is not the ops snapshot: %v\n%s", err, body)
	}
	if !ops.Store.Ready {
		fatalf("/debug/ops reports an unready store: %s", body)
	}
	if _, found := ops.Routes["results"]; !found {
		fatalf("/debug/ops lacks the results route: %s", body)
	}

	if code, _, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		fatalf("/debug/pprof/cmdline = %d with --pprof, want 200", code)
	}

	fmt.Println("    ops plane OK: /healthz /readyz /metrics /debug/ops /debug/pprof")
}

var announceRE = regexp.MustCompile(`on (http://[^\s,]+)`)

// awaitAnnounce scans serve's stdout for the announce line and
// returns the base URL. A deadline goroutine kills the wait if the
// line never shows up.
func awaitAnnounce(stdout io.Reader) (string, error) {
	type scanResult struct {
		base string
		err  error
	}
	ch := make(chan scanResult, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := announceRE.FindStringSubmatch(sc.Text()); m != nil {
				ch <- scanResult{base: m[1]}
				// Keep draining so the child never blocks on a full pipe.
				for sc.Scan() {
				}
				return
			}
		}
		ch <- scanResult{err: fmt.Errorf("serve exited before announcing its address (scan err: %v)", sc.Err())}
	}()
	select {
	case r := <-ch:
		return r.base, r.err
	case <-time.After(30 * time.Second):
		return "", fmt.Errorf("serve did not announce its address within 30s")
	}
}
