#!/bin/sh
# verify.sh — the repo's full verification gate.
#
# Runs the tier-1 check (build + vet + benchlint + full test suite)
# and then the race-detector pass over the packages that do real
# concurrency: the execution engine, the session/scaling orchestration
# built on it, the parallel installer, the concurrency-safe build
# cache, the telemetry layer (spans and metrics are recorded from the
# engine's worker pool), the durable result store and its HTTP service
# (concurrent ingest against the WAL), benchlint's concurrent
# package loader, and the benchlint CLI whose tests drive that loader
# end to end. A -diff dry-run also fails the gate when mechanical
# fixes exist that nobody applied.
#
#   ./scripts/verify.sh
set -eu
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> benchlint (project invariants)"
go run ./cmd/benchlint

echo "==> benchlint -diff (no unapplied mechanical fixes)"
fixes=$(go run ./cmd/benchlint -diff || true)
if [ -n "$fixes" ]; then
	echo "$fixes"
	echo "verify: unapplied mechanical fixes exist; run 'go run ./cmd/benchlint -fix'" >&2
	exit 1
fi

echo "==> go test ./..."
go test ./...

echo "==> go test -race (concurrent packages)"
go test -race ./internal/engine ./internal/core ./internal/install ./internal/buildcache ./internal/telemetry ./internal/analysis ./internal/resultstore ./internal/resultsd ./cmd/benchlint

echo "==> verify OK"
