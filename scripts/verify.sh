#!/bin/sh
# verify.sh — the repo's full verification gate.
#
# Runs the tier-1 check (build + vet + benchlint + full test suite)
# and then the race-detector pass over the packages that do real
# concurrency: the execution engine, the session/scaling orchestration
# built on it, the parallel installer, the concurrency-safe build
# cache, the telemetry layer (spans and metrics are recorded from the
# engine's worker pool), the durable result store and its HTTP service
# (concurrent ingest against the WAL, trace-context joins, the ops
# plane and selfmonitor loop), the CI pipeline and metrics database
# the traced push path flows through, the content-addressed cache
# store (concurrent same-key writers), the sharded results federation
# layer (per-shard commit workers under concurrent routed appends) and
# its load generator (one goroutine per simulated runner), benchlint's
# concurrent package loader, and the benchlint CLI whose tests drive
# that loader end to end. A -diff dry-run also fails the gate when
# mechanical fixes exist that nobody applied.
#
# benchlint runs ratchet-gated against the committed
# .benchlint-baseline.json (only NEW findings fail; the file is empty,
# so the floor is zero), the cache-soundness tier (purity, maporder,
# keycover) and the CFG-backed resource-leak tier (closecheck,
# ctxleak, sendblock) each get an explicit pass over the whole module
# with the incremental cache on, and the SARIF emission is smoke-checked by
# scripts/sarifsmoke before CI ever depends on it. The ops plane is
# smoke-checked by scripts/opssmoke, which starts the real binary and
# scrapes /healthz, /readyz, /metrics, /debug/ops, and /debug/pprof.
# The federation plane is smoke-checked end to end by
# scripts/fedsmoke: a 4-shard primary plus one snapshot-shipping
# follower under loadgen ingest, follower reads during ingest,
# lag catch-up to byte-identical reads, and the 429/Retry-After
# backpressure contract on an overloaded shard.
#
# Finally, the incremental re-run gate runs the example suite twice
# over a shared --cache-dir: the second run must be 100% run-layer
# cache hits and leave a byte-identical results.json behind.
#
#   ./scripts/verify.sh
set -eu
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> benchlint (project invariants, ratchet-gated, cached)"
lint_cache=$(mktemp -d)
go run ./cmd/benchlint -cache "$lint_cache/pkg" -baseline .benchlint-baseline.json

echo "==> benchlint cache-soundness tier (purity, maporder, keycover)"
go run ./cmd/benchlint -cache "$lint_cache/pkg" -baseline .benchlint-baseline.json -run purity,maporder,keycover

echo "==> benchlint resource-leak tier (closecheck, ctxleak, sendblock)"
go run ./cmd/benchlint -cache "$lint_cache/pkg" -baseline .benchlint-baseline.json -run closecheck,ctxleak,sendblock

echo "==> benchlint -format sarif (smoke: parses as SARIF 2.1.0)"
go run ./cmd/benchlint -cache "$lint_cache/pkg" -format sarif -baseline .benchlint-baseline.json >"$lint_cache/benchlint.sarif" || true
go run ./scripts/sarifsmoke "$lint_cache/benchlint.sarif"
rm -rf "$lint_cache"

echo "==> benchlint -diff (no unapplied mechanical fixes)"
fixes=$(go run ./cmd/benchlint -diff || true)
if [ -n "$fixes" ]; then
	echo "$fixes"
	echo "verify: unapplied mechanical fixes exist; run 'go run ./cmd/benchlint -fix'" >&2
	exit 1
fi

echo "==> go test ./..."
go test ./...

echo "==> go test -race (concurrent packages)"
go test -race ./internal/engine ./internal/core ./internal/install ./internal/buildcache ./internal/cachekey ./internal/telemetry ./internal/analysis ./internal/resultstore ./internal/resultsd ./internal/resultshard ./internal/loadgen ./internal/ci ./internal/metricsdb ./cmd/benchlint

echo "==> ops-plane smoke (serve --metrics --pprof, scrape every operations endpoint)"
go run ./scripts/opssmoke

echo "==> federation smoke (4-shard primary + follower, loadgen ingest, 429 backpressure)"
go run ./scripts/fedsmoke

echo "==> incremental re-run gate (second run over a shared cache must replay everything)"
cache_tmp=$(mktemp -d)
go run ./cmd/benchpark --cache-dir "$cache_tmp/cache" saxpy/openmp cts1 "$cache_tmp/cold-ws" >"$cache_tmp/cold.out"
go run ./cmd/benchpark --cache-dir "$cache_tmp/cache" saxpy/openmp cts1 "$cache_tmp/warm-ws" >"$cache_tmp/warm.out"
runline=$(grep '==> cache\[run\]:' "$cache_tmp/warm.out" || true)
echo "    warm: ${runline:-no cache summary printed}"
case "$runline" in
*"misses=0"*) ;;
*)
	echo "verify: warm re-run was not 100% run-layer cache hits" >&2
	cat "$cache_tmp/warm.out" >&2
	exit 1
	;;
esac
case "$runline" in
*"hits=0 "*)
	echo "verify: warm re-run replayed nothing" >&2
	exit 1
	;;
esac
cmp "$cache_tmp/cold-ws/logs/results.json" "$cache_tmp/warm-ws/logs/results.json" || {
	echo "verify: warm re-run produced a different results.json" >&2
	exit 1
}
rm -rf "$cache_tmp"

echo "==> verify OK"
