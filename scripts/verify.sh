#!/bin/sh
# verify.sh — the repo's full verification gate.
#
# Runs the tier-1 check (build + vet + full test suite) and then the
# race-detector pass over the packages that do real concurrency: the
# execution engine, the session/scaling orchestration built on it, the
# parallel installer, and the concurrency-safe build cache.
#
#   ./scripts/verify.sh
set -eu
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race (concurrent packages)"
go test -race ./internal/engine ./internal/core ./internal/install ./internal/buildcache

echo "==> verify OK"
