// Command sarifsmoke validates benchlint's SARIF output for the
// verify gate: the file must parse as JSON, declare SARIF 2.1.0, and
// carry at least zero well-formed runs each naming a driver. It is a
// structural smoke check — CI uploaders are the real consumers — so a
// malformed emission fails the gate before it fails the annotation
// pipeline.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: sarifsmoke <file.sarif>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "sarifsmoke: %v\n", err)
		os.Exit(1)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name string `json:"name"`
				} `json:"driver"`
			} `json:"tool"`
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		fmt.Fprintf(os.Stderr, "sarifsmoke: %s is not valid JSON: %v\n", os.Args[1], err)
		os.Exit(1)
	}
	if log.Version != "2.1.0" {
		fmt.Fprintf(os.Stderr, "sarifsmoke: version = %q, want 2.1.0\n", log.Version)
		os.Exit(1)
	}
	if log.Runs == nil {
		fmt.Fprintln(os.Stderr, "sarifsmoke: missing runs array")
		os.Exit(1)
	}
	results := 0
	for i, r := range log.Runs {
		if r.Tool.Driver.Name == "" {
			fmt.Fprintf(os.Stderr, "sarifsmoke: run %d has no tool.driver.name\n", i)
			os.Exit(1)
		}
		results += len(r.Results)
	}
	fmt.Printf("sarifsmoke: ok (%d run(s), %d result(s))\n", len(log.Runs), results)
}
