package main

import (
	"fmt"
	"os"
	"strconv"

	"repro/internal/concretizer"
	"repro/internal/core"
	"repro/internal/dashboard"
	"repro/internal/hpcsim"
	"repro/internal/install"
	"repro/internal/metricsdb"
	"repro/internal/pkgrepo"
	"repro/internal/spec"
)

// specCmd implements `benchpark spec <system> <spec...>`: concretize
// an abstract spec against a system profile and print the DAG tree,
// the way `spack spec` does.
func specCmd(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: benchpark spec <system> <spec>")
	}
	sys, err := hpcsim.Get(args[0])
	if err != nil {
		return err
	}
	specText := ""
	for _, a := range args[1:] {
		specText += a + " "
	}
	abstract, err := spec.Parse(specText)
	if err != nil {
		return err
	}
	cfg, err := core.ConcretizerConfig(sys)
	if err != nil {
		return err
	}
	c := concretizer.New(pkgrepo.Builtin(), cfg)
	concrete, err := c.Concretize(abstract)
	if err != nil {
		return err
	}
	fmt.Printf("Input spec\n--------------------------------\n%s\n\n", abstract)
	fmt.Printf("Concretized (%d packages, hash %s)\n--------------------------------\n",
		spec.NodeCount(concrete), concrete.ShortHash())
	fmt.Print(spec.FormatTree(concrete))
	return nil
}

// findCmd implements `benchpark find <system> [constraint]`: install
// the suite's software and list the install database like `spack find`.
func findCmd(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: benchpark find <system> [constraint]")
	}
	sys, err := hpcsim.Get(args[0])
	if err != nil {
		return err
	}
	cfg, err := core.ConcretizerConfig(sys)
	if err != nil {
		return err
	}
	c := concretizer.New(pkgrepo.Builtin(), cfg)
	inst := install.New(pkgrepo.Builtin())
	// Demonstrate against the two Section 4 benchmarks.
	for _, s := range []string{"saxpy", "amg2023+caliper"} {
		concrete, err := c.Concretize(spec.MustParse(s))
		if err != nil {
			return err
		}
		if _, err := inst.Install(concrete); err != nil {
			return err
		}
	}
	constraint := spec.New("")
	if len(args) > 1 {
		constraint, err = spec.Parse(args[1])
		if err != nil {
			return err
		}
	}
	recs := inst.DB.Find(constraint)
	fmt.Printf("==> %d installed packages on %s\n", len(recs), sys.Name)
	for _, r := range recs {
		marker := " "
		if r.External {
			marker = "e"
		}
		fmt.Printf("%s %s  %s@%s  %s\n", marker, r.Hash[:7], r.Spec.Name,
			r.Spec.ConcreteVersion(), r.Prefix)
	}
	return nil
}

// dashboardCmd implements `benchpark dashboard [html-file]`: run a
// small result-producing sweep and render the Section 5 dashboard.
func dashboardCmd(args []string) error {
	bp := core.New()
	fmt.Println("==> collecting results (saxpy + stream on cts1 and cloud-c5n)...")
	for _, sysName := range []string{"cts1", "cloud-c5n"} {
		for _, suite := range []string{"saxpy/openmp", "stream/triad"} {
			dir, err := os.MkdirTemp("", "benchpark-dash-*")
			if err != nil {
				return err
			}
			sess, err := bp.Setup(suite, sysName, dir)
			if err != nil {
				return err
			}
			if _, err := sess.RunAll(); err != nil {
				return err
			}
			os.RemoveAll(dir)
		}
	}
	fmt.Println()
	fmt.Print(dashboard.Text(bp.Metrics))
	if len(args) > 0 {
		html, err := dashboard.HTML(bp.Metrics)
		if err != nil {
			return err
		}
		if err := os.WriteFile(args[0], []byte(html), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nHTML dashboard written to %s\n", args[0])
	}
	return nil
}

// regressionsCmd implements `benchpark regressions <results.json>
// <benchmark> <fom>`: load a saved metrics database and scan a FOM
// series for regressions.
func regressionsCmd(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: benchpark regressions <results.json> <benchmark> <fom>")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	db, err := metricsdb.LoadJSON(string(data))
	if err != nil {
		return err
	}
	regs := db.DetectRegressions(metricsdb.Filter{Benchmark: args[1]}, args[2], 4, 1.2)
	if len(regs) == 0 {
		fmt.Printf("no regressions in %s/%s across %d results\n", args[1], args[2], db.Len())
		return nil
	}
	for _, r := range regs {
		fmt.Printf("REGRESSION seq=%d value=%.4g baseline=%.4g ratio=%.2fx\n",
			r.Seq, r.Value, r.Baseline, r.Ratio)
	}
	return nil
}

// archiveCmd implements `benchpark archive <suite> <system> <out.tar.gz>`:
// run the suite and bundle the complete workspace (configs, scripts,
// outputs, results.json) into a shareable archive (Section 5).
func archiveCmd(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: benchpark archive <suite> <system> <out.tar.gz>")
	}
	dir, err := os.MkdirTemp("", "benchpark-archive-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	bp := core.New()
	sess, err := bp.Setup(args[0], args[1], dir)
	if err != nil {
		return err
	}
	rep, err := sess.RunAll()
	if err != nil {
		return err
	}
	if err := sess.Workspace.Archive(args[2]); err != nil {
		return err
	}
	fi, err := os.Stat(args[2])
	if err != nil {
		return err
	}
	fmt.Printf("==> %d experiments (%d passed) archived to %s (%d bytes)\n",
		rep.Total, rep.Succeeded, args[2], fi.Size())
	return nil
}

// provisionCmd implements `benchpark provision <name> <instance-type>
// <nodes> [suite]`: spin up an on-demand cloud cluster (Section 7.2)
// and optionally run a suite on it immediately.
func provisionCmd(args []string) error {
	if len(args) < 3 || len(args) > 4 {
		return fmt.Errorf("usage: benchpark provision <name> <instance-type> <nodes> [suite]")
	}
	nodes, err := strconv.Atoi(args[2])
	if err != nil {
		return fmt.Errorf("bad node count %q", args[2])
	}
	sys, err := hpcsim.ProvisionCloudCluster(args[0], args[1], nodes)
	if err != nil {
		return err
	}
	arch, err := sys.Microarch()
	if err != nil {
		return err
	}
	fmt.Printf("==> provisioned %s: %s (detected %s)\n", sys.Name, sys.Description, arch.Name)
	if len(args) == 4 {
		dir, err := os.MkdirTemp("", "benchpark-cloud-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		bp := core.New()
		sess, err := bp.Setup(args[3], sys.Name, dir)
		if err != nil {
			return err
		}
		rep, err := sess.RunAll()
		if err != nil {
			return err
		}
		fmt.Printf("==> %s on %s: %d/%d experiments passed\n", args[3], sys.Name, rep.Succeeded, rep.Total)
	}
	return nil
}

// reportCmd implements `benchpark report [out.md] [-full]`: rerun the
// reproduction experiments and emit a paper-vs-measured markdown
// report.
func reportCmd(args []string) error {
	out := ""
	full := false
	for _, a := range args {
		if a == "-full" || a == "--full" {
			full = true
			continue
		}
		out = a
	}
	var w *os.File
	if out == "" {
		w = os.Stdout
	} else {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := core.GenerateReport(w, full); err != nil {
		return err
	}
	if out != "" {
		fmt.Printf("==> report written to %s\n", out)
	}
	return nil
}
