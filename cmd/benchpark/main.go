// Command benchpark is the Benchpark driver of Figure 1c:
//
//	benchpark <experiment-suite> <system> <workspace-dir>
//
// runs the full continuous-benchmarking workflow: generate the
// workspace, install software through the Spack layer, generate and
// execute the experiments under the system's batch scheduler, and
// analyze figures of merit.
//
// Additional subcommands:
//
//	benchpark suites              list experiment suites
//	benchpark systems             list system profiles
//	benchpark components          print Table 1 (component matrix)
//	benchpark figure14 [p ...]    reproduce the Figure 14 Extra-P model
//	benchpark ci-demo             run the Figure 6 automation loop
//	benchpark serve               serve the results federation API
//	benchpark push                run a suite and push results to a server
//	benchpark history             query a server for a FOM's history
//	benchpark loadtest            simulate a federated runner fleet
package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/cachekey"
	"repro/internal/core"
	"repro/internal/dashboard"
	"repro/internal/hpcsim"
	"repro/internal/ramble"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchpark:", err)
		os.Exit(1)
	}
}

// execOpts carries the global engine flags: worker-pool width, the
// overall deadline plumbed into the engine's context, and the
// observability switches (--trace-out, --log-level).
type execOpts struct {
	jobs     int
	timeout  time.Duration
	traceOut string
	logLevel string
	cacheDir string // durable content-addressed cache (--cache-dir)
	noCache  bool   // disable all caching, including the in-memory memo

	tracer *telemetry.Tracer // created by instrument when traceOut is set
}

// attachCache wires the incremental-pipeline cache into a deployment:
// --cache-dir opens (or creates) the durable store so concretization,
// built binaries and experiment outcomes persist across invocations;
// --no-cache switches every cache layer off, including the in-memory
// concretization memo.
func (o *execOpts) attachCache(bp *core.Benchpark) error {
	if o.noCache {
		bp.Memo = nil
		return nil
	}
	if o.cacheDir == "" {
		return nil
	}
	st, err := cachekey.Open(o.cacheDir)
	if err != nil {
		return err
	}
	bp.UseCache(st)
	return nil
}

// context returns the context the engine runs under.
func (o *execOpts) context() (context.Context, context.CancelFunc) {
	if o.timeout > 0 {
		return context.WithTimeout(context.Background(), o.timeout)
	}
	return context.WithCancel(context.Background())
}

// instrument derives the run's observability context: a wall-clock
// tracer when --trace-out was given, a stderr logger when --log-level
// was.
func (o *execOpts) instrument(ctx context.Context) (context.Context, error) {
	if o.traceOut != "" {
		o.tracer = telemetry.New(nil)
		ctx = telemetry.WithTracer(ctx, o.tracer)
	}
	if o.logLevel != "" {
		lvl, err := telemetry.ParseLevel(o.logLevel)
		if err != nil {
			return ctx, err
		}
		ctx = telemetry.WithLogger(ctx, telemetry.NewLogger(os.Stderr, lvl))
	}
	return ctx, nil
}

// finish writes the collected trace to --trace-out; a no-op when
// tracing was off.
func (o *execOpts) finish() error {
	if o.tracer == nil {
		return nil
	}
	if err := writeTrace(o.traceOut, o.tracer.Snapshot()); err != nil {
		return err
	}
	fmt.Printf("==> trace written to %s\n", o.traceOut)
	return nil
}

// writeTrace exports the snapshot in the format implied by the file
// extension: .cali is a Caliper profile (ready for the caliper →
// thicket → extrap path), .prom/.txt is Prometheus text exposition,
// anything else the native JSON trace.
func writeTrace(path string, tr *telemetry.Trace) error {
	var out string
	var err error
	switch {
	case strings.HasSuffix(path, ".cali"):
		out, err = tr.CaliperProfile().JSON()
	case strings.HasSuffix(path, ".prom"), strings.HasSuffix(path, ".txt"):
		out = tr.PrometheusText()
	default:
		out, err = tr.JSON()
	}
	if err != nil {
		return err
	}
	return os.WriteFile(path, []byte(out), 0o644)
}

// parseGlobalFlags strips the global flags (accepted anywhere on the
// command line, before or after the subcommand, in both "--flag value"
// and "--flag=value" forms) and returns the remaining arguments.
func parseGlobalFlags(args []string) (execOpts, []string, error) {
	opts := execOpts{jobs: runtime.NumCPU()}
	// Normalize --flag=value into two tokens.
	var split []string
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			if i := strings.IndexByte(a, '='); i > 0 {
				split = append(split, a[:i], a[i+1:])
				continue
			}
		}
		split = append(split, a)
	}
	args = split
	var rest []string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "--jobs", "-jobs", "-j":
			if i+1 >= len(args) {
				return opts, nil, fmt.Errorf("%s needs a worker count", args[i])
			}
			n, err := strconv.Atoi(args[i+1])
			if err != nil || n < 1 {
				return opts, nil, fmt.Errorf("bad worker count %q", args[i+1])
			}
			opts.jobs = n
			i++
		case "--timeout", "-timeout":
			if i+1 >= len(args) {
				return opts, nil, fmt.Errorf("%s needs a duration (e.g. 30s, 5m)", args[i])
			}
			d, err := time.ParseDuration(args[i+1])
			if err != nil || d <= 0 {
				return opts, nil, fmt.Errorf("bad timeout %q", args[i+1])
			}
			opts.timeout = d
			i++
		case "--trace-out", "-trace-out":
			if i+1 >= len(args) {
				return opts, nil, fmt.Errorf("%s needs a file path", args[i])
			}
			opts.traceOut = args[i+1]
			i++
		case "--log-level", "-log-level":
			if i+1 >= len(args) {
				return opts, nil, fmt.Errorf("%s needs a level (debug|info|warn|error)", args[i])
			}
			if _, err := telemetry.ParseLevel(args[i+1]); err != nil {
				return opts, nil, err
			}
			opts.logLevel = args[i+1]
			i++
		case "--cache-dir", "-cache-dir":
			if i+1 >= len(args) {
				return opts, nil, fmt.Errorf("%s needs a directory", args[i])
			}
			opts.cacheDir = args[i+1]
			i++
		case "--no-cache", "-no-cache":
			opts.noCache = true
		default:
			rest = append(rest, args[i])
		}
	}
	return opts, rest, nil
}

func run(rawArgs []string) error {
	opts, args, err := parseGlobalFlags(rawArgs)
	if err != nil {
		return err
	}
	if len(args) == 0 {
		usage()
		return nil
	}
	switch args[0] {
	case "suites":
		for _, s := range core.ExperimentTemplates() {
			fmt.Println(s)
		}
		return nil
	case "systems":
		for _, name := range hpcsim.Names() {
			sys, err := hpcsim.Get(name)
			if err != nil {
				return err
			}
			arch, err := sys.Microarch()
			if err != nil {
				return err
			}
			fmt.Printf("%-16s %-6s %5d nodes × %2d cores  %-10s %-9s %s\n",
				sys.Name, sys.Site, sys.Nodes, sys.Node.Cores(), arch.Name,
				sys.Scheduler, sys.Description)
		}
		return nil
	case "components":
		fmt.Print(core.ComponentTable())
		return nil
	case "figure14":
		return figure14(args[1:], &opts)
	case "ci-demo":
		return ciDemo(&opts)
	case "run":
		if len(args) != 4 {
			usage()
			return fmt.Errorf("expected: benchpark run <suite> <system> <workspace-dir>")
		}
		return runSuite(args[1], args[2], args[3], &opts)
	case "spec":
		return specCmd(args[1:])
	case "find":
		return findCmd(args[1:])
	case "dashboard":
		return dashboardCmd(args[1:])
	case "regressions":
		return regressionsCmd(args[1:])
	case "archive":
		return archiveCmd(args[1:])
	case "provision":
		return provisionCmd(args[1:])
	case "report":
		return reportCmd(args[1:])
	case "serve":
		return serveCmd(args[1:], &opts)
	case "push":
		return pushCmd(args[1:], &opts)
	case "history":
		return historyCmd(args[1:], &opts)
	case "loadtest":
		return loadtestCmd(args[1:], &opts)
	case "help", "-h", "--help":
		usage()
		return nil
	}
	if len(args) != 3 {
		usage()
		return fmt.Errorf("expected: benchpark <suite> <system> <workspace-dir>")
	}
	return runSuite(args[0], args[1], args[2], &opts)
}

func usage() {
	fmt.Println(`usage:
  benchpark [run] <experiment-suite> <system> <workspace-dir>
  benchpark suites | systems | components | figure14 [p ...] | ci-demo
  benchpark spec <system> <spec>       concretize and print the DAG
  benchpark find <system> [constraint] list installed packages
  benchpark dashboard [out.html]       render the results dashboard
  benchpark regressions <json> <bench> <fom>
  benchpark archive <suite> <system> <out.tar.gz>
  benchpark provision <name> <instance-type> <nodes> [suite]
  benchpark report [out.md] [-full]
  benchpark serve [--addr A] [--data DIR] [--metrics] [--pprof]
            [--selfmonitor DUR] [--shards N] [--shard-queue N]
            [--shard-slow DUR] [--replica-of URL] [--sync-interval DUR]
                                       run the results federation service;
                                       --metrics adds /metrics + /debug/ops,
                                       --pprof adds /debug/pprof,
                                       --selfmonitor samples the service's
                                       own latency into its store,
                                       --shards N runs a sharded primary
                                       (bounded queues via --shard-queue),
                                       --replica-of runs a read-only
                                       snapshot-shipped follower
  benchpark push <suite> <system> <server-url>
                                       run a suite and push its results
  benchpark history <server-url> <benchmark> <fom> [--system S]
            [--window N] [--threshold T] print a FOM series + regressions
  benchpark loadtest <server-url> [--runners N] [--batches N]
            [--results N] [--out FILE] simulate a federated runner fleet
                                       and report throughput + latency

global flags (accepted anywhere, --flag value or --flag=value):
  --jobs N         engine worker-pool width (default: number of CPUs)
  --timeout DUR    overall deadline for the run (e.g. 30s, 5m)
  --trace-out F    write the run's telemetry trace to F; the extension
                   picks the format (.json trace, .cali Caliper
                   profile, .prom Prometheus text)
  --log-level L    structured logs on stderr (debug|info|warn|error)
  --cache-dir D    durable content-addressed cache: concretization,
                   built binaries and experiment outcomes persist in D
                   and warm re-runs replay instead of re-executing
  --no-cache       disable every cache layer for this invocation`)
}

func runSuite(suite, system, dir string, opts *execOpts) error {
	bp := core.New()
	if err := opts.attachCache(bp); err != nil {
		return err
	}
	sess, err := bp.Setup(suite, system, dir)
	if err != nil {
		return err
	}
	ctx, err := opts.instrument(context.Background())
	if err != nil {
		return err
	}
	bp.Cache.Instrument(opts.tracer.Metrics())
	fmt.Printf("==> workspace %s for %s on %s (%d workers)\n", dir, suite, system, opts.jobs)
	rep, erep, err := sess.Run(ctx, core.RunOptions{Jobs: opts.jobs, Timeout: opts.timeout})
	if ferr := opts.finish(); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		return err
	}
	fmt.Printf("==> %d experiments: %d succeeded, %d failed\n", rep.Total, rep.Succeeded, rep.Failed)
	for _, e := range rep.Experiments {
		fmt.Printf("  %-40s %-9s", e.Name, e.Status)
		if e.Status == ramble.Succeeded {
			for _, k := range []string{"saxpy_time", "fom", "total_time", "triad_bw"} {
				if v, ok := e.FOMs[k]; ok {
					fmt.Printf("  %s=%s", k, v)
				}
			}
		} else {
			fmt.Printf("  %s", e.FailMsg)
		}
		fmt.Println()
	}
	fmt.Printf("==> batch makespan %.1fs (simulated), utilization %.1f%%\n",
		sess.Scheduler.Makespan(), 100*sess.Scheduler.Utilization())
	if erep != nil {
		for _, cs := range erep.Cache {
			fmt.Printf("==> cache[%s]: hits=%d misses=%d bytes=%d\n",
				cs.Layer, cs.Hits, cs.Misses, cs.Bytes)
		}
	}
	if opts.tracer != nil && erep != nil {
		if s := erep.TimingSummary(); s != "" {
			fmt.Print("==> stage timings\n" + s)
		}
	}
	if rep.Failed > 0 {
		return &core.ExperimentFailuresError{Report: erep}
	}
	return nil
}

func figure14(args []string, opts *execOpts) error {
	var scales []int
	svgOut := ""
	for i := 0; i < len(args); i++ {
		a := args[i]
		if a == "-svg" || a == "--svg" {
			if i+1 >= len(args) {
				return fmt.Errorf("-svg needs a file path")
			}
			svgOut = args[i+1]
			i++
			continue
		}
		n, err := strconv.Atoi(a)
		if err != nil {
			return fmt.Errorf("bad scale %q", a)
		}
		scales = append(scales, n)
	}
	study, err := core.Figure14Study(scales)
	if err != nil {
		return err
	}
	fmt.Printf("==> MPI_Bcast on %s: scales %v (this sweeps a real %d-rank simulation)\n",
		study.System.Name, study.Scales, study.Scales[len(study.Scales)-1])
	ctx, cancel := opts.context()
	defer cancel()
	ctx, err = opts.instrument(ctx)
	if err != nil {
		return err
	}
	res, err := study.RunContext(ctx, core.New(), opts.jobs)
	if ferr := opts.finish(); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(core.RenderFigure14(res))
	fmt.Println("\nmeasurements:")
	for _, m := range res.Measurements {
		fmt.Printf("  p=%6.0f  total=%10.3f s   model=%10.3f s\n", m.P, m.Value, res.Model.Eval(m.P))
	}
	if svgOut != "" {
		svg := dashboard.ScalingSVG("CTS Extra-P Model — MPI_Bcast total time", res.Measurements, res.Model)
		if err := os.WriteFile(svgOut, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nSVG plot written to %s\n", svgOut)
	}
	return nil
}

func ciDemo(opts *execOpts) error {
	bp := core.New()
	dir, err := os.MkdirTemp("", "benchpark-ci-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	auto, err := core.NewAutomation(bp, dir)
	if err != nil {
		return err
	}
	fmt.Println("==> contributor 'jens' opens a PR; site admin 'olga' approves")
	ctx, cancel := opts.context()
	defer cancel()
	ctx, err = opts.instrument(ctx)
	if err != nil {
		return err
	}
	bp.Cache.Instrument(opts.tracer.Metrics())
	res, err := auto.SubmitContributionContext(ctx, "jens", "add RIKEN notes",
		map[string]string{"docs/riken.md": "results"}, "olga")
	if ferr := opts.finish(); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		return err
	}
	fmt.Printf("==> pipeline #%d: %s\n", res.Pipeline.ID, res.Pipeline.Status())
	for _, j := range res.Pipeline.Jobs {
		fmt.Printf("  job %-14s %-8s ran-as=%s\n%s\n", j.Name, j.Status, j.RunAs, indent(j.Log))
	}
	fmt.Printf("==> PR state: %s; %d benchmark results recorded\n", res.PR.State, len(res.Results))
	return nil
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "      " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
