// Command benchpark is the Benchpark driver of Figure 1c:
//
//	benchpark <experiment-suite> <system> <workspace-dir>
//
// runs the full continuous-benchmarking workflow: generate the
// workspace, install software through the Spack layer, generate and
// execute the experiments under the system's batch scheduler, and
// analyze figures of merit.
//
// Additional subcommands:
//
//	benchpark suites              list experiment suites
//	benchpark systems             list system profiles
//	benchpark components          print Table 1 (component matrix)
//	benchpark figure14 [p ...]    reproduce the Figure 14 Extra-P model
//	benchpark ci-demo             run the Figure 6 automation loop
package main

import (
	"fmt"
	"os"
	"strconv"

	"repro/internal/core"
	"repro/internal/dashboard"
	"repro/internal/hpcsim"
	"repro/internal/ramble"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchpark:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return nil
	}
	switch args[0] {
	case "suites":
		for _, s := range core.ExperimentTemplates() {
			fmt.Println(s)
		}
		return nil
	case "systems":
		for _, name := range hpcsim.Names() {
			sys, err := hpcsim.Get(name)
			if err != nil {
				return err
			}
			arch, err := sys.Microarch()
			if err != nil {
				return err
			}
			fmt.Printf("%-16s %-6s %5d nodes × %2d cores  %-10s %-9s %s\n",
				sys.Name, sys.Site, sys.Nodes, sys.Node.Cores(), arch.Name,
				sys.Scheduler, sys.Description)
		}
		return nil
	case "components":
		fmt.Print(core.ComponentTable())
		return nil
	case "figure14":
		return figure14(args[1:])
	case "ci-demo":
		return ciDemo()
	case "spec":
		return specCmd(args[1:])
	case "find":
		return findCmd(args[1:])
	case "dashboard":
		return dashboardCmd(args[1:])
	case "regressions":
		return regressionsCmd(args[1:])
	case "archive":
		return archiveCmd(args[1:])
	case "provision":
		return provisionCmd(args[1:])
	case "report":
		return reportCmd(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	}
	if len(args) != 3 {
		usage()
		return fmt.Errorf("expected: benchpark <suite> <system> <workspace-dir>")
	}
	return runSuite(args[0], args[1], args[2])
}

func usage() {
	fmt.Println(`usage:
  benchpark <experiment-suite> <system> <workspace-dir>
  benchpark suites | systems | components | figure14 [p ...] | ci-demo
  benchpark spec <system> <spec>       concretize and print the DAG
  benchpark find <system> [constraint] list installed packages
  benchpark dashboard [out.html]       render the results dashboard
  benchpark regressions <json> <bench> <fom>
  benchpark archive <suite> <system> <out.tar.gz>
  benchpark provision <name> <instance-type> <nodes> [suite]
  benchpark report [out.md] [-full]`)
}

func runSuite(suite, system, dir string) error {
	bp := core.New()
	sess, err := bp.Setup(suite, system, dir)
	if err != nil {
		return err
	}
	fmt.Printf("==> workspace %s for %s on %s\n", dir, suite, system)
	rep, err := sess.RunAll()
	if err != nil {
		return err
	}
	fmt.Printf("==> %d experiments: %d succeeded, %d failed\n", rep.Total, rep.Succeeded, rep.Failed)
	for _, e := range rep.Experiments {
		fmt.Printf("  %-40s %-9s", e.Name, e.Status)
		if e.Status == ramble.Succeeded {
			for _, k := range []string{"saxpy_time", "fom", "total_time", "triad_bw"} {
				if v, ok := e.FOMs[k]; ok {
					fmt.Printf("  %s=%s", k, v)
				}
			}
		} else {
			fmt.Printf("  %s", e.FailMsg)
		}
		fmt.Println()
	}
	fmt.Printf("==> batch makespan %.1fs (simulated), utilization %.1f%%\n",
		sess.Scheduler.Makespan(), 100*sess.Scheduler.Utilization())
	if rep.Failed > 0 {
		return fmt.Errorf("%d experiments failed", rep.Failed)
	}
	return nil
}

func figure14(args []string) error {
	var scales []int
	svgOut := ""
	for i := 0; i < len(args); i++ {
		a := args[i]
		if a == "-svg" || a == "--svg" {
			if i+1 >= len(args) {
				return fmt.Errorf("-svg needs a file path")
			}
			svgOut = args[i+1]
			i++
			continue
		}
		n, err := strconv.Atoi(a)
		if err != nil {
			return fmt.Errorf("bad scale %q", a)
		}
		scales = append(scales, n)
	}
	study, err := core.Figure14Study(scales)
	if err != nil {
		return err
	}
	fmt.Printf("==> MPI_Bcast on %s: scales %v (this sweeps a real %d-rank simulation)\n",
		study.System.Name, study.Scales, study.Scales[len(study.Scales)-1])
	res, err := study.Run(core.New())
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(core.RenderFigure14(res))
	fmt.Println("\nmeasurements:")
	for _, m := range res.Measurements {
		fmt.Printf("  p=%6.0f  total=%10.3f s   model=%10.3f s\n", m.P, m.Value, res.Model.Eval(m.P))
	}
	if svgOut != "" {
		svg := dashboard.ScalingSVG("CTS Extra-P Model — MPI_Bcast total time", res.Measurements, res.Model)
		if err := os.WriteFile(svgOut, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nSVG plot written to %s\n", svgOut)
	}
	return nil
}

func ciDemo() error {
	bp := core.New()
	dir, err := os.MkdirTemp("", "benchpark-ci-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	auto, err := core.NewAutomation(bp, dir)
	if err != nil {
		return err
	}
	fmt.Println("==> contributor 'jens' opens a PR; site admin 'olga' approves")
	res, err := auto.SubmitContribution("jens", "add RIKEN notes",
		map[string]string{"docs/riken.md": "results"}, "olga")
	if err != nil {
		return err
	}
	fmt.Printf("==> pipeline #%d: %s\n", res.Pipeline.ID, res.Pipeline.Status())
	for _, j := range res.Pipeline.Jobs {
		fmt.Printf("  job %-14s %-8s ran-as=%s\n%s\n", j.Name, j.Status, j.RunAs, indent(j.Log))
	}
	fmt.Printf("==> PR state: %s; %d benchmark results recorded\n", res.PR.State, len(res.Results))
	return nil
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "      " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
