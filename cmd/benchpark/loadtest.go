package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/loadgen"
	"repro/internal/metricsdb"
	"repro/internal/resultsd"
)

// loadtestCmd implements `benchpark loadtest <server-url> [--runners N]
// [--batches N] [--results N] [--key-prefix P] [--out FILE]`: simulate
// a federated fleet of CI runners pushing deterministic result batches
// at a resultsd endpoint (single-store, sharded primary, or — to
// demonstrate the read-only contract — a replica) and report
// throughput, latency percentiles and the overload/error taxonomy.
// --out writes the report as BENCH_federation.json-style JSON.
func loadtestCmd(args []string, opts *execOpts) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: benchpark loadtest <server-url> [--runners N] [--batches N] [--results N] [--key-prefix P] [--out FILE]")
	}
	serverURL := args[0]
	cfg := loadgen.Config{}
	out := ""
	rest := args[1:]
	for i := 0; i < len(rest); i++ {
		need := func() (string, error) {
			if i+1 >= len(rest) {
				return "", fmt.Errorf("%s needs a value", rest[i])
			}
			i++
			return rest[i], nil
		}
		needInt := func() (int, error) {
			v, err := need()
			if err != nil {
				return 0, err
			}
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return 0, fmt.Errorf("bad value %q for %s", v, rest[i-1])
			}
			return n, nil
		}
		var err error
		switch rest[i] {
		case "--runners", "-runners":
			cfg.Runners, err = needInt()
		case "--batches", "-batches":
			cfg.BatchesPerRunner, err = needInt()
		case "--results", "-results":
			cfg.ResultsPerBatch, err = needInt()
		case "--key-prefix", "-key-prefix":
			cfg.KeyPrefix, err = need()
		case "--out", "-out":
			out, err = need()
		default:
			return fmt.Errorf("loadtest: unknown argument %q", rest[i])
		}
		if err != nil {
			return err
		}
	}
	ctx, cancel := opts.context()
	defer cancel()

	client := resultsd.NewClient(serverURL)
	pusher := loadgen.PushFunc(func(ctx context.Context, key string, results []metricsdb.Result) (bool, error) {
		resp, err := client.Push(ctx, key, results)
		if err != nil {
			return false, err
		}
		return resp.Duplicate, nil
	})

	start := time.Now()
	rep, err := loadgen.Run(ctx, cfg, pusher)
	if err != nil {
		return err
	}
	fmt.Printf("==> loadtest against %s: %d runners x %d batches x %d results in %.2fs\n",
		serverURL, rep.Runners, rep.BatchesPerRunner, rep.ResultsPerBatch, time.Since(start).Seconds())
	fmt.Printf("    pushed %d batches (%d results), %d duplicates, %d overloads, %d errors\n",
		rep.BatchesPushed, rep.ResultsPushed, rep.Duplicates, rep.Overloads, rep.Errors)
	fmt.Printf("    throughput %.1f batches/s (%.1f results/s); latency p50 %.2fms p90 %.2fms p99 %.2fms max %.2fms\n",
		rep.BatchesPerSecond, rep.ResultsPerSecond, rep.P50Ms, rep.P90Ms, rep.P99Ms, rep.MaxMs)
	if rep.FirstError != "" {
		fmt.Printf("    first error: %s\n", rep.FirstError)
	}
	if out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("==> report written to %s\n", out)
	}
	return nil
}
