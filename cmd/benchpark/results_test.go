package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/metricsdb"
	"repro/internal/resultsd"
	"repro/internal/resultstore"
	"repro/internal/telemetry"
)

func startTestResultsd(t *testing.T) (*resultstore.Store, *httptest.Server) {
	t.Helper()
	store, err := resultstore.Open(t.TempDir(), resultstore.Options{
		Clock:               telemetry.FixedClock{T: time.Unix(1700000000, 0)},
		NoBackgroundCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	ts := httptest.NewServer(resultsd.New(store, nil).Handler())
	t.Cleanup(ts.Close)
	return store, ts
}

func TestRunPushCmd(t *testing.T) {
	store, ts := startTestResultsd(t)
	if err := run([]string{"push", "saxpy/openmp", "cts1", ts.URL}); err != nil {
		t.Fatalf("push: %v", err)
	}
	if store.Len() == 0 {
		t.Fatal("push stored nothing")
	}
	// An identical re-run derives the same content hash: duplicate ack,
	// no double ingest.
	before := store.Len()
	if err := run([]string{"push", "saxpy/openmp", "cts1", ts.URL}); err != nil {
		t.Fatalf("second push: %v", err)
	}
	if store.Len() != before {
		t.Fatalf("duplicate push grew the store: %d -> %d", before, store.Len())
	}
}

func TestRunPushCmdErrors(t *testing.T) {
	if err := run([]string{"push", "saxpy/openmp", "cts1"}); err == nil {
		t.Error("missing server URL should fail")
	}
	if err := run([]string{"push", "nosuchsuite", "cts1", "http://127.0.0.1:1"}); err == nil {
		t.Error("unknown suite should fail")
	}
}

func TestRunHistoryCmd(t *testing.T) {
	_, ts := startTestResultsd(t)
	// Seed a series with a trailing slowdown directly through the API.
	c := resultsd.NewClient(ts.URL)
	for i, v := range []float64{1.0, 1.0, 1.0, 1.0, 2.2} {
		if _, err := c.Push(context.Background(), fmt.Sprintf("seed-%d", i), []metricsdb.Result{{
			Benchmark: "saxpy", System: "cts1", Experiment: "e1",
			FOMs: map[string]float64{"saxpy_time": v},
		}}); err != nil {
			t.Fatal(err)
		}
	}
	for _, args := range [][]string{
		{"history", ts.URL, "saxpy", "saxpy_time"},
		{"history", ts.URL, "saxpy", "saxpy_time", "--system", "cts1"},
		{"history", ts.URL, "saxpy", "saxpy_time", "--window", "4", "--threshold", "1.5"},
		{"history", ts.URL, "saxpy", "nosuchfom"}, // empty series is not an error
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunHistoryCmdErrors(t *testing.T) {
	for _, args := range [][]string{
		{"history", "http://x", "saxpy"},                          // too few args
		{"history", "http://x", "saxpy", "t", "--window"},         // missing value
		{"history", "http://x", "saxpy", "t", "--window", "1"},    // window < 2
		{"history", "http://x", "saxpy", "t", "--threshold", "0"}, // bad threshold
		{"history", "http://x", "saxpy", "t", "--bogus", "v"},     // unknown flag
		{"history", "http://127.0.0.1:1", "saxpy", "t"},           // unreachable server
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestRunServeCmdFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"serve", "--addr"},         // missing value
		{"serve", "--data"},         // missing value
		{"serve", "unexpected-arg"}, // unknown argument
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
