package main

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/metricsdb"
	"repro/internal/resultsd"
	"repro/internal/resultshard"
	"repro/internal/resultstore"
	"repro/internal/telemetry"
)

// serveCmd implements `benchpark serve [--addr A] [--data DIR]
// [--metrics] [--pprof] [--selfmonitor DUR] [--shards N]
// [--shard-queue N] [--shard-slow DUR] [--replica-of URL]
// [--sync-interval DUR]`: run the results federation service in one of
// three modes.
//
//   - Default: one durable resultstore (today's single-node mode).
//   - --shards N (N > 1): a sharded primary — N independent stores
//     behind the deterministic (system, benchmark) router, with
//     bounded ingest queues (--shard-queue) and the /v1/replica
//     endpoints followers pull from. --shard-slow injects a per-commit
//     delay for fault-injection drills.
//   - --replica-of URL: a read-only follower replica of a sharded
//     primary, serving /v1/series, /v1/regressions and /v1/systems
//     from a snapshot-shipped mirror refreshed every --sync-interval.
//
// --metrics adds the /metrics and /debug/ops operations endpoints,
// --pprof the /debug/pprof profile handlers, and --selfmonitor starts
// a loop sampling the service's own request latency into the store
// through the normal ingest path. The process runs until killed; the
// stores' WALs make that safe at any instant.
func serveCmd(args []string, opts *execOpts) error {
	addr := "127.0.0.1:8321"
	dataDir := "benchpark-results"
	withMetrics, withPprof := false, false
	var selfmonitor time.Duration
	shards := 0
	shardQueue := 0
	var shardSlow time.Duration
	replicaOf := ""
	syncInterval := time.Second
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "--addr", "-addr":
			if i+1 >= len(args) {
				return fmt.Errorf("--addr needs a host:port")
			}
			addr = args[i+1]
			i++
		case "--data", "-data":
			if i+1 >= len(args) {
				return fmt.Errorf("--data needs a directory")
			}
			dataDir = args[i+1]
			i++
		case "--metrics", "-metrics":
			withMetrics = true
		case "--pprof", "-pprof":
			withPprof = true
		case "--selfmonitor", "-selfmonitor":
			if i+1 >= len(args) {
				return fmt.Errorf("--selfmonitor needs an interval (e.g. 30s)")
			}
			d, err := time.ParseDuration(args[i+1])
			if err != nil || d <= 0 {
				return fmt.Errorf("bad --selfmonitor interval %q", args[i+1])
			}
			selfmonitor = d
			i++
		case "--shards", "-shards":
			if i+1 >= len(args) {
				return fmt.Errorf("--shards needs a count")
			}
			n, err := strconv.Atoi(args[i+1])
			if err != nil || n < 1 {
				return fmt.Errorf("bad --shards count %q", args[i+1])
			}
			shards = n
			i++
		case "--shard-queue", "-shard-queue":
			if i+1 >= len(args) {
				return fmt.Errorf("--shard-queue needs a depth")
			}
			n, err := strconv.Atoi(args[i+1])
			if err != nil || n < 1 {
				return fmt.Errorf("bad --shard-queue depth %q", args[i+1])
			}
			shardQueue = n
			i++
		case "--shard-slow", "-shard-slow":
			if i+1 >= len(args) {
				return fmt.Errorf("--shard-slow needs a duration (e.g. 50ms)")
			}
			d, err := time.ParseDuration(args[i+1])
			if err != nil || d <= 0 {
				return fmt.Errorf("bad --shard-slow duration %q", args[i+1])
			}
			shardSlow = d
			i++
		case "--replica-of", "-replica-of":
			if i+1 >= len(args) {
				return fmt.Errorf("--replica-of needs a primary URL")
			}
			replicaOf = args[i+1]
			i++
		case "--sync-interval", "-sync-interval":
			if i+1 >= len(args) {
				return fmt.Errorf("--sync-interval needs a duration (e.g. 1s)")
			}
			d, err := time.ParseDuration(args[i+1])
			if err != nil || d <= 0 {
				return fmt.Errorf("bad --sync-interval %q", args[i+1])
			}
			syncInterval = d
			i++
		default:
			return fmt.Errorf("serve: unknown argument %q", args[i])
		}
	}
	if replicaOf != "" && shards > 0 {
		return fmt.Errorf("serve: --replica-of and --shards are mutually exclusive (a replica mirrors the primary's topology)")
	}

	// The server gets its own wall-clock tracer so request metrics
	// accrue for the life of the process; --trace-out additionally
	// dumps them when the listener stops.
	tracer := telemetry.New(nil)
	var sopts []resultsd.Option
	if withMetrics {
		sopts = append(sopts, resultsd.WithOps())
	}
	if withPprof {
		sopts = append(sopts, resultsd.WithPprof())
	}

	var backend resultsd.Backend
	mode := ""
	switch {
	case replicaOf != "":
		f := resultshard.NewFollower()
		src := resultsd.NewReplicaClient(replicaOf)
		fctx, fcancel := context.WithCancel(context.Background())
		defer fcancel()
		go resultsd.RunFollower(fctx, f, src, syncInterval, tracer)
		backend = f
		mode = fmt.Sprintf("replica of %s (sync every %s)", replicaOf, syncInterval)
	case shards > 1:
		router, err := resultshard.Open(dataDir, resultshard.Options{
			Shards:      shards,
			QueueDepth:  shardQueue,
			CommitDelay: shardSlow,
		})
		if err != nil {
			return err
		}
		defer router.Close()
		backend = router
		mode = fmt.Sprintf("%d shards (data %s)", shards, dataDir)
	default:
		store, err := resultstore.Open(dataDir, resultstore.Options{})
		if err != nil {
			return err
		}
		defer store.Close()
		backend = store
		mode = fmt.Sprintf("single store (data %s)", dataDir)
	}

	srv := resultsd.New(backend, tracer, sopts...)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("==> resultsd serving %d results on http://%s, %s\n",
		backend.Len(), ln.Addr(), mode)
	if withMetrics {
		fmt.Printf("==> ops plane on http://%s/metrics and /debug/ops\n", ln.Addr())
	}
	if selfmonitor > 0 {
		mon := resultsd.NewSelfMonitor(resultsd.NewClient("http://"+ln.Addr().String()), srv, "")
		mctx, mcancel := context.WithCancel(context.Background())
		defer mcancel()
		go mon.Run(mctx, selfmonitor)
		fmt.Printf("==> selfmonitor sampling every %s\n", selfmonitor)
	}
	serveErr := http.Serve(ln, srv.Handler())
	if opts.traceOut != "" {
		if err := writeTrace(opts.traceOut, tracer.Snapshot()); err != nil {
			return err
		}
	}
	return serveErr
}

// pushCmd implements `benchpark push <suite> <system> <server-url>`:
// run the suite in a scratch workspace and push the engine report's
// results to a resultsd endpoint through the same
// metricsdb.ResultsFromReport bridge the CI pipelines use. The ingest
// key is derived from the result content, so re-pushing an identical
// run is a server-side no-op. Under --trace-out, the push itself is a
// "push:cli" span in the run's trace, and the client propagates the
// trace context to the server, so the stored results carry this run's
// trace ID as provenance.
func pushCmd(args []string, opts *execOpts) (err error) {
	if len(args) != 3 {
		return fmt.Errorf("usage: benchpark push <suite> <system> <server-url>")
	}
	suite, system, serverURL := args[0], args[1], args[2]
	dir, err := os.MkdirTemp("", "benchpark-push-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	bp := core.New()
	sess, err := bp.Setup(suite, system, dir)
	if err != nil {
		return err
	}
	ctx, cancel := opts.context()
	defer cancel()
	ctx, err = opts.instrument(ctx)
	if err != nil {
		return err
	}
	// The trace is written on the way out, AFTER the push, so the
	// push:cli span (and its propagated server join) is part of it.
	defer func() {
		if ferr := opts.finish(); ferr != nil && err == nil {
			err = ferr
		}
	}()
	rep, erep, err := sess.Run(ctx, core.RunOptions{Jobs: opts.jobs, Timeout: opts.timeout})
	if err != nil {
		return err
	}
	results := metricsdb.ResultsFromReport(erep, sess.Manifests(rep))
	if len(results) == 0 {
		return fmt.Errorf("push: %s on %s produced no publishable results (%d experiments, %d failed)",
			suite, system, rep.Total, rep.Failed)
	}
	data, err := json.Marshal(results)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(data)
	key := fmt.Sprintf("cli-%s-%s-%x", sess.Suite, system, sum[:8])
	client := resultsd.NewClient(serverURL)
	pctx, span := telemetry.StartSpan(ctx, "push:cli")
	span.SetAttr("ingest_key", key)
	span.SetInt("results", len(results))
	resp, err := client.Push(pctx, key, results)
	if err != nil {
		span.SetError(err)
		span.End()
		return err
	}
	span.End()
	if resp.Duplicate {
		fmt.Printf("==> server already holds this batch (key %s); nothing pushed\n", key)
	} else {
		fmt.Printf("==> pushed %d results from %s@%s (key %s)\n", resp.Accepted, suite, system, key)
	}
	if rep.Failed > 0 {
		fmt.Printf("==> note: %d of %d experiments failed and were not pushed\n", rep.Failed, rep.Total)
	}
	return nil
}

// historyCmd implements `benchpark history <server-url> <benchmark>
// <fom> [--system S] [--workload W] [--experiment E] [--window N]
// [--threshold T]`: fetch a FOM's series and the server-side
// regression scan, and print them as one annotated table — the
// "introspection into benchmark performance across systems and time"
// view of Section 5, over the network.
func historyCmd(args []string, opts *execOpts) error {
	if len(args) < 3 {
		return fmt.Errorf("usage: benchpark history <server-url> <benchmark> <fom> [--system S] [--window N] [--threshold T]")
	}
	serverURL, benchmark, fom := args[0], args[1], args[2]
	f := metricsdb.Filter{Benchmark: benchmark}
	window, threshold := 0, 0.0
	rest := args[3:]
	for i := 0; i < len(rest); i++ {
		need := func() (string, error) {
			if i+1 >= len(rest) {
				return "", fmt.Errorf("%s needs a value", rest[i])
			}
			i++
			return rest[i], nil
		}
		switch rest[i] {
		case "--system", "-system":
			v, err := need()
			if err != nil {
				return err
			}
			f.System = v
		case "--workload", "-workload":
			v, err := need()
			if err != nil {
				return err
			}
			f.Workload = v
		case "--experiment", "-experiment":
			v, err := need()
			if err != nil {
				return err
			}
			f.Experiment = v
		case "--window", "-window":
			v, err := need()
			if err != nil {
				return err
			}
			n, err := strconv.Atoi(v)
			if err != nil || n < 2 {
				return fmt.Errorf("bad window %q", v)
			}
			window = n
		case "--threshold", "-threshold":
			v, err := need()
			if err != nil {
				return err
			}
			t, err := strconv.ParseFloat(v, 64)
			if err != nil || t <= 0 {
				return fmt.Errorf("bad threshold %q", v)
			}
			threshold = t
		default:
			return fmt.Errorf("history: unknown argument %q", rest[i])
		}
	}
	ctx, cancel := opts.context()
	defer cancel()
	client := resultsd.NewClient(serverURL)
	points, err := client.Series(ctx, f, fom)
	if err != nil {
		return err
	}
	if len(points) == 0 {
		fmt.Printf("no results for %s/%s on the server\n", benchmark, fom)
		return nil
	}
	regs, err := client.Regressions(ctx, f, fom, window, threshold)
	if err != nil {
		return err
	}
	flagged := make(map[int]resultsd.RegressionRecord, len(regs))
	for _, r := range regs {
		flagged[r.Seq] = r
	}
	fmt.Printf("==> %s/%s: %d samples, %d regressions\n", benchmark, fom, len(points), len(regs))
	fmt.Printf("%6s %14s\n", "seq", "value")
	for _, p := range points {
		line := fmt.Sprintf("%6d %14.6g", p.Seq, p.Value)
		if r, ok := flagged[p.Seq]; ok {
			line += fmt.Sprintf("   <-- REGRESSION %.2fx vs baseline %.6g", r.Ratio, r.Baseline)
		}
		fmt.Println(line)
	}
	return nil
}
