package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunListCommands(t *testing.T) {
	for _, args := range [][]string{
		{"suites"},
		{"systems"},
		{"components"},
		{"help"},
		{},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunSpecCmd(t *testing.T) {
	if err := run([]string{"spec", "cts1", "saxpy+openmp"}); err != nil {
		t.Errorf("spec: %v", err)
	}
	if err := run([]string{"spec", "nosuchsystem", "saxpy"}); err == nil {
		t.Error("unknown system should fail")
	}
	if err := run([]string{"spec", "cts1"}); err == nil {
		t.Error("missing spec should fail")
	}
	if err := run([]string{"spec", "cts1", "@@@"}); err == nil {
		t.Error("bad spec should fail")
	}
}

func TestRunFindCmd(t *testing.T) {
	if err := run([]string{"find", "cts1"}); err != nil {
		t.Errorf("find: %v", err)
	}
	if err := run([]string{"find", "cts1", "cmake"}); err != nil {
		t.Errorf("find with constraint: %v", err)
	}
	if err := run([]string{"find"}); err == nil {
		t.Error("missing system should fail")
	}
}

func TestRunSuiteEndToEnd(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"saxpy/openmp", "cts1", dir}); err != nil {
		t.Fatalf("suite run: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "logs", "results.json")); err != nil {
		t.Errorf("results artifact missing: %v", err)
	}
}

func TestRunBadArgs(t *testing.T) {
	if err := run([]string{"only-one-arg-that-is-not-a-command", "x"}); err == nil {
		t.Error("wrong arity should fail")
	}
	if err := run([]string{"nope/nope", "cts1", t.TempDir()}); err == nil {
		t.Error("unknown suite should fail")
	}
	if err := run([]string{"figure14", "not-a-number"}); err == nil {
		t.Error("bad scale should fail")
	}
}

func TestRunRegressionsCmd(t *testing.T) {
	// Build a database file with an obvious regression.
	js := `[
	  {"id":1,"seq":1,"benchmark":"saxpy","foms":{"time":1.0}},
	  {"id":2,"seq":2,"benchmark":"saxpy","foms":{"time":1.0}},
	  {"id":3,"seq":3,"benchmark":"saxpy","foms":{"time":1.0}},
	  {"id":4,"seq":4,"benchmark":"saxpy","foms":{"time":1.0}},
	  {"id":5,"seq":5,"benchmark":"saxpy","foms":{"time":1.0}},
	  {"id":6,"seq":6,"benchmark":"saxpy","foms":{"time":2.5}}
	]`
	path := filepath.Join(t.TempDir(), "results.json")
	if err := os.WriteFile(path, []byte(js), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"regressions", path, "saxpy", "time"}); err != nil {
		t.Errorf("regressions: %v", err)
	}
	if err := run([]string{"regressions", "/nonexistent.json", "saxpy", "time"}); err == nil {
		t.Error("missing file should fail")
	}
	if err := run([]string{"regressions", path}); err == nil {
		t.Error("wrong arity should fail")
	}
}

func TestRunArchiveCmd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ws.tar.gz")
	if err := run([]string{"archive", "saxpy/openmp", "cts1", out}); err != nil {
		t.Fatalf("archive: %v", err)
	}
	fi, err := os.Stat(out)
	if err != nil || fi.Size() == 0 {
		t.Errorf("archive file: %v", err)
	}
	if err := run([]string{"archive", "saxpy/openmp"}); err == nil {
		t.Error("wrong arity should fail")
	}
}

func TestRunFigure14WithSVG(t *testing.T) {
	svg := filepath.Join(t.TempDir(), "fig14.svg")
	if err := run([]string{"figure14", "36", "72", "144", "-svg", svg}); err != nil {
		t.Fatalf("figure14: %v", err)
	}
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") || !strings.Contains(string(data), "circle") {
		t.Error("svg content wrong")
	}
	if err := run([]string{"figure14", "-svg"}); err == nil {
		t.Error("-svg without path should fail")
	}
}

func TestRunCIDemo(t *testing.T) {
	if err := run([]string{"ci-demo"}); err != nil {
		t.Fatalf("ci-demo: %v", err)
	}
}

func TestRunDashboardCmd(t *testing.T) {
	html := filepath.Join(t.TempDir(), "dash.html")
	if err := run([]string{"dashboard", html}); err != nil {
		t.Fatalf("dashboard: %v", err)
	}
	data, err := os.ReadFile(html)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<table>", "saxpy", "stream"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("html missing %q", want)
		}
	}
}

func TestRunProvisionCmd(t *testing.T) {
	if err := run([]string{"provision", "cli-test-burst", "c5n.18xlarge", "8"}); err != nil {
		t.Fatalf("provision: %v", err)
	}
	if err := run([]string{"provision", "cli-test-burst", "c5n.18xlarge", "8"}); err == nil {
		t.Error("duplicate name should fail")
	}
	if err := run([]string{"provision", "x", "bad-type", "8"}); err == nil {
		t.Error("bad type should fail")
	}
	if err := run([]string{"provision", "y", "c5n.18xlarge", "NaN"}); err == nil {
		t.Error("bad count should fail")
	}
}

func TestRunReportCmd(t *testing.T) {
	if testing.Short() {
		t.Skip("report reruns the reproduction experiments")
	}
	out := filepath.Join(t.TempDir(), "report.md")
	if err := run([]string{"report", out}); err != nil {
		t.Fatalf("report: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Figure 14") || !strings.Contains(string(data), "MATCH") {
		t.Error("report content wrong")
	}
}

func TestRunSuiteFailurePath(t *testing.T) {
	// saxpy/cuda on a CPU system fails at setup, through the CLI.
	if err := run([]string{"saxpy/cuda", "cts1", t.TempDir()}); err == nil {
		t.Error("incompatible suite should fail")
	}
}

func TestGlobalFlagsParsing(t *testing.T) {
	opts, rest, err := parseGlobalFlags([]string{"--jobs", "4", "suites", "--timeout", "30s"})
	if err != nil {
		t.Fatal(err)
	}
	if opts.jobs != 4 || opts.timeout.Seconds() != 30 {
		t.Errorf("opts = %+v", opts)
	}
	if len(rest) != 1 || rest[0] != "suites" {
		t.Errorf("rest = %v", rest)
	}
	for _, bad := range [][]string{
		{"--jobs"},             // missing value
		{"--jobs", "x"},        // not a number
		{"--jobs", "0"},        // not positive
		{"--timeout"},          // missing value
		{"--timeout", "bogus"}, // not a duration
		{"--timeout", "-5s"},   // not positive
	} {
		if _, _, err := parseGlobalFlags(bad); err == nil {
			t.Errorf("parseGlobalFlags(%v) should fail", bad)
		}
	}
}

// TestRunSuiteWithJobsFlag runs a suite through the CLI with a bounded
// worker pool and an ample deadline — the flags flow into the engine.
func TestRunSuiteWithJobsFlag(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"--jobs", "2", "--timeout", "10m", "saxpy/openmp", "cts1", dir}); err != nil {
		t.Fatalf("suite run with flags: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "logs", "results.json")); err != nil {
		t.Errorf("results artifact missing: %v", err)
	}
}

// TestRunSuiteWithTraceOut runs a suite with every trace format and
// checks the export lands on disk in the right shape.
func TestRunSuiteWithTraceOut(t *testing.T) {
	out := t.TempDir()

	trace := filepath.Join(out, "trace.json")
	if err := run([]string{"run", "--trace-out=" + trace, "saxpy/openmp", "cts1", filepath.Join(out, "ws1")}); err != nil {
		t.Fatalf("traced run: %v", err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"format": "benchpark-trace-1"`, `"session"`, `"engine.run"`, "engine_stage_seconds"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("trace missing %q", want)
		}
	}

	cali := filepath.Join(out, "trace.cali")
	if err := run([]string{"--trace-out", cali, "saxpy/openmp", "cts1", filepath.Join(out, "ws2")}); err != nil {
		t.Fatalf("cali run: %v", err)
	}
	if data, err = os.ReadFile(cali); err != nil || !strings.Contains(string(data), "regions") {
		t.Errorf("caliper profile: %v %.60s", err, data)
	}

	prom := filepath.Join(out, "metrics.prom")
	if err := run([]string{"--trace-out", prom, "saxpy/openmp", "cts1", filepath.Join(out, "ws3")}); err != nil {
		t.Fatalf("prom run: %v", err)
	}
	if data, err = os.ReadFile(prom); err != nil || !strings.Contains(string(data), "# TYPE") {
		t.Errorf("prometheus exposition: %v %.60s", err, data)
	}
}

func TestLogLevelFlagValidation(t *testing.T) {
	if _, _, err := parseGlobalFlags([]string{"--log-level", "loud"}); err == nil {
		t.Error("bad log level should fail at parse time")
	}
	opts, rest, err := parseGlobalFlags([]string{"--log-level=debug", "--trace-out=t.json", "suites"})
	if err != nil {
		t.Fatal(err)
	}
	if opts.logLevel != "debug" || opts.traceOut != "t.json" {
		t.Errorf("opts = %+v", opts)
	}
	if len(rest) != 1 || rest[0] != "suites" {
		t.Errorf("rest = %v", rest)
	}
}

func TestRunSuiteTimeoutCancels(t *testing.T) {
	// A 1ns deadline expires before the engine's first stage; the run
	// must fail with a cancellation error instead of hanging.
	err := run([]string{"--timeout", "1ns", "saxpy/openmp", "cts1", t.TempDir()})
	if err == nil {
		t.Fatal("expired deadline should fail the run")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Errorf("error = %v, want a deadline error", err)
	}
}
