package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestCLIBaselineRatchet walks the ratchet's whole life cycle against
// a real module: bootstrap an empty baseline, record the existing
// debt, absorb it on re-runs, fail on a NEW finding, and prune stale
// entries once the debt is paid.
func TestCLIBaselineRatchet(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":                    "module tmplint\n\ngo 1.22\n",
		"internal/engine/engine.go": badEngine,
	})
	blFile := filepath.Join(dir, "baseline.json")

	// A missing baseline is empty: everything gates.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-baseline", blFile}, &stdout, &stderr); code != 1 {
		t.Fatalf("missing-baseline exit code = %d, want 1", code)
	}

	// -baseline-update records the debt; the same run then passes.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", dir, "-baseline", blFile, "-baseline-update"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-baseline-update exit code = %d, want 0\n%s%s", code, stdout.String(), stderr.String())
	}
	b, err := analysis.LoadBaseline(blFile)
	if err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(b.Entries) != 1 || b.Entries[0].Analyzer != "ctxflow" || b.Entries[0].Count != 1 {
		t.Fatalf("baseline entries = %+v, want one ctxflow entry with count 1", b.Entries)
	}
	if b.Entries[0].File != "internal/engine/engine.go" {
		t.Errorf("baseline file = %q, want internal/engine/engine.go", b.Entries[0].File)
	}

	// Subsequent runs absorb the recorded finding; -v still shows it.
	stdout.Reset()
	if code := run([]string{"-C", dir, "-baseline", blFile, "-v"}, &stdout, &stderr); code != 0 {
		t.Fatalf("baselined run exit code = %d, want 0\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "(baselined)") {
		t.Errorf("-v output does not mark the baselined finding:\n%s", stdout.String())
	}

	// A NEW finding — a second instance of the same message included —
	// exceeds the recorded count and fails the run.
	src := filepath.Join(dir, "internal", "engine", "engine.go")
	content, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	grown := string(content) + "\nfunc runAgain() error {\n\tctx := context.TODO()\n\t_ = ctx\n\treturn nil\n}\n"
	if err := os.WriteFile(src, []byte(grown), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", dir, "-baseline", blFile}, &stdout, &stderr); code != 1 {
		t.Fatalf("new-finding exit code = %d, want 1\n%s%s", code, stdout.String(), stderr.String())
	}
	if got := strings.Count(stdout.String(), "ctxflow"); got != 1 {
		t.Errorf("want exactly the 1 new finding in output, got %d:\n%s", got, stdout.String())
	}

	// Paying off the debt and updating prunes the stale entries.
	if err := os.WriteFile(src, []byte("// Package engine is a fixture.\npackage engine\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", dir, "-baseline", blFile, "-baseline-update"}, &stdout, &stderr); code != 0 {
		t.Fatalf("prune update exit code = %d, want 0\n%s%s", code, stdout.String(), stderr.String())
	}
	b, err = analysis.LoadBaseline(blFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) != 0 {
		t.Errorf("stale baseline entries survived the update: %+v", b.Entries)
	}
}

// TestCLIBaselineCorruptFailsClosed pins the failure posture: a
// baseline that does not parse (or carries the wrong schema) degrades
// to an empty baseline — every finding gates — instead of silently
// passing everything.
func TestCLIBaselineCorruptFailsClosed(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":                    "module tmplint\n\ngo 1.22\n",
		"internal/engine/engine.go": badEngine,
	})
	blFile := filepath.Join(dir, "baseline.json")

	for name, content := range map[string]string{
		"garbage":      "{not json",
		"wrong-schema": `{"schema":"benchlint-baseline-0","entries":[]}`,
	} {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(blFile, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			var stdout, stderr bytes.Buffer
			if code := run([]string{"-C", dir, "-baseline", blFile}, &stdout, &stderr); code != 1 {
				t.Fatalf("corrupt-baseline exit code = %d, want 1 (full-fail)\n%s", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), "treating baseline as empty") {
				t.Errorf("stderr does not explain the degraded baseline:\n%s", stderr.String())
			}
		})
	}
}

// TestCLISARIF pins the SARIF surface: valid 2.1.0 JSON, one run, the
// full rule inventory, and per-finding results with suppressed ones
// carried as suppressions rather than dropped.
func TestCLISARIF(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":                    "module tmplint\n\ngo 1.22\n",
		"internal/engine/engine.go": badEngine,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-format", "sarif"}, &stdout, &stderr); code != 1 {
		t.Fatalf("sarif exit code = %d, want 1 (the finding still gates)", code)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string            `json:"name"`
					Rules []json.RawMessage `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				Suppressions []struct {
					Kind string `json:"kind"`
				} `json:"suppressions"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q with %d runs, want 2.1.0 with 1 run", log.Version, len(log.Runs))
	}
	r := log.Runs[0]
	if r.Tool.Driver.Name != "benchlint" {
		t.Errorf("driver = %q, want benchlint", r.Tool.Driver.Name)
	}
	if len(r.Tool.Driver.Rules) != len(analysis.Suite()) {
		t.Errorf("rules = %d, want the full suite of %d", len(r.Tool.Driver.Rules), len(analysis.Suite()))
	}
	if len(r.Results) != 2 {
		t.Fatalf("results = %d, want 2 (1 live, 1 suppressed)", len(r.Results))
	}
	live, suppressed := r.Results[0], r.Results[1]
	if live.RuleID != "ctxflow" || live.Level != "error" || len(live.Suppressions) != 0 {
		t.Errorf("live result = %+v, want gating ctxflow error", live)
	}
	if loc := live.Locations[0].PhysicalLocation; loc.ArtifactLocation.URI != "internal/engine/engine.go" || loc.Region.StartLine != 7 {
		t.Errorf("live location = %+v, want internal/engine/engine.go:7", loc)
	}
	if suppressed.Level != "note" || len(suppressed.Suppressions) != 1 || suppressed.Suppressions[0].Kind != "inSource" {
		t.Errorf("suppressed result = %+v, want note with inSource suppression", suppressed)
	}
}
