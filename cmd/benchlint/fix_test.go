package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixableEngine has exactly two findings, both with mechanical fixes:
// a span never Ended (spanend inserts the defer) and a fresh context
// in a function that already has a ctx parameter (ctxflow reroutes
// it).
const fixableEngine = `// Package engine is a fixture.
package engine

import "context"

type tracer struct{}

type span struct{}

func (tracer) StartSpan(ctx context.Context, name string) (context.Context, *span) {
	return ctx, &span{}
}

func (*span) End() {}

func work(ctx context.Context, t tracer) error {
	ctx, s := t.StartSpan(ctx, "work")
	_ = ctx
	_ = s
	return nil
}

func mint(ctx context.Context) {
	use(context.Background())
}

func use(ctx context.Context) { _ = ctx }
`

func TestCLIFixDiffIdempotent(t *testing.T) {
	files := map[string]string{
		"go.mod":                    "module tmplint\n\ngo 1.22\n",
		"internal/engine/engine.go": fixableEngine,
	}
	dir := writeModule(t, files)
	src := filepath.Join(dir, "internal", "engine", "engine.go")

	// -diff previews both fixes without writing, and still exits 1:
	// the findings are real until someone applies them.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-diff"}, &stdout, &stderr); code != 1 {
		t.Fatalf("-diff exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	diff := stdout.String()
	for _, want := range []string{"--- a/internal/engine/engine.go", "@@", "defer s.End()", "use(ctx)"} {
		if !strings.Contains(diff, want) {
			t.Errorf("-diff output missing %q:\n%s", want, diff)
		}
	}
	after, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != fixableEngine {
		t.Error("-diff modified the source tree")
	}

	// -fix applies both; repaired findings no longer gate the exit.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", dir, "-fix"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-fix exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	fixed, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixed), "defer s.End()") || !strings.Contains(string(fixed), "use(ctx)") {
		t.Fatalf("-fix did not apply both edits:\n%s", fixed)
	}

	// The fixed tree is clean and gofmt-stable: a second -fix run
	// finds nothing and changes nothing (idempotence).
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", dir, "-fix"}, &stdout, &stderr); code != 0 {
		t.Fatalf("second -fix exit code = %d, want 0\n%s%s", code, stdout.String(), stderr.String())
	}
	again, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(fixed) {
		t.Errorf("-fix is not idempotent:\nfirst:\n%s\nsecond:\n%s", fixed, again)
	}

	// And the plain run agrees: no findings remain.
	if code := run([]string{"-C", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("fixed module still has findings (exit %d):\n%s", code, stdout.String())
	}
}

// unsortedMetrics has exactly one finding, with a mechanical fix:
// a map-range feeding a hash (maporder rewrites it to sorted keys).
// It lives outside determinism's scope so only maporder fires.
const unsortedMetrics = `// Package metrics is a fixture.
package metrics

import (
	"crypto/sha256"
)

func Digest(m map[string]string) []byte {
	h := sha256.New()
	for k, v := range m {
		h.Write([]byte(k + "=" + v))
	}
	return h.Sum(nil)
}
`

// TestCLIFixMapOrderIdempotent pins the maporder sort-keys rewrite
// end to end: -fix collects, sorts, and ranges the keys (inserting
// the sort import), the fixed tree is clean, and a second -fix is a
// no-op.
func TestCLIFixMapOrderIdempotent(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":                      "module tmplint\n\ngo 1.22\n",
		"internal/metrics/metrics.go": unsortedMetrics,
	})
	src := filepath.Join(dir, "internal", "metrics", "metrics.go")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-fix"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-fix exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	fixed, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"sort"`, "sort.Strings(ks)", "for _, k := range ks", "v := m[k]"} {
		if !strings.Contains(string(fixed), want) {
			t.Errorf("fixed source missing %q:\n%s", want, fixed)
		}
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", dir, "-fix"}, &stdout, &stderr); code != 0 {
		t.Fatalf("second -fix exit code = %d, want 0\n%s%s", code, stdout.String(), stderr.String())
	}
	again, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(fixed) {
		t.Errorf("maporder fix is not idempotent:\nfirst:\n%s\nsecond:\n%s", fixed, again)
	}

	if code := run([]string{"-C", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("fixed module still has findings (exit %d):\n%s", code, stdout.String())
	}
}

// TestCLIListJSON pins the machine-readable analyzer inventory the
// verify gate asserts against.
func TestCLIListJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list", "-json"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list -json exit code = %d", code)
	}
	var entries []struct {
		Name  string   `json:"name"`
		Doc   string   `json:"doc"`
		Scope []string `json:"scope"`
		Fixes bool     `json:"fixes"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &entries); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, stdout.String())
	}
	wantNames := []string{"ctxflow", "determinism", "stageerr", "locks", "spanend", "lockorder", "goroleak", "walack", "purity", "maporder", "keycover", "closecheck", "ctxleak", "sendblock"}
	if len(entries) != len(wantNames) {
		t.Fatalf("inventory has %d analyzers, want %d:\n%s", len(entries), len(wantNames), stdout.String())
	}
	wantFixes := map[string]bool{"ctxflow": true, "spanend": true, "maporder": true, "keycover": true, "closecheck": true, "ctxleak": true}
	for i, e := range entries {
		if e.Name != wantNames[i] {
			t.Errorf("entry %d = %q, want %q", i, e.Name, wantNames[i])
		}
		if e.Doc == "" {
			t.Errorf("%s: empty doc", e.Name)
		}
		if e.Scope == nil {
			t.Errorf("%s: scope must be [] not null", e.Name)
		}
		if e.Fixes != wantFixes[e.Name] {
			t.Errorf("%s: fixes = %v, want %v", e.Name, e.Fixes, wantFixes[e.Name])
		}
	}
}

// TestCLICacheCounters pins the -json cache counters: a warm run
// replays every package (zero misses) and reports identical findings;
// an edit brings misses back.
func TestCLICacheCounters(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":                    "module tmplint\n\ngo 1.22\n",
		"internal/engine/engine.go": badEngine,
	})
	cacheDir := t.TempDir()

	type output struct {
		Packages int
		Cache    struct{ Hits, Misses int }
		Findings json.RawMessage
	}
	runJSON := func() output {
		t.Helper()
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-C", dir, "-json", "-cache", cacheDir}, &stdout, &stderr); code != 1 {
			t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
		}
		var out output
		if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
			t.Fatalf("invalid JSON: %v\n%s", err, stdout.String())
		}
		return out
	}

	cold := runJSON()
	if cold.Cache.Hits != 0 || cold.Cache.Misses != cold.Packages {
		t.Fatalf("cold cache = %+v over %d packages, want all misses", cold.Cache, cold.Packages)
	}
	warm := runJSON()
	if warm.Cache.Misses != 0 || warm.Cache.Hits != warm.Packages {
		t.Fatalf("warm cache = %+v over %d packages, want all hits", warm.Cache, warm.Packages)
	}
	if !bytes.Equal(cold.Findings, warm.Findings) {
		t.Errorf("warm findings differ from cold:\n cold %s\n warm %s", cold.Findings, warm.Findings)
	}

	src := filepath.Join(dir, "internal", "engine", "engine.go")
	content, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(src, append(content, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	edited := runJSON()
	if edited.Cache.Misses == 0 {
		t.Error("edited package replayed from cache")
	}
}

// leakyResultsd has exactly two findings, both in the resource-leak
// tier with mechanical fixes: a cancel func not called on the error
// path (ctxleak defers it after the acquisition) and a ticker never
// stopped (closecheck defers the Stop).
const leakyResultsd = `// Package resultsd is a fixture.
package resultsd

import (
	"context"
	"time"
)

func attempt(ctx context.Context, fail bool) error {
	cctx, cancel := context.WithCancel(ctx)
	if fail {
		return context.Canceled
	}
	cancel()
	return cctx.Err()
}

func tick(d time.Duration, done chan struct{}) {
	t := time.NewTicker(d)
	for {
		select {
		case <-done:
			return
		case <-t.C:
		}
	}
}
`

// TestCLIFixLeakTierIdempotent pins the closecheck and ctxleak
// repairs end to end: -fix defers the cancel and the Stop, the fixed
// tree is clean, and a second -fix is a no-op.
func TestCLIFixLeakTierIdempotent(t *testing.T) {
	files := map[string]string{
		"go.mod":                        "module tmplint\n\ngo 1.22\n",
		"internal/resultsd/resultsd.go": leakyResultsd,
	}
	dir := writeModule(t, files)
	src := filepath.Join(dir, "internal", "resultsd", "resultsd.go")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-fix"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-fix exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	fixed, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"defer cancel()", "defer t.Stop()"} {
		if !strings.Contains(string(fixed), want) {
			t.Fatalf("-fix did not insert %q:\n%s", want, fixed)
		}
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", dir, "-fix"}, &stdout, &stderr); code != 0 {
		t.Fatalf("second -fix exit code = %d, want 0\n%s%s", code, stdout.String(), stderr.String())
	}
	again, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(fixed) {
		t.Errorf("-fix is not idempotent:\nfirst:\n%s\nsecond:\n%s", fixed, again)
	}

	if code := run([]string{"-C", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("fixed module still has findings (exit %d):\n%s", code, stdout.String())
	}
}
