// Command benchlint runs the project's invariant static-analysis
// suite (internal/analysis) over the module: the machine-checked
// rules the continuous-benchmarking engine's correctness rests on.
//
// Usage:
//
//	benchlint [flags] [packages]
//
//	-C dir      run in dir (the module to lint; default ".")
//	-json       emit findings as JSON (suppressed findings included)
//	-run list   comma-separated analyzer subset (default: all)
//	-list       print the analyzers and exit
//	-v          also print suppressed findings in text mode
//
// Packages default to ./...; any go list pattern works. benchlint
// exits 0 when the module is clean, 1 on unsuppressed findings, and
// 2 on usage or load errors. Suppress a single finding with
// `//benchlint:ignore <analyzer> <reason>` on (or directly above) the
// offending line; mark a documented compatibility wrapper that may
// mint context.Background() with `//benchlint:compat` in its doc
// comment.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir      = fs.String("C", ".", "module directory to lint")
		jsonOut  = fs.Bool("json", false, "emit findings as JSON")
		runList  = fs.String("run", "", "comma-separated analyzers to run (default all)")
		list     = fs.Bool("list", false, "list analyzers and exit")
		verbose  = fs.Bool("v", false, "print suppressed findings too")
		jobsFlag = fs.Int("jobs", 0, "parse/type-check parallelism (default GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.Suite()
	if *runList != "" {
		selected, ok := analysis.ByName(strings.Split(*runList, ","))
		if !ok {
			fmt.Fprintf(stderr, "benchlint: unknown analyzer in -run=%s (have:", *runList)
			for _, a := range analysis.Suite() {
				fmt.Fprintf(stderr, " %s", a.Name)
			}
			fmt.Fprintln(stderr, ")")
			return 2
		}
		analyzers = selected
	}
	if *list {
		for _, a := range analyzers {
			scope := "all packages"
			if len(a.Scope) > 0 {
				scope = strings.Join(a.Scope, ", ")
			}
			fmt.Fprintf(stdout, "%-12s %s [%s]\n", a.Name, a.Doc, scope)
		}
		return 0
	}

	loader := analysis.Loader{Jobs: *jobsFlag}
	mod, pkgs, err := loader.LoadModule(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "benchlint: %v\n", err)
		return 2
	}
	findings := analysis.Run(pkgs, analyzers, mod.Path, mod.Root)

	unsuppressed := 0
	for _, f := range findings {
		if !f.Suppressed {
			unsuppressed++
		}
	}

	if *jsonOut {
		out := struct {
			Module   string             `json:"module"`
			Packages int                `json:"packages"`
			Findings []analysis.Finding `json:"findings"`
		}{Module: mod.Path, Packages: len(pkgs), Findings: findings}
		if out.Findings == nil {
			out.Findings = []analysis.Finding{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "benchlint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			if f.Suppressed {
				if *verbose {
					fmt.Fprintf(stdout, "%s (suppressed: %s)\n", f, f.Reason)
				}
				continue
			}
			fmt.Fprintln(stdout, f.String())
		}
		if unsuppressed > 0 {
			fmt.Fprintf(stderr, "benchlint: %d finding(s) in %d package(s)\n", unsuppressed, len(pkgs))
		}
	}
	if unsuppressed > 0 {
		return 1
	}
	return 0
}
