// Command benchlint runs the project's invariant static-analysis
// suite (internal/analysis) over the module: the machine-checked
// rules the continuous-benchmarking engine's correctness rests on.
//
// Usage:
//
//	benchlint [flags] [packages]
//
//	-C dir      run in dir (the module to lint; default ".")
//	-json       emit findings as JSON (alias for -format json)
//	-format f   output format: text, json, or sarif (SARIF 2.1.0)
//	-run list   comma-separated analyzer subset (default: all)
//	-list       print the analyzers and exit (-json for machine form)
//	-fix        apply suggested fixes to the source tree
//	-diff       print suggested fixes as unified diffs (no writes)
//	-cache dir  incremental cache: unchanged packages replay findings
//	-baseline f ratchet file: only findings NOT in f gate the exit code
//	-baseline-update  rewrite the ratchet file from this run's findings
//	-v          also print suppressed/baselined findings in text mode
//
// Packages default to ./...; any go list pattern works. benchlint
// exits 0 when the module is clean, 1 on unsuppressed findings, and
// 2 on usage or load errors. With -fix, findings repaired by an
// applied fix no longer count against the exit code. With -baseline,
// findings recorded in the ratchet file are reported but do not gate —
// only new findings fail — and a missing file is an empty baseline
// while a corrupt one degrades to full-fail, never silent-pass.
// Suppress a single finding with `//benchlint:ignore <analyzer>
// <reason>` on (or directly above) the offending line — or above the
// statement it sits in — and mark a documented compatibility wrapper
// that may mint context.Background() with `//benchlint:compat` in its
// doc comment.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir      = fs.String("C", ".", "module directory to lint")
		jsonOut  = fs.Bool("json", false, "emit findings as JSON")
		runList  = fs.String("run", "", "comma-separated analyzers to run (default all)")
		list     = fs.Bool("list", false, "list analyzers and exit")
		fix      = fs.Bool("fix", false, "apply suggested fixes to the source tree")
		diff     = fs.Bool("diff", false, "print suggested fixes as unified diffs without applying them")
		cacheDir = fs.String("cache", "", "incremental analysis cache directory (empty disables)")
		verbose  = fs.Bool("v", false, "print suppressed findings too")
		jobsFlag = fs.Int("jobs", 0, "parse/type-check parallelism (default GOMAXPROCS)")
		format   = fs.String("format", "", "output format: text, json, or sarif (default text; -json implies json)")
		baseline = fs.String("baseline", "", "ratchet baseline file: recorded findings do not gate the exit code")
		blUpdate = fs.Bool("baseline-update", false, "rewrite the -baseline file from this run's findings")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format == "" {
		*format = "text"
		if *jsonOut {
			*format = "json"
		}
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "benchlint: unknown -format %q (have: text, json, sarif)\n", *format)
		return 2
	}
	if *blUpdate && *baseline == "" {
		fmt.Fprintln(stderr, "benchlint: -baseline-update requires -baseline")
		return 2
	}

	analyzers := analysis.Suite()
	if *runList != "" {
		selected, ok := analysis.ByName(strings.Split(*runList, ","))
		if !ok {
			fmt.Fprintf(stderr, "benchlint: unknown analyzer in -run=%s (have:", *runList)
			for _, a := range analysis.Suite() {
				fmt.Fprintf(stderr, " %s", a.Name)
			}
			fmt.Fprintln(stderr, ")")
			return 2
		}
		analyzers = selected
	}
	if *list {
		return listAnalyzers(stdout, stderr, analyzers, *format == "json")
	}
	if *fix && *diff {
		fmt.Fprintln(stderr, "benchlint: -fix and -diff are mutually exclusive (use -diff to preview, -fix to apply)")
		return 2
	}

	res, err := analysis.RunModule(analysis.RunOptions{
		Dir:       *dir,
		Patterns:  fs.Args(),
		Analyzers: analyzers,
		Jobs:      *jobsFlag,
		CacheDir:  *cacheDir,
	})
	if err != nil {
		fmt.Fprintf(stderr, "benchlint: %v\n", err)
		return 2
	}
	findings := res.Findings

	// fixedOut[i] marks findings whose fixes -fix applied (they no
	// longer gate the exit code) or -diff would apply.
	fixedOut := make([]bool, len(findings))
	if *fix || *diff {
		contents, applied, err := analysis.ApplyFixes(res.Module.Root, findings)
		if err != nil {
			fmt.Fprintf(stderr, "benchlint: %v\n", err)
			return 2
		}
		for _, file := range sortedFiles(contents) {
			path := filepath.Join(res.Module.Root, file)
			old, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintf(stderr, "benchlint: %v\n", err)
				return 2
			}
			if *diff {
				fmt.Fprint(stdout, analysis.UnifiedDiff(file, old, contents[file]))
				continue
			}
			if err := os.WriteFile(path, contents[file], 0o644); err != nil {
				fmt.Fprintf(stderr, "benchlint: %v\n", err)
				return 2
			}
			fmt.Fprintf(stderr, "benchlint: fixed %s\n", file)
		}
		if *fix {
			fixedOut = applied
		}
	}

	// The ratchet: recorded findings stay visible but do not gate.
	// -baseline-update rewrites the file from the live findings (which
	// prunes stale entries); a corrupt baseline degrades to an empty
	// one — full-fail, never silent-pass.
	if *baseline != "" {
		if *blUpdate {
			live := make([]analysis.Finding, 0, len(findings))
			for i, f := range findings {
				if !fixedOut[i] {
					live = append(live, f)
				}
			}
			if err := analysis.SaveBaseline(*baseline, analysis.BaselineFrom(live)); err != nil {
				fmt.Fprintf(stderr, "benchlint: %v\n", err)
				return 2
			}
			fmt.Fprintf(stderr, "benchlint: baseline %s updated\n", *baseline)
		}
		b, err := analysis.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "benchlint: %v (treating baseline as empty: all findings gate)\n", err)
			b = &analysis.Baseline{}
		}
		b.Apply(findings)
	}

	unsuppressed := 0
	for i, f := range findings {
		if !f.Suppressed && !f.Baselined && !fixedOut[i] {
			unsuppressed++
		}
	}

	if *format == "sarif" {
		data, err := analysis.SARIF(findings, analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "benchlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "%s\n", data)
	} else if *format == "json" {
		out := struct {
			Module   string             `json:"module"`
			Packages int                `json:"packages"`
			Cache    cacheStats         `json:"cache"`
			Findings []analysis.Finding `json:"findings"`
		}{
			Module:   res.Module.Path,
			Packages: len(res.Packages),
			Cache:    cacheStats{Hits: res.CacheHits, Misses: res.CacheMisses},
			Findings: findings,
		}
		if out.Findings == nil {
			out.Findings = []analysis.Finding{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "benchlint: %v\n", err)
			return 2
		}
	} else if !*diff {
		for i, f := range findings {
			if f.Suppressed {
				if *verbose {
					fmt.Fprintf(stdout, "%s (suppressed: %s)\n", f, f.Reason)
				}
				continue
			}
			if f.Baselined {
				if *verbose {
					fmt.Fprintf(stdout, "%s (baselined)\n", f)
				}
				continue
			}
			if fixedOut[i] {
				continue
			}
			fmt.Fprintln(stdout, f.String())
		}
		if unsuppressed > 0 {
			fmt.Fprintf(stderr, "benchlint: %d finding(s) in %d package(s)\n", unsuppressed, len(res.Packages))
		}
	}
	if unsuppressed > 0 {
		return 1
	}
	return 0
}

type cacheStats struct {
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
}

// listAnalyzers prints the analyzer inventory, human- or
// machine-readable. The JSON form is what the verify gate pins the
// expected analyzer set against.
func listAnalyzers(stdout, stderr io.Writer, analyzers []*analysis.Analyzer, jsonOut bool) int {
	if jsonOut {
		type entry struct {
			Name  string   `json:"name"`
			Doc   string   `json:"doc"`
			Scope []string `json:"scope"`
			Fixes bool     `json:"fixes"`
		}
		out := make([]entry, 0, len(analyzers))
		for _, a := range analyzers {
			scope := a.Scope
			if scope == nil {
				scope = []string{}
			}
			out = append(out, entry{Name: a.Name, Doc: a.Doc, Scope: scope, Fixes: a.EmitsFixes})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "benchlint: %v\n", err)
			return 2
		}
		return 0
	}
	for _, a := range analyzers {
		scope := "all packages"
		if len(a.Scope) > 0 {
			scope = strings.Join(a.Scope, ", ")
		}
		fixes := ""
		if a.EmitsFixes {
			fixes = " (fixes)"
		}
		fmt.Fprintf(stdout, "%-12s %s [%s]%s\n", a.Name, a.Doc, scope, fixes)
	}
	return 0
}

// sortedFiles returns the changed-file keys in stable order.
func sortedFiles(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
