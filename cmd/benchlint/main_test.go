package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// writeModule materializes a small throwaway module so the tests can
// exercise findings, suppression, and exit codes without dirtying the
// real repo.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const badEngine = `// Package engine is a fixture.
package engine

import "context"

func run() error {
	ctx := context.TODO()
	_ = ctx
	return nil
}

func runSuppressed() {
	//benchlint:ignore ctxflow wrapper kept for the v0 CLI surface
	use(context.Background())
}

func use(ctx context.Context) { _ = ctx }
`

func TestCLIJSONAndSuppression(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":                    "module tmplint\n\ngo 1.22\n",
		"internal/engine/engine.go": badEngine,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "-json"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	var out struct {
		Module   string
		Packages int
		Findings []analysis.Finding
	}
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON output: %v\n%s", err, stdout.String())
	}
	if out.Module != "tmplint" {
		t.Errorf("module = %q, want tmplint", out.Module)
	}
	if len(out.Findings) != 2 {
		t.Fatalf("want 2 findings (1 live, 1 suppressed), got %v", out.Findings)
	}
	live, suppressed := out.Findings[0], out.Findings[1]
	if live.Suppressed || live.Analyzer != "ctxflow" || live.File != "internal/engine/engine.go" || live.Line != 7 {
		t.Errorf("live finding = %+v, want ctxflow at internal/engine/engine.go:7", live)
	}
	if !suppressed.Suppressed || suppressed.Line != 14 {
		t.Errorf("suppressed finding = %+v, want suppressed at line 14", suppressed)
	}
	if want := "wrapper kept for the v0 CLI surface"; suppressed.Reason != want {
		t.Errorf("suppression reason = %q, want %q", suppressed.Reason, want)
	}
}

func TestCLITextOutputAndExitCodes(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":                    "module tmplint\n\ngo 1.22\n",
		"internal/engine/engine.go": badEngine,
	})

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	text := stdout.String()
	if !strings.Contains(text, "internal/engine/engine.go:7:9: ctxflow:") {
		t.Errorf("text output missing file:line:col diagnostic:\n%s", text)
	}
	if strings.Contains(text, "suppressed") {
		t.Errorf("suppressed finding leaked into default text output:\n%s", text)
	}

	// The suppressed finding appears with -v, marked as such.
	stdout.Reset()
	if code := run([]string{"-C", dir, "-v"}, &stdout, &stderr); code != 1 {
		t.Fatalf("-v exit code = %d, want 1", code)
	}
	if !strings.Contains(stdout.String(), "(suppressed: wrapper kept for the v0 CLI surface)") {
		t.Errorf("-v output missing suppressed finding:\n%s", stdout.String())
	}

	// Restricting to an analyzer with no findings exits clean.
	stdout.Reset()
	if code := run([]string{"-C", dir, "-run", "locks"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-run locks exit code = %d, want 0\n%s", code, stdout.String())
	}

	// Unknown analyzers are a usage error.
	if code := run([]string{"-C", dir, "-run", "nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-run nope exit code = %d, want 2", code)
	}
}

func TestCLIList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit code = %d", code)
	}
	for _, name := range []string{"ctxflow", "determinism", "stageerr", "locks"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}

// TestRepoIsClean is the acceptance gate in test form: the repo's own
// packages must carry zero unsuppressed findings.
func TestRepoIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", "../.."}, &stdout, &stderr); code != 0 {
		t.Fatalf("benchlint on the repo exited %d:\n%s%s", code, stdout.String(), stderr.String())
	}
}
