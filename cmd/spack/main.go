// Command spack exposes the paper's Figure 2 environment workflow as
// a standalone CLI, one command per invocation, with the
// manifest-and-lock state persisted in the environment directory:
//
//	spack env create --dir D --system cts1
//	spack add amg2023+caliper --dir D
//	spack concretize --dir D            (writes spack.lock)
//	spack install --dir D               (reads spack.lock, writes installdb.json)
//	spack find --dir D
//	spack uninstall --dir D <package>
//
// The directory after these commands contains spack.yaml (Figure 3),
// configs/ (Figures 4/9/12 per system), spack.lock, and
// installdb.json — the complete reproducible state of Section 3.1.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/concretizer"
	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/hpcsim"
	"repro/internal/install"
	"repro/internal/pkgrepo"
	"repro/internal/spec"
	"repro/internal/yamlite"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "spack:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Println(`usage:
  spack env create --dir D --system <system>
  spack add <spec> --dir D
  spack concretize --dir D
  spack install --dir D
  spack find --dir D
  spack uninstall <package> --dir D`)
}

// splitArgs separates positional arguments from --flag value pairs.
func splitArgs(args []string) (pos []string, flags map[string]string, err error) {
	flags = map[string]string{}
	for i := 0; i < len(args); i++ {
		a := args[i]
		if len(a) > 0 && a[0] == '-' {
			key := a
			for len(key) > 0 && key[0] == '-' {
				key = key[1:]
			}
			if i+1 >= len(args) {
				return nil, nil, fmt.Errorf("flag %s needs a value", a)
			}
			flags[key] = args[i+1]
			i++
			continue
		}
		pos = append(pos, a)
	}
	return pos, flags, nil
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return nil
	}
	cmd := args[0]
	rest := args[1:]
	if cmd == "env" {
		if len(rest) == 0 || rest[0] != "create" {
			usage()
			return fmt.Errorf("only `spack env create` is supported")
		}
		rest = rest[1:]
		cmd = "env-create"
	}
	pos, flags, err := splitArgs(rest)
	if err != nil {
		return err
	}
	switch cmd {
	case "env-create":
		return envCreate(flags)
	case "add":
		return addSpec(pos, flags)
	case "concretize":
		return concretize(flags)
	case "install":
		return installCmd(flags)
	case "find":
		return findCmd(flags)
	case "uninstall":
		return uninstallCmd(pos, flags)
	case "help", "-h", "--help":
		usage()
		return nil
	}
	usage()
	return fmt.Errorf("unknown command %q", cmd)
}

func needDir(flags map[string]string) (string, error) {
	d := flags["dir"]
	if d == "" {
		return "", fmt.Errorf("missing --dir")
	}
	return d, nil
}

// envCreate writes an empty manifest plus the system's config scope.
func envCreate(flags map[string]string) error {
	dir, err := needDir(flags)
	if err != nil {
		return err
	}
	sysName := flags["system"]
	if sysName == "" {
		return fmt.Errorf("missing --system")
	}
	sys, err := hpcsim.Get(sysName)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Join(dir, "configs"), 0o755); err != nil {
		return err
	}
	files, err := core.SystemConfigs(sys)
	if err != nil {
		return err
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, "configs", name), []byte(content), 0o644); err != nil {
			return err
		}
	}
	e := env.New(filepath.Base(dir))
	manifest := e.ManifestYAML()
	// Record the system so later invocations rebuild the config scope.
	manifest += "  system: " + sysName + "\n"
	if err := os.WriteFile(filepath.Join(dir, "spack.yaml"), []byte(manifest), 0o644); err != nil {
		return err
	}
	fmt.Printf("==> created environment in %s for system %s\n", dir, sysName)
	return nil
}

// loadEnv reopens the environment directory.
func loadEnv(dir string) (*env.Environment, *hpcsim.System, error) {
	data, err := os.ReadFile(filepath.Join(dir, "spack.yaml"))
	if err != nil {
		return nil, nil, fmt.Errorf("no environment at %s (run `spack env create` first): %w", dir, err)
	}
	e, err := env.FromManifestYAML(filepath.Base(dir), string(data))
	if err != nil {
		return nil, nil, err
	}
	doc, err := yamlite.ParseMap(string(data))
	if err != nil {
		return nil, nil, err
	}
	sysName := doc.GetMap("spack").GetString("system")
	if sysName == "" {
		return nil, nil, fmt.Errorf("spack.yaml does not record the system")
	}
	sys, err := hpcsim.Get(sysName)
	if err != nil {
		return nil, nil, err
	}
	return e, sys, nil
}

func saveEnv(dir string, e *env.Environment, sysName string) error {
	manifest := e.ManifestYAML() + "  system: " + sysName + "\n"
	return os.WriteFile(filepath.Join(dir, "spack.yaml"), []byte(manifest), 0o644)
}

func addSpec(pos []string, flags map[string]string) error {
	dir, err := needDir(flags)
	if err != nil {
		return err
	}
	if len(pos) != 1 {
		return fmt.Errorf("usage: spack add <spec> --dir D")
	}
	e, sys, err := loadEnv(dir)
	if err != nil {
		return err
	}
	if err := e.Add(pos[0]); err != nil {
		return err
	}
	if err := saveEnv(dir, e, sys.Name); err != nil {
		return err
	}
	fmt.Printf("==> added %s to %s\n", pos[0], dir)
	return nil
}

func concretize(flags map[string]string) error {
	dir, err := needDir(flags)
	if err != nil {
		return err
	}
	e, sys, err := loadEnv(dir)
	if err != nil {
		return err
	}
	cfg, err := core.ConcretizerConfig(sys)
	if err != nil {
		return err
	}
	c := concretizer.New(pkgrepo.Builtin(), cfg)
	if err := e.Concretize(c); err != nil {
		return err
	}
	lf, err := e.Lock()
	if err != nil {
		return err
	}
	js, err := lf.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "spack.lock"), []byte(js), 0o644); err != nil {
		return err
	}
	fmt.Printf("==> concretized %d roots (%d packages); lockfile written\n", len(e.Roots), len(lf.Nodes))
	for _, root := range e.Roots {
		fmt.Print(spec.FormatTree(root))
	}
	return nil
}

// loadDB reads the persisted install database (empty if absent).
func loadDB(dir string) (*install.Database, error) {
	data, err := os.ReadFile(filepath.Join(dir, "installdb.json"))
	if os.IsNotExist(err) {
		return install.NewDatabase(), nil
	}
	if err != nil {
		return nil, err
	}
	return install.LoadDatabaseJSON(string(data))
}

func saveDB(dir string, db *install.Database) error {
	js, err := db.SaveJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "installdb.json"), []byte(js), 0o644)
}

func installCmd(flags map[string]string) error {
	dir, err := needDir(flags)
	if err != nil {
		return err
	}
	lockData, err := os.ReadFile(filepath.Join(dir, "spack.lock"))
	if err != nil {
		return fmt.Errorf("no lockfile (run `spack concretize` first): %w", err)
	}
	lf, err := env.ParseLockfile(string(lockData))
	if err != nil {
		return err
	}
	db, err := loadDB(dir)
	if err != nil {
		return err
	}
	inst := install.New(pkgrepo.Builtin())
	inst.DB = db
	rep, err := env.InstallFromLock(lf, inst)
	if err != nil {
		return err
	}
	if err := saveDB(dir, db); err != nil {
		return err
	}
	fmt.Printf("==> installed: %d built, %d from externals, %d already present (%.0fs simulated)\n",
		rep.Count(install.Built), rep.Count(install.UsedExternal),
		rep.Count(install.AlreadyInstalled), rep.Makespan)
	return nil
}

func findCmd(flags map[string]string) error {
	dir, err := needDir(flags)
	if err != nil {
		return err
	}
	db, err := loadDB(dir)
	if err != nil {
		return err
	}
	recs := db.Find(spec.New(""))
	fmt.Printf("==> %d installed packages\n", len(recs))
	for _, r := range recs {
		marker := " "
		if r.External {
			marker = "e"
		}
		fmt.Printf("%s %s  %s@%s\n", marker, r.Hash[:7], r.Spec.Name, r.Spec.ConcreteVersion())
	}
	return nil
}

func uninstallCmd(pos []string, flags map[string]string) error {
	dir, err := needDir(flags)
	if err != nil {
		return err
	}
	if len(pos) != 1 {
		return fmt.Errorf("usage: spack uninstall <package> --dir D")
	}
	db, err := loadDB(dir)
	if err != nil {
		return err
	}
	recs := db.Find(spec.MustParse(pos[0]))
	if len(recs) == 0 {
		return fmt.Errorf("no installed package matches %q", pos[0])
	}
	for _, r := range recs {
		db.Remove(r.Hash)
	}
	if err := saveDB(dir, db); err != nil {
		return err
	}
	fmt.Printf("==> uninstalled %d package(s) matching %s\n", len(recs), pos[0])
	return nil
}
