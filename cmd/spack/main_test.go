package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFigure2AsShellCommands drives the exact five commands of the
// paper's Figure 2 as separate invocations with on-disk state.
func TestFigure2AsShellCommands(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "envdir")
	// spack env create --dir . (+ activation = operating on the dir)
	if err := run([]string{"env", "create", "--dir", dir, "--system", "cts1"}); err != nil {
		t.Fatalf("env create: %v", err)
	}
	// spack add amg2023+caliper
	if err := run([]string{"add", "amg2023+caliper", "--dir", dir}); err != nil {
		t.Fatalf("add: %v", err)
	}
	manifest, _ := os.ReadFile(filepath.Join(dir, "spack.yaml"))
	if !strings.Contains(string(manifest), "amg2023+caliper") {
		t.Fatalf("manifest missing spec:\n%s", manifest)
	}
	// spack concretize
	if err := run([]string{"concretize", "--dir", dir}); err != nil {
		t.Fatalf("concretize: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "spack.lock")); err != nil {
		t.Fatal("lockfile not written")
	}
	// spack install
	if err := run([]string{"install", "--dir", dir}); err != nil {
		t.Fatalf("install: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "installdb.json")); err != nil {
		t.Fatal("install database not persisted")
	}
	// spack find (fresh invocation reads the persisted database)
	if err := run([]string{"find", "--dir", dir}); err != nil {
		t.Fatalf("find: %v", err)
	}
	// A second install is a no-op against the persisted database.
	if err := run([]string{"install", "--dir", dir}); err != nil {
		t.Fatalf("reinstall: %v", err)
	}
	// uninstall
	if err := run([]string{"uninstall", "amg2023", "--dir", dir}); err != nil {
		t.Fatalf("uninstall: %v", err)
	}
	if err := run([]string{"uninstall", "amg2023", "--dir", dir}); err == nil {
		t.Error("double uninstall should fail")
	}
}

func TestSpackCLIErrors(t *testing.T) {
	for _, args := range [][]string{
		{"add", "zlib", "--dir", "/no-such-env"},
		{"concretize", "--dir", "/no-such-env"},
		{"install", "--dir", t.TempDir()},       // no lockfile
		{"env", "create", "--dir", t.TempDir()}, // no system
		{"env", "create", "--system", "cts1"},   // no dir
		{"bogus"},
		{"add", "--dir", t.TempDir()}, // no spec positional
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
	if err := run(nil); err != nil {
		t.Errorf("usage: %v", err)
	}
}

// TestDatabasePersistenceAcrossCommands: hashes survive the JSON
// round trip with integrity verification.
func TestDatabasePersistenceAcrossCommands(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "envdir")
	for _, args := range [][]string{
		{"env", "create", "--dir", dir, "--system", "cts1"},
		{"add", "zlib", "--dir", dir},
		{"concretize", "--dir", dir},
		{"install", "--dir", dir},
	} {
		if err := run(args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
	db, err := loadDB(dir)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() == 0 {
		t.Fatal("empty database after install")
	}
	// Tampering with the persisted file is detected on load.
	path := filepath.Join(dir, "installdb.json")
	data, _ := os.ReadFile(path)
	evil := strings.Replace(string(data), "1.2.12", "1.2.11", -1)
	if evil != string(data) {
		if err := os.WriteFile(path, []byte(evil), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := loadDB(dir); err == nil {
			t.Error("tampered database must fail integrity verification")
		}
	}
}
