package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestFigure5CommandSequence drives the exact five-command workflow
// of the paper's Figure 5 across separate invocations, with all state
// living in the workspace directory between commands.
func TestFigure5CommandSequence(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ws")
	// ramble workspace create
	if err := run([]string{"workspace", "create", "-d", dir, "--suite", "saxpy/openmp", "--system", "cts1"}); err != nil {
		t.Fatalf("create: %v", err)
	}
	// (workspace edit = the user touching configs/ramble.yaml; state is on disk)
	if _, err := os.Stat(filepath.Join(dir, "configs", "ramble.yaml")); err != nil {
		t.Fatalf("ramble.yaml missing: %v", err)
	}
	// ramble workspace setup
	if err := run([]string{"workspace", "setup", "-d", dir}); err != nil {
		t.Fatalf("setup: %v", err)
	}
	// ramble on
	if err := run([]string{"on", "-d", dir}); err != nil {
		t.Fatalf("on: %v", err)
	}
	// Outputs persisted on disk for the next invocation.
	outs, err := filepath.Glob(filepath.Join(dir, "experiments", "saxpy", "problem", "*", "*.out"))
	if err != nil || len(outs) != 8 {
		t.Fatalf("outputs = %d, %v", len(outs), err)
	}
	// ramble workspace analyze (fresh process: recovers outputs from disk)
	if err := run([]string{"workspace", "analyze", "-d", dir}); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	// ramble workspace archive
	arch := filepath.Join(t.TempDir(), "ws.tar.gz")
	if err := run([]string{"workspace", "archive", "-d", dir, "-o", arch}); err != nil {
		t.Fatalf("archive: %v", err)
	}
	if fi, err := os.Stat(arch); err != nil || fi.Size() == 0 {
		t.Errorf("archive: %v", err)
	}
}

func TestEditBetweenCommands(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ws")
	if err := run([]string{"workspace", "create", "-d", dir, "--suite", "stream/triad", "--system", "cts1"}); err != nil {
		t.Fatal(err)
	}
	// `ramble workspace edit`: the user shrinks the problem.
	path := filepath.Join(dir, "configs", "ramble.yaml")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	edited := string(data)
	edited = replaceOnce(edited, "n: '10000000'", "n: '1000'")
	if err := os.WriteFile(path, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"on", "-d", dir}); err != nil {
		t.Fatal(err)
	}
	// The edit took effect in the generated scripts.
	scripts, _ := filepath.Glob(filepath.Join(dir, "experiments", "stream", "triad", "*", "execute_experiment.sh"))
	if len(scripts) == 0 {
		t.Fatal("no scripts")
	}
	content, _ := os.ReadFile(scripts[0])
	if !contains(string(content), "-n 1000 ") && !contains(string(content), "-n 1000\n") {
		t.Errorf("edited n not in script:\n%s", content)
	}
}

func TestErrorsWithoutWorkspace(t *testing.T) {
	for _, args := range [][]string{
		{"workspace", "setup", "-d", "/nonexistent-ws"},
		{"on", "-d", "/nonexistent-ws"},
		{"workspace", "analyze", "-d", "/nonexistent-ws"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
	if err := run([]string{"workspace", "create", "-d", t.TempDir()}); err == nil {
		t.Error("create without suite/system should fail")
	}
	if err := run([]string{"workspace"}); err == nil {
		t.Error("bare workspace should fail")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown command should fail")
	}
	if err := run([]string{"on"}); err == nil {
		t.Error("on without -d should fail")
	}
	if err := run(nil); err != nil {
		t.Errorf("bare invocation prints usage: %v", err)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && index(s, sub) >= 0
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func replaceOnce(s, old, new string) string {
	i := index(s, old)
	if i < 0 {
		return s
	}
	return s[:i] + new + s[i+len(old):]
}
