// Command ramble exposes the Figure 5 workflow of the paper as a
// standalone CLI, one command per invocation over a persistent
// workspace directory:
//
//	ramble workspace create  -d DIR --suite saxpy/openmp --system cts1
//	ramble workspace setup   -d DIR
//	ramble on                -d DIR
//	ramble workspace analyze -d DIR
//	ramble workspace archive -d DIR -o out.tar.gz
//
// State lives entirely in the workspace directory (configs/,
// experiments/, logs/): each invocation reloads ramble.yaml, and
// analyze finds the .out files a previous `ramble on` produced —
// mirroring how the real Ramble operates across shell commands.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/hpcsim"
	"repro/internal/ramble"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ramble:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Println(`usage:
  ramble workspace create  -d DIR --suite <suite> --system <system>
  ramble workspace setup   -d DIR
  ramble on                -d DIR
  ramble workspace analyze -d DIR
  ramble workspace archive -d DIR -o <out.tar.gz>`)
}

// parseFlags extracts simple "-flag value" pairs.
func parseFlags(args []string) (map[string]string, error) {
	out := map[string]string{}
	for i := 0; i < len(args); i++ {
		key := args[i]
		if len(key) == 0 || key[0] != '-' {
			return nil, fmt.Errorf("unexpected argument %q", key)
		}
		for len(key) > 0 && key[0] == '-' {
			key = key[1:]
		}
		if i+1 >= len(args) {
			return nil, fmt.Errorf("flag -%s needs a value", key)
		}
		out[key] = args[i+1]
		i++
	}
	return out, nil
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return nil
	}
	switch args[0] {
	case "workspace":
		if len(args) < 2 {
			usage()
			return fmt.Errorf("workspace needs a subcommand")
		}
		flags, err := parseFlags(args[2:])
		if err != nil {
			return err
		}
		switch args[1] {
		case "create":
			return createCmd(flags)
		case "setup":
			return setupCmd(flags)
		case "analyze":
			return analyzeCmd(flags)
		case "archive":
			return archiveCmd(flags)
		}
		usage()
		return fmt.Errorf("unknown workspace subcommand %q", args[1])
	case "on":
		flags, err := parseFlags(args[1:])
		if err != nil {
			return err
		}
		return onCmd(flags)
	case "help", "-h", "--help":
		usage()
		return nil
	}
	usage()
	return fmt.Errorf("unknown command %q", args[0])
}

func needDir(flags map[string]string) (string, error) {
	dir := flags["d"]
	if dir == "" {
		return "", fmt.Errorf("missing -d <workspace-dir>")
	}
	return dir, nil
}

// createCmd materializes a workspace with system configs and the
// suite's ramble.yaml, but does not set it up yet.
func createCmd(flags map[string]string) error {
	dir, err := needDir(flags)
	if err != nil {
		return err
	}
	suite, system := flags["suite"], flags["system"]
	if suite == "" || system == "" {
		return fmt.Errorf("create needs --suite and --system")
	}
	bp := core.New()
	if _, err := bp.Setup(suite, system, dir); err != nil {
		return err
	}
	fmt.Printf("==> created workspace %s (%s on %s)\n", dir, suite, system)
	fmt.Println("    edit configs/ramble.yaml, then: ramble workspace setup -d", dir)
	return nil
}

// loadWorkspace reopens a workspace directory created earlier.
func loadWorkspace(dir string) (*ramble.Workspace, *hpcsim.System, error) {
	data, err := os.ReadFile(filepath.Join(dir, "configs", "ramble.yaml"))
	if err != nil {
		return nil, nil, fmt.Errorf("no workspace at %s (run `ramble workspace create` first): %w", dir, err)
	}
	w, err := ramble.NewWorkspace(filepath.Base(dir), dir)
	if err != nil {
		return nil, nil, err
	}
	if err := w.Configure(string(data)); err != nil {
		return nil, nil, err
	}
	sysName := ""
	if vars := w.Effective().GetMap("variables"); vars != nil {
		sysName = vars.GetString("system")
	}
	if sysName == "" {
		return nil, nil, fmt.Errorf("configs/variables.yaml does not name the system")
	}
	sys, err := hpcsim.Get(sysName)
	if err != nil {
		return nil, nil, err
	}
	return w, sys, nil
}

// setupCmd regenerates experiments and installs the software stack.
func setupCmd(flags map[string]string) error {
	dir, err := needDir(flags)
	if err != nil {
		return err
	}
	w, sys, err := loadWorkspace(dir)
	if err != nil {
		return err
	}
	// Reuse the Benchpark session machinery for the Spack install hook.
	bp := core.New()
	sess, err := core.NewSessionForWorkspace(bp, sys, w)
	if err != nil {
		return err
	}
	if err := w.Setup(sess.InstallSoftware); err != nil {
		return err
	}
	fmt.Printf("==> setup complete: %d experiments generated, software installed (%d packages)\n",
		len(w.Experiments), sess.Installer.DB.Len())
	return nil
}

// onCmd executes all experiments.
func onCmd(flags map[string]string) error {
	dir, err := needDir(flags)
	if err != nil {
		return err
	}
	w, sys, err := loadWorkspace(dir)
	if err != nil {
		return err
	}
	bp := core.New()
	sess, err := core.NewSessionForWorkspace(bp, sys, w)
	if err != nil {
		return err
	}
	if err := w.Setup(sess.InstallSoftware); err != nil {
		return err
	}
	if err := w.On(sess.Executor); err != nil {
		return err
	}
	fmt.Printf("==> executed %d experiments on %s (outputs in experiments/)\n",
		len(w.Experiments), sys.Name)
	return nil
}

// analyzeCmd extracts FOMs from outputs already on disk.
func analyzeCmd(flags map[string]string) error {
	dir, err := needDir(flags)
	if err != nil {
		return err
	}
	w, _, err := loadWorkspace(dir)
	if err != nil {
		return err
	}
	if err := w.Setup(nil); err != nil {
		return err
	}
	// Recover outputs from a previous `ramble on` invocation.
	executed := 0
	for _, e := range w.Experiments {
		data, err := os.ReadFile(filepath.Join(e.Dir, e.Name+".out"))
		if err != nil {
			e.Status = ramble.Failed
			e.FailMsg = "no output (did `ramble on` run?)"
			continue
		}
		e.Output = string(data)
		e.Status = ramble.Succeeded
		executed++
	}
	rep, err := w.Analyze()
	if err != nil {
		return err
	}
	fmt.Printf("==> analyzed %d experiments: %d succeeded, %d failed\n",
		rep.Total, rep.Succeeded, rep.Failed)
	for _, e := range rep.Experiments {
		fmt.Printf("  %-36s %-9s", e.Name, e.Status)
		for _, k := range sortedFOMKeys(e.FOMs) {
			if k == "success" {
				continue
			}
			fmt.Printf(" %s=%s", k, e.FOMs[k])
		}
		fmt.Println()
	}
	return nil
}

func sortedFOMKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// archiveCmd bundles the workspace for sharing.
func archiveCmd(flags map[string]string) error {
	dir, err := needDir(flags)
	if err != nil {
		return err
	}
	out := flags["o"]
	if out == "" {
		return fmt.Errorf("missing -o <out.tar.gz>")
	}
	w, _, err := loadWorkspace(dir)
	if err != nil {
		return err
	}
	if err := w.Setup(nil); err != nil {
		return err
	}
	if err := w.Archive(out); err != nil {
		return err
	}
	fi, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Printf("==> archived %s (%d bytes)\n", out, fi.Size())
	return nil
}
