package adiak

import (
	"strings"
	"testing"
)

func TestSetGet(t *testing.T) {
	m := New()
	m.Set("cluster", "cts1")
	m.Setf("n_ranks", "%d", 8)
	if v, ok := m.Get("cluster"); !ok || v != "cts1" {
		t.Errorf("cluster = %q %v", v, ok)
	}
	if v, _ := m.Get("n_ranks"); v != "8" {
		t.Errorf("n_ranks = %q", v)
	}
	if _, ok := m.Get("absent"); ok {
		t.Error("absent key should not exist")
	}
	if m.Len() != 2 {
		t.Errorf("len = %d", m.Len())
	}
}

func TestMatches(t *testing.T) {
	m := New()
	m.Set("cluster", "cts1")
	m.Set("compiler", "gcc@12.1.1")
	if !m.Matches("cluster=cts1") {
		t.Error("single selector")
	}
	if !m.Matches("cluster=cts1", "compiler=gcc@12.1.1") {
		t.Error("multi selector")
	}
	if m.Matches("cluster=ats2") {
		t.Error("wrong value should not match")
	}
	if m.Matches("missing=x") {
		t.Error("missing key should not match")
	}
	if m.Matches("malformed") {
		t.Error("selector without '=' should not match")
	}
}

func TestCloneAndMerge(t *testing.T) {
	a := New()
	a.Set("k", "v1")
	b := a.Clone()
	b.Set("k", "v2")
	if v, _ := a.Get("k"); v != "v1" {
		t.Error("clone mutated original")
	}
	a.Merge(b)
	if v, _ := a.Get("k"); v != "v2" {
		t.Error("merge should overwrite")
	}
}

func TestStringSorted(t *testing.T) {
	m := New()
	m.Set("z", "1")
	m.Set("a", "2")
	s := m.String()
	if !strings.HasPrefix(s, "a=2") || !strings.Contains(s, "z=1") {
		t.Errorf("string = %q", s)
	}
}

func TestCollectDefaults(t *testing.T) {
	m := New()
	CollectDefaults(m, "saxpy", "cts1", "benchpark")
	for _, k := range []string{"executable", "cluster", "user", "adiak_version"} {
		if _, ok := m.Get(k); !ok {
			t.Errorf("default %q missing", k)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var m *Metadata
	if m.Len() != 0 || m.Names() != nil {
		t.Error("nil metadata should behave as empty")
	}
	if _, ok := m.Get("x"); ok {
		t.Error("nil Get")
	}
	c := m.Clone()
	c.Set("x", "1")
	if c.Len() != 1 {
		t.Error("clone of nil should be usable")
	}
}
