// Package adiak collects run metadata — the Go analogue of LLNL's
// Adiak library the paper plans to use for "metadata related to the
// build settings and execution contexts, enabling filtering and
// sorting of collected profiles" (Section 5).
package adiak

import (
	"fmt"
	"sort"
	"strings"
)

// Metadata is an ordered set of name/value descriptors for one run.
type Metadata struct {
	values map[string]string
}

// New returns an empty metadata set.
func New() *Metadata {
	return &Metadata{values: map[string]string{}}
}

// Set records one descriptor, overwriting any previous value.
func (m *Metadata) Set(name, value string) {
	if m.values == nil {
		m.values = map[string]string{}
	}
	m.values[name] = value
}

// Setf records a formatted descriptor.
func (m *Metadata) Setf(name, format string, args ...any) {
	m.Set(name, fmt.Sprintf(format, args...))
}

// Get returns the descriptor value and whether it exists.
func (m *Metadata) Get(name string) (string, bool) {
	if m == nil || m.values == nil {
		return "", false
	}
	v, ok := m.values[name]
	return v, ok
}

// Names returns all descriptor names, sorted.
func (m *Metadata) Names() []string {
	if m == nil {
		return nil
	}
	out := make([]string, 0, len(m.values))
	for k := range m.values {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of descriptors.
func (m *Metadata) Len() int {
	if m == nil {
		return 0
	}
	return len(m.values)
}

// Clone returns an independent copy.
func (m *Metadata) Clone() *Metadata {
	c := New()
	if m != nil {
		for k, v := range m.values {
			c.values[k] = v
		}
	}
	return c
}

// Merge copies src's descriptors into m (src wins on collision).
func (m *Metadata) Merge(src *Metadata) {
	if src == nil {
		return
	}
	for k, v := range src.values {
		m.Set(k, v)
	}
}

// Matches reports whether every key=value selector holds, e.g.
// Matches("cluster=cts1", "compiler=gcc@12.1.1").
func (m *Metadata) Matches(selectors ...string) bool {
	for _, sel := range selectors {
		k, want, ok := strings.Cut(sel, "=")
		if !ok {
			return false
		}
		got, exists := m.Get(k)
		if !exists || got != want {
			return false
		}
	}
	return true
}

// String renders "k=v" pairs sorted by key.
func (m *Metadata) String() string {
	var parts []string
	for _, k := range m.Names() {
		v, _ := m.Get(k)
		parts = append(parts, k+"="+v)
	}
	return strings.Join(parts, " ")
}

// CollectDefaults fills the descriptors Adiak gathers implicitly for
// every run: executable, cluster, launch context.
func CollectDefaults(m *Metadata, executable, cluster, user string) {
	m.Set("executable", executable)
	m.Set("cluster", cluster)
	m.Set("user", user)
	m.Set("adiak_version", "0.4.0-sim")
}
