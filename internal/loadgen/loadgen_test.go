package loadgen

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/metricsdb"
	"repro/internal/resultshard"
)

// memPusher is an in-process idempotent sink mimicking the resultsd
// ingest contract (same key → duplicate).
type memPusher struct {
	mu   sync.Mutex
	keys map[string]bool
	n    int
}

func (m *memPusher) Push(ctx context.Context, key string, results []metricsdb.Result) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.keys == nil {
		m.keys = make(map[string]bool)
	}
	if m.keys[key] {
		return true, nil
	}
	m.keys[key] = true
	m.n += len(results)
	return false, nil
}

// TestRunDeterministicContent: the same (runner, batch) cell always
// produces the same key and payload — the property that makes replays
// exercise the duplicate path.
func TestRunDeterministicContent(t *testing.T) {
	cfg := Config{}.withDefaults()
	if k := cfg.Key(17, 3); k != cfg.Key(17, 3) || k != "loadgen-r0017-b0003" {
		t.Fatalf("Key not deterministic/stable: %q", k)
	}
	a, b := cfg.Batch(17, 3), cfg.Batch(17, 3)
	if len(a) != cfg.ResultsPerBatch {
		t.Fatalf("batch has %d results, want %d", len(a), cfg.ResultsPerBatch)
	}
	for i := range a {
		if a[i].System != b[i].System || a[i].Benchmark != b[i].Benchmark ||
			a[i].FOMs["figure_of_merit"] != b[i].FOMs["figure_of_merit"] {
			t.Fatalf("batch content not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestRunFleet: a full campaign lands every batch exactly once and the
// report's accounting is exact.
func TestRunFleet(t *testing.T) {
	cfg := Config{Runners: 20, BatchesPerRunner: 5, ResultsPerBatch: 3}
	sink := &memPusher{}
	rep, err := Run(context.Background(), cfg, sink)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BatchesPushed != 100 || rep.Duplicates != 0 || rep.Errors != 0 || rep.Overloads != 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if rep.ResultsPushed != 300 || sink.n != 300 {
		t.Fatalf("results: report %d, sink %d, want 300", rep.ResultsPushed, sink.n)
	}
	if rep.BatchesPerSecond <= 0 || rep.P99Ms < rep.P50Ms {
		t.Fatalf("throughput/percentiles wrong: %+v", rep)
	}

	// Replay: every key is now a duplicate, nothing double-counts.
	rep2, err := Run(context.Background(), cfg, sink)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Duplicates != 100 || sink.n != 300 {
		t.Fatalf("replay: %d duplicates (want 100), sink %d (want 300)", rep2.Duplicates, sink.n)
	}
}

// TestRunCountsOverloadsAndErrors: backpressure and hard failures land
// in separate columns.
func TestRunCountsOverloadsAndErrors(t *testing.T) {
	var calls int
	var mu sync.Mutex
	p := PushFunc(func(ctx context.Context, key string, results []metricsdb.Result) (bool, error) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		switch calls % 3 {
		case 0:
			return false, &resultshard.OverloadError{Shard: 1, RetryAfter: time.Second}
		case 1:
			return false, errors.New("boom")
		}
		return false, nil
	})
	rep, err := Run(context.Background(), Config{Runners: 3, BatchesPerRunner: 4, ResultsPerBatch: 1}, p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overloads != 4 || rep.Errors != 4 || rep.BatchesPushed != 4 {
		t.Fatalf("taxonomy wrong: %+v", rep)
	}
	if rep.FirstError != "boom" {
		t.Fatalf("first error %q", rep.FirstError)
	}
}

// TestRunHonorsCancel: a cancelled context stops the fleet promptly
// and surfaces the cancellation.
func TestRunHonorsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := PushFunc(func(ctx context.Context, key string, results []metricsdb.Result) (bool, error) {
		cancel()
		return false, nil
	})
	rep, err := Run(ctx, Config{Runners: 2, BatchesPerRunner: 1000, ResultsPerBatch: 1}, p)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.BatchesPushed >= 2000 {
		t.Fatalf("fleet did not stop early: %+v", rep)
	}
}

// TestPercentileMs pins the nearest-rank arithmetic.
func TestPercentileMs(t *testing.T) {
	var ds []time.Duration
	for i := 1; i <= 100; i++ {
		ds = append(ds, time.Duration(i)*time.Millisecond)
	}
	cases := []struct {
		q    float64
		want float64
	}{{0.50, 50}, {0.90, 90}, {0.99, 99}}
	for _, c := range cases {
		if got := percentileMs(ds, c.q); got != c.want {
			t.Errorf("p%v = %v, want %v", c.q, got, c.want)
		}
	}
	if got := percentileMs(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}
