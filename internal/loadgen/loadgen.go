// Package loadgen simulates a federated fleet of CI runners pushing
// benchmark results at a resultsd endpoint — the load side of the
// paper's collaborative continuous-benchmarking picture, where many
// sites' runners concurrently publish into one shared results
// service. It measures what the service side cannot see from inside:
// end-to-end push latency percentiles, sustained throughput, and how
// often the fleet was told to back off (overloads) versus actually
// failed.
//
// Batch content is fully deterministic in (runner, batch) — re-running
// the same Config replays the same ingest keys, so a repeated loadtest
// against a warm store measures the duplicate/idempotency path rather
// than double-counting results.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/metricsdb"
	"repro/internal/resultshard"
)

// Pusher is the slice of the resultsd client the generator drives.
// *resultsd.Client satisfies it; tests wire in-process fakes.
type Pusher interface {
	// Push ingests one idempotent batch; duplicate reports whether the
	// server had already applied this key.
	Push(ctx context.Context, key string, results []metricsdb.Result) (duplicate bool, err error)
}

// PushFunc adapts a function to Pusher.
type PushFunc func(ctx context.Context, key string, results []metricsdb.Result) (bool, error)

// Push implements Pusher.
func (f PushFunc) Push(ctx context.Context, key string, results []metricsdb.Result) (bool, error) {
	return f(ctx, key, results)
}

// Config shapes the simulated fleet. Zero values take the defaults
// noted on each field.
type Config struct {
	// Runners is the number of concurrent simulated CI runners
	// (default 100).
	Runners int
	// BatchesPerRunner is how many batches each runner pushes
	// (default 10).
	BatchesPerRunner int
	// ResultsPerBatch is the result count per batch (default 5).
	ResultsPerBatch int
	// Systems is the number of distinct system names the fleet reports
	// from (default 16); spread over runners so shard routing sees a
	// realistic key distribution.
	Systems int
	// Benchmarks is the number of distinct benchmark names
	// (default 8).
	Benchmarks int
	// KeyPrefix namespaces the ingest keys (default "loadgen") so
	// repeated campaigns can either replay (same prefix → duplicates)
	// or extend (new prefix → fresh results) a store.
	KeyPrefix string
}

func (c Config) withDefaults() Config {
	if c.Runners <= 0 {
		c.Runners = 100
	}
	if c.BatchesPerRunner <= 0 {
		c.BatchesPerRunner = 10
	}
	if c.ResultsPerBatch <= 0 {
		c.ResultsPerBatch = 5
	}
	if c.Systems <= 0 {
		c.Systems = 16
	}
	if c.Benchmarks <= 0 {
		c.Benchmarks = 8
	}
	if c.KeyPrefix == "" {
		c.KeyPrefix = "loadgen"
	}
	return c
}

// Key returns the deterministic ingest key for one (runner, batch)
// cell. Replaying a campaign replays these keys exactly, which is what
// makes a second run against the same store exercise the duplicate
// path instead of doubling the data.
func (c Config) Key(runner, batch int) string {
	return fmt.Sprintf("%s-r%04d-b%04d", c.KeyPrefix, runner, batch)
}

// Batch builds the deterministic payload for one (runner, batch) cell.
// Each runner reports from one system; benchmarks rotate per batch so
// every shard of a sharded primary sees traffic from every runner's
// system eventually.
func (c Config) Batch(runner, batch int) []metricsdb.Result {
	system := fmt.Sprintf("fedsys-%03d", runner%c.Systems)
	out := make([]metricsdb.Result, c.ResultsPerBatch)
	for i := range out {
		bench := fmt.Sprintf("fedbench-%02d", (batch+i)%c.Benchmarks)
		// A deterministic, smoothly varying FOM: good enough for the
		// series/regression endpoints to return non-trivial answers,
		// reproducible enough to assert on.
		fom := 100.0 + float64((runner*31+batch*7+i*3)%50)
		out[i] = metricsdb.Result{
			Benchmark:  bench,
			Workload:   "standard",
			System:     system,
			Experiment: fmt.Sprintf("fed-r%04d", runner),
			FOMs:       map[string]float64{"figure_of_merit": fom},
		}
	}
	return out
}

// Report is the outcome of one campaign: fleet shape, wall-clock
// throughput, latency percentiles and the failure taxonomy. It
// marshals directly into BENCH_federation.json.
type Report struct {
	Runners          int     `json:"runners"`
	BatchesPerRunner int     `json:"batches_per_runner"`
	ResultsPerBatch  int     `json:"results_per_batch"`
	BatchesPushed    int     `json:"batches_pushed"`
	ResultsPushed    int     `json:"results_pushed"`
	Duplicates       int     `json:"duplicates"`
	Overloads        int     `json:"overloads"`
	Errors           int     `json:"errors"`
	ElapsedSeconds   float64 `json:"elapsed_seconds"`
	BatchesPerSecond float64 `json:"batches_per_second"`
	ResultsPerSecond float64 `json:"results_per_second"`
	P50Ms            float64 `json:"p50_ms"`
	P90Ms            float64 `json:"p90_ms"`
	P99Ms            float64 `json:"p99_ms"`
	MaxMs            float64 `json:"max_ms"`
	FirstError       string  `json:"first_error,omitempty"`
}

// Run drives the fleet: cfg.Runners goroutines, each pushing its
// BatchesPerRunner deterministic batches through p, until done or ctx
// cancels. Every runner goroutine is WaitGroup-joined before Run
// returns. Push failures are counted, not fatal — an overloaded or
// flaky service yields a report with a nonzero Overloads/Errors
// column, which is exactly the measurement — but a cancelled ctx
// aborts the remaining work and returns ctx's error alongside the
// partial report.
func Run(ctx context.Context, cfg Config, p Pusher) (*Report, error) {
	cfg = cfg.withDefaults()
	type tally struct {
		pushed, dups, overloads, errs int
		firstErr                      string
		latencies                     []time.Duration
	}
	tallies := make([]tally, cfg.Runners)
	start := time.Now()
	var wg sync.WaitGroup
	for r := 0; r < cfg.Runners; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			t := &tallies[r]
			t.latencies = make([]time.Duration, 0, cfg.BatchesPerRunner)
			for b := 0; b < cfg.BatchesPerRunner; b++ {
				if ctx.Err() != nil {
					return
				}
				t0 := time.Now()
				dup, err := p.Push(ctx, cfg.Key(r, b), cfg.Batch(r, b))
				t.latencies = append(t.latencies, time.Since(t0))
				switch {
				case err == nil:
					t.pushed++
					if dup {
						t.dups++
					}
				case errors.Is(err, resultshard.ErrOverloaded):
					t.overloads++
				default:
					t.errs++
					if t.firstErr == "" {
						t.firstErr = err.Error()
					}
				}
			}
		}(r)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{
		Runners:          cfg.Runners,
		BatchesPerRunner: cfg.BatchesPerRunner,
		ResultsPerBatch:  cfg.ResultsPerBatch,
		ElapsedSeconds:   elapsed.Seconds(),
	}
	var all []time.Duration
	for i := range tallies {
		t := &tallies[i]
		rep.BatchesPushed += t.pushed
		rep.Duplicates += t.dups
		rep.Overloads += t.overloads
		rep.Errors += t.errs
		if rep.FirstError == "" {
			rep.FirstError = t.firstErr
		}
		all = append(all, t.latencies...)
	}
	rep.ResultsPushed = rep.BatchesPushed * cfg.ResultsPerBatch
	if s := elapsed.Seconds(); s > 0 {
		rep.BatchesPerSecond = float64(rep.BatchesPushed) / s
		rep.ResultsPerSecond = float64(rep.ResultsPushed) / s
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep.P50Ms = percentileMs(all, 0.50)
	rep.P90Ms = percentileMs(all, 0.90)
	rep.P99Ms = percentileMs(all, 0.99)
	if n := len(all); n > 0 {
		rep.MaxMs = float64(all[n-1]) / float64(time.Millisecond)
	}
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	return rep, nil
}

// percentileMs is the nearest-rank percentile of a sorted latency
// slice, in milliseconds.
func percentileMs(sorted []time.Duration, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	idx := int(q*float64(n)+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}
