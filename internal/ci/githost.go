// Package ci implements the federated continuous-integration layer of
// Section 3.3 and Figure 6: a content-addressed git hosting
// simulation (GitHub and GitLab sides), Hubcast secure mirroring of
// pull requests with security criteria and admin approval, Jacamar's
// setuid-style user attribution for CI jobs, and a GitLab-CI pipeline
// executor driven by .gitlab-ci.yml files.
package ci

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Commit is one immutable snapshot of a repository's files.
type Commit struct {
	SHA     string
	Parent  string
	Author  string
	Message string
	Files   map[string]string // full snapshot: path -> content
}

// Repo is a hosted git repository (a simplified content-addressed
// model: each commit stores a full tree snapshot).
type Repo struct {
	Name string

	mu       sync.RWMutex
	commits  map[string]*Commit
	branches map[string]string // branch -> head SHA
}

// NewRepo returns a repository with an empty main branch.
func NewRepo(name string) *Repo {
	return &Repo{
		Name:     name,
		commits:  map[string]*Commit{},
		branches: map[string]string{"main": ""},
	}
}

// Commit applies file changes on top of a branch head and advances
// the branch. Deleting a file is done by setting its content to "".
func (r *Repo) Commit(branch, author, message string, changes map[string]string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	parent, ok := r.branches[branch]
	if !ok {
		// Creating a new branch from main.
		parent = r.branches["main"]
		r.branches[branch] = parent
	}
	files := map[string]string{}
	if parent != "" {
		for k, v := range r.commits[parent].Files {
			files[k] = v
		}
	}
	for path, content := range changes {
		if content == "" {
			delete(files, path)
		} else {
			files[path] = content
		}
	}
	c := &Commit{Parent: parent, Author: author, Message: message, Files: files}
	c.SHA = hashCommit(c)
	r.commits[c.SHA] = c
	r.branches[branch] = c.SHA
	return c.SHA, nil
}

func hashCommit(c *Commit) string {
	h := sha256.New()
	fmt.Fprintf(h, "parent:%s\nauthor:%s\nmsg:%s\n", c.Parent, c.Author, c.Message)
	paths := make([]string, 0, len(c.Files))
	for p := range c.Files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		fmt.Fprintf(h, "%s\x00%s\x00", p, c.Files[p])
	}
	return hex.EncodeToString(h.Sum(nil))[:40]
}

// Head returns the SHA at a branch head ("" if the branch is empty).
func (r *Repo) Head(branch string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	sha, ok := r.branches[branch]
	return sha, ok
}

// Get returns a commit by SHA.
func (r *Repo) Get(sha string) (*Commit, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.commits[sha]
	return c, ok
}

// FileAt reads one file from a commit.
func (r *Repo) FileAt(sha, path string) (string, bool) {
	c, ok := r.Get(sha)
	if !ok {
		return "", false
	}
	content, ok := c.Files[path]
	return content, ok
}

// ChangedPaths diffs a commit against its parent.
func (r *Repo) ChangedPaths(sha string) ([]string, error) {
	c, ok := r.Get(sha)
	if !ok {
		return nil, fmt.Errorf("ci: unknown commit %s", sha)
	}
	var parentFiles map[string]string
	if c.Parent != "" {
		p, ok := r.Get(c.Parent)
		if !ok {
			return nil, fmt.Errorf("ci: dangling parent %s", c.Parent)
		}
		parentFiles = p.Files
	}
	changed := map[string]bool{}
	for path, content := range c.Files {
		if parentFiles[path] != content {
			changed[path] = true
		}
	}
	for path := range parentFiles {
		if _, ok := c.Files[path]; !ok {
			changed[path] = true
		}
	}
	out := make([]string, 0, len(changed))
	for p := range changed {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

// ImportCommit copies a commit object verbatim (mirroring) and points
// a branch at it.
func (r *Repo) ImportCommit(c *Commit, branch string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.commits[c.SHA] = c
	r.branches[branch] = c.SHA
}

// ---------------------------------------------------------------------------
// GitHub side: users, pull requests, status checks
// ---------------------------------------------------------------------------

// User is a GitHub account known to the Benchpark project.
type User struct {
	Name string
	// Trusted marks project members whose PRs may run CI without
	// fresh review.
	Trusted bool
	// SiteAdmin can approve PRs for execution on HPC resources.
	SiteAdmin bool
	// SiteAccounts lists HPC sites where this user has an account —
	// Jacamar runs their jobs under their own identity there.
	SiteAccounts []string
}

// HasAccountAt reports whether the user has an account at a site.
func (u User) HasAccountAt(site string) bool {
	for _, s := range u.SiteAccounts {
		if s == site {
			return true
		}
	}
	return false
}

// CheckState is a GitHub commit-status state.
type CheckState string

const (
	// StatePending: workflow queued or running.
	StatePending CheckState = "pending"
	// StateSuccess: workflow passed.
	StateSuccess CheckState = "success"
	// StateFailure: workflow failed.
	StateFailure CheckState = "failure"
)

// StatusCheck is one native status check on a PR (streamed back
// through Hubcast).
type StatusCheck struct {
	Context     string
	State       CheckState
	Description string
}

// PRState is a pull request's lifecycle state.
type PRState string

const (
	// PROpen: awaiting review.
	PROpen PRState = "open"
	// PRApproved: reviewed and approved for CI.
	PRApproved PRState = "approved"
	// PRMerged into the target branch.
	PRMerged PRState = "merged"
	// PRClosed without merging.
	PRClosed PRState = "closed"
)

// PullRequest models a GitHub PR, possibly from an untrusted fork.
type PullRequest struct {
	ID           int
	Title        string
	Author       string
	SourceRepo   *Repo // fork (may be the canonical repo itself)
	SourceBranch string
	TargetBranch string
	HeadSHA      string
	State        PRState
	ApprovedBy   string
	// ApprovedSHA records which commit the approval reviewed; pushing
	// new commits invalidates the approval (TOCTOU protection).
	ApprovedSHA string
	Checks      []StatusCheck
}

// GitHub hosts the canonical repository, users and PRs.
type GitHub struct {
	Canonical *Repo

	mu     sync.Mutex
	users  map[string]User
	prs    map[int]*PullRequest
	nextPR int
}

// NewGitHub returns a host around a canonical repository.
func NewGitHub(canonical *Repo) *GitHub {
	return &GitHub{Canonical: canonical, users: map[string]User{}, prs: map[int]*PullRequest{}}
}

// AddUser registers an account.
func (g *GitHub) AddUser(u User) { g.mu.Lock(); defer g.mu.Unlock(); g.users[u.Name] = u }

// UserByName looks up an account.
func (g *GitHub) UserByName(name string) (User, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	u, ok := g.users[name]
	return u, ok
}

// OpenPR opens a pull request from a source repo/branch.
func (g *GitHub) OpenPR(title, author string, source *Repo, sourceBranch, targetBranch string) (*PullRequest, error) {
	head, ok := source.Head(sourceBranch)
	if !ok || head == "" {
		return nil, fmt.Errorf("ci: source branch %s has no commits", sourceBranch)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.users[author]; !ok {
		return nil, fmt.Errorf("ci: unknown user %q", author)
	}
	g.nextPR++
	pr := &PullRequest{
		ID: g.nextPR, Title: title, Author: author,
		SourceRepo: source, SourceBranch: sourceBranch,
		TargetBranch: targetBranch, HeadSHA: head, State: PROpen,
	}
	g.prs[pr.ID] = pr
	return pr, nil
}

// Approve records a review approval. Only site admins may approve
// runs on HPC resources (Section 3.3.1).
func (g *GitHub) Approve(prID int, reviewer string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	pr, ok := g.prs[prID]
	if !ok {
		return fmt.Errorf("ci: no PR #%d", prID)
	}
	u, ok := g.users[reviewer]
	if !ok {
		return fmt.Errorf("ci: unknown reviewer %q", reviewer)
	}
	if !u.SiteAdmin {
		return fmt.Errorf("ci: %s is not a site and system administrator", reviewer)
	}
	if reviewer == pr.Author {
		return fmt.Errorf("ci: authors cannot approve their own pull requests")
	}
	pr.State = PRApproved
	pr.ApprovedBy = reviewer
	pr.ApprovedSHA = pr.HeadSHA
	return nil
}

// UpdateHead refreshes a PR after new commits on its source branch.
// If the head moved past an approval, the approval is invalidated and
// the PR returns to open — untrusted code cannot ride an old review
// onto HPC resources.
func (g *GitHub) UpdateHead(prID int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	pr, ok := g.prs[prID]
	if !ok {
		return fmt.Errorf("ci: no PR #%d", prID)
	}
	head, ok := pr.SourceRepo.Head(pr.SourceBranch)
	if !ok || head == "" {
		return fmt.Errorf("ci: PR #%d source branch vanished", prID)
	}
	if head == pr.HeadSHA {
		return nil
	}
	pr.HeadSHA = head
	pr.Checks = nil
	if pr.State == PRApproved && pr.ApprovedSHA != head {
		pr.State = PROpen
		pr.ApprovedBy = ""
		pr.ApprovedSHA = ""
	}
	return nil
}

// PR fetches a pull request.
func (g *GitHub) PR(id int) (*PullRequest, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	pr, ok := g.prs[id]
	return pr, ok
}

// SetStatus records (or updates) a status check on a PR — what
// Hubcast streams back so contributors see native checks.
func (g *GitHub) SetStatus(prID int, check StatusCheck) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	pr, ok := g.prs[prID]
	if !ok {
		return fmt.Errorf("ci: no PR #%d", prID)
	}
	for i := range pr.Checks {
		if pr.Checks[i].Context == check.Context {
			pr.Checks[i] = check
			return nil
		}
	}
	pr.Checks = append(pr.Checks, check)
	return nil
}

// Merge merges an approved PR with all checks green.
func (g *GitHub) Merge(prID int) error {
	g.mu.Lock()
	pr, ok := g.prs[prID]
	if !ok {
		g.mu.Unlock()
		return fmt.Errorf("ci: no PR #%d", prID)
	}
	if pr.State != PRApproved {
		g.mu.Unlock()
		return fmt.Errorf("ci: PR #%d is %s, not approved", prID, pr.State)
	}
	for _, c := range pr.Checks {
		if c.State != StateSuccess {
			g.mu.Unlock()
			return fmt.Errorf("ci: PR #%d check %q is %s", prID, c.Context, c.State)
		}
	}
	if len(pr.Checks) == 0 {
		g.mu.Unlock()
		return fmt.Errorf("ci: PR #%d has no status checks; CI has not run", prID)
	}
	g.mu.Unlock()

	commit, ok := pr.SourceRepo.Get(pr.HeadSHA)
	if !ok {
		return fmt.Errorf("ci: PR head %s vanished", pr.HeadSHA)
	}
	g.Canonical.ImportCommit(commit, pr.TargetBranch)
	g.mu.Lock()
	pr.State = PRMerged
	g.mu.Unlock()
	return nil
}

// Fork clones the canonical repo's main branch into a new repo.
func (g *GitHub) Fork(name string) *Repo {
	fork := NewRepo(name)
	if head, ok := g.Canonical.Head("main"); ok && head != "" {
		c, _ := g.Canonical.Get(head)
		fork.ImportCommit(c, "main")
	}
	return fork
}

func joinPaths(paths []string) string { return strings.Join(paths, ", ") }
