package ci

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

const ciYAML = `
stages: [build, bench]
build-saxpy:
  stage: build
  script:
  - spack install saxpy
  tags: [cts1]
bench-saxpy:
  stage: bench
  script:
  - ramble on
  tags: [cts1]
`

// setup builds a GitHub+GitLab pair with one runner and standard users.
func setup(t *testing.T, exec JobExecutor) (*GitHub, *GitLab, *Hubcast) {
	t.Helper()
	canonical := NewRepo("benchpark")
	if _, err := canonical.Commit("main", "olga", "initial", map[string]string{
		".gitlab-ci.yml": ciYAML,
		"README.md":      "Benchpark",
	}); err != nil {
		t.Fatal(err)
	}
	gh := NewGitHub(canonical)
	gh.AddUser(User{Name: "olga", Trusted: true, SiteAdmin: true, SiteAccounts: []string{"LLNL"}})
	gh.AddUser(User{Name: "admin2", Trusted: true, SiteAdmin: true, SiteAccounts: []string{"LLNL"}})
	gh.AddUser(User{Name: "jens", Trusted: true, SiteAccounts: []string{"RIKEN"}})
	gh.AddUser(User{Name: "newcomer", Trusted: false})

	gl := NewGitLab(NewRepo("benchpark-mirror"), gh)
	if exec == nil {
		exec = func(ctx context.Context, job *CIJob) (string, error) {
			return "ran " + strings.Join(job.Script, "; "), nil
		}
	}
	gl.RegisterRunner(&Runner{Name: "cts1-runner", Site: "LLNL", Tags: []string{"cts1"}, Exec: exec})
	hub := NewHubcast(gh, gl, SecurityCriteria{
		RequireAdminApproval: true,
		TrustedAuthorsBypass: false,
		ProtectedPaths:       []string{".gitlab-ci.yml"},
	})
	return gh, gl, hub
}

func openContribution(t *testing.T, gh *GitHub, author, file, content string) *PullRequest {
	t.Helper()
	fork := gh.Fork(author + "/benchpark")
	if _, err := fork.Commit("feature", author, "add benchmark", map[string]string{file: content}); err != nil {
		t.Fatal(err)
	}
	pr, err := gh.OpenPR("add benchmark", author, fork, "feature", "main")
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestCommitContentAddressing(t *testing.T) {
	r := NewRepo("x")
	sha1, _ := r.Commit("main", "a", "m", map[string]string{"f": "1"})
	if c, ok := r.Get(sha1); !ok || c.Files["f"] != "1" {
		t.Fatal("commit lookup")
	}
	sha2, _ := r.Commit("main", "a", "m2", map[string]string{"g": "2"})
	if sha1 == sha2 {
		t.Error("different commits share a SHA")
	}
	// Snapshot semantics: both files visible at head.
	if v, _ := r.FileAt(sha2, "f"); v != "1" {
		t.Error("earlier file lost")
	}
	changed, err := r.ChangedPaths(sha2)
	if err != nil || len(changed) != 1 || changed[0] != "g" {
		t.Errorf("changed = %v, %v", changed, err)
	}
	// Deletion.
	sha3, _ := r.Commit("main", "a", "rm", map[string]string{"f": ""})
	if _, ok := r.FileAt(sha3, "f"); ok {
		t.Error("deletion failed")
	}
}

// TestFigure6Workflow drives the full automation loop: untrusted PR →
// blocked; admin approval → Hubcast mirrors → GitLab CI runs via
// Jacamar → status streams back → merge.
func TestFigure6Workflow(t *testing.T) {
	gh, gl, hub := setup(t, nil)
	pr := openContribution(t, gh, "newcomer", "experiments/osu/ramble.yaml", "ramble: {}")

	// 1. Untrusted code must NOT run before review (Section 3.3.1).
	if _, err := hub.Sync(pr.ID); err == nil {
		t.Fatal("unapproved PR must not be mirrored")
	}
	if merr := gh.Merge(pr.ID); merr == nil {
		t.Fatal("merge before CI must fail")
	}

	// 2. A site admin approves.
	if err := gh.Approve(pr.ID, "olga"); err != nil {
		t.Fatal(err)
	}

	// 3. Hubcast mirrors and CI runs.
	pipeline, err := hub.Sync(pr.ID)
	if err != nil {
		t.Fatal(err)
	}
	if pipeline.Status() != JobSuccess {
		t.Fatalf("pipeline = %v", pipeline.Status())
	}
	if len(pipeline.Jobs) != 2 {
		t.Fatalf("jobs = %d", len(pipeline.Jobs))
	}
	// Stage ordering: build before bench.
	if pipeline.Jobs[0].Stage != "build" || pipeline.Jobs[1].Stage != "bench" {
		t.Errorf("stage order: %s, %s", pipeline.Jobs[0].Stage, pipeline.Jobs[1].Stage)
	}

	// 4. Jacamar ran the job as the APPROVER: newcomer has no LLNL account.
	for _, j := range pipeline.Jobs {
		if j.RunAs != "olga" {
			t.Errorf("job %s ran as %q, want approver olga", j.Name, j.RunAs)
		}
	}
	audit := gl.Audit()
	if len(audit) != 2 || audit[0].Triggered != "newcomer" || audit[0].RunAs != "olga" {
		t.Errorf("audit = %+v", audit)
	}

	// 5. Status streamed back as a native check.
	got, _ := gh.PR(pr.ID)
	if len(got.Checks) != 1 || got.Checks[0].State != StateSuccess {
		t.Errorf("checks = %+v", got.Checks)
	}

	// 6. Merge.
	if err := gh.Merge(pr.ID); err != nil {
		t.Fatal(err)
	}
	head, _ := gh.Canonical.Head("main")
	if v, ok := gh.Canonical.FileAt(head, "experiments/osu/ramble.yaml"); !ok || v != "ramble: {}" {
		t.Error("merged content missing from canonical main")
	}
}

func TestJacamarUsesTriggeringUserWhenAccountExists(t *testing.T) {
	gh, _, hub := setup(t, nil)
	// olga has an LLNL account and is a site admin; use a second admin
	// for approval since self-approval is rejected.
	pr := openContribution(t, gh, "olga", "docs/x.md", "x")
	if err := gh.Approve(pr.ID, "admin2"); err != nil {
		t.Fatal(err)
	}
	pipeline, err := hub.Sync(pr.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range pipeline.Jobs {
		if j.RunAs != "olga" {
			t.Errorf("job %s ran as %q, want triggering user olga", j.Name, j.RunAs)
		}
	}
}

func TestSelfApprovalRejected(t *testing.T) {
	gh, _, _ := setup(t, nil)
	pr := openContribution(t, gh, "olga", "docs/x.md", "x")
	if err := gh.Approve(pr.ID, "olga"); err == nil {
		t.Error("self-approval must be rejected")
	}
}

func TestNonAdminCannotApprove(t *testing.T) {
	gh, _, _ := setup(t, nil)
	pr := openContribution(t, gh, "newcomer", "docs/x.md", "x")
	if err := gh.Approve(pr.ID, "jens"); err == nil {
		t.Error("non-admin approval must be rejected")
	}
}

func TestProtectedPathBlocked(t *testing.T) {
	gh, _, hub := setup(t, nil)
	// An untrusted user tries to change the CI definition itself.
	pr := openContribution(t, gh, "newcomer", ".gitlab-ci.yml", "stages: [pwn]\np:\n  stage: pwn\n  script: [curl evil]")
	if err := gh.Approve(pr.ID, "olga"); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Sync(pr.ID); err == nil || !strings.Contains(err.Error(), "protected path") {
		t.Errorf("err = %v", err)
	}
}

func TestTrustedUserMayTouchProtectedPaths(t *testing.T) {
	gh, _, hub := setup(t, nil)
	pr := openContribution(t, gh, "olga", ".gitlab-ci.yml", ciYAML+"# tweak\n")
	if err := gh.Approve(pr.ID, "admin2"); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Sync(pr.ID); err != nil {
		t.Errorf("trusted author blocked: %v", err)
	}
}

func TestTrustedBypassCriteria(t *testing.T) {
	gh, gl, _ := setup(t, nil)
	hub := NewHubcast(gh, gl, SecurityCriteria{
		RequireAdminApproval: true,
		TrustedAuthorsBypass: true,
	})
	pr := openContribution(t, gh, "jens", "docs/riken.md", "hi")
	// No approval, but jens is trusted and bypass is on.
	if _, err := hub.Sync(pr.ID); err != nil {
		t.Errorf("trusted bypass failed: %v", err)
	}
}

func TestPipelineFailureStreamsFailure(t *testing.T) {
	gh, _, hub := setup(t, func(ctx context.Context, job *CIJob) (string, error) {
		if job.Stage == "bench" {
			return "", fmt.Errorf("benchmark crashed")
		}
		return "ok", nil
	})
	pr := openContribution(t, gh, "newcomer", "docs/y.md", "y")
	if err := gh.Approve(pr.ID, "olga"); err != nil {
		t.Fatal(err)
	}
	pipeline, err := hub.Sync(pr.ID)
	if err != nil {
		t.Fatal(err)
	}
	if pipeline.Status() != JobFailed {
		t.Errorf("status = %v", pipeline.Status())
	}
	got, _ := gh.PR(pr.ID)
	if got.Checks[0].State != StateFailure {
		t.Errorf("check = %+v", got.Checks[0])
	}
	if err := gh.Merge(pr.ID); err == nil {
		t.Error("merge with failing checks must fail")
	}
}

func TestStageFailureSkipsLaterStages(t *testing.T) {
	gh, _, hub := setup(t, func(ctx context.Context, job *CIJob) (string, error) {
		if job.Stage == "build" {
			return "", fmt.Errorf("compile error")
		}
		return "ok", nil
	})
	pr := openContribution(t, gh, "newcomer", "docs/z.md", "z")
	_ = gh.Approve(pr.ID, "olga")
	pipeline, _ := hub.Sync(pr.ID)
	var bench *CIJob
	for _, j := range pipeline.Jobs {
		if j.Stage == "bench" {
			bench = j
		}
	}
	if bench == nil || bench.Status != JobSkipped {
		t.Errorf("bench job = %+v", bench)
	}
}

func TestNoMatchingRunnerSkips(t *testing.T) {
	gh, gl, hub := setup(t, nil)
	gl.RegisterRunner(&Runner{Name: "riken", Site: "RIKEN", Tags: []string{"fugaku"}, Exec: func(context.Context, *CIJob) (string, error) { return "", nil }})
	// Job demands a tag no runner offers.
	fork := gh.Fork("newcomer/benchpark")
	custom := `
stages: [bench]
gpu-only:
  stage: bench
  script: [run]
  tags: [mi250x]
`
	if _, err := fork.Commit("feature", "newcomer", "gpu", map[string]string{"unused.md": "x"}); err != nil {
		t.Fatal(err)
	}
	// Replace the mirrored CI file by writing it in the canonical repo
	// first (trusted path), then open the PR from the fork.
	_ = custom
	pr, err := gh.OpenPR("gpu", "newcomer", fork, "feature", "main")
	if err != nil {
		t.Fatal(err)
	}
	_ = gh.Approve(pr.ID, "olga")
	pipeline, err := hub.Sync(pr.ID)
	if err != nil {
		t.Fatal(err)
	}
	if pipeline.Status() != JobSuccess {
		t.Errorf("status = %v", pipeline.Status())
	}
}

func TestParseCIConfigErrors(t *testing.T) {
	cases := []string{
		"stages: [a]\njob:\n  stage: b\n  script: [x]", // undeclared stage
		"job:\n  stage: test",                          // no script
		"stages: [a]",                                  // no jobs
		"[flow",                                        // bad yaml
	}
	for _, src := range cases {
		if _, _, err := ParseCIConfig(src); err == nil {
			t.Errorf("ParseCIConfig(%q): expected error", src)
		}
	}
}

func TestOpenPREmptyBranch(t *testing.T) {
	gh, _, _ := setup(t, nil)
	empty := NewRepo("empty")
	if _, err := gh.OpenPR("x", "olga", empty, "nothing", "main"); err == nil {
		t.Error("PR from empty branch should fail")
	}
}

// TestStaleApprovalInvalidated: pushing new commits after an approval
// must not let the new code run under the old review.
func TestStaleApprovalInvalidated(t *testing.T) {
	gh, _, hub := setup(t, nil)
	fork := gh.Fork("newcomer/benchpark")
	if _, err := fork.Commit("feature", "newcomer", "v1", map[string]string{"docs/a.md": "v1"}); err != nil {
		t.Fatal(err)
	}
	pr, err := gh.OpenPR("feature", "newcomer", fork, "feature", "main")
	if err != nil {
		t.Fatal(err)
	}
	if err := gh.Approve(pr.ID, "olga"); err != nil {
		t.Fatal(err)
	}
	// The contributor sneaks in another commit after the review.
	if _, err := fork.Commit("feature", "newcomer", "v2 sneaky", map[string]string{"docs/a.md": "rm -rf"}); err != nil {
		t.Fatal(err)
	}
	if err := gh.UpdateHead(pr.ID); err != nil {
		t.Fatal(err)
	}
	got, _ := gh.PR(pr.ID)
	if got.State == PRApproved {
		t.Fatal("approval must not survive new commits")
	}
	if _, err := hub.Sync(pr.ID); err == nil {
		t.Fatal("hubcast must refuse the un-reviewed head")
	}
	// Fresh approval of the new head unblocks it.
	if err := gh.Approve(pr.ID, "olga"); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Sync(pr.ID); err != nil {
		t.Fatalf("fresh approval should run: %v", err)
	}
}

// TestStaleApprovalWithoutUpdateHead: even if nobody called UpdateHead,
// Hubcast compares the approved SHA against the live head.
func TestStaleApprovalSHACheck(t *testing.T) {
	gh, _, hub := setup(t, nil)
	fork := gh.Fork("newcomer/benchpark")
	if _, err := fork.Commit("feature", "newcomer", "v1", map[string]string{"docs/a.md": "v1"}); err != nil {
		t.Fatal(err)
	}
	pr, err := gh.OpenPR("feature", "newcomer", fork, "feature", "main")
	if err != nil {
		t.Fatal(err)
	}
	if err := gh.Approve(pr.ID, "olga"); err != nil {
		t.Fatal(err)
	}
	// Mutate HeadSHA directly to simulate a race where the webhook
	// refreshed the head but the approval state was not recomputed.
	if _, err := fork.Commit("feature", "newcomer", "v2", map[string]string{"docs/a.md": "v2"}); err != nil {
		t.Fatal(err)
	}
	head, _ := fork.Head("feature")
	pr.HeadSHA = head
	if _, err := hub.Sync(pr.ID); err == nil {
		t.Fatal("hubcast must detect approved SHA != head SHA")
	}
}
