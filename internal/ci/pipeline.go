package ci

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/telemetry"
	"repro/internal/yamlite"
)

// ---------------------------------------------------------------------------
// GitLab side: mirrored repo, CI pipelines, runners, Jacamar
// ---------------------------------------------------------------------------

// JobStatus is a CI job's state.
type JobStatus string

const (
	// JobPending: not yet picked up by a runner.
	JobPending JobStatus = "pending"
	// JobSuccess: script completed.
	JobSuccess JobStatus = "success"
	// JobFailed: script failed.
	JobFailed JobStatus = "failed"
	// JobSkipped: no runner with matching tags.
	JobSkipped JobStatus = "skipped"
)

// CIJob is one job of a pipeline, parsed from .gitlab-ci.yml.
type CIJob struct {
	Name   string
	Stage  string
	Script []string
	Tags   []string

	Status JobStatus
	// RunAs is the account Jacamar executed the job under (setuid).
	RunAs string
	Log   string
	// Cache is the job's incremental-pipeline provenance: one entry
	// per cache layer the job's benchmark runs touched (concretize,
	// buildcache, run). A fully warm job shows Misses == 0 on the run
	// layer — the pipeline re-ran nothing for it.
	Cache []CacheProvenance
}

// CacheProvenance records one cache layer's traffic during a job, so
// a pipeline's results carry exactly which experiments were replayed
// and which were executed fresh.
type CacheProvenance struct {
	Layer  string
	Hits   int
	Misses int
}

// Pipeline is one CI run for a commit.
type Pipeline struct {
	ID  int
	SHA string
	// TraceID is the run's distributed-trace identity (empty when the
	// pipeline ran untraced). Results pushed from this pipeline's jobs
	// carry it into the shared metrics database as provenance.
	TraceID string
	Stages  []string
	Jobs    []*CIJob
	// TriggeredBy is the GitHub author whose push caused the run;
	// ApprovedBy is the admin whose approval let it reach HPC.
	TriggeredBy, ApprovedBy string
}

// Status reports the aggregate pipeline state.
func (p *Pipeline) Status() JobStatus {
	status := JobSuccess
	for _, j := range p.Jobs {
		switch j.Status {
		case JobFailed:
			return JobFailed
		case JobPending:
			status = JobPending
		}
	}
	return status
}

// ParseCIConfig parses a .gitlab-ci.yml document into ordered jobs.
// Top-level keys other than "stages" are jobs with stage/script/tags.
func ParseCIConfig(src string) ([]string, []*CIJob, error) {
	doc, err := yamlite.ParseMap(src)
	if err != nil {
		return nil, nil, fmt.Errorf("ci: parsing .gitlab-ci.yml: %w", err)
	}
	stages := doc.GetStrings("stages")
	if len(stages) == 0 {
		stages = []string{"test"}
	}
	var jobs []*CIJob
	for _, key := range doc.Keys() {
		if key == "stages" {
			continue
		}
		jm := doc.GetMap(key)
		if jm == nil {
			return nil, nil, fmt.Errorf("ci: job %q is not a mapping", key)
		}
		job := &CIJob{
			Name:   key,
			Stage:  jm.GetString("stage"),
			Script: jm.GetStrings("script"),
			Tags:   jm.GetStrings("tags"),
			Status: JobPending,
		}
		if job.Stage == "" {
			job.Stage = "test"
		}
		if len(job.Script) == 0 {
			return nil, nil, fmt.Errorf("ci: job %q has no script", key)
		}
		if !contains(stages, job.Stage) {
			return nil, nil, fmt.Errorf("ci: job %q uses undeclared stage %q", key, job.Stage)
		}
		jobs = append(jobs, job)
	}
	if len(jobs) == 0 {
		return nil, nil, fmt.Errorf("ci: .gitlab-ci.yml declares no jobs")
	}
	return stages, jobs, nil
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// JobExecutor runs one job's script and returns its log output.
// The Benchpark core wires this to actual benchmark execution; the
// context cancels in-flight benchmark matrices when the pipeline is
// aborted.
type JobExecutor func(ctx context.Context, job *CIJob) (log string, err error)

// Runner is a GitLab runner registered at an HPC site, with tags
// selecting which jobs it accepts and a Jacamar executor.
type Runner struct {
	Name string
	Site string
	Tags []string
	Exec JobExecutor
}

func (r *Runner) accepts(job *CIJob) bool {
	for _, tag := range job.Tags {
		if !contains(r.Tags, tag) {
			return false
		}
	}
	return true
}

// AuditEntry records one Jacamar execution for the site's logs
// (Section 3.3.2: "actions of a job ... tied back to the user").
type AuditEntry struct {
	Site, Job, RunAs, Triggered string
}

// GitLab hosts the mirrored repository, runners and pipelines.
type GitLab struct {
	Mirror *Repo

	mu        sync.Mutex
	runners   []*Runner
	pipelines []*Pipeline
	audit     []AuditEntry
	nextID    int
	github    *GitHub // for Jacamar account lookups
}

// NewGitLab returns a GitLab instance mirroring into the given repo.
func NewGitLab(mirror *Repo, github *GitHub) *GitLab {
	return &GitLab{Mirror: mirror, github: github}
}

// RegisterRunner adds a runner to the fleet.
func (gl *GitLab) RegisterRunner(r *Runner) {
	gl.mu.Lock()
	defer gl.mu.Unlock()
	gl.runners = append(gl.runners, r)
}

// Audit returns the Jacamar audit log.
func (gl *GitLab) Audit() []AuditEntry {
	gl.mu.Lock()
	defer gl.mu.Unlock()
	return append([]AuditEntry(nil), gl.audit...)
}

// Pipelines returns all pipelines run so far.
func (gl *GitLab) Pipelines() []*Pipeline {
	gl.mu.Lock()
	defer gl.mu.Unlock()
	return append([]*Pipeline(nil), gl.pipelines...)
}

// RunPipeline reads .gitlab-ci.yml from the mirrored commit and
// executes its jobs stage by stage. Jacamar decides the execution
// identity: the triggering user when they hold an account at the
// runner's site, otherwise the approving admin (Section 3.3.2).
// Cancellable callers use RunPipelineContext.
//
//benchlint:compat
func (gl *GitLab) RunPipeline(sha, triggeredBy, approvedBy string) (*Pipeline, error) {
	return gl.RunPipelineContext(context.Background(), sha, triggeredBy, approvedBy)
}

// RunPipelineContext is RunPipeline with cancellation: the context is
// checked before each job dispatch and passed to every runner, so a
// cancelled pipeline stops scheduling work and in-flight jobs can
// abort. Jobs not yet dispatched are marked skipped.
func (gl *GitLab) RunPipelineContext(ctx context.Context, sha, triggeredBy, approvedBy string) (*Pipeline, error) {
	content, ok := gl.Mirror.FileAt(sha, ".gitlab-ci.yml")
	if !ok {
		return nil, fmt.Errorf("ci: commit %s has no .gitlab-ci.yml", sha)
	}
	stages, jobs, err := ParseCIConfig(content)
	if err != nil {
		return nil, err
	}
	gl.mu.Lock()
	gl.nextID++
	p := &Pipeline{ID: gl.nextID, SHA: sha, Stages: stages, Jobs: jobs,
		TriggeredBy: triggeredBy, ApprovedBy: approvedBy}
	gl.pipelines = append(gl.pipelines, p)
	runners := append([]*Runner(nil), gl.runners...)
	gl.mu.Unlock()

	// One span per pipeline and per executed job (skipped jobs never
	// reach a runner and record no span).
	pctx, pspan := telemetry.StartSpan(ctx, "pipeline")
	p.TraceID = pspan.TraceID()
	pspan.SetAttr("sha", sha)
	pspan.SetAttr("triggered_by", triggeredBy)
	defer pspan.End()
	defer func() { pspan.SetAttr("status", string(p.Status())) }()

	for _, stage := range stages {
		var failed bool
		for _, job := range jobs {
			if job.Stage != stage {
				continue
			}
			if err := ctx.Err(); err != nil {
				job.Status = JobSkipped
				job.Log = "skipped: pipeline cancelled (" + err.Error() + ")"
				continue
			}
			runner := pickRunner(runners, job)
			if runner == nil {
				job.Status = JobSkipped
				job.Log = "no runner matches tags " + strings.Join(job.Tags, ",")
				continue
			}
			job.RunAs = gl.jacamarIdentity(runner.Site, triggeredBy, approvedBy)
			gl.mu.Lock()
			gl.audit = append(gl.audit, AuditEntry{
				Site: runner.Site, Job: job.Name, RunAs: job.RunAs, Triggered: triggeredBy,
			})
			gl.mu.Unlock()
			jctx, jspan := telemetry.StartSpan(pctx, "job:"+job.Name)
			jspan.SetAttr("stage", stage)
			jspan.SetAttr("runner", runner.Name)
			log, err := runner.Exec(jctx, job)
			job.Log = log
			if err != nil {
				jspan.SetError(err)
				jspan.SetAttr("status", string(JobFailed))
				jspan.End()
				job.Status = JobFailed
				job.Log += "\nerror: " + err.Error()
				failed = true
				continue
			}
			jspan.SetAttr("status", string(JobSuccess))
			jspan.End()
			job.Status = JobSuccess
		}
		if failed {
			// Later stages do not run after a stage failure.
			for _, job := range jobs {
				if job.Status == JobPending {
					job.Status = JobSkipped
					job.Log = "skipped: earlier stage failed"
				}
			}
			break
		}
	}
	if err := ctx.Err(); err != nil {
		return p, fmt.Errorf("ci: pipeline #%d cancelled: %w", p.ID, err)
	}
	return p, nil
}

// pickRunner selects the first matching runner by name order for
// determinism.
func pickRunner(runners []*Runner, job *CIJob) *Runner {
	var candidates []*Runner
	for _, r := range runners {
		if r.accepts(job) {
			candidates = append(candidates, r)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].Name < candidates[j].Name })
	return candidates[0]
}

// jacamarIdentity implements the Section 3.3.2 rule.
func (gl *GitLab) jacamarIdentity(site, triggeredBy, approvedBy string) string {
	if gl.github != nil {
		if u, ok := gl.github.UserByName(triggeredBy); ok && u.HasAccountAt(site) {
			return triggeredBy
		}
	}
	return approvedBy
}

// ---------------------------------------------------------------------------
// Hubcast: secure mirroring GitHub -> GitLab with status streaming back
// ---------------------------------------------------------------------------

// SecurityCriteria gates which PRs Hubcast mirrors for execution.
type SecurityCriteria struct {
	// RequireAdminApproval blocks mirroring until a site admin
	// approves the PR (always recommended for HPC resources).
	RequireAdminApproval bool
	// TrustedAuthorsBypass lets PRs from trusted project members
	// mirror without a fresh approval.
	TrustedAuthorsBypass bool
	// ProtectedPaths are files untrusted contributors may not touch
	// (e.g. the CI definition itself).
	ProtectedPaths []string
}

// Hubcast mirrors approved PR branches from GitHub to GitLab and
// streams pipeline status back as native checks.
type Hubcast struct {
	GitHub   *GitHub
	GitLab   *GitLab
	Criteria SecurityCriteria
}

// NewHubcast wires the two hosts together.
func NewHubcast(gh *GitHub, gl *GitLab, criteria SecurityCriteria) *Hubcast {
	return &Hubcast{GitHub: gh, GitLab: gl, Criteria: criteria}
}

// Sync evaluates the security criteria for a PR; if they pass, the PR
// head is mirrored to GitLab, the CI pipeline runs, and the status is
// streamed back to the PR. It returns the pipeline (nil when
// mirroring was refused, with the error explaining why). Cancellable
// callers use SyncContext.
//
//benchlint:compat
func (h *Hubcast) Sync(prID int) (*Pipeline, error) {
	return h.SyncContext(context.Background(), prID)
}

// SyncContext is Sync with cancellation propagated into the pipeline
// run and its benchmark jobs.
func (h *Hubcast) SyncContext(ctx context.Context, prID int) (*Pipeline, error) {
	pr, ok := h.GitHub.PR(prID)
	if !ok {
		return nil, fmt.Errorf("hubcast: no PR #%d", prID)
	}
	author, _ := h.GitHub.UserByName(pr.Author)

	// Security criteria.
	trusted := h.Criteria.TrustedAuthorsBypass && author.Trusted
	if h.Criteria.RequireAdminApproval && !trusted {
		if pr.State != PRApproved {
			return nil, fmt.Errorf("hubcast: PR #%d by %s requires site-admin approval before running on HPC resources",
				prID, pr.Author)
		}
		if pr.ApprovedSHA != pr.HeadSHA {
			return nil, fmt.Errorf("hubcast: PR #%d approval is stale: head %s moved past reviewed commit %s",
				prID, pr.HeadSHA[:8], pr.ApprovedSHA[:8])
		}
	}
	if len(h.Criteria.ProtectedPaths) > 0 && !author.Trusted {
		changed, err := pr.SourceRepo.ChangedPaths(pr.HeadSHA)
		if err != nil {
			return nil, err
		}
		for _, p := range changed {
			if contains(h.Criteria.ProtectedPaths, p) {
				return nil, fmt.Errorf("hubcast: PR #%d modifies protected path %q (changed: %s)",
					prID, p, joinPaths(changed))
			}
		}
	}

	// Mirror the commit to GitLab.
	commit, ok := pr.SourceRepo.Get(pr.HeadSHA)
	if !ok {
		return nil, fmt.Errorf("hubcast: PR head %s not found", pr.HeadSHA)
	}
	mirrorBranch := fmt.Sprintf("pr-%d", prID)
	h.GitLab.Mirror.ImportCommit(commit, mirrorBranch)

	// Report pending, run, report final.
	check := StatusCheck{Context: "benchpark/gitlab-ci", State: StatePending, Description: "pipeline running"}
	if err := h.GitHub.SetStatus(prID, check); err != nil {
		return nil, err
	}
	approver := pr.ApprovedBy
	if approver == "" {
		approver = pr.Author // trusted bypass: author vouches
	}
	pipeline, err := h.GitLab.RunPipelineContext(ctx, pr.HeadSHA, pr.Author, approver)
	if err != nil {
		check.State = StateFailure
		check.Description = err.Error()
		_ = h.GitHub.SetStatus(prID, check)
		return nil, err
	}
	switch pipeline.Status() {
	case JobSuccess:
		check.State = StateSuccess
		check.Description = fmt.Sprintf("pipeline #%d passed (%d jobs)", pipeline.ID, len(pipeline.Jobs))
	default:
		check.State = StateFailure
		check.Description = fmt.Sprintf("pipeline #%d: %s", pipeline.ID, pipeline.Status())
	}
	if err := h.GitHub.SetStatus(prID, check); err != nil {
		return nil, err
	}
	return pipeline, nil
}
