package extrap

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func gen(f func(p float64) float64, ps ...float64) []Measurement {
	out := make([]Measurement, len(ps))
	for i, p := range ps {
		out[i] = Measurement{P: p, Value: f(p)}
	}
	return out
}

var scales = []float64{64, 128, 256, 512, 1024, 2048, 3456}

func TestFitLinear(t *testing.T) {
	// The Figure 14 ground truth: -0.6356 + 0.0466 p.
	data := gen(func(p float64) float64 { return -0.6355857931034596 + 0.04660217702356169*p }, scales...)
	m, err := Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.I != 1 || m.J != 0 {
		t.Fatalf("selected p^(%v) log^%d, want p^(1): %s", m.I, m.J, m)
	}
	if math.Abs(m.C1-0.0466) > 1e-3 || math.Abs(m.C0+0.6356) > 1e-2 {
		t.Errorf("coefficients: %s", m)
	}
	if !strings.Contains(m.String(), "p^(1)") {
		t.Errorf("String() = %q", m.String())
	}
}

func TestFitLinearWithNoise(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	data := gen(func(p float64) float64 {
		return 0.0466*p*(1+0.02*(r.Float64()*2-1)) - 0.6
	}, scales...)
	m, err := Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.I != 1 || m.J != 0 {
		t.Fatalf("noisy linear chose %s", m)
	}
	if m.SMAPE > 5 {
		t.Errorf("SMAPE = %v", m.SMAPE)
	}
}

func TestFitLog(t *testing.T) {
	data := gen(func(p float64) float64 { return 2 + 0.5*math.Log2(p) }, scales...)
	m, err := Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	if !(m.I == 0 && m.J == 1) {
		t.Errorf("log data chose %s", m)
	}
}

func TestFitQuadratic(t *testing.T) {
	data := gen(func(p float64) float64 { return 1 + 3e-4*p*p }, scales...)
	m, err := Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.I != 2 || m.J != 0 {
		t.Errorf("quadratic data chose %s", m)
	}
}

func TestFitSqrt(t *testing.T) {
	data := gen(func(p float64) float64 { return 5 + 2*math.Sqrt(p) }, scales...)
	m, err := Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.I != 0.5 || m.J != 0 {
		t.Errorf("sqrt data chose %s", m)
	}
}

func TestFitPLogP(t *testing.T) {
	data := gen(func(p float64) float64 { return 0.01 * p * math.Log2(p) }, scales...)
	m, err := Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.I != 1 || m.J != 1 {
		t.Errorf("p log p data chose %s", m)
	}
	if !strings.Contains(m.String(), "log2^(1)(p)") {
		t.Errorf("String() = %q", m.String())
	}
}

func TestFitConstant(t *testing.T) {
	data := gen(func(p float64) float64 { return 42 }, scales...)
	m, err := Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsConstant() {
		t.Errorf("constant data chose %s", m)
	}
	if math.Abs(m.C0-42) > 1e-9 {
		t.Errorf("C0 = %v", m.C0)
	}
	if m.String() != "42" {
		t.Errorf("String() = %q", m.String())
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(gen(func(p float64) float64 { return p }, 2, 4)); err == nil {
		t.Error("2 scales should fail")
	}
	// Repeated p values do not count as distinct scales.
	data := []Measurement{{P: 8, Value: 1}, {P: 8, Value: 1.1}, {P: 16, Value: 2}}
	if _, err := Fit(data); err == nil {
		t.Error("2 distinct scales should fail")
	}
	if _, err := Fit(gen(func(p float64) float64 { return p }, 0.5, 2, 4)); err == nil {
		t.Error("p<1 should fail (log2 undefined)")
	}
}

func TestRepeatedMeasurementsPerScale(t *testing.T) {
	// Extra-P consumes several repetitions per scale; the fit should
	// pass through the means.
	var data []Measurement
	for _, p := range scales {
		for rep := 0; rep < 5; rep++ {
			data = append(data, Measurement{P: p, Value: 0.05*p + float64(rep%3)*0.01})
		}
	}
	m, err := Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.I != 1 {
		t.Errorf("chose %s", m)
	}
	if math.Abs(m.C1-0.05) > 1e-3 {
		t.Errorf("C1 = %v", m.C1)
	}
}

func TestEvalAndSeries(t *testing.T) {
	m := &Model{C0: -0.6356, C1: 0.0466, I: 1}
	if v := m.Eval(3456); math.Abs(v-160.4) > 0.5 {
		t.Errorf("Eval(3456) = %v (Figure 14 tops out near 160s)", v)
	}
	series := m.Series(0o100, 3456, 50)
	if len(series) != 50 {
		t.Fatalf("series len = %d", len(series))
	}
	if series[0].P != 64 || series[49].P != 3456 {
		t.Errorf("series endpoints: %v .. %v", series[0], series[49])
	}
	for i := 1; i < len(series); i++ {
		if series[i].Value <= series[i-1].Value {
			t.Error("linear model series must increase")
			break
		}
	}
}

func TestSortMeasurements(t *testing.T) {
	data := []Measurement{{P: 8}, {P: 2}, {P: 4}}
	SortMeasurements(data)
	if data[0].P != 2 || data[2].P != 8 {
		t.Errorf("sorted = %v", data)
	}
}

func TestRSquaredQuality(t *testing.T) {
	data := gen(func(p float64) float64 { return 3 * p }, scales...)
	m, _ := Fit(data)
	if m.RSquared < 0.999 {
		t.Errorf("perfect fit R² = %v", m.RSquared)
	}
	if m.SMAPE > 0.01 {
		t.Errorf("perfect fit SMAPE = %v", m.SMAPE)
	}
}

func TestFitMultiTermSelectsTwoTerms(t *testing.T) {
	// p + sqrt(p): a single term cannot capture both.
	data := gen(func(p float64) float64 { return 1 + 0.05*p + 3*math.Sqrt(p) }, scales...)
	m, err := FitMultiTerm(data)
	if err != nil {
		t.Fatal(err)
	}
	if !m.HasSecond {
		t.Fatalf("expected a two-term model, got %s (SMAPE %.2f)", m, m.SMAPE)
	}
	if m.SMAPE > 1 {
		t.Errorf("two-term SMAPE = %v", m.SMAPE)
	}
	// Predictive check at an unseen scale.
	want := 1 + 0.05*8192 + 3*math.Sqrt(8192)
	if got := m.Eval(8192); math.Abs(got-want)/want > 0.05 {
		t.Errorf("Eval(8192) = %v, want ≈ %v", got, want)
	}
	if !strings.Contains(m.String(), " + ") {
		t.Errorf("String() = %q", m.String())
	}
}

func TestFitMultiTermOccamGuard(t *testing.T) {
	// Pure linear data must stay single-term.
	data := gen(func(p float64) float64 { return 2 + 0.04*p }, scales...)
	m, err := FitMultiTerm(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.HasSecond {
		t.Errorf("linear data should keep the single-term model, got %s", m)
	}
	if m.I != 1 || m.J != 0 {
		t.Errorf("model = %s", m)
	}
}

func TestFitMultiTermFewScalesFallsBack(t *testing.T) {
	data := gen(func(p float64) float64 { return p }, 2, 4, 8, 16)
	m, err := FitMultiTerm(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.HasSecond {
		t.Error("4 scales cannot justify a two-term model")
	}
}

func TestFitInverse(t *testing.T) {
	// Strong-scaling shape: t = 0.001 + 0.03/p.
	data := gen(func(p float64) float64 { return 0.001 + 0.03/p }, 2, 4, 8, 16, 32, 64)
	m, err := Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.I != -1 || m.J != 0 {
		t.Fatalf("inverse data chose %s", m)
	}
	if math.Abs(m.C1-0.03) > 1e-3 || math.Abs(m.C0-0.001) > 1e-4 {
		t.Errorf("coefficients: %s", m)
	}
	// Extrapolation approaches the serial floor.
	if v := m.Eval(1024); math.Abs(v-0.001) > 2e-4 {
		t.Errorf("Eval(1024) = %v", v)
	}
}
