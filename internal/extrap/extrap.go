// Package extrap fits analytical scaling models to performance
// measurements, reproducing the Extra-P workflow of Figure 14 in the
// Benchpark paper: red dots are measurements of a function (e.g.
// MPI_Bcast on CTS) at different process counts, and the blue line is
// the model Extra-P computes, printed as
//
//	-0.6355857931034596 + 0.04660217702356169 * p^(1)
//
// The implementation follows Extra-P's Performance Model Normal Form
// (PMNF) restricted to a single term: f(p) = c0 + c1 · p^i · log2(p)^j
// over a hypothesis grid of exponents (i, j). Each hypothesis is fit
// by ordinary least squares (linear in c0, c1); the winner minimizes
// SMAPE with an adjusted-R² tie-break, as in Calotoiu et al. (SC'13).
package extrap

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Measurement is one (p, time) observation.
type Measurement struct {
	P     float64 // process count (or any scaling parameter)
	Value float64
}

// Model is a fitted PMNF model: c0 + c1·p^I·log2(p)^J, optionally
// with a second term c2·p^I2·log2(p)^J2 (see FitMultiTerm).
type Model struct {
	C0, C1 float64
	I      float64 // polynomial exponent
	J      int     // log exponent

	// Second term (HasSecond distinguishes c2==0 from absent).
	HasSecond bool
	C2        float64
	I2        float64
	J2        int

	// Quality of fit on the training data:
	RSquared float64
	SMAPE    float64 // symmetric mean absolute percentage error, in %
}

// Eval evaluates the model at p.
func (m *Model) Eval(p float64) float64 {
	v := m.C0 + m.C1*term(p, m.I, m.J)
	if m.HasSecond {
		v += m.C2 * term(p, m.I2, m.J2)
	}
	return v
}

// term computes p^i * log2(p)^j.
func term(p, i float64, j int) float64 {
	v := math.Pow(p, i)
	if j != 0 {
		v *= math.Pow(math.Log2(p), float64(j))
	}
	return v
}

// IsConstant reports whether the model has no scaling term.
func (m *Model) IsConstant() bool { return m.I == 0 && m.J == 0 }

// String renders the model the way Extra-P prints it in Figure 14.
func (m *Model) String() string {
	if m.IsConstant() {
		return fmt.Sprintf("%v", m.C0)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%v + %v * p^(%s)", m.C0, m.C1, trimFloat(m.I))
	if m.J != 0 {
		fmt.Fprintf(&b, " * log2^(%d)(p)", m.J)
	}
	if m.HasSecond {
		fmt.Fprintf(&b, " + %v * p^(%s)", m.C2, trimFloat(m.I2))
		if m.J2 != 0 {
			fmt.Fprintf(&b, " * log2^(%d)(p)", m.J2)
		}
	}
	return b.String()
}

func trimFloat(f float64) string {
	if f == math.Trunc(f) {
		return fmt.Sprintf("%d", int(f))
	}
	return fmt.Sprintf("%g", f)
}

// hypothesisI is Extra-P's polynomial exponent grid, extended with
// negative exponents so strong-scaling series (time ∝ 1/p) model
// cleanly.
var hypothesisI = []float64{
	-2, -1, -2.0 / 3.0, -0.5, -1.0 / 3.0, -0.25,
	0, 0.25, 1.0 / 3.0, 0.5, 2.0 / 3.0, 0.75, 1, 1.25, 4.0 / 3.0, 1.5, 2, 2.5, 3,
}

// Fit selects the best single-term PMNF model for the measurements.
// At least 3 distinct p values are required.
func Fit(data []Measurement) (*Model, error) {
	distinct := map[float64]bool{}
	for _, d := range data {
		distinct[d.P] = true
		if d.P < 1 {
			return nil, fmt.Errorf("extrap: parameter value %v < 1", d.P)
		}
	}
	if len(distinct) < 3 {
		return nil, fmt.Errorf("extrap: need measurements at >=3 distinct scales, have %d", len(distinct))
	}

	var best *Model
	for _, i := range hypothesisI {
		for j := 0; j <= 2; j++ {
			if i == 0 && j == 0 {
				continue // handled by the constant model below
			}
			m, ok := fitHypothesis(data, i, j)
			if !ok {
				continue
			}
			if best == nil || better(m, best) {
				best = m
			}
		}
	}
	// Constant model: mean of the data.
	if cm := fitConstant(data); best == nil || better(cm, best) {
		best = cm
	}
	if best == nil {
		return nil, fmt.Errorf("extrap: no hypothesis could be fit")
	}
	return best, nil
}

// better prefers lower SMAPE, breaking near-ties (within 1 percentage
// point) toward higher adjusted R² and then toward simpler models:
// constant beats any term, and smaller |exponent| beats larger.
func better(a, b *Model) bool {
	if math.Abs(a.SMAPE-b.SMAPE) > 1.0 {
		return a.SMAPE < b.SMAPE
	}
	if math.Abs(a.RSquared-b.RSquared) > 1e-9 {
		return a.RSquared > b.RSquared
	}
	if a.IsConstant() != b.IsConstant() {
		return a.IsConstant()
	}
	if math.Abs(a.I) != math.Abs(b.I) {
		return math.Abs(a.I) < math.Abs(b.I)
	}
	if a.J != b.J {
		return a.J < b.J
	}
	return a.I > b.I // positive exponent as the final tie-break
}

// fitHypothesis does OLS for f(p) = c0 + c1*g(p) with g = p^i log2^j p.
func fitHypothesis(data []Measurement, i float64, j int) (*Model, bool) {
	n := float64(len(data))
	var sg, sgg, sy, sgy float64
	for _, d := range data {
		g := term(d.P, i, j)
		if math.IsInf(g, 0) || math.IsNaN(g) {
			return nil, false
		}
		sg += g
		sgg += g * g
		sy += d.Value
		sgy += g * d.Value
	}
	det := n*sgg - sg*sg
	if math.Abs(det) < 1e-12 {
		return nil, false
	}
	c1 := (n*sgy - sg*sy) / det
	c0 := (sy - c1*sg) / n
	m := &Model{C0: c0, C1: c1, I: i, J: j}
	score(m, data, 2)
	return m, true
}

func fitConstant(data []Measurement) *Model {
	var sum float64
	for _, d := range data {
		sum += d.Value
	}
	m := &Model{C0: sum / float64(len(data))}
	score(m, data, 1)
	return m
}

// score fills RSquared (adjusted, k parameters) and SMAPE.
func score(m *Model, data []Measurement, k int) {
	n := float64(len(data))
	var mean float64
	for _, d := range data {
		mean += d.Value
	}
	mean /= n
	var ssRes, ssTot, smape float64
	for _, d := range data {
		pred := m.Eval(d.P)
		ssRes += (d.Value - pred) * (d.Value - pred)
		ssTot += (d.Value - mean) * (d.Value - mean)
		denom := math.Abs(d.Value) + math.Abs(pred)
		if denom > 0 {
			smape += 2 * math.Abs(d.Value-pred) / denom
		}
	}
	if ssTot <= 0 {
		m.RSquared = 1
	} else {
		r2 := 1 - ssRes/ssTot
		// adjusted R²
		if n-float64(k)-1 > 0 {
			m.RSquared = 1 - (1-r2)*(n-1)/(n-float64(k)-1)
		} else {
			m.RSquared = r2
		}
	}
	m.SMAPE = 100 * smape / n
}

// FitMultiTerm extends Fit with two-term PMNF hypotheses
// f(p) = c0 + c1·t1(p) + c2·t2(p), as full Extra-P supports. The
// two-term model is selected only when it improves SMAPE by more than
// one percentage point over the best single-term model (Occam guard);
// it needs measurements at >=5 distinct scales.
func FitMultiTerm(data []Measurement) (*Model, error) {
	single, err := Fit(data)
	if err != nil {
		return nil, err
	}
	distinct := map[float64]bool{}
	for _, d := range data {
		distinct[d.P] = true
	}
	if len(distinct) < 5 {
		return single, nil
	}
	best := single
	for a := 0; a < len(hypothesisI); a++ {
		for ja := 0; ja <= 1; ja++ {
			for bIdx := a + 1; bIdx < len(hypothesisI); bIdx++ {
				for jb := 0; jb <= 1; jb++ {
					i1, i2 := hypothesisI[a], hypothesisI[bIdx]
					if i1 == 0 && ja == 0 {
						continue
					}
					if i2 == 0 && jb == 0 {
						continue
					}
					m, ok := fitTwoTerm(data, i1, ja, i2, jb)
					if !ok {
						continue
					}
					if m.SMAPE < best.SMAPE-1.0 {
						best = m
					}
				}
			}
		}
	}
	return best, nil
}

// fitTwoTerm solves the 3x3 normal equations for
// y = c0 + c1 g(p) + c2 h(p).
func fitTwoTerm(data []Measurement, i1 float64, j1 int, i2 float64, j2 int) (*Model, bool) {
	n := float64(len(data))
	var sg, sh, sy, sgg, shh, sgh, sgy, shy float64
	for _, d := range data {
		g := term(d.P, i1, j1)
		h := term(d.P, i2, j2)
		if math.IsInf(g, 0) || math.IsNaN(g) || math.IsInf(h, 0) || math.IsNaN(h) {
			return nil, false
		}
		sg += g
		sh += h
		sy += d.Value
		sgg += g * g
		shh += h * h
		sgh += g * h
		sgy += g * d.Value
		shy += h * d.Value
	}
	// Solve A x = b with A = [[n,sg,sh],[sg,sgg,sgh],[sh,sgh,shh]],
	// b = [sy,sgy,shy] by Cramer's rule.
	det := n*(sgg*shh-sgh*sgh) - sg*(sg*shh-sgh*sh) + sh*(sg*sgh-sgg*sh)
	if math.Abs(det) < 1e-9 {
		return nil, false
	}
	d0 := sy*(sgg*shh-sgh*sgh) - sg*(sgy*shh-sgh*shy) + sh*(sgy*sgh-sgg*shy)
	d1 := n*(sgy*shh-sgh*shy) - sy*(sg*shh-sgh*sh) + sh*(sg*shy-sgy*sh)
	d2 := n*(sgg*shy-sgy*sgh) - sg*(sg*shy-sgy*sh) + sy*(sg*sgh-sgg*sh)
	m := &Model{
		C0: d0 / det, C1: d1 / det, I: i1, J: j1,
		HasSecond: true, C2: d2 / det, I2: i2, J2: j2,
	}
	score(m, data, 3)
	return m, true
}

// Series renders the model as (p, value) pairs over the measurement
// range — the blue line of Figure 14.
func (m *Model) Series(lo, hi float64, points int) []Measurement {
	if points < 2 {
		points = 2
	}
	out := make([]Measurement, points)
	step := (hi - lo) / float64(points-1)
	for k := 0; k < points; k++ {
		p := lo + float64(k)*step
		if k == points-1 {
			p = hi // avoid floating-point drift on the endpoint
		}
		out[k] = Measurement{P: p, Value: m.Eval(p)}
	}
	return out
}

// SortMeasurements orders data by p (in place) and returns it.
func SortMeasurements(data []Measurement) []Measurement {
	sort.Slice(data, func(i, j int) bool { return data[i].P < data[j].P })
	return data
}
