// Package mpisim is a simulated MPI runtime: ranks run as goroutines,
// point-to-point messages travel over channels, and every rank keeps
// a logical clock advanced by a Hockney (α + m/B) communication model
// parameterized by the target system's network. Collectives are
// implemented on top of point-to-point with the real algorithms
// (binomial trees, recursive doubling, ring allgather, binomial
// scatter + ring allgather for large-message broadcast), so scaling
// shapes — including the linear-in-p MPI_Bcast total time that
// Figure 14 of the Benchpark paper models with Extra-P — emerge from
// the algorithms rather than from curve fitting.
//
// Wall-clock time is decoupled from simulated time: a 3456-rank
// broadcast sweep runs in milliseconds of real time.
package mpisim

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"repro/internal/hpcsim"
)

// Op is a reduction operator.
type Op int

const (
	// OpSum adds elementwise.
	OpSum Op = iota
	// OpMax takes the elementwise maximum.
	OpMax
	// OpMin takes the elementwise minimum.
	OpMin
)

func (o Op) apply(dst, src []float64) {
	for i := range dst {
		switch o {
		case OpSum:
			dst[i] += src[i]
		case OpMax:
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		case OpMin:
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		}
	}
}

type message struct {
	data   []float64
	sentAt float64
}

// World owns the channels and configuration of one simulated job.
type World struct {
	sys          *hpcsim.System
	size         int
	ranksPerNode int

	mu    sync.Mutex
	links map[[2]int]chan message

	// abort closes when any rank fails, releasing ranks blocked in
	// communication — MPI_Abort semantics.
	abort     chan struct{}
	abortOnce sync.Once
}

// abortPanic unwinds a rank blocked in communication when the job
// aborts; the rank wrapper recovers it.
type abortPanic struct{}

// errAborted is reported by ranks that were torn down by another
// rank's failure.
var errAborted = fmt.Errorf("mpisim: job aborted by another rank's failure")

// link returns the FIFO channel from src to dst, creating it lazily
// (a dense p×p matrix would be prohibitive at 3456 ranks).
func (w *World) link(src, dst int) chan message {
	key := [2]int{src, dst}
	w.mu.Lock()
	defer w.mu.Unlock()
	ch, ok := w.links[key]
	if !ok {
		ch = make(chan message, 256)
		w.links[key] = ch
	}
	return ch
}

// sameNode reports whether two ranks share a node under block
// placement (rank/ranksPerNode).
func (w *World) sameNode(a, b int) bool {
	return a/w.ranksPerNode == b/w.ranksPerNode
}

// Comm is one rank's communicator handle. It is owned by the rank's
// goroutine and must not be shared.
type Comm struct {
	w     *World
	rank  int
	clock float64 // simulated seconds
	seq   uint64  // message counter for deterministic noise
}

// Rank returns this rank's index.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.w.size }

// System returns the system model the job runs on.
func (c *Comm) System() *hpcsim.System { return c.w.sys }

// RanksPerNode returns the block placement width.
func (c *Comm) RanksPerNode() int { return c.w.ranksPerNode }

// Now returns this rank's simulated time in seconds.
func (c *Comm) Now() float64 { return c.clock }

// Compute advances the rank's clock by a modeled compute duration.
func (c *Comm) Compute(seconds float64) {
	if seconds > 0 {
		c.clock += seconds
	}
}

// ComputeFlops advances the clock by flops at the node's sustained
// per-core rate.
func (c *Comm) ComputeFlops(flops float64) {
	rate := c.w.sys.Node.GFlopsPerCore * 1e9
	c.Compute(flops / rate)
}

// ComputeBytes advances the clock by a memory-bound sweep over the
// given bytes; node bandwidth is shared by the ranks on the node.
func (c *Comm) ComputeBytes(bytes float64) {
	ranksOnNode := c.w.ranksPerNode
	if ranksOnNode < 1 {
		ranksOnNode = 1
	}
	bw := c.w.sys.Node.MemBWGBs * 1e9 / float64(ranksOnNode)
	c.Compute(bytes / bw)
}

// ComputeOnGPU advances the clock by a GPU kernel: the max of its
// compute-bound and memory-bound durations plus one host-link
// round trip for launch/transfer.
func (c *Comm) ComputeOnGPU(flops, bytes float64) error {
	gpu := c.w.sys.Node.GPU
	if gpu == nil {
		return fmt.Errorf("mpisim: system %s has no GPUs", c.w.sys.Name)
	}
	tCompute := flops / (gpu.PeakTF * 1e12)
	tMemory := bytes / (gpu.MemBWGBs * 1e9)
	t := math.Max(tCompute, tMemory) + gpu.LinkLatUS*1e-6
	c.Compute(t)
	return nil
}

// noise returns a deterministic multiplier in
// [1-noisePct, 1+noisePct] derived from the system, rank pair and
// message sequence number.
func (c *Comm) noise(partner int) float64 {
	pct := c.w.sys.SystemNoisePct
	if pct <= 0 {
		return 1
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%d", c.w.sys.Name, c.rank, partner, c.seq)
	v := float64(h.Sum64()%10000) / 10000.0 // [0,1)
	return 1 + pct*(2*v-1)
}

// transferTime models moving n float64s between this rank and a
// partner: α + m/B with intra-node fast path.
func (c *Comm) transferTime(partner, n int) float64 {
	bytes := float64(n) * 8
	var alpha, bw float64
	if c.w.sameNode(c.rank, partner) {
		alpha = 0.4e-6
		bw = c.w.sys.Node.MemBWGBs * 1e9 / 2 // copy in and out of shared memory
	} else {
		alpha = c.w.sys.Network.LatencyUS * 1e-6
		bw = c.w.sys.Network.BandwidthGBs * 1e9
	}
	return (alpha + bytes/bw) * c.noise(partner)
}

// Send posts data to dst. The sender is charged a small injection
// overhead; the transfer itself is charged to the receiver's clock.
func (c *Comm) Send(dst int, data []float64) {
	if dst == c.rank {
		panic("mpisim: send to self")
	}
	c.seq++
	buf := make([]float64, len(data))
	copy(buf, data)
	c.clock += 0.1e-6 // injection overhead o
	select {
	case c.w.link(c.rank, dst) <- message{data: buf, sentAt: c.clock}:
	case <-c.w.abort:
		panic(abortPanic{})
	}
}

// Recv blocks until a message from src arrives and returns its
// payload, advancing the clock to the arrival time.
func (c *Comm) Recv(src int) []float64 {
	var msg message
	select {
	case msg = <-c.w.link(src, c.rank):
	case <-c.w.abort:
		panic(abortPanic{})
	}
	c.seq++
	arrive := msg.sentAt + c.transferTime(src, len(msg.data))
	if arrive > c.clock {
		c.clock = arrive
	} else {
		c.clock += 0.1e-6 // matching overhead when the message waited
	}
	return msg.data
}

// SendRecv exchanges messages with two partners without deadlock.
func (c *Comm) SendRecv(dst int, data []float64, src int) []float64 {
	c.Send(dst, data)
	return c.Recv(src)
}

// Request is a handle for a nonblocking operation. Completion happens
// at Wait; compute performed between posting and waiting overlaps
// with the transfer (the arrival time is compared against the clock
// at Wait, exactly like MPI overlap).
type Request struct {
	c       *Comm
	src     int
	isRecv  bool
	done    bool
	payload []float64
}

// Isend posts a nonblocking send. The runtime is eager-buffered, so
// the send completes immediately; the returned request exists for API
// symmetry.
func (c *Comm) Isend(dst int, data []float64) *Request {
	c.Send(dst, data)
	return &Request{c: c, done: true}
}

// Irecv posts a nonblocking receive from src. The message is matched
// at Wait time.
func (c *Comm) Irecv(src int) *Request {
	c.seq++
	c.clock += 0.1e-6 // posting overhead
	return &Request{c: c, src: src, isRecv: true}
}

// Wait completes a request, returning the received payload for
// receives (nil for sends). Waiting twice returns the same payload.
func (c *Comm) Wait(r *Request) []float64 {
	if r.c != c {
		panic("mpisim: request waited on a different rank's communicator")
	}
	if r.done {
		return r.payload
	}
	r.payload = c.Recv(r.src)
	r.done = true
	return r.payload
}

// WaitAll completes several requests in order.
func (c *Comm) WaitAll(reqs ...*Request) [][]float64 {
	out := make([][]float64, len(reqs))
	for i, r := range reqs {
		out[i] = c.Wait(r)
	}
	return out
}

// ---------------------------------------------------------------------------
// Collectives
// ---------------------------------------------------------------------------

// Barrier synchronizes all ranks (dissemination algorithm).
func (c *Comm) Barrier() {
	p := c.w.size
	if p == 1 {
		return
	}
	token := []float64{0}
	for dist := 1; dist < p; dist *= 2 {
		dst := (c.rank + dist) % p
		src := (c.rank - dist + p) % p
		c.Send(dst, token)
		c.Recv(src)
	}
}

// Bcast broadcasts data from root; every rank returns the payload.
// The algorithm follows the system's network model: "binomial" for
// log-p scaling, "scatter-allgather" (binomial scatter + ring
// allgather, van de Geijn) whose latency term grows linearly in p —
// the regime Figure 14 measures on CTS.
func (c *Comm) Bcast(root int, data []float64) []float64 {
	p := c.w.size
	if p == 1 {
		return data
	}
	switch c.w.sys.Network.BcastAlgo {
	case "scatter-allgather":
		return c.bcastScatterAllgather(root, data)
	default:
		return c.bcastBinomial(root, data)
	}
}

// bcastBinomial is the classic binomial-tree broadcast.
func (c *Comm) bcastBinomial(root int, data []float64) []float64 {
	p := c.w.size
	vrank := (c.rank - root + p) % p
	// Receive once from the parent (unless root).
	if vrank != 0 {
		parent := (vrank&(vrank-1) + root) % p
		data = c.Recv(parent)
	}
	// Forward to children: for each bit above our lowest set bit.
	lowest := vrank & (-vrank)
	if vrank == 0 {
		lowest = nextPow2(p)
	}
	for mask := lowest >> 1; mask > 0; mask >>= 1 {
		child := vrank | mask
		if child < p && child != vrank {
			c.Send((child+root)%p, data)
		}
	}
	return data
}

func nextPow2(n int) int {
	v := 1
	for v < n {
		v <<= 1
	}
	return v
}

// bcastScatterAllgather: binomial scatter of p segments, then a ring
// allgather with p-1 steps. Each ring step costs α + (m/p)/B, so the
// total latency term is Θ(p)·α: total time grows linearly with the
// process count.
func (c *Comm) bcastScatterAllgather(root int, data []float64) []float64 {
	p := c.w.size
	segs := make([][]float64, p)
	vrank := (c.rank - root + p) % p
	hi := p // upper bound (exclusive) of the segment range this rank holds
	if vrank == 0 {
		n := len(data)
		segLen := (n + p - 1) / p
		for i := 0; i < p; i++ {
			a, b := i*segLen, (i+1)*segLen
			if a > n {
				a = n
			}
			if b > n {
				b = n
			}
			segs[i] = data[a:b]
		}
	} else {
		parent, myHi := scatterMeta(vrank, p)
		hi = myHi
		packed := c.Recv((parent + root) % p)
		segs = unpackSegs(packed, p)
	}
	// Halve our range [vrank,hi), sending the upper half to the child
	// at its midpoint, until only our own segment remains.
	lo := vrank
	for hi-lo > 1 {
		mid := lo + (hi-lo+1)/2
		c.Send((mid+root)%p, packSegs(segs, mid, hi))
		hi = mid
	}

	// Ring allgather: p-1 steps; each step forwards the segment
	// received in the previous step (starting from our own) to the
	// right neighbor.
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	cur := vrank
	for s := 0; s < p-1; s++ {
		seg := segs[cur]
		payload := append([]float64{float64(cur)}, seg...)
		in := c.SendRecv(right, payload, left)
		cur = int(in[0])
		segs[cur] = in[1:]
	}

	// Reassemble in segment order.
	var out []float64
	for i := 0; i < p; i++ {
		out = append(out, segs[i]...)
	}
	return out
}

// scatterMeta returns the parent virtual rank and the exclusive upper
// bound of the segment range [vrank,hi) that a virtual rank receives
// in the halving scatter. Recomputing the descent keeps the send and
// receive sides structurally consistent.
func scatterMeta(vrank, p int) (parent, hi int) {
	lo, hiB := 0, p
	v := 0
	for v != vrank {
		mid := lo + (hiB-lo+1)/2
		if vrank >= mid {
			parent = v
			v = mid
			lo = mid
		} else {
			hiB = mid
		}
	}
	return parent, hiB
}

// packSegs flattens segments [lo,hi) with length headers.
func packSegs(segs [][]float64, lo, hi int) []float64 {
	out := []float64{float64(lo), float64(hi)}
	for i := lo; i < hi; i++ {
		out = append(out, float64(len(segs[i])))
		out = append(out, segs[i]...)
	}
	return out
}

// unpackSegs inverts packSegs into a p-length segment table.
func unpackSegs(packed []float64, p int) [][]float64 {
	segs := make([][]float64, p)
	pos := 2
	for i := int(packed[0]); i < int(packed[1]); i++ {
		n := int(packed[pos])
		pos++
		segs[i] = packed[pos : pos+n]
		pos += n
	}
	return segs
}

// Reduce combines data onto root with a binomial tree; root returns
// the result, others return nil.
func (c *Comm) Reduce(root int, data []float64, op Op) []float64 {
	p := c.w.size
	acc := make([]float64, len(data))
	copy(acc, data)
	if p == 1 {
		return acc
	}
	vrank := (c.rank - root + p) % p
	for mask := 1; mask < p; mask <<= 1 {
		if vrank&mask != 0 {
			c.Send((parentForReduce(vrank, mask)+root)%p, acc)
			return nil
		}
		partner := vrank | mask
		if partner < p {
			in := c.Recv((partner + root) % p)
			c.Compute(float64(len(acc)) * 1e-9) // reduction arithmetic
			op.apply(acc, in)
		}
	}
	return acc
}

func parentForReduce(vrank, mask int) int { return vrank &^ mask }

// Allreduce combines data across all ranks (recursive doubling for
// power-of-two counts, reduce+bcast otherwise).
func (c *Comm) Allreduce(data []float64, op Op) []float64 {
	p := c.w.size
	acc := make([]float64, len(data))
	copy(acc, data)
	if p == 1 {
		return acc
	}
	if p&(p-1) == 0 {
		for mask := 1; mask < p; mask <<= 1 {
			partner := c.rank ^ mask
			in := c.SendRecv(partner, acc, partner)
			c.Compute(float64(len(acc)) * 1e-9)
			op.apply(acc, in)
		}
		return acc
	}
	res := c.Reduce(0, acc, op)
	if c.rank != 0 {
		res = make([]float64, len(acc))
	}
	return c.Bcast(0, res)
}

// Allgather concatenates each rank's contribution in rank order
// (ring algorithm).
func (c *Comm) Allgather(data []float64) []float64 {
	p := c.w.size
	n := len(data)
	out := make([]float64, n*p)
	copy(out[c.rank*n:], data)
	if p == 1 {
		return out
	}
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	cur := c.rank
	buf := data
	for s := 0; s < p-1; s++ {
		payload := append([]float64{float64(cur)}, buf...)
		in := c.SendRecv(right, payload, left)
		cur = int(in[0])
		buf = in[1:]
		copy(out[cur*n:], buf)
	}
	return out
}

// ---------------------------------------------------------------------------
// Job execution
// ---------------------------------------------------------------------------

// Result summarizes one simulated MPI job.
type Result struct {
	Ranks    int
	MaxTime  float64 // simulated elapsed time (slowest rank)
	MinTime  float64
	MeanTime float64
	PerRank  []float64
}

// Run executes fn on nranks simulated ranks placed ranksPerNode per
// node on the given system, and returns per-rank simulated times.
// Any rank returning an error aborts the job with that error.
func Run(sys *hpcsim.System, nranks, ranksPerNode int, fn func(*Comm) error) (*Result, error) {
	if nranks <= 0 {
		return nil, fmt.Errorf("mpisim: nranks = %d", nranks)
	}
	if ranksPerNode <= 0 {
		ranksPerNode = sys.Node.Cores()
	}
	if ranksPerNode > sys.Node.Cores() {
		return nil, fmt.Errorf("mpisim: %d ranks per node exceeds %d cores on %s",
			ranksPerNode, sys.Node.Cores(), sys.Name)
	}
	nodesNeeded := (nranks + ranksPerNode - 1) / ranksPerNode
	if nodesNeeded > sys.Nodes {
		return nil, fmt.Errorf("mpisim: job needs %d nodes, %s has %d", nodesNeeded, sys.Name, sys.Nodes)
	}

	w := &World{
		sys: sys, size: nranks, ranksPerNode: ranksPerNode,
		links: map[[2]int]chan message{}, abort: make(chan struct{}),
	}
	times := make([]float64, nranks)
	errs := make([]error, nranks)
	var wg sync.WaitGroup
	for r := 0; r < nranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			comm := &Comm{w: w, rank: rank}
			defer func() {
				if rec := recover(); rec != nil {
					if _, ok := rec.(abortPanic); ok {
						errs[rank] = errAborted
						times[rank] = comm.clock
						return
					}
					panic(rec)
				}
			}()
			errs[rank] = fn(comm)
			times[rank] = comm.clock
			if errs[rank] != nil {
				// Tear down the job so peers blocked in communication
				// unwind instead of deadlocking (MPI_Abort).
				w.abortOnce.Do(func() { close(w.abort) })
			}
		}(r)
	}
	wg.Wait()
	// Report the root-cause failure, not the collateral aborts.
	for r, err := range errs {
		if err != nil && err != errAborted {
			return nil, fmt.Errorf("mpisim: rank %d: %w", r, err)
		}
	}
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mpisim: rank %d: %w", r, err)
		}
	}
	res := &Result{Ranks: nranks, PerRank: times, MinTime: math.Inf(1)}
	var sum float64
	for _, t := range times {
		if t > res.MaxTime {
			res.MaxTime = t
		}
		if t < res.MinTime {
			res.MinTime = t
		}
		sum += t
	}
	res.MeanTime = sum / float64(nranks)
	return res, nil
}
