package mpisim

// Additional collectives beyond the Figure-14 set: Scatter, Gather,
// ReduceScatter and Alltoall, with the standard algorithms (binomial
// trees for scatter/gather, pairwise exchange for alltoall). These
// round out the MPI surface the benchmark kernels and future
// applications can rely on.

// Scatter distributes root's data in equal contiguous blocks; every
// rank returns its block. len(data) must be divisible by Size() on
// the root (binomial-tree algorithm, halving ranges like the
// large-message broadcast).
func (c *Comm) Scatter(root int, data []float64) []float64 {
	p := c.w.size
	if p == 1 {
		out := make([]float64, len(data))
		copy(out, data)
		return out
	}
	vrank := (c.rank - root + p) % p
	segs := make([][]float64, p)
	hi := p
	if vrank == 0 {
		n := len(data) / p
		for i := 0; i < p; i++ {
			segs[i] = data[i*n : (i+1)*n]
		}
	} else {
		parent, myHi := scatterMeta(vrank, p)
		hi = myHi
		packed := c.Recv((parent + root) % p)
		segs = unpackSegs(packed, p)
	}
	lo := vrank
	for hi-lo > 1 {
		mid := lo + (hi-lo+1)/2
		c.Send((mid+root)%p, packSegs(segs, mid, hi))
		hi = mid
	}
	out := make([]float64, len(segs[vrank]))
	copy(out, segs[vrank])
	return out
}

// Gather collects equal-size contributions onto root in rank order;
// root returns the concatenation, others nil (binomial tree, the
// mirror of Scatter).
func (c *Comm) Gather(root int, data []float64) []float64 {
	p := c.w.size
	n := len(data)
	if p == 1 {
		out := make([]float64, n)
		copy(out, data)
		return out
	}
	vrank := (c.rank - root + p) % p
	// Each rank accumulates segments for [vrank, hi); leaves send up.
	segs := make([][]float64, p)
	segs[vrank] = data
	_, hi := scatterMeta(vrank, p)
	if vrank == 0 {
		hi = p
	}
	// Receive from children in reverse order of the scatter sends.
	var children []int
	lo := vrank
	h := hi
	for h-lo > 1 {
		mid := lo + (h-lo+1)/2
		children = append(children, mid)
		h = mid
	}
	for i := len(children) - 1; i >= 0; i-- {
		packed := c.Recv((children[i] + root) % p)
		in := unpackSegs(packed, p)
		for idx, seg := range in {
			if seg != nil {
				segs[idx] = seg
			}
		}
	}
	if vrank != 0 {
		parent, myHi := scatterMeta(vrank, p)
		c.Send((parent+root)%p, packSegs(segs, vrank, myHi))
		return nil
	}
	out := make([]float64, 0, n*p)
	for i := 0; i < p; i++ {
		out = append(out, segs[i]...)
	}
	return out
}

// ReduceScatter element-wise reduces data across ranks and scatters
// the result in equal blocks (reduce-to-root + scatter; len(data)
// must be divisible by Size()).
func (c *Comm) ReduceScatter(data []float64, op Op) []float64 {
	p := c.w.size
	reduced := c.Reduce(0, data, op)
	if p == 1 {
		return reduced
	}
	return c.Scatter(0, reduced)
}

// Alltoall sends block i of data to rank i and returns the blocks
// received from every rank, in rank order (pairwise-exchange
// algorithm: p-1 rounds of SendRecv with XOR/shift partners).
func (c *Comm) Alltoall(data []float64) []float64 {
	p := c.w.size
	n := len(data) / p
	out := make([]float64, len(data))
	copy(out[c.rank*n:(c.rank+1)*n], data[c.rank*n:(c.rank+1)*n])
	for round := 1; round < p; round++ {
		dst := (c.rank + round) % p
		src := (c.rank - round + p) % p
		in := c.SendRecv(dst, data[dst*n:(dst+1)*n], src)
		copy(out[src*n:(src+1)*n], in)
	}
	return out
}
