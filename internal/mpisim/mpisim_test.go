package mpisim

import (
	"math"
	"testing"

	"repro/internal/hpcsim"
)

func sys(t testing.TB, name string) *hpcsim.System {
	t.Helper()
	s, err := hpcsim.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSendRecvDeliversData(t *testing.T) {
	res, err := Run(sys(t, "cts1"), 2, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, []float64{1, 2, 3})
		} else {
			got := c.Recv(0)
			if len(got) != 3 || got[0] != 1 || got[2] != 3 {
				t.Errorf("recv = %v", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxTime <= 0 {
		t.Error("no simulated time elapsed")
	}
}

func TestClockAdvancesWithMessageSize(t *testing.T) {
	timeFor := func(n int) float64 {
		var recvTime float64
		_, err := Run(sys(t, "cts1"), 2, 1, func(c *Comm) error {
			if c.Rank() == 0 {
				c.Send(1, make([]float64, n))
			} else {
				c.Recv(0)
				recvTime = c.Now()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return recvTime
	}
	small, large := timeFor(1), timeFor(1<<20)
	if large <= small {
		t.Errorf("1M-element transfer (%g) not slower than 1-element (%g)", large, small)
	}
	// Bandwidth term: 8 MiB at 12.5 GB/s ≈ 0.67 ms.
	if large < 5e-4 || large > 5e-3 {
		t.Errorf("large transfer time %g outside plausible range", large)
	}
}

func TestIntraNodeFasterThanInterNode(t *testing.T) {
	measure := func(ranksPerNode int) float64 {
		var tt float64
		_, err := Run(sys(t, "cts1"), 2, ranksPerNode, func(c *Comm) error {
			if c.Rank() == 0 {
				c.Send(1, make([]float64, 1024))
			} else {
				c.Recv(0)
				tt = c.Now()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return tt
	}
	intra := measure(2) // both ranks on one node
	inter := measure(1) // one rank per node
	if intra >= inter {
		t.Errorf("intra-node %g should beat inter-node %g", intra, inter)
	}
}

func TestBcastBinomialCorrect(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8, 16, 33} {
		payload := []float64{3.14, 2.71, 1.41}
		_, err := Run(sys(t, "ats2"), p, 4, func(c *Comm) error {
			var data []float64
			if c.Rank() == 0 {
				data = payload
			}
			got := c.Bcast(0, data)
			if len(got) != 3 || got[0] != 3.14 || got[2] != 1.41 {
				t.Errorf("p=%d rank %d: bcast = %v", p, c.Rank(), got)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestBcastNonzeroRoot(t *testing.T) {
	for _, sysName := range []string{"ats2", "cts1"} {
		_, err := Run(sys(t, sysName), 6, 2, func(c *Comm) error {
			var data []float64
			root := 3
			if c.Rank() == root {
				data = []float64{42, 43, 44, 45, 46, 47}
			}
			got := c.Bcast(root, data)
			for i, v := range got {
				if v != float64(42+i) {
					t.Errorf("%s rank %d: got[%d] = %v", sysName, c.Rank(), i, v)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestBcastScatterAllgatherCorrect(t *testing.T) {
	// cts1 uses the scatter-allgather algorithm; verify payload
	// integrity for assorted sizes including p > len(data).
	for _, p := range []int{2, 3, 5, 8, 13, 32} {
		for _, n := range []int{1, 7, 64, 1000} {
			payload := make([]float64, n)
			for i := range payload {
				payload[i] = float64(i) * 0.5
			}
			_, err := Run(sys(t, "cts1"), p, 4, func(c *Comm) error {
				var data []float64
				if c.Rank() == 0 {
					data = payload
				}
				got := c.Bcast(0, data)
				if len(got) != n {
					t.Errorf("p=%d n=%d rank %d: len = %d", p, n, c.Rank(), len(got))
					return nil
				}
				for i, v := range got {
					if v != float64(i)*0.5 {
						t.Errorf("p=%d n=%d rank %d: got[%d] = %v", p, n, c.Rank(), i, v)
						return nil
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d n=%d: %v", p, n, err)
			}
		}
	}
}

// TestBcastLinearOnCTS verifies the Figure 14 shape: on cts1 the
// broadcast elapsed time grows roughly linearly with the process
// count, while on a binomial system it grows like log p.
func TestBcastLinearOnCTS(t *testing.T) {
	elapsed := func(sysName string, p int) float64 {
		res, err := Run(sys(t, sysName), p, 16, func(c *Comm) error {
			var data []float64
			if c.Rank() == 0 {
				data = make([]float64, 4096)
			}
			c.Bcast(0, data)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MaxTime
	}
	// cts1: doubling p should roughly double the latency-dominated time.
	t64, t256 := elapsed("cts1", 64), elapsed("cts1", 256)
	ratioCTS := t256 / t64
	if ratioCTS < 2.2 {
		t.Errorf("cts1 bcast scaling ratio %.2f: expected near-linear (>2.2) growth 64→256", ratioCTS)
	}
	// ats2 (binomial): ratio should be far smaller (log2 256/log2 64 = 1.33).
	b64, b256 := elapsed("ats2", 64), elapsed("ats2", 256)
	ratioBin := b256 / b64
	if ratioBin > 2.0 {
		t.Errorf("ats2 bcast ratio %.2f: binomial should scale sub-linearly", ratioBin)
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 16, 5, 12} {
		_, err := Run(sys(t, "ats4"), p, 8, func(c *Comm) error {
			mine := []float64{float64(c.Rank()), 1}
			sum := c.Allreduce(mine, OpSum)
			wantSum := float64(p*(p-1)) / 2
			if math.Abs(sum[0]-wantSum) > 1e-9 || sum[1] != float64(p) {
				t.Errorf("p=%d rank %d: allreduce = %v want [%v %v]", p, c.Rank(), sum, wantSum, p)
			}
			mx := c.Allreduce([]float64{float64(c.Rank())}, OpMax)
			if mx[0] != float64(p-1) {
				t.Errorf("p=%d: max = %v", p, mx)
			}
			mn := c.Allreduce([]float64{float64(c.Rank())}, OpMin)
			if mn[0] != 0 {
				t.Errorf("p=%d: min = %v", p, mn)
			}
			red := c.Reduce(0, []float64{1}, OpSum)
			if c.Rank() == 0 {
				if red == nil || red[0] != float64(p) {
					t.Errorf("p=%d: reduce = %v", p, red)
				}
			} else if red != nil {
				t.Errorf("p=%d rank %d: non-root got %v", p, c.Rank(), red)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAllgather(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8} {
		_, err := Run(sys(t, "cts1"), p, 4, func(c *Comm) error {
			got := c.Allgather([]float64{float64(c.Rank() * 10), float64(c.Rank()*10 + 1)})
			if len(got) != 2*p {
				t.Errorf("p=%d: len=%d", p, len(got))
				return nil
			}
			for r := 0; r < p; r++ {
				if got[2*r] != float64(r*10) || got[2*r+1] != float64(r*10+1) {
					t.Errorf("p=%d rank %d: got=%v", p, c.Rank(), got)
					return nil
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	// After a barrier, every rank's clock is at least the straggler's
	// pre-barrier clock.
	const straggler = 5.0
	var after [8]float64
	_, err := Run(sys(t, "cts1"), 8, 8, func(c *Comm) error {
		if c.Rank() == 3 {
			c.Compute(straggler)
		}
		c.Barrier()
		after[c.Rank()] = c.Now()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, tm := range after {
		if tm < straggler {
			t.Errorf("rank %d passed barrier at %g, before straggler finished", r, tm)
		}
	}
}

func TestComputeHelpers(t *testing.T) {
	_, err := Run(sys(t, "cts1"), 1, 1, func(c *Comm) error {
		c.ComputeFlops(18.4e9) // exactly one second at cts1's rate
		if math.Abs(c.Now()-1.0) > 1e-9 {
			t.Errorf("flops time = %v", c.Now())
		}
		start := c.Now()
		c.ComputeBytes(120e9) // one second at full node bandwidth (1 rank)
		if math.Abs(c.Now()-start-1.0) > 1e-9 {
			t.Errorf("bytes time = %v", c.Now()-start)
		}
		if err := c.ComputeOnGPU(1e12, 1e9); err == nil {
			t.Error("cts1 has no GPUs; ComputeOnGPU should fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestComputeOnGPU(t *testing.T) {
	_, err := Run(sys(t, "ats2"), 1, 1, func(c *Comm) error {
		if err := c.ComputeOnGPU(7.8e12, 0); err != nil {
			return err
		}
		// One second of peak compute plus launch latency.
		if c.Now() < 1.0 || c.Now() > 1.01 {
			t.Errorf("gpu time = %v", c.Now())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(sys(t, "cts1"), 0, 1, func(*Comm) error { return nil }); err == nil {
		t.Error("zero ranks should fail")
	}
	if _, err := Run(sys(t, "cts1"), 4, 100, func(*Comm) error { return nil }); err == nil {
		t.Error("oversubscribed node should fail")
	}
	// Too many nodes.
	cts := sys(t, "cts1")
	if _, err := Run(cts, cts.TotalCores()+36, 36, func(*Comm) error { return nil }); err == nil {
		t.Error("exceeding system size should fail")
	}
}

func TestRankErrorPropagates(t *testing.T) {
	_, err := Run(sys(t, "cts1"), 4, 4, func(c *Comm) error {
		if c.Rank() == 2 {
			return errTest
		}
		return nil
	})
	if err == nil {
		t.Fatal("rank error should propagate")
	}
}

var errTest = errorString("simulated failure")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestDeterministicTiming(t *testing.T) {
	run := func() float64 {
		res, err := Run(sys(t, "cts1"), 16, 8, func(c *Comm) error {
			data := c.Allreduce([]float64{1}, OpSum)
			_ = data
			c.Bcast(0, []float64{1, 2, 3})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MaxTime
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("non-deterministic simulated time: %g vs %g", a, b)
	}
}

func TestResultStatistics(t *testing.T) {
	res, err := Run(sys(t, "cts1"), 4, 4, func(c *Comm) error {
		c.Compute(float64(c.Rank()))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxTime != 3 || res.MinTime != 0 || math.Abs(res.MeanTime-1.5) > 1e-12 {
		t.Errorf("stats = %+v", res)
	}
	if len(res.PerRank) != 4 {
		t.Errorf("per-rank = %v", res.PerRank)
	}
}
