package mpisim

import (
	"strings"
	"testing"
	"time"
)

func TestScatter(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 16} {
		for _, root := range []int{0, p - 1} {
			blockLen := 3
			_, err := Run(sys(t, "cts1"), p, 4, func(c *Comm) error {
				var data []float64
				if c.Rank() == root {
					data = make([]float64, p*blockLen)
					for i := range data {
						data[i] = float64(i)
					}
				}
				got := c.Scatter(root, data)
				if len(got) != blockLen {
					t.Errorf("p=%d rank %d: len=%d", p, c.Rank(), len(got))
					return nil
				}
				// Rank r (virtual order from root) holds block vrank.
				vrank := (c.Rank() - root + p) % p
				for i, v := range got {
					if v != float64(vrank*blockLen+i) {
						t.Errorf("p=%d root=%d rank %d: got=%v", p, root, c.Rank(), got)
						return nil
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestGather(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 13} {
		root := 0
		_, err := Run(sys(t, "cts1"), p, 4, func(c *Comm) error {
			vrank := (c.Rank() - root + p) % p
			mine := []float64{float64(vrank * 10), float64(vrank*10 + 1)}
			got := c.Gather(root, mine)
			if c.Rank() != root {
				if got != nil {
					t.Errorf("p=%d rank %d: non-root got %v", p, c.Rank(), got)
				}
				return nil
			}
			if len(got) != 2*p {
				t.Errorf("p=%d: root len=%d", p, len(got))
				return nil
			}
			for v := 0; v < p; v++ {
				if got[2*v] != float64(v*10) || got[2*v+1] != float64(v*10+1) {
					t.Errorf("p=%d: got=%v", p, got)
					return nil
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	// gather(scatter(x)) == x for any rank count dividing the data.
	const p = 6
	const blockLen = 4
	_, err := Run(sys(t, "cts1"), p, 6, func(c *Comm) error {
		var data []float64
		if c.Rank() == 0 {
			data = make([]float64, p*blockLen)
			for i := range data {
				data[i] = float64(i) * 1.5
			}
		}
		mine := c.Scatter(0, data)
		back := c.Gather(0, mine)
		if c.Rank() == 0 {
			for i, v := range back {
				if v != float64(i)*1.5 {
					t.Errorf("round trip [%d] = %v", i, v)
					return nil
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatter(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		_, err := Run(sys(t, "ats4"), p, 8, func(c *Comm) error {
			// Every rank contributes [0,1,2,...]; the sum is p*i.
			data := make([]float64, p*2)
			for i := range data {
				data[i] = float64(i)
			}
			got := c.ReduceScatter(data, OpSum)
			if len(got) != 2 {
				t.Errorf("p=%d rank %d: len=%d", p, c.Rank(), len(got))
				return nil
			}
			base := c.Rank() * 2
			for i, v := range got {
				want := float64(p * (base + i))
				if v != want {
					t.Errorf("p=%d rank %d: got[%d]=%v want %v", p, c.Rank(), i, v, want)
					return nil
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAlltoall(t *testing.T) {
	for _, p := range []int{1, 2, 3, 7, 8} {
		_, err := Run(sys(t, "cts1"), p, 8, func(c *Comm) error {
			// Block j of rank i's send buffer carries (i, j).
			data := make([]float64, p*2)
			for j := 0; j < p; j++ {
				data[2*j] = float64(c.Rank())
				data[2*j+1] = float64(j)
			}
			got := c.Alltoall(data)
			if len(got) != 2*p {
				t.Errorf("p=%d: len=%d", p, len(got))
				return nil
			}
			// After alltoall, block j must carry (j, myrank).
			for j := 0; j < p; j++ {
				if got[2*j] != float64(j) || got[2*j+1] != float64(c.Rank()) {
					t.Errorf("p=%d rank %d: block %d = (%v,%v)", p, c.Rank(), j, got[2*j], got[2*j+1])
					return nil
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestScatterTimeScalesWithFanout(t *testing.T) {
	elapsed := func(p int) float64 {
		res, err := Run(sys(t, "cts1"), p, 8, func(c *Comm) error {
			var data []float64
			if c.Rank() == 0 {
				data = make([]float64, p*1024)
			}
			c.Scatter(0, data)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MaxTime
	}
	if e8, e64 := elapsed(8), elapsed(64); e64 <= e8 {
		t.Errorf("scatter at 64 ranks (%g) should exceed 8 ranks (%g)", e64, e8)
	}
}

// TestNonblockingOverlap: compute between Irecv and Wait hides the
// transfer time, so the overlapped pattern finishes no later than the
// blocking one — and strictly earlier when compute ≈ transfer.
func TestNonblockingOverlap(t *testing.T) {
	const n = 1 << 20 // ~8 MB: transfer takes ~0.7ms on cts1
	const compute = 0.0006
	run := func(overlap bool) float64 {
		var finished float64
		_, err := Run(sys(t, "cts1"), 2, 1, func(c *Comm) error {
			if c.Rank() == 0 {
				c.Send(1, make([]float64, n))
				return nil
			}
			if overlap {
				req := c.Irecv(0)
				c.Compute(compute) // overlapped work
				c.Wait(req)
			} else {
				c.Recv(0)
				c.Compute(compute) // serialized work
			}
			finished = c.Now()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return finished
	}
	blocking, overlapped := run(false), run(true)
	if overlapped >= blocking {
		t.Errorf("overlap (%.6f) should beat blocking (%.6f)", overlapped, blocking)
	}
}

func TestNonblockingCorrectness(t *testing.T) {
	_, err := Run(sys(t, "cts1"), 2, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			r1 := c.Isend(1, []float64{1, 2})
			r2 := c.Isend(1, []float64{3, 4})
			c.WaitAll(r1, r2)
			return nil
		}
		a := c.Irecv(0)
		b := c.Irecv(0)
		// Per-pair FIFO ordering holds for nonblocking matches.
		got := c.WaitAll(a, b)
		if got[0][0] != 1 || got[1][0] != 3 {
			t.Errorf("got %v", got)
		}
		// Waiting again returns the same payload.
		if again := c.Wait(a); again[1] != 2 {
			t.Errorf("re-wait = %v", again)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAbortReleasesBlockedRanks: one rank failing must not deadlock
// peers blocked in collectives (MPI_Abort semantics).
func TestAbortReleasesBlockedRanks(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		_, err := Run(sys(t, "cts1"), 8, 8, func(c *Comm) error {
			if c.Rank() == 3 {
				return errTest
			}
			// Everyone else blocks in a collective that can never
			// complete without rank 3.
			c.Allreduce([]float64{1}, OpSum)
			return nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("job should fail")
		}
		if !strings.Contains(err.Error(), "rank 3") {
			t.Errorf("root cause not reported: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock: abort did not release blocked ranks")
	}
}

// TestPerPairFIFO: messages between one (src,dst) pair are received
// in send order regardless of size.
func TestPerPairFIFO(t *testing.T) {
	_, err := Run(sys(t, "cts1"), 2, 2, func(c *Comm) error {
		const n = 50
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				size := 1 + (i%7)*100
				msg := make([]float64, size)
				msg[0] = float64(i)
				c.Send(1, msg)
			}
			return nil
		}
		for i := 0; i < n; i++ {
			got := c.Recv(0)
			if int(got[0]) != i {
				t.Errorf("message %d arrived out of order (got %v)", i, got[0])
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
