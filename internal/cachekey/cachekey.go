// Package cachekey is the one cache-key abstraction of the
// incremental pipeline (ROADMAP "Incremental pipeline à la exaCB"):
// a canonical content hash over the inputs of a pipeline stage —
// spec, system, variables, toolchain and schema versions — plus a
// durable content-addressed store keyed by it.
//
// Every caching layer derives its keys the same way: Hash canonically
// encodes the stage's inputs (stable JSON: map keys sorted, struct
// fields in declaration order) and folds in the package's
// SchemaVersion and the Go toolchain version, so a schema change or a
// toolchain upgrade invalidates every cache at once instead of
// serving stale entries. Keys compose: Key.Derive(stage, inputs...)
// chains a stage name and upstream keys into a new key, which is how
// a downstream stage (execute) inherits invalidation from its
// upstream (concretize, install) without re-encoding their inputs.
//
// The three pipeline layers share the abstraction:
//
//   - internal/concretizer memoizes concretization results per
//     input-spec key ("concretize" layer),
//   - internal/buildcache persists built binaries through it
//     ("buildcache" layer),
//   - internal/engine replays experiment outcomes from it
//     ("run" layer).
//
// Determinism contract: Hash never reads the clock, the environment,
// or any other ambient state — equal inputs yield equal keys in every
// process, which is what makes a CI push re-run only the delta.
package cachekey

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"runtime"
)

// SchemaVersion names the cache entry encoding. Bump it whenever a
// layer changes what it stores under a key: old entries become cold
// misses instead of wrong hits.
const SchemaVersion = "benchpark-cache-1"

// Toolchain identifies the Go toolchain that produced the cached
// artifacts. Folded into every key: a compiler upgrade can change
// simulated outcomes, so it must invalidate the cache.
func Toolchain() string { return runtime.Version() }

// Key is a content hash: 64 lowercase hex characters (sha256). The
// zero Key ("") is the invalid key — it never matches a stored entry
// and stores refuse to persist under it, so hashing failures degrade
// to cold misses rather than collisions.
type Key string

// Valid reports whether k has the canonical 64-hex-char form.
func (k Key) Valid() bool {
	if len(k) != 64 {
		return false
	}
	for i := 0; i < len(k); i++ {
		c := k[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Short returns the conventional 12-character abbreviation for logs
// and provenance records.
func (k Key) Short() string {
	if len(k) < 12 {
		return string(k)
	}
	return string(k[:12])
}

// Hash canonically encodes v (stable JSON) together with the schema
// and toolchain versions and returns the content key. Values that
// cannot marshal (channels, funcs, cycles) yield the zero Key, which
// never hits.
func Hash(v any) Key {
	data, err := json.Marshal(v)
	if err != nil {
		return ""
	}
	h := sha256.New()
	h.Write([]byte(SchemaVersion)) //nolint:errcheck
	h.Write([]byte{0})             //nolint:errcheck
	h.Write([]byte(Toolchain()))   //nolint:errcheck
	h.Write([]byte{0})             //nolint:errcheck
	h.Write(data)                  //nolint:errcheck
	return Key(hex.EncodeToString(h.Sum(nil)))
}

// Derive composes a new key from k, a stage name, and further input
// keys — the content address of a stage's output given its inputs.
// Deriving from or through an invalid key yields the invalid key, so
// a poisoned upstream never produces a plausible downstream hit.
func (k Key) Derive(stage string, inputs ...Key) Key {
	if !k.Valid() {
		return ""
	}
	h := sha256.New()
	h.Write([]byte(SchemaVersion)) //nolint:errcheck
	h.Write([]byte{0})             //nolint:errcheck
	h.Write([]byte(k))             //nolint:errcheck
	h.Write([]byte{0})             //nolint:errcheck
	h.Write([]byte(stage))         //nolint:errcheck
	for _, in := range inputs {
		if !in.Valid() {
			return ""
		}
		h.Write([]byte{0})  //nolint:errcheck
		h.Write([]byte(in)) //nolint:errcheck
	}
	return Key(hex.EncodeToString(h.Sum(nil)))
}
