package cachekey

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Store is the durable on-disk content-addressed store behind the
// incremental pipeline. Entries live under <dir>/<layer>/<kk>/<key>
// (kk = the key's first two hex chars, so directories stay shallow)
// and are framed with a length + sha256 header.
//
// Durability contract:
//
//   - Writes are atomic: an entry is written to a temp file, fsynced,
//     and renamed into place, so readers never observe a torn entry.
//   - Corruption degrades to a cold miss, never a wrong hit: a
//     truncated, bit-flipped, or foreign file fails the frame check
//     and Get reports a miss (the pipeline then recomputes and
//     overwrites it).
//   - Concurrent same-key writers are safe: each writes its own temp
//     file and the rename is atomic, so a reader sees one complete
//     entry or none.
//
// The Store is safe for concurrent use by multiple goroutines; many
// processes may share a directory (CI pipelines reusing one cache
// across jobs).
type Store struct {
	dir string

	mu     sync.Mutex
	layers map[string]*Layer
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cachekey: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cachekey: opening store: %w", err)
	}
	return &Store{dir: dir, layers: map[string]*Layer{}}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Layer returns the named cache layer ("concretize", "buildcache",
// "run", ...). Repeated calls with the same name return the same
// Layer, so hit/miss statistics aggregate per layer.
func (s *Store) Layer(name string) *Layer {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.layers[name]; ok {
		return l
	}
	l := &Layer{store: s, name: name}
	s.layers[name] = l
	return l
}

// Layer is one named partition of a Store with its own statistics.
// It implements the Get/Put contract the engine's run cache and the
// other pipeline layers consume.
type Layer struct {
	store *Store
	name  string

	mu     sync.Mutex
	hits   int
	misses int
	puts   int
	bytes  int64 // payload bytes served by hits plus written by puts
}

// LayerStats is one layer's cache-traffic account.
type LayerStats struct {
	Layer  string
	Hits   int
	Misses int
	Puts   int
	Bytes  int64
}

// Stats returns the layer's lifetime counters.
func (l *Layer) Stats() LayerStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LayerStats{Layer: l.name, Hits: l.hits, Misses: l.misses, Puts: l.puts, Bytes: l.bytes}
}

// Name returns the layer's name.
func (l *Layer) Name() string { return l.name }

// entry framing: magic, format version, payload length, payload
// sha256, payload. Any mismatch — wrong magic, short file, bad
// length, bad digest — is a cold miss.
var entryMagic = [4]byte{'b', 'p', 'c', 'k'}

const (
	entryVersion    = 1
	entryHeaderSize = 4 + 1 + 8 + sha256.Size
)

// frame prefixes data with the entry header.
func frame(data []byte) []byte {
	out := make([]byte, entryHeaderSize+len(data))
	copy(out, entryMagic[:])
	out[4] = entryVersion
	binary.BigEndian.PutUint64(out[5:13], uint64(len(data)))
	sum := sha256.Sum256(data)
	copy(out[13:13+sha256.Size], sum[:])
	copy(out[entryHeaderSize:], data)
	return out
}

// unframe verifies the header and returns the payload, or false for
// any corruption.
func unframe(raw []byte) ([]byte, bool) {
	if len(raw) < entryHeaderSize {
		return nil, false
	}
	if !bytes.Equal(raw[:4], entryMagic[:]) || raw[4] != entryVersion {
		return nil, false
	}
	n := binary.BigEndian.Uint64(raw[5:13])
	if n != uint64(len(raw)-entryHeaderSize) {
		return nil, false
	}
	payload := raw[entryHeaderSize:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(raw[13:13+sha256.Size], sum[:]) {
		return nil, false
	}
	return payload, true
}

// path maps a key to its entry file.
func (l *Layer) path(key Key) string {
	return filepath.Join(l.store.dir, l.name, string(key[:2]), string(key))
}

// Get fetches the payload stored under key, recording a hit or a
// miss. An invalid key, a missing entry, or a corrupt entry all
// report a miss.
func (l *Layer) Get(key Key) ([]byte, bool) {
	if !key.Valid() {
		l.note(false, 0)
		return nil, false
	}
	raw, err := os.ReadFile(l.path(key))
	if err != nil {
		l.note(false, 0)
		return nil, false
	}
	payload, ok := unframe(raw)
	if !ok {
		l.note(false, 0)
		return nil, false
	}
	l.note(true, int64(len(payload)))
	return payload, true
}

// Has reports whether a valid entry exists under key without touching
// the hit/miss statistics.
func (l *Layer) Has(key Key) bool {
	if !key.Valid() {
		return false
	}
	raw, err := os.ReadFile(l.path(key))
	if err != nil {
		return false
	}
	_, ok := unframe(raw)
	return ok
}

// Put stores payload under key, atomically (write temp, fsync,
// rename). Re-putting a key overwrites in place — content addressing
// makes that idempotent.
func (l *Layer) Put(key Key, data []byte) error {
	if !key.Valid() {
		return fmt.Errorf("cachekey: refusing to store under invalid key %q", key)
	}
	path := l.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("cachekey: put %s: %w", key.Short(), err)
	}
	if err := l.store.Commit(path, frame(data)); err != nil {
		return fmt.Errorf("cachekey: put %s: %w", key.Short(), err)
	}
	l.mu.Lock()
	l.puts++
	l.bytes += int64(len(data))
	l.mu.Unlock()
	return nil
}

// Keys lists the layer's persisted entry keys, sorted. Files that do
// not look like keys (temp files, strays) are skipped; entries are
// not verified — Get still applies the corruption check.
func (l *Layer) Keys() []Key {
	var out []Key
	root := filepath.Join(l.store.dir, l.name)
	buckets, err := os.ReadDir(root)
	if err != nil {
		return nil
	}
	for _, b := range buckets {
		if !b.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(root, b.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			k := Key(f.Name())
			if k.Valid() && string(k[:2]) == b.Name() {
				out = append(out, k)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// note records one lookup outcome.
func (l *Layer) note(hit bool, n int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if hit {
		l.hits++
		l.bytes += n
	} else {
		l.misses++
	}
}

// Commit durably publishes one entry file: the frame is written to a
// private temp file, fsynced, and atomically renamed over path. The
// fsync-before-rename order is what makes a crash leave either the
// old entry or the complete new one — never a torn frame under the
// final name.
func (s *Store) Commit(path string, framed []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".tmp-entry-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(framed); err != nil {
		f.Close()      //nolint:errcheck
		os.Remove(tmp) //nolint:errcheck
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()      //nolint:errcheck
		os.Remove(tmp) //nolint:errcheck
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp) //nolint:errcheck
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp) //nolint:errcheck
		return err
	}
	return nil
}
