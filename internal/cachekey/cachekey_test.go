package cachekey

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
)

func TestHashStableAndInputSensitive(t *testing.T) {
	type in struct {
		Spec   string
		System string
		Vars   map[string]string
	}
	a := in{Spec: "saxpy@1.0.0", System: "cts1", Vars: map[string]string{"n": "512", "t": "4"}}
	b := in{Spec: "saxpy@1.0.0", System: "cts1", Vars: map[string]string{"t": "4", "n": "512"}}
	if Hash(a) != Hash(b) {
		t.Error("hash must not depend on map insertion order")
	}
	if !Hash(a).Valid() {
		t.Errorf("Hash produced invalid key %q", Hash(a))
	}
	c := a
	c.Vars = map[string]string{"n": "513", "t": "4"}
	if Hash(a) == Hash(c) {
		t.Error("different variables must produce different keys")
	}
	d := a
	d.System = "ats2"
	if Hash(a) == Hash(d) {
		t.Error("different systems must produce different keys")
	}
}

func TestHashUnmarshalableIsInvalid(t *testing.T) {
	k := Hash(func() {})
	if k != "" || k.Valid() {
		t.Errorf("unmarshalable value must hash to the invalid key, got %q", k)
	}
}

func TestDeriveComposes(t *testing.T) {
	base := Hash("spec")
	up := Hash("upstream")
	k1 := base.Derive("execute", up)
	k2 := base.Derive("execute", up)
	if k1 != k2 || !k1.Valid() {
		t.Fatalf("Derive must be deterministic and valid, got %q vs %q", k1, k2)
	}
	if base.Derive("execute") == base.Derive("install") {
		t.Error("stage name must change the derived key")
	}
	if base.Derive("execute", up) == base.Derive("execute") {
		t.Error("input keys must change the derived key")
	}
	if Key("").Derive("execute") != Key("") {
		t.Error("deriving from the invalid key must stay invalid")
	}
	if base.Derive("execute", Key("bogus")) != Key("") {
		t.Error("deriving through an invalid input must yield the invalid key")
	}
}

func TestShort(t *testing.T) {
	k := Hash(1)
	if got := k.Short(); got != string(k[:12]) {
		t.Errorf("Short() = %q", got)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l := st.Layer("run")
	key := Hash("experiment-1")
	payload := []byte(`{"text":"Kernel done","elapsed":1.5}`)

	if _, ok := l.Get(key); ok {
		t.Fatal("empty store must miss")
	}
	if err := l.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := l.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want payload back", got, ok)
	}
	s := l.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Puts != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 put", s)
	}
	if s.Bytes != 2*int64(len(payload)) {
		t.Errorf("bytes = %d, want %d (one put + one hit)", s.Bytes, 2*len(payload))
	}
}

func TestStoreLayersAreIsolatedButShared(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Hash("x")
	if err := st.Layer("run").Put(key, []byte("run-data")); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Layer("buildcache").Get(key); ok {
		t.Error("layers must not share entries")
	}
	if st.Layer("run") != st.Layer("run") {
		t.Error("Layer must return one instance per name")
	}
	if got, ok := st.Layer("run").Get(key); !ok || string(got) != "run-data" {
		t.Errorf("run layer lost its entry: %q, %v", got, ok)
	}
}

func TestStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	st1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Hash("persisted")
	if err := st1.Layer("concretize").Put(key, []byte("dag")); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := st2.Layer("concretize").Get(key)
	if !ok || string(got) != "dag" {
		t.Fatalf("reopened store lost the entry: %q, %v", got, ok)
	}
	keys := st2.Layer("concretize").Keys()
	if len(keys) != 1 || keys[0] != key {
		t.Errorf("Keys() = %v, want [%s]", keys, key)
	}
}

func TestInvalidKeyNeverStores(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l := st.Layer("run")
	if err := l.Put(Key(""), []byte("x")); err == nil {
		t.Error("Put under the invalid key must fail")
	}
	if err := l.Put(Key("../../etc/passwd-0000000000000000000000000000000000000000000"), []byte("x")); err == nil {
		t.Error("Put under a malformed key must fail")
	}
	if _, ok := l.Get(Key("")); ok {
		t.Error("invalid key must miss")
	}
}

func TestKeysSkipsStrays(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l := st.Layer("run")
	keys := []Key{Hash("a"), Hash("b"), Hash("c")}
	for i, k := range keys {
		if err := l.Put(k, []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// A stray temp file in a bucket directory must not be listed.
	stray := filepath.Join(st.Dir(), "run", string(keys[0][:2]), ".tmp-entry-stray")
	if err := st.Commit(stray, frame([]byte("junk"))); err != nil {
		t.Fatal(err)
	}
	got := l.Keys()
	if len(got) != 3 {
		t.Fatalf("Keys() = %v, want the 3 real keys", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Errorf("Keys() not sorted: %v", got)
		}
	}
}
