package cachekey

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"
)

// TestTortureTruncateAtEveryByte mirrors the resultstore power-cut
// torture test: a cached entry truncated at every possible byte
// offset must degrade to a cold miss — the store may never serve a
// partial or corrupted payload as a hit.
func TestTortureTruncateAtEveryByte(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l := st.Layer("run")
	key := Hash("torture-entry")
	payload := []byte(`{"experiment":"saxpy_512_1_8_4","elapsed":2.25,"text":"Kernel done"}`)
	if err := l.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(l.path(key))
	if err != nil {
		t.Fatal(err)
	}

	for n := 0; n < len(full); n++ {
		if err := os.WriteFile(l.path(key), full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if got, ok := l.Get(key); ok {
			t.Fatalf("truncation at byte %d/%d served a hit (%q); must be a cold miss",
				n, len(full), got)
		}
	}
	// The intact entry still hits.
	if err := os.WriteFile(l.path(key), full, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, ok := l.Get(key); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("intact entry must hit with the exact payload, got %q, %v", got, ok)
	}
}

// TestTortureFlipEveryByte corrupts each byte of the entry file in
// turn: every flip must be detected (header or digest mismatch) and
// reported as a miss, never as a different payload.
func TestTortureFlipEveryByte(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l := st.Layer("run")
	key := Hash("flip-entry")
	payload := []byte("content-addressed outcome bytes, checksummed end to end")
	if err := l.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(l.path(key))
	if err != nil {
		t.Fatal(err)
	}

	for i := range full {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x5a
		if err := os.WriteFile(l.path(key), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if got, ok := l.Get(key); ok {
			t.Fatalf("flip at byte %d served a hit (%q); must be a cold miss", i, got)
		}
	}
}

// TestTortureConcurrentSameKeyWriters races many writers of the same
// key against readers: at every instant a reader must observe either
// a miss or one writer's payload, complete and intact — never a torn
// mix. (Content addressing means real writers store identical bytes;
// distinct payloads here make torn writes detectable.)
func TestTortureConcurrentSameKeyWriters(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l := st.Layer("run")
	key := Hash("contended-key")

	const writers = 8
	const rounds = 40
	valid := map[string]bool{}
	for w := 0; w < writers; w++ {
		valid[payloadFor(w)] = true
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			data := []byte(payloadFor(w))
			for r := 0; r < rounds; r++ {
				if err := l.Put(key, data); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	readErrs := make(chan string, 1024)
	var rg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for i := 0; i < 200; i++ {
				got, ok := l.Get(key)
				if ok && !valid[string(got)] {
					select {
					case readErrs <- string(got):
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	rg.Wait()
	close(readErrs)
	if torn, ok := <-readErrs; ok {
		t.Fatalf("reader observed a torn/foreign payload: %q", torn)
	}

	got, ok := l.Get(key)
	if !ok || !valid[string(got)] {
		t.Fatalf("final read must hit with one writer's intact payload, got %q, %v", got, ok)
	}
}

func payloadFor(w int) string {
	return fmt.Sprintf("writer-%d payload: %064d", w, w)
}
