package install

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/buildcache"
	"repro/internal/concretizer"
	"repro/internal/pkgrepo"
	"repro/internal/spec"
)

func ctsConcretizer(t *testing.T) *concretizer.Concretizer {
	t.Helper()
	cfg := concretizer.NewConfig()
	cfg.Platform = "linux"
	cfg.Target = "broadwell"
	cfg.DefaultCompiler = "gcc@12.1.1"
	if err := cfg.AddCompiler("gcc@12.1.1", "/usr/tce/gcc"); err != nil {
		t.Fatal(err)
	}
	if err := cfg.AddExternal("mvapich2@2.3.7", "/usr/tce/mvapich2"); err != nil {
		t.Fatal(err)
	}
	if err := cfg.AddExternal("intel-oneapi-mkl@2022.1.0", "/opt/intel/mkl"); err != nil {
		t.Fatal(err)
	}
	cfg.ProviderPrefs["mpi"] = []string{"mvapich2"}
	cfg.ProviderPrefs["blas"] = []string{"intel-oneapi-mkl"}
	cfg.ProviderPrefs["lapack"] = []string{"intel-oneapi-mkl"}
	return concretizer.New(pkgrepo.Builtin(), cfg)
}

func concretizeSaxpy(t *testing.T) *spec.Spec {
	t.Helper()
	c := ctsConcretizer(t)
	s, err := c.Concretize(spec.MustParse("saxpy@1.0.0+openmp ^cmake@3.23.1"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestInstallSaxpy(t *testing.T) {
	inst := New(pkgrepo.Builtin())
	root := concretizeSaxpy(t)
	rep, err := inst.Install(root)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.DB.Has(root.DAGHash()) {
		t.Error("root not in database")
	}
	// Externals must be recorded but not built.
	if rep.Count(UsedExternal) == 0 {
		t.Error("mvapich2 external expected")
	}
	if rep.Count(Built) == 0 {
		t.Error("some packages should build from source")
	}
	// Every node in the DAG is installed.
	root.Traverse(func(n *spec.Spec) {
		if !inst.DB.Has(n.DAGHash()) {
			t.Errorf("node %s missing from db", n.Name)
		}
	})
	// Root is explicit; deps are not.
	rec, _ := inst.DB.Get(root.DAGHash())
	if !rec.Explicit {
		t.Error("root should be explicit")
	}
	cmake := root.FindDep("cmake")
	crec, _ := inst.DB.Get(cmake.DAGHash())
	if crec.Explicit {
		t.Error("dependency should not be explicit")
	}
	if rep.Makespan <= 0 || rep.TotalWork < rep.Makespan {
		t.Errorf("makespan=%f totalwork=%f", rep.Makespan, rep.TotalWork)
	}
}

func TestInstallIdempotent(t *testing.T) {
	inst := New(pkgrepo.Builtin())
	root := concretizeSaxpy(t)
	if _, err := inst.Install(root); err != nil {
		t.Fatal(err)
	}
	rep2, err := inst.Install(root)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Count(Built) != 0 {
		t.Errorf("second install rebuilt %d packages", rep2.Count(Built))
	}
	if rep2.Makespan != 0 {
		t.Errorf("second install makespan = %f", rep2.Makespan)
	}
}

func TestInstallAbstractRejected(t *testing.T) {
	inst := New(pkgrepo.Builtin())
	if _, err := inst.Install(spec.MustParse("saxpy")); err == nil {
		t.Error("abstract spec must be rejected")
	}
}

func TestBuildCacheSpeedsUpSecondSite(t *testing.T) {
	cache := buildcache.New()
	root := concretizeSaxpy(t)

	// Site A builds from source and pushes to the cache.
	siteA := New(pkgrepo.Builtin())
	siteA.Cache = cache
	siteA.PushToCache = true
	repA, err := siteA.Install(root)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() == 0 {
		t.Fatal("site A should populate the cache")
	}

	// Site B (fresh database) fetches binaries.
	siteB := New(pkgrepo.Builtin())
	siteB.Cache = cache
	repB, err := siteB.Install(root)
	if err != nil {
		t.Fatal(err)
	}
	if repB.Count(Built) != 0 {
		t.Errorf("site B built %d packages; cache should cover all", repB.Count(Built))
	}
	if repB.Count(FetchedFromCache) != repA.Count(Built) {
		t.Errorf("fetched %d != built %d", repB.Count(FetchedFromCache), repA.Count(Built))
	}
	if repB.Makespan >= repA.Makespan {
		t.Errorf("cache makespan %.1f should beat source %.1f", repB.Makespan, repA.Makespan)
	}
}

func TestMakespanImprovesWithWorkers(t *testing.T) {
	c := ctsConcretizer(t)
	root, err := c.Concretize(spec.MustParse("amg2023+caliper"))
	if err != nil {
		t.Fatal(err)
	}
	inst1 := New(pkgrepo.Builtin())
	inst1.Workers = 1
	rep1, err := inst1.Install(root)
	if err != nil {
		t.Fatal(err)
	}
	inst8 := New(pkgrepo.Builtin())
	inst8.Workers = 8
	rep8, err := inst8.Install(root)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.TotalWork != rep8.TotalWork {
		t.Errorf("total work differs: %f vs %f", rep1.TotalWork, rep8.TotalWork)
	}
	// With one worker the makespan equals total work.
	if diff := rep1.Makespan - rep1.TotalWork; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("1-worker makespan %f != total work %f", rep1.Makespan, rep1.TotalWork)
	}
	if rep8.Makespan > rep1.Makespan {
		t.Errorf("8-worker makespan %f worse than 1-worker %f", rep8.Makespan, rep1.Makespan)
	}
	if rep8.Makespan == rep1.Makespan {
		t.Log("DAG has no parallelism — acceptable but unexpected for amg2023")
	}
}

func TestInstallDeterministicReport(t *testing.T) {
	root := concretizeSaxpy(t)
	var first *Report
	for i := 0; i < 3; i++ {
		inst := New(pkgrepo.Builtin())
		rep, err := inst.Install(root)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = rep
			continue
		}
		if rep.Makespan != first.Makespan || len(rep.Results) != len(first.Results) {
			t.Fatalf("non-deterministic report: %v vs %v", rep.Makespan, first.Makespan)
		}
		for j := range rep.Results {
			if rep.Results[j] != first.Results[j] {
				t.Fatalf("result %d differs: %+v vs %+v", j, rep.Results[j], first.Results[j])
			}
		}
	}
}

func TestDatabaseFind(t *testing.T) {
	inst := New(pkgrepo.Builtin())
	root := concretizeSaxpy(t)
	if _, err := inst.Install(root); err != nil {
		t.Fatal(err)
	}
	recs := inst.DB.Find(spec.MustParse("saxpy"))
	if len(recs) != 1 || recs[0].Spec.Name != "saxpy" {
		t.Errorf("Find(saxpy) = %v", recs)
	}
	recs = inst.DB.Find(spec.MustParse("cmake@3.23.1"))
	if len(recs) != 1 {
		t.Errorf("Find(cmake@3.23.1) = %d records", len(recs))
	}
	if got := inst.DB.Find(spec.MustParse("cuda")); len(got) != 0 {
		t.Errorf("Find(cuda) = %v", got)
	}
}

func TestDatabaseConcurrentAccess(t *testing.T) {
	db := NewDatabase()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := spec.MustParse("zlib@1.2.12")
			if err := s.MarkConcrete(); err != nil {
				t.Error(err)
				return
			}
			db.Add(Record{Hash: string(rune('a'+i)) + "hash", Spec: s})
			db.Find(spec.MustParse("zlib"))
			db.Len()
		}(i)
	}
	wg.Wait()
	if db.Len() != 16 {
		t.Errorf("len = %d", db.Len())
	}
}

func TestCacheStats(t *testing.T) {
	c := buildcache.New()
	c.Put(buildcache.Entry{Hash: "h1", SpecText: "zlib@1.2.12", Size: 100})
	if _, ok := c.Get("h1"); !ok {
		t.Error("h1 should hit")
	}
	if _, ok := c.Get("h2"); ok {
		t.Error("h2 should miss")
	}
	hits, misses, puts := c.Stats()
	if hits != 1 || misses != 1 || puts != 1 {
		t.Errorf("stats = %d %d %d", hits, misses, puts)
	}
	if !c.Has("h1") || c.Has("h2") {
		t.Error("Has wrong")
	}
	if len(c.Hashes()) != 1 {
		t.Errorf("hashes = %v", c.Hashes())
	}
}

// TestReuseCompatibleBinaries: a binary built for a generic ancestor
// target installs on a more capable machine; the reverse is refused.
func TestReuseCompatibleBinaries(t *testing.T) {
	cache := buildcache.New()
	cfgGeneric := concretizer.NewConfig()
	cfgGeneric.Platform = "linux"
	cfgGeneric.Target = "x86_64"
	cfgGeneric.DefaultCompiler = "gcc@12.1.1"
	if err := cfgGeneric.AddCompiler("gcc@12.1.1", "/usr"); err != nil {
		t.Fatal(err)
	}
	cGen := concretizer.New(pkgrepo.Builtin(), cfgGeneric)
	genZlib, err := cGen.Concretize(spec.MustParse("zlib"))
	if err != nil {
		t.Fatal(err)
	}
	builder := New(pkgrepo.Builtin())
	builder.Cache = cache
	builder.PushToCache = true
	if _, err := builder.Install(genZlib); err != nil {
		t.Fatal(err)
	}

	// Broadwell site, same package: different hash (target differs),
	// but the generic binary is compatible.
	cfgBdw := concretizer.NewConfig()
	cfgBdw.Platform = "linux"
	cfgBdw.Target = "broadwell"
	cfgBdw.DefaultCompiler = "gcc@12.1.1"
	if err := cfgBdw.AddCompiler("gcc@12.1.1", "/usr"); err != nil {
		t.Fatal(err)
	}
	cBdw := concretizer.New(pkgrepo.Builtin(), cfgBdw)
	bdwZlib, err := cBdw.Concretize(spec.MustParse("zlib"))
	if err != nil {
		t.Fatal(err)
	}
	if bdwZlib.DAGHash() == genZlib.DAGHash() {
		t.Fatal("targets should yield distinct hashes")
	}
	site := New(pkgrepo.Builtin())
	site.Cache = cache
	site.ReuseCompatible = true
	rep, err := site.Install(bdwZlib)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count(FetchedFromCache) != 1 || rep.Count(Built) != 0 {
		t.Errorf("expected compatible reuse: %+v", rep.Results)
	}

	// Without the option, it rebuilds.
	strict := New(pkgrepo.Builtin())
	strict.Cache = cache
	rep2, err := strict.Install(bdwZlib.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Count(Built) != 1 {
		t.Errorf("strict mode should rebuild: %+v", rep2.Results)
	}

	// Reverse: broadwell-built binary must NOT satisfy a generic
	// x86_64 request (missing features).
	cacheB := buildcache.New()
	builderB := New(pkgrepo.Builtin())
	builderB.Cache = cacheB
	builderB.PushToCache = true
	if _, err := builderB.Install(bdwZlib.Clone()); err != nil {
		t.Fatal(err)
	}
	genSite := New(pkgrepo.Builtin())
	genSite.Cache = cacheB
	genSite.ReuseCompatible = true
	rep3, err := genSite.Install(genZlib.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Count(FetchedFromCache) != 0 {
		t.Error("broadwell binary must not run on generic x86_64")
	}
}

func TestDatabaseSaveLoadJSON(t *testing.T) {
	inst := New(pkgrepo.Builtin())
	root := concretizeSaxpy(t)
	if _, err := inst.Install(root); err != nil {
		t.Fatal(err)
	}
	js, err := inst.DB.SaveJSON()
	if err != nil {
		t.Fatal(err)
	}
	db2, err := LoadDatabaseJSON(js)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Len() != inst.DB.Len() {
		t.Fatalf("len %d vs %d", db2.Len(), inst.DB.Len())
	}
	// The reloaded root satisfies the same queries with the same hash.
	recs := db2.Find(spec.MustParse("saxpy"))
	if len(recs) != 1 || recs[0].Hash != root.DAGHash() {
		t.Errorf("reloaded saxpy = %+v", recs)
	}
	if !recs[0].Explicit {
		t.Error("explicitness lost")
	}
	ext := db2.Find(spec.MustParse("mvapich2"))
	if len(ext) != 1 || !ext[0].External {
		t.Errorf("external flag lost: %+v", ext)
	}
}

func TestDatabaseRemove(t *testing.T) {
	inst := New(pkgrepo.Builtin())
	root := concretizeSaxpy(t)
	if _, err := inst.Install(root); err != nil {
		t.Fatal(err)
	}
	h := root.DAGHash()
	if !inst.DB.Remove(h) {
		t.Fatal("remove should succeed")
	}
	if inst.DB.Remove(h) {
		t.Error("second remove should report absent")
	}
	if inst.DB.Has(h) {
		t.Error("record still present")
	}
}

// TestArchspecFlagsRecorded: builds record the target-tuning flags
// archspec selects for the node's compiler and microarchitecture.
func TestArchspecFlagsRecorded(t *testing.T) {
	inst := New(pkgrepo.Builtin())
	root := concretizeSaxpy(t)
	if _, err := inst.Install(root); err != nil {
		t.Fatal(err)
	}
	rec, _ := inst.DB.Get(root.DAGHash())
	if !strings.Contains(rec.Flags, "-march=broadwell") {
		t.Errorf("saxpy flags = %q, want broadwell tuning", rec.Flags)
	}
	// Externals carry no flags.
	ext := inst.DB.Find(spec.MustParse("mvapich2"))[0]
	if ext.Flags != "" {
		t.Errorf("external flags = %q", ext.Flags)
	}
	// Flags survive persistence.
	js, err := inst.DB.SaveJSON()
	if err != nil {
		t.Fatal(err)
	}
	db2, err := LoadDatabaseJSON(js)
	if err != nil {
		t.Fatal(err)
	}
	rec2, _ := db2.Get(root.DAGHash())
	if rec2.Flags != rec.Flags {
		t.Error("flags lost in persistence")
	}
}
