// Package install is the installation engine (Spack component 4 in
// Section 3.1 of the Benchpark paper): it installs a concrete spec
// DAG in dependency order with a bounded worker pool, consulting a
// binary cache before building from source, and records every
// installation in a thread-safe database.
//
// Builds are simulated: each package's recipe declares a build cost,
// perturbed deterministically by the spec hash, so install reports
// and the cache-ablation benchmark are reproducible. The worker pool
// is real (goroutines + channels); the reported makespan comes from a
// deterministic list-scheduling simulation over the same DAG so that
// results do not depend on goroutine timing.
package install

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"repro/internal/archspec"

	"repro/internal/buildcache"
	"repro/internal/pkgrepo"
	"repro/internal/spec"
	"repro/internal/telemetry"
)

// Record is one installed package.
type Record struct {
	Hash     string
	Spec     *spec.Spec
	Prefix   string
	External bool
	Explicit bool // installed by user request rather than as a dependency
	// Flags are the archspec-derived optimization flags the build
	// used (Section 3.1.3: archspec tailors build recipes to the
	// target architecture). Empty for externals.
	Flags string
}

// Database is the install database (the analogue of Spack's
// .spack-db), safe for concurrent use.
type Database struct {
	mu      sync.RWMutex
	records map[string]Record
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{records: map[string]Record{}}
}

// Add registers an installation (idempotent by hash).
func (db *Database) Add(r Record) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if old, ok := db.records[r.Hash]; ok {
		// Keep the strongest explicitness.
		r.Explicit = r.Explicit || old.Explicit
	}
	db.records[r.Hash] = r
}

// Has reports whether the hash is installed.
func (db *Database) Has(hash string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.records[hash]
	return ok
}

// Get returns the record for a hash.
func (db *Database) Get(hash string) (Record, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.records[hash]
	return r, ok
}

// Remove deletes a record by hash (spack uninstall). It returns
// whether the hash was present.
func (db *Database) Remove(hash string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	_, ok := db.records[hash]
	delete(db.records, hash)
	return ok
}

// Len reports the number of installed packages.
func (db *Database) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.records)
}

// Find returns installed specs satisfying the constraint, sorted by
// package name then hash — the engine behind `spack find`.
func (db *Database) Find(constraint *spec.Spec) []Record {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Record
	for _, r := range db.records {
		if r.Spec.Satisfies(constraint) {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Spec.Name != out[j].Spec.Name {
			return out[i].Spec.Name < out[j].Spec.Name
		}
		return out[i].Hash < out[j].Hash
	})
	return out
}

// BuildResult describes how one node was satisfied during an install.
type BuildResult struct {
	Name      string
	Hash      string
	Action    Action
	Seconds   float64 // simulated build/fetch duration
	StartedAt float64 // simulated start time within the install
}

// Action classifies how a node was satisfied.
type Action int

const (
	// Built from source.
	Built Action = iota
	// FetchedFromCache got a binary from the build cache.
	FetchedFromCache
	// AlreadyInstalled was present in the database.
	AlreadyInstalled
	// UsedExternal points at a system installation.
	UsedExternal
)

func (a Action) String() string {
	switch a {
	case Built:
		return "built"
	case FetchedFromCache:
		return "cache"
	case AlreadyInstalled:
		return "installed"
	case UsedExternal:
		return "external"
	}
	return "unknown"
}

// Report summarizes one Install call.
type Report struct {
	Results []BuildResult
	// Makespan is the simulated wall time of the install under the
	// configured worker count (list scheduling over the DAG).
	Makespan float64
	// TotalWork is the sum of simulated build seconds.
	TotalWork float64
}

// Count returns the number of results with the given action.
func (r *Report) Count(a Action) int {
	n := 0
	for _, res := range r.Results {
		if res.Action == a {
			n++
		}
	}
	return n
}

// nodeState tracks one DAG node during an Install call.
type nodeState struct {
	node     *spec.Spec
	deps     []string // hashes this node waits for
	seconds  float64  // simulated duration for the chosen action
	action   Action
	prefix   string
	explicit bool
}

// Installer installs concrete spec DAGs.
type Installer struct {
	Repo    *pkgrepo.Repo
	DB      *Database
	Cache   *buildcache.Cache // optional; nil disables the binary cache
	Workers int               // worker pool size; <=0 means 4

	// PushToCache mirrors every source build into the cache, the way
	// Spack CI populates the rolling binary cache.
	PushToCache bool

	// ReuseCompatible lets a cache miss fall back to a binary of the
	// same package/version built for a compatible (ancestor)
	// microarchitecture — Spack's relocatable-binary reuse, gated by
	// archspec compatibility.
	ReuseCompatible bool
}

// New returns an installer with a fresh database.
func New(repo *pkgrepo.Repo) *Installer {
	return &Installer{Repo: repo, DB: NewDatabase(), Workers: 4}
}

// fetchCost is the simulated time to download + relocate a binary
// from the cache, as a fraction of the build cost (floor 2s).
func fetchCost(buildSeconds float64) float64 {
	c := buildSeconds * 0.05
	if c < 2 {
		c = 2
	}
	return c
}

// BuildSeconds returns the simulated from-source build duration for a
// concrete node: the recipe's cost scaled by a deterministic ±10%
// perturbation derived from the spec hash.
func (inst *Installer) BuildSeconds(node *spec.Spec) (float64, error) {
	pkg, err := inst.Repo.Get(node.Name)
	if err != nil {
		return 0, err
	}
	h := node.DAGHash()
	// Two hex-ish chars -> [0,1024) -> ±10%.
	v := float64(int(h[0])*32+int(h[1])) / 1024.0
	return pkg.BuildCost * (0.9 + 0.2*v), nil
}

// Install installs the DAG rooted at root. The root is recorded as
// explicitly installed. It is an error if root is not concrete.
// Cancellable callers use InstallContext.
//
//benchlint:compat
func (inst *Installer) Install(root *spec.Spec) (*Report, error) {
	return inst.InstallContext(context.Background(), root)
}

// InstallContext is Install with cancellation: the context is checked
// before scheduling and between node executions, so a cancelled
// experiment engine does not keep building a deep DAG. Already
// completed node installs stay in the database. When the context
// carries a tracer, the install records a span and mirrors its cache
// outcome into install_cache_hits_total / install_cache_misses_total.
func (inst *Installer) InstallContext(ctx context.Context, root *spec.Spec) (rep *Report, err error) {
	ctx, span := telemetry.StartSpan(ctx, "install:"+root.Name)
	defer span.End()
	defer func() { span.SetError(err) }()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !root.IsConcrete() {
		return nil, fmt.Errorf("install: spec %q is not concrete", root.ShortString())
	}
	workers := inst.Workers
	if workers <= 0 {
		workers = 4
	}

	// Gather nodes and dependency edges.
	states := map[string]*nodeState{}
	var order []string // deterministic traversal order
	var gatherErr error
	root.Traverse(func(n *spec.Spec) {
		if gatherErr != nil {
			return
		}
		h := n.DAGHash()
		if _, ok := states[h]; ok {
			return
		}
		st := &nodeState{node: n, explicit: n == root}
		switch {
		case n.External != "":
			st.action = UsedExternal
			st.prefix = n.External
			st.seconds = 0
		case inst.DB.Has(h):
			st.action = AlreadyInstalled
			st.seconds = 0
		default:
			sec, err := inst.BuildSeconds(n)
			if err != nil {
				gatherErr = err
				return
			}
			if inst.Cache != nil {
				if _, ok := inst.Cache.Get(h); ok {
					st.action = FetchedFromCache
					st.seconds = fetchCost(sec)
					break
				}
				if inst.ReuseCompatible && inst.compatibleEntry(n) {
					st.action = FetchedFromCache
					st.seconds = fetchCost(sec) * 1.2 // relocation overhead
					break
				}
			}
			st.action = Built
			st.seconds = sec
		}
		for _, d := range n.Deps {
			st.deps = append(st.deps, d.DAGHash())
		}
		sort.Strings(st.deps)
		states[h] = st
		order = append(order, h)
	})
	if gatherErr != nil {
		return nil, gatherErr
	}
	sort.Strings(order)

	// Deterministic makespan: list scheduling with `workers` slots.
	makespan, starts, err := listSchedule(order, states, workers)
	if err != nil {
		return nil, err
	}

	// Real parallel execution of the install actions (DB/cache side
	// effects) with a bounded worker pool.
	if err := inst.executeParallel(ctx, order, states, workers); err != nil {
		return nil, err
	}

	report := &Report{Makespan: makespan}
	for _, h := range order {
		st := states[h]
		report.TotalWork += st.seconds
		report.Results = append(report.Results, BuildResult{
			Name:      st.node.Name,
			Hash:      h,
			Action:    st.action,
			Seconds:   st.seconds,
			StartedAt: starts[h],
		})
	}
	sort.Slice(report.Results, func(i, j int) bool {
		a, b := report.Results[i], report.Results[j]
		if a.StartedAt != b.StartedAt {
			return a.StartedAt < b.StartedAt
		}
		return a.Name < b.Name
	})

	// Cache effectiveness: a fetch is a hit, a source build with a
	// configured cache is a miss (no cache at all counts neither).
	if inst.Cache != nil {
		met := telemetry.FromContext(ctx).Metrics()
		met.Counter("install_cache_hits_total").Add(float64(report.Count(FetchedFromCache)))
		met.Counter("install_cache_misses_total").Add(float64(report.Count(Built)))
	}
	span.SetInt("nodes", len(report.Results))
	span.SetAttr("makespan_s", fmt.Sprintf("%.2f", report.Makespan))
	return report, nil
}

// compatibleEntry reports whether the cache holds a binary of the
// same package/version built for a microarchitecture the node's
// target can execute (ancestor + feature check via archspec).
func (inst *Installer) compatibleEntry(node *spec.Spec) bool {
	mine, err := archspec.Lookup(node.Target)
	if err != nil {
		return false
	}
	ok := func(builtFor string) bool {
		bm, err := archspec.Lookup(builtFor)
		if err != nil {
			return false
		}
		return mine.CompatibleWith(bm)
	}
	entries := inst.Cache.FindCompatible(node.Name, node.ConcreteVersion().String(), ok)
	return len(entries) > 0
}

// listSchedule computes a deterministic parallel schedule of the DAG
// and returns the makespan and per-node start times.
func listSchedule(order []string, states map[string]*nodeState, workers int) (float64, map[string]float64, error) {
	type ev struct {
		time float64
		hash string
	}
	remaining := map[string]int{}
	dependents := map[string][]string{}
	for _, h := range order {
		st := states[h]
		remaining[h] = len(st.deps)
		for _, d := range st.deps {
			dependents[d] = append(dependents[d], h)
		}
	}
	var ready []string
	for _, h := range order {
		if remaining[h] == 0 {
			ready = append(ready, h)
		}
	}
	sort.Strings(ready)

	starts := map[string]float64{}
	var running []ev
	clock := 0.0
	done := 0
	for done < len(order) {
		for len(ready) > 0 && len(running) < workers {
			h := ready[0]
			ready = ready[1:]
			starts[h] = clock
			running = append(running, ev{time: clock + states[h].seconds, hash: h})
		}
		if len(running) == 0 {
			return 0, nil, fmt.Errorf("install: dependency cycle detected in schedule")
		}
		// Pop the earliest finishing job (ties by hash for determinism).
		sort.Slice(running, func(i, j int) bool {
			if running[i].time != running[j].time {
				return running[i].time < running[j].time
			}
			return running[i].hash < running[j].hash
		})
		fin := running[0]
		running = running[1:]
		clock = fin.time
		done++
		for _, dep := range dependents[fin.hash] {
			remaining[dep]--
			if remaining[dep] == 0 {
				ready = append(ready, dep)
			}
		}
		sort.Strings(ready)
	}
	return clock, starts, nil
}

// executeParallel runs the side effects (database inserts, cache
// pushes) with a real goroutine pool, honoring DAG order. On
// cancellation the remaining nodes are skipped (the ready/done
// bookkeeping still runs so the pool winds down cleanly) and the
// context's error is returned.
func (inst *Installer) executeParallel(ctx context.Context, order []string, states map[string]*nodeState, workers int) error {
	remaining := map[string]int{}
	dependents := map[string][]string{}
	for _, h := range order {
		st := states[h]
		remaining[h] = len(st.deps)
		for _, d := range st.deps {
			dependents[d] = append(dependents[d], h)
		}
	}

	readyCh := make(chan string, len(order))
	doneCh := make(chan string, len(order))
	errCh := make(chan error, len(order))
	for _, h := range order {
		if remaining[h] == 0 {
			readyCh <- h
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for h := range readyCh {
				if ctx.Err() == nil {
					st := states[h]
					if err := inst.installOne(h, st.node, st.action, st.prefix, st.explicit); err != nil {
						errCh <- err
					}
				}
				doneCh <- h
			}
		}()
	}

	var firstErr error
	completed := 0
	for completed < len(order) {
		select {
		case err := <-errCh:
			if firstErr == nil {
				firstErr = err
			}
		case h := <-doneCh:
			completed++
			for _, dep := range dependents[h] {
				remaining[dep]--
				if remaining[dep] == 0 {
					readyCh <- dep
				}
			}
		}
	}
	close(readyCh)
	wg.Wait()
	select {
	case err := <-errCh:
		if firstErr == nil {
			firstErr = err
		}
	default:
	}
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return firstErr
}

// installOne performs the side effects for a single node.
func (inst *Installer) installOne(hash string, node *spec.Spec, action Action, prefix string, explicit bool) error {
	if prefix == "" {
		prefix = "/opt/benchpark/" + node.Name + "-" + node.ConcreteVersion().String() + "-" + hash[:7]
	}
	// Archspec supplies the target-tuning flags the build recipe uses
	// (Section 3.1.3); externals were built elsewhere.
	flags := ""
	if action != UsedExternal && node.Compiler != nil && node.Target != "" {
		if m, err := archspec.Lookup(node.Target); err == nil {
			if cv, ok := node.Compiler.Versions.Concrete(); ok {
				if f, err := m.OptimizationFlags(node.Compiler.Name, cv.String()); err == nil {
					flags = f
				}
			}
		}
	}
	inst.DB.Add(Record{
		Hash:     hash,
		Spec:     node,
		Prefix:   prefix,
		External: action == UsedExternal,
		Explicit: explicit,
		Flags:    flags,
	})
	if inst.PushToCache && inst.Cache != nil && action == Built {
		inst.Cache.Put(buildcache.Entry{
			Hash:     hash,
			SpecText: node.String(),
			Size:     int64(1<<20) + int64(hash[0])*1024,
			Package:  node.Name,
			Version:  node.ConcreteVersion().String(),
			Target:   node.Target,
		})
	}
	return nil
}

// ---------------------------------------------------------------------------
// Database persistence (the .spack-db of a real installation)
// ---------------------------------------------------------------------------

// dbFile is the JSON schema of a persisted database.
type dbFile struct {
	Nodes   map[string]spec.EncodedNode `json:"nodes"`
	Records []dbRecord                  `json:"records"`
}

type dbRecord struct {
	Hash     string `json:"hash"`
	Prefix   string `json:"prefix"`
	External bool   `json:"external,omitempty"`
	Explicit bool   `json:"explicit,omitempty"`
	Flags    string `json:"flags,omitempty"`
}

// SaveJSON serializes the database, DAG-encoded so a later LoadJSON
// can reconstruct every spec with hash verification.
func (db *Database) SaveJSON() (string, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var roots []*spec.Spec
	hashes := make([]string, 0, len(db.records))
	for h := range db.records {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	for _, h := range hashes {
		roots = append(roots, db.records[h].Spec)
	}
	nodes, _ := spec.EncodeDAG(roots)
	out := dbFile{Nodes: nodes}
	for _, h := range hashes {
		r := db.records[h]
		out.Records = append(out.Records, dbRecord{
			Hash: r.Hash, Prefix: r.Prefix, External: r.External,
			Explicit: r.Explicit, Flags: r.Flags,
		})
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// LoadDatabaseJSON reconstructs a database from SaveJSON output,
// verifying every spec hash.
func LoadDatabaseJSON(src string) (*Database, error) {
	var in dbFile
	if err := json.Unmarshal([]byte(src), &in); err != nil {
		return nil, fmt.Errorf("install: bad database file: %w", err)
	}
	db := NewDatabase()
	for _, rec := range in.Records {
		specs, err := spec.DecodeDAG(in.Nodes, []string{rec.Hash})
		if err != nil {
			return nil, fmt.Errorf("install: record %s: %w", rec.Hash, err)
		}
		db.Add(Record{
			Hash:     rec.Hash,
			Spec:     specs[0],
			Prefix:   rec.Prefix,
			External: rec.External,
			Explicit: rec.Explicit,
			Flags:    rec.Flags,
		})
	}
	return db, nil
}
