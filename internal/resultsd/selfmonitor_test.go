package resultsd

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/metricsdb"
	"repro/internal/resultstore"
)

// TestSelfMonitorGatesServiceLatency closes the loop the ISSUE calls
// "the service monitors itself": request latencies sampled from
// resultsd's own histograms land in its own store through the normal
// ingest path, and the stock regression detector flags a latency
// spike in the service exactly as it would flag a benchmark
// regression. Latencies are injected straight into the route
// histogram (the server runs a FixedClock, so organically observed
// latencies are all zero).
func TestSelfMonitorGatesServiceLatency(t *testing.T) {
	srv := newServerAt(t, 1700000000)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := fastClient(ts.URL)
	mon := NewSelfMonitor(c, srv, "")
	ctx := context.Background()

	lat := srv.Tracer().Metrics().Histogram(`resultsd_request_seconds{route="results"}`)

	// Six healthy intervals around 10ms, then one pathological one.
	for i := 0; i < 6; i++ {
		lat.Observe(0.01)
		if err := mon.Sample(ctx); err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
	}
	lat.Observe(10.0)
	if err := mon.Sample(ctx); err != nil {
		t.Fatal(err)
	}

	filter := metricsdb.Filter{Benchmark: "resultsd", Experiment: "results"}
	pts, err := c.Series(ctx, filter, "latency_mean_s")
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 7 {
		t.Fatalf("selfmonitor series has %d points, want 7: %+v", len(pts), pts)
	}
	for i, p := range pts {
		if p.TraceID == "" {
			t.Fatalf("point %d has no trace provenance: %+v", i, p)
		}
		if i < 6 && p.Value > 0.011 {
			t.Fatalf("baseline point %d = %v, want ~10ms", i, p.Value)
		}
	}
	if last := pts[6].Value; last < 1.0 {
		t.Fatalf("spike sample mean = %v, want >= 1s", last)
	}

	regs, err := c.Regressions(ctx, filter, "latency_mean_s", 4, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Seq != pts[6].Seq {
		t.Fatalf("regression scan = %+v, want exactly the spike sample (seq %d)", regs, pts[6].Seq)
	}
	if regs[0].Ratio < 10 {
		t.Fatalf("spike ratio = %v, want a blowout", regs[0].Ratio)
	}

	// The store gauges ride along under the "store" experiment.
	stpts, err := c.Series(ctx, metricsdb.Filter{Benchmark: "resultsd", Experiment: "store"}, "ingest_batches")
	if err != nil {
		t.Fatal(err)
	}
	if len(stpts) != 7 {
		t.Fatalf("store-experiment series has %d points, want 7", len(stpts))
	}
}

// TestSelfMonitorKeysAreIdempotent: re-pushing a sample's exact batch
// under its key is a duplicate, not a double count.
func TestSelfMonitorKeysAreIdempotent(t *testing.T) {
	srv := newServerAt(t, 1700000000)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := fastClient(ts.URL)
	mon := NewSelfMonitor(c, srv, "cts1")
	if err := mon.Sample(context.Background()); err != nil {
		t.Fatal(err)
	}
	key := "selfmonitor-cts1-" + srv.Tracer().TraceID() + "-1"
	if !srv.store.(*resultstore.Store).HasKey(key) {
		t.Fatalf("store lacks the expected selfmonitor key %q", key)
	}
	resp, err := c.Push(context.Background(), key, []metricsdb.Result{result("resultsd", "cts1", "x", 1)})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Duplicate {
		t.Fatalf("replayed selfmonitor key was not a duplicate: %+v", resp)
	}
}
