package resultsd

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/metricsdb"
	"repro/internal/resultshard"
	"repro/internal/telemetry"
)

// Client is a typed client for the resultsd API with context-aware
// retries. Transport failures, 5xx responses and 429 overload
// responses retry with jittered exponential backoff (cancelled
// promptly by the context); other 4xx responses are terminal.
// Retrying POST /v1/results is safe because ingest is idempotent
// under the batch's ingest key — the worst case of a retry racing a
// slow first attempt is a Duplicate ack.
//
// Backpressure: a 429 from an overloaded shard carries a Retry-After
// header; the client waits (at least) that long before the next
// attempt and, when retries are exhausted, returns an error matching
// resultshard.ErrOverloaded so callers can distinguish "server shed
// load" from "server broken".
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8321".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// MaxRetries is the number of re-attempts after the first try;
	// negative means 0. Default (zero value via NewClient): 3.
	MaxRetries int
	// RetryBackoff is the first retry delay, doubling per attempt;
	// <=0 means 50ms.
	RetryBackoff time.Duration
	// Jitter scales each computed retry delay. nil means FullJitter —
	// uniform in [d/2, 3d/2) — which is what keeps thousands of
	// federated runners from retrying in lockstep after a shared
	// overload. Tests (and anything needing byte-identical merged
	// traces) inject NoJitter so retry timing carries no wall-clock
	// randomness.
	Jitter func(time.Duration) time.Duration
	// DisableCompression turns off gzip encoding of push bodies
	// (bodies below gzipMinBytes are never compressed).
	DisableCompression bool
	// AttemptTimeout bounds each individual HTTP attempt (not the
	// whole retry loop, which the caller's ctx governs). Zero means
	// no per-attempt deadline. A wedged connection then costs one
	// attempt, not the whole push: the deadline fires, the attempt
	// fails as retryable, and the retry loop moves on.
	AttemptTimeout time.Duration
}

// NewClient returns a client with the default retry policy.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, MaxRetries: 3}
}

// NoJitter is the deterministic jitter policy: the computed backoff is
// used exactly. Inject it wherever retry timing must be reproducible.
func NoJitter(d time.Duration) time.Duration { return d }

// FullJitter is the default policy: uniform in [d/2, 3d/2), so
// synchronized retries de-correlate while the mean delay stays d.
func FullJitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// gzipMinBytes is the payload size below which compression costs more
// than it saves.
const gzipMinBytes = 1 << 10

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// retryableError marks a failure worth re-attempting.
type retryableError struct{ err error }

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// do runs one API call with the retry policy and decodes the JSON
// response into out.
//
// The whole logical call is ONE span ("rpc:<route>") and ONE
// traceparent: the header is computed once, before the retry loop, so
// every attempt carries the identical trace context — the server sees
// one logical operation whether it took one attempt or five, mirroring
// how the ingest key makes retried POSTs one logical batch. The span
// records the attempt count instead of opening a span per attempt.
func (c *Client) do(ctx context.Context, method, path string, query url.Values, body, out any) (err error) {
	var payload []byte
	if body != nil {
		payload, err = json.Marshal(body)
		if err != nil {
			return fmt.Errorf("resultsd: encoding request: %w", err)
		}
	}
	// Compress once, outside the retry loop, so every attempt reuses
	// the same bytes. Federated batches are redundant JSON; gzip
	// typically shrinks them ~10x, which is most of the ingest
	// bandwidth at fleet scale.
	encoding := ""
	if len(payload) >= gzipMinBytes && !c.DisableCompression {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(payload); err == nil && zw.Close() == nil {
			payload, encoding = buf.Bytes(), "gzip"
		}
	}
	u := strings.TrimSuffix(c.BaseURL, "/") + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	ctx, span := telemetry.StartSpan(ctx, "rpc:"+strings.TrimPrefix(path, "/v1/"))
	defer span.End()
	attempts := 0
	defer func() {
		span.SetInt("attempts", attempts)
		if err != nil {
			span.SetError(err)
		}
	}()
	traceparent := ""
	if tc, ok := telemetry.PropagationContext(ctx); ok {
		traceparent = tc.Traceparent()
	}
	backoff := c.RetryBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	retries := c.MaxRetries
	if retries < 0 {
		retries = 0
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			if lastErr != nil {
				return fmt.Errorf("resultsd: %w (last attempt: %v)", cerr, lastErr)
			}
			return fmt.Errorf("resultsd: %w", cerr)
		}
		attempts++
		aerr := c.once(ctx, method, u, traceparent, encoding, payload, out)
		if aerr == nil {
			return nil
		}
		var re *retryableError
		if !errors.As(aerr, &re) || attempt >= retries {
			return fmt.Errorf("resultsd: %s %s: %w", method, path, aerr)
		}
		lastErr = aerr
		// An overloaded server's Retry-After hint floors the delay;
		// jitter then de-correlates the fleet's retries.
		delay := backoff
		var ov *resultshard.OverloadError
		if errors.As(aerr, &ov) && ov.RetryAfter > delay {
			delay = ov.RetryAfter
		}
		delay = c.jitter(delay)
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return fmt.Errorf("resultsd: %w (last attempt: %v)", ctx.Err(), lastErr)
		case <-timer.C:
		}
		backoff *= 2
	}
}

// jitter applies the client's jitter policy (FullJitter by default).
func (c *Client) jitter(d time.Duration) time.Duration {
	if c.Jitter != nil {
		return c.Jitter(d)
	}
	return FullJitter(d)
}

// once performs a single HTTP attempt. traceparent and the (possibly
// gzip-encoded) payload come from do so retried attempts share one
// trace context and one set of bytes.
func (c *Client) once(ctx context.Context, method, u, traceparent, encoding string, payload []byte, out any) error {
	if c.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.AttemptTimeout)
		defer cancel()
	}
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, body)
	if err != nil {
		return err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if encoding != "" {
		req.Header.Set("Content-Encoding", encoding)
	}
	if traceparent != "" {
		req.Header.Set(telemetry.TraceparentHeader, traceparent)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return &retryableError{err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxIngestBytes))
	if err != nil {
		return &retryableError{err: err}
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		// Server-side backpressure: reconstruct the typed overload so
		// callers (and the retry loop above) see the Retry-After hint
		// and errors.Is(err, resultshard.ErrOverloaded) holds.
		retryAfter := time.Second
		if v, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && v > 0 {
			retryAfter = time.Duration(v) * time.Second
		}
		return &retryableError{err: &resultshard.OverloadError{Shard: -1, RetryAfter: retryAfter}}
	}
	if resp.StatusCode >= 500 {
		return &retryableError{err: fmt.Errorf("server error %d: %s", resp.StatusCode, apiErrorText(data))}
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, apiErrorText(data))
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("decoding response: %w", err)
	}
	return nil
}

// apiErrorText extracts the server's error envelope, falling back to
// the raw body.
func apiErrorText(data []byte) string {
	var e apiError
	if err := json.Unmarshal(data, &e); err == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(data))
}

// Push ingests one idempotent batch of results under the given key.
func (c *Client) Push(ctx context.Context, key string, results []metricsdb.Result) (*IngestResponse, error) {
	var resp IngestResponse
	err := c.do(ctx, http.MethodPost, "/v1/results", nil,
		IngestRequest{IngestKey: key, Results: results}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// queryFromFilter renders the shared filter parameters.
func queryFromFilter(f metricsdb.Filter) url.Values {
	q := url.Values{}
	set := func(k, v string) {
		if v != "" {
			q.Set(k, v)
		}
	}
	set("benchmark", f.Benchmark)
	set("workload", f.Workload)
	set("system", f.System)
	set("experiment", f.Experiment)
	return q
}

// Series fetches one FOM's time series under a filter.
func (c *Client) Series(ctx context.Context, f metricsdb.Filter, fom string) ([]SeriesPoint, error) {
	q := queryFromFilter(f)
	q.Set("fom", fom)
	var resp SeriesResponse
	if err := c.do(ctx, http.MethodGet, "/v1/series", q, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Points, nil
}

// Regressions runs a server-side regression scan. window <= 0 and
// threshold <= 0 use the server defaults.
func (c *Client) Regressions(ctx context.Context, f metricsdb.Filter, fom string, window int, threshold float64) ([]RegressionRecord, error) {
	q := queryFromFilter(f)
	q.Set("fom", fom)
	if window > 0 {
		q.Set("window", strconv.Itoa(window))
	}
	if threshold > 0 {
		q.Set("threshold", strconv.FormatFloat(threshold, 'g', -1, 64))
	}
	var resp RegressionsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/regressions", q, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Regressions, nil
}

// Systems lists the distinct system names with stored results.
func (c *Client) Systems(ctx context.Context) ([]string, error) {
	var resp SystemsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/systems", nil, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Systems, nil
}
