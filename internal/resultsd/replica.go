package resultsd

// The replication plane. A sharded primary exposes two pull
// endpoints; followers poll them and serve the read API from the
// mirrored state:
//
//	GET /v1/replica/meta                     topology (schema, shards)
//	GET /v1/replica/delta?shard=S&after=W    shard S's results with Seq > W
//	GET /v1/replica/status                   (follower only) lag report
//
// The protocol is snapshot shipping by watermark: after=0 ships the
// full shard snapshot, any other watermark ships the incremental
// delta, and catch-up after a follower restart is simply "pull from
// 0 again". Results travel with their primary-assigned IDs, Seqs and
// trace IDs, so a caught-up follower serves byte-identical /v1/series
// and /v1/regressions responses while the primary keeps ingesting.

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/resultshard"
	"repro/internal/telemetry"
)

// retryAfterSeconds renders a backoff hint as a Retry-After header
// value: whole seconds, rounded up, at least 1.
func retryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// handleReplicaMeta serves the topology descriptor.
func (s *Server) handleReplicaMeta(src replicaSource) handlerFunc {
	return func(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
		writeJSON(w, http.StatusOK, src.ReplicaMeta())
		return nil
	}
}

// handleReplicaDelta serves one shard's results after a watermark.
func (s *Server) handleReplicaDelta(src replicaSource) handlerFunc {
	return func(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
		q := r.URL.Query()
		shard, err := strconv.Atoi(q.Get("shard"))
		if err != nil || shard < 0 {
			return fail(w, http.StatusBadRequest, fmt.Errorf("bad shard %q (need an integer >= 0)", q.Get("shard")))
		}
		after := 0
		if v := q.Get("after"); v != "" {
			after, err = strconv.Atoi(v)
			if err != nil || after < 0 {
				return fail(w, http.StatusBadRequest, fmt.Errorf("bad after %q (need an integer >= 0)", v))
			}
		}
		delta, err := src.ReplicaDelta(shard, after)
		if err != nil {
			return fail(w, http.StatusBadRequest, err)
		}
		span := telemetry.Current(ctx)
		span.SetInt("shard", shard)
		span.SetInt("results", len(delta.Results))
		writeJSON(w, http.StatusOK, delta)
		return nil
	}
}

// handleReplicaStatus serves a follower's replication position.
func (s *Server) handleReplicaStatus(fs replicaStatus) handlerFunc {
	return func(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
		writeJSON(w, http.StatusOK, fs.Status())
		return nil
	}
}

// ReplicaClient implements resultshard.Source over the primary's
// /v1/replica endpoints, reusing the typed client's retry policy —
// a follower rides out primary restarts and transient 5xx the same
// way a pushing runner does.
type ReplicaClient struct{ c *Client }

// NewReplicaClient returns a replication source pulling from the
// primary at baseURL.
func NewReplicaClient(baseURL string) *ReplicaClient {
	return &ReplicaClient{c: NewClient(baseURL)}
}

// Client exposes the underlying typed client (retry knobs, jitter
// injection for tests).
func (rc *ReplicaClient) Client() *Client { return rc.c }

// ReplicaMeta pulls the primary's topology descriptor.
func (rc *ReplicaClient) ReplicaMeta(ctx context.Context) (resultshard.ReplicaMeta, error) {
	var meta resultshard.ReplicaMeta
	if err := rc.c.do(ctx, http.MethodGet, "/v1/replica/meta", nil, nil, &meta); err != nil {
		return resultshard.ReplicaMeta{}, err
	}
	return meta, nil
}

// ReplicaDelta pulls one shard's results after the watermark.
func (rc *ReplicaClient) ReplicaDelta(ctx context.Context, shard, afterSeq int) (resultshard.ReplicaDelta, error) {
	q := url.Values{}
	q.Set("shard", strconv.Itoa(shard))
	q.Set("after", strconv.Itoa(afterSeq))
	var delta resultshard.ReplicaDelta
	if err := rc.c.do(ctx, http.MethodGet, "/v1/replica/delta", q, nil, &delta); err != nil {
		return resultshard.ReplicaDelta{}, err
	}
	return delta, nil
}

// RunFollower drives a follower's sync loop: one Sync per interval
// until ctx is done, recording the post-sync lag into the tracer's
// "resultsd_replica_lag_results" gauge (and sync/error counters) so
// the follower's own /metrics endpoint exposes how far behind it is.
// Sync errors are counted and retried on the next tick — a follower
// outlives primary restarts.
func RunFollower(ctx context.Context, f *resultshard.Follower, src resultshard.Source, interval time.Duration, tracer *telemetry.Tracer) {
	met := tracer.Metrics()
	lagGauge := met.Gauge("resultsd_replica_lag_results")
	syncs := met.Counter("resultsd_replica_syncs_total")
	errs := met.Counter("resultsd_replica_sync_errors_total")
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		lag, err := f.Sync(ctx, src)
		if err != nil {
			errs.Inc()
		} else {
			syncs.Inc()
			lagGauge.Set(float64(lag))
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}
