package resultsd

// Federation-level tests: the sharded router and follower replicas
// behind the HTTP API — placement-transparent reads, the 429/
// Retry-After backpressure contract end to end through the retrying
// client, gzip ingest, and byte-identical replica serving.

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metricsdb"
	"repro/internal/resultshard"
	"repro/internal/resultstore"
	"repro/internal/telemetry"
)

// newShardedServer builds a resultsd server over a 4-shard router in
// dir, with the frozen clock the determinism tests rely on.
func newShardedServer(t *testing.T, dir string, opts resultshard.Options) (*Server, *resultshard.Router) {
	t.Helper()
	if opts.Shards == 0 {
		opts.Shards = 4
	}
	opts.Store.Clock = telemetry.FixedClock{T: time.Unix(1700000000, 0)}
	opts.Store.NoBackgroundCompact = true
	router, err := resultshard.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Close() })
	tracer := telemetry.New(telemetry.FixedClock{T: time.Unix(1700000000, 0)})
	return New(router, tracer), router
}

// fleetResults spans several (system, benchmark) pairs so a 4-shard
// router sees traffic on every shard.
func fleetResults(n int) []metricsdb.Result {
	out := make([]metricsdb.Result, n)
	for i := range out {
		out[i] = result(fmt.Sprintf("bench-%02d", i%7), fmt.Sprintf("sys-%02d", i%5), "fom", float64(i))
	}
	return out
}

// TestShardedServeRoutes: the full read API works unchanged over a
// sharded backend, and the replica endpoints appear.
func TestShardedServeRoutes(t *testing.T) {
	srv, router := newShardedServer(t, t.TempDir(), resultshard.Options{})
	h := srv.Handler()
	if w := postResults(t, h, "k1", fleetResults(20)); w.Code != http.StatusOK {
		t.Fatalf("ingest over router: %d %s", w.Code, w.Body)
	}
	if router.Len() != 20 {
		t.Fatalf("router holds %d results, want 20", router.Len())
	}

	w := get(t, h, "/v1/series?benchmark=bench-01&system=sys-01&fom=fom")
	if w.Code != http.StatusOK {
		t.Fatalf("series: %d %s", w.Code, w.Body)
	}
	w = get(t, h, "/v1/systems")
	var sys SystemsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &sys); err != nil {
		t.Fatal(err)
	}
	if len(sys.Systems) != 5 {
		t.Fatalf("systems = %v, want 5 entries", sys.Systems)
	}
	w = get(t, h, "/healthz")
	if w.Code != http.StatusOK {
		t.Fatalf("healthz over router: %d %s", w.Code, w.Body)
	}

	// The replication plane is registered on sharded primaries.
	w = get(t, h, "/v1/replica/meta")
	if w.Code != http.StatusOK {
		t.Fatalf("replica/meta: %d %s", w.Code, w.Body)
	}
	var meta resultshard.ReplicaMeta
	if err := json.Unmarshal(w.Body.Bytes(), &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Shards != 4 || meta.Schema != resultshard.ReplicaSchema {
		t.Fatalf("meta = %+v", meta)
	}
	w = get(t, h, "/v1/replica/delta?shard=0&after=0")
	if w.Code != http.StatusOK {
		t.Fatalf("replica/delta: %d %s", w.Code, w.Body)
	}
	if w = get(t, h, "/v1/replica/delta?shard=99&after=0"); w.Code != http.StatusBadRequest {
		t.Fatalf("delta for absent shard: %d, want 400", w.Code)
	}
}

// TestSingleStoreHasNoReplicaPlane: the endpoints are shard-only; a
// single-store server 404s them.
func TestSingleStoreHasNoReplicaPlane(t *testing.T) {
	srv, _ := newTestServer(t)
	if w := get(t, srv.Handler(), "/v1/replica/meta"); w.Code != http.StatusNotFound {
		t.Fatalf("replica/meta on single store: %d, want 404", w.Code)
	}
}

// TestShardedServeByteIdenticalAcrossRestart: the federated extension
// of the core determinism guarantee — kill a sharded primary, reopen
// the same directory, and every API response is byte-identical.
func TestShardedServeByteIdenticalAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	srv, _ := newShardedServer(t, dir, resultshard.Options{})
	h := srv.Handler()
	for i := 0; i < 5; i++ {
		if w := postResults(t, h, fmt.Sprintf("k%d", i), fleetResults(10)); w.Code != http.StatusOK {
			t.Fatalf("ingest %d: %d %s", i, w.Code, w.Body)
		}
	}
	urls := []string{
		"/v1/series?benchmark=bench-01&fom=fom",
		"/v1/series?benchmark=bench-01&system=sys-01&fom=fom",
		"/v1/regressions?benchmark=bench-02&fom=fom&window=3&threshold=1.1",
		"/v1/systems",
	}
	before := map[string]string{}
	for _, u := range urls {
		w := get(t, h, u)
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s: %d %s", u, w.Code, w.Body)
		}
		before[u] = w.Body.String()
	}

	// "Restart": a brand-new server over the recovered router.
	srv2, _ := newShardedServer(t, dir, resultshard.Options{})
	h2 := srv2.Handler()
	for _, u := range urls {
		w := get(t, h2, u)
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s after restart: %d %s", u, w.Code, w.Body)
		}
		if got := w.Body.String(); got != before[u] {
			t.Fatalf("%s not byte-identical across restart:\nbefore: %s\nafter:  %s", u, before[u], got)
		}
	}
}

// TestIngestOverloadMapsTo429: an overloaded shard surfaces as HTTP
// 429 with a Retry-After header, not a hang or a 500.
func TestIngestOverloadMapsTo429(t *testing.T) {
	srv, router := newShardedServer(t, t.TempDir(), resultshard.Options{
		Shards:      2,
		QueueDepth:  1,
		RetryAfter:  2 * time.Second,
		CommitDelay: 100 * time.Millisecond,
	})
	h := srv.Handler()
	// Fire enough concurrent single-key ingests at the slow shards to
	// fill a depth-1 queue.
	type resp struct {
		code       int
		retryAfter string
	}
	results := make(chan resp, 32)
	for i := 0; i < 32; i++ {
		go func(i int) {
			w := postResults(t, h, fmt.Sprintf("k%d", i), []metricsdb.Result{result("b", "s", "fom", float64(i))})
			results <- resp{w.Code, w.Result().Header.Get("Retry-After")}
		}(i)
	}
	overloaded := 0
	for i := 0; i < 32; i++ {
		r := <-results
		switch r.code {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			overloaded++
			if r.retryAfter != "2" {
				t.Fatalf("Retry-After = %q, want \"2\"", r.retryAfter)
			}
		default:
			t.Fatalf("unexpected status %d", r.code)
		}
	}
	if overloaded == 0 {
		t.Fatal("no 429s from a depth-1 queue under 32 concurrent ingests")
	}
	if router.Overloads() == 0 {
		t.Fatal("router overload counter did not move")
	}
}

// TestClientHonorsRetryAfterAnd429: the retrying client treats 429 as
// retryable, waits at least the server's hint, and succeeds when the
// overload clears; when retries exhaust, the error matches
// resultshard.ErrOverloaded.
func TestClientHonorsRetryAfterAnd429(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(apiError{Error: "overloaded"})
			return
		}
		json.NewEncoder(w).Encode(IngestResponse{Accepted: 1})
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	c.MaxRetries = 3
	c.RetryBackoff = time.Millisecond
	var waits []time.Duration
	c.Jitter = func(d time.Duration) time.Duration {
		waits = append(waits, d)
		return 0 // don't actually sleep a second in tests
	}
	resp, err := c.Push(context.Background(), "k", []metricsdb.Result{result("b", "s", "fom", 1)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 1 || calls.Load() != 3 {
		t.Fatalf("resp=%+v calls=%d", resp, calls.Load())
	}
	// Both waits were floored by the server's 1s hint, not the 1ms
	// client backoff.
	if len(waits) != 2 || waits[0] < time.Second || waits[1] < time.Second {
		t.Fatalf("waits = %v, want two >= 1s (Retry-After floor)", waits)
	}

	// A permanently overloaded server exhausts retries into an error
	// that matches ErrOverloaded.
	calls.Store(-1000)
	c.MaxRetries = 1
	_, err = c.Push(context.Background(), "k2", []metricsdb.Result{result("b", "s", "fom", 1)})
	if !errors.Is(err, resultshard.ErrOverloaded) {
		t.Fatalf("exhausted retries: %v, want ErrOverloaded", err)
	}
}

// TestIngestAcceptsGzip: the server transparently decodes
// Content-Encoding: gzip request bodies.
func TestIngestAcceptsGzip(t *testing.T) {
	srv, store := newTestServer(t)
	h := srv.Handler()
	body, err := json.Marshal(IngestRequest{IngestKey: "gz", Results: []metricsdb.Result{
		result("saxpy", "cts1", "t", 1), result("saxpy", "cts1", "t", 2),
	}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(body); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/results", &buf)
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Content-Encoding", "gzip")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("gzip ingest: %d %s", w.Code, w.Body)
	}
	if store.Len() != 2 {
		t.Fatalf("store holds %d results, want 2", store.Len())
	}
	// A corrupt gzip body is a 400, not a 500.
	req = httptest.NewRequest(http.MethodPost, "/v1/results", bytes.NewReader([]byte("not gzip")))
	req.Header.Set("Content-Encoding", "gzip")
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("corrupt gzip: %d, want 400", w.Code)
	}
}

// TestClientCompressesLargePushes: pushes at or above the gzip
// threshold go over the wire compressed; small ones stay plain.
func TestClientCompressesLargePushes(t *testing.T) {
	var lastEncoding atomic.Value
	lastEncoding.Store("")
	srv, _ := newTestServer(t)
	inner := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		lastEncoding.Store(r.Header.Get("Content-Encoding"))
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()
	c := fastClient(ts.URL)

	if _, err := c.Push(context.Background(), "small", []metricsdb.Result{result("b", "s", "fom", 1)}); err != nil {
		t.Fatal(err)
	}
	if got := lastEncoding.Load().(string); got != "" {
		t.Fatalf("small push encoded as %q, want identity", got)
	}
	if _, err := c.Push(context.Background(), "large", fleetResults(200)); err != nil {
		t.Fatal(err)
	}
	if got := lastEncoding.Load().(string); got != "gzip" {
		t.Fatalf("large push encoded as %q, want gzip", got)
	}

	// DisableCompression forces identity even for large pushes.
	c.DisableCompression = true
	if _, err := c.Push(context.Background(), "large2", fleetResults(200)); err != nil {
		t.Fatal(err)
	}
	if got := lastEncoding.Load().(string); got != "" {
		t.Fatalf("DisableCompression push encoded as %q", got)
	}
}

// TestFollowerOverHTTP: the full replica loop — a sharded primary
// behind httptest, a follower syncing through ReplicaClient — serves
// byte-identical reads, reports status, and refuses writes with 403.
func TestFollowerOverHTTP(t *testing.T) {
	primarySrv, _ := newShardedServer(t, t.TempDir(), resultshard.Options{})
	primary := httptest.NewServer(primarySrv.Handler())
	defer primary.Close()
	ph := primarySrv.Handler()
	for i := 0; i < 3; i++ {
		if w := postResults(t, ph, fmt.Sprintf("k%d", i), fleetResults(10)); w.Code != http.StatusOK {
			t.Fatalf("primary ingest: %d %s", w.Code, w.Body)
		}
	}

	f := resultshard.NewFollower()
	src := NewReplicaClient(primary.URL)
	src.Client().Jitter = NoJitter
	lag, err := f.Sync(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if lag != 0 {
		t.Fatalf("lag after sync = %d", lag)
	}

	tracer := telemetry.New(telemetry.FixedClock{T: time.Unix(1700000000, 0)})
	followerSrv := New(f, tracer)
	fh := followerSrv.Handler()

	// Reads: byte-identical to the primary.
	for _, u := range []string{
		"/v1/series?benchmark=bench-01&fom=fom",
		"/v1/regressions?benchmark=bench-02&fom=fom&window=3&threshold=1.1",
		"/v1/systems",
	} {
		pw, fw := get(t, ph, u), get(t, fh, u)
		if pw.Code != http.StatusOK || fw.Code != http.StatusOK {
			t.Fatalf("GET %s: primary %d, follower %d", u, pw.Code, fw.Code)
		}
		if pw.Body.String() != fw.Body.String() {
			t.Fatalf("%s differs between primary and follower", u)
		}
	}

	// Status: the follower reports its position per shard.
	w := get(t, fh, "/v1/replica/status")
	if w.Code != http.StatusOK {
		t.Fatalf("replica/status: %d %s", w.Code, w.Body)
	}
	var st resultshard.FollowerStatus
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Synced || len(st.Shards) != 4 || st.LagResults != 0 {
		t.Fatalf("status = %+v", st)
	}

	// Writes: 403 with a pointer to the primary contract.
	if w := postResults(t, fh, "nope", fleetResults(2)); w.Code != http.StatusForbidden {
		t.Fatalf("replica ingest: %d, want 403", w.Code)
	}

	// Readiness: the follower is ready only because it synced.
	if w := get(t, fh, "/readyz"); w.Code != http.StatusOK {
		t.Fatalf("follower readyz: %d %s", w.Code, w.Body)
	}
	if w := get(t, New(resultshard.NewFollower(), tracer).Handler(), "/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("unsynced follower readyz: %d, want 503", w.Code)
	}
}

// TestRunFollowerLoop: the sync loop keeps a follower converged while
// the primary ingests, and stops when its context is cancelled.
func TestRunFollowerLoop(t *testing.T) {
	primarySrv, router := newShardedServer(t, t.TempDir(), resultshard.Options{})
	primary := httptest.NewServer(primarySrv.Handler())
	defer primary.Close()
	if w := postResults(t, primarySrv.Handler(), "seed", fleetResults(10)); w.Code != http.StatusOK {
		t.Fatalf("seed ingest: %d", w.Code)
	}

	f := resultshard.NewFollower()
	src := NewReplicaClient(primary.URL)
	src.Client().Jitter = NoJitter
	tracer := telemetry.New(nil)
	ctx, cancel := context.WithCancel(context.Background())
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		RunFollower(ctx, f, src, 5*time.Millisecond, tracer)
	}()

	// The loop must bootstrap, then chase the primary past the seed.
	if _, err := router.Append(context.Background(), resultstore.Batch{Key: "extra", Results: fleetResults(10)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for f.Len() != 20 {
		select {
		case <-deadline:
			t.Fatalf("follower stuck at %d results, want 20", f.Len())
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	select {
	case <-loopDone:
	case <-time.After(5 * time.Second):
		t.Fatal("RunFollower did not stop on cancel")
	}
	if !f.Status().Synced {
		t.Fatal("follower never marked synced")
	}
}

// Ensure the Retry-After rendering rounds up and floors at 1s.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{time.Millisecond, 1},
		{time.Second, 1},
		{1100 * time.Millisecond, 2},
		{3 * time.Second, 3},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// And the header value parses back.
	if _, err := strconv.Atoi(strconv.Itoa(retryAfterSeconds(time.Second))); err != nil {
		t.Fatal(err)
	}
}
