package resultsd

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"repro/internal/metricsdb"
)

// benchIngestRequest is a realistic federated push: 100 results across
// several (system, benchmark) pairs, with FOMs and provenance.
func benchIngestRequest() IngestRequest {
	rs := make([]metricsdb.Result, 100)
	for i := range rs {
		rs[i] = metricsdb.Result{
			Benchmark:  fmt.Sprintf("bench-%02d", i%7),
			Workload:   "standard",
			System:     fmt.Sprintf("sys-%02d", i%5),
			Experiment: fmt.Sprintf("exp-%03d", i),
			FOMs:       map[string]float64{"figure_of_merit": float64(i) * 1.5},
			TraceID:    "0123456789abcdef0123456789abcdef",
		}
	}
	return IngestRequest{IngestKey: "bench-key", Results: rs}
}

// BenchmarkIngestEncode measures marshalling a 100-result batch — the
// client-side CPU cost of one push.
func BenchmarkIngestEncode(b *testing.B) {
	req := benchIngestRequest()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestEncodeGzip adds the client's gzip pass (what every
// >=1KiB push pays, and what the wire saves ~10x on).
func BenchmarkIngestEncodeGzip(b *testing.B) {
	req := benchIngestRequest()
	payload, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(payload); err != nil {
			b.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestDecode measures the server-side decode of a plain
// batch body.
func BenchmarkIngestDecode(b *testing.B) {
	payload, err := json.Marshal(benchIngestRequest())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var req IngestRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestDecodeGzip measures the server-side gunzip + decode
// path a compressed push takes through handleIngest's reader stack.
func BenchmarkIngestDecodeGzip(b *testing.B) {
	payload, err := json.Marshal(benchIngestRequest())
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(payload); err != nil {
		b.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		b.Fatal(err)
	}
	compressed := buf.Bytes()
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		zr, err := gzip.NewReader(bytes.NewReader(compressed))
		if err != nil {
			b.Fatal(err)
		}
		data, err := io.ReadAll(zr)
		if err != nil {
			b.Fatal(err)
		}
		var req IngestRequest
		if err := json.Unmarshal(data, &req); err != nil {
			b.Fatal(err)
		}
	}
}
