package resultsd

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/metricsdb"
	"repro/internal/resultstore"
	"repro/internal/telemetry"
)

func newTestServer(t *testing.T) (*Server, *resultstore.Store) {
	t.Helper()
	store, err := resultstore.Open(t.TempDir(), resultstore.Options{
		Clock:               telemetry.FixedClock{T: time.Unix(1700000000, 0)},
		NoBackgroundCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	tracer := telemetry.New(telemetry.FixedClock{T: time.Unix(1700000000, 0)})
	return New(store, tracer), store
}

func result(bench, system, fom string, v float64) metricsdb.Result {
	return metricsdb.Result{
		Benchmark:  bench,
		Workload:   "problem",
		System:     system,
		Experiment: bench + "_exp",
		FOMs:       map[string]float64{fom: v},
	}
}

func postResults(t *testing.T, h http.Handler, key string, rs []metricsdb.Result) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(IngestRequest{IngestKey: key, Results: rs})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/results", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(t *testing.T, h http.Handler, url string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, url, nil))
	return w
}

func TestIngestAndSeries(t *testing.T) {
	srv, store := newTestServer(t)
	h := srv.Handler()
	w := postResults(t, h, "k1", []metricsdb.Result{
		result("saxpy", "cts1", "saxpy_time", 1.0),
		result("saxpy", "cts1", "saxpy_time", 1.2),
	})
	if w.Code != http.StatusOK {
		t.Fatalf("ingest: %d %s", w.Code, w.Body)
	}
	var ir IngestResponse
	if err := json.Unmarshal(w.Body.Bytes(), &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Accepted != 2 || ir.Duplicate {
		t.Fatalf("IngestResponse = %+v", ir)
	}
	if store.Len() != 2 {
		t.Fatalf("store holds %d results, want 2", store.Len())
	}

	w = get(t, h, "/v1/series?benchmark=saxpy&fom=saxpy_time")
	if w.Code != http.StatusOK {
		t.Fatalf("series: %d %s", w.Code, w.Body)
	}
	var sr SeriesResponse
	if err := json.Unmarshal(w.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.FOM != "saxpy_time" || len(sr.Points) != 2 ||
		sr.Points[0].Value != 1.0 || sr.Points[1].Value != 1.2 {
		t.Fatalf("SeriesResponse = %+v", sr)
	}
}

func TestIngestDuplicateKey(t *testing.T) {
	srv, store := newTestServer(t)
	h := srv.Handler()
	rs := []metricsdb.Result{result("saxpy", "cts1", "saxpy_time", 1.0)}
	if w := postResults(t, h, "k1", rs); w.Code != http.StatusOK {
		t.Fatalf("first ingest: %d", w.Code)
	}
	w := postResults(t, h, "k1", rs)
	if w.Code != http.StatusOK {
		t.Fatalf("duplicate ingest: %d", w.Code)
	}
	var ir IngestResponse
	if err := json.Unmarshal(w.Body.Bytes(), &ir); err != nil {
		t.Fatal(err)
	}
	if !ir.Duplicate || ir.Accepted != 0 {
		t.Fatalf("duplicate IngestResponse = %+v", ir)
	}
	if store.Len() != 1 {
		t.Fatalf("store holds %d results after duplicate, want 1", store.Len())
	}
}

func TestIngestValidation(t *testing.T) {
	srv, _ := newTestServer(t)
	h := srv.Handler()
	cases := []struct {
		name string
		body string
	}{
		{"garbage", "{not json"},
		{"missing key", `{"results":[{"benchmark":"a","system":"b"}]}`},
		{"empty results", `{"ingest_key":"k","results":[]}`},
		{"no benchmark", `{"ingest_key":"k","results":[{"system":"b"}]}`},
		{"no system", `{"ingest_key":"k","results":[{"benchmark":"a"}]}`},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(http.MethodPost, "/v1/results", strings.NewReader(tc.body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400", tc.name, w.Code)
		}
		var e apiError
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s: error envelope missing: %q", tc.name, w.Body)
		}
	}
}

func TestRegressionsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	h := srv.Handler()
	// A stable series with one 2x spike after the window fills.
	vals := []float64{1.0, 1.0, 1.0, 1.0, 2.0, 1.0}
	var rs []metricsdb.Result
	for _, v := range vals {
		rs = append(rs, result("saxpy", "cts1", "saxpy_time", v))
	}
	if w := postResults(t, h, "k1", rs); w.Code != http.StatusOK {
		t.Fatalf("ingest: %d", w.Code)
	}
	w := get(t, h, "/v1/regressions?benchmark=saxpy&fom=saxpy_time")
	if w.Code != http.StatusOK {
		t.Fatalf("regressions: %d %s", w.Code, w.Body)
	}
	var rr RegressionsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Window != DefaultWindow || rr.Threshold != DefaultThreshold {
		t.Fatalf("defaults not applied: %+v", rr)
	}
	if len(rr.Regressions) != 1 || rr.Regressions[0].Value != 2.0 || rr.Regressions[0].Ratio != 2.0 {
		t.Fatalf("Regressions = %+v", rr.Regressions)
	}
	// Explicit window/threshold that flags nothing.
	w = get(t, h, "/v1/regressions?benchmark=saxpy&fom=saxpy_time&window=4&threshold=3.0")
	if w.Code != http.StatusOK {
		t.Fatalf("regressions: %d", w.Code)
	}
	rr = RegressionsResponse{}
	if err := json.Unmarshal(w.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Regressions) != 0 {
		t.Fatalf("threshold=3.0 flagged %+v", rr.Regressions)
	}
}

func TestQueryValidation(t *testing.T) {
	srv, _ := newTestServer(t)
	h := srv.Handler()
	for _, url := range []string{
		"/v1/series",      // missing fom
		"/v1/regressions", // missing fom
		"/v1/regressions?fom=t&window=1",
		"/v1/regressions?fom=t&window=x",
		"/v1/regressions?fom=t&threshold=0",
		"/v1/regressions?fom=t&threshold=x",
	} {
		if w := get(t, h, url); w.Code != http.StatusBadRequest {
			t.Errorf("GET %s: code %d, want 400", url, w.Code)
		}
	}
}

func TestSystemsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	h := srv.Handler()
	// Empty store serves an empty array, not null.
	w := get(t, h, "/v1/systems")
	if w.Code != http.StatusOK {
		t.Fatalf("systems: %d", w.Code)
	}
	if got := strings.TrimSpace(w.Body.String()); got != `{"systems":[]}` {
		t.Fatalf("empty systems body = %q", got)
	}
	postResults(t, h, "k1", []metricsdb.Result{
		result("saxpy", "cts1", "saxpy_time", 1),
		result("saxpy", "cloud-c5n", "saxpy_time", 2),
	})
	var sr SystemsResponse
	w = get(t, h, "/v1/systems")
	if err := json.Unmarshal(w.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Systems) != 2 || sr.Systems[0] != "cloud-c5n" || sr.Systems[1] != "cts1" {
		t.Fatalf("Systems = %v", sr.Systems)
	}
}

func TestInstrumentation(t *testing.T) {
	srv, _ := newTestServer(t)
	h := srv.Handler()
	postResults(t, h, "k1", []metricsdb.Result{result("saxpy", "cts1", "saxpy_time", 1)})
	get(t, h, "/v1/series?fom=saxpy_time")
	get(t, h, "/v1/series") // invalid: counts an error

	snap := srv.Tracer().Snapshot()
	counters := snap.Metrics.Counters
	if counters[`resultsd_requests_total{route="results"}`] != 1 {
		t.Fatalf("results requests = %v", counters[`resultsd_requests_total{route="results"}`])
	}
	if counters[`resultsd_requests_total{route="series"}`] != 2 {
		t.Fatalf("series requests = %v", counters[`resultsd_requests_total{route="series"}`])
	}
	if counters[`resultsd_errors_total{route="series"}`] != 1 {
		t.Fatalf("series errors = %v", counters[`resultsd_errors_total{route="series"}`])
	}
	var spans int
	for _, s := range snap.Spans {
		if s.Name == "http:results" || s.Name == "http:series" {
			spans++
		}
	}
	if spans != 3 {
		t.Fatalf("recorded %d http spans, want 3", spans)
	}
}

func TestNilTracerServes(t *testing.T) {
	store, err := resultstore.Open(t.TempDir(), resultstore.Options{NoBackgroundCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := New(store, nil)
	h := srv.Handler()
	if w := postResults(t, h, "k1", []metricsdb.Result{result("saxpy", "cts1", "t", 1)}); w.Code != http.StatusOK {
		t.Fatalf("uninstrumented ingest: %d %s", w.Code, w.Body)
	}
	if w := get(t, h, "/v1/systems"); w.Code != http.StatusOK {
		t.Fatalf("uninstrumented systems: %d", w.Code)
	}
}

func TestIngestStoreError(t *testing.T) {
	srv, store := newTestServer(t)
	h := srv.Handler()
	// Close the store underneath the server: ingest must surface a 500.
	store.Close()
	w := postResults(t, h, "k1", []metricsdb.Result{result("saxpy", "cts1", "t", 1)})
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("ingest on closed store: %d, want 500", w.Code)
	}
}
