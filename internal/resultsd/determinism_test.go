package resultsd

import (
	"net/http"
	"testing"
	"time"

	"repro/internal/metricsdb"
	"repro/internal/resultstore"
	"repro/internal/telemetry"
)

// TestServeByteIdenticalAcrossRestart is the determinism guard for the
// federation service: ingest a workload, capture every query
// endpoint's exact response bytes, shut the store down, recover it
// from disk, and re-serve — the bytes must be identical. This pins
// both halves of the contract: recovery rebuilds the exact state
// (resultstore), and responses contain nothing nondeterministic such
// as wall-clock stamps or map-ordered fields (resultsd).
func TestServeByteIdenticalAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	clock := telemetry.FixedClock{T: time.Unix(1700000000, 0)}
	opts := resultstore.Options{Clock: clock, SegmentBytes: 256, NoBackgroundCompact: true}

	store, err := resultstore.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store, telemetry.New(clock))
	h := srv.Handler()
	// Enough batches to force segment rotation, plus an explicit
	// compaction so recovery exercises the snapshot path too.
	for i, v := range []float64{1.0, 1.05, 0.98, 1.02, 1.4, 1.01} {
		key := "det-" + string(rune('a'+i))
		w := postResults(t, h, key, []metricsdb.Result{
			result("saxpy", "cts1", "saxpy_time", v),
			result("saxpy", "cloud-c5n", "saxpy_time", v*2),
		})
		if w.Code != http.StatusOK {
			t.Fatalf("ingest %s: %d %s", key, w.Code, w.Body)
		}
	}
	if err := store.Compact(); err != nil {
		t.Fatal(err)
	}

	urls := []string{
		"/v1/series?benchmark=saxpy&fom=saxpy_time",
		"/v1/series?benchmark=saxpy&system=cts1&fom=saxpy_time",
		"/v1/regressions?benchmark=saxpy&system=cts1&fom=saxpy_time",
		"/v1/regressions?benchmark=saxpy&fom=saxpy_time&window=3&threshold=1.3",
		"/v1/systems",
	}
	before := map[string]string{}
	for _, u := range urls {
		w := get(t, h, u)
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s: %d %s", u, w.Code, w.Body)
		}
		before[u] = w.Body.String()
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := resultstore.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	h2 := New(store2, telemetry.New(clock)).Handler()
	for _, u := range urls {
		w := get(t, h2, u)
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s after restart: %d %s", u, w.Code, w.Body)
		}
		if got := w.Body.String(); got != before[u] {
			t.Fatalf("GET %s differs across restart:\nbefore %q\n after %q", u, before[u], got)
		}
	}
}
