package resultsd

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metricsdb"
	"repro/internal/resultstore"
	"repro/internal/telemetry"
)

func fastClient(baseURL string) *Client {
	c := NewClient(baseURL)
	c.RetryBackoff = time.Millisecond
	c.Jitter = NoJitter
	return c
}

func TestClientRoundTrip(t *testing.T) {
	srv, _ := newTestServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := fastClient(ts.URL)
	ctx := context.Background()

	resp, err := c.Push(ctx, "k1", []metricsdb.Result{
		result("saxpy", "cts1", "saxpy_time", 1.0),
		result("saxpy", "cts1", "saxpy_time", 1.1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 2 || resp.Duplicate {
		t.Fatalf("Push = %+v", resp)
	}
	resp, err = c.Push(ctx, "k1", []metricsdb.Result{result("saxpy", "cts1", "saxpy_time", 9)})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Duplicate {
		t.Fatalf("second Push = %+v, want duplicate", resp)
	}

	pts, err := c.Series(ctx, metricsdb.Filter{Benchmark: "saxpy"}, "saxpy_time")
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Value != 1.0 || pts[1].Value != 1.1 {
		t.Fatalf("Series = %+v", pts)
	}

	systems, err := c.Systems(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(systems) != 1 || systems[0] != "cts1" {
		t.Fatalf("Systems = %v", systems)
	}

	regs, err := c.Regressions(ctx, metricsdb.Filter{Benchmark: "saxpy"}, "saxpy_time", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("Regressions = %+v", regs)
	}
}

func TestClientRetriesServerErrors(t *testing.T) {
	var calls atomic.Int32
	backend, _ := newTestServer(t)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"temporarily overloaded"}`, http.StatusServiceUnavailable)
			return
		}
		backend.Handler().ServeHTTP(w, r)
	}))
	defer flaky.Close()
	c := fastClient(flaky.URL)
	resp, err := c.Push(context.Background(), "k1",
		[]metricsdb.Result{result("saxpy", "cts1", "saxpy_time", 1.0)})
	if err != nil {
		t.Fatalf("push through flaky server: %v", err)
	}
	if resp.Accepted != 1 {
		t.Fatalf("Push = %+v", resp)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (two 503s then success)", got)
	}
}

func TestClientRetriesExhaust(t *testing.T) {
	var calls atomic.Int32
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer down.Close()
	c := fastClient(down.URL)
	c.MaxRetries = 2
	_, err := c.Systems(context.Background())
	if err == nil {
		t.Fatal("expected error from a permanently down server")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (1 try + 2 retries)", got)
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int32
	srv, _ := newTestServer(t)
	counting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		srv.Handler().ServeHTTP(w, r)
	}))
	defer counting.Close()
	c := fastClient(counting.URL)
	// Empty results is a 400 — terminal, one attempt only.
	_, err := c.Push(context.Background(), "k1", nil)
	if err == nil {
		t.Fatal("expected 400 from empty results")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retry on 4xx)", got)
	}
}

func TestClientRetriesTransportErrors(t *testing.T) {
	// A server that is immediately closed: connections are refused.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()
	c := fastClient(dead.URL)
	c.MaxRetries = 1
	start := time.Now()
	_, err := c.Systems(context.Background())
	if err == nil {
		t.Fatal("expected connection error")
	}
	// One backoff happened, proving the transport error was retried.
	if elapsed := time.Since(start); elapsed < time.Millisecond {
		t.Fatalf("returned in %v: retry backoff did not run", elapsed)
	}
}

func TestClientContextCancellation(t *testing.T) {
	var calls atomic.Int32
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer down.Close()
	c := fastClient(down.URL)
	c.MaxRetries = 1000
	c.RetryBackoff = 10 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	_, err := c.Systems(ctx)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if got := calls.Load(); got > 5 {
		t.Fatalf("server saw %d calls before cancellation; retries ignored the context", got)
	}
}

// TestClientRetryIsIdempotent pins the property the whole retry design
// rests on: a POST retried after a 5xx that actually reached the store
// does not double-ingest, because the ingest key dedups.
func TestClientRetryIsIdempotent(t *testing.T) {
	store, err := resultstore.Open(t.TempDir(), resultstore.Options{
		Clock:               telemetry.FixedClock{T: time.Unix(1700000000, 0)},
		NoBackgroundCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := New(store, nil)
	var calls atomic.Int32
	// The cruelest failure: the store applies the batch, then the
	// response is lost (emulated by a 500 AFTER the real handler ran).
	evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			rec := httptest.NewRecorder()
			srv.Handler().ServeHTTP(rec, r)
			http.Error(w, `{"error":"response lost"}`, http.StatusBadGateway)
			return
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	defer evil.Close()
	c := fastClient(evil.URL)
	resp, err := c.Push(context.Background(), "k1",
		[]metricsdb.Result{result("saxpy", "cts1", "saxpy_time", 1.0)})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Duplicate {
		t.Fatalf("retry after applied-but-lost response: %+v, want duplicate ack", resp)
	}
	if store.Len() != 1 {
		t.Fatalf("store holds %d results, want 1 (no double ingest)", store.Len())
	}
}

// TestClientAttemptTimeout proves the per-attempt deadline frees a
// wedged attempt without giving up the whole call: the first attempt
// hangs until its own context fires, the retry succeeds.
func TestClientAttemptTimeout(t *testing.T) {
	var calls atomic.Int32
	backend, _ := newTestServer(t)
	release := make(chan struct{})
	defer close(release)
	stuck := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Drain the body so the server watches the connection;
			// then wedge until the attempt deadline makes the client
			// hang up (or the test ends, so Close never deadlocks).
			io.Copy(io.Discard, r.Body)
			select {
			case <-r.Context().Done():
			case <-release:
			}
			return
		}
		backend.Handler().ServeHTTP(w, r)
	}))
	defer stuck.Close()
	c := fastClient(stuck.URL)
	c.AttemptTimeout = 50 * time.Millisecond
	resp, err := c.Push(context.Background(), "k1",
		[]metricsdb.Result{result("saxpy", "cts1", "saxpy_time", 1.0)})
	if err != nil {
		t.Fatalf("push through stuck-then-healthy server: %v", err)
	}
	if resp.Accepted != 1 {
		t.Fatalf("Push = %+v", resp)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2 (one wedged, one retried)", got)
	}
}
