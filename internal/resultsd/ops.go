package resultsd

// The live operations plane. Liveness (/healthz) and readiness
// (/readyz) are split deliberately: a resultsd whose WAL directory
// vanished or filled up can no longer take durable writes — /readyz
// flips to 503 with the reason so a load balancer drains ingest — but
// its in-memory state still serves queries, so /healthz stays 200 and
// readers keep working. /metrics renders the tracer registry (the
// same per-route families the request instrumentation feeds) plus a
// server-owned block of lock-free counters; /debug/ops is the same
// picture as structured JSON for humans and the selfmonitor loop.

import (
	"fmt"
	"net/http"
	"strings"

	"repro/internal/resultstore"
	"repro/internal/telemetry"
)

// RouteStats is one route's operational account.
type RouteStats struct {
	Requests int64                       `json:"requests"`
	Errors   int64                       `json:"errors"`
	Latency  telemetry.HistogramSnapshot `json:"latency"`
}

// OpsSnapshot is the /debug/ops body: a point-in-time picture of the
// server's live work and the store underneath it.
type OpsSnapshot struct {
	InFlight         int64                 `json:"in_flight"`
	IngestBatches    int64                 `json:"ingest_batches"`
	IngestDuplicates int64                 `json:"ingest_duplicate_batches"`
	IngestResults    int64                 `json:"ingest_results"`
	Store            resultstore.Health    `json:"store"`
	Routes           map[string]RouteStats `json:"routes"`
}

// OpsSnapshot assembles the live operational picture. Latency
// histograms come from the tracer registry under the exact names the
// instrumentation registered, so the JSON view and the /metrics view
// can never disagree about what was observed.
func (s *Server) OpsSnapshot() OpsSnapshot {
	snap := s.tracer.Metrics().Snapshot()
	ops := OpsSnapshot{
		InFlight:         s.inFlight.Load(),
		IngestBatches:    s.ingestBatches.Load(),
		IngestDuplicates: s.ingestDuplicates.Load(),
		IngestResults:    s.ingestResults.Load(),
		Store:            s.store.Health(),
		Routes:           make(map[string]RouteStats, len(s.routes)),
	}
	for route, rc := range s.routes {
		ops.Routes[route] = RouteStats{
			Requests: rc.requests.Load(),
			Errors:   rc.errors.Load(),
			Latency:  snap.Histograms[fmt.Sprintf("resultsd_request_seconds{route=%q}", route)],
		}
	}
	return ops
}

// handleHealthz is liveness: the process is up and serving HTTP.
// It stays 200 even when the store cannot take writes — queries still
// work off the in-memory state — which is exactly the split that lets
// an operator distinguish "dead" from "degraded".
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n")) //nolint:errcheck
}

// handleReadyz is readiness for durable ingest: 200 "ready" when the
// store can take writes, 503 with the store's Health (including the
// human-readable Reason) when it cannot.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := s.store.Health()
	if h.Ready {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ready\n")) //nolint:errcheck
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, h)
}

// handleMetrics renders the Prometheus text exposition: the tracer
// registry's live families first, then the server-owned block. The
// two use disjoint family names, so the concatenation is a valid
// exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	b.WriteString(s.tracer.Metrics().PrometheusText())
	s.writeServerMetrics(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String())) //nolint:errcheck
}

// writeServerMetrics renders the counters the server tracks outside
// the tracer registry, plus store gauges from Health. All values are
// integral, so they render with %d.
func (s *Server) writeServerMetrics(b *strings.Builder) {
	h := s.store.Health()
	ready := int64(0)
	if h.Ready {
		ready = 1
	}
	for _, m := range []struct {
		name, typ string
		v         int64
	}{
		{"resultsd_inflight_requests", "gauge", s.inFlight.Load()},
		{"resultsd_ingest_batches_total", "counter", s.ingestBatches.Load()},
		{"resultsd_ingest_duplicate_batches_total", "counter", s.ingestDuplicates.Load()},
		{"resultsd_ingest_results_total", "counter", s.ingestResults.Load()},
		{"resultsd_store_ready", "gauge", ready},
		{"resultsd_store_results", "gauge", int64(h.Results)},
		{"resultsd_store_ingest_keys", "gauge", int64(h.IngestKeys)},
		{"resultsd_wal_active_segment", "gauge", int64(h.ActiveSegment)},
		{"resultsd_wal_active_bytes", "gauge", h.ActiveSizeBytes},
	} {
		fmt.Fprintf(b, "# TYPE %s %s\n%s %d\n", m.name, m.typ, m.name, m.v)
	}
}

// handleOps serves the OpsSnapshot as JSON.
func (s *Server) handleOps(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.OpsSnapshot())
}
