package resultsd

import (
	"encoding/json"
	"net/http"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/metricsdb"
	"repro/internal/resultstore"
	"repro/internal/telemetry"
)

// newOpsServer is newTestServer with the ops plane enabled.
func newOpsServer(t *testing.T, opts ...Option) (*Server, *resultstore.Store) {
	t.Helper()
	store, err := resultstore.Open(t.TempDir(), resultstore.Options{
		Clock:               telemetry.FixedClock{T: time.Unix(1700000000, 0)},
		NoBackgroundCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	tracer := telemetry.New(telemetry.FixedClock{T: time.Unix(1700000000, 0)})
	return New(store, tracer, opts...), store
}

func TestOpsEndpoints(t *testing.T) {
	srv, _ := newOpsServer(t, WithOps())
	h := srv.Handler()

	// Two ingests under one key: one applied, one duplicate.
	rs := []metricsdb.Result{result("saxpy", "cts1", "saxpy_time", 1.0)}
	if w := postResults(t, h, "k1", rs); w.Code != http.StatusOK {
		t.Fatalf("ingest: %d %s", w.Code, w.Body)
	}
	if w := postResults(t, h, "k1", rs); w.Code != http.StatusOK {
		t.Fatalf("duplicate ingest: %d %s", w.Code, w.Body)
	}

	// Liveness and readiness.
	if w := get(t, h, "/healthz"); w.Code != http.StatusOK || w.Body.String() != "ok\n" {
		t.Fatalf("/healthz = %d %q", w.Code, w.Body)
	}
	if w := get(t, h, "/readyz"); w.Code != http.StatusOK || w.Body.String() != "ready\n" {
		t.Fatalf("/readyz = %d %q", w.Code, w.Body)
	}

	// /metrics: Prometheus text with both the registry families and
	// the server-owned block, every sample line "name value".
	w := get(t, h, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics = %d %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	text := w.Body.String()
	for _, want := range []string{
		"# TYPE resultsd_requests_total counter",
		`resultsd_requests_total{route="results"} 2`,
		`resultsd_request_seconds_count{route="results"} 2`,
		"resultsd_ingest_batches_total 2",
		"resultsd_ingest_duplicate_batches_total 1",
		"resultsd_ingest_results_total 1",
		"resultsd_store_ready 1",
		"resultsd_store_results 1",
		"resultsd_inflight_requests 0",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("/metrics lacks %q:\n%s", want, text)
		}
	}
	// Routes registered but never hit still render (families are
	// created at New), with zero values.
	if !strings.Contains(text, `resultsd_requests_total{route="series"} 0`) {
		t.Errorf("/metrics lacks the idle series route:\n%s", text)
	}
	sample := regexp.MustCompile(`^\S+ \S+$`)
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sample.MatchString(line) {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	// /debug/ops: the same picture as structured JSON.
	w = get(t, h, "/debug/ops")
	if w.Code != http.StatusOK {
		t.Fatalf("/debug/ops = %d %s", w.Code, w.Body)
	}
	var ops OpsSnapshot
	if err := json.Unmarshal(w.Body.Bytes(), &ops); err != nil {
		t.Fatal(err)
	}
	if ops.IngestBatches != 2 || ops.IngestDuplicates != 1 || ops.IngestResults != 1 {
		t.Fatalf("ingest counters = %+v", ops)
	}
	if ops.InFlight != 0 {
		t.Fatalf("in-flight = %d, want 0 at rest", ops.InFlight)
	}
	if !ops.Store.Ready || ops.Store.Results != 1 || ops.Store.IngestKeys != 1 {
		t.Fatalf("store health = %+v", ops.Store)
	}
	res, ok := ops.Routes["results"]
	if !ok || res.Requests != 2 || res.Errors != 0 || res.Latency.Count != 2 {
		t.Fatalf("results route stats = %+v (present %v)", res, ok)
	}
	if idle, ok := ops.Routes["systems"]; !ok || idle.Requests != 0 {
		t.Fatalf("systems route stats = %+v (present %v)", idle, ok)
	}
}

func TestOpsEndpointsAbsentWithoutOption(t *testing.T) {
	srv, _ := newTestServer(t)
	h := srv.Handler()
	for _, path := range []string{"/metrics", "/debug/ops", "/debug/pprof/cmdline"} {
		if w := get(t, h, path); w.Code != http.StatusNotFound {
			t.Errorf("GET %s = %d without the option, want 404", path, w.Code)
		}
	}
	// Health probes are always on.
	if w := get(t, h, "/healthz"); w.Code != http.StatusOK {
		t.Errorf("/healthz = %d", w.Code)
	}
}

func TestPprofOptIn(t *testing.T) {
	srv, _ := newOpsServer(t, WithPprof())
	if w := get(t, srv.Handler(), "/debug/pprof/cmdline"); w.Code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline = %d with WithPprof, want 200", w.Code)
	}
}

// TestReadyzDegradesWhenWALUnwritable pins graceful degradation: with
// the WAL directory gone (the tests run as root, so chmod would be a
// no-op — removing the directory is the reliable way to make it
// unwritable), /readyz flips to 503 naming the reason while /healthz
// and the query API keep serving from memory.
func TestReadyzDegradesWhenWALUnwritable(t *testing.T) {
	dir := t.TempDir()
	store, err := resultstore.Open(dir, resultstore.Options{
		Clock:               telemetry.FixedClock{T: time.Unix(1700000000, 0)},
		NoBackgroundCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv := New(store, telemetry.New(telemetry.FixedClock{T: time.Unix(1700000000, 0)}), WithOps())
	h := srv.Handler()

	if w := postResults(t, h, "k1", []metricsdb.Result{result("saxpy", "cts1", "saxpy_time", 1.0)}); w.Code != http.StatusOK {
		t.Fatalf("ingest: %d %s", w.Code, w.Body)
	}
	if w := get(t, h, "/readyz"); w.Code != http.StatusOK {
		t.Fatalf("/readyz before damage = %d", w.Code)
	}

	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}

	w := get(t, h, "/readyz")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with dead WAL dir = %d, want 503", w.Code)
	}
	var health resultstore.Health
	if err := json.Unmarshal(w.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Ready || !strings.Contains(health.Reason, "not writable") {
		t.Fatalf("degraded health = %+v, want not-ready with a writability reason", health)
	}

	// Liveness and reads survive the degradation.
	if w := get(t, h, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("/healthz with dead WAL dir = %d, want 200", w.Code)
	}
	w = get(t, h, "/v1/series?benchmark=saxpy&fom=saxpy_time")
	if w.Code != http.StatusOK {
		t.Fatalf("series with dead WAL dir = %d %s", w.Code, w.Body)
	}
	var sr SeriesResponse
	if err := json.Unmarshal(w.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Points) != 1 {
		t.Fatalf("series points = %+v, want the pre-damage point", sr.Points)
	}

	// /metrics reflects the degradation.
	if text := get(t, h, "/metrics").Body.String(); !strings.Contains(text, "resultsd_store_ready 0\n") {
		t.Fatalf("/metrics does not report the unready store:\n%s", text)
	}
}
