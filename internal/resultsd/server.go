// Package resultsd is the network half of the results federation
// service: a stdlib-only HTTP API over a durable resultstore, plus a
// typed client with context-aware retries. It is the "shared metrics
// database" at the end of the paper's Figure 6 automation workflow —
// federated CI runners POST their results into it, and developers
// query series, regressions and system inventories "across systems
// and time" (Section 5) without access to the machine that ran the
// benchmarks.
//
// API (all request/response bodies are JSON):
//
//	POST /v1/results      batch ingest; idempotent via ingest_key
//	GET  /v1/series       one FOM's time series under a filter
//	GET  /v1/regressions  rolling-median regression scan of a series
//	GET  /v1/systems      distinct system names with results
//
// Every handler is instrumented with internal/telemetry exactly like
// the execution engine: a span per request (http:<route>), plus
// request/error counters and a latency histogram per route, all read
// from the server's injected tracer so traces flow through the server
// the same way they flow through the engine. A request carrying a
// W3C `traceparent` header joins the caller's distributed trace: the
// request span adopts the remote trace ID and records the caller's
// span as its remote parent, and ingested results are stamped with
// that trace ID as provenance — so GET /v1/series can answer "which
// run produced this point". Responses are deterministic: series
// points sort by sequence, systems sort by name, and no wall-clock
// value is ever serialized — restarting the store and re-serving
// yields byte-identical bodies (pinned by
// TestServeByteIdenticalAcrossRestart).
//
// Beyond the data API, the server carries a live operations plane
// (see ops.go): /healthz and /readyz are always registered; WithOps
// adds /metrics (Prometheus text) and /debug/ops (a JSON snapshot of
// in-flight work, WAL geometry and per-route latency), and WithPprof
// opt-ins the net/http/pprof profile handlers.
package resultsd

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"

	"repro/internal/metricsdb"
	"repro/internal/resultshard"
	"repro/internal/resultstore"
	"repro/internal/telemetry"
)

// maxIngestBytes bounds a POST /v1/results body (after decompression
// for gzip-encoded pushes).
const maxIngestBytes = 8 << 20

// Backend is the storage a Server serves. Three implementations share
// it: the single-node *resultstore.Store (today's mode), the sharded
// *resultshard.Router (serve --shards N), and the read-only
// *resultshard.Follower replica (serve --replica-of URL), so every
// route — including the trace-context join on ingest — works
// identically across all three.
type Backend interface {
	Append(ctx context.Context, b resultstore.Batch) (bool, error)
	Series(f metricsdb.Filter, fom string) []metricsdb.Point
	DetectRegressions(f metricsdb.Filter, fom string, window int, threshold float64) []metricsdb.Regression
	Systems() []string
	Health() resultstore.Health
	Len() int
}

// replicaSource is the optional backend surface that makes a server a
// replication primary: when the backend provides it (the sharded
// router does), the /v1/replica/meta and /v1/replica/delta routes are
// registered for followers to pull from.
type replicaSource interface {
	ReplicaMeta() resultshard.ReplicaMeta
	ReplicaDelta(shard, afterSeq int) (resultshard.ReplicaDelta, error)
}

// replicaStatus is the optional backend surface of a follower: when
// present, /v1/replica/status reports the replica's lag.
type replicaStatus interface {
	Status() resultshard.FollowerStatus
}

// Server serves the federation API over a store.
type Server struct {
	store  Backend
	tracer *telemetry.Tracer
	mux    *http.ServeMux

	// Live operational counters, readable without the tracer's
	// registry lock. The routes map is built at New and read-only
	// afterwards; its counters are atomics.
	inFlight         atomic.Int64
	ingestBatches    atomic.Int64
	ingestDuplicates atomic.Int64
	ingestResults    atomic.Int64
	routes           map[string]*routeCounters
}

// routeCounters are one route's lock-free request/error tallies.
type routeCounters struct {
	requests atomic.Int64
	errors   atomic.Int64
}

// Option configures optional server surfaces.
type Option func(*serverConfig)

type serverConfig struct {
	ops   bool
	pprof bool
}

// WithOps registers the /metrics and /debug/ops endpoints.
func WithOps() Option { return func(c *serverConfig) { c.ops = true } }

// WithPprof registers the net/http/pprof handlers under
// /debug/pprof/. Off by default: profiles expose internals, so they
// are a deliberate opt-in (`benchpark serve --pprof`).
func WithPprof() Option { return func(c *serverConfig) { c.pprof = true } }

// New returns a server over the store — a single-node Store, a
// sharded Router, or a read-only Follower. tracer may be nil (requests
// then run uninstrumented); with a tracer, every request records a
// span and per-route metrics into it. A backend that implements the
// replica-source surface additionally gets the /v1/replica/meta and
// /v1/replica/delta pull endpoints; a follower backend gets
// /v1/replica/status.
func New(store Backend, tracer *telemetry.Tracer, opts ...Option) *Server {
	var cfg serverConfig
	for _, o := range opts {
		o(&cfg)
	}
	s := &Server{store: store, tracer: tracer, mux: http.NewServeMux(), routes: map[string]*routeCounters{}}
	s.mux.HandleFunc("POST /v1/results", s.instrument("results", s.handleIngest))
	s.mux.HandleFunc("GET /v1/series", s.instrument("series", s.handleSeries))
	s.mux.HandleFunc("GET /v1/regressions", s.instrument("regressions", s.handleRegressions))
	s.mux.HandleFunc("GET /v1/systems", s.instrument("systems", s.handleSystems))
	if src, ok := store.(replicaSource); ok {
		s.mux.HandleFunc("GET /v1/replica/meta", s.instrument("replica_meta", s.handleReplicaMeta(src)))
		s.mux.HandleFunc("GET /v1/replica/delta", s.instrument("replica_delta", s.handleReplicaDelta(src)))
	}
	if fs, ok := store.(replicaStatus); ok {
		s.mux.HandleFunc("GET /v1/replica/status", s.instrument("replica_status", s.handleReplicaStatus(fs)))
	}
	// The ops plane stays outside instrument() so scrapes and probes
	// don't pollute the request metrics they report.
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	if cfg.ops {
		s.mux.HandleFunc("GET /metrics", s.handleMetrics)
		s.mux.HandleFunc("GET /debug/ops", s.handleOps)
	}
	if cfg.pprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Tracer returns the server's tracer (nil when uninstrumented).
func (s *Server) Tracer() *telemetry.Tracer { return s.tracer }

// handlerFunc is an instrumented route body: it serves the request
// and returns the error it responded with, nil on success.
type handlerFunc func(ctx context.Context, w http.ResponseWriter, r *http.Request) error

// instrument wraps a route with the span + metrics discipline: one
// "http:<route>" span per request, resultsd_requests_total and
// resultsd_errors_total counters, and a resultsd_request_seconds
// latency histogram, all labeled by route. Latency comes from the
// tracer's clock, so a FixedClock server observes zero latencies and
// stays byte-identical across runs.
func (s *Server) instrument(route string, fn handlerFunc) http.HandlerFunc {
	met := s.tracer.Metrics()
	requests := met.Counter(fmt.Sprintf("resultsd_requests_total{route=%q}", route))
	errors := met.Counter(fmt.Sprintf("resultsd_errors_total{route=%q}", route))
	latency := met.Histogram(fmt.Sprintf("resultsd_request_seconds{route=%q}", route))
	rc := &routeCounters{}
	s.routes[route] = rc
	return func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		if s.tracer != nil {
			ctx = telemetry.WithTracer(ctx, s.tracer)
		}
		// Join the caller's distributed trace when the request carries
		// a valid traceparent; the span below then adopts the remote
		// trace ID instead of the server's own.
		if tc, ok := telemetry.Extract(r.Header); ok {
			ctx = telemetry.WithRemote(ctx, tc)
		}
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)
		rc.requests.Add(1)
		start := s.tracer.Now()
		ctx, span := telemetry.StartSpan(ctx, "http:"+route)
		defer span.End()
		span.SetAttr("method", r.Method)
		requests.Inc()
		defer func() { latency.Observe(s.tracer.Now().Sub(start).Seconds()) }()
		if err := fn(ctx, w, r); err != nil {
			span.SetError(err)
			errors.Inc()
			rc.errors.Add(1)
		}
	}
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

// fail writes the error envelope and returns the error for the
// instrumentation layer.
func fail(w http.ResponseWriter, code int, err error) error {
	writeJSON(w, code, apiError{Error: err.Error()})
	return err
}

// writeJSON renders one response body. Encoding a response we built
// ourselves cannot fail, so the error path is just a 500 guard.
func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n')) //nolint:errcheck
}

// IngestRequest is the POST /v1/results body: a client-chosen
// idempotency key and the results it covers. Result IDs and sequence
// numbers are assigned server-side; client-supplied values are
// ignored.
type IngestRequest struct {
	IngestKey string             `json:"ingest_key"`
	Results   []metricsdb.Result `json:"results"`
}

// IngestResponse acknowledges one ingest batch.
type IngestResponse struct {
	// Accepted is the number of results durably stored (0 when the
	// key was a duplicate).
	Accepted int `json:"accepted"`
	// Duplicate is set when the ingest key was already applied; the
	// batch was dropped without comparing contents, so clients must
	// derive keys from content + attempt identity.
	Duplicate bool `json:"duplicate"`
}

func (s *Server) handleIngest(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	// Compressed pushes (Content-Encoding: gzip) are the norm for
	// federated runners — a results batch is highly redundant JSON.
	// The byte bound applies to the DECOMPRESSED stream, so a gzip
	// bomb cannot smuggle an oversized batch past MaxBytesReader.
	var body io.Reader = http.MaxBytesReader(w, r.Body, maxIngestBytes)
	if r.Header.Get("Content-Encoding") == "gzip" {
		zr, err := gzip.NewReader(body)
		if err != nil {
			return fail(w, http.StatusBadRequest, fmt.Errorf("decoding gzip body: %w", err))
		}
		defer zr.Close()
		body = io.LimitReader(zr, maxIngestBytes)
	}
	var req IngestRequest
	dec := json.NewDecoder(body)
	if err := dec.Decode(&req); err != nil {
		return fail(w, http.StatusBadRequest, fmt.Errorf("decoding ingest body: %w", err))
	}
	if req.IngestKey == "" {
		return fail(w, http.StatusBadRequest, fmt.Errorf("ingest_key is required"))
	}
	if len(req.Results) == 0 {
		return fail(w, http.StatusBadRequest, fmt.Errorf("results must be non-empty"))
	}
	for i, res := range req.Results {
		if res.Benchmark == "" || res.System == "" {
			return fail(w, http.StatusBadRequest,
				fmt.Errorf("result %d needs benchmark and system", i))
		}
	}
	span := telemetry.Current(ctx)
	span.SetAttr("ingest_key", req.IngestKey)
	span.SetInt("results", len(req.Results))
	applied, err := s.store.Append(ctx, resultstore.Batch{
		Key: req.IngestKey,
		// Provenance: the trace the caller propagated (or the server's
		// own for untraced pushes) is stamped onto every stored result.
		TraceID: telemetry.TraceIDFrom(ctx),
		Results: req.Results,
	})
	if err != nil {
		// Backpressure contract: an overloaded shard answers 429 with a
		// Retry-After hint; the retrying client honours it. Retrying is
		// safe — whatever partially applied dedups under the ingest key.
		var ov *resultshard.OverloadError
		if errors.As(err, &ov) {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(ov.RetryAfter)))
			return fail(w, http.StatusTooManyRequests, err)
		}
		// A replica refuses writes terminally: clients must not retry
		// against a follower, so this is a 403, not a 5xx.
		if errors.Is(err, resultshard.ErrReadOnly) {
			return fail(w, http.StatusForbidden, err)
		}
		return fail(w, http.StatusInternalServerError, err)
	}
	s.ingestBatches.Add(1)
	resp := IngestResponse{Duplicate: !applied}
	if applied {
		resp.Accepted = len(req.Results)
		s.ingestResults.Add(int64(len(req.Results)))
	} else {
		s.ingestDuplicates.Add(1)
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// SeriesPoint is one sample of a served FOM series. TraceID names the
// run that produced the sample (empty for results pushed without
// trace context), so a series response alone answers "which run
// produced this point".
type SeriesPoint struct {
	Seq     int     `json:"seq"`
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id,omitempty"`
}

// SeriesResponse is the GET /v1/series body.
type SeriesResponse struct {
	FOM    string        `json:"fom"`
	Points []SeriesPoint `json:"points"`
}

// filterFromQuery reads the shared filter parameters.
func filterFromQuery(r *http.Request) metricsdb.Filter {
	q := r.URL.Query()
	return metricsdb.Filter{
		Benchmark:  q.Get("benchmark"),
		Workload:   q.Get("workload"),
		System:     q.Get("system"),
		Experiment: q.Get("experiment"),
	}
}

func (s *Server) handleSeries(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	fom := r.URL.Query().Get("fom")
	if fom == "" {
		return fail(w, http.StatusBadRequest, fmt.Errorf("fom parameter is required"))
	}
	pts := s.store.Series(filterFromQuery(r), fom)
	resp := SeriesResponse{FOM: fom, Points: make([]SeriesPoint, 0, len(pts))}
	for _, p := range pts {
		resp.Points = append(resp.Points, SeriesPoint{Seq: p.Seq, Value: p.Value, TraceID: p.TraceID})
	}
	telemetry.Current(ctx).SetInt("points", len(resp.Points))
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// RegressionRecord is one flagged sample in a regression scan.
type RegressionRecord struct {
	Seq      int     `json:"seq"`
	Value    float64 `json:"value"`
	Baseline float64 `json:"baseline"`
	Ratio    float64 `json:"ratio"`
}

// RegressionsResponse is the GET /v1/regressions body.
type RegressionsResponse struct {
	FOM         string             `json:"fom"`
	Window      int                `json:"window"`
	Threshold   float64            `json:"threshold"`
	Regressions []RegressionRecord `json:"regressions"`
}

// Regression-scan defaults: a 4-sample rolling median and the 20%
// slowdown threshold the CLI's `regressions` subcommand uses.
const (
	DefaultWindow    = 4
	DefaultThreshold = 1.2
)

func (s *Server) handleRegressions(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	q := r.URL.Query()
	fom := q.Get("fom")
	if fom == "" {
		return fail(w, http.StatusBadRequest, fmt.Errorf("fom parameter is required"))
	}
	window := DefaultWindow
	if v := q.Get("window"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 2 {
			return fail(w, http.StatusBadRequest, fmt.Errorf("bad window %q (need an integer >= 2)", v))
		}
		window = n
	}
	threshold := DefaultThreshold
	if v := q.Get("threshold"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			return fail(w, http.StatusBadRequest, fmt.Errorf("bad threshold %q (need a positive number)", v))
		}
		threshold = f
	}
	regs := s.store.DetectRegressions(filterFromQuery(r), fom, window, threshold)
	resp := RegressionsResponse{
		FOM: fom, Window: window, Threshold: threshold,
		Regressions: make([]RegressionRecord, 0, len(regs)),
	}
	for _, reg := range regs {
		resp.Regressions = append(resp.Regressions, RegressionRecord{
			Seq: reg.Seq, Value: reg.Value, Baseline: reg.Baseline, Ratio: reg.Ratio,
		})
	}
	telemetry.Current(ctx).SetInt("regressions", len(resp.Regressions))
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// SystemsResponse is the GET /v1/systems body.
type SystemsResponse struct {
	Systems []string `json:"systems"`
}

func (s *Server) handleSystems(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	systems := s.store.Systems()
	if systems == nil {
		systems = []string{}
	}
	telemetry.Current(ctx).SetInt("systems", len(systems))
	writeJSON(w, http.StatusOK, SystemsResponse{Systems: systems})
	return nil
}
