package resultsd

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/metricsdb"
	"repro/internal/telemetry"
)

// SelfMonitor samples resultsd's own operational metrics into the
// metrics database through the normal ingest path — the service
// benchmarks itself with the same machinery it offers everyone else.
// Each sample becomes one batch of results under Benchmark
// "resultsd", Workload "ops": one result per API route (FOMs:
// latency_mean_s over the interval, cumulative requests and errors)
// plus one "store" result with WAL/ingest gauges. Because the samples
// land in the ordinary store, `GET /v1/regressions` gates the service
// on its own latency exactly as it gates any benchmark — a latency
// regression in resultsd is detected by resultsd.
type SelfMonitor struct {
	client *Client
	server *Server
	system string

	mu        sync.Mutex
	seq       int
	lastSum   map[string]float64
	lastCount map[string]int64
}

// NewSelfMonitor returns a monitor pushing through client into the
// given server's store. system names the monitored instance in the
// stored results; empty means "resultsd".
func NewSelfMonitor(client *Client, server *Server, system string) *SelfMonitor {
	if system == "" {
		system = "resultsd"
	}
	return &SelfMonitor{
		client:    client,
		server:    server,
		system:    system,
		lastSum:   map[string]float64{},
		lastCount: map[string]int64{},
	}
}

// Sample takes one operational snapshot and pushes it. The ingest key
// embeds the server tracer's trace ID (a per-process identity) and the
// sample sequence, so retries of one sample dedup while samples from a
// restarted process do not collide with a prior incarnation's keys.
func (m *SelfMonitor) Sample(ctx context.Context) error {
	ctx = telemetry.WithTracer(ctx, m.server.Tracer())
	ctx, span := telemetry.StartSpan(ctx, "selfmonitor:sample")
	defer span.End()

	ops := m.server.OpsSnapshot()
	routes := make([]string, 0, len(ops.Routes))
	for r := range ops.Routes {
		routes = append(routes, r)
	}
	sort.Strings(routes)

	m.mu.Lock()
	m.seq++
	seq := m.seq
	results := make([]metricsdb.Result, 0, len(routes)+1)
	for _, route := range routes {
		rs := ops.Routes[route]
		// Mean latency over the sampling interval, from the cumulative
		// histogram's sum/count deltas.
		dSum := rs.Latency.Sum - m.lastSum[route]
		dCount := rs.Latency.Count - m.lastCount[route]
		m.lastSum[route] = rs.Latency.Sum
		m.lastCount[route] = rs.Latency.Count
		mean := 0.0
		if dCount > 0 {
			mean = dSum / float64(dCount)
		}
		results = append(results, metricsdb.Result{
			Benchmark:  "resultsd",
			Workload:   "ops",
			System:     m.system,
			Experiment: route,
			FOMs: map[string]float64{
				"latency_mean_s": mean,
				"requests":       float64(rs.Requests),
				"errors":         float64(rs.Errors),
			},
		})
	}
	m.mu.Unlock()

	results = append(results, metricsdb.Result{
		Benchmark:  "resultsd",
		Workload:   "ops",
		System:     m.system,
		Experiment: "store",
		FOMs: map[string]float64{
			"results":           float64(ops.Store.Results),
			"wal_active_bytes":  float64(ops.Store.ActiveSizeBytes),
			"ingest_batches":    float64(ops.IngestBatches),
			"ingest_duplicates": float64(ops.IngestDuplicates),
		},
	})

	key := fmt.Sprintf("selfmonitor-%s-%s-%d", m.system, m.server.Tracer().TraceID(), seq)
	span.SetAttr("ingest_key", key)
	span.SetInt("results", len(results))
	if _, err := m.client.Push(ctx, key, results); err != nil {
		m.server.Tracer().Metrics().Counter("resultsd_selfmonitor_errors_total").Inc()
		return err
	}
	m.server.Tracer().Metrics().Counter("resultsd_selfmonitor_samples_total").Inc()
	return nil
}

// Run samples every interval until ctx is cancelled (interval <= 0
// means 30s). Push failures are recorded in the
// resultsd_selfmonitor_errors_total counter and do not stop the loop:
// a temporarily unready store should not kill the monitor that would
// report its recovery.
func (m *SelfMonitor) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_ = m.Sample(ctx)
		}
	}
}
