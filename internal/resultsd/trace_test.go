package resultsd

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/metricsdb"
	"repro/internal/resultstore"
	"repro/internal/telemetry"
)

// newServerAt builds a server whose store and tracer both run on a
// FixedClock at the given epoch — a different epoch than the runner's
// so trace-ID adoption is provable (with equal epochs the native IDs
// would coincide and the join assertions would pass vacuously).
func newServerAt(t *testing.T, epoch int64) *Server {
	t.Helper()
	store, err := resultstore.Open(t.TempDir(), resultstore.Options{
		Clock:               telemetry.FixedClock{T: time.Unix(epoch, 0)},
		NoBackgroundCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return New(store, telemetry.New(telemetry.FixedClock{T: time.Unix(epoch, 0)}))
}

// TestMergedTraceByteIdentical is the tentpole's acceptance test: a
// runner pushes results over real HTTP into a resultsd with its own
// tracer, the two per-process snapshots merge into one distributed
// trace, and two identical runs produce byte-identical merged JSON.
// Along the way it pins every link in the provenance chain: the
// server's request span joins the runner's trace, the WAL commit is a
// child of the request span, and the stored series points carry the
// runner's trace ID.
func TestMergedTraceByteIdentical(t *testing.T) {
	run := func() (runnerTraceID string, points []SeriesPoint, merged string) {
		srv := newServerAt(t, 1800000000)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		runner := telemetry.New(telemetry.FixedClock{T: time.Unix(1700000000, 0)})
		ctx := telemetry.WithTracer(context.Background(), runner)
		c := fastClient(ts.URL)

		pctx, span := telemetry.StartSpan(ctx, "push:nightly")
		if _, err := c.Push(pctx, "k-trace", []metricsdb.Result{
			result("saxpy", "cts1", "saxpy_time", 1.0),
		}); err != nil {
			t.Fatal(err)
		}
		span.End()

		pts, err := c.Series(ctx, metricsdb.Filter{Benchmark: "saxpy"}, "saxpy_time")
		if err != nil {
			t.Fatal(err)
		}
		mt, err := telemetry.MergeTraces(runner.Snapshot(), srv.Tracer().Snapshot()).JSON()
		if err != nil {
			t.Fatal(err)
		}
		return runner.TraceID(), pts, mt
	}

	traceID, pts, merged1 := run()
	_, _, merged2 := run()
	if merged1 != merged2 {
		t.Fatalf("merged traces differ between identical runs:\n--- run 1\n%s\n--- run 2\n%s", merged1, merged2)
	}

	// Provenance: the served point names the run that produced it.
	if len(pts) != 1 || pts[0].TraceID != traceID {
		t.Fatalf("series points = %+v, want one point with trace ID %q", pts, traceID)
	}

	// Structure: the server's ingest span joined the runner's trace as
	// a child of the client's rpc span, and committed the WAL inside it.
	var mt telemetry.Trace
	if err := json.Unmarshal([]byte(merged1), &mt); err != nil {
		t.Fatal(err)
	}
	spans := map[string]telemetry.SpanRecord{}
	for _, s := range mt.Spans {
		spans[s.ID] = s
	}
	rpc, ok := spans["push:nightly/rpc:results"]
	if !ok {
		t.Fatalf("runner trace lacks the rpc span; spans: %v", spanIDs(mt.Spans))
	}
	httpSpan, ok := spans["http:results"]
	if !ok {
		t.Fatalf("server trace lacks the request span; spans: %v", spanIDs(mt.Spans))
	}
	if httpSpan.TraceID != traceID {
		t.Fatalf("server span trace ID %q, want runner's %q", httpSpan.TraceID, traceID)
	}
	if want := telemetry.SpanContextID(traceID, rpc.ID); httpSpan.RemoteParent != want {
		t.Fatalf("server span remote parent %q, want %q", httpSpan.RemoteParent, want)
	}
	wal, ok := spans["http:results/wal:commit"]
	if !ok {
		t.Fatalf("server trace lacks the wal:commit span; spans: %v", spanIDs(mt.Spans))
	}
	if wal.TraceID != traceID || wal.Parent != "http:results" {
		t.Fatalf("wal:commit span = %+v, want child of http:results in trace %s", wal, traceID)
	}
}

func spanIDs(spans []telemetry.SpanRecord) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.ID
	}
	return out
}

// TestClientRetrySameTraceparentAndKey: a retried push is ONE logical
// operation — every attempt carries the identical traceparent header
// and ingest key, and the client trace holds one rpc span recording
// the attempt count, not a span per attempt.
func TestClientRetrySameTraceparentAndKey(t *testing.T) {
	type attempt struct {
		traceparent string
		ingestKey   string
	}
	var mu sync.Mutex
	var attempts []attempt

	backend := newServerAt(t, 1800000000)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			t.Error(err)
		}
		var req IngestRequest
		if err := json.Unmarshal(body, &req); err != nil {
			t.Errorf("bad ingest body: %v", err)
		}
		mu.Lock()
		attempts = append(attempts, attempt{
			traceparent: r.Header.Get(telemetry.TraceparentHeader),
			ingestKey:   req.IngestKey,
		})
		n := len(attempts)
		mu.Unlock()
		if n <= 2 {
			http.Error(w, `{"error":"temporarily overloaded"}`, http.StatusServiceUnavailable)
			return
		}
		r2 := r.Clone(r.Context())
		r2.Body = io.NopCloser(bytes.NewReader(body))
		backend.Handler().ServeHTTP(w, r2)
	}))
	defer flaky.Close()

	runner := telemetry.New(telemetry.FixedClock{T: time.Unix(1700000000, 0)})
	ctx := telemetry.WithTracer(context.Background(), runner)
	ctx, span := telemetry.StartSpan(ctx, "push:nightly")
	c := fastClient(flaky.URL)
	resp, err := c.Push(ctx, "k-retry", []metricsdb.Result{result("saxpy", "cts1", "saxpy_time", 1.0)})
	span.End()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 1 {
		t.Fatalf("Push = %+v", resp)
	}

	mu.Lock()
	got := append([]attempt(nil), attempts...)
	mu.Unlock()
	if len(got) != 3 {
		t.Fatalf("server saw %d attempts, want 3", len(got))
	}
	first := got[0]
	if first.traceparent == "" {
		t.Fatal("first attempt carried no traceparent")
	}
	if first.ingestKey != "k-retry" {
		t.Fatalf("first attempt key %q", first.ingestKey)
	}
	for i, a := range got[1:] {
		if a != first {
			t.Fatalf("attempt %d differs from first: %+v vs %+v", i+2, a, first)
		}
	}

	// One logical span for the whole retried call.
	var rpcSpans []telemetry.SpanRecord
	for _, s := range runner.Snapshot().Spans {
		if s.Name == "rpc:results" {
			rpcSpans = append(rpcSpans, s)
		}
	}
	if len(rpcSpans) != 1 {
		t.Fatalf("runner trace holds %d rpc spans, want 1", len(rpcSpans))
	}
	if got := rpcSpans[0].Attrs["attempts"]; got != "3" {
		t.Fatalf("rpc span attempts = %q, want \"3\"", got)
	}

	// The traceparent the server eventually honored points at the
	// runner's trace; the stored result carries it.
	tc, ok := telemetry.ParseTraceparent(first.traceparent)
	if !ok || tc.TraceID != runner.TraceID() {
		t.Fatalf("traceparent %q does not name the runner trace %q", first.traceparent, runner.TraceID())
	}
	w := get(t, backend.Handler(), "/v1/series?benchmark=saxpy&fom=saxpy_time")
	var sr SeriesResponse
	if err := json.Unmarshal(w.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Points) != 1 || sr.Points[0].TraceID != runner.TraceID() {
		t.Fatalf("series = %+v, want the runner's trace ID %q", sr.Points, runner.TraceID())
	}
}
