package ramble

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/yamlite"
)

// DefaultTemplate is the execute_experiment.tpl of Figure 13.
const DefaultTemplate = `#!/bin/bash
{batch_nodes}
{batch_ranks}
cd {experiment_run_dir}
{spack_setup}
{command}
`

// Status tracks one experiment's lifecycle.
type Status int

const (
	// Pending: generated but not executed.
	Pending Status = iota
	// Succeeded: executed and all success criteria passed.
	Succeeded
	// Failed: executed but crashed or failed its criteria.
	Failed
)

func (s Status) String() string {
	switch s {
	case Pending:
		return "pending"
	case Succeeded:
		return "succeeded"
	case Failed:
		return "failed"
	}
	return "unknown"
}

// Experiment is one fully instantiated run of an application workload
// on a system — one generated directory under experiments/.
type Experiment struct {
	Name     string
	App      *Application
	Workload string

	// Vars is the complete raw variable table (values may still hold
	// {…} references; Expander resolves them).
	Vars     map[string]string
	Expander *Expander
	Env      map[string]string // rendered environment variables
	// Modifiers are the abstract modifiers applied to this experiment
	// (Section 3.2), by name.
	Modifiers []string

	Script string // rendered batch script
	Dir    string // run directory under the workspace

	// Derived execution geometry.
	NNodes, ProcsPerNode, NRanks, NThreads int

	// Execution results.
	Status  Status
	Output  string
	Elapsed float64
	FOMs    map[string]string
	FailMsg string
}

// Workspace is a self-contained directory representing a set of
// experiments (Section 3.2's "primary entry point for users").
type Workspace struct {
	Name string
	Root string

	raw       *yamlite.Map // parsed ramble.yaml
	effective *yamlite.Map // ramble: subtree with includes merged

	Experiments []*Experiment
	template    string
	setupDone   bool
}

// NewWorkspace creates the workspace directory skeleton
// (`ramble workspace create`).
func NewWorkspace(name, root string) (*Workspace, error) {
	for _, d := range []string{"", "configs", "experiments", "logs"} {
		if err := os.MkdirAll(filepath.Join(root, d), 0o755); err != nil {
			return nil, fmt.Errorf("ramble: creating workspace: %w", err)
		}
	}
	return &Workspace{Name: name, Root: root, template: DefaultTemplate}, nil
}

// WriteConfig stores a named config file under configs/
// (spack.yaml, variables.yaml — the system-specific inputs).
func (w *Workspace) WriteConfig(name, content string) error {
	return os.WriteFile(filepath.Join(w.Root, "configs", name), []byte(content), 0o644)
}

// SetTemplate overrides execute_experiment.tpl.
func (w *Workspace) SetTemplate(tpl string) { w.template = tpl }

// Configure parses ramble.yaml and merges its includes
// (`ramble workspace edit` finishing with a save).
func (w *Workspace) Configure(rambleYAML string) error {
	doc, err := yamlite.ParseMap(rambleYAML)
	if err != nil {
		return fmt.Errorf("ramble: parsing ramble.yaml: %w", err)
	}
	r := doc.GetMap("ramble")
	if r == nil {
		return fmt.Errorf("ramble: ramble.yaml missing top-level 'ramble' key")
	}
	if err := os.WriteFile(filepath.Join(w.Root, "configs", "ramble.yaml"), []byte(rambleYAML), 0o644); err != nil {
		return err
	}
	eff := r.Clone()
	for _, inc := range r.GetStrings("include") {
		base := filepath.Base(inc) // ./configs/spack.yaml -> spack.yaml
		data, err := os.ReadFile(filepath.Join(w.Root, "configs", base))
		if err != nil {
			return fmt.Errorf("ramble: include %q: %w", inc, err)
		}
		incDoc, err := yamlite.ParseMap(string(data))
		if err != nil {
			return fmt.Errorf("ramble: include %q: %w", inc, err)
		}
		// Included top-level sections (spack:, variables:) merge into
		// the ramble: subtree, system config underneath experiment
		// config (experiment-specific keys win).
		merged := incDoc.Clone()
		merged.Merge(eff)
		eff = merged
	}
	w.raw = doc
	w.effective = eff
	w.Experiments = nil
	w.setupDone = false
	return nil
}

// Effective exposes the merged configuration (for inspection/tests).
func (w *Workspace) Effective() *yamlite.Map { return w.effective }

// SoftwareInstaller resolves and installs one named software
// environment with the given abstract spec strings — the hook through
// which Ramble drives Spack (Figure 1b arrow 6).
type SoftwareInstaller func(envName string, specs []string) error

// Setup generates all experiments and (optionally) installs software
// (`ramble workspace setup`). Passing a nil installer skips software
// installation.
func (w *Workspace) Setup(installSoftware SoftwareInstaller) error {
	if w.effective == nil {
		return fmt.Errorf("ramble: workspace %s not configured", w.Name)
	}
	experiments, err := w.generateExperiments()
	if err != nil {
		return err
	}
	w.Experiments = experiments

	// Download required input files (Section 3.2.3), verifying
	// checksums.
	if err := w.FetchInputs(nil); err != nil {
		return err
	}

	// Software environments (spack: section).
	if installSoftware != nil {
		envSpecs, err := w.SoftwareEnvironments()
		if err != nil {
			return err
		}
		for _, name := range sortedKeys(envSpecs) {
			if err := installSoftware(name, envSpecs[name]); err != nil {
				return fmt.Errorf("ramble: installing environment %s: %w", name, err)
			}
		}
	}

	// Materialize experiment directories and scripts.
	for _, e := range w.Experiments {
		if err := os.MkdirAll(e.Dir, 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(e.Dir, "execute_experiment.sh"), []byte(e.Script), 0o755); err != nil {
			return err
		}
	}
	w.setupDone = true
	return nil
}

// SoftwareEnvironments resolves the spack: section into environment
// name -> list of concrete-ready spec strings, dereferencing named
// package aliases (Figure 9/10: compiler "default-compiler" points at
// packages.default-compiler.spack_spec).
func (w *Workspace) SoftwareEnvironments() (map[string][]string, error) {
	spackSec := w.effective.GetMap("spack")
	if spackSec == nil {
		return map[string][]string{}, nil
	}
	pkgs := spackSec.GetMap("packages")
	resolvePkg := func(name string) (string, error) {
		if pkgs == nil || !pkgs.Has(name) {
			return "", fmt.Errorf("ramble: spack packages section has no entry %q", name)
		}
		entry := pkgs.GetMap(name)
		specStr := entry.GetString("spack_spec")
		if specStr == "" {
			return "", fmt.Errorf("ramble: package %q has no spack_spec", name)
		}
		if compAlias := entry.GetString("compiler"); compAlias != "" {
			comp := pkgs.GetMap(compAlias)
			if comp == nil {
				return "", fmt.Errorf("ramble: package %q references unknown compiler alias %q", name, compAlias)
			}
			specStr += " %" + comp.GetString("spack_spec")
		}
		return specStr, nil
	}
	out := map[string][]string{}
	envs := spackSec.GetMap("environments")
	if envs == nil {
		return out, nil
	}
	for _, envName := range envs.Keys() {
		var specs []string
		for _, pkgName := range envs.GetMap(envName).GetStrings("packages") {
			s, err := resolvePkg(pkgName)
			if err != nil {
				return nil, err
			}
			specs = append(specs, s)
		}
		out[envName] = specs
	}
	return out, nil
}

// generateExperiments walks applications → workloads → experiment
// templates, expanding vector variables and matrices into concrete
// experiments.
func (w *Workspace) generateExperiments() ([]*Experiment, error) {
	apps := w.effective.GetMap("applications")
	if apps == nil || apps.Len() == 0 {
		return nil, fmt.Errorf("ramble: no applications configured")
	}
	globalVars := mapFromYAML(w.effective.GetMap("variables"))

	var out []*Experiment
	for _, appName := range apps.Keys() {
		app, err := GetApplication(appName)
		if err != nil {
			return nil, err
		}
		appSec := apps.GetMap(appName)
		workloads := appSec.GetMap("workloads")
		if workloads == nil {
			return nil, fmt.Errorf("ramble: application %s has no workloads section", appName)
		}
		for _, wlName := range workloads.Keys() {
			if _, ok := app.Workloads[wlName]; !ok {
				return nil, fmt.Errorf("ramble: application %s has no workload %q", appName, wlName)
			}
			wlSec := workloads.GetMap(wlName)
			wlVars := mapFromYAML(wlSec.GetMap("variables"))
			wlMods := wlSec.GetStrings("modifiers")
			envVars := map[string]string{}
			if ev := wlSec.GetMap("env_vars"); ev != nil {
				for k, v := range mapFromYAML(ev.GetMap("set")) {
					envVars[k] = v
				}
			}
			exps := wlSec.GetMap("experiments")
			if exps == nil {
				return nil, fmt.Errorf("ramble: %s/%s has no experiments section", appName, wlName)
			}
			for _, nameTpl := range exps.Keys() {
				expSec := exps.GetMap(nameTpl)
				gen, err := w.expandTemplate(app, wlName, nameTpl, expSec, globalVars, wlVars, envVars, wlMods)
				if err != nil {
					return nil, fmt.Errorf("ramble: experiment %s: %w", nameTpl, err)
				}
				out = append(out, gen...)
			}
		}
	}
	// Reject duplicate experiment names (under-parameterized templates).
	seen := map[string]bool{}
	for _, e := range out {
		if seen[e.Name] {
			return nil, fmt.Errorf("ramble: duplicate experiment name %q (add distinguishing variables to the name template)", e.Name)
		}
		seen[e.Name] = true
	}
	return out, nil
}

// expandTemplate produces the concrete experiments for one experiment
// template: zip unmatrixed vector variables, cross matrices.
func (w *Workspace) expandTemplate(app *Application, workload, nameTpl string,
	expSec *yamlite.Map, globalVars, wlVars, envVars map[string]string,
	modifiers []string) ([]*Experiment, error) {

	if expSec != nil {
		modifiers = append(append([]string(nil), modifiers...), expSec.GetStrings("modifiers")...)
	}
	// Per-experiment template override (Figure 1a keeps an
	// exe_experiment.tpl next to each experiment definition).
	tpl := w.template
	if expSec != nil {
		if custom := expSec.GetString("template"); custom != "" {
			tpl = custom
		}
	}

	scalars := map[string]string{}
	vectors := map[string][]string{}
	order := []string{}
	if expSec != nil {
		if vs := expSec.GetMap("variables"); vs != nil {
			for _, k := range vs.Keys() {
				switch v := vs.Get(k).(type) {
				case []yamlite.Value:
					vals := make([]string, len(v))
					for i, e := range v {
						vals[i] = yamlite.ScalarString(e)
					}
					vectors[k] = vals
					order = append(order, k)
				default:
					scalars[k] = yamlite.ScalarString(v)
				}
			}
		}
	}

	// Matrices consume vector variables into cross products.
	type matrix struct {
		name string
		vars []string
	}
	var matrices []matrix
	if expSec != nil {
		for _, mv := range expSec.GetSlice("matrices") {
			mm, ok := mv.(*yamlite.Map)
			if !ok || mm.Len() != 1 {
				return nil, fmt.Errorf("bad matrices entry (want '- name: [vars]')")
			}
			mname := mm.Keys()[0]
			mvars := mm.GetStrings(mname)
			for _, v := range mvars {
				if _, ok := vectors[v]; !ok {
					return nil, fmt.Errorf("matrix %s references non-vector variable %q", mname, v)
				}
			}
			matrices = append(matrices, matrix{name: mname, vars: mvars})
		}
	}
	inMatrix := map[string]bool{}
	for _, m := range matrices {
		for _, v := range m.vars {
			inMatrix[v] = true
		}
	}

	// Exclusions: drop generated combinations matching every variable
	// of any exclusion entry (Ramble's exclude: construct; used to
	// prune infeasible corners like "1024 ranks on 1 node").
	var exclusions []map[string]string
	if expSec != nil {
		if ex := expSec.GetMap("exclude"); ex != nil {
			for _, ev := range ex.GetSlice("variables") {
				em, ok := ev.(*yamlite.Map)
				if !ok {
					return nil, fmt.Errorf("bad exclude entry (want '- var: value' mappings)")
				}
				entry := map[string]string{}
				for _, k := range em.Keys() {
					entry[k] = em.GetString(k)
				}
				exclusions = append(exclusions, entry)
			}
		}
	}
	excluded := func(vars map[string]string) bool {
		for _, entry := range exclusions {
			match := true
			for k, v := range entry {
				if vars[k] != v {
					match = false
					break
				}
			}
			if match {
				return true
			}
		}
		return false
	}

	// Zip the remaining vector variables: all must share a length.
	var zipVars []string
	zipLen := 1
	for _, k := range order {
		if inMatrix[k] {
			continue
		}
		zipVars = append(zipVars, k)
	}
	if len(zipVars) > 0 {
		zipLen = len(vectors[zipVars[0]])
		for _, k := range zipVars {
			if len(vectors[k]) != zipLen {
				return nil, fmt.Errorf("vector variables %v must have equal lengths to zip (%s has %d, %s has %d)",
					zipVars, zipVars[0], zipLen, k, len(vectors[k]))
			}
		}
	}

	// Enumerate: zip index × matrix cross products.
	matrixSizes := make([][]int, len(matrices))
	for mi, m := range matrices {
		sizes := make([]int, len(m.vars))
		for vi, v := range m.vars {
			sizes[vi] = len(vectors[v])
		}
		matrixSizes[mi] = sizes
	}
	var enumerate func(mi int, idx [][]int)
	var allIdx [][][]int
	enumerate = func(mi int, idx [][]int) {
		if mi == len(matrices) {
			cp := make([][]int, len(idx))
			for i := range idx {
				cp[i] = append([]int(nil), idx[i]...)
			}
			allIdx = append(allIdx, cp)
			return
		}
		var rec func(vi int, cur []int)
		rec = func(vi int, cur []int) {
			if vi == len(matrices[mi].vars) {
				enumerate(mi+1, append(idx, append([]int(nil), cur...)))
				return
			}
			for k := 0; k < matrixSizes[mi][vi]; k++ {
				rec(vi+1, append(cur, k))
			}
		}
		rec(0, nil)
	}
	enumerate(0, nil)

	var out []*Experiment
	for zi := 0; zi < zipLen; zi++ {
		for _, midx := range allIdx {
			vars := map[string]string{}
			// precedence: app defaults < global < workload < experiment
			for k, v := range app.DefaultVars(workload) {
				vars[k] = v
			}
			for k, v := range globalVars {
				vars[k] = v
			}
			for k, v := range wlVars {
				vars[k] = v
			}
			for k, v := range scalars {
				vars[k] = v
			}
			for _, k := range zipVars {
				vars[k] = vectors[k][zi]
			}
			for mi, m := range matrices {
				for vi, v := range m.vars {
					vars[v] = vectors[v][midx[mi][vi]]
				}
			}
			if excluded(vars) {
				continue
			}
			exp, err := w.buildExperiment(app, workload, nameTpl, vars, envVars, modifiers, tpl)
			if err != nil {
				return nil, err
			}
			out = append(out, exp)
		}
	}
	return out, nil
}

// buildExperiment finalizes one variable assignment into an
// Experiment: built-in variables, name expansion, script rendering.
func (w *Workspace) buildExperiment(app *Application, workload, nameTpl string,
	vars map[string]string, envVars map[string]string, modifiers []string,
	template string) (*Experiment, error) {

	setDefault := func(k, v string) {
		if _, ok := vars[k]; !ok {
			vars[k] = v
		}
	}
	// Modifiers contribute default variables and extra env vars.
	extraEnv := map[string]string{}
	for _, name := range modifiers {
		mod, err := GetModifier(name)
		if err != nil {
			return nil, err
		}
		for k, v := range mod.Variables {
			setDefault(k, v)
		}
		for k, v := range mod.EnvVars {
			extraEnv[k] = v
		}
	}
	setDefault("application_name", app.Name)
	setDefault("workload_name", workload)
	setDefault("n_nodes", "1")
	setDefault("processes_per_node", "1")
	setDefault("n_ranks", "{processes_per_node*n_nodes}")
	setDefault("n_threads", "1")
	setDefault("batch_time", "60")
	setDefault("spack_setup", ". $SPACK_ROOT/share/spack/setup-env.sh")
	setDefault("experiment_name", nameTpl)
	// Scheduler variables normally supplied by the system's
	// variables.yaml (Figure 12); generic fallbacks keep minimal
	// workspaces functional.
	setDefault("batch_nodes", "#SBATCH -N {n_nodes}")
	setDefault("batch_ranks", "#SBATCH -n {n_ranks}")
	setDefault("batch_timeout", "#SBATCH -t {batch_time}:00")
	setDefault("mpi_command", "mpirun -n {n_ranks}")
	setDefault("execute_experiment", "{experiment_run_dir}/execute_experiment.sh")
	setDefault("batch_submit", "sbatch {execute_experiment}")

	ex := NewExpander(vars)
	name, err := ex.Expand(nameTpl)
	if err != nil {
		return nil, err
	}
	vars["experiment_name"] = name
	dir := filepath.Join(w.Root, "experiments", app.Name, workload, name)
	vars["experiment_run_dir"] = dir

	// Command: the workload's executables under the system launcher.
	mpiCmd := vars["mpi_command"]
	cmds, err := renderCommand(app, workload, ex, mpiCmd)
	if err != nil {
		return nil, err
	}
	vars["command"] = strings.Join(cmds, "\n")

	script, err := ex.Expand(template)
	if err != nil {
		return nil, err
	}

	env := map[string]string{}
	for _, src := range []map[string]string{extraEnv, envVars} {
		for k, v := range src {
			rendered, err := ex.Expand(v)
			if err != nil {
				return nil, err
			}
			env[k] = rendered
		}
	}

	e := &Experiment{
		Name:      name,
		App:       app,
		Workload:  workload,
		Vars:      vars,
		Expander:  ex,
		Env:       env,
		Script:    script,
		Dir:       dir,
		Modifiers: append([]string(nil), modifiers...),
		FOMs:      map[string]string{},
	}
	for _, g := range []struct {
		key string
		dst *int
	}{
		{"n_nodes", &e.NNodes},
		{"processes_per_node", &e.ProcsPerNode},
		{"n_ranks", &e.NRanks},
		{"n_threads", &e.NThreads},
	} {
		s, err := ex.Expand("{" + g.key + "}")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("ramble: %s=%q is not an integer", g.key, s)
		}
		*g.dst = n
	}
	return e, nil
}

// Executor runs one experiment and returns its textual output plus
// simulated elapsed seconds. The Benchpark core wires this to the
// batch scheduler and benchmark kernels.
type Executor func(e *Experiment) (output string, elapsed float64, err error)

// On executes every generated experiment (`ramble on`).
func (w *Workspace) On(exec Executor) error {
	if !w.setupDone {
		return fmt.Errorf("ramble: workspace %s: run Setup before On", w.Name)
	}
	if exec == nil {
		return fmt.Errorf("ramble: no executor")
	}
	for _, e := range w.Experiments {
		out, elapsed, err := exec(e)
		e.Output = out
		e.Elapsed = elapsed
		if err != nil {
			e.Status = Failed
			e.FailMsg = err.Error()
			continue
		}
		// Status is finalized by Analyze (success criteria).
		e.Status = Succeeded
		if err := os.WriteFile(filepath.Join(e.Dir, e.Name+".out"), []byte(out), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// AnalysisReport is the result of `ramble workspace analyze`.
type AnalysisReport struct {
	Total, Succeeded, Failed int
	Experiments              []*Experiment
}

// Analyze extracts figures of merit and applies success criteria
// (`ramble workspace analyze`).
func (w *Workspace) Analyze() (*AnalysisReport, error) {
	if !w.setupDone {
		return nil, fmt.Errorf("ramble: workspace %s: nothing to analyze", w.Name)
	}
	rep := &AnalysisReport{Experiments: w.Experiments}
	for _, e := range w.Experiments {
		rep.Total++
		if e.Status == Failed {
			rep.Failed++
			continue
		}
		if err := e.App.CheckSuccess(e.Output); err != nil {
			e.Status = Failed
			e.FailMsg = err.Error()
			rep.Failed++
			continue
		}
		e.FOMs = e.App.ExtractFOMs(e.Output)
		for _, name := range e.Modifiers {
			if mod, err := GetModifier(name); err == nil {
				for k, v := range mod.ExtractFOMs(e.Output) {
					e.FOMs[k] = v
				}
			}
		}
		e.Status = Succeeded
		rep.Succeeded++
	}
	return rep, nil
}

// mapFromYAML flattens a yamlite map of scalars into Go strings.
func mapFromYAML(m *yamlite.Map) map[string]string {
	out := map[string]string{}
	if m == nil {
		return out
	}
	for _, k := range m.Keys() {
		out[k] = m.GetString(k)
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
