package ramble

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// figure10YAML is the paper's ramble.yaml (Figure 10), with the
// Figure 9 spack.yaml and Figure 12 variables.yaml as includes.
const figure10YAML = `
ramble:
  include:
  - ./configs/spack.yaml
  - ./configs/variables.yaml
  config:
    deprecated: true
    spack_flags:
      install: '--add --keep-stage'
      concretize: '-U -f'
  applications:
    saxpy:
      workloads:
        problem:
          env_vars:
            set:
              OMP_NUM_THREADS: '{n_threads}'
          variables:
            n_ranks: '8'
            batch_time: '120'
          experiments:
            saxpy_{n}_{n_nodes}_{n_ranks}_{n_threads}:
              variables:
                processes_per_node: ['8', '4']
                n_nodes: ['1', '2']
                n_threads: ['2', '4']
                n: ['512', '1024']
              matrices:
              - size_threads:
                - n
                - n_threads
  spack:
    packages:
      saxpy:
        spack_spec: saxpy@1.0.0 +openmp ^cmake@3.23.1
        compiler: default-compiler
    environments:
      saxpy:
        packages:
        - default-mpi
        - saxpy
`

const figure9SpackYAML = `
spack:
  packages:
    default-compiler:
      spack_spec: gcc@12.1.1
    default-mpi:
      spack_spec: mvapich2@2.3.7-gcc12.1.1
    gcc1211:
      spack_spec: gcc@12.1.1
    lapack:
      spack_spec: intel-oneapi-mkl@2022.1.0
    mpi-compilers:
      spack_spec: mvapich2@2.3.7-compilers
`

const figure12VariablesYAML = `
variables:
  mpi_command: 'srun -N {n_nodes} -n {n_ranks}'
  batch_submit: 'sbatch {execute_experiment}'
  batch_nodes: '#SBATCH -N {n_nodes}'
  batch_ranks: '#SBATCH -n {n_ranks}'
  batch_timeout: '#SBATCH -t {batch_time}:00'
  compilers: [gcc1211, intel202160classic]
`

func figure10Workspace(t *testing.T) *Workspace {
	t.Helper()
	w, err := NewWorkspace("fig10", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteConfig("spack.yaml", figure9SpackYAML); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteConfig("variables.yaml", figure12VariablesYAML); err != nil {
		t.Fatal(err)
	}
	if err := w.Configure(figure10YAML); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestFigure10ExperimentGeneration checks the exact experiment set the
// paper's configuration generates: the size_threads matrix crosses
// n × n_threads (4 combos) and the remaining vectors
// processes_per_node/n_nodes zip (2 combos) -> 8 experiments.
func TestFigure10ExperimentGeneration(t *testing.T) {
	w := figure10Workspace(t)
	if err := w.Setup(nil); err != nil {
		t.Fatal(err)
	}
	if len(w.Experiments) != 8 {
		names := []string{}
		for _, e := range w.Experiments {
			names = append(names, e.Name)
		}
		t.Fatalf("generated %d experiments, want 8: %v", len(w.Experiments), names)
	}
	var names []string
	for _, e := range w.Experiments {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	// n_ranks fixed at 8 by the workload variables (Figure 10 line 18).
	want := []string{
		"saxpy_1024_1_8_2", "saxpy_1024_1_8_4", "saxpy_1024_2_8_2", "saxpy_1024_2_8_4",
		"saxpy_512_1_8_2", "saxpy_512_1_8_4", "saxpy_512_2_8_2", "saxpy_512_2_8_4",
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("experiment names = %v, want %v", names, want)
		}
	}
	// Environment variable rendering: OMP_NUM_THREADS={n_threads}.
	for _, e := range w.Experiments {
		th, _ := e.Expander.Expand("{n_threads}")
		if e.Env["OMP_NUM_THREADS"] != th {
			t.Errorf("%s: OMP_NUM_THREADS = %q, want %q", e.Name, e.Env["OMP_NUM_THREADS"], th)
		}
	}
}

func TestFigure13ScriptRendering(t *testing.T) {
	w := figure10Workspace(t)
	if err := w.Setup(nil); err != nil {
		t.Fatal(err)
	}
	e := w.Experiments[0]
	for _, want := range []string{
		"#!/bin/bash",
		"#SBATCH -N ", // batch_nodes rendered
		"#SBATCH -n 8",
		"cd " + e.Dir,
		"srun -N ", // mpi_command prefix
		"saxpy -n ",
	} {
		if !strings.Contains(e.Script, want) {
			t.Errorf("script missing %q:\n%s", want, e.Script)
		}
	}
	// The script exists on disk (Figure 1a generated workspace).
	if _, err := os.Stat(filepath.Join(e.Dir, "execute_experiment.sh")); err != nil {
		t.Errorf("script not materialized: %v", err)
	}
}

func TestSoftwareEnvironmentResolution(t *testing.T) {
	w := figure10Workspace(t)
	envs, err := w.SoftwareEnvironments()
	if err != nil {
		t.Fatal(err)
	}
	specs, ok := envs["saxpy"]
	if !ok || len(specs) != 2 {
		t.Fatalf("envs = %v", envs)
	}
	// default-mpi alias resolved via the included Figure 9 spack.yaml.
	if specs[0] != "mvapich2@2.3.7-gcc12.1.1" {
		t.Errorf("specs[0] = %q", specs[0])
	}
	// saxpy spec gains its compiler alias expansion.
	if specs[1] != "saxpy@1.0.0 +openmp ^cmake@3.23.1 %gcc@12.1.1" {
		t.Errorf("specs[1] = %q", specs[1])
	}
}

func TestSetupInstallsSoftware(t *testing.T) {
	w := figure10Workspace(t)
	calls := map[string][]string{}
	err := w.Setup(func(env string, specs []string) error {
		calls[env] = specs
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls["saxpy"]) != 2 {
		t.Errorf("installer calls = %v", calls)
	}
}

func TestSetupInstallerFailurePropagates(t *testing.T) {
	w := figure10Workspace(t)
	err := w.Setup(func(env string, specs []string) error {
		return fmt.Errorf("no compiler on this system")
	})
	if err == nil || !strings.Contains(err.Error(), "no compiler") {
		t.Errorf("err = %v", err)
	}
}

func TestOnAndAnalyze(t *testing.T) {
	w := figure10Workspace(t)
	if err := w.Setup(nil); err != nil {
		t.Fatal(err)
	}
	// Fake executor: succeed for n=512, fail criteria for n=1024.
	err := w.On(func(e *Experiment) (string, float64, error) {
		n, _ := e.Expander.Expand("{n}")
		if n == "512" {
			return "saxpy: ok\nsaxpy_time: 0.001 s\nKernel done\n", 0.001, nil
		}
		return "crashed before kernel\n", 0.0005, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := w.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 8 || rep.Succeeded != 4 || rep.Failed != 4 {
		t.Fatalf("report = %+v", rep)
	}
	for _, e := range rep.Experiments {
		n, _ := e.Expander.Expand("{n}")
		if n == "512" {
			if e.Status != Succeeded {
				t.Errorf("%s: status %v (%s)", e.Name, e.Status, e.FailMsg)
			}
			if e.FOMs["success"] != "Kernel done" {
				t.Errorf("%s: FOMs = %v", e.Name, e.FOMs)
			}
			if e.FOMs["saxpy_time"] != "0.001" {
				t.Errorf("%s: saxpy_time = %q", e.Name, e.FOMs["saxpy_time"])
			}
			// Output file written to the experiment dir.
			if _, err := os.Stat(filepath.Join(e.Dir, e.Name+".out")); err != nil {
				t.Errorf("%s: output file missing", e.Name)
			}
		} else if e.Status != Failed {
			t.Errorf("%s: expected failure, got %v", e.Name, e.Status)
		}
	}
}

func TestExecutorErrorMarksFailed(t *testing.T) {
	w := figure10Workspace(t)
	if err := w.Setup(nil); err != nil {
		t.Fatal(err)
	}
	if err := w.On(func(e *Experiment) (string, float64, error) {
		return "", 0, fmt.Errorf("node failure")
	}); err != nil {
		t.Fatal(err)
	}
	rep, _ := w.Analyze()
	if rep.Failed != rep.Total {
		t.Errorf("report = %+v", rep)
	}
	if !strings.Contains(rep.Experiments[0].FailMsg, "node failure") {
		t.Errorf("failmsg = %q", rep.Experiments[0].FailMsg)
	}
}

func TestLifecycleOrderEnforced(t *testing.T) {
	w, err := NewWorkspace("order", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(nil); err == nil {
		t.Error("Setup before Configure should fail")
	}
	if err := w.On(nil); err == nil {
		t.Error("On before Setup should fail")
	}
	if _, err := w.Analyze(); err == nil {
		t.Error("Analyze before Setup should fail")
	}
}

func TestZipLengthMismatchRejected(t *testing.T) {
	w, err := NewWorkspace("zip", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := `
ramble:
  applications:
    saxpy:
      workloads:
        problem:
          experiments:
            saxpy_{n}_{n_nodes}:
              variables:
                n: ['1', '2', '3']
                n_nodes: ['1', '2']
`
	if err := w.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(nil); err == nil || !strings.Contains(err.Error(), "equal lengths") {
		t.Errorf("err = %v", err)
	}
}

func TestDuplicateExperimentNamesRejected(t *testing.T) {
	w, err := NewWorkspace("dup", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := `
ramble:
  applications:
    saxpy:
      workloads:
        problem:
          experiments:
            saxpy_static:
              variables:
                n: ['1', '2']
`
	if err := w.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(nil); err == nil || !strings.Contains(err.Error(), "duplicate experiment name") {
		t.Errorf("err = %v", err)
	}
}

func TestUnknownApplicationRejected(t *testing.T) {
	w, err := NewWorkspace("unk", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := `
ramble:
  applications:
    not-an-app:
      workloads:
        problem:
          experiments:
            x:
              variables: {}
`
	if err := w.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(nil); err == nil {
		t.Error("unknown application should fail")
	}
}

func TestUnknownWorkloadRejected(t *testing.T) {
	w, err := NewWorkspace("wl", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := `
ramble:
  applications:
    saxpy:
      workloads:
        no-such-workload:
          experiments:
            x:
              variables: {}
`
	if err := w.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(nil); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestDerivedGeometry(t *testing.T) {
	w, err := NewWorkspace("geom", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := `
ramble:
  applications:
    saxpy:
      workloads:
        problem:
          experiments:
            saxpy_geom:
              variables:
                n_nodes: '4'
                processes_per_node: '16'
                n_threads: '2'
                n: '64'
`
	if err := w.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(nil); err != nil {
		t.Fatal(err)
	}
	e := w.Experiments[0]
	if e.NNodes != 4 || e.ProcsPerNode != 16 || e.NRanks != 64 || e.NThreads != 2 {
		t.Errorf("geometry = %d nodes %d ppn %d ranks %d threads",
			e.NNodes, e.ProcsPerNode, e.NRanks, e.NThreads)
	}
}

func TestApplicationRegistryValidation(t *testing.T) {
	bad := NewApplication("bad-app").AddWorkload("w", "nonexistent-exe")
	if err := bad.Validate(); err == nil {
		t.Error("workload with unknown executable should fail validation")
	}
	bad2 := NewApplication("bad2")
	if err := bad2.Validate(); err == nil {
		t.Error("application without workloads should fail")
	}
	bad3 := NewApplication("bad3").
		AddExecutable("e", "run", false).
		AddWorkload("w", "e").
		AddFOM("f", `(?P<x>\d+`, "x", "")
	if err := bad3.Validate(); err == nil {
		t.Error("bad regex should fail")
	}
	bad4 := NewApplication("bad4").
		AddExecutable("e", "run", false).
		AddWorkload("w", "e").
		AddFOM("f", `(?P<x>\d+)`, "missing_group", "")
	if err := bad4.Validate(); err == nil {
		t.Error("missing group should fail")
	}
}

func TestExtractFOMsAndSuccess(t *testing.T) {
	app, err := GetApplication("amg2023")
	if err != nil {
		t.Fatal(err)
	}
	output := `AMG2023 proxy: grid 32x32x32 per rank
Setup time: 0.123456 s
Solve time: 1.500000 s
Iterations: 12 (converged)
Figure of Merit (FOM_Solve): 2.6214e+06
Kernel done
`
	foms := app.ExtractFOMs(output)
	if foms["setup_time"] != "0.123456" || foms["solve_time"] != "1.500000" ||
		foms["iterations"] != "12" {
		t.Errorf("FOMs = %v", foms)
	}
	if err := app.CheckSuccess(output); err != nil {
		t.Errorf("success: %v", err)
	}
	if err := app.CheckSuccess("incomplete output"); err == nil {
		t.Error("missing criteria should fail")
	}
}

// TestExcludeFilters: the exclude construct prunes infeasible corners
// from the generated matrix.
func TestExcludeFilters(t *testing.T) {
	w, err := NewWorkspace("excl", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := `
ramble:
  applications:
    saxpy:
      workloads:
        problem:
          experiments:
            saxpy_{n}_{n_nodes}:
              variables:
                n: ['512', '1024']
                n_nodes: ['1', '2']
              matrices:
              - grid:
                - n
                - n_nodes
              exclude:
                variables:
                - n: '1024'
                  n_nodes: '1'
`
	if err := w.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(nil); err != nil {
		t.Fatal(err)
	}
	if len(w.Experiments) != 3 {
		names := []string{}
		for _, e := range w.Experiments {
			names = append(names, e.Name)
		}
		t.Fatalf("experiments = %v, want 3 (1024/1 excluded)", names)
	}
	for _, e := range w.Experiments {
		if e.Name == "saxpy_1024_1" {
			t.Error("excluded combination generated")
		}
	}
}

// TestPerExperimentTemplate: an experiment can carry its own
// execute_experiment.tpl (Figure 1a's per-variant template files).
func TestPerExperimentTemplate(t *testing.T) {
	w, err := NewWorkspace("tpl", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := `
ramble:
  applications:
    saxpy:
      workloads:
        problem:
          experiments:
            custom:
              template: |-
                #!/bin/bash
                # per-experiment template for {experiment_name}
                {command}
              variables:
                n: '4'
            standard:
              variables:
                n: '8'
`
	if err := w.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(nil); err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Experiment{}
	for _, e := range w.Experiments {
		byName[e.Name] = e
	}
	if !strings.Contains(byName["custom"].Script, "# per-experiment template for custom") {
		t.Errorf("custom template not used:\n%s", byName["custom"].Script)
	}
	if strings.Contains(byName["custom"].Script, "#SBATCH") {
		t.Error("custom template should replace the default entirely")
	}
	if !strings.Contains(byName["standard"].Script, "#SBATCH") {
		t.Errorf("sibling experiment lost the default template:\n%s", byName["standard"].Script)
	}
}
