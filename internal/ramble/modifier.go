package ramble

import (
	"fmt"
	"regexp"
	"sort"
)

// Modifier is Ramble's "abstract modifier" construct (Section 3.2):
// a reusable, repeatable change to experiment behavior — extra
// environment variables, extra workload variables, and extra figures
// of merit. Section 4.5 of the paper uses modifiers "to capture
// architecture-specific FOMs (e.g., hardware counters)".
type Modifier struct {
	Name        string
	Description string
	// Variables are applied as defaults (user-set values win).
	Variables map[string]string
	// EnvVars are added to the experiment environment.
	EnvVars map[string]string
	// FOMs are extracted from output in addition to the
	// application's own.
	FOMs []FOM
	// Success criteria added by the modifier.
	Success []SuccessCriterion
}

// Validate checks the modifier's regexes.
func (m *Modifier) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("ramble: modifier with empty name")
	}
	for _, f := range m.FOMs {
		re, err := regexp.Compile(f.Regex)
		if err != nil {
			return fmt.Errorf("ramble: modifier %s FOM %s: %w", m.Name, f.Name, err)
		}
		if f.GroupName != "" && !contains(re.SubexpNames(), f.GroupName) {
			return fmt.Errorf("ramble: modifier %s FOM %s: regex lacks group %q", m.Name, f.Name, f.GroupName)
		}
	}
	for _, s := range m.Success {
		if _, err := regexp.Compile(s.Match); err != nil {
			return fmt.Errorf("ramble: modifier %s success %s: %w", m.Name, s.Name, err)
		}
	}
	return nil
}

// ExtractFOMs runs the modifier's FOM regexes over output text.
func (m *Modifier) ExtractFOMs(output string) map[string]string {
	out := map[string]string{}
	for _, f := range m.FOMs {
		re := regexp.MustCompile(f.Regex)
		match := re.FindStringSubmatch(output)
		if match == nil {
			continue
		}
		val := match[0]
		if f.GroupName != "" {
			for gi, gn := range re.SubexpNames() {
				if gn == f.GroupName && gi < len(match) {
					val = match[gi]
				}
			}
		}
		out[f.Name] = val
	}
	return out
}

var modifierRegistry = map[string]*Modifier{}

// RegisterModifier adds a modifier definition; it panics on invalid
// definitions or duplicates (registration is init-time).
func RegisterModifier(m *Modifier) {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	if _, dup := modifierRegistry[m.Name]; dup {
		panic("ramble: duplicate modifier " + m.Name)
	}
	modifierRegistry[m.Name] = m
}

// GetModifier returns a registered modifier.
func GetModifier(name string) (*Modifier, error) {
	m, ok := modifierRegistry[name]
	if !ok {
		return nil, fmt.Errorf("ramble: unknown modifier %q (have %v)", name, ModifierNames())
	}
	return m, nil
}

// ModifierNames lists registered modifiers, sorted.
func ModifierNames() []string {
	out := make([]string, 0, len(modifierRegistry))
	for n := range modifierRegistry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	// caliper: always-on profiling (Section 5), configured through the
	// standard CALI_CONFIG environment the real library uses.
	RegisterModifier(&Modifier{
		Name:        "caliper",
		Description: "enable always-on Caliper profiling with a runtime report",
		Variables:   map[string]string{"caliper": "1"},
		EnvVars: map[string]string{
			"CALI_CONFIG": "runtime-report(output={experiment_run_dir}/{experiment_name}.cali)",
		},
	})
	// papi: architecture-specific hardware-counter FOMs (Section 4.5's
	// motivating example for modifiers).
	RegisterModifier(&Modifier{
		Name:        "papi",
		Description: "collect hardware counters and expose them as FOMs",
		Variables:   map[string]string{"papi": "1"},
		EnvVars:     map[string]string{"PAPI_EVENTS": "PAPI_FP_OPS,PAPI_L3_TCM"},
		FOMs: []FOM{
			{Name: "papi_fp_ops", Regex: `papi\.PAPI_FP_OPS: (?P<v>[0-9.e+]+)`, GroupName: "v", Units: "ops"},
			{Name: "papi_l3_tcm", Regex: `papi\.PAPI_L3_TCM: (?P<v>[0-9.e+]+)`, GroupName: "v", Units: "misses"},
		},
	})
}
