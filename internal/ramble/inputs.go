package ramble

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
)

// InputFile is a workload input an application needs before running
// — Section 3.2.3's "Downloading source and input files" step.
// Inputs are content-verified: fetching checks the recorded SHA-256,
// the same integrity discipline Spack applies to sources.
type InputFile struct {
	Name      string
	URL       string
	SHA256    string   // expected digest of the content
	Workloads []string // applicable workloads; empty = all
}

// AddInput declares a required input file on an application.
func (a *Application) AddInput(name, url, sha256sum string, workloads ...string) *Application {
	a.Inputs = append(a.Inputs, InputFile{
		Name: name, URL: url, SHA256: sha256sum, Workloads: workloads,
	})
	return a
}

// InputsFor returns the inputs a workload needs.
func (a *Application) InputsFor(workload string) []InputFile {
	var out []InputFile
	for _, in := range a.Inputs {
		if len(in.Workloads) == 0 || contains(in.Workloads, workload) {
			out = append(out, in)
		}
	}
	return out
}

// Fetcher retrieves the content behind a URL. The default fetcher
// synthesizes deterministic content from the URL (the simulation has
// no network); tests and deployments can substitute their own.
type Fetcher func(url string) ([]byte, error)

// DefaultFetcher deterministically derives content from the URL so
// that fetch + verify exercises the real integrity code path offline.
func DefaultFetcher(url string) ([]byte, error) {
	h := fnv.New64a()
	h.Write([]byte(url))
	seed := h.Sum64()
	buf := make([]byte, 4096)
	for i := range buf {
		seed = seed*6364136223846793005 + 1442695040888963407
		buf[i] = byte(seed >> 33)
	}
	header := fmt.Sprintf("# input fetched from %s\n", url)
	return append([]byte(header), buf...), nil
}

// ContentSHA256 computes the digest DefaultFetcher's content will
// have — used when registering applications with simulated inputs.
func ContentSHA256(url string) string {
	data, _ := DefaultFetcher(url)
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// FetchInputs downloads (or reuses) every input the workspace's
// experiments need into <root>/inputs/, verifying checksums. A digest
// mismatch is a hard error — corrupted inputs must never produce
// benchmark numbers.
func (w *Workspace) FetchInputs(fetch Fetcher) error {
	if fetch == nil {
		fetch = DefaultFetcher
	}
	dir := filepath.Join(w.Root, "inputs")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	done := map[string]bool{}
	for _, e := range w.Experiments {
		for _, in := range e.App.InputsFor(e.Workload) {
			if done[in.Name] {
				continue
			}
			done[in.Name] = true
			path := filepath.Join(dir, in.Name)
			if data, err := os.ReadFile(path); err == nil {
				if digestOK(data, in.SHA256) {
					continue // cached and intact
				}
				// Cached but corrupt: refetch.
			}
			data, err := fetch(in.URL)
			if err != nil {
				return fmt.Errorf("ramble: fetching input %s from %s: %w", in.Name, in.URL, err)
			}
			if !digestOK(data, in.SHA256) {
				sum := sha256.Sum256(data)
				return fmt.Errorf("ramble: input %s: checksum mismatch (got %s, want %s)",
					in.Name, hex.EncodeToString(sum[:])[:16], strings.TrimSpace(in.SHA256)[:16])
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

func digestOK(data []byte, want string) bool {
	if want == "" {
		return false
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]) == strings.ToLower(strings.TrimSpace(want))
}
