package ramble

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// Executable is one command an application can run
// (Figure 8: executable('p', 'saxpy -n {n}', use_mpi=True)).
type Executable struct {
	Name     string
	Template string // command with {variable} references
	UseMPI   bool   // prefix with the system's mpi_command
}

// Workload names a set of executables plus required inputs
// (Figure 8: workload('problem', executables=['p'])).
type Workload struct {
	Name        string
	Executables []string
	Inputs      []string
}

// WorkloadVariable declares a tunable with a default
// (Figure 8: workload_variable('n', default='1', ...)).
type WorkloadVariable struct {
	Name        string
	Default     string
	Description string
	Workloads   []string // applicable workloads; empty = all
}

// FOM is a figure of merit extracted from experiment output by regex
// (Figure 8: figure_of_merit("success", fom_regex=..., group_name=...)).
type FOM struct {
	Name      string
	Regex     string
	GroupName string
	Units     string
}

// SuccessCriterion decides pass/fail
// (Figure 8: success_criteria('pass', mode='string', match=...)).
type SuccessCriterion struct {
	Name  string
	Mode  string // "string": Match regex must appear in the output file
	Match string
	File  string // template path; informational in the simulation
}

// Application is the Ramble-side description of a benchmark — the Go
// analogue of application.py. It carries no system-specific
// information (Table 1, column "Benchmark-specific").
type Application struct {
	Name        string
	Description string
	Executables map[string]Executable
	Workloads   map[string]Workload
	Variables   []WorkloadVariable
	Inputs      []InputFile
	FOMs        []FOM
	Success     []SuccessCriterion
}

// NewApplication returns an empty application definition.
func NewApplication(name string) *Application {
	return &Application{
		Name:        name,
		Executables: map[string]Executable{},
		Workloads:   map[string]Workload{},
	}
}

// AddExecutable declares an executable.
func (a *Application) AddExecutable(name, template string, useMPI bool) *Application {
	a.Executables[name] = Executable{Name: name, Template: template, UseMPI: useMPI}
	return a
}

// AddWorkload declares a workload over executables.
func (a *Application) AddWorkload(name string, executables ...string) *Application {
	a.Workloads[name] = Workload{Name: name, Executables: executables}
	return a
}

// AddVariable declares a workload variable.
func (a *Application) AddVariable(name, def, desc string, workloads ...string) *Application {
	a.Variables = append(a.Variables, WorkloadVariable{
		Name: name, Default: def, Description: desc, Workloads: workloads,
	})
	return a
}

// AddFOM declares a figure of merit.
func (a *Application) AddFOM(name, regex, group, units string) *Application {
	a.FOMs = append(a.FOMs, FOM{Name: name, Regex: regex, GroupName: group, Units: units})
	return a
}

// AddSuccess declares a success criterion.
func (a *Application) AddSuccess(name, mode, match, file string) *Application {
	a.Success = append(a.Success, SuccessCriterion{Name: name, Mode: mode, Match: match, File: file})
	return a
}

// Validate checks internal consistency: workloads reference declared
// executables, variables reference declared workloads, FOM regexes
// compile and contain their group.
func (a *Application) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("ramble: application with empty name")
	}
	if len(a.Workloads) == 0 {
		return fmt.Errorf("ramble: application %s has no workloads", a.Name)
	}
	for _, w := range a.Workloads {
		for _, ex := range w.Executables {
			if _, ok := a.Executables[ex]; !ok {
				return fmt.Errorf("ramble: %s workload %s references unknown executable %q", a.Name, w.Name, ex)
			}
		}
	}
	for _, v := range a.Variables {
		for _, wl := range v.Workloads {
			if _, ok := a.Workloads[wl]; !ok {
				return fmt.Errorf("ramble: %s variable %s references unknown workload %q", a.Name, v.Name, wl)
			}
		}
	}
	for _, f := range a.FOMs {
		re, err := regexp.Compile(f.Regex)
		if err != nil {
			return fmt.Errorf("ramble: %s FOM %s: %w", a.Name, f.Name, err)
		}
		if f.GroupName != "" && !contains(re.SubexpNames(), f.GroupName) {
			return fmt.Errorf("ramble: %s FOM %s: regex lacks group %q", a.Name, f.Name, f.GroupName)
		}
	}
	for _, s := range a.Success {
		if s.Mode != "string" {
			return fmt.Errorf("ramble: %s success %s: unsupported mode %q", a.Name, s.Name, s.Mode)
		}
		if _, err := regexp.Compile(s.Match); err != nil {
			return fmt.Errorf("ramble: %s success %s: %w", a.Name, s.Name, err)
		}
	}
	return nil
}

// DefaultVars returns the defaults applicable to a workload.
func (a *Application) DefaultVars(workload string) map[string]string {
	out := map[string]string{}
	for _, v := range a.Variables {
		if len(v.Workloads) == 0 || contains(v.Workloads, workload) {
			out[v.Name] = v.Default
		}
	}
	return out
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Application registry (the Benchpark repo/ overlay carries these)
// ---------------------------------------------------------------------------

var appRegistry = map[string]*Application{}

// RegisterApplication adds an application definition; it panics on an
// invalid definition or duplicate (registration is init-time).
func RegisterApplication(a *Application) {
	if err := a.Validate(); err != nil {
		panic(err)
	}
	if _, dup := appRegistry[a.Name]; dup {
		panic("ramble: duplicate application " + a.Name)
	}
	appRegistry[a.Name] = a
}

// GetApplication returns a registered application.
func GetApplication(name string) (*Application, error) {
	a, ok := appRegistry[name]
	if !ok {
		return nil, fmt.Errorf("ramble: unknown application %q (have %v)", name, ApplicationNames())
	}
	return a, nil
}

// ApplicationNames lists registered applications, sorted.
func ApplicationNames() []string {
	out := make([]string, 0, len(appRegistry))
	for n := range appRegistry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	// saxpy — verbatim from Figure 8.
	RegisterApplication(NewApplication("saxpy").
		AddExecutable("p", "saxpy -n {n}", true).
		AddWorkload("problem", "p").
		AddVariable("n", "1", "problem size", "problem").
		AddFOM("success", `(?P<done>Kernel done)`, "done", "").
		AddFOM("saxpy_time", `saxpy_time: (?P<time>[0-9.]+) s`, "time", "s").
		AddSuccess("pass", "string", `Kernel done`, "{experiment_run_dir}/{experiment_name}.out"))

	// amg2023 — the second Section 4 benchmark. problem2 needs a
	// downloaded input deck (checksum-verified, Section 3.2.3).
	RegisterApplication(NewApplication("amg2023").
		AddExecutable("amg", "amg -n {nx} {ny} {nz} -P {px} {py} {pz}", true).
		AddWorkload("problem1", "amg").
		AddWorkload("problem2", "amg").
		AddInput("amg_problem2.deck", "https://benchmarks.example/amg/problem2.deck",
			ContentSHA256("https://benchmarks.example/amg/problem2.deck"), "problem2").
		AddVariable("nx", "32", "local grid x", "problem1", "problem2").
		AddVariable("ny", "32", "local grid y", "problem1", "problem2").
		AddVariable("nz", "32", "local grid z", "problem1", "problem2").
		AddVariable("px", "1", "process grid x").
		AddVariable("py", "1", "process grid y").
		AddVariable("pz", "{n_ranks}", "process grid z (default: 1-D slabs)").
		AddVariable("tolerance", "1e-8", "relative residual tolerance").
		AddVariable("max_iterations", "200", "CG iteration cap").
		AddFOM("setup_time", `Setup time: (?P<t>[0-9.]+) s`, "t", "s").
		AddFOM("solve_time", `Solve time: (?P<t>[0-9.]+) s`, "t", "s").
		AddFOM("iterations", `Iterations: (?P<it>\d+)`, "it", "").
		AddFOM("fom", `Figure of Merit \(FOM_Solve\): (?P<fom>[0-9.e+]+)`, "fom", "DOF*iter/s").
		AddSuccess("pass", "string", `Kernel done`, "{experiment_run_dir}/{experiment_name}.out").
		AddSuccess("converged", "string", `converged`, "{experiment_run_dir}/{experiment_name}.out"))

	// stream — bandwidth tracking.
	RegisterApplication(NewApplication("stream").
		AddExecutable("triad", "stream -n {n} -i {iterations}", true).
		AddWorkload("triad", "triad").
		AddVariable("n", "10000000", "array elements", "triad").
		AddVariable("iterations", "10", "triad repetitions", "triad").
		AddFOM("triad_bw", `Triad: (?P<bw>[0-9.]+) GB/s`, "bw", "GB/s").
		AddSuccess("pass", "string", `Kernel done`, "{experiment_run_dir}/{experiment_name}.out"))

	// lulesh — shock-hydro proxy application.
	RegisterApplication(NewApplication("lulesh").
		AddExecutable("lulesh2.0", "lulesh2.0 -s {size} -i {iterations}", true).
		AddWorkload("hydro", "lulesh2.0").
		AddVariable("size", "24", "elements per edge per rank", "hydro").
		AddVariable("iterations", "40", "timesteps", "hydro").
		AddFOM("fom_zs", `FOM \(z/s\): (?P<z>[0-9.e+]+)`, "z", "zones/s").
		AddFOM("grind_time", `Grind time \(us/z/c\): (?P<g>[0-9.]+)`, "g", "us/zone/cycle").
		AddSuccess("pass", "string", `Kernel done`, "{experiment_run_dir}/{experiment_name}.out"))

	// hpcg — conjugate-gradients rating benchmark.
	RegisterApplication(NewApplication("hpcg").
		AddExecutable("xhpcg", "xhpcg --nx={nx} --ny={ny} --nz={nz}", true).
		AddWorkload("hpcg", "xhpcg").
		AddVariable("nx", "32", "local grid x", "hpcg").
		AddVariable("ny", "32", "local grid y", "hpcg").
		AddVariable("nz", "32", "local grid z", "hpcg").
		AddVariable("iterations", "50", "CG iterations", "hpcg").
		AddFOM("gflops", `HPCG rating \(GFLOP/s\): (?P<g>[0-9.]+)`, "g", "GFLOP/s").
		AddFOM("residual", `Final residual: (?P<r>[0-9.e+-]+)`, "r", "").
		AddSuccess("pass", "string", `Kernel done`, "{experiment_run_dir}/{experiment_name}.out"))

	// gups — HPCC RandomAccess.
	RegisterApplication(NewApplication("gups").
		AddExecutable("ra", "gups -m {log2_table_size} -u {updates_per_rank}", true).
		AddWorkload("gups", "ra").
		AddVariable("log2_table_size", "20", "log2 of per-rank table entries", "gups").
		AddVariable("updates_per_rank", "4096", "updates per rank per round", "gups").
		AddVariable("rounds", "4", "alltoall rounds", "gups").
		AddFOM("gups", `GUPS: (?P<g>[0-9.]+)`, "g", "GUP/s").
		AddSuccess("pass", "string", `Kernel done`, "{experiment_run_dir}/{experiment_name}.out"))

	// osu-micro-benchmarks — the MPI_Bcast experiment behind Figure 14.
	RegisterApplication(NewApplication("osu-micro-benchmarks").
		AddExecutable("bcast", "osu_bcast -m {message_size} -i {iterations}", true).
		AddExecutable("allreduce", "osu_allreduce -m {message_size} -i {iterations}", true).
		AddExecutable("latency", "osu_latency -m {message_size} -i {iterations}", true).
		AddWorkload("osu_bcast", "bcast").
		AddWorkload("osu_allreduce", "allreduce").
		AddWorkload("osu_latency", "latency").
		AddVariable("message_size", "8192", "message size in bytes").
		AddVariable("iterations", "32000", "number of collective calls").
		AddFOM("total_time", `Total time: (?P<t>[0-9.]+) s`, "t", "s").
		AddFOM("avg_latency", `Avg latency: (?P<lat>[0-9.]+) us`, "lat", "us").
		AddSuccess("pass", "string", `Kernel done`, "{experiment_run_dir}/{experiment_name}.out"))
}

// renderCommand renders a workload's command lines for an experiment.
func renderCommand(app *Application, workload string, ex *Expander, mpiCommand string) ([]string, error) {
	wl, ok := app.Workloads[workload]
	if !ok {
		return nil, fmt.Errorf("ramble: application %s has no workload %q (have %v)",
			app.Name, workload, workloadNames(app))
	}
	var cmds []string
	for _, exe := range wl.Executables {
		e := app.Executables[exe]
		cmd, err := ex.Expand(e.Template)
		if err != nil {
			return nil, err
		}
		if e.UseMPI && mpiCommand != "" {
			mc, err := ex.Expand(mpiCommand)
			if err != nil {
				return nil, err
			}
			cmd = mc + " " + cmd
		}
		cmds = append(cmds, cmd)
	}
	return cmds, nil
}

func workloadNames(app *Application) []string {
	out := make([]string, 0, len(app.Workloads))
	for n := range app.Workloads {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ExtractFOMs runs the application's FOM regexes over output text.
func (a *Application) ExtractFOMs(output string) map[string]string {
	out := map[string]string{}
	for _, f := range a.FOMs {
		re := regexp.MustCompile(f.Regex)
		m := re.FindStringSubmatch(output)
		if m == nil {
			continue
		}
		val := m[0]
		if f.GroupName != "" {
			for gi, gn := range re.SubexpNames() {
				if gn == f.GroupName && gi < len(m) {
					val = m[gi]
				}
			}
		}
		out[f.Name] = val
	}
	return out
}

// CheckSuccess evaluates all success criteria against output text,
// returning nil when they all pass.
func (a *Application) CheckSuccess(output string) error {
	var failed []string
	for _, s := range a.Success {
		re := regexp.MustCompile(s.Match)
		if !re.MatchString(output) {
			failed = append(failed, s.Name)
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("ramble: success criteria failed: %s", strings.Join(failed, ", "))
	}
	return nil
}
