// Package ramble is the experimentation framework of Section 3.2:
// applications declare how experiments are created (executables,
// workloads, variables, figures of merit, success criteria), and a
// workspace turns a concise YAML configuration into a concrete set of
// experiments — expanding variables, crossing matrices, rendering
// batch-script templates — then executes them and extracts metrics.
//
// The five-command workflow of Figure 5 maps to:
//
//	ramble workspace create  -> NewWorkspace
//	ramble workspace edit    -> Workspace.Configure (ramble.yaml)
//	ramble workspace setup   -> Workspace.Setup
//	ramble on                -> Workspace.On
//	ramble workspace analyze -> Workspace.Analyze
package ramble

import (
	"fmt"
	"strconv"
	"strings"
)

// Expander substitutes {variable} references in templates, with
// recursive expansion and simple arithmetic ({a}*{b} inside one brace
// pair: {n_nodes*processes_per_node}).
type Expander struct {
	vars map[string]string
}

// NewExpander returns an expander over the given variables.
func NewExpander(vars map[string]string) *Expander {
	return &Expander{vars: vars}
}

// Set defines or overrides a variable.
func (e *Expander) Set(name, value string) {
	if e.vars == nil {
		e.vars = map[string]string{}
	}
	e.vars[name] = value
}

// Get returns the raw (unexpanded) value of a variable.
func (e *Expander) Get(name string) (string, bool) {
	v, ok := e.vars[name]
	return v, ok
}

// Vars returns a copy of the variable map.
func (e *Expander) Vars() map[string]string {
	out := make(map[string]string, len(e.vars))
	for k, v := range e.vars {
		out[k] = v
	}
	return out
}

const maxDepth = 32

// Expand substitutes all {…} references in s. Unknown variables are
// an error, as is unbounded recursion.
func (e *Expander) Expand(s string) (string, error) {
	return e.expand(s, 0)
}

func (e *Expander) expand(s string, depth int) (string, error) {
	if depth > maxDepth {
		return "", fmt.Errorf("ramble: expansion depth exceeded (circular variable reference?) in %q", s)
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		c := s[i]
		if c != '{' {
			b.WriteByte(c)
			i++
			continue
		}
		// find matching close brace (no nesting inside a reference)
		j := strings.IndexByte(s[i:], '}')
		if j < 0 {
			return "", fmt.Errorf("ramble: unbalanced '{' in %q", s)
		}
		expr := s[i+1 : i+j]
		val, err := e.eval(expr, depth)
		if err != nil {
			return "", err
		}
		b.WriteString(val)
		i += j + 1
	}
	return b.String(), nil
}

// eval resolves one brace expression: a variable name, a numeric
// literal, or a left-to-right arithmetic chain a*b+c over variables
// and literals (*, /, +, -, // for integer division).
func (e *Expander) eval(expr string, depth int) (string, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return "", fmt.Errorf("ramble: empty expansion {}")
	}
	tokens, err := tokenizeExpr(expr)
	if err != nil {
		return "", err
	}
	if len(tokens) == 1 {
		return e.resolveToken(tokens[0], depth)
	}
	// arithmetic chain: operand (op operand)*
	acc, err := e.numericToken(tokens[0], depth)
	if err != nil {
		return "", err
	}
	for i := 1; i < len(tokens); i += 2 {
		if i+1 >= len(tokens) {
			return "", fmt.Errorf("ramble: trailing operator in {%s}", expr)
		}
		rhs, err := e.numericToken(tokens[i+1], depth)
		if err != nil {
			return "", err
		}
		switch tokens[i] {
		case "*":
			acc *= rhs
		case "+":
			acc += rhs
		case "-":
			acc -= rhs
		case "/":
			if rhs == 0 {
				return "", fmt.Errorf("ramble: division by zero in {%s}", expr)
			}
			acc /= rhs
		case "//":
			if rhs == 0 {
				return "", fmt.Errorf("ramble: division by zero in {%s}", expr)
			}
			acc = float64(int64(acc) / int64(rhs))
		default:
			return "", fmt.Errorf("ramble: bad operator %q in {%s}", tokens[i], expr)
		}
	}
	return formatNumber(acc), nil
}

func (e *Expander) resolveToken(tok string, depth int) (string, error) {
	if isNumber(tok) {
		return tok, nil
	}
	raw, ok := e.vars[tok]
	if !ok {
		return "", fmt.Errorf("ramble: undefined variable %q", tok)
	}
	return e.expand(raw, depth+1)
}

func (e *Expander) numericToken(tok string, depth int) (float64, error) {
	s, err := e.resolveToken(tok, depth)
	if err != nil {
		return 0, err
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("ramble: %q = %q is not numeric", tok, s)
	}
	return f, nil
}

// tokenizeExpr splits "a*b + 3" into operands and operators.
func tokenizeExpr(expr string) ([]string, error) {
	var tokens []string
	i := 0
	for i < len(expr) {
		c := expr[i]
		switch {
		case c == ' ':
			i++
		case c == '*' || c == '+' || c == '-' || c == '/':
			// Allow '//' integer division.
			if c == '/' && i+1 < len(expr) && expr[i+1] == '/' {
				tokens = append(tokens, "//")
				i += 2
			} else {
				tokens = append(tokens, string(c))
				i++
			}
		default:
			j := i
			for j < len(expr) && expr[j] != ' ' && expr[j] != '*' && expr[j] != '+' &&
				expr[j] != '-' && expr[j] != '/' {
				j++
			}
			tokens = append(tokens, expr[i:j])
			i = j
		}
	}
	if len(tokens) == 0 {
		return nil, fmt.Errorf("ramble: empty expression")
	}
	return tokens, nil
}

func isNumber(s string) bool {
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}

func formatNumber(f float64) string {
	if f == float64(int64(f)) {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
