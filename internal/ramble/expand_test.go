package ramble

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestExpandSimple(t *testing.T) {
	ex := NewExpander(map[string]string{"n": "512", "name": "saxpy"})
	got, err := ex.Expand("{name} -n {n}")
	if err != nil {
		t.Fatal(err)
	}
	if got != "saxpy -n 512" {
		t.Errorf("got %q", got)
	}
}

func TestExpandRecursive(t *testing.T) {
	ex := NewExpander(map[string]string{
		"mpi_command":        "srun -N {n_nodes} -n {n_ranks}",
		"n_nodes":            "2",
		"n_ranks":            "{processes_per_node*n_nodes}",
		"processes_per_node": "8",
	})
	got, err := ex.Expand("{mpi_command}")
	if err != nil {
		t.Fatal(err)
	}
	if got != "srun -N 2 -n 16" {
		t.Errorf("got %q", got)
	}
}

func TestExpandArithmetic(t *testing.T) {
	ex := NewExpander(map[string]string{"a": "6", "b": "4"})
	cases := map[string]string{
		"{a*b}":   "24",
		"{a+b}":   "10",
		"{a-b}":   "2",
		"{a/b}":   "1.5",
		"{a//b}":  "1",
		"{a*b+a}": "30", // left-to-right
		"{a * b}": "24",
		"{2*a}":   "12",
		"{100}":   "100",
	}
	for in, want := range cases {
		got, err := ex.Expand(in)
		if err != nil {
			t.Errorf("%s: %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("%s = %q, want %q", in, got, want)
		}
	}
}

func TestExpandErrors(t *testing.T) {
	ex := NewExpander(map[string]string{"loop": "{loop}", "s": "abc"})
	for _, in := range []string{
		"{missing}",
		"{loop}",    // circular
		"{unclosed", // unbalanced
		"{}",        // empty
		"{s*2}",     // non-numeric operand
		"{s }{",     // trailing open
		"{2*}",      // trailing operator
	} {
		if _, err := ex.Expand(in); err == nil {
			t.Errorf("Expand(%q): expected error", in)
		}
	}
}

func TestExpandDivisionByZero(t *testing.T) {
	ex := NewExpander(map[string]string{"z": "0"})
	if _, err := ex.Expand("{4/z}"); err == nil {
		t.Error("division by zero should error")
	}
	if _, err := ex.Expand("{4//z}"); err == nil {
		t.Error("integer division by zero should error")
	}
}

func TestExpandFigure10Name(t *testing.T) {
	ex := NewExpander(map[string]string{
		"n": "512", "n_nodes": "1", "n_ranks": "8", "n_threads": "2",
	})
	got, err := ex.Expand("saxpy_{n}_{n_nodes}_{n_ranks}_{n_threads}")
	if err != nil {
		t.Fatal(err)
	}
	if got != "saxpy_512_1_8_2" {
		t.Errorf("got %q", got)
	}
}

// Property: text without braces passes through unchanged.
func TestQuickExpandPassthrough(t *testing.T) {
	ex := NewExpander(nil)
	f := func(s string) bool {
		if strings.ContainsAny(s, "{}") {
			return true
		}
		got, err := ex.Expand(s)
		return err == nil && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetAndVars(t *testing.T) {
	ex := NewExpander(nil)
	ex.Set("k", "v")
	if v, ok := ex.Get("k"); !ok || v != "v" {
		t.Error("Set/Get")
	}
	vars := ex.Vars()
	vars["k"] = "mutated"
	if v, _ := ex.Get("k"); v != "v" {
		t.Error("Vars() must return a copy")
	}
}
