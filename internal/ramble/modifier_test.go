package ramble

import (
	"strings"
	"testing"
)

func TestBuiltinModifiersRegistered(t *testing.T) {
	names := ModifierNames()
	for _, want := range []string{"caliper", "papi"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("modifier %s not registered (have %v)", want, names)
		}
	}
	if _, err := GetModifier("nonexistent"); err == nil {
		t.Error("unknown modifier should error")
	}
}

func TestModifierValidation(t *testing.T) {
	bad := &Modifier{Name: "bad", FOMs: []FOM{{Name: "f", Regex: "(?P<x>"}}}
	if err := bad.Validate(); err == nil {
		t.Error("bad regex should fail validation")
	}
	bad2 := &Modifier{Name: "bad2", FOMs: []FOM{{Name: "f", Regex: `(?P<x>\d+)`, GroupName: "missing"}}}
	if err := bad2.Validate(); err == nil {
		t.Error("missing group should fail validation")
	}
	if err := (&Modifier{}).Validate(); err == nil {
		t.Error("empty name should fail validation")
	}
}

func TestModifierExtractFOMs(t *testing.T) {
	papi, err := GetModifier("papi")
	if err != nil {
		t.Fatal(err)
	}
	out := papi.ExtractFOMs("papi.PAPI_FP_OPS: 1.234000e+09\npapi.PAPI_L3_TCM: 5.0e+06\n")
	if out["papi_fp_ops"] != "1.234000e+09" {
		t.Errorf("fp_ops = %q", out["papi_fp_ops"])
	}
	if out["papi_l3_tcm"] != "5.0e+06" {
		t.Errorf("l3_tcm = %q", out["papi_l3_tcm"])
	}
	if got := papi.ExtractFOMs("no counters here"); len(got) != 0 {
		t.Errorf("spurious FOMs: %v", got)
	}
}

// TestModifiersInWorkspace exercises the Section 4.5 flow: a workload
// with the papi and caliper modifiers gets extra variables, env vars,
// and FOMs extracted from the hardware-counter output.
func TestModifiersInWorkspace(t *testing.T) {
	w, err := NewWorkspace("mods", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := `
ramble:
  applications:
    saxpy:
      workloads:
        problem:
          modifiers:
          - papi
          - caliper
          experiments:
            saxpy_mod_{n}:
              variables:
                n: '512'
`
	if err := w.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(nil); err != nil {
		t.Fatal(err)
	}
	if len(w.Experiments) != 1 {
		t.Fatalf("experiments = %d", len(w.Experiments))
	}
	e := w.Experiments[0]
	if len(e.Modifiers) != 2 {
		t.Errorf("modifiers = %v", e.Modifiers)
	}
	// Modifier variables applied as defaults.
	if v, _ := e.Expander.Get("papi"); v != "1" {
		t.Errorf("papi var = %q", v)
	}
	if v, _ := e.Expander.Get("caliper"); v != "1" {
		t.Errorf("caliper var = %q", v)
	}
	// Modifier env vars rendered (with expansion of run dir).
	if e.Env["PAPI_EVENTS"] != "PAPI_FP_OPS,PAPI_L3_TCM" {
		t.Errorf("env = %v", e.Env)
	}
	if !strings.Contains(e.Env["CALI_CONFIG"], e.Dir) {
		t.Errorf("CALI_CONFIG = %q should reference run dir", e.Env["CALI_CONFIG"])
	}

	// Execute with PAPI-style output; analyze must pick up the
	// modifier FOMs alongside the application's.
	if err := w.On(func(*Experiment) (string, float64, error) {
		return "saxpy_time: 0.002 s\npapi.PAPI_FP_OPS: 8.192000e+03\npapi.PAPI_L3_TCM: 7.680000e+02\nKernel done\n", 0.002, nil
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := w.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	foms := rep.Experiments[0].FOMs
	if foms["saxpy_time"] != "0.002" {
		t.Errorf("app FOM lost: %v", foms)
	}
	if foms["papi_fp_ops"] != "8.192000e+03" || foms["papi_l3_tcm"] != "7.680000e+02" {
		t.Errorf("modifier FOMs = %v", foms)
	}
}

func TestUnknownModifierRejected(t *testing.T) {
	w, err := NewWorkspace("badmod", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := `
ramble:
  applications:
    saxpy:
      workloads:
        problem:
          modifiers: [not-a-modifier]
          experiments:
            x:
              variables:
                n: '1'
`
	if err := w.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(nil); err == nil || !strings.Contains(err.Error(), "unknown modifier") {
		t.Errorf("err = %v", err)
	}
}

func TestExperimentLevelModifier(t *testing.T) {
	w, err := NewWorkspace("expmod", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := `
ramble:
  applications:
    saxpy:
      workloads:
        problem:
          experiments:
            with_papi:
              modifiers: [papi]
              variables:
                n: '1'
            without:
              variables:
                n: '2'
`
	if err := w.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(nil); err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Experiment{}
	for _, e := range w.Experiments {
		byName[e.Name] = e
	}
	if _, ok := byName["with_papi"].Expander.Get("papi"); !ok {
		t.Error("experiment-level modifier not applied")
	}
	if _, ok := byName["without"].Expander.Get("papi"); ok {
		t.Error("modifier leaked into sibling experiment")
	}
}

// TestUserVariableBeatsModifierDefault: modifiers contribute defaults.
func TestUserVariableBeatsModifierDefault(t *testing.T) {
	w, err := NewWorkspace("prec", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := `
ramble:
  applications:
    saxpy:
      workloads:
        problem:
          modifiers: [papi]
          experiments:
            x:
              variables:
                n: '1'
                papi: '0'
`
	if err := w.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(nil); err != nil {
		t.Fatal(err)
	}
	if v, _ := w.Experiments[0].Expander.Get("papi"); v != "0" {
		t.Errorf("papi = %q, user value should win", v)
	}
}
