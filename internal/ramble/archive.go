package ramble

import (
	"archive/tar"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Archive bundles the workspace's configs, rendered scripts, and
// experiment outputs into a tar.gz — the shareable artifact Section 5
// envisions when collaborators "contribute the performance results of
// the benchmarks as they execute them on their systems". The archive
// carries everything needed to audit how each number was produced.
func (w *Workspace) Archive(outPath string) error {
	if !w.setupDone {
		return fmt.Errorf("ramble: workspace %s has nothing to archive (run Setup first)", w.Name)
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	gz := gzip.NewWriter(f)
	defer gz.Close()
	tw := tar.NewWriter(gz)
	defer tw.Close()

	addFile := func(absPath, relPath string) error {
		data, err := os.ReadFile(absPath)
		if err != nil {
			return err
		}
		hdr := &tar.Header{
			Name: relPath,
			Mode: 0o644,
			Size: int64(len(data)),
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		_, err = tw.Write(data)
		return err
	}

	return filepath.Walk(w.Root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(w.Root, path)
		if err != nil {
			return err
		}
		return addFile(path, filepath.ToSlash(rel))
	})
}

// ExtractArchive unpacks a workspace archive into dir and returns the
// relative paths extracted (sorted by archive order). Paths escaping
// the target directory are rejected.
func ExtractArchive(archivePath, dir string) ([]string, error) {
	f, err := os.Open(archivePath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("ramble: bad archive: %w", err)
	}
	defer gz.Close()
	tr := tar.NewReader(gz)
	var out []string
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		clean := filepath.Clean(hdr.Name)
		if strings.HasPrefix(clean, "..") || filepath.IsAbs(clean) {
			return nil, fmt.Errorf("ramble: archive entry %q escapes the target directory", hdr.Name)
		}
		dst := filepath.Join(dir, clean)
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return nil, err
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(dst, data, 0o644); err != nil {
			return nil, err
		}
		out = append(out, clean)
	}
	return out, nil
}
