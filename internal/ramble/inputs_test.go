package ramble

import (
	"archive/tar"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func problem2Workspace(t *testing.T) *Workspace {
	t.Helper()
	w, err := NewWorkspace("inputs", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := `
ramble:
  applications:
    amg2023:
      workloads:
        problem2:
          experiments:
            amg_p2:
              variables:
                nx: '8'
                ny: '8'
                nz: '8'
`
	if err := w.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestFetchInputsVerified(t *testing.T) {
	w := problem2Workspace(t)
	if err := w.Setup(nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(w.Root, "inputs", "amg_problem2.deck")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("input not fetched: %v", err)
	}
	if !strings.Contains(string(data), "fetched from https://benchmarks.example") {
		t.Errorf("content = %q...", data[:40])
	}
	// Second setup reuses the cached file (fetcher would error).
	w2 := problem2Workspace(t)
	w2.Root = w.Root
	if err := w2.Setup(nil); err != nil {
		t.Fatal(err)
	}
}

func TestFetchInputsChecksumMismatch(t *testing.T) {
	w := problem2Workspace(t)
	// Generate experiments first, then fetch with a corrupting fetcher.
	if err := w.Setup(nil); err != nil {
		t.Fatal(err)
	}
	// Remove the good input and refetch corrupted content.
	if err := os.Remove(filepath.Join(w.Root, "inputs", "amg_problem2.deck")); err != nil {
		t.Fatal(err)
	}
	err := w.FetchInputs(func(url string) ([]byte, error) {
		return []byte("corrupted mirror content"), nil
	})
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Errorf("err = %v", err)
	}
}

func TestFetchInputsCorruptCacheRefetched(t *testing.T) {
	w := problem2Workspace(t)
	if err := w.Setup(nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(w.Root, "inputs", "amg_problem2.deck")
	if err := os.WriteFile(path, []byte("bitrot"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Fetch again: the corrupt cache entry must be replaced.
	if err := w.FetchInputs(nil); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if string(data) == "bitrot" {
		t.Error("corrupt cached input was not refetched")
	}
}

func TestFetchInputsFetcherError(t *testing.T) {
	w := problem2Workspace(t)
	if err := w.Setup(nil); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(w.Root, "inputs", "amg_problem2.deck")); err != nil {
		t.Fatal(err)
	}
	err := w.FetchInputs(func(url string) ([]byte, error) {
		return nil, fmt.Errorf("mirror unreachable")
	})
	if err == nil || !strings.Contains(err.Error(), "mirror unreachable") {
		t.Errorf("err = %v", err)
	}
}

func TestWorkloadWithoutInputsFetchesNothing(t *testing.T) {
	w, err := NewWorkspace("noinputs", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := `
ramble:
  applications:
    saxpy:
      workloads:
        problem:
          experiments:
            s:
              variables:
                n: '4'
`
	if err := w.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(nil); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(filepath.Join(w.Root, "inputs"))
	if len(entries) != 0 {
		t.Errorf("unexpected inputs: %v", entries)
	}
}

func TestArchiveRoundTrip(t *testing.T) {
	w := problem2Workspace(t)
	if err := w.Setup(nil); err != nil {
		t.Fatal(err)
	}
	if err := w.On(func(e *Experiment) (string, float64, error) {
		return "Kernel done\n", 0.1, nil
	}); err != nil {
		t.Fatal(err)
	}
	archive := filepath.Join(t.TempDir(), "ws.tar.gz")
	if err := w.Archive(archive); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	files, err := ExtractArchive(archive, dir)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(files, "\n")
	for _, want := range []string{
		"configs/ramble.yaml",
		"inputs/amg_problem2.deck",
		"experiments/amg2023/problem2/amg_p2/execute_experiment.sh",
		"experiments/amg2023/problem2/amg_p2/amg_p2.out",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("archive missing %s; has:\n%s", want, joined)
		}
	}
	// Extracted output is intact.
	data, err := os.ReadFile(filepath.Join(dir, "experiments/amg2023/problem2/amg_p2/amg_p2.out"))
	if err != nil || !strings.Contains(string(data), "Kernel done") {
		t.Errorf("extracted output: %q, %v", data, err)
	}
}

func TestArchiveBeforeSetupRejected(t *testing.T) {
	w := problem2Workspace(t)
	if err := w.Archive(filepath.Join(t.TempDir(), "x.tar.gz")); err == nil {
		t.Error("archive before setup should fail")
	}
}

func TestExtractArchiveRejectsTraversal(t *testing.T) {
	// Hand-craft a malicious archive.
	dir := t.TempDir()
	path := filepath.Join(dir, "evil.tar.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeEvilArchive(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := ExtractArchive(path, t.TempDir()); err == nil {
		t.Error("path traversal should be rejected")
	}
}

// writeEvilArchive writes a tar.gz containing a ../ entry.
func writeEvilArchive(w io.Writer) error {
	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	data := []byte("pwned")
	if err := tw.WriteHeader(&tar.Header{Name: "../escape.txt", Mode: 0o644, Size: int64(len(data))}); err != nil {
		return err
	}
	if _, err := tw.Write(data); err != nil {
		return err
	}
	if err := tw.Close(); err != nil {
		return err
	}
	return gz.Close()
}
