package bench

import (
	"fmt"

	"repro/internal/caliper"
	"repro/internal/mpisim"
)

func init() {
	register(Benchmark{
		Name:        "osu-micro-benchmarks",
		Description: "OSU-style MPI micro-benchmarks: bcast, allreduce, latency",
		Workloads:   []string{"osu_bcast", "osu_allreduce", "osu_latency"},
		Run:         runOSU,
	})
}

// measuredRepsFor returns the number of timed repetitions actually
// executed; the reported total scales to the configured iteration
// count, which keeps a 3456-rank broadcast sweep tractable while
// still exercising the real collective code path. The simulator is
// deterministic, so one repetition suffices at large scale.
func measuredRepsFor(ranks int) int {
	if ranks >= 1024 {
		return 1
	}
	return 3
}

func runOSU(p Params) (*Output, error) {
	if err := validate(&p); err != nil {
		return nil, err
	}
	workload := p.Var("workload", "osu_bcast")
	msgBytes, err := p.IntVar("message_size", 1<<20)
	if err != nil {
		return nil, err
	}
	iters, err := p.IntVar("iterations", 32000)
	if err != nil {
		return nil, err
	}
	if msgBytes < 8 || iters <= 0 {
		return nil, fmt.Errorf("osu: message_size=%d iterations=%d", msgBytes, iters)
	}
	elems := msgBytes / 8

	profiles := make([]*caliper.Profile, p.Ranks)
	var text string
	res, err := mpisim.Run(p.System, p.Ranks, p.RanksPerNode, func(c *mpisim.Comm) error {
		rec := caliper.NewRecorder(c.Now)
		op := func() error { return nil }
		switch workload {
		case "osu_bcast":
			op = func() error {
				var data []float64
				if c.Rank() == 0 {
					data = make([]float64, elems)
				}
				got := c.Bcast(0, data)
				if len(got) != elems {
					return fmt.Errorf("osu_bcast: rank %d got %d elems, want %d", c.Rank(), len(got), elems)
				}
				return nil
			}
		case "osu_allreduce":
			op = func() error {
				out := c.Allreduce(make([]float64, elems), mpisim.OpSum)
				if len(out) != elems {
					return fmt.Errorf("osu_allreduce: bad length %d", len(out))
				}
				return nil
			}
		case "osu_latency":
			if p.Ranks < 2 {
				return fmt.Errorf("osu_latency needs 2 ranks")
			}
			op = func() error {
				buf := make([]float64, elems)
				switch c.Rank() {
				case 0:
					c.Send(1, buf)
					c.Recv(1)
				case 1:
					got := c.Recv(0)
					c.Send(0, got)
				}
				return nil
			}
		default:
			return fmt.Errorf("osu: unknown workload %q", workload)
		}

		reps := measuredRepsFor(p.Ranks)
		// Warmup, then timed repetitions.
		rec.Begin("warmup")
		if err := op(); err != nil {
			return err
		}
		if err := rec.End("warmup"); err != nil {
			return err
		}
		c.Barrier()
		start := c.Now()
		rec.Begin("MPI_" + workload[4:])
		for i := 0; i < reps; i++ {
			if err := op(); err != nil {
				return err
			}
		}
		if err := rec.End("MPI_" + workload[4:]); err != nil {
			return err
		}
		perIter := (c.Now() - start) / float64(reps)

		// The slowest rank defines the collective's time.
		maxPerIter := c.Allreduce([]float64{perIter}, mpisim.OpMax)
		prof, err := rec.Snapshot()
		if err != nil {
			return err
		}
		profiles[c.Rank()] = prof
		if c.Rank() == 0 {
			total := maxPerIter[0] * float64(iters)
			text = fmt.Sprintf("OSU %s: message_size=%d ranks=%d iterations=%d\n"+
				"Avg latency: %.3f us\nTotal time: %.6f s\nKernel done\n",
				workload, msgBytes, p.Ranks, iters, maxPerIter[0]*1e6, total)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	md := baseMetadata("osu-micro-benchmarks", p)
	md.Set("workload", workload)
	md.Setf("message_size", "%d", msgBytes)
	md.Setf("iterations", "%d", iters)
	return &Output{Text: text, Elapsed: res.MaxTime, Profile: caliper.MergeRanks(profiles), Metadata: md}, nil
}
