package bench

import (
	"fmt"
	"strings"

	"repro/internal/caliper"
	"repro/internal/mpisim"
)

func init() {
	register(Benchmark{
		Name:        "saxpy",
		Description: "Test saxpy problem: r[i] = A*x[i] + y[i] (Figure 7 of the paper)",
		Workloads:   []string{"problem"},
		Run:         runSaxpy,
	})
}

// saxpyKernel is the paper's Figure 7 kernel, verbatim in Go.
func saxpyKernel(r, x, y []float32, a float32) {
	for i := range r {
		r[i] = a*x[i] + y[i]
	}
}

// maxRealElems bounds the allocation actually touched per rank; the
// time for the full problem size is charged to the simulated clock.
const maxRealElems = 1 << 22

func runSaxpy(p Params) (*Output, error) {
	if err := validate(&p); err != nil {
		return nil, err
	}
	n, err := p.IntVar("n", 1)
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("saxpy: problem size n = %d", n)
	}
	const a = float32(2.0)

	useGPU := p.Variant == "cuda" || p.Variant == "rocm"
	if useGPU {
		gpu := p.System.Node.GPU
		if gpu == nil {
			return nil, fmt.Errorf("saxpy: variant %q but system %s has no GPUs", p.Variant, p.System.Name)
		}
		if gpu.Runtime != p.Variant {
			return nil, fmt.Errorf("saxpy: variant %q but %s GPUs use %s", p.Variant, p.System.Name, gpu.Runtime)
		}
	}

	// Fault injection for failure-path testing: inject_failure=<rank>
	// makes that rank abort mid-kernel (a simulated node fault).
	failRank, err := p.IntVar("inject_failure", -1)
	if err != nil {
		return nil, err
	}

	profiles := make([]*caliper.Profile, p.Ranks)
	var firstText string
	res, err := mpisim.Run(p.System, p.Ranks, p.RanksPerNode, func(c *mpisim.Comm) error {
		if c.Rank() == failRank {
			return fmt.Errorf("saxpy: rank %d received SIGBUS (injected node fault)", c.Rank())
		}
		rec := caliper.NewRecorder(c.Now)
		rec.Begin("main")

		real := n
		if real > maxRealElems {
			real = maxRealElems
		}
		x := make([]float32, real)
		y := make([]float32, real)
		r := make([]float32, real)
		for i := range x {
			x[i] = float32(i%97) * 0.5
			y[i] = float32(i%31) * 0.25
		}

		rec.Begin("saxpy_kernel")
		saxpyKernel(r, x, y, a)
		// Charge the full problem: 3 arrays streamed, 4 bytes each.
		if useGPU {
			if err := c.ComputeOnGPU(2*float64(n), 12*float64(n)); err != nil {
				return err
			}
		} else {
			chargeMemory(c, p, 12*float64(n))
		}
		if err := rec.End("saxpy_kernel"); err != nil {
			return err
		}
		rec.AddMetric("elements", float64(n))

		// Verify: checksum of the touched region agrees across ranks.
		var local float64
		for i := range r {
			local += float64(r[i])
		}
		rec.Begin("checksum")
		global := c.Allreduce([]float64{local}, mpisim.OpSum)
		if err := rec.End("checksum"); err != nil {
			return err
		}
		if err := rec.End("main"); err != nil {
			return err
		}
		prof, err := rec.Snapshot()
		if err != nil {
			return err
		}
		profiles[c.Rank()] = prof

		if c.Rank() == 0 {
			want := float64(p.Ranks) * local
			status := "ok"
			if diff := global[0] - want; diff > 1e-6 || diff < -1e-6 {
				status = "MISMATCH"
			}
			var b strings.Builder
			fmt.Fprintf(&b, "saxpy: n=%d ranks=%d threads=%d variant=%s\n", n, p.Ranks, p.Threads, variantLabel(p))
			fmt.Fprintf(&b, "checksum: %.6e (%s)\n", global[0], status)
			fmt.Fprintf(&b, "saxpy_time: %.9f s\n", c.Now())
			writePAPI(&b, p, 2*float64(n)*float64(p.Ranks), 12*float64(n)*float64(p.Ranks))
			fmt.Fprintf(&b, "Kernel done\n")
			firstText = b.String()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	md := baseMetadata("saxpy", p)
	md.Setf("n", "%d", n)
	return &Output{
		Text:     firstText,
		Elapsed:  res.MaxTime,
		Profile:  caliper.MergeRanks(profiles),
		Metadata: md,
	}, nil
}

func variantLabel(p Params) string {
	if p.Variant == "" {
		return "openmp"
	}
	return p.Variant
}
