package bench

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/caliper"
	"repro/internal/mpisim"
)

func init() {
	register(Benchmark{
		Name: "amg2023",
		Description: "AMG2023 proxy: 3-D Poisson solved by multigrid-preconditioned " +
			"conjugate gradient with slab decomposition and halo exchange",
		Workloads: []string{"problem1", "problem2"},
		Run:       runAMG,
	})
}

// grid is a local structured grid of nx×ny×nz points with spacing 1.
type grid struct {
	nx, ny, nz int
	v          []float64
}

func newGrid(nx, ny, nz int) *grid {
	return &grid{nx: nx, ny: ny, nz: nz, v: make([]float64, nx*ny*nz)}
}

func (g *grid) idx(i, j, k int) int { return i + g.nx*(j+g.ny*k) }
func (g *grid) len() int            { return len(g.v) }

// at returns the value at (i,j,k), consulting the six neighbor halo
// planes one cell outside the local extent; absent halos (global
// boundaries, or nil during local preconditioner smoothing) close the
// domain with Dirichlet zero.
func (g *grid) at(i, j, k int, h *halos) float64 {
	switch {
	case i == -1:
		if h != nil && h.xlo != nil {
			return h.xlo[j+g.ny*k]
		}
		return 0
	case i == g.nx:
		if h != nil && h.xhi != nil {
			return h.xhi[j+g.ny*k]
		}
		return 0
	case j == -1:
		if h != nil && h.ylo != nil {
			return h.ylo[i+g.nx*k]
		}
		return 0
	case j == g.ny:
		if h != nil && h.yhi != nil {
			return h.yhi[i+g.nx*k]
		}
		return 0
	case k == -1:
		if h != nil && h.zlo != nil {
			return h.zlo[i+g.nx*j]
		}
		return 0
	case k == g.nz:
		if h != nil && h.zhi != nil {
			return h.zhi[i+g.nx*j]
		}
		return 0
	case i < 0 || i > g.nx || j < 0 || j > g.ny || k < -1 || k > g.nz:
		return 0
	}
	return g.v[g.idx(i, j, k)]
}

// applyA computes q = A·u for the 7-point Laplacian with the given
// halos (nil = fully local with Dirichlet closure).
func applyA(q, u *grid, h *halos) {
	for k := 0; k < u.nz; k++ {
		for j := 0; j < u.ny; j++ {
			for i := 0; i < u.nx; i++ {
				c := u.v[u.idx(i, j, k)]
				s := u.at(i-1, j, k, h) + u.at(i+1, j, k, h) +
					u.at(i, j-1, k, h) + u.at(i, j+1, k, h) +
					u.at(i, j, k-1, h) + u.at(i, j, k+1, h)
				q.v[q.idx(i, j, k)] = 6*c - s
			}
		}
	}
}

// jacobi runs sweeps of damped Jacobi on A u = f with zero halos
// (local preconditioner smoothing).
func jacobi(u, f *grid, sweeps int, omega float64) {
	tmp := newGrid(u.nx, u.ny, u.nz)
	for s := 0; s < sweeps; s++ {
		applyA(tmp, u, nil)
		for n := range u.v {
			u.v[n] += omega / 6.0 * (f.v[n] - tmp.v[n])
		}
	}
}

// restrictGrid averages 2×2×2 blocks (R = Pᵀ/8 for piecewise-constant P).
func restrictGrid(fine *grid) *grid {
	cx, cy, cz := half(fine.nx), half(fine.ny), half(fine.nz)
	coarse := newGrid(cx, cy, cz)
	for k := 0; k < cz; k++ {
		for j := 0; j < cy; j++ {
			for i := 0; i < cx; i++ {
				var sum float64
				var cnt float64
				for dk := 0; dk < 2; dk++ {
					for dj := 0; dj < 2; dj++ {
						for di := 0; di < 2; di++ {
							fi, fj, fk := 2*i+di, 2*j+dj, 2*k+dk
							if fi < fine.nx && fj < fine.ny && fk < fine.nz {
								sum += fine.v[fine.idx(fi, fj, fk)]
								cnt++
							}
						}
					}
				}
				coarse.v[coarse.idx(i, j, k)] = sum / cnt * 4 // rediscretization scaling (h→2h)
			}
		}
	}
	return coarse
}

// prolongAdd adds the piecewise-constant interpolation of coarse into
// fine.
func prolongAdd(fine, coarse *grid) {
	for k := 0; k < fine.nz; k++ {
		for j := 0; j < fine.ny; j++ {
			for i := 0; i < fine.nx; i++ {
				ci, cj, ck := i/2, j/2, k/2
				if ci >= coarse.nx {
					ci = coarse.nx - 1
				}
				if cj >= coarse.ny {
					cj = coarse.ny - 1
				}
				if ck >= coarse.nz {
					ck = coarse.nz - 1
				}
				fine.v[fine.idx(i, j, k)] += coarse.v[coarse.idx(ci, cj, ck)]
			}
		}
	}
}

func half(n int) int {
	h := n / 2
	if h < 2 {
		h = 2
	}
	return h
}

// vcycle is one local multigrid V-cycle on A e = r (zero halos).
func vcycle(u, f *grid, level int) {
	if level == 0 || (u.nx <= 2 && u.ny <= 2 && u.nz <= 2) {
		jacobi(u, f, 30, 0.8)
		return
	}
	jacobi(u, f, 2, 0.8)
	// residual
	r := newGrid(u.nx, u.ny, u.nz)
	applyA(r, u, nil)
	for n := range r.v {
		r.v[n] = f.v[n] - r.v[n]
	}
	rc := restrictGrid(r)
	ec := newGrid(rc.nx, rc.ny, rc.nz)
	vcycle(ec, rc, level-1)
	prolongAdd(u, ec)
	jacobi(u, f, 2, 0.8)
}

// exchangeHalo swaps boundary z-planes with 1-D slab neighbors — the
// (1,1,p) special case of exchangeHalo3D, kept for kernels that only
// decompose in z.
func exchangeHalo(c *mpisim.Comm, u *grid) halos {
	pg := newProcGrid(c.Rank(), c.Size(), 1, 1, c.Size())
	return exchangeHalo3D(c, u, pg)
}

func runAMG(p Params) (*Output, error) {
	if err := validate(&p); err != nil {
		return nil, err
	}
	nx, err := p.IntVar("nx", 32)
	if err != nil {
		return nil, err
	}
	ny, err := p.IntVar("ny", 32)
	if err != nil {
		return nil, err
	}
	nz, err := p.IntVar("nz", 32)
	if err != nil {
		return nil, err
	}
	px, err := p.IntVar("px", 1)
	if err != nil {
		return nil, err
	}
	py, err := p.IntVar("py", 1)
	if err != nil {
		return nil, err
	}
	pz, err := p.IntVar("pz", 0) // 0 = remaining ranks in z
	if err != nil {
		return nil, err
	}
	if pz == 0 {
		if p.Ranks%(px*py) != 0 {
			return nil, fmt.Errorf("amg2023: %d ranks do not fill a %dx%dx* grid", p.Ranks, px, py)
		}
		pz = p.Ranks / (px * py)
	}
	if err := validateDecomposition(p.Ranks, px, py, pz); err != nil {
		return nil, err
	}
	maxIters, err := p.IntVar("max_iterations", 200)
	if err != nil {
		return nil, err
	}
	tol, err := p.FloatVar("tolerance", 1e-8)
	if err != nil {
		return nil, err
	}
	if nx < 2 || ny < 2 || nz < 2 {
		return nil, fmt.Errorf("amg2023: grid %dx%dx%d too small", nx, ny, nz)
	}
	useGPU := p.Variant == "cuda" || p.Variant == "rocm"
	if useGPU {
		gpu := p.System.Node.GPU
		if gpu == nil || gpu.Runtime != p.Variant {
			return nil, fmt.Errorf("amg2023: variant %q unavailable on %s", p.Variant, p.System.Name)
		}
	}
	levels := 0
	for m := min3(nx, ny, nz); m > 4; m /= 2 {
		levels++
	}

	nLocal := nx * ny * nz
	// Simulated cost of one full-grid sweep (stencil is memory bound:
	// ~9 accesses of 8 bytes per point).
	sweepBytes := 72 * float64(nLocal)
	charge := func(c *mpisim.Comm, mult float64) error {
		if useGPU {
			return c.ComputeOnGPU(10*float64(nLocal)*mult, sweepBytes*mult)
		}
		chargeMemory(c, p, sweepBytes*mult)
		return nil
	}

	profiles := make([]*caliper.Profile, p.Ranks)
	var text string
	var iterations int
	res, err := mpisim.Run(p.System, p.Ranks, p.RanksPerNode, func(c *mpisim.Comm) error {
		rec := caliper.NewRecorder(c.Now)
		rec.Begin("main")
		pg := newProcGrid(c.Rank(), c.Size(), px, py, pz)

		// --- setup phase ----------------------------------------------
		rec.Begin("setup")
		x := newGrid(nx, ny, nz)
		b := newGrid(nx, ny, nz)
		for n := range b.v {
			b.v[n] = 1.0
		}
		if err := charge(c, 2); err != nil { // grid + matrix setup
			return err
		}
		if err := rec.End("setup"); err != nil {
			return err
		}

		// --- solve phase: MG-preconditioned CG --------------------------
		rec.Begin("solve")
		r := newGrid(nx, ny, nz)
		q := newGrid(nx, ny, nz)
		// r = b - A x  (x = 0)
		copy(r.v, b.v)
		dot := func(a, bb *grid) float64 {
			var s float64
			for n := range a.v {
				s += a.v[n] * bb.v[n]
			}
			chargeFlops(c, p, 2*float64(nLocal))
			return s
		}
		allSum := func(v float64) float64 {
			return c.Allreduce([]float64{v}, mpisim.OpSum)[0]
		}
		normB := math.Sqrt(allSum(dot(b, b)))
		resNorm := math.Sqrt(allSum(dot(r, r)))

		precond := func(rr *grid) (*grid, error) {
			z := newGrid(nx, ny, nz)
			rec.Begin("vcycle")
			vcycle(z, rr, levels)
			// ~4 smoother sweeps per level plus transfers.
			if err := charge(c, float64(4*levels+2)); err != nil {
				return nil, err
			}
			return z, rec.End("vcycle")
		}

		z, err := precond(r)
		if err != nil {
			return err
		}
		pv := newGrid(nx, ny, nz)
		copy(pv.v, z.v)
		rz := allSum(dot(r, z))
		iters := 0
		converged := false
		for iters < maxIters {
			if rz <= 0 {
				// Preconditioner lost positive definiteness; restart
				// with the identity preconditioner for robustness.
				copy(pv.v, r.v)
				rz = allSum(dot(r, r))
			}
			rec.Begin("matvec")
			h := exchangeHalo3D(c, pv, pg)
			applyA(q, pv, &h)
			if err := charge(c, 1); err != nil {
				return err
			}
			if err := rec.End("matvec"); err != nil {
				return err
			}
			pq := allSum(dot(pv, q))
			if pq == 0 {
				break
			}
			alpha := rz / pq
			for n := range x.v {
				x.v[n] += alpha * pv.v[n]
				r.v[n] -= alpha * q.v[n]
			}
			chargeFlops(c, p, 4*float64(nLocal))
			iters++
			resNorm = math.Sqrt(allSum(dot(r, r)))
			if resNorm <= tol*normB {
				converged = true
				break
			}
			z, err = precond(r)
			if err != nil {
				return err
			}
			rzNew := allSum(dot(r, z))
			beta := rzNew / rz
			rz = rzNew
			for n := range pv.v {
				pv.v[n] = z.v[n] + beta*pv.v[n]
			}
			chargeFlops(c, p, 2*float64(nLocal))
		}
		if err := rec.End("solve"); err != nil {
			return err
		}
		if err := rec.End("main"); err != nil {
			return err
		}
		rec.AddMetric("iterations", float64(iters))
		prof, err := rec.Snapshot()
		if err != nil {
			return err
		}
		profiles[c.Rank()] = prof

		if c.Rank() == 0 {
			iterations = iters
			setup := prof.Region("main/setup").Total
			solve := prof.Region("main/solve").Total
			dofGlobal := float64(nLocal) * float64(p.Ranks)
			fom := dofGlobal * float64(iters) / solve
			status := "converged"
			if !converged {
				status = "max-iterations"
			}
			var tb strings.Builder
			fmt.Fprintf(&tb, "AMG2023 proxy: grid %dx%dx%d per rank, ranks=%d (P %dx%dx%d) variant=%s\n"+
				"Setup time: %.6f s\nSolve time: %.6f s\nIterations: %d (%s)\n"+
				"Relative residual: %.3e\nFigure of Merit (FOM_Solve): %.4e\n",
				nx, ny, nz, p.Ranks, px, py, pz, variantLabel(p), setup, solve, iters, status,
				resNorm/normB, fom)
			writePAPI(&tb, p,
				float64(iters)*float64(nLocal)*float64(p.Ranks)*50,
				float64(iters)*sweepBytes*float64(p.Ranks))
			tb.WriteString("Kernel done\n")
			text = tb.String()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	md := baseMetadata("amg2023", p)
	md.Setf("grid", "%dx%dx%d", nx, ny, nz)
	md.Setf("iterations", "%d", iterations)
	return &Output{Text: text, Elapsed: res.MaxTime, Profile: caliper.MergeRanks(profiles), Metadata: md}, nil
}

func min3(a, b, c int) int {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}
