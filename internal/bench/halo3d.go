package bench

import (
	"fmt"

	"repro/internal/mpisim"
)

// procGrid maps MPI ranks onto a 3-D process grid (px × py × pz),
// x-fastest: rank = ix + px·(iy + py·iz).
type procGrid struct {
	px, py, pz int
	ix, iy, iz int
	rank, size int
}

// newProcGrid validates the decomposition and locates the rank.
// A zero/invalid product falls back to a 1-D z decomposition.
func newProcGrid(rank, size, px, py, pz int) procGrid {
	if px < 1 || py < 1 || pz < 1 || px*py*pz != size {
		px, py, pz = 1, 1, size
	}
	return procGrid{
		px: px, py: py, pz: pz,
		ix: rank % px, iy: (rank / px) % py, iz: rank / (px * py),
		rank: rank, size: size,
	}
}

// neighbor returns the global rank of the neighbor along dim
// (0=x,1=y,2=z) in direction dir (-1 or +1); ok=false at the global
// boundary.
func (g procGrid) neighbor(dim, dir int) (int, bool) {
	ix, iy, iz := g.ix, g.iy, g.iz
	switch dim {
	case 0:
		ix += dir
		if ix < 0 || ix >= g.px {
			return 0, false
		}
	case 1:
		iy += dir
		if iy < 0 || iy >= g.py {
			return 0, false
		}
	case 2:
		iz += dir
		if iz < 0 || iz >= g.pz {
			return 0, false
		}
	}
	return ix + g.px*(iy+g.py*iz), true
}

// halos carries the six neighbor boundary planes of a local grid
// (nil at global boundaries, where the operator applies Dirichlet
// zero).
type halos struct {
	xlo, xhi []float64 // planes at i=-1 / i=nx, indexed j + ny*k
	ylo, yhi []float64 // planes at j=-1 / j=ny, indexed i + nx*k
	zlo, zhi []float64 // planes at k=-1 / k=nz, indexed i + nx*j
}

// packPlane extracts one boundary plane of u along dim at the given
// face (0 = low face, 1 = high face).
func packPlane(u *grid, dim, face int) []float64 {
	switch dim {
	case 0:
		i := 0
		if face == 1 {
			i = u.nx - 1
		}
		out := make([]float64, u.ny*u.nz)
		for k := 0; k < u.nz; k++ {
			for j := 0; j < u.ny; j++ {
				out[j+u.ny*k] = u.v[u.idx(i, j, k)]
			}
		}
		return out
	case 1:
		j := 0
		if face == 1 {
			j = u.ny - 1
		}
		out := make([]float64, u.nx*u.nz)
		for k := 0; k < u.nz; k++ {
			for i := 0; i < u.nx; i++ {
				out[i+u.nx*k] = u.v[u.idx(i, j, k)]
			}
		}
		return out
	default:
		k := 0
		if face == 1 {
			k = u.nz - 1
		}
		out := make([]float64, u.nx*u.ny)
		copy(out, u.v[k*u.nx*u.ny:(k+1)*u.nx*u.ny])
		return out
	}
}

// exchangeHalo3D swaps all six boundary planes with the process-grid
// neighbors. Sends are posted for every face first (the eager runtime
// buffers them), then receives complete; the deterministic
// fixed-order protocol is deadlock-free.
func exchangeHalo3D(c *mpisim.Comm, u *grid, pg procGrid) halos {
	type edge struct {
		dim, dir int
		peer     int
	}
	var edges []edge
	for dim := 0; dim < 3; dim++ {
		for _, dir := range []int{-1, 1} {
			if peer, ok := pg.neighbor(dim, dir); ok {
				edges = append(edges, edge{dim: dim, dir: dir, peer: peer})
			}
		}
	}
	for _, e := range edges {
		face := 0
		if e.dir == 1 {
			face = 1
		}
		c.Send(e.peer, packPlane(u, e.dim, face))
	}
	var h halos
	for _, e := range edges {
		plane := c.Recv(e.peer)
		switch {
		case e.dim == 0 && e.dir == -1:
			h.xlo = plane
		case e.dim == 0 && e.dir == 1:
			h.xhi = plane
		case e.dim == 1 && e.dir == -1:
			h.ylo = plane
		case e.dim == 1 && e.dir == 1:
			h.yhi = plane
		case e.dim == 2 && e.dir == -1:
			h.zlo = plane
		default:
			h.zhi = plane
		}
	}
	return h
}

// validateDecomposition checks a requested process grid against the
// rank count, with a helpful error.
func validateDecomposition(ranks, px, py, pz int) error {
	if px < 1 || py < 1 || pz < 1 {
		return fmt.Errorf("bench: process grid %dx%dx%d has non-positive extent", px, py, pz)
	}
	if px*py*pz != ranks {
		return fmt.Errorf("bench: process grid %dx%dx%d needs %d ranks, job has %d",
			px, py, pz, px*py*pz, ranks)
	}
	return nil
}
