package bench

import (
	"fmt"
	"strings"

	"repro/internal/caliper"
	"repro/internal/mpisim"
)

func init() {
	register(Benchmark{
		Name: "gups",
		Description: "HPCC RandomAccess (GUPS): random updates to a distributed " +
			"table via bucketed all-to-all exchanges",
		Workloads: []string{"gups"},
		Run:       runGUPS,
	})
}

// runGUPS implements the RandomAccess pattern: each rank generates
// pseudo-random 64-bit indices into a global table, buckets the
// updates by owning rank, exchanges buckets with Alltoall, and XORs
// the received updates into its local table slice. The FOM is giga
// updates per second (GUPS).
func runGUPS(p Params) (*Output, error) {
	if err := validate(&p); err != nil {
		return nil, err
	}
	logSize, err := p.IntVar("log2_table_size", 20) // per-rank table entries = 2^logSize
	if err != nil {
		return nil, err
	}
	updatesPerRank, err := p.IntVar("updates_per_rank", 4096)
	if err != nil {
		return nil, err
	}
	rounds, err := p.IntVar("rounds", 4)
	if err != nil {
		return nil, err
	}
	if logSize < 4 || logSize > 28 || updatesPerRank < 1 || rounds < 1 {
		return nil, fmt.Errorf("gups: log2_table_size=%d updates_per_rank=%d rounds=%d",
			logSize, updatesPerRank, rounds)
	}
	localSize := 1 << logSize

	profiles := make([]*caliper.Profile, p.Ranks)
	var text string
	res, err := mpisim.Run(p.System, p.Ranks, p.RanksPerNode, func(c *mpisim.Comm) error {
		rec := caliper.NewRecorder(c.Now)
		rec.Begin("main")
		nranks := c.Size()
		table := make([]uint64, localSize)
		for i := range table {
			table[i] = uint64(c.Rank()*localSize + i)
		}

		// HPCC-style LCG random stream, seeded per rank.
		seed := uint64(c.Rank())*0x9E3779B97F4A7C15 + 12345
		next := func() uint64 {
			seed = seed*6364136223846793005 + 1442695040888963407
			return seed
		}

		start := c.Now()
		rec.Begin("updates")
		perDest := updatesPerRank / nranks
		if perDest == 0 {
			perDest = 1
		}
		for round := 0; round < rounds; round++ {
			// Bucket updates by destination rank (fixed-size buckets so
			// Alltoall blocks stay uniform, as HPCC's bucketed variant does).
			send := make([]float64, nranks*perDest)
			for d := 0; d < nranks; d++ {
				for u := 0; u < perDest; u++ {
					send[d*perDest+u] = float64(next() % uint64(localSize))
				}
			}
			rec.Begin("alltoall")
			recv := c.Alltoall(send)
			if err := rec.End("alltoall"); err != nil {
				return err
			}
			// Apply received updates: XOR into the local table.
			for _, idxF := range recv {
				idx := int(idxF) % localSize
				table[idx] ^= uint64(idx)*2654435761 + 1
			}
			// Memory cost of the random-access sweep (cache-hostile:
			// charge one cache line per update).
			chargeMemory(c, p, float64(len(recv))*64)
		}
		if err := rec.End("updates"); err != nil {
			return err
		}
		elapsed := c.Now() - start
		if err := rec.End("main"); err != nil {
			return err
		}
		prof, err := rec.Snapshot()
		if err != nil {
			return err
		}
		profiles[c.Rank()] = prof

		// Verification: XOR-reduce a table checksum across ranks; the
		// result must be deterministic for the same parameters.
		var local float64
		for _, v := range table[:64] {
			local += float64(v % 1000)
		}
		sum := c.Allreduce([]float64{local}, mpisim.OpSum)
		if c.Rank() == 0 {
			totalUpdates := float64(nranks) * float64(nranks*perDest) * float64(rounds)
			gups := totalUpdates / elapsed / 1e9
			var tb strings.Builder
			fmt.Fprintf(&tb, "RandomAccess: 2^%d entries per rank, ranks=%d, %d rounds\n",
				logSize, nranks, rounds)
			fmt.Fprintf(&tb, "Table checksum: %.0f\n", sum[0])
			fmt.Fprintf(&tb, "GUPS: %.6f\n", gups)
			writePAPI(&tb, p, totalUpdates, totalUpdates*64)
			tb.WriteString("Kernel done\n")
			text = tb.String()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	md := baseMetadata("gups", p)
	md.Setf("log2_table_size", "%d", logSize)
	return &Output{Text: text, Elapsed: res.MaxTime, Profile: caliper.MergeRanks(profiles), Metadata: md}, nil
}
