package bench

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/caliper"
	"repro/internal/mpisim"
)

func init() {
	register(Benchmark{
		Name: "lulesh",
		Description: "LULESH-style shock-hydro proxy: explicit timestepping with a " +
			"per-step courant Allreduce and slab halo exchange",
		Workloads: []string{"hydro"},
		Run:       runLulesh,
	})
}

// runLulesh models the Sedov blast problem the real LULESH runs: an
// explicit time integration where every step computes new nodal
// forces (stencil sweep), exchanges boundary planes, and agrees on
// the next timestep with an Allreduce(min) — the communication
// pattern that dominates LULESH at scale.
func runLulesh(p Params) (*Output, error) {
	if err := validate(&p); err != nil {
		return nil, err
	}
	size, err := p.IntVar("size", 24) // elements per edge per rank
	if err != nil {
		return nil, err
	}
	steps, err := p.IntVar("iterations", 40)
	if err != nil {
		return nil, err
	}
	if size < 4 || steps < 1 {
		return nil, fmt.Errorf("lulesh: size=%d iterations=%d", size, steps)
	}
	nLocal := size * size * size

	profiles := make([]*caliper.Profile, p.Ranks)
	var text string
	res, err := mpisim.Run(p.System, p.Ranks, p.RanksPerNode, func(c *mpisim.Comm) error {
		rec := caliper.NewRecorder(c.Now)
		rec.Begin("main")

		// Energy field with a point deposit at rank 0's origin — the
		// Sedov initial condition.
		e := newGrid(size, size, size)
		if c.Rank() == 0 {
			e.v[0] = 3.948746e+7
		}
		eNew := newGrid(size, size, size)
		dt := 1e-7
		elapsedT := 0.0

		rec.Begin("timesteps")
		for s := 0; s < steps; s++ {
			// Halo exchange of the energy boundary planes.
			rec.Begin("halo")
			h := exchangeHalo(c, e)
			if err := rec.End("halo"); err != nil {
				return err
			}

			// Force/energy update: diffusion-flavored stencil standing
			// in for the hydro kernels (CalcForceForNodes etc.).
			rec.Begin("stencil")
			applyA(eNew, e, &h)
			for n := range eNew.v {
				eNew.v[n] = e.v[n] - dt*1e4*eNew.v[n]
				if eNew.v[n] < 0 {
					eNew.v[n] = 0
				}
			}
			e, eNew = eNew, e
			chargeMemory(c, p, 72*float64(nLocal))
			chargeFlops(c, p, 30*float64(nLocal))
			if err := rec.End("stencil"); err != nil {
				return err
			}

			// Courant condition: global minimum timestep.
			rec.Begin("dt_allreduce")
			localDt := 1e-7 * (1 + 0.1*math.Abs(math.Sin(float64(c.Rank()+s))))
			global := c.Allreduce([]float64{localDt}, mpisim.OpMin)
			dt = global[0]
			if err := rec.End("dt_allreduce"); err != nil {
				return err
			}
			elapsedT += dt
		}
		if err := rec.End("timesteps"); err != nil {
			return err
		}
		if err := rec.End("main"); err != nil {
			return err
		}
		rec.AddMetric("timesteps", float64(steps))
		prof, err := rec.Snapshot()
		if err != nil {
			return err
		}
		profiles[c.Rank()] = prof

		// Total energy is conserved up to the sink term: verify it is
		// finite and non-negative everywhere.
		var local float64
		for _, v := range e.v {
			if v < 0 || math.IsNaN(v) {
				return fmt.Errorf("lulesh: energy field corrupt on rank %d", c.Rank())
			}
			local += v
		}
		total := c.Allreduce([]float64{local}, mpisim.OpSum)
		if c.Rank() == 0 {
			wall := prof.Region("main").Total
			zonesPerSec := float64(nLocal) * float64(p.Ranks) * float64(steps) / wall
			var tb strings.Builder
			fmt.Fprintf(&tb, "LULESH proxy: %d^3 elements per rank, ranks=%d\n", size, p.Ranks)
			fmt.Fprintf(&tb, "Iteration count: %d\n", steps)
			fmt.Fprintf(&tb, "Final origin energy: %.6e\n", total[0])
			fmt.Fprintf(&tb, "Grind time (us/z/c): %.6f\n", 1e6/zonesPerSec*float64(p.Ranks))
			fmt.Fprintf(&tb, "FOM (z/s): %.6e\n", zonesPerSec)
			writePAPI(&tb, p, 30*float64(nLocal)*float64(steps)*float64(p.Ranks),
				72*float64(nLocal)*float64(steps)*float64(p.Ranks))
			tb.WriteString("Kernel done\n")
			text = tb.String()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	md := baseMetadata("lulesh", p)
	md.Setf("size", "%d", size)
	return &Output{Text: text, Elapsed: res.MaxTime, Profile: caliper.MergeRanks(profiles), Metadata: md}, nil
}
