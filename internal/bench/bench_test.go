package bench

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/hpcsim"
)

func system(t testing.TB, name string) *hpcsim.System {
	t.Helper()
	s, err := hpcsim.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRegistry(t *testing.T) {
	names := Names()
	for _, want := range []string{"saxpy", "amg2023", "stream", "osu-micro-benchmarks"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("benchmark %s not registered (have %v)", want, names)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown benchmark should error")
	}
}

// TestSaxpyFigure8FOM checks the exact FOM and success criteria of the
// paper's Figure 8: the output must match the regex "Kernel done".
func TestSaxpyFigure8FOM(t *testing.T) {
	b, _ := Get("saxpy")
	out, err := b.Run(Params{
		System: system(t, "cts1"), Ranks: 8, RanksPerNode: 8, Threads: 2,
		Vars: map[string]string{"n": "512"},
	})
	if err != nil {
		t.Fatal(err)
	}
	fom := regexp.MustCompile(`(?P<done>Kernel done)`)
	if !fom.MatchString(out.Text) {
		t.Errorf("FOM regex did not match output:\n%s", out.Text)
	}
	if !strings.Contains(out.Text, "checksum") || strings.Contains(out.Text, "MISMATCH") {
		t.Errorf("checksum failed:\n%s", out.Text)
	}
	if out.Elapsed <= 0 {
		t.Error("no simulated time")
	}
	if out.Profile.Region("main/saxpy_kernel").Count == 0 {
		t.Errorf("caliper regions = %v", out.Profile.Paths())
	}
	if v, _ := out.Metadata.Get("cluster"); v != "cts1" {
		t.Errorf("metadata cluster = %q", v)
	}
}

func TestSaxpyScalesWithN(t *testing.T) {
	b, _ := Get("saxpy")
	run := func(n string) float64 {
		out, err := b.Run(Params{
			System: system(t, "cts1"), Ranks: 4, RanksPerNode: 4, Threads: 1,
			Vars: map[string]string{"n": n},
		})
		if err != nil {
			t.Fatal(err)
		}
		return out.Elapsed
	}
	small, large := run("100000"), run("100000000")
	if large < 100*small {
		t.Errorf("100000000 elements (%g s) should dwarf 100000 (%g s)", large, small)
	}
}

func TestSaxpyGPUVariants(t *testing.T) {
	b, _ := Get("saxpy")
	// cuda on ats2 works; rocm on ats2 fails; cuda on cts1 fails.
	if _, err := b.Run(Params{System: system(t, "ats2"), Ranks: 4, RanksPerNode: 4,
		Variant: "cuda", Vars: map[string]string{"n": "4096"}}); err != nil {
		t.Errorf("cuda on ats2: %v", err)
	}
	if _, err := b.Run(Params{System: system(t, "ats2"), Ranks: 4, RanksPerNode: 4,
		Variant: "rocm", Vars: map[string]string{"n": "4096"}}); err == nil {
		t.Error("rocm on ats2 should fail (V100 is CUDA)")
	}
	if _, err := b.Run(Params{System: system(t, "cts1"), Ranks: 4, RanksPerNode: 4,
		Variant: "cuda", Vars: map[string]string{"n": "4096"}}); err == nil {
		t.Error("cuda on cts1 should fail (no GPUs)")
	}
	if _, err := b.Run(Params{System: system(t, "ats4"), Ranks: 4, RanksPerNode: 4,
		Variant: "rocm", Vars: map[string]string{"n": "4096"}}); err != nil {
		t.Errorf("rocm on ats4: %v", err)
	}
}

func TestSaxpyInvalidParams(t *testing.T) {
	b, _ := Get("saxpy")
	if _, err := b.Run(Params{System: system(t, "cts1"), Ranks: 2, RanksPerNode: 2,
		Vars: map[string]string{"n": "-5"}}); err == nil {
		t.Error("negative n should fail")
	}
	if _, err := b.Run(Params{System: system(t, "cts1"), Ranks: 2, RanksPerNode: 2,
		Vars: map[string]string{"n": "abc"}}); err == nil {
		t.Error("non-numeric n should fail")
	}
}

func TestStream(t *testing.T) {
	b, _ := Get("stream")
	out, err := b.Run(Params{
		System: system(t, "cts1"), Ranks: 2, RanksPerNode: 2, Threads: 9,
		Vars: map[string]string{"n": "1000000", "iterations": "3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Text, "Triad:") || !strings.Contains(out.Text, "Kernel done") {
		t.Errorf("output:\n%s", out.Text)
	}
	if strings.Contains(out.Text, "VALIDATION FAILED") {
		t.Error("triad arithmetic wrong")
	}
	// Reported node bandwidth should be below the hardware peak and
	// positive.
	m := regexp.MustCompile(`Triad: ([0-9.]+) GB/s`).FindStringSubmatch(out.Text)
	if m == nil {
		t.Fatalf("no bandwidth in output:\n%s", out.Text)
	}
	bw, _ := strconv.ParseFloat(m[1], 64)
	if bw <= 0 || bw > system(t, "cts1").Node.MemBWGBs*1.05 {
		t.Errorf("triad bandwidth %v GB/s implausible (peak %v)", bw, system(t, "cts1").Node.MemBWGBs)
	}
}

func TestOSUBcastOutput(t *testing.T) {
	b, _ := Get("osu-micro-benchmarks")
	out, err := b.Run(Params{
		System: system(t, "cts1"), Ranks: 16, RanksPerNode: 16,
		Vars: map[string]string{"workload": "osu_bcast", "message_size": "65536", "iterations": "1000"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Total time:", "Avg latency:", "Kernel done"} {
		if !strings.Contains(out.Text, want) {
			t.Errorf("output missing %q:\n%s", want, out.Text)
		}
	}
}

// TestOSUBcastLinearShape verifies the Figure 14 property end to end
// through the benchmark: on cts1 the reported Total time grows
// close to linearly with process count.
func TestOSUBcastLinearShape(t *testing.T) {
	b, _ := Get("osu-micro-benchmarks")
	total := func(p int) float64 {
		out, err := b.Run(Params{
			System: system(t, "cts1"), Ranks: p, RanksPerNode: 16,
			// Small message: the latency term dominates, which is the
			// linear regime Figure 14 plots.
			Vars: map[string]string{"workload": "osu_bcast", "message_size": "8192", "iterations": "32000"},
		})
		if err != nil {
			t.Fatal(err)
		}
		m := regexp.MustCompile(`Total time: ([0-9.]+) s`).FindStringSubmatch(out.Text)
		if m == nil {
			t.Fatalf("no total time:\n%s", out.Text)
		}
		v, _ := strconv.ParseFloat(m[1], 64)
		return v
	}
	t32, t64, t128 := total(32), total(64), total(128)
	if t64 <= t32 || t128 <= t64 {
		t.Fatalf("total time not increasing: %v %v %v", t32, t64, t128)
	}
	// Linear shape: successive doubling ratios approach 2.
	r1, r2 := t64/t32, t128/t64
	if r1 < 1.5 || r2 < 1.6 {
		t.Errorf("bcast on cts1 not near-linear: ratios %.2f %.2f (times %v %v %v)", r1, r2, t32, t64, t128)
	}
}

func TestOSUAllreduceAndLatency(t *testing.T) {
	b, _ := Get("osu-micro-benchmarks")
	if _, err := b.Run(Params{System: system(t, "ats2"), Ranks: 8, RanksPerNode: 8,
		Vars: map[string]string{"workload": "osu_allreduce", "message_size": "4096", "iterations": "100"}}); err != nil {
		t.Errorf("allreduce: %v", err)
	}
	out, err := b.Run(Params{System: system(t, "ats2"), Ranks: 2, RanksPerNode: 1,
		Vars: map[string]string{"workload": "osu_latency", "message_size": "8", "iterations": "100"}})
	if err != nil {
		t.Fatalf("latency: %v", err)
	}
	m := regexp.MustCompile(`Avg latency: ([0-9.]+) us`).FindStringSubmatch(out.Text)
	if m == nil {
		t.Fatalf("no latency:\n%s", out.Text)
	}
	lat, _ := strconv.ParseFloat(m[1], 64)
	// Round trip across EDR: a few microseconds.
	if lat < 1 || lat > 100 {
		t.Errorf("ping-pong latency %v us implausible", lat)
	}
	if _, err := b.Run(Params{System: system(t, "ats2"), Ranks: 4, RanksPerNode: 4,
		Vars: map[string]string{"workload": "osu_nothing"}}); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestAMGConverges(t *testing.T) {
	b, _ := Get("amg2023")
	out, err := b.Run(Params{
		System: system(t, "cts1"), Ranks: 4, RanksPerNode: 4,
		Vars: map[string]string{"nx": "16", "ny": "16", "nz": "16", "tolerance": "1e-8"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Text, "converged") {
		t.Errorf("solver did not converge:\n%s", out.Text)
	}
	m := regexp.MustCompile(`Relative residual: ([0-9.e+-]+)`).FindStringSubmatch(out.Text)
	if m == nil {
		t.Fatalf("no residual:\n%s", out.Text)
	}
	res, _ := strconv.ParseFloat(m[1], 64)
	if res > 1e-8 {
		t.Errorf("residual %v above tolerance", res)
	}
	for _, want := range []string{"Setup time:", "Solve time:", "Figure of Merit", "Kernel done"} {
		if !strings.Contains(out.Text, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Caliper hierarchy captured setup/solve/vcycle/matvec.
	for _, region := range []string{"main/setup", "main/solve"} {
		if out.Profile.Region(region).Count == 0 {
			t.Errorf("region %s missing; have %v", region, out.Profile.Paths())
		}
	}
}

func TestAMGMultigridAcceleratesCG(t *testing.T) {
	// The MG preconditioner must reduce CG iterations vs unpreconditioned
	// behaviour; as a proxy, iterations must be far below the grid
	// dimension bound and independent-ish of modest size growth.
	b, _ := Get("amg2023")
	iters := func(n string) int {
		out, err := b.Run(Params{
			System: system(t, "cts1"), Ranks: 2, RanksPerNode: 2,
			Vars: map[string]string{"nx": n, "ny": n, "nz": n, "tolerance": "1e-8"},
		})
		if err != nil {
			t.Fatal(err)
		}
		m := regexp.MustCompile(`Iterations: (\d+)`).FindStringSubmatch(out.Text)
		if m == nil {
			t.Fatalf("no iterations:\n%s", out.Text)
		}
		v, _ := strconv.Atoi(m[1])
		return v
	}
	i16, i32 := iters("16"), iters("32")
	if i16 > 60 || i32 > 80 {
		t.Errorf("MG-PCG iterations too high: 16³→%d, 32³→%d", i16, i32)
	}
}

func TestAMGGPUVariant(t *testing.T) {
	b, _ := Get("amg2023")
	out, err := b.Run(Params{
		System: system(t, "ats2"), Ranks: 4, RanksPerNode: 4, Variant: "cuda",
		Vars: map[string]string{"nx": "16", "ny": "16", "nz": "16"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Text, "variant=cuda") {
		t.Errorf("variant not recorded:\n%s", out.Text)
	}
}

func TestAMGWeakScalingElapsed(t *testing.T) {
	// Same per-rank grid on more ranks: simulated time should grow only
	// mildly (halo + allreduce overhead), not linearly.
	b, _ := Get("amg2023")
	elapsed := func(ranks int) float64 {
		out, err := b.Run(Params{
			System: system(t, "cts1"), Ranks: ranks, RanksPerNode: 8,
			Vars: map[string]string{"nx": "16", "ny": "16", "nz": "8", "tolerance": "1e-6"},
		})
		if err != nil {
			t.Fatal(err)
		}
		return out.Elapsed
	}
	e2, e16 := elapsed(2), elapsed(16)
	if e16 > 8*e2 {
		t.Errorf("weak scaling broke: %g → %g (8x ranks)", e2, e16)
	}
}

func TestEffectiveMemBWModel(t *testing.T) {
	cts := system(t, "cts1")
	// More threads help until saturation.
	one := effectiveMemBW(cts, 1, 1)
	four := effectiveMemBW(cts, 1, 4)
	many := effectiveMemBW(cts, 1, 64)
	if four <= one {
		t.Error("threads should increase bandwidth before saturation")
	}
	if many > cts.Node.MemBWGBs*1e9 {
		t.Error("bandwidth cannot exceed node peak")
	}
	// Sharing: 36 ranks each get 1/36 of peak.
	share := effectiveMemBW(cts, 36, 1)
	if share > cts.Node.MemBWGBs*1e9/36*1.01 {
		t.Errorf("per-rank share %g too high", share)
	}
}

func TestParamsVarHelpers(t *testing.T) {
	p := Params{Vars: map[string]string{"a": "5", "f": "2.5", "s": "x"}}
	if v, err := p.IntVar("a", 0); err != nil || v != 5 {
		t.Errorf("IntVar = %d, %v", v, err)
	}
	if v, err := p.IntVar("missing", 7); err != nil || v != 7 {
		t.Errorf("IntVar default = %d, %v", v, err)
	}
	if _, err := p.IntVar("s", 0); err == nil {
		t.Error("bad int should error")
	}
	if v, err := p.FloatVar("f", 0); err != nil || v != 2.5 {
		t.Errorf("FloatVar = %v, %v", v, err)
	}
	if v := p.Var("s", "d"); v != "x" {
		t.Errorf("Var = %q", v)
	}
	if v := p.Var("none", "d"); v != "d" {
		t.Errorf("Var default = %q", v)
	}
}

func TestHPCG(t *testing.T) {
	b, _ := Get("hpcg")
	out, err := b.Run(Params{
		System: system(t, "cts1"), Ranks: 4, RanksPerNode: 4,
		Vars: map[string]string{"nx": "16", "ny": "16", "nz": "16", "iterations": "25"},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`HPCG rating \(GFLOP/s\): ([0-9.]+)`).FindStringSubmatch(out.Text)
	if m == nil {
		t.Fatalf("no rating in output:\n%s", out.Text)
	}
	gflops, _ := strconv.ParseFloat(m[1], 64)
	if gflops <= 0 {
		t.Errorf("gflops = %v", gflops)
	}
	// Memory-bound: the rating must be far below the 4-rank peak
	// compute rate but positive.
	peak := 4 * system(t, "cts1").Node.GFlopsPerCore
	if gflops > peak {
		t.Errorf("gflops %v exceeds peak %v", gflops, peak)
	}
	// CG must reduce the residual from ||b|| = sqrt(n_global).
	rm := regexp.MustCompile(`Final residual: ([0-9.e+-]+)`).FindStringSubmatch(out.Text)
	res, _ := strconv.ParseFloat(rm[1], 64)
	if res >= 128 { // sqrt(4*4096) = 128
		t.Errorf("residual %v did not decrease", res)
	}
	if out.Profile.Region("main/cg/spmv").Count == 0 {
		t.Errorf("regions = %v", out.Profile.Paths())
	}
}

func TestHPCGWithPAPIModifierVars(t *testing.T) {
	b, _ := Get("hpcg")
	out, err := b.Run(Params{
		System: system(t, "cts1"), Ranks: 2, RanksPerNode: 2,
		Vars: map[string]string{"nx": "8", "ny": "8", "nz": "8", "papi": "1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Text, "papi.PAPI_FP_OPS") {
		t.Errorf("papi counters missing:\n%s", out.Text)
	}
}

func TestLulesh(t *testing.T) {
	b, _ := Get("lulesh")
	out, err := b.Run(Params{
		System: system(t, "cts1"), Ranks: 4, RanksPerNode: 4,
		Vars: map[string]string{"size": "12", "iterations": "10"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"FOM (z/s):", "Grind time", "Kernel done"} {
		if !strings.Contains(out.Text, want) {
			t.Errorf("output missing %q:\n%s", want, out.Text)
		}
	}
	m := regexp.MustCompile(`FOM \(z/s\): ([0-9.e+]+)`).FindStringSubmatch(out.Text)
	fom, _ := strconv.ParseFloat(m[1], 64)
	if fom <= 0 {
		t.Errorf("fom = %v", fom)
	}
	// Per-step regions recorded.
	for _, region := range []string{"main/timesteps/halo", "main/timesteps/stencil", "main/timesteps/dt_allreduce"} {
		if out.Profile.Region(region).Count == 0 {
			t.Errorf("region %s missing; have %v", region, out.Profile.Paths())
		}
	}
	// dt allreduce ran every step on every rank: 10 steps × 4 ranks.
	if got := out.Profile.Region("main/timesteps/dt_allreduce").Count; got != 40 {
		t.Errorf("dt_allreduce count = %d", got)
	}
}

func TestLuleshEnergyConserved(t *testing.T) {
	b, _ := Get("lulesh")
	out, err := b.Run(Params{
		System: system(t, "cts1"), Ranks: 2, RanksPerNode: 2,
		Vars: map[string]string{"size": "8", "iterations": "30"},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`Final origin energy: ([0-9.e+-]+)`).FindStringSubmatch(out.Text)
	e, _ := strconv.ParseFloat(m[1], 64)
	if e < 0 || math.IsNaN(e) {
		t.Errorf("energy = %v", e)
	}
	// The sink term only removes energy; total must not exceed deposit.
	if e > 3.95e7 {
		t.Errorf("energy grew: %v", e)
	}
}

func TestLuleshValidation(t *testing.T) {
	b, _ := Get("lulesh")
	if _, err := b.Run(Params{System: system(t, "cts1"), Ranks: 2, RanksPerNode: 2,
		Vars: map[string]string{"size": "2"}}); err == nil {
		t.Error("tiny size should fail")
	}
}

func TestGUPS(t *testing.T) {
	b, _ := Get("gups")
	out, err := b.Run(Params{
		System: system(t, "cts1"), Ranks: 8, RanksPerNode: 8,
		Vars: map[string]string{"log2_table_size": "12", "updates_per_rank": "256", "rounds": "2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`GUPS: ([0-9.]+)`).FindStringSubmatch(out.Text)
	if m == nil {
		t.Fatalf("no GUPS in output:\n%s", out.Text)
	}
	g, _ := strconv.ParseFloat(m[1], 64)
	if g <= 0 {
		t.Errorf("gups = %v", g)
	}
	if out.Profile.Region("main/updates/alltoall").Count != 16 { // 2 rounds × 8 ranks
		t.Errorf("alltoall count = %d", out.Profile.Region("main/updates/alltoall").Count)
	}
	// Determinism: identical checksum across runs.
	out2, err := b.Run(Params{
		System: system(t, "cts1"), Ranks: 8, RanksPerNode: 8,
		Vars: map[string]string{"log2_table_size": "12", "updates_per_rank": "256", "rounds": "2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cks := regexp.MustCompile(`Table checksum: ([0-9]+)`)
	if cks.FindStringSubmatch(out.Text)[1] != cks.FindStringSubmatch(out2.Text)[1] {
		t.Error("GUPS checksum not deterministic")
	}
}

// TestSaxpyThreadScaling: more OpenMP threads reduce the memory-bound
// kernel time until the bandwidth saturates, then plateau.
func TestSaxpyThreadScaling(t *testing.T) {
	b, _ := Get("saxpy")
	timeFor := func(threads int) float64 {
		out, err := b.Run(Params{
			System: system(t, "cts1"), Ranks: 1, RanksPerNode: 1, Threads: threads,
			Vars: map[string]string{"n": "50000000"},
		})
		if err != nil {
			t.Fatal(err)
		}
		return out.Elapsed
	}
	t1, t4, t18, t36 := timeFor(1), timeFor(4), timeFor(18), timeFor(36)
	if t4 >= t1 || t18 >= t4 {
		t.Errorf("threads should help below saturation: %g %g %g", t1, t4, t18)
	}
	// Beyond half the cores (saturation) no further gain.
	if t36 < t18*0.99 {
		t.Errorf("past saturation should plateau: t18=%g t36=%g", t18, t36)
	}
}

// TestAMG3DDecomposition: the same problem solved with a 2×2×2
// process grid converges, and its converged residual matches the
// slab decomposition's (same global operator).
func TestAMG3DDecomposition(t *testing.T) {
	b, _ := Get("amg2023")
	run := func(px, py, pz int) (string, string) {
		out, err := b.Run(Params{
			System: system(t, "cts1"), Ranks: 8, RanksPerNode: 8,
			Vars: map[string]string{
				"nx": "8", "ny": "8", "nz": "8", "tolerance": "1e-8",
				"px": itoaT(px), "py": itoaT(py), "pz": itoaT(pz),
			},
		})
		if err != nil {
			t.Fatalf("P %dx%dx%d: %v", px, py, pz, err)
		}
		if !strings.Contains(out.Text, "converged") {
			t.Fatalf("P %dx%dx%d did not converge:\n%s", px, py, pz, out.Text)
		}
		iters := regexp.MustCompile(`Iterations: (\d+)`).FindStringSubmatch(out.Text)[1]
		res := regexp.MustCompile(`Relative residual: ([0-9.e+-]+)`).FindStringSubmatch(out.Text)[1]
		return iters, res
	}
	cubeIters, _ := run(2, 2, 2)
	slabIters, _ := run(1, 1, 8)
	xIters, _ := run(8, 1, 1)
	t.Logf("iterations: cube=%s slab=%s x-slab=%s", cubeIters, slabIters, xIters)
	// All decompositions converge; iteration counts may differ by a
	// few (the local preconditioner sees different subdomains) but
	// must stay in the same regime.
	for _, s := range []string{cubeIters, slabIters, xIters} {
		n, _ := strconv.Atoi(s)
		if n > 60 {
			t.Errorf("iterations = %s, preconditioning regressed", s)
		}
	}
}

func TestAMGBadDecompositionRejected(t *testing.T) {
	b, _ := Get("amg2023")
	if _, err := b.Run(Params{
		System: system(t, "cts1"), Ranks: 8, RanksPerNode: 8,
		Vars: map[string]string{"nx": "8", "ny": "8", "nz": "8", "px": "3", "py": "1", "pz": "1"},
	}); err == nil {
		t.Error("3x1x1 on 8 ranks should be rejected")
	}
	if _, err := b.Run(Params{
		System: system(t, "cts1"), Ranks: 8, RanksPerNode: 8,
		Vars: map[string]string{"nx": "8", "ny": "8", "nz": "8", "px": "3", "py": "2"},
	}); err == nil {
		t.Error("px*py not dividing ranks should be rejected")
	}
}

func itoaT(n int) string { return strconv.Itoa(n) }
