package bench

import (
	"fmt"

	"repro/internal/caliper"
	"repro/internal/mpisim"
)

func init() {
	register(Benchmark{
		Name:        "stream",
		Description: "STREAM triad: sustained memory bandwidth (a[i] = b[i] + s*c[i])",
		Workloads:   []string{"triad"},
		Run:         runStream,
	})
}

func runStream(p Params) (*Output, error) {
	if err := validate(&p); err != nil {
		return nil, err
	}
	n, err := p.IntVar("n", 10_000_000)
	if err != nil {
		return nil, err
	}
	iters, err := p.IntVar("iterations", 10)
	if err != nil {
		return nil, err
	}
	if n <= 0 || iters <= 0 {
		return nil, fmt.Errorf("stream: n=%d iterations=%d", n, iters)
	}
	const s = 3.0

	profiles := make([]*caliper.Profile, p.Ranks)
	var text string
	res, err := mpisim.Run(p.System, p.Ranks, p.RanksPerNode, func(c *mpisim.Comm) error {
		rec := caliper.NewRecorder(c.Now)
		realN := n
		if realN > maxRealElems {
			realN = maxRealElems
		}
		a := make([]float64, realN)
		b := make([]float64, realN)
		cc := make([]float64, realN)
		for i := range b {
			b[i] = 1.0
			cc[i] = 2.0
		}
		rec.Begin("triad")
		start := c.Now()
		for it := 0; it < iters; it++ {
			for i := range a {
				a[i] = b[i] + s*cc[i]
			}
			chargeMemory(c, p, 24*float64(n)) // 3 arrays × 8 bytes
		}
		if err := rec.End("triad"); err != nil {
			return err
		}
		perRankGBs := 24 * float64(n) * float64(iters) / (c.Now() - start) / 1e9

		// Aggregate node bandwidth = sum over the ranks of one node;
		// report the min across ranks as STREAM does.
		minBW := c.Allreduce([]float64{perRankGBs}, mpisim.OpMin)
		prof, err := rec.Snapshot()
		if err != nil {
			return err
		}
		profiles[c.Rank()] = prof
		if c.Rank() == 0 {
			nodeBW := minBW[0] * float64(c.RanksPerNode())
			text = fmt.Sprintf("STREAM triad: n=%d iterations=%d\nTriad: %.2f GB/s per node\nBest rank rate: %.2f GB/s\nKernel done\n",
				n, iters, nodeBW, perRankGBs)
			if a[0] != b[0]+s*cc[0] {
				text += "VALIDATION FAILED\n"
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	md := baseMetadata("stream", p)
	md.Setf("n", "%d", n)
	return &Output{Text: text, Elapsed: res.MaxTime, Profile: caliper.MergeRanks(profiles), Metadata: md}, nil
}
