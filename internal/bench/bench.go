// Package bench implements the benchmarks Benchpark runs: the saxpy
// micro-benchmark of Section 4, the AMG2023 proxy (distributed
// Poisson solver with a multigrid-preconditioned CG), a STREAM triad
// bandwidth benchmark, and OSU-style MPI micro-benchmarks (the
// MPI_Bcast benchmark behind Figure 14).
//
// Each benchmark executes real Go computation on simulated MPI ranks
// (internal/mpisim): numerics, reductions and halo exchanges are
// real; elapsed time is the simulated logical clock, with large
// memory sweeps charged to the clock through the system's performance
// model. Kernels are annotated with Caliper regions and emit the
// textual output that Ramble's figure-of-merit regexes parse
// (Figure 8: "Kernel done").
package bench

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/adiak"
	"repro/internal/caliper"
	"repro/internal/hpcsim"
	"repro/internal/mpisim"
)

// Params configures one benchmark execution.
type Params struct {
	System       *hpcsim.System
	Ranks        int
	RanksPerNode int
	Threads      int               // OpenMP threads per rank
	Variant      string            // "", "openmp", "cuda", "rocm"
	Vars         map[string]string // workload variables (n, px, iterations, ...)
}

// Var returns a workload variable with a default.
func (p Params) Var(name, def string) string {
	if v, ok := p.Vars[name]; ok && v != "" {
		return v
	}
	return def
}

// IntVar returns an integer workload variable with a default.
func (p Params) IntVar(name string, def int) (int, error) {
	v, ok := p.Vars[name]
	if !ok || v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bench: variable %s=%q is not an integer", name, v)
	}
	return n, nil
}

// FloatVar returns a float workload variable with a default.
func (p Params) FloatVar(name string, def float64) (float64, error) {
	v, ok := p.Vars[name]
	if !ok || v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bench: variable %s=%q is not a number", name, v)
	}
	return f, nil
}

// Output is what one benchmark run produces: the text Ramble's FOM
// regexes scan, the simulated elapsed time, a merged Caliper profile,
// and Adiak metadata.
type Output struct {
	Text     string
	Elapsed  float64 // simulated seconds, slowest rank
	Profile  *caliper.Profile
	Metadata *adiak.Metadata
}

// RunFunc executes a benchmark.
type RunFunc func(Params) (*Output, error)

// Benchmark is one registered benchmark program.
type Benchmark struct {
	Name        string
	Description string
	Workloads   []string
	Run         RunFunc
}

var registry = map[string]Benchmark{}

func register(b Benchmark) {
	if _, dup := registry[b.Name]; dup {
		panic("bench: duplicate benchmark " + b.Name)
	}
	registry[b.Name] = b
}

// Get returns a registered benchmark.
func Get(name string) (Benchmark, error) {
	b, ok := registry[name]
	if !ok {
		return Benchmark{}, fmt.Errorf("bench: unknown benchmark %q (have %v)", name, Names())
	}
	return b, nil
}

// Names lists registered benchmarks, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// effectiveMemBW returns the per-rank sustainable memory bandwidth in
// bytes/s: node bandwidth scales with active threads until saturation
// (at half the cores, STREAM-like), then is shared by the node's ranks.
func effectiveMemBW(sys *hpcsim.System, ranksPerNode, threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	cores := sys.Node.Cores()
	active := ranksPerNode * threads
	if active > cores {
		active = cores
	}
	saturation := cores / 2
	if saturation < 1 {
		saturation = 1
	}
	frac := float64(active) / float64(saturation)
	if frac > 1 {
		frac = 1
	}
	nodeBW := sys.Node.MemBWGBs * 1e9 * frac
	return nodeBW / float64(ranksPerNode)
}

// chargeMemory advances the rank clock for a memory-bound sweep of
// the given bytes under the thread model above.
func chargeMemory(c *mpisim.Comm, p Params, bytes float64) {
	bw := effectiveMemBW(p.System, c.RanksPerNode(), p.Threads)
	c.Compute(bytes / bw)
}

// chargeFlops advances the rank clock for a compute-bound kernel:
// threads multiply the per-core rate up to the per-rank core share.
func chargeFlops(c *mpisim.Comm, p Params, flops float64) {
	threads := p.Threads
	if threads < 1 {
		threads = 1
	}
	share := p.System.Node.Cores() / c.RanksPerNode()
	if threads > share && share > 0 {
		threads = share
	}
	rate := p.System.Node.GFlopsPerCore * 1e9 * float64(threads)
	c.Compute(flops / rate)
}

// validate fills Params defaults and sanity checks.
func validate(p *Params) error {
	if p.System == nil {
		return fmt.Errorf("bench: no system")
	}
	if p.Ranks <= 0 {
		return fmt.Errorf("bench: ranks = %d", p.Ranks)
	}
	if p.RanksPerNode <= 0 {
		p.RanksPerNode = p.System.Node.Cores()
	}
	if p.Threads <= 0 {
		p.Threads = 1
	}
	return nil
}

// writePAPI emits simulated hardware-counter lines when the "papi"
// modifier variable is set — the architecture-specific FOMs that
// Section 4.5's modifier construct captures. Counts derive
// deterministically from the kernel's operation model.
func writePAPI(b *strings.Builder, p Params, flops, bytes float64) {
	if p.Var("papi", "") != "1" {
		return
	}
	l3Misses := bytes / 64 // one miss per streamed cache line
	fmt.Fprintf(b, "papi.PAPI_FP_OPS: %.6e\npapi.PAPI_L3_TCM: %.6e\n", flops, l3Misses)
}

// baseMetadata assembles the Adiak descriptors every benchmark emits.
func baseMetadata(name string, p Params) *adiak.Metadata {
	md := adiak.New()
	adiak.CollectDefaults(md, name, p.System.Name, "benchpark")
	md.Setf("n_ranks", "%d", p.Ranks)
	md.Setf("ranks_per_node", "%d", p.RanksPerNode)
	md.Setf("n_threads", "%d", p.Threads)
	if p.Variant != "" {
		md.Set("variant", p.Variant)
	}
	return md
}
