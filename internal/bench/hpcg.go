package bench

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/caliper"
	"repro/internal/mpisim"
)

func init() {
	register(Benchmark{
		Name: "hpcg",
		Description: "High Performance Conjugate Gradients: fixed-iteration " +
			"Jacobi-preconditioned CG on a 7-point stencil, reporting GFLOP/s",
		Workloads: []string{"hpcg"},
		Run:       runHPCG,
	})
}

// runHPCG runs a fixed number of CG iterations (HPCG's rating model)
// and reports the sustained GFLOP/s figure of merit.
func runHPCG(p Params) (*Output, error) {
	if err := validate(&p); err != nil {
		return nil, err
	}
	nx, err := p.IntVar("nx", 32)
	if err != nil {
		return nil, err
	}
	ny, err := p.IntVar("ny", 32)
	if err != nil {
		return nil, err
	}
	nz, err := p.IntVar("nz", 32)
	if err != nil {
		return nil, err
	}
	iters, err := p.IntVar("iterations", 50)
	if err != nil {
		return nil, err
	}
	if nx < 2 || ny < 2 || nz < 2 || iters < 1 {
		return nil, fmt.Errorf("hpcg: bad geometry %dx%dx%d iters=%d", nx, ny, nz, iters)
	}
	nLocal := nx * ny * nz

	// FLOP accounting per iteration (HPCG-style):
	//   SpMV: 2 flops × 7 nonzeros × n; dots: 3 × 2n; axpys: 3 × 2n;
	//   Jacobi preconditioner: 2n.
	flopsPerIter := float64(nLocal) * (14 + 6 + 6 + 2)

	profiles := make([]*caliper.Profile, p.Ranks)
	var text string
	res, err := mpisim.Run(p.System, p.Ranks, p.RanksPerNode, func(c *mpisim.Comm) error {
		rec := caliper.NewRecorder(c.Now)
		rec.Begin("main")
		x := newGrid(nx, ny, nz)
		b := newGrid(nx, ny, nz)
		for n := range b.v {
			b.v[n] = 1.0
		}
		r := newGrid(nx, ny, nz)
		q := newGrid(nx, ny, nz)
		pv := newGrid(nx, ny, nz)
		copy(r.v, b.v)

		dot := func(a, bb *grid) float64 {
			var s float64
			for n := range a.v {
				s += a.v[n] * bb.v[n]
			}
			chargeFlops(c, p, 2*float64(nLocal))
			return s
		}
		allSum := func(v float64) float64 { return c.Allreduce([]float64{v}, mpisim.OpSum)[0] }

		// z = D^{-1} r (Jacobi preconditioner; D = 6).
		precond := func(rr *grid) *grid {
			z := newGrid(nx, ny, nz)
			for n := range z.v {
				z.v[n] = rr.v[n] / 6.0
			}
			chargeMemory(c, p, 16*float64(nLocal))
			return z
		}

		start := c.Now()
		rec.Begin("cg")
		z := precond(r)
		copy(pv.v, z.v)
		rz := allSum(dot(r, z))
		residual := math.Sqrt(allSum(dot(r, r)))
		for it := 0; it < iters; it++ {
			rec.Begin("spmv")
			h := exchangeHalo(c, pv)
			applyA(q, pv, &h)
			chargeMemory(c, p, 72*float64(nLocal))
			if err := rec.End("spmv"); err != nil {
				return err
			}
			pq := allSum(dot(pv, q))
			if pq == 0 {
				break
			}
			alpha := rz / pq
			for n := range x.v {
				x.v[n] += alpha * pv.v[n]
				r.v[n] -= alpha * q.v[n]
			}
			chargeFlops(c, p, 4*float64(nLocal))
			z = precond(r)
			rzNew := allSum(dot(r, z))
			beta := rzNew / rz
			rz = rzNew
			for n := range pv.v {
				pv.v[n] = z.v[n] + beta*pv.v[n]
			}
			chargeFlops(c, p, 2*float64(nLocal))
		}
		residual = math.Sqrt(allSum(dot(r, r)))
		if err := rec.End("cg"); err != nil {
			return err
		}
		elapsed := c.Now() - start
		if err := rec.End("main"); err != nil {
			return err
		}
		prof, err := rec.Snapshot()
		if err != nil {
			return err
		}
		profiles[c.Rank()] = prof

		if c.Rank() == 0 {
			totalFlops := flopsPerIter * float64(iters) * float64(p.Ranks)
			gflops := totalFlops / elapsed / 1e9
			var tb strings.Builder
			fmt.Fprintf(&tb, "HPCG: grid %dx%dx%d per rank, ranks=%d, %d iterations\n",
				nx, ny, nz, p.Ranks, iters)
			fmt.Fprintf(&tb, "Final residual: %.6e\n", residual)
			fmt.Fprintf(&tb, "Benchmark time: %.6f s\n", elapsed)
			fmt.Fprintf(&tb, "HPCG rating (GFLOP/s): %.4f\n", gflops)
			writePAPI(&tb, p, totalFlops, 72*float64(nLocal)*float64(iters)*float64(p.Ranks))
			tb.WriteString("Kernel done\n")
			text = tb.String()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	md := baseMetadata("hpcg", p)
	md.Setf("grid", "%dx%dx%d", nx, ny, nz)
	return &Output{Text: text, Elapsed: res.MaxTime, Profile: caliper.MergeRanks(profiles), Metadata: md}, nil
}
