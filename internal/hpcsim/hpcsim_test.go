package hpcsim

import (
	"strings"
	"testing"
)

func TestPaperSystemsRegistered(t *testing.T) {
	// The three systems of Section 4.
	for _, name := range []string{"cts1", "ats2", "ats4"} {
		s, err := Get(name)
		if err != nil {
			t.Errorf("Get(%s): %v", name, err)
			continue
		}
		if s.Nodes <= 0 || s.Node.Cores() <= 0 {
			t.Errorf("%s has empty node model", name)
		}
		if s.Scheduler == "" || s.Launcher == "" {
			t.Errorf("%s missing scheduler/launcher", name)
		}
	}
	if _, err := Get("summit"); err == nil {
		t.Error("unknown system should error")
	}
}

func TestSystemCharacter(t *testing.T) {
	cts, _ := Get("cts1")
	if cts.Node.GPU != nil {
		t.Error("cts1 is CPU-only")
	}
	if cts.Node.Cores() != 36 {
		t.Errorf("cts1 cores = %d", cts.Node.Cores())
	}
	if cts.Network.BcastAlgo != "scatter-allgather" {
		t.Errorf("cts1 bcast algo = %s (Figure 14 needs the linear-in-p model)", cts.Network.BcastAlgo)
	}

	ats2, _ := Get("ats2")
	if ats2.Node.GPU == nil || ats2.Node.GPU.Runtime != "cuda" || ats2.Node.GPU.PerNode != 4 {
		t.Errorf("ats2 GPU = %+v", ats2.Node.GPU)
	}
	if ats2.Scheduler != "lsf" || ats2.Launcher != "jsrun" {
		t.Errorf("ats2 scheduler/launcher = %s/%s", ats2.Scheduler, ats2.Launcher)
	}

	ats4, _ := Get("ats4")
	if ats4.Node.GPU == nil || ats4.Node.GPU.Runtime != "rocm" {
		t.Errorf("ats4 GPU = %+v", ats4.Node.GPU)
	}
}

func TestMicroarchDetection(t *testing.T) {
	want := map[string]string{
		"cts1":         "broadwell",
		"ats2":         "power9le",
		"ats4":         "zen3",
		"cloud-c5n":    "skylake_avx512",
		"fugaku-a64fx": "a64fx",
		// The cloud twin hides avx512_vnni, so it detects as skylake.
		"cloud-m6i":      "skylake_avx512",
		"onprem-icelake": "icelake",
	}
	for sys, target := range want {
		s, err := Get(sys)
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.Microarch()
		if err != nil {
			t.Errorf("%s: %v", sys, err)
			continue
		}
		if m.Name != target {
			t.Errorf("%s detects %s, want %s", sys, m.Name, target)
		}
	}
}

// TestSection71Portability models the paper's Section 7.1 incident:
// the same binary runs on premise but crashes in the cloud because
// one hardware feature is missing.
func TestSection71Portability(t *testing.T) {
	onprem, _ := Get("onprem-icelake")
	cloud, _ := Get("cloud-m6i")

	// Binary built on premise targets icelake.
	m, err := onprem.Microarch()
	if err != nil {
		t.Fatal(err)
	}
	target := m.Name

	ok, _ := onprem.CanRunBinary(target)
	if !ok {
		t.Fatal("binary must run where it was built")
	}
	ok, reason := cloud.CanRunBinary(target)
	if ok {
		t.Fatal("binary must crash on the cloud twin")
	}
	if !strings.Contains(reason, "avx512_vnni") && !strings.Contains(reason, "icelake") {
		t.Errorf("diagnosis should implicate the missing feature: %q", reason)
	}

	// The reverse direction works: a binary built on the cloud's
	// detected target runs on premise.
	cm, _ := cloud.Microarch()
	if ok, reason := onprem.CanRunBinary(cm.Name); !ok {
		t.Errorf("onprem should run cloud-built binary: %s", reason)
	}
}

func TestCanRunBinaryUnknownTarget(t *testing.T) {
	s, _ := Get("cts1")
	if ok, _ := s.CanRunBinary("pdp11"); ok {
		t.Error("unknown target should not run")
	}
}

func TestCrossArchRejected(t *testing.T) {
	cts, _ := Get("cts1")
	if ok, _ := cts.CanRunBinary("power9le"); ok {
		t.Error("x86 system cannot run POWER binaries")
	}
}

func TestTotalCores(t *testing.T) {
	cts, _ := Get("cts1")
	if cts.TotalCores() != 1200*36 {
		t.Errorf("cts1 total cores = %d", cts.TotalCores())
	}
	// Figure 14 measures up to 3456 processes; cts1 must be big enough.
	if cts.TotalCores() < 3456 {
		t.Error("cts1 too small for the Figure 14 sweep")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) < 7 {
		t.Errorf("systems = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("names not sorted")
		}
	}
}

func TestMathLibBugFlag(t *testing.T) {
	cloud, _ := Get("cloud-m6i")
	if !cloud.MathLibBug {
		t.Error("cloud-m6i should carry the Section 7.1 math-library bug")
	}
	onprem, _ := Get("onprem-icelake")
	if onprem.MathLibBug {
		t.Error("onprem twin should not")
	}
}

func TestProvisionCloudCluster(t *testing.T) {
	sys, err := ProvisionCloudCluster("burst-c5n", "c5n.18xlarge", 128)
	if err != nil {
		t.Fatal(err)
	}
	// Registered: suites can target it by name.
	got, err := Get("burst-c5n")
	if err != nil || got != sys {
		t.Fatalf("registry lookup: %v", err)
	}
	if sys.Nodes != 128 || sys.Node.Cores() != 36 {
		t.Errorf("cluster shape: %d nodes × %d cores", sys.Nodes, sys.Node.Cores())
	}
	m, err := sys.Microarch()
	if err != nil || m.Name != "skylake_avx512" {
		t.Errorf("arch = %v, %v", m, err)
	}
	if !strings.Contains(sys.Description, "$") {
		t.Errorf("description should carry cost: %q", sys.Description)
	}
	// Duplicate name rejected.
	if _, err := ProvisionCloudCluster("burst-c5n", "c5n.18xlarge", 4); err == nil {
		t.Error("duplicate registration should fail")
	}
	// Unknown instance type rejected.
	if _, err := ProvisionCloudCluster("x", "t2.micro", 4); err == nil {
		t.Error("unknown instance type should fail")
	}
	if _, err := ProvisionCloudCluster("y", "c5n.18xlarge", 0); err == nil {
		t.Error("zero nodes should fail")
	}
	// The Graviton type detects as neoverse_v1.
	g, err := ProvisionCloudCluster("burst-arm", "hpc7g.16xlarge", 16)
	if err != nil {
		t.Fatal(err)
	}
	gm, _ := g.Microarch()
	if gm.Name != "neoverse_v1" {
		t.Errorf("graviton arch = %s", gm.Name)
	}
}
