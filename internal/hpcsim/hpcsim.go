// Package hpcsim models the HPC systems Benchpark runs on. The paper
// demonstrates on three LLNL systems (Section 4): cts1 (Intel Xeon),
// ats2 (Power9 + V100), and ats4 EAS (AMD Trento + MI-250X); Section
// 7 adds cloud instances as "just another platform".
//
// Since the real machines are not available to a reproduction, each
// system is a parameterized performance model: node counts, core
// counts, memory and network characteristics, GPU inventory, and the
// CPU feature set that archspec detection sees. The MPI simulator,
// the batch-scheduler simulator, and the benchmark kernels all derive
// their simulated timings from these parameters, so relative
// performance across systems behaves the way the paper's ecosystem
// assumes (DESIGN.md documents this substitution).
package hpcsim

import (
	"fmt"
	"sort"

	"repro/internal/archspec"
)

// GPU describes one accelerator model.
type GPU struct {
	Model     string
	Arch      string  // "sm_70", "gfx90a"
	MemGB     float64 //
	PeakTF    float64 // peak FP64 TFLOP/s
	MemBWGBs  float64 // HBM bandwidth
	Runtime   string  // "cuda" or "rocm"
	PerNode   int
	LinkGBs   float64 // host link bandwidth (NVLink/xGMI/PCIe)
	LinkLatUS float64
}

// NodeModel describes one compute node.
type NodeModel struct {
	Sockets        int
	CoresPerSocket int
	MemGB          float64
	// GFlopsPerCore is sustained FP64 GFLOP/s per core for
	// compute-bound kernels.
	GFlopsPerCore float64
	// MemBWGBs is sustained node memory bandwidth (STREAM triad).
	MemBWGBs float64
	GPU      *GPU
}

// Cores returns cores per node.
func (n NodeModel) Cores() int { return n.Sockets * n.CoresPerSocket }

// Network describes the interconnect performance model.
type Network struct {
	Name string
	// LatencyUS is the small-message latency α in microseconds.
	LatencyUS float64
	// BandwidthGBs is per-link bandwidth (the reciprocal of β).
	BandwidthGBs float64
	// BcastAlgo selects the collective algorithm model for MPI_Bcast:
	// "binomial" (log p) or "scatter-allgather" (van de Geijn; linear
	// in p for the latency term — the shape Figure 14 measures on CTS).
	BcastAlgo string
}

// System is one HPC system profile — everything the Benchpark
// system-specific configs (Figure 1a configs/) describe, plus the
// performance model.
type System struct {
	Name        string
	Site        string
	Description string

	Nodes   int
	Node    NodeModel
	Network Network

	// Scheduler and Launcher mirror variables.yaml (Figure 12).
	Scheduler string // "slurm", "lsf", "flux"
	Launcher  string // "srun", "jsrun", "flux run"

	// CPU is what /proc/cpuinfo reports; archspec detection runs on it.
	CPU archspec.CPUInfo

	// SystemNoisePct is the deterministic pseudo-noise amplitude for
	// simulated timings (fraction, e.g. 0.02 = ±2%).
	SystemNoisePct float64

	// MathLibBug, when true, models the Section 7.1 incident: the
	// vendor math library crashes on this system because a hardware
	// feature it requires is missing.
	MathLibBug bool
}

// TotalCores returns the system's core count.
func (s *System) TotalCores() int { return s.Nodes * s.Node.Cores() }

// Microarch runs archspec detection on the system's CPU.
func (s *System) Microarch() (*archspec.Microarchitecture, error) {
	return archspec.Detect(s.CPU)
}

// CanRunBinary reports whether a binary built for the given target
// runs on this system, and if not, why — the Section 7.1 portability
// check ("Illegal instruction" when the feature is missing).
func (s *System) CanRunBinary(target string) (bool, string) {
	tm, err := archspec.Lookup(target)
	if err != nil {
		return false, fmt.Sprintf("unknown target %q", target)
	}
	mine, err := s.Microarch()
	if err != nil {
		return false, "cannot detect local microarchitecture: " + err.Error()
	}
	if mine.CompatibleWith(tm) {
		return true, ""
	}
	// Report the first missing feature for the diagnosis workflow.
	for _, f := range tm.AllFeatures() {
		if !mine.HasFeatures(f) {
			return false, fmt.Sprintf("SIGILL: binary targets %s, %s lacks feature %q", target, mine.Name, f)
		}
	}
	return false, fmt.Sprintf("binary targets %s which is not an ancestor of %s", target, mine.Name)
}

// Clone returns an independent copy of the system profile, for
// what-if modeling (degraded hardware, firmware changes) without
// touching the registry.
func (s *System) Clone() *System {
	c := *s
	if s.Node.GPU != nil {
		g := *s.Node.GPU
		c.Node.GPU = &g
	}
	c.CPU.Features = append([]string(nil), s.CPU.Features...)
	return &c
}

// registry of known systems.
var registry = map[string]*System{}

func register(s *System) {
	if _, dup := registry[s.Name]; dup {
		panic("hpcsim: duplicate system " + s.Name)
	}
	registry[s.Name] = s
}

// Get returns the named system profile.
func Get(name string) (*System, error) {
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("hpcsim: unknown system %q (have %v)", name, Names())
	}
	return s, nil
}

// Register adds a dynamically built system (e.g. a provisioned cloud
// cluster) to the registry so suites can target it by name.
func Register(s *System) error {
	if s.Name == "" {
		return fmt.Errorf("hpcsim: system with empty name")
	}
	if _, dup := registry[s.Name]; dup {
		return fmt.Errorf("hpcsim: system %q already registered", s.Name)
	}
	registry[s.Name] = s
	return nil
}

// CloudInstanceType describes one rentable instance family for
// Section 7.2's "configuring a cluster of desired or locally
// unavailable processors without the need to wait in queues".
type CloudInstanceType struct {
	Name       string
	Node       NodeModel
	CPU        archspec.CPUInfo
	NetLatUS   float64
	NetBWGBs   float64
	HourlyCost float64 // $ per node hour, for the provisioning report
}

// CloudCatalog lists the instance types the simulated provider rents.
var CloudCatalog = map[string]CloudInstanceType{
	"c5n.18xlarge": {
		Name: "c5n.18xlarge",
		Node: NodeModel{Sockets: 2, CoresPerSocket: 18, MemGB: 192, GFlopsPerCore: 25.6, MemBWGBs: 140},
		CPU: archspec.CPUInfo{VendorID: "GenuineIntel", Family: "x86_64",
			Features: featuresOf("skylake_avx512")},
		NetLatUS: 15.0, NetBWGBs: 12.0, HourlyCost: 3.888,
	},
	"m6i.32xlarge": {
		Name: "m6i.32xlarge",
		Node: NodeModel{Sockets: 2, CoresPerSocket: 32, MemGB: 512, GFlopsPerCore: 27.0, MemBWGBs: 170},
		CPU: archspec.CPUInfo{VendorID: "GenuineIntel", Family: "x86_64",
			Features: without(featuresOf("icelake"), "avx512_vnni")},
		NetLatUS: 14.0, NetBWGBs: 6.25, HourlyCost: 6.144,
	},
	"hpc7g.16xlarge": {
		Name: "hpc7g.16xlarge",
		Node: NodeModel{Sockets: 1, CoresPerSocket: 64, MemGB: 128, GFlopsPerCore: 31.0, MemBWGBs: 300},
		CPU: archspec.CPUInfo{VendorID: "ARM", Family: "aarch64",
			Features: featuresOf("neoverse_v1")},
		NetLatUS: 12.0, NetBWGBs: 25.0, HourlyCost: 1.68,
	},
}

// ProvisionCloudCluster builds and registers an on-demand cluster of
// the given instance type — cloud as "another platform" (Section 7.2).
func ProvisionCloudCluster(name, instanceType string, nodes int) (*System, error) {
	it, ok := CloudCatalog[instanceType]
	if !ok {
		var have []string
		for k := range CloudCatalog {
			have = append(have, k)
		}
		sort.Strings(have)
		return nil, fmt.Errorf("hpcsim: unknown instance type %q (have %v)", instanceType, have)
	}
	if nodes <= 0 || nodes > 10000 {
		return nil, fmt.Errorf("hpcsim: cannot provision %d nodes", nodes)
	}
	sys := &System{
		Name: name,
		Site: "AWS",
		Description: fmt.Sprintf("on-demand cluster: %d × %s ($%.2f/h)",
			nodes, instanceType, float64(nodes)*it.HourlyCost),
		Nodes: nodes,
		Node:  it.Node,
		Network: Network{
			Name: "efa", LatencyUS: it.NetLatUS, BandwidthGBs: it.NetBWGBs,
			BcastAlgo: "binomial",
		},
		Scheduler: "slurm", Launcher: "srun",
		CPU:            it.CPU,
		SystemNoisePct: 0.08, // multi-tenant jitter
	}
	if err := Register(sys); err != nil {
		return nil, err
	}
	return sys, nil
}

// Names lists registered systems, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func featuresOf(name string) []string {
	m, err := archspec.Lookup(name)
	if err != nil {
		panic(err)
	}
	return m.AllFeatures()
}

func without(feats []string, drop ...string) []string {
	out := make([]string, 0, len(feats))
	for _, f := range feats {
		skip := false
		for _, d := range drop {
			if f == d {
				skip = true
				break
			}
		}
		if !skip {
			out = append(out, f)
		}
	}
	return out
}

func init() {
	// cts1 — the CTS-1 commodity Intel Xeon cluster of Section 4 and
	// the system Figure 14 models MPI_Bcast on.
	register(&System{
		Name:        "cts1",
		Site:        "LLNL",
		Description: "CPU-only commodity cluster (Intel Xeon E5-2695 v4, Omni-Path)",
		Nodes:       1200,
		Node: NodeModel{
			Sockets: 2, CoresPerSocket: 18, MemGB: 128,
			GFlopsPerCore: 18.4, MemBWGBs: 120,
		},
		Network: Network{
			Name: "omni-path", LatencyUS: 1.45, BandwidthGBs: 12.5,
			BcastAlgo: "scatter-allgather",
		},
		Scheduler: "slurm", Launcher: "srun",
		CPU: archspec.CPUInfo{
			VendorID: "GenuineIntel", Family: "x86_64",
			Features: featuresOf("broadwell"),
		},
		SystemNoisePct: 0.02,
	})

	// ats2 — Power9 + V100, Sierra-class early access (lassen-like).
	register(&System{
		Name:        "ats2",
		Site:        "LLNL",
		Description: "IBM Power9 + NVIDIA V100 CPU/GPU hybrid (Sierra class)",
		Nodes:       756,
		Node: NodeModel{
			Sockets: 2, CoresPerSocket: 22, MemGB: 256,
			GFlopsPerCore: 24.0, MemBWGBs: 170,
			GPU: &GPU{
				Model: "V100", Arch: "sm_70", MemGB: 16, PeakTF: 7.8,
				MemBWGBs: 900, Runtime: "cuda", PerNode: 4,
				LinkGBs: 75, LinkLatUS: 8,
			},
		},
		Network: Network{
			Name: "infiniband-edr", LatencyUS: 1.2, BandwidthGBs: 23,
			BcastAlgo: "binomial",
		},
		Scheduler: "lsf", Launcher: "jsrun",
		CPU: archspec.CPUInfo{
			VendorID: "IBM", Family: "ppc64le",
			Features: featuresOf("power9le"),
		},
		SystemNoisePct: 0.025,
	})

	// ats4 EAS — AMD Trento + MI-250X early access (tioga-like).
	register(&System{
		Name:        "ats4",
		Site:        "LLNL",
		Description: "AMD Trento + MI-250X CPU/GPU hybrid early access system",
		Nodes:       128,
		Node: NodeModel{
			Sockets: 1, CoresPerSocket: 64, MemGB: 512,
			GFlopsPerCore: 32.0, MemBWGBs: 205,
			GPU: &GPU{
				Model: "MI250X", Arch: "gfx90a", MemGB: 128, PeakTF: 47.9,
				MemBWGBs: 3277, Runtime: "rocm", PerNode: 4,
				LinkGBs: 144, LinkLatUS: 6,
			},
		},
		Network: Network{
			Name: "slingshot-11", LatencyUS: 1.8, BandwidthGBs: 25,
			BcastAlgo: "binomial",
		},
		Scheduler: "flux", Launcher: "flux run",
		CPU: archspec.CPUInfo{
			VendorID: "AuthenticAMD", Family: "x86_64",
			Features: featuresOf("zen3"),
		},
		SystemNoisePct: 0.03,
	})

	// cloud-c5n — an AWS-like Skylake HPC instance cluster (Section 7.2:
	// cloud as "another platform").
	register(&System{
		Name:        "cloud-c5n",
		Site:        "AWS",
		Description: "Cloud cluster of Skylake-AVX512 instances with 100 Gb networking",
		Nodes:       256,
		Node: NodeModel{
			Sockets: 2, CoresPerSocket: 18, MemGB: 192,
			GFlopsPerCore: 25.6, MemBWGBs: 140,
		},
		Network: Network{
			Name: "ena-efa", LatencyUS: 15.0, BandwidthGBs: 12.0,
			BcastAlgo: "binomial",
		},
		Scheduler: "slurm", Launcher: "srun",
		CPU: archspec.CPUInfo{
			VendorID: "GenuineIntel", Family: "x86_64",
			Features: featuresOf("skylake_avx512"),
		},
		SystemNoisePct: 0.08,
	})

	// onprem-icelake / cloud-m6i — the Section 7.1 pair: near identical
	// systems, but the cloud instance lacks one hardware feature
	// (avx512_vnni) that the vendor math library uses, so the exact
	// same binary crashes there.
	register(&System{
		Name:        "onprem-icelake",
		Site:        "RIKEN",
		Description: "On-premise Icelake supercomputer partition",
		Nodes:       384,
		Node: NodeModel{
			Sockets: 2, CoresPerSocket: 32, MemGB: 256,
			GFlopsPerCore: 28.0, MemBWGBs: 180,
		},
		Network: Network{
			Name: "infiniband-hdr", LatencyUS: 1.1, BandwidthGBs: 25,
			BcastAlgo: "binomial",
		},
		Scheduler: "slurm", Launcher: "srun",
		CPU: archspec.CPUInfo{
			VendorID: "GenuineIntel", Family: "x86_64",
			Features: featuresOf("icelake"),
		},
		SystemNoisePct: 0.02,
	})
	register(&System{
		Name:        "cloud-m6i",
		Site:        "AWS",
		Description: "Cloud Icelake instances; hides avx512_vnni from guests",
		Nodes:       64,
		Node: NodeModel{
			Sockets: 2, CoresPerSocket: 32, MemGB: 256,
			GFlopsPerCore: 27.0, MemBWGBs: 170,
		},
		Network: Network{
			Name: "ena-efa", LatencyUS: 14.0, BandwidthGBs: 12.0,
			BcastAlgo: "binomial",
		},
		Scheduler: "slurm", Launcher: "srun",
		CPU: archspec.CPUInfo{
			VendorID: "GenuineIntel", Family: "x86_64",
			Features: without(featuresOf("icelake"), "avx512_vnni"),
		},
		SystemNoisePct: 0.06,
		MathLibBug:     true,
	})

	// fugaku-a64fx — a RIKEN-like Arm system for breadth.
	register(&System{
		Name:        "fugaku-a64fx",
		Site:        "RIKEN",
		Description: "Fujitsu A64FX Arm system with Tofu-D interconnect",
		Nodes:       512, // a partition
		Node: NodeModel{
			Sockets: 1, CoresPerSocket: 48, MemGB: 32,
			GFlopsPerCore: 56.0, MemBWGBs: 1024,
		},
		Network: Network{
			Name: "tofu-d", LatencyUS: 0.9, BandwidthGBs: 6.8,
			BcastAlgo: "binomial",
		},
		Scheduler: "slurm", Launcher: "srun",
		CPU: archspec.CPUInfo{
			VendorID: "Fujitsu", Family: "aarch64",
			Features: featuresOf("a64fx"),
		},
		SystemNoisePct: 0.015,
	})
}
