// Package scheduler simulates the HPC batch systems Benchpark submits
// to (variables.yaml, Figures 12/13: sbatch/srun on Slurm, jsrun on
// LSF, flux run). It is an event-driven simulator: jobs carry a node
// count, a time limit, and a payload whose simulated duration
// determines when the job completes; the scheduler advances a logical
// clock, allocating nodes FIFO with optional EASY backfill.
package scheduler

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/hpcsim"
)

// JobState is the lifecycle state of a batch job.
type JobState int

const (
	// Pending: queued, waiting for nodes.
	Pending JobState = iota
	// Running: allocated and executing.
	Running
	// Completed successfully.
	Completed
	// Failed: the payload returned an error.
	Failed
	// TimedOut: the payload exceeded the job's time limit.
	TimedOut
	// Cancelled before it started.
	Cancelled
)

func (s JobState) String() string {
	switch s {
	case Pending:
		return "PENDING"
	case Running:
		return "RUNNING"
	case Completed:
		return "COMPLETED"
	case Failed:
		return "FAILED"
	case TimedOut:
		return "TIMEOUT"
	case Cancelled:
		return "CANCELLED"
	}
	return "UNKNOWN"
}

// Payload executes the job's work and reports its simulated duration.
type Payload func() (elapsed float64, err error)

// Job is one batch job.
type Job struct {
	ID        int
	Name      string
	User      string
	Nodes     int
	TimeLimit float64 // seconds

	SubmitTime float64
	StartTime  float64
	EndTime    float64
	State      JobState
	Err        error

	payload Payload
}

// WaitTime returns how long the job queued.
func (j *Job) WaitTime() float64 { return j.StartTime - j.SubmitTime }

// Scheduler simulates one system's batch queue.
type Scheduler struct {
	sys       *hpcsim.System
	clock     float64
	freeNodes int
	nextID    int

	// Backfill enables EASY backfill: a pending job may jump the FIFO
	// head if, per its time limit, it cannot delay the head's
	// earliest possible start.
	Backfill bool

	pending   []*Job
	running   []*Job
	completed []*Job

	busyNodeSeconds float64
}

// New returns a scheduler for the system with all nodes free.
func New(sys *hpcsim.System) *Scheduler {
	return &Scheduler{sys: sys, freeNodes: sys.Nodes}
}

// Clock returns the simulated time.
func (s *Scheduler) Clock() float64 { return s.clock }

// Submit queues a job at the current simulated time.
func (s *Scheduler) Submit(name string, nodes int, timeLimit float64, payload Payload) (*Job, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("scheduler: job %q requests %d nodes", name, nodes)
	}
	if nodes > s.sys.Nodes {
		return nil, fmt.Errorf("scheduler: job %q requests %d nodes, %s has %d",
			name, nodes, s.sys.Name, s.sys.Nodes)
	}
	if timeLimit <= 0 {
		return nil, fmt.Errorf("scheduler: job %q has no time limit", name)
	}
	if payload == nil {
		return nil, fmt.Errorf("scheduler: job %q has no payload", name)
	}
	s.nextID++
	j := &Job{
		ID: s.nextID, Name: name, Nodes: nodes, TimeLimit: timeLimit,
		SubmitTime: s.clock, State: Pending, payload: payload, User: "benchpark",
	}
	s.pending = append(s.pending, j)
	return j, nil
}

// SubmitScript parses scheduler directives from a rendered batch
// script (Figure 13) and submits it. Three dialects are understood,
// matching the variables.yaml of each system profile:
//
//	#SBATCH -N <nodes> / -t <limit>    (Slurm)
//	#BSUB -nnodes <nodes> / -W <limit> (LSF)
//	#flux: -N <nodes> / -t <limit>     (Flux)
func (s *Scheduler) SubmitScript(name, script string, payload Payload) (*Job, error) {
	nodes := 1
	limit := 3600.0
	for _, line := range strings.Split(script, "\n") {
		line = strings.TrimSpace(line)
		var fields []string
		switch {
		case strings.HasPrefix(line, "#SBATCH"), strings.HasPrefix(line, "#BSUB"),
			strings.HasPrefix(line, "#flux:"):
			fields = strings.Fields(line)
		default:
			continue
		}
		for i := 1; i+1 < len(fields); i += 2 {
			switch fields[i] {
			case "-N", "-nnodes":
				n, err := strconv.Atoi(fields[i+1])
				if err != nil {
					return nil, fmt.Errorf("scheduler: bad %s %s %q", fields[0], fields[i], fields[i+1])
				}
				nodes = n
			case "-t", "-W":
				sec, err := parseTimeLimit(fields[i+1])
				if err != nil {
					return nil, err
				}
				limit = sec
			}
		}
	}
	return s.Submit(name, nodes, limit, payload)
}

// parseTimeLimit accepts "MM", "MM:SS" or "HH:MM:SS".
func parseTimeLimit(text string) (float64, error) {
	parts := strings.Split(text, ":")
	var nums []float64
	for _, p := range parts {
		n, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return 0, fmt.Errorf("scheduler: bad time limit %q", text)
		}
		nums = append(nums, n)
	}
	switch len(nums) {
	case 1:
		return nums[0] * 60, nil
	case 2:
		return nums[0]*60 + nums[1], nil
	case 3:
		return nums[0]*3600 + nums[1]*60 + nums[2], nil
	}
	return 0, fmt.Errorf("scheduler: bad time limit %q", text)
}

// start launches a job at the current clock.
func (s *Scheduler) start(j *Job) {
	s.freeNodes -= j.Nodes
	j.StartTime = s.clock
	j.State = Running
	elapsed, err := j.payload()
	switch {
	case err != nil:
		j.State = Failed // final state recorded at EndTime
		j.Err = err
		if elapsed <= 0 {
			elapsed = 1
		}
		j.EndTime = s.clock + elapsed
	case elapsed > j.TimeLimit:
		j.State = TimedOut
		j.Err = fmt.Errorf("scheduler: job %s exceeded time limit (%.0fs > %.0fs)", j.Name, elapsed, j.TimeLimit)
		j.EndTime = s.clock + j.TimeLimit
	default:
		j.State = Completed
		j.EndTime = s.clock + elapsed
	}
	s.running = append(s.running, j)
}

// tryStart starts every job that can run now, honoring FIFO order
// with optional EASY backfill.
func (s *Scheduler) tryStart() {
	for len(s.pending) > 0 && s.pending[0].Nodes <= s.freeNodes {
		j := s.pending[0]
		s.pending = s.pending[1:]
		s.start(j)
	}
	if !s.Backfill || len(s.pending) == 0 {
		return
	}
	// Shadow time: when could the head start, given running jobs end
	// at their recorded EndTime?
	head := s.pending[0]
	shadow, shadowFree := s.shadowStart(head)
	i := 1
	for i < len(s.pending) {
		j := s.pending[i]
		fits := j.Nodes <= s.freeNodes
		// Safe if it finishes before the shadow time, or leaves enough
		// nodes for the head even at the shadow time.
		safe := s.clock+j.TimeLimit <= shadow || j.Nodes <= shadowFree-head.Nodes
		if fits && safe {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			s.start(j)
			shadow, shadowFree = s.shadowStart(head)
			continue
		}
		i++
	}
}

// shadowStart computes the earliest time the head job could start and
// the free node count at that time.
func (s *Scheduler) shadowStart(head *Job) (when float64, freeAt int) {
	free := s.freeNodes
	ends := append([]*Job(nil), s.running...)
	sort.Slice(ends, func(i, j int) bool { return ends[i].EndTime < ends[j].EndTime })
	when = s.clock
	for _, j := range ends {
		if free >= head.Nodes {
			break
		}
		free += j.Nodes
		when = j.EndTime
	}
	return when, free
}

// Step advances to the next completion event; it returns false when
// nothing is running or pending.
func (s *Scheduler) Step() bool {
	s.tryStart()
	if len(s.running) == 0 {
		return false
	}
	// Complete the earliest-finishing job (ties by ID for determinism).
	sort.Slice(s.running, func(i, j int) bool {
		if s.running[i].EndTime != s.running[j].EndTime {
			return s.running[i].EndTime < s.running[j].EndTime
		}
		return s.running[i].ID < s.running[j].ID
	})
	j := s.running[0]
	s.running = s.running[1:]
	s.clock = j.EndTime
	s.freeNodes += j.Nodes
	s.busyNodeSeconds += float64(j.Nodes) * (j.EndTime - j.StartTime)
	s.completed = append(s.completed, j)
	return true
}

// Drain runs the simulation until all jobs have completed. It returns
// an error if pending jobs remain that can never start. Cancellable
// callers use DrainContext.
//
//benchlint:compat
func (s *Scheduler) Drain() error {
	return s.DrainContext(context.Background())
}

// DrainContext is Drain with cancellation: the simulation checks the
// context between completion events, so an engine timeout can stop a
// long queue drain. Jobs already completed stay completed.
func (s *Scheduler) DrainContext(ctx context.Context) error {
	for s.Step() {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if len(s.pending) > 0 {
		return fmt.Errorf("scheduler: %d jobs stuck pending (first: %s needing %d nodes)",
			len(s.pending), s.pending[0].Name, s.pending[0].Nodes)
	}
	return nil
}

// Cancel removes a pending job from the queue (scancel). Running or
// finished jobs cannot be cancelled in the simulation.
func (s *Scheduler) Cancel(jobID int) error {
	for i, j := range s.pending {
		if j.ID == jobID {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			j.State = Cancelled
			return nil
		}
	}
	return fmt.Errorf("scheduler: job %d is not pending", jobID)
}

// Completed returns finished jobs in completion order.
func (s *Scheduler) Completed() []*Job { return s.completed }

// Makespan is the clock after Drain.
func (s *Scheduler) Makespan() float64 { return s.clock }

// Utilization is busy node-seconds over elapsed capacity.
func (s *Scheduler) Utilization() float64 {
	if s.clock == 0 {
		return 0
	}
	return s.busyNodeSeconds / (s.clock * float64(s.sys.Nodes))
}

// QueueLength reports jobs still pending.
func (s *Scheduler) QueueLength() int { return len(s.pending) }
