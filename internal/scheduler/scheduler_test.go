package scheduler

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/hpcsim"
)

func cts(t *testing.T) *hpcsim.System {
	t.Helper()
	s, err := hpcsim.Get("cts1")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func fixed(d float64) Payload {
	return func() (float64, error) { return d, nil }
}

func TestSingleJob(t *testing.T) {
	s := New(cts(t))
	j, err := s.Submit("saxpy", 2, 3600, fixed(100))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if j.State != Completed {
		t.Errorf("state = %v", j.State)
	}
	if j.StartTime != 0 || j.EndTime != 100 {
		t.Errorf("times = %v..%v", j.StartTime, j.EndTime)
	}
	if s.Makespan() != 100 {
		t.Errorf("makespan = %v", s.Makespan())
	}
}

func TestFIFOQueueing(t *testing.T) {
	sys := cts(t)
	s := New(sys)
	// Two jobs that each need ALL nodes: strictly serial.
	a, _ := s.Submit("a", sys.Nodes, 3600, fixed(50))
	b, _ := s.Submit("b", sys.Nodes, 3600, fixed(50))
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if a.StartTime != 0 || b.StartTime != 50 {
		t.Errorf("starts = %v, %v", a.StartTime, b.StartTime)
	}
	if b.WaitTime() != 50 {
		t.Errorf("wait = %v", b.WaitTime())
	}
}

func TestParallelJobs(t *testing.T) {
	sys := cts(t)
	s := New(sys)
	half := sys.Nodes / 2
	a, _ := s.Submit("a", half, 3600, fixed(50))
	b, _ := s.Submit("b", half, 3600, fixed(50))
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if a.StartTime != 0 || b.StartTime != 0 {
		t.Errorf("both should start immediately: %v %v", a.StartTime, b.StartTime)
	}
	if s.Makespan() != 50 {
		t.Errorf("makespan = %v", s.Makespan())
	}
}

func TestBackfillImprovesThroughput(t *testing.T) {
	sys := cts(t)
	run := func(backfill bool) (float64, float64) {
		s := New(sys)
		s.Backfill = backfill
		// Wide long job running, then a wide job queued (head), then a
		// narrow short job that can backfill into the idle nodes.
		s.Submit("wide-running", sys.Nodes-10, 7200, fixed(1000)) //nolint:errcheck
		s.Submit("wide-head", sys.Nodes, 7200, fixed(500))        //nolint:errcheck
		narrow, _ := s.Submit("narrow", 5, 600, fixed(400))       // fits in 10 free nodes, ends before head could start
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		return s.Makespan(), narrow.StartTime
	}
	mkNo, narrowStartNo := run(false)
	mkYes, narrowStartYes := run(true)
	if narrowStartYes != 0 {
		t.Errorf("backfill should start the narrow job immediately, got %v", narrowStartYes)
	}
	if narrowStartNo == 0 {
		t.Error("without backfill the narrow job must wait behind the head")
	}
	if mkYes > mkNo {
		t.Errorf("backfill makespan %v worse than FIFO %v", mkYes, mkNo)
	}
}

func TestBackfillNeverDelaysHead(t *testing.T) {
	sys := cts(t)
	s := New(sys)
	s.Backfill = true
	s.Submit("running", sys.Nodes-10, 7200, fixed(100)) //nolint:errcheck
	head, _ := s.Submit("head", sys.Nodes, 7200, fixed(10))
	// This job fits the free nodes but its TIME LIMIT (300s) extends
	// past the head's shadow start (t=100), so it must NOT backfill.
	blocker, _ := s.Submit("too-long", 10, 300, fixed(250))
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if head.StartTime != 100 {
		t.Errorf("head delayed to %v (blocker started %v)", head.StartTime, blocker.StartTime)
	}
	if blocker.StartTime < head.StartTime {
		t.Errorf("blocker jumped ahead: %v < %v", blocker.StartTime, head.StartTime)
	}
}

func TestTimeLimitEnforced(t *testing.T) {
	s := New(cts(t))
	j, _ := s.Submit("overrun", 1, 60, fixed(3600))
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if j.State != TimedOut {
		t.Errorf("state = %v", j.State)
	}
	if j.EndTime != 60 {
		t.Errorf("killed at %v, want 60", j.EndTime)
	}
}

func TestFailedPayload(t *testing.T) {
	s := New(cts(t))
	j, _ := s.Submit("crash", 1, 600, func() (float64, error) {
		return 5, fmt.Errorf("segfault")
	})
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if j.State != Failed || j.Err == nil {
		t.Errorf("state = %v err = %v", j.State, j.Err)
	}
}

func TestSubmitValidation(t *testing.T) {
	sys := cts(t)
	s := New(sys)
	if _, err := s.Submit("zero", 0, 60, fixed(1)); err == nil {
		t.Error("0 nodes should fail")
	}
	if _, err := s.Submit("huge", sys.Nodes+1, 60, fixed(1)); err == nil {
		t.Error("too many nodes should fail")
	}
	if _, err := s.Submit("nolimit", 1, 0, fixed(1)); err == nil {
		t.Error("no time limit should fail")
	}
	if _, err := s.Submit("nopayload", 1, 60, nil); err == nil {
		t.Error("nil payload should fail")
	}
}

func TestSubmitScriptFigure13(t *testing.T) {
	script := `#!/bin/bash
#SBATCH -N 2
#SBATCH -n 16
#SBATCH -t 120:00
cd /ws/experiments/saxpy/problem/saxpy_512_2_16_2
. $SPACK_ROOT/share/spack/setup-env.sh
srun -N 2 -n 16 saxpy -n 512
`
	s := New(cts(t))
	j, err := s.SubmitScript("saxpy_512_2_16_2", script, fixed(10))
	if err != nil {
		t.Fatal(err)
	}
	if j.Nodes != 2 {
		t.Errorf("nodes = %d", j.Nodes)
	}
	if j.TimeLimit != 120*60 {
		t.Errorf("limit = %v", j.TimeLimit)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if j.State != Completed {
		t.Errorf("state = %v", j.State)
	}
}

func TestParseTimeLimit(t *testing.T) {
	cases := map[string]float64{
		"30":      1800,
		"120:00":  7200,
		"1:30:00": 5400,
	}
	for in, want := range cases {
		got, err := parseTimeLimit(in)
		if err != nil || got != want {
			t.Errorf("parseTimeLimit(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"abc", "1:2:3:4", ""} {
		if _, err := parseTimeLimit(bad); err == nil {
			t.Errorf("parseTimeLimit(%q) should fail", bad)
		}
	}
}

func TestUtilization(t *testing.T) {
	sys := cts(t)
	s := New(sys)
	// One job on all nodes for the whole makespan: utilization 1.
	s.Submit("full", sys.Nodes, 3600, fixed(100)) //nolint:errcheck
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if u := s.Utilization(); u < 0.999 || u > 1.001 {
		t.Errorf("utilization = %v", u)
	}
}

func TestManyJobsThroughput(t *testing.T) {
	sys := cts(t)
	s := New(sys)
	for i := 0; i < 100; i++ {
		if _, err := s.Submit(fmt.Sprintf("job%d", i), 10, 3600, fixed(10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if len(s.Completed()) != 100 {
		t.Errorf("completed = %d", len(s.Completed()))
	}
	// 100 jobs × 10 nodes = 1000 node-slots over 1200 nodes; with 10s
	// each, everything fits in one wave.
	if s.Makespan() != 10 {
		t.Errorf("makespan = %v", s.Makespan())
	}
}

func TestDeterministicOrder(t *testing.T) {
	run := func() string {
		s := New(cts(t))
		for i := 0; i < 20; i++ {
			s.Submit(fmt.Sprintf("j%02d", i), 300, 3600, fixed(float64(10+i))) //nolint:errcheck
		}
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		var order []string
		for _, j := range s.Completed() {
			order = append(order, j.Name)
		}
		return strings.Join(order, ",")
	}
	if run() != run() {
		t.Error("completion order not deterministic")
	}
}

// TestPropertyCapacityNeverExceeded: over randomized job mixes (with
// and without backfill), the sum of node widths of simultaneously
// running jobs never exceeds the system size, and every job runs
// exactly once.
func TestPropertyCapacityNeverExceeded(t *testing.T) {
	sys := cts(t)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		s := New(sys)
		s.Backfill = trial%2 == 0
		nJobs := 5 + rng.Intn(40)
		for j := 0; j < nJobs; j++ {
			width := 1 + rng.Intn(sys.Nodes)
			dur := float64(1 + rng.Intn(500))
			if _, err := s.Submit(fmt.Sprintf("t%d-j%d", trial, j), width, 7200,
				func() (float64, error) { return dur, nil }); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		jobs := s.Completed()
		if len(jobs) != nJobs {
			t.Fatalf("trial %d: completed %d/%d", trial, len(jobs), nJobs)
		}
		// Sweep: at each job start, count overlapping widths.
		for _, a := range jobs {
			used := 0
			for _, b := range jobs {
				if b.StartTime <= a.StartTime && a.StartTime < b.EndTime {
					used += b.Nodes
				}
			}
			if used > sys.Nodes {
				t.Fatalf("trial %d (backfill=%v): %d nodes in use at t=%v",
					trial, s.Backfill, used, a.StartTime)
			}
		}
	}
}

func TestCancelPendingJob(t *testing.T) {
	sys := cts(t)
	s := New(sys)
	// Fill the machine, then queue a job and cancel it.
	s.Submit("running", sys.Nodes, 7200, fixed(100)) //nolint:errcheck
	victim, _ := s.Submit("victim", 10, 600, fixed(50))
	surviving, _ := s.Submit("survivor", 10, 600, fixed(50))
	if err := s.Cancel(victim.ID); err != nil {
		t.Fatal(err)
	}
	if victim.State != Cancelled {
		t.Errorf("state = %v", victim.State)
	}
	if err := s.Cancel(victim.ID); err == nil {
		t.Error("double cancel should fail")
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if len(s.Completed()) != 2 {
		t.Errorf("completed = %d (victim must not run)", len(s.Completed()))
	}
	if surviving.State != Completed {
		t.Errorf("survivor = %v", surviving.State)
	}
}
