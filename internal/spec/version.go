// Package spec implements the Spack spec language used throughout
// Benchpark: abstract specs written by users ("amg2023+caliper
// %gcc@12.1.1 ^cmake@3.23.1"), and concrete specs produced by the
// concretizer with every choice point resolved.
//
// The package provides the three core relations of the spec algebra:
// Satisfies (refinement), Intersects (compatibility), and Constrain
// (unification), plus parsing, canonical rendering and DAG hashing.
package spec

import (
	"fmt"
	"strconv"
	"strings"
)

// Version is a dotted version identifier such as "12.1.1" or
// "2.3.7-gcc12.1.1-magic". Segments are compared numerically when both
// sides are numeric, lexically otherwise; numeric segments order before
// alphabetic ones ("1.2" < "1.2a" is false: 2 < "a" means numeric first).
type Version struct {
	raw  string
	segs []segment
}

type segment struct {
	num     int64
	str     string
	numeric bool
}

// NewVersion parses a version string. The empty version is allowed and
// compares less than everything else.
func NewVersion(s string) Version {
	v := Version{raw: s}
	if s == "" {
		return v
	}
	cur := strings.Builder{}
	flush := func() {
		if cur.Len() == 0 {
			return
		}
		text := cur.String()
		cur.Reset()
		if n, err := strconv.ParseInt(text, 10, 64); err == nil {
			v.segs = append(v.segs, segment{num: n, numeric: true})
		} else {
			v.segs = append(v.segs, segment{str: text})
		}
	}
	prevDigit := false
	for i, r := range s {
		switch {
		case r == '.' || r == '-' || r == '_':
			flush()
			prevDigit = false
		case r >= '0' && r <= '9':
			if i > 0 && !prevDigit && cur.Len() > 0 {
				flush() // letter→digit boundary: "gcc12" → "gcc", "12"
			}
			prevDigit = true
			cur.WriteRune(r)
		default:
			if i > 0 && prevDigit && cur.Len() > 0 {
				flush() // digit→letter boundary: "1a" → "1", "a"
			}
			prevDigit = false
			cur.WriteRune(r)
		}
	}
	flush()
	return v
}

// String returns the original version text.
func (v Version) String() string { return v.raw }

// IsEmpty reports whether the version has no content.
func (v Version) IsEmpty() bool { return v.raw == "" }

// Compare orders versions: -1 if v < w, 0 if equal, +1 if v > w.
// The empty version is the minimum. A version that is a strict prefix
// of another compares less ("1.2" < "1.2.1").
func (v Version) Compare(w Version) int {
	for i := 0; i < len(v.segs) && i < len(w.segs); i++ {
		a, b := v.segs[i], w.segs[i]
		switch {
		case a.numeric && b.numeric:
			if a.num != b.num {
				if a.num < b.num {
					return -1
				}
				return 1
			}
		case a.numeric != b.numeric:
			// Numeric releases order after alphabetic pre-release
			// tags at the same position ("1.0-rc1" < "1.0-1"? keep
			// the simpler convention: numeric > alphabetic).
			if a.numeric {
				return 1
			}
			return -1
		default:
			if a.str != b.str {
				if a.str < b.str {
					return -1
				}
				return 1
			}
		}
	}
	switch {
	case len(v.segs) < len(w.segs):
		return -1
	case len(v.segs) > len(w.segs):
		return 1
	}
	return 0
}

// HasPrefix reports whether p is a dotted-segment prefix of v,
// so NewVersion("1.2.3").HasPrefix(NewVersion("1.2")) is true.
func (v Version) HasPrefix(p Version) bool {
	if len(p.segs) > len(v.segs) {
		return false
	}
	for i, ps := range p.segs {
		vs := v.segs[i]
		if ps.numeric != vs.numeric || ps.num != vs.num || ps.str != vs.str {
			return false
		}
	}
	return true
}

// VersionRange is an inclusive range lo:hi. Empty endpoints are open.
// Spack's prefix semantics apply at the upper bound: "1.2" as an upper
// bound admits "1.2.5". A range with Lo == Hi (the form "@1.2") admits
// exactly the versions having that prefix.
type VersionRange struct {
	Lo, Hi Version
}

// Contains reports whether version x lies within the range.
func (r VersionRange) Contains(x Version) bool {
	if !r.Lo.IsEmpty() {
		if x.Compare(r.Lo) < 0 {
			return false
		}
	}
	if !r.Hi.IsEmpty() {
		if x.Compare(r.Hi) > 0 && !x.HasPrefix(r.Hi) {
			return false
		}
	}
	return true
}

// IsExact reports whether the range designates a single version point
// (possibly with prefix semantics), i.e. it came from "@x.y".
func (r VersionRange) IsExact() bool {
	return !r.Lo.IsEmpty() && r.Lo.raw == r.Hi.raw
}

func (r VersionRange) String() string {
	if r.IsExact() {
		return r.Lo.String()
	}
	return r.Lo.String() + ":" + r.Hi.String()
}

// Intersects reports whether two ranges share at least one version.
func (r VersionRange) Intersects(o VersionRange) bool {
	// lo = max(lo), hi = min(hi); nonempty if lo <= hi with prefix slack.
	lo, hi := r.Lo, r.Hi
	if !o.Lo.IsEmpty() && (lo.IsEmpty() || o.Lo.Compare(lo) > 0) {
		lo = o.Lo
	}
	if !o.Hi.IsEmpty() && (hi.IsEmpty() || o.Hi.Compare(hi) < 0) {
		hi = o.Hi
	}
	if lo.IsEmpty() || hi.IsEmpty() {
		return true
	}
	return lo.Compare(hi) <= 0 || lo.HasPrefix(hi)
}

// subsetOf reports whether every version in r is also in o
// (approximated on endpoints, exact for the point ranges that concrete
// specs and package versions use).
func (r VersionRange) subsetOf(o VersionRange) bool {
	if !o.Lo.IsEmpty() {
		if r.Lo.IsEmpty() {
			return false
		}
		if r.Lo.Compare(o.Lo) < 0 {
			return false
		}
	}
	if !o.Hi.IsEmpty() {
		if r.Hi.IsEmpty() {
			return false
		}
		if r.Hi.Compare(o.Hi) > 0 && !r.Hi.HasPrefix(o.Hi) {
			return false
		}
	}
	return true
}

// VersionList is a union of ranges, written "1.2:1.4,2.0" in spec
// syntax. An empty list means "any version".
type VersionList struct {
	Ranges []VersionRange
}

// ParseVersionList parses the text after '@' in a spec.
func ParseVersionList(s string) (VersionList, error) {
	var vl VersionList
	if strings.TrimSpace(s) == "" {
		return vl, fmt.Errorf("spec: empty version constraint after '@'")
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return VersionList{}, fmt.Errorf("spec: empty version in list %q", s)
		}
		if i := strings.IndexByte(part, ':'); i >= 0 {
			lo := NewVersion(part[:i])
			hi := NewVersion(part[i+1:])
			if !lo.IsEmpty() && !hi.IsEmpty() && lo.Compare(hi) > 0 {
				return VersionList{}, fmt.Errorf("spec: inverted version range %q", part)
			}
			vl.Ranges = append(vl.Ranges, VersionRange{Lo: lo, Hi: hi})
		} else {
			v := NewVersion(part)
			vl.Ranges = append(vl.Ranges, VersionRange{Lo: v, Hi: v})
		}
	}
	return vl, nil
}

// Any reports whether the list admits all versions (no constraint).
func (vl VersionList) Any() bool { return len(vl.Ranges) == 0 }

// Contains reports whether x satisfies the constraint.
func (vl VersionList) Contains(x Version) bool {
	if vl.Any() {
		return true
	}
	for _, r := range vl.Ranges {
		if r.Contains(x) {
			return true
		}
	}
	return false
}

// Concrete returns the single exact version if the list pins one,
// and ok=false otherwise.
func (vl VersionList) Concrete() (Version, bool) {
	if len(vl.Ranges) == 1 && vl.Ranges[0].IsExact() {
		return vl.Ranges[0].Lo, true
	}
	return Version{}, false
}

// Intersects reports whether the two constraints can both be met.
func (vl VersionList) Intersects(o VersionList) bool {
	if vl.Any() || o.Any() {
		return true
	}
	for _, a := range vl.Ranges {
		for _, b := range o.Ranges {
			if a.Intersects(b) {
				return true
			}
		}
	}
	return false
}

// SatisfiedBy reports whether constraint o is satisfied by vl, i.e.
// every version admitted by vl is admitted by o.
func (vl VersionList) SatisfiedBy(o VersionList) bool {
	if o.Any() {
		return true
	}
	if vl.Any() {
		return false
	}
	for _, a := range vl.Ranges {
		ok := false
		for _, b := range o.Ranges {
			if a.subsetOf(b) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Constrain returns the intersection of the two constraints,
// or an error if they cannot both hold.
func (vl VersionList) Constrain(o VersionList) (VersionList, error) {
	if vl.Any() {
		return o, nil
	}
	if o.Any() {
		return vl, nil
	}
	var out VersionList
	for _, a := range vl.Ranges {
		for _, b := range o.Ranges {
			if !a.Intersects(b) {
				continue
			}
			lo, hi := a.Lo, a.Hi
			if !b.Lo.IsEmpty() && (lo.IsEmpty() || b.Lo.Compare(lo) > 0) {
				lo = b.Lo
			}
			if !b.Hi.IsEmpty() && (hi.IsEmpty() || b.Hi.Compare(hi) < 0) {
				hi = b.Hi
			}
			out.Ranges = append(out.Ranges, VersionRange{Lo: lo, Hi: hi})
		}
	}
	if out.Any() {
		return VersionList{}, fmt.Errorf("spec: version constraints %q and %q do not intersect", vl, o)
	}
	return out, nil
}

func (vl VersionList) String() string {
	if vl.Any() {
		return ""
	}
	parts := make([]string, len(vl.Ranges))
	for i, r := range vl.Ranges {
		parts[i] = r.String()
	}
	return strings.Join(parts, ",")
}
