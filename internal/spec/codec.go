package spec

import (
	"fmt"
	"strings"
)

// EncodedNode is the serialized form of one concrete DAG node: its
// own rendering (no dependency clauses), its external prefix, and its
// dependency edges by hash. The format is shared by environment
// lockfiles and the persistent install database.
type EncodedNode struct {
	Node     string            `json:"node"`
	External string            `json:"external,omitempty"`
	Deps     map[string]string `json:"deps,omitempty"` // name -> hash
}

// EncodeDAG flattens the DAGs rooted at the given concrete specs into
// a hash-keyed node table plus the root hashes.
func EncodeDAG(roots []*Spec) (map[string]EncodedNode, []string) {
	nodes := map[string]EncodedNode{}
	var rootHashes []string
	for _, root := range roots {
		rootHashes = append(rootHashes, root.DAGHash())
		root.Traverse(func(n *Spec) {
			h := n.DAGHash()
			if _, ok := nodes[h]; ok {
				return
			}
			en := EncodedNode{Node: n.renderNodeNoExternal(), External: n.External}
			if len(n.Deps) > 0 {
				en.Deps = map[string]string{}
				for dn, d := range n.Deps {
					en.Deps[dn] = d.DAGHash()
				}
			}
			nodes[h] = en
		})
	}
	return nodes, rootHashes
}

// renderNodeNoExternal renders the node without the external
// annotation (which EncodedNode carries separately).
func (s *Spec) renderNodeNoExternal() string {
	text := s.renderNode()
	if i := strings.Index(text, " [external:"); i >= 0 {
		text = text[:i]
	}
	return text
}

// DecodeDAG rebuilds concrete spec DAGs from an encoded node table,
// re-deriving and verifying every hash (a tampered table is
// rejected). Shared nodes are shared in the result.
func DecodeDAG(nodes map[string]EncodedNode, roots []string) ([]*Spec, error) {
	built := map[string]*Spec{}
	var build func(hash string) (*Spec, error)
	build = func(hash string) (*Spec, error) {
		if n, ok := built[hash]; ok {
			return n, nil
		}
		en, ok := nodes[hash]
		if !ok {
			return nil, fmt.Errorf("spec: encoded DAG references unknown hash %s", hash)
		}
		s, err := Parse(en.Node)
		if err != nil {
			return nil, fmt.Errorf("spec: encoded node %s: %w", hash, err)
		}
		if len(s.Deps) > 0 {
			return nil, fmt.Errorf("spec: encoded node %s carries inline deps", hash)
		}
		s.External = en.External
		built[hash] = s
		for name, dh := range en.Deps {
			dn, err := build(dh)
			if err != nil {
				return nil, err
			}
			s.Deps[name] = dn
		}
		if err := s.MarkConcrete(); err != nil {
			return nil, fmt.Errorf("spec: encoded node %s: %w", hash, err)
		}
		if got := s.DAGHash(); got != hash {
			return nil, fmt.Errorf("spec: DAG integrity failure: node %s rebuilds to %s", hash, got)
		}
		return s, nil
	}
	out := make([]*Spec, 0, len(roots))
	for _, rh := range roots {
		r, err := build(rh)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
