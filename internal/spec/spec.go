package spec

import (
	"crypto/sha256"
	"encoding/base32"
	"fmt"
	"sort"
	"strings"
)

// VariantValue is the value of one variant: a boolean ("+openmp",
// "~debug") or one or more strings ("build_type=Release",
// "cuda_arch=70,80").
type VariantValue struct {
	IsBool bool
	Bool   bool
	Values []string // sorted, for multi-valued variants
}

// BoolVariant returns a boolean variant value.
func BoolVariant(b bool) VariantValue { return VariantValue{IsBool: true, Bool: b} }

// StringVariant returns a single- or multi-valued variant value.
func StringVariant(vals ...string) VariantValue {
	sorted := append([]string(nil), vals...)
	sort.Strings(sorted)
	return VariantValue{Values: sorted}
}

// Equal reports deep equality of two variant values.
func (v VariantValue) Equal(o VariantValue) bool {
	if v.IsBool != o.IsBool {
		return false
	}
	if v.IsBool {
		return v.Bool == o.Bool
	}
	if len(v.Values) != len(o.Values) {
		return false
	}
	for i := range v.Values {
		if v.Values[i] != o.Values[i] {
			return false
		}
	}
	return true
}

// Render returns the spec-syntax form of the variant, e.g. "+openmp"
// or "build_type=Release".
func (v VariantValue) Render(name string) string {
	if v.IsBool {
		if v.Bool {
			return "+" + name
		}
		return "~" + name
	}
	return name + "=" + strings.Join(v.Values, ",")
}

// Compiler identifies the compiler used for a node, e.g. "gcc@12.1.1".
type Compiler struct {
	Name     string
	Versions VersionList
}

func (c *Compiler) String() string {
	if c == nil {
		return ""
	}
	if c.Versions.Any() {
		return "%" + c.Name
	}
	return "%" + c.Name + "@" + c.Versions.String()
}

// Spec is a node in a spec DAG. Abstract specs carry partial
// constraints; concrete specs (after concretization) have exactly one
// version, a full variant assignment, a compiler, a target, and fully
// concrete dependencies.
type Spec struct {
	Name     string
	Versions VersionList
	Variants map[string]VariantValue
	Compiler *Compiler
	Target   string // archspec microarchitecture name
	Platform string // e.g. "linux"

	// Deps maps dependency package name to its spec node. In an
	// abstract spec these are constraints (the "^dep" clauses); in a
	// concrete spec they are resolved concrete nodes shared across the
	// DAG when unified.
	Deps map[string]*Spec

	// External is the installation prefix when the package is used
	// from the system rather than built (packages.yaml externals).
	External string

	concrete bool
}

// New returns an empty abstract spec for the named package.
func New(name string) *Spec {
	return &Spec{Name: name, Variants: map[string]VariantValue{}, Deps: map[string]*Spec{}}
}

// IsConcrete reports whether the spec has been marked concrete by the
// concretizer.
func (s *Spec) IsConcrete() bool { return s != nil && s.concrete }

// MarkConcrete marks this node concrete. It returns an error if the
// node is missing required concrete attributes.
func (s *Spec) MarkConcrete() error {
	if _, ok := s.Versions.Concrete(); !ok {
		return fmt.Errorf("spec: cannot mark %s concrete: version %q is not exact", s.Name, s.Versions)
	}
	if s.Name == "" {
		return fmt.Errorf("spec: cannot mark anonymous spec concrete")
	}
	s.concrete = true
	return nil
}

// ConcreteVersion returns the pinned version of a concrete spec.
func (s *Spec) ConcreteVersion() Version {
	v, _ := s.Versions.Concrete()
	return v
}

// SetVariant sets a variant value.
func (s *Spec) SetVariant(name string, v VariantValue) {
	if s.Variants == nil {
		s.Variants = map[string]VariantValue{}
	}
	s.Variants[name] = v
}

// AddDep attaches (or constrains) a direct dependency.
func (s *Spec) AddDep(d *Spec) error {
	if s.Deps == nil {
		s.Deps = map[string]*Spec{}
	}
	if prev, ok := s.Deps[d.Name]; ok {
		return prev.Constrain(d)
	}
	s.Deps[d.Name] = d
	return nil
}

// Clone returns a deep copy of the spec DAG rooted at s. Shared
// dependency nodes remain shared in the copy.
func (s *Spec) Clone() *Spec {
	if s == nil {
		return nil
	}
	seen := map[*Spec]*Spec{}
	return s.cloneInto(seen)
}

func (s *Spec) cloneInto(seen map[*Spec]*Spec) *Spec {
	if c, ok := seen[s]; ok {
		return c
	}
	c := &Spec{
		Name:     s.Name,
		Versions: s.Versions,
		Target:   s.Target,
		Platform: s.Platform,
		External: s.External,
		concrete: s.concrete,
	}
	seen[s] = c
	if s.Compiler != nil {
		cc := *s.Compiler
		c.Compiler = &cc
	}
	c.Variants = make(map[string]VariantValue, len(s.Variants))
	for k, v := range s.Variants {
		vv := v
		vv.Values = append([]string(nil), v.Values...)
		c.Variants[k] = vv
	}
	c.Deps = make(map[string]*Spec, len(s.Deps))
	for k, d := range s.Deps {
		c.Deps[k] = d.cloneInto(seen)
	}
	return c
}

// WithoutDeps returns a copy of this node with no dependency
// constraints attached — useful when a constraint should apply to a
// single node rather than its DAG.
func (s *Spec) WithoutDeps() *Spec {
	c := s.Clone()
	c.Deps = map[string]*Spec{}
	return c
}

// Traverse visits every node in the DAG rooted at s exactly once,
// depth-first with dependencies in sorted name order, calling fn.
func (s *Spec) Traverse(fn func(*Spec)) {
	seen := map[*Spec]bool{}
	var walk func(*Spec)
	walk = func(n *Spec) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		fn(n)
		for _, name := range sortedDepNames(n) {
			walk(n.Deps[name])
		}
	}
	walk(s)
}

// FindDep searches the DAG (excluding the root itself) for a node with
// the given package name.
func (s *Spec) FindDep(name string) *Spec {
	var found *Spec
	s.Traverse(func(n *Spec) {
		if n != s && n.Name == name && found == nil {
			found = n
		}
	})
	return found
}

func sortedDepNames(s *Spec) []string {
	names := make([]string, 0, len(s.Deps))
	for n := range s.Deps {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func sortedVariantNames(s *Spec) []string {
	names := make([]string, 0, len(s.Variants))
	for n := range s.Variants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String renders the root node and its direct constraints followed by
// "^dep" clauses for all transitive dependencies, in canonical
// (sorted) order.
func (s *Spec) String() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString(s.renderNode())
	var deps []*Spec
	s.Traverse(func(n *Spec) {
		if n != s {
			deps = append(deps, n)
		}
	})
	sort.Slice(deps, func(i, j int) bool { return deps[i].Name < deps[j].Name })
	for _, d := range deps {
		b.WriteString(" ^")
		b.WriteString(d.renderNode())
	}
	return b.String()
}

// renderNode renders one node without its ^dependencies.
func (s *Spec) renderNode() string {
	var b strings.Builder
	b.WriteString(s.Name)
	if !s.Versions.Any() {
		b.WriteString("@" + s.Versions.String())
	}
	if s.Compiler != nil {
		b.WriteString(s.Compiler.String())
	}
	for _, name := range sortedVariantNames(s) {
		v := s.Variants[name]
		if v.IsBool {
			b.WriteString(v.Render(name))
		} else {
			b.WriteString(" " + v.Render(name))
		}
	}
	if s.Target != "" {
		b.WriteString(" target=" + s.Target)
	}
	if s.Platform != "" {
		b.WriteString(" platform=" + s.Platform)
	}
	if s.External != "" {
		b.WriteString(" [external:" + s.External + "]")
	}
	return b.String()
}

// ShortString renders just "name@version" for display.
func (s *Spec) ShortString() string {
	if s.Versions.Any() {
		return s.Name
	}
	return s.Name + "@" + s.Versions.String()
}

// ---------------------------------------------------------------------------
// The spec algebra: Satisfies, Intersects, Constrain
// ---------------------------------------------------------------------------

// Satisfies reports whether s (typically concrete) satisfies every
// constraint expressed by other (typically abstract): same name,
// versions within other's ranges, all of other's variants present with
// equal values, compiler compatible, target/platform equal if
// constrained, and every "^dep" constraint satisfied by some node in
// s's DAG.
func (s *Spec) Satisfies(other *Spec) bool {
	if other == nil {
		return true
	}
	if other.Name != "" && s.Name != other.Name {
		return false
	}
	if !s.Versions.SatisfiedBy(other.Versions) {
		return false
	}
	for name, want := range other.Variants {
		got, ok := s.Variants[name]
		if !ok || !got.Equal(want) {
			return false
		}
	}
	if other.Compiler != nil {
		if s.Compiler == nil || s.Compiler.Name != other.Compiler.Name {
			return false
		}
		if !s.Compiler.Versions.SatisfiedBy(other.Compiler.Versions) {
			return false
		}
	}
	if other.Target != "" && s.Target != other.Target {
		return false
	}
	if other.Platform != "" && s.Platform != other.Platform {
		return false
	}
	for name, want := range other.Deps {
		var node *Spec
		if s.Name == name {
			node = s
		} else {
			node = s.FindDep(name)
		}
		if node == nil || !node.Satisfies(want) {
			return false
		}
	}
	return true
}

// Intersects reports whether some concrete spec could satisfy both s
// and other: no contradicting constraints.
func (s *Spec) Intersects(other *Spec) bool {
	if s == nil || other == nil {
		return true
	}
	if s.Name != "" && other.Name != "" && s.Name != other.Name {
		return false
	}
	if !s.Versions.Intersects(other.Versions) {
		return false
	}
	for name, want := range other.Variants {
		if got, ok := s.Variants[name]; ok && !got.Equal(want) {
			return false
		}
	}
	if s.Compiler != nil && other.Compiler != nil {
		if s.Compiler.Name != other.Compiler.Name {
			return false
		}
		if !s.Compiler.Versions.Intersects(other.Compiler.Versions) {
			return false
		}
	}
	if s.Target != "" && other.Target != "" && s.Target != other.Target {
		return false
	}
	if s.Platform != "" && other.Platform != "" && s.Platform != other.Platform {
		return false
	}
	for name, want := range other.Deps {
		if got, ok := s.Deps[name]; ok && !got.Intersects(want) {
			return false
		}
	}
	return true
}

// Constrain merges other's constraints into s, returning an error when
// they contradict. Dependencies are merged recursively.
func (s *Spec) Constrain(other *Spec) error {
	if other == nil {
		return nil
	}
	if s.concrete {
		if !s.Satisfies(other) {
			return fmt.Errorf("spec: concrete spec %s does not satisfy %s", s.ShortString(), other)
		}
		return nil
	}
	if other.Name != "" {
		if s.Name != "" && s.Name != other.Name {
			return fmt.Errorf("spec: cannot constrain %q with %q: different packages", s.Name, other.Name)
		}
		s.Name = other.Name
	}
	vs, err := s.Versions.Constrain(other.Versions)
	if err != nil {
		return fmt.Errorf("spec: %s: %w", s.Name, err)
	}
	s.Versions = vs
	for name, want := range other.Variants {
		if got, ok := s.Variants[name]; ok {
			if !got.Equal(want) {
				return fmt.Errorf("spec: %s: conflicting values for variant %q: %s vs %s",
					s.Name, name, got.Render(name), want.Render(name))
			}
			continue
		}
		s.SetVariant(name, want)
	}
	if other.Compiler != nil {
		if s.Compiler == nil {
			cc := *other.Compiler
			s.Compiler = &cc
		} else {
			if s.Compiler.Name != other.Compiler.Name {
				return fmt.Errorf("spec: %s: conflicting compilers %%%s vs %%%s",
					s.Name, s.Compiler.Name, other.Compiler.Name)
			}
			cv, err := s.Compiler.Versions.Constrain(other.Compiler.Versions)
			if err != nil {
				return fmt.Errorf("spec: %s compiler: %w", s.Name, err)
			}
			s.Compiler.Versions = cv
		}
	}
	if other.Target != "" {
		if s.Target != "" && s.Target != other.Target {
			return fmt.Errorf("spec: %s: conflicting targets %q vs %q", s.Name, s.Target, other.Target)
		}
		s.Target = other.Target
	}
	if other.Platform != "" {
		if s.Platform != "" && s.Platform != other.Platform {
			return fmt.Errorf("spec: %s: conflicting platforms %q vs %q", s.Name, s.Platform, other.Platform)
		}
		s.Platform = other.Platform
	}
	if other.External != "" {
		if s.External != "" && s.External != other.External {
			return fmt.Errorf("spec: %s: conflicting external prefixes", s.Name)
		}
		s.External = other.External
	}
	for name, want := range other.Deps {
		if err := s.AddDep(want.Clone()); err != nil {
			return err
		}
		_ = name
	}
	return nil
}

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

// DAGHash returns the content hash of a concrete spec, covering the
// node's full assignment and the hashes of all dependencies. It is the
// identity used by the install database and binary cache.
func (s *Spec) DAGHash() string {
	memo := map[*Spec]string{}
	return s.dagHash(memo)
}

func (s *Spec) dagHash(memo map[*Spec]string) string {
	if h, ok := memo[s]; ok {
		return h
	}
	var b strings.Builder
	b.WriteString(s.renderNode())
	for _, name := range sortedDepNames(s) {
		b.WriteString("|" + name + ":" + s.Deps[name].dagHash(memo))
	}
	sum := sha256.Sum256([]byte(b.String()))
	h := strings.ToLower(base32.StdEncoding.EncodeToString(sum[:]))[:32]
	memo[s] = h
	return h
}

// ShortHash returns the 7-character abbreviated DAG hash, as printed
// by `spack find`.
func (s *Spec) ShortHash() string { return s.DAGHash()[:7] }
