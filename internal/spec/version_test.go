package spec

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestVersionCompare(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"1.0", "1.0", 0},
		{"1.0", "2.0", -1},
		{"2.0", "1.0", 1},
		{"1.2", "1.10", -1}, // numeric, not lexicographic
		{"1.2", "1.2.1", -1},
		{"1.2.1", "1.2", 1},
		{"12.1.1", "12.1.1", 0},
		{"2.3.7", "2.3.10", -1},
		{"1.0a", "1.0", 1},     // longer version with alpha suffix orders after its prefix
		{"1.0.a", "1.0.1", -1}, // alpha < numeric at same position
		{"", "1.0", -1},
		{"2022.1.0", "2022.1.0", 0},
	}
	for _, c := range cases {
		got := NewVersion(c.a).Compare(NewVersion(c.b))
		if got != c.want {
			t.Errorf("Compare(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestVersionCompareAntisymmetric(t *testing.T) {
	versions := []string{"", "1", "1.0", "1.0.1", "1.2", "1.10", "2.3.7-gcc12.1.1-magic", "1.0a", "3.23.1"}
	for _, a := range versions {
		for _, b := range versions {
			ab := NewVersion(a).Compare(NewVersion(b))
			ba := NewVersion(b).Compare(NewVersion(a))
			if ab != -ba {
				t.Errorf("Compare(%q,%q)=%d but Compare(%q,%q)=%d", a, b, ab, b, a, ba)
			}
		}
	}
}

// Property: Compare is transitive over randomly generated dotted versions.
func TestQuickVersionTransitive(t *testing.T) {
	gen := func(r *rand.Rand) Version {
		n := 1 + r.Intn(4)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = string(rune('0' + r.Intn(10)))
		}
		return NewVersion(strings.Join(parts, "."))
	}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		a, b, c := gen(r), gen(r), gen(r)
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			t.Fatalf("transitivity violated: %s <= %s <= %s but %s > %s", a, b, c, a, c)
		}
	}
}

func TestVersionHasPrefix(t *testing.T) {
	if !NewVersion("1.2.3").HasPrefix(NewVersion("1.2")) {
		t.Error("1.2.3 should have prefix 1.2")
	}
	if NewVersion("1.20.3").HasPrefix(NewVersion("1.2")) {
		t.Error("1.20.3 should NOT have prefix 1.2")
	}
	if !NewVersion("12.1.1").HasPrefix(NewVersion("12.1.1")) {
		t.Error("version should have itself as prefix")
	}
}

func TestVersionRangeContains(t *testing.T) {
	cases := []struct {
		rng, v string
		want   bool
	}{
		{"1.2:1.4", "1.3", true},
		{"1.2:1.4", "1.4.9", true}, // prefix semantics on upper bound
		{"1.2:1.4", "1.5", false},
		{"1.2:1.4", "1.1", false},
		{":2.0", "0.1", true},
		{":2.0", "2.0.1", true},
		{":2.0", "2.1", false},
		{"3.0:", "3.0", true},
		{"3.0:", "99", true},
		{"3.0:", "2.9", false},
		{"1.2", "1.2", true},
		{"1.2", "1.2.5", true}, // @1.2 admits 1.2.5
		{"1.2", "1.3", false},
	}
	for _, c := range cases {
		vl, err := ParseVersionList(c.rng)
		if err != nil {
			t.Fatalf("ParseVersionList(%q): %v", c.rng, err)
		}
		if got := vl.Contains(NewVersion(c.v)); got != c.want {
			t.Errorf("(%q).Contains(%q) = %v, want %v", c.rng, c.v, got, c.want)
		}
	}
}

func TestVersionListParseErrors(t *testing.T) {
	for _, s := range []string{"", ",", "1.2,,1.4", "2.0:1.0"} {
		if _, err := ParseVersionList(s); err == nil {
			t.Errorf("ParseVersionList(%q): expected error", s)
		}
	}
}

func TestVersionListUnion(t *testing.T) {
	vl, err := ParseVersionList("1.0:1.2,2.0")
	if err != nil {
		t.Fatal(err)
	}
	for v, want := range map[string]bool{"1.1": true, "2.0.3": true, "1.5": false, "3.0": false} {
		if got := vl.Contains(NewVersion(v)); got != want {
			t.Errorf("union contains %q = %v, want %v", v, got, want)
		}
	}
}

func TestVersionListConstrain(t *testing.T) {
	a, _ := ParseVersionList("1.0:2.0")
	b, _ := ParseVersionList("1.5:3.0")
	c, err := a.Constrain(b)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Contains(NewVersion("1.7")) || c.Contains(NewVersion("1.2")) || c.Contains(NewVersion("2.5")) {
		t.Errorf("constrained = %q", c)
	}

	d, _ := ParseVersionList("3.0:")
	if _, err := a.Constrain(d); err == nil {
		t.Error("disjoint constrain should fail")
	}

	// Constraining with "any" is identity.
	e, err := a.Constrain(VersionList{})
	if err != nil || !reflect.DeepEqual(e, a) {
		t.Errorf("constrain with any: %v %v", e, err)
	}
}

func TestVersionListSatisfiedBy(t *testing.T) {
	point, _ := ParseVersionList("1.2.3")
	rng, _ := ParseVersionList("1.0:2.0")
	if !point.SatisfiedBy(rng) {
		t.Error("1.2.3 should satisfy 1.0:2.0")
	}
	if rng.SatisfiedBy(point) {
		t.Error("1.0:2.0 should not satisfy 1.2.3")
	}
	if !point.SatisfiedBy(VersionList{}) {
		t.Error("anything satisfies the empty constraint")
	}
	if (VersionList{}).SatisfiedBy(point) {
		t.Error("the any-version list cannot satisfy a pin")
	}
}

// Property: for random ranges, Intersects is symmetric and implied by
// a shared contained point.
func TestQuickRangeIntersectSymmetric(t *testing.T) {
	f := func(a1, a2, b1, b2 uint8) bool {
		lo1, hi1 := int(a1%20), int(a2%20)
		lo2, hi2 := int(b1%20), int(b2%20)
		if lo1 > hi1 {
			lo1, hi1 = hi1, lo1
		}
		if lo2 > hi2 {
			lo2, hi2 = hi2, lo2
		}
		r1 := VersionRange{Lo: NewVersion(itoa(lo1)), Hi: NewVersion(itoa(hi1))}
		r2 := VersionRange{Lo: NewVersion(itoa(lo2)), Hi: NewVersion(itoa(hi2))}
		if r1.Intersects(r2) != r2.Intersects(r1) {
			return false
		}
		// ground truth on integer grid
		truth := lo1 <= hi2 && lo2 <= hi1
		return r1.Intersects(r2) == truth
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := ""
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return digits
}
