package spec

import (
	"strings"
	"testing"
)

func TestParseSimple(t *testing.T) {
	s, err := Parse("amg2023+caliper")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "amg2023" {
		t.Errorf("name = %q", s.Name)
	}
	v, ok := s.Variants["caliper"]
	if !ok || !v.IsBool || !v.Bool {
		t.Errorf("caliper variant = %#v", v)
	}
}

func TestParsePaperSpecs(t *testing.T) {
	// Every spec string that appears in the paper must parse.
	for _, src := range []string{
		"amg2023+caliper",
		"intel-oneapi-mkl@2022.1.0",
		"mvapich2@2.3.7-gcc12.1.1-magic",
		"gcc@12.1.1",
		"mvapich2@2.3.7-gcc12.1.1",
		"saxpy@1.0.0 +openmp ^cmake@3.23.1",
		"mvapich2@2.3.7-compilers",
	} {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestParseFull(t *testing.T) {
	s, err := Parse("amg2023@1.0+caliper~debug build_type=Release %gcc@12.1.1 ^cmake@3.23.1 ^mpi")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Versions.Concrete(); got.String() != "1.0" {
		t.Errorf("version = %q", s.Versions)
	}
	if v := s.Variants["debug"]; !v.IsBool || v.Bool {
		t.Errorf("debug = %#v", v)
	}
	if v := s.Variants["build_type"]; v.IsBool || len(v.Values) != 1 || v.Values[0] != "Release" {
		t.Errorf("build_type = %#v", v)
	}
	if s.Compiler == nil || s.Compiler.Name != "gcc" || !s.Compiler.Versions.Contains(NewVersion("12.1.1")) {
		t.Errorf("compiler = %v", s.Compiler)
	}
	if len(s.Deps) != 2 {
		t.Errorf("deps = %v", s.Deps)
	}
	cmake := s.Deps["cmake"]
	if cmake == nil || !cmake.Versions.Contains(NewVersion("3.23.1")) {
		t.Errorf("cmake dep = %v", cmake)
	}
	if s.Deps["mpi"] == nil {
		t.Error("mpi dep missing")
	}
}

func TestParseAttachedSigils(t *testing.T) {
	a := MustParse("saxpy@1.0.0+openmp%gcc@12.1.1^cmake@3.23.1")
	b := MustParse("saxpy @1.0.0 +openmp %gcc@12.1.1 ^cmake@3.23.1")
	if a.String() != b.String() {
		t.Errorf("attached %q != spaced %q", a.String(), b.String())
	}
}

func TestParseNegation(t *testing.T) {
	s := MustParse("saxpy -openmp")
	if v := s.Variants["openmp"]; !v.IsBool || v.Bool {
		t.Errorf("openmp = %#v", v)
	}
	// '-' inside a version must not be treated as negation.
	s2 := MustParse("mvapich2@2.3.7-gcc12.1.1-magic")
	if len(s2.Variants) != 0 {
		t.Errorf("variants = %#v", s2.Variants)
	}
}

func TestParseMultiValueVariant(t *testing.T) {
	s := MustParse("hypre cuda_arch=70,80")
	v := s.Variants["cuda_arch"]
	if v.IsBool || len(v.Values) != 2 || v.Values[0] != "70" || v.Values[1] != "80" {
		t.Errorf("cuda_arch = %#v", v)
	}
}

func TestParseArch(t *testing.T) {
	s := MustParse("saxpy target=zen3")
	if s.Target != "zen3" {
		t.Errorf("target = %q", s.Target)
	}
	s2 := MustParse("saxpy arch=linux-rhel8-power9le")
	if s2.Platform != "linux" || s2.Target != "power9le" {
		t.Errorf("arch = %q/%q", s2.Platform, s2.Target)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"   ",
		"pkg@",
		"pkg+",
		"pkg%",
		"pkg ^",
		"pkg@2.0:1.0",
		"pkg+x~x",
		"pkg name2",
		"pkg %gcc %clang",
		"pkg build_type=",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestSatisfiesBasics(t *testing.T) {
	concrete := MustParse("amg2023@1.0+caliper+openmp build_type=Release %gcc@12.1.1 target=broadwell")
	cases := []struct {
		constraint string
		want       bool
	}{
		{"amg2023", true},
		{"amg2023@1.0", true},
		{"amg2023@0.5:1.5", true},
		{"amg2023@2.0", false},
		{"amg2023+caliper", true},
		{"amg2023~caliper", false},
		{"amg2023+mpi", false}, // variant not present
		{"amg2023 build_type=Release", true},
		{"amg2023 build_type=Debug", false},
		{"amg2023%gcc", true},
		{"amg2023%gcc@12.1.1", true},
		{"amg2023%gcc@11", false},
		{"amg2023%clang", false},
		{"amg2023 target=broadwell", true},
		{"amg2023 target=zen3", false},
		{"saxpy", false},
	}
	for _, c := range cases {
		if got := concrete.Satisfies(MustParse(c.constraint)); got != c.want {
			t.Errorf("Satisfies(%q) = %v, want %v", c.constraint, got, c.want)
		}
	}
}

func TestSatisfiesDeps(t *testing.T) {
	root := MustParse("amg2023@1.0+caliper")
	hypre := MustParse("hypre@2.28.0+mpi")
	mpi := MustParse("mvapich2@2.3.7")
	if err := hypre.AddDep(mpi); err != nil {
		t.Fatal(err)
	}
	if err := root.AddDep(hypre); err != nil {
		t.Fatal(err)
	}
	// Transitive dependency search: mvapich2 is two levels down.
	if !root.Satisfies(MustParse("amg2023 ^mvapich2@2.3")) {
		t.Error("transitive dep should satisfy")
	}
	if root.Satisfies(MustParse("amg2023 ^mvapich2@3.0")) {
		t.Error("wrong dep version should not satisfy")
	}
	if root.Satisfies(MustParse("amg2023 ^openmpi")) {
		t.Error("absent dep should not satisfy")
	}
}

func TestIntersects(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"pkg@1.0:2.0", "pkg@1.5:3.0", true},
		{"pkg@1.0:2.0", "pkg@3.0:", false},
		{"pkg+x", "pkg+x", true},
		{"pkg+x", "pkg~x", false},
		{"pkg+x", "pkg+y", true}, // different variants can coexist
		{"pkg%gcc", "pkg%clang", false},
		{"pkg%gcc@12", "pkg%gcc@12.1.1", true},
		{"pkg", "other", false},
		{"pkg target=zen3", "pkg target=broadwell", false},
	}
	for _, c := range cases {
		a, b := MustParse(c.a), MustParse(c.b)
		if got := a.Intersects(b); got != c.want {
			t.Errorf("Intersects(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := b.Intersects(a); got != c.want {
			t.Errorf("Intersects(%q, %q) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestConstrain(t *testing.T) {
	s := MustParse("amg2023@1.0:")
	if err := s.Constrain(MustParse("amg2023+caliper%gcc@12.1.1")); err != nil {
		t.Fatal(err)
	}
	if v := s.Variants["caliper"]; !v.IsBool || !v.Bool {
		t.Errorf("caliper = %#v", v)
	}
	if s.Compiler == nil || s.Compiler.Name != "gcc" {
		t.Errorf("compiler = %v", s.Compiler)
	}
	if err := s.Constrain(MustParse("amg2023~caliper")); err == nil {
		t.Error("contradictory variant constrain should fail")
	}
	if err := s.Constrain(MustParse("amg2023@0.5")); err == nil {
		t.Error("out-of-range version constrain should fail")
	}
	if err := s.Constrain(MustParse("amg2023%clang")); err == nil {
		t.Error("conflicting compiler constrain should fail")
	}
}

func TestConstrainMergesDeps(t *testing.T) {
	s := MustParse("app ^mpi@3:")
	if err := s.Constrain(MustParse("app ^mpi@:4 ^cmake")); err != nil {
		t.Fatal(err)
	}
	mpi := s.Deps["mpi"]
	if mpi == nil || !mpi.Versions.Contains(NewVersion("3.1")) || mpi.Versions.Contains(NewVersion("5.0")) {
		t.Errorf("mpi constraint = %v", mpi)
	}
	if s.Deps["cmake"] == nil {
		t.Error("cmake dep not merged")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := MustParse("app@1.0+x ^dep@2.0")
	c := s.Clone()
	c.SetVariant("x", BoolVariant(false))
	c.Deps["dep"].Versions, _ = ParseVersionList("3.0")
	if v := s.Variants["x"]; !v.Bool {
		t.Error("clone mutated original variant")
	}
	if !s.Deps["dep"].Versions.Contains(NewVersion("2.0")) {
		t.Error("clone mutated original dep")
	}
}

func TestCloneSharing(t *testing.T) {
	// A diamond DAG must stay a diamond after cloning.
	root := New("root")
	a, b, shared := New("a"), New("b"), New("shared")
	a.Deps["shared"] = shared
	b.Deps["shared"] = shared
	root.Deps["a"] = a
	root.Deps["b"] = b
	c := root.Clone()
	if c.Deps["a"].Deps["shared"] != c.Deps["b"].Deps["shared"] {
		t.Error("shared node duplicated by Clone")
	}
}

func TestStringCanonical(t *testing.T) {
	s := MustParse("saxpy@1.0.0+openmp %gcc@12.1.1 ^cmake@3.23.1")
	str := s.String()
	for _, want := range []string{"saxpy@1.0.0", "+openmp", "%gcc@12.1.1", "^cmake@3.23.1"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
	// Round trip: parse of String() must be equivalent.
	s2, err := Parse(str)
	if err != nil {
		t.Fatalf("reparse %q: %v", str, err)
	}
	if !s2.Satisfies(s) || !s.Satisfies(s2) {
		t.Errorf("round trip inequivalent: %q vs %q", str, s2.String())
	}
}

func TestMarkConcrete(t *testing.T) {
	s := MustParse("pkg@1.0:2.0")
	if err := s.MarkConcrete(); err == nil {
		t.Error("range version cannot be concrete")
	}
	s2 := MustParse("pkg@1.0")
	if err := s2.MarkConcrete(); err != nil {
		t.Fatal(err)
	}
	if !s2.IsConcrete() {
		t.Error("not concrete after mark")
	}
	// Constraining a concrete spec only verifies.
	if err := s2.Constrain(MustParse("pkg@1.0")); err != nil {
		t.Errorf("compatible constrain on concrete: %v", err)
	}
	if err := s2.Constrain(MustParse("pkg@2.0")); err == nil {
		t.Error("incompatible constrain on concrete should fail")
	}
}

func TestDAGHashStability(t *testing.T) {
	a := MustParse("saxpy@1.0.0+openmp %gcc@12.1.1 ^cmake@3.23.1")
	b := MustParse("saxpy+openmp@1.0.0 %gcc@12.1.1 ^cmake@3.23.1") // different sigil order
	if a.DAGHash() != b.DAGHash() {
		t.Error("hash should be order-independent")
	}
	c := MustParse("saxpy@1.0.0~openmp %gcc@12.1.1 ^cmake@3.23.1")
	if a.DAGHash() == c.DAGHash() {
		t.Error("variant flip must change hash")
	}
	d := MustParse("saxpy@1.0.0+openmp %gcc@12.1.1 ^cmake@3.23.2")
	if a.DAGHash() == d.DAGHash() {
		t.Error("dependency version change must change hash")
	}
	if len(a.ShortHash()) != 7 {
		t.Errorf("short hash = %q", a.ShortHash())
	}
}

func TestTraverseVisitsOnce(t *testing.T) {
	root := New("root")
	shared := New("shared")
	a, b := New("a"), New("b")
	a.Deps["shared"] = shared
	b.Deps["shared"] = shared
	root.Deps["a"] = a
	root.Deps["b"] = b
	count := map[string]int{}
	root.Traverse(func(n *Spec) { count[n.Name]++ })
	if count["shared"] != 1 {
		t.Errorf("shared visited %d times", count["shared"])
	}
	if len(count) != 4 {
		t.Errorf("visited %v", count)
	}
}

func TestFindDep(t *testing.T) {
	root := MustParse("app ^level1")
	deep := MustParse("level2@9")
	if err := root.Deps["level1"].AddDep(deep); err != nil {
		t.Fatal(err)
	}
	if d := root.FindDep("level2"); d == nil || !d.Versions.Contains(NewVersion("9")) {
		t.Errorf("FindDep(level2) = %v", d)
	}
	if d := root.FindDep("nope"); d != nil {
		t.Errorf("FindDep(nope) = %v", d)
	}
}
