package spec

import (
	"fmt"
	"strings"
)

// FormatTree renders a spec DAG the way `spack spec` prints it: the
// root node followed by indented dependencies, each with its full
// node rendering, marking externals and repeated (unified) nodes.
//
//	amg2023@1.0%gcc@12.1.1+caliper target=broadwell
//	    ^caliper@2.9.0%gcc@12.1.1+adiak~papi ...
//	        ^adiak@0.4.0%gcc@12.1.1 ...
func FormatTree(root *Spec) string {
	var b strings.Builder
	seen := map[*Spec]bool{}
	var walk func(n *Spec, depth int)
	walk = func(n *Spec, depth int) {
		indent := strings.Repeat("    ", depth)
		marker := ""
		if depth > 0 {
			marker = "^"
		}
		if seen[n] {
			fmt.Fprintf(&b, "%s%s%s  [^ unified above]\n", indent, marker, n.ShortString())
			return
		}
		seen[n] = true
		fmt.Fprintf(&b, "%s%s%s\n", indent, marker, n.renderNode())
		for _, name := range sortedDepNames(n) {
			walk(n.Deps[name], depth+1)
		}
	}
	walk(root, 0)
	return b.String()
}

// NodeCount returns the number of distinct nodes in the DAG.
func NodeCount(root *Spec) int {
	n := 0
	root.Traverse(func(*Spec) { n++ })
	return n
}
