package spec

import (
	"fmt"
	"strings"
)

// Parse parses a spec expression such as
//
//	amg2023@1.0+caliper~debug build_type=Release %gcc@12.1.1 ^cmake@3.23.1 ^mpi
//
// into an abstract spec DAG. The first node is the root; each "^"
// clause opens a dependency node. Sigils may be attached to the
// previous token or separated by whitespace; "-variant" negation is
// accepted only at the start of a whitespace-delimited word (matching
// Spack, which restricts it to avoid ambiguity with version strings).
func Parse(input string) (*Spec, error) {
	p := &specParser{src: input}
	root, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("spec: parsing %q: %w", input, err)
	}
	return root, nil
}

// MustParse is Parse for known-good literals; it panics on error.
// It is intended for package recipes and tests.
func MustParse(input string) *Spec {
	s, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return s
}

type specParser struct {
	src string
	pos int
}

func (p *specParser) parse() (*Spec, error) {
	root := New("")
	cur := root
	for {
		before := p.pos
		p.skipSpaces()
		atWordStart := p.pos == 0 || p.pos > before
		if p.pos >= len(p.src) {
			break
		}
		c := p.src[p.pos]
		switch {
		case c == '^':
			p.pos++
			p.skipSpaces()
			name := p.readIdent()
			if name == "" {
				return nil, fmt.Errorf("expected package name after '^'")
			}
			dep := New(name)
			if err := root.AddDep(dep); err != nil {
				return nil, err
			}
			cur = root.Deps[name]
		case c == '@':
			p.pos++
			text := p.readUntil("@+~%^= \t")
			vl, err := ParseVersionList(text)
			if err != nil {
				return nil, err
			}
			merged, err := cur.Versions.Constrain(vl)
			if err != nil {
				return nil, err
			}
			cur.Versions = merged
		case c == '+':
			p.pos++
			name := p.readIdent()
			if name == "" {
				return nil, fmt.Errorf("expected variant name after '+'")
			}
			if err := p.setBoolVariant(cur, name, true); err != nil {
				return nil, err
			}
		case c == '~':
			p.pos++
			name := p.readIdent()
			if name == "" {
				return nil, fmt.Errorf("expected variant name after '~'")
			}
			if err := p.setBoolVariant(cur, name, false); err != nil {
				return nil, err
			}
		case c == '-' && atWordStart:
			p.pos++
			name := p.readIdent()
			if name == "" {
				return nil, fmt.Errorf("expected variant name after '-'")
			}
			if err := p.setBoolVariant(cur, name, false); err != nil {
				return nil, err
			}
		case c == '%':
			p.pos++
			name := p.readIdent()
			if name == "" {
				return nil, fmt.Errorf("expected compiler name after '%%'")
			}
			comp := &Compiler{Name: name}
			if p.pos < len(p.src) && p.src[p.pos] == '@' {
				p.pos++
				text := p.readUntil("@+~%^= \t")
				vl, err := ParseVersionList(text)
				if err != nil {
					return nil, err
				}
				comp.Versions = vl
			}
			if cur.Compiler != nil {
				return nil, fmt.Errorf("duplicate compiler constraint on %q", cur.Name)
			}
			cur.Compiler = comp
		default:
			word := p.readIdent()
			if word == "" {
				return nil, fmt.Errorf("unexpected character %q", string(c))
			}
			if p.pos < len(p.src) && p.src[p.pos] == '=' {
				p.pos++
				val := p.readUntil(" \t^")
				if val == "" {
					return nil, fmt.Errorf("empty value for %q", word)
				}
				switch word {
				case "target":
					cur.Target = val
				case "platform":
					cur.Platform = val
				case "arch":
					// arch=platform-os-target or arch=target
					parts := strings.Split(val, "-")
					if len(parts) >= 3 {
						cur.Platform = parts[0]
						cur.Target = strings.Join(parts[2:], "-")
					} else {
						cur.Target = val
					}
				default:
					vals := strings.Split(val, ",")
					if old, ok := cur.Variants[word]; ok && !old.Equal(StringVariant(vals...)) {
						return nil, fmt.Errorf("conflicting values for variant %q", word)
					}
					cur.SetVariant(word, StringVariant(vals...))
				}
				continue
			}
			if cur.Name != "" {
				return nil, fmt.Errorf("unexpected token %q: node already named %q", word, cur.Name)
			}
			cur.Name = word
		}
	}
	if root.Name == "" && len(root.Deps) == 0 && len(root.Variants) == 0 &&
		root.Versions.Any() && root.Compiler == nil {
		return nil, fmt.Errorf("empty spec")
	}
	return root, nil
}

func (p *specParser) setBoolVariant(s *Spec, name string, val bool) error {
	if old, ok := s.Variants[name]; ok && !old.Equal(BoolVariant(val)) {
		return fmt.Errorf("conflicting values for variant %q", name)
	}
	s.SetVariant(name, BoolVariant(val))
	return nil
}

func (p *specParser) skipSpaces() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
		// a space resets word-start, handled by caller reading c.
	}
}

// readIdent reads a package/variant/compiler identifier:
// letters, digits, '-', '_', '.'.
func (p *specParser) readIdent() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '.' {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}

// readUntil reads characters until one of the stop bytes (or EOL).
func (p *specParser) readUntil(stop string) string {
	start := p.pos
	for p.pos < len(p.src) && !strings.ContainsRune(stop, rune(p.src[p.pos])) {
		p.pos++
	}
	return p.src[start:p.pos]
}
