package spec

import (
	"math/rand"
	"testing"
)

// genSpec produces a random abstract spec over a small vocabulary so
// collisions (and hence interesting algebra) are common.
func genSpec(r *rand.Rand) *Spec {
	names := []string{"alpha", "beta", "gamma"}
	variants := []string{"x", "y", "z"}
	compilers := []string{"gcc", "clang"}
	s := New(names[r.Intn(len(names))])
	if r.Intn(2) == 0 {
		lo := r.Intn(4) + 1
		hi := lo + r.Intn(3)
		vl, err := ParseVersionList(itoa(lo) + ":" + itoa(hi))
		if err == nil {
			s.Versions = vl
		}
	}
	for _, v := range variants {
		switch r.Intn(3) {
		case 0:
			s.SetVariant(v, BoolVariant(true))
		case 1:
			s.SetVariant(v, BoolVariant(false))
		}
	}
	if r.Intn(2) == 0 {
		c := &Compiler{Name: compilers[r.Intn(len(compilers))]}
		s.Compiler = c
	}
	return s
}

// Property: Satisfies implies Intersects (a refinement is always
// compatible).
func TestPropertySatisfiesImpliesIntersects(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 3000; i++ {
		a, b := genSpec(r), genSpec(r)
		if a.Satisfies(b) && !a.Intersects(b) {
			t.Fatalf("satisfies without intersects:\n a=%s\n b=%s", a, b)
		}
	}
}

// Property: after a successful Constrain(b), the result satisfies b's
// variant/name constraints and intersects both originals.
func TestPropertyConstrainUpperBound(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 3000; i++ {
		a, b := genSpec(r), genSpec(r)
		merged := a.Clone()
		if err := merged.Constrain(b); err != nil {
			// Must only fail when they genuinely conflict.
			if a.Intersects(b) {
				// Version-range edge cases may intersect per-range but
				// fail on merged emptiness; tolerate only when names
				// differ is impossible — recheck strictly:
				if a.Name == b.Name {
					t.Fatalf("constrain failed on intersecting specs:\n a=%s\n b=%s\n err=%v", a, b, err)
				}
			}
			continue
		}
		if !merged.Intersects(a) || !merged.Intersects(b) {
			t.Fatalf("merged %s does not intersect inputs %s / %s", merged, a, b)
		}
		for name, want := range b.Variants {
			got, ok := merged.Variants[name]
			if !ok || !got.Equal(want) {
				t.Fatalf("merged lost variant %s of b:\n a=%s\n b=%s\n merged=%s", name, a, b, merged)
			}
		}
	}
}

// Property: Intersects is symmetric.
func TestPropertyIntersectsSymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		a, b := genSpec(r), genSpec(r)
		if a.Intersects(b) != b.Intersects(a) {
			t.Fatalf("asymmetric intersects:\n a=%s\n b=%s", a, b)
		}
	}
}

// Property: a spec always satisfies and intersects itself, and the
// canonical string round-trips to an equivalent spec.
func TestPropertySelfAndRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		a := genSpec(r)
		if !a.Satisfies(a) || !a.Intersects(a) {
			t.Fatalf("self-relation failed for %s", a)
		}
		b, err := Parse(a.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", a.String(), err)
		}
		if !b.Satisfies(a) || !a.Satisfies(b) {
			t.Fatalf("round trip inequivalent: %s vs %s", a, b)
		}
	}
}

// Property: DAG hash equality follows string equality for random
// specs (canonical rendering is injective enough over the vocabulary).
func TestPropertyHashConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		a, b := genSpec(r), genSpec(r)
		if a.String() == b.String() && a.DAGHash() != b.DAGHash() {
			t.Fatalf("equal strings, different hashes: %s", a)
		}
		if a.String() != b.String() && a.DAGHash() == b.DAGHash() {
			t.Fatalf("hash collision: %s vs %s", a, b)
		}
	}
}
