package spec

import (
	"strings"
	"testing"
)

func TestFormatTree(t *testing.T) {
	root := MustParse("app@1.0")
	depA := MustParse("liba@2.0")
	depB := MustParse("libb@3.0")
	shared := MustParse("zlib@1.2.12")
	shared.External = "/usr/lib"
	_ = depA.AddDep(shared)
	_ = depB.AddDep(shared)
	_ = root.AddDep(depA)
	_ = root.AddDep(depB)

	out := FormatTree(root)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "app@1.0") {
		t.Errorf("root line = %q", lines[0])
	}
	// Dependencies indented with ^ markers.
	if !strings.Contains(out, "    ^liba@2.0") || !strings.Contains(out, "    ^libb@3.0") {
		t.Errorf("deps:\n%s", out)
	}
	// The shared node appears once fully and once as unified.
	if strings.Count(out, "[external:/usr/lib]") != 1 {
		t.Errorf("external annotation:\n%s", out)
	}
	if strings.Count(out, "[^ unified above]") != 1 {
		t.Errorf("unified annotation:\n%s", out)
	}
}

func TestNodeCount(t *testing.T) {
	root := MustParse("app ^a ^b")
	if got := NodeCount(root); got != 3 {
		t.Errorf("count = %d", got)
	}
	if got := NodeCount(MustParse("solo")); got != 1 {
		t.Errorf("solo count = %d", got)
	}
}

func TestEncodeDecodeDAG(t *testing.T) {
	root := MustParse("app@1.0+x %gcc@12.1.1 target=broadwell")
	dep := MustParse("lib@2.0 %gcc@12.1.1 target=broadwell")
	ext := MustParse("mpi2@3.0 target=broadwell")
	ext.External = "/usr/lib/mpi2"
	if err := dep.AddDep(ext); err != nil {
		t.Fatal(err)
	}
	if err := root.AddDep(dep); err != nil {
		t.Fatal(err)
	}
	if err := ext.MarkConcrete(); err != nil {
		t.Fatal(err)
	}
	if err := dep.MarkConcrete(); err != nil {
		t.Fatal(err)
	}
	if err := root.MarkConcrete(); err != nil {
		t.Fatal(err)
	}

	nodes, roots := EncodeDAG([]*Spec{root})
	if len(nodes) != 3 || len(roots) != 1 {
		t.Fatalf("nodes=%d roots=%d", len(nodes), len(roots))
	}
	decoded, err := DecodeDAG(nodes, roots)
	if err != nil {
		t.Fatal(err)
	}
	if decoded[0].DAGHash() != root.DAGHash() {
		t.Errorf("hash mismatch: %s vs %s", decoded[0], root)
	}
	if decoded[0].FindDep("mpi2").External != "/usr/lib/mpi2" {
		t.Error("external lost")
	}

	// Tampering detected.
	for h, en := range nodes {
		en.Node = strings.Replace(en.Node, "2.0", "2.1", 1)
		nodes[h] = en
	}
	if _, err := DecodeDAG(nodes, roots); err == nil {
		t.Error("tampered table must fail verification")
	}
}

func TestDecodeDAGDangling(t *testing.T) {
	if _, err := DecodeDAG(map[string]EncodedNode{}, []string{"nope"}); err == nil {
		t.Error("dangling root should fail")
	}
}
