// Trace-context propagation: the W3C-style `traceparent` carrier that
// lets a trace cross process boundaries. A CI runner's push to the
// results federation service is one logical operation spanning two
// processes — the runner's session/engine spans, the client's rpc
// span, the server's http span, and the store's WAL commit — and the
// only way to reassemble it is for the HTTP request to carry the
// caller's trace identity.
//
// The format is the W3C Trace Context `traceparent` header:
//
//	00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// Identity stays deterministic under the injected Clock discipline:
// a tracer's trace ID is derived from its epoch (so a FixedClock
// tracer always gets the same trace ID), and a span's wire-level
// parent ID is derived from its structural span ID — no randomness
// anywhere, which is how the cross-process merged-trace tests stay
// byte-identical across runs.
package telemetry

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"time"
)

// TraceparentHeader is the carrier key, per the W3C Trace Context
// spec.
const TraceparentHeader = "traceparent"

// TraceContext is a parsed traceparent: the trace the caller belongs
// to and the wire-level ID of the span that made the call.
type TraceContext struct {
	// TraceID is 32 lowercase hex characters, never all-zero.
	TraceID string
	// ParentID is 16 lowercase hex characters, never all-zero.
	ParentID string
}

// Valid reports whether both fields have the wire shape the spec
// requires.
func (tc TraceContext) Valid() bool {
	return isLowerHex(tc.TraceID, 32) && !allZero(tc.TraceID) &&
		isLowerHex(tc.ParentID, 16) && !allZero(tc.ParentID)
}

// Traceparent renders the header value ("" for an invalid context).
func (tc TraceContext) Traceparent() string {
	if !tc.Valid() {
		return ""
	}
	return "00-" + tc.TraceID + "-" + tc.ParentID + "-01"
}

// ParseTraceparent parses a traceparent header value. It accepts any
// known version except the reserved ff, and rejects malformed or
// all-zero IDs.
func ParseTraceparent(s string) (TraceContext, bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 {
		return TraceContext{}, false
	}
	version, traceID, parentID, flags := parts[0], parts[1], parts[2], parts[3]
	if !isLowerHex(version, 2) || version == "ff" || !isLowerHex(flags, 2) {
		return TraceContext{}, false
	}
	tc := TraceContext{TraceID: traceID, ParentID: parentID}
	if !tc.Valid() {
		return TraceContext{}, false
	}
	return tc, true
}

func isLowerHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// deriveTraceID computes a tracer's trace ID from its epoch. Under a
// FixedClock the epoch is fixed, so the trace ID is a deterministic
// function of the injected time — the property the byte-identical
// merged-trace tests rest on. Under the wall clock each process run
// gets a practically unique ID.
func deriveTraceID(epoch time.Time) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("benchpark-traceid:%d", epoch.UnixNano())))
	return hex.EncodeToString(sum[:16])
}

// SpanContextID derives the 16-hex wire-level span ID a span
// advertises in traceparent from its structural ID. Structural IDs
// are deterministic (ancestry paths, not random numbers), so the wire
// ID is too; hashing keeps the header fixed-width and opaque.
func SpanContextID(traceID, spanID string) string {
	sum := sha256.Sum256([]byte(traceID + "\x00" + spanID))
	return hex.EncodeToString(sum[:8])
}

// Carrier is the header-like transport traceparent travels in.
// net/http's Header satisfies it.
type Carrier interface {
	Set(key, value string)
	Get(key string) string
}

type remoteKey struct{}

// WithRemote returns a context carrying a remote caller's trace
// context. The next StartSpan on the derived context (with no local
// parent span) joins the caller's trace: it adopts the remote trace
// ID and records the caller's span as its remote parent.
func WithRemote(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, remoteKey{}, tc)
}

// RemoteFromContext returns the remote trace context attached by
// WithRemote, if any.
func RemoteFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(remoteKey{}).(TraceContext)
	return tc, ok
}

// PropagationContext returns the trace context an outbound call from
// ctx should carry: the current span's trace and wire IDs when a span
// is open, else a pass-through of the remote context (so an
// intermediary without its own tracer still forwards provenance).
func PropagationContext(ctx context.Context) (TraceContext, bool) {
	if s := Current(ctx); s != nil && s.traceID != "" {
		return TraceContext{
			TraceID:  s.traceID,
			ParentID: SpanContextID(s.traceID, s.id),
		}, true
	}
	if tc, ok := RemoteFromContext(ctx); ok && tc.Valid() {
		return tc, true
	}
	return TraceContext{}, false
}

// Inject writes the context's traceparent into the carrier; a no-op
// when ctx carries neither an open span nor a remote context.
func Inject(ctx context.Context, c Carrier) {
	if tc, ok := PropagationContext(ctx); ok {
		c.Set(TraceparentHeader, tc.Traceparent())
	}
}

// Extract reads the carrier's traceparent. The zero TraceContext and
// false mean the header was absent or malformed.
func Extract(c Carrier) (TraceContext, bool) {
	return ParseTraceparent(c.Get(TraceparentHeader))
}

// TraceIDFrom returns the trace ID governing ctx: the current span's,
// else a remote caller's, else "". This is what a storage layer
// records as provenance — "which run produced this point".
func TraceIDFrom(ctx context.Context) string {
	if s := Current(ctx); s != nil {
		return s.traceID
	}
	if tc, ok := RemoteFromContext(ctx); ok && tc.Valid() {
		return tc.TraceID
	}
	return ""
}

// MergeTraces assembles one cross-process trace from per-process
// snapshots: all spans, sorted by (trace ID, start, span ID) so the
// merge is a pure function of its inputs — two runs that produced
// byte-identical per-process traces produce a byte-identical merge.
// Spans from different processes correlate through their TraceID and
// RemoteParent fields (see SpanContextID). Metrics are per-process
// state and are not merged.
func MergeTraces(traces ...*Trace) *Trace {
	out := &Trace{Format: TraceFormat, Spans: []SpanRecord{}}
	for _, t := range traces {
		if t == nil {
			continue
		}
		out.Spans = append(out.Spans, t.Spans...)
	}
	sort.Slice(out.Spans, func(i, j int) bool {
		a, b := out.Spans[i], out.Spans[j]
		if a.TraceID != b.TraceID {
			return a.TraceID < b.TraceID
		}
		if a.StartS != b.StartS {
			return a.StartS < b.StartS
		}
		return a.ID < b.ID
	})
	return out
}
