package telemetry

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// buildTrace makes a small deterministic trace: a root with two
// "stage" siblings (aggregating into one Caliper region) plus metrics.
func buildTrace(t *testing.T) *Trace {
	t.Helper()
	tr := New(NewStepClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC), time.Second))
	ctx := WithTracer(context.Background(), tr)
	rctx, root := StartSpan(ctx, "run")
	_, a := StartSpan(rctx, "stage")
	a.End()
	_, b := StartSpan(rctx, "stage")
	b.SetError(errors.New("boom"))
	b.End()
	root.End()
	tr.Metrics().Counter("hits_total").Add(3)
	tr.Metrics().Gauge("inflight").Set(2)
	tr.Metrics().Histogram(`lat_seconds{stage="x"}`, 1, 10).Observe(0.5)
	return tr.Snapshot()
}

func TestTraceJSONRoundTrip(t *testing.T) {
	trace := buildTrace(t)
	src, err := trace.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(src, "\n") {
		t.Fatal("trace JSON must end with a newline")
	}
	back, err := ParseTrace(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Spans) != len(trace.Spans) || back.Format != TraceFormat {
		t.Fatalf("round trip lost spans: %d vs %d", len(back.Spans), len(trace.Spans))
	}
	src2, err := back.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if src != src2 {
		t.Fatal("re-marshaled trace differs")
	}
	if _, err := ParseTrace(`{"format":"other"}`); err == nil {
		t.Fatal("unknown format must be rejected")
	}
	if _, err := ParseTrace("not json"); err == nil {
		t.Fatal("bad JSON must be rejected")
	}
}

func TestCaliperProfileAggregation(t *testing.T) {
	trace := buildTrace(t)
	p := trace.CaliperProfile()
	// The two "stage" siblings share the run/stage path, so they merge
	// into one region with Count 2 — like repeated Begin/End pairs.
	st, ok := p.Regions["run/stage"]
	if !ok {
		t.Fatalf("missing run/stage region; have %v", p.Regions)
	}
	if st.Count != 2 {
		t.Fatalf("region count: %d", st.Count)
	}
	// StepClock: spans are 1s each (one tick between start and end...
	// plus the ticks consumed by the sibling's start). Min <= Max and
	// Total is their sum.
	if st.Min > st.Max || st.Total <= 0 {
		t.Fatalf("region stats: %+v", st)
	}
	if _, ok := p.Regions["run"]; !ok {
		t.Fatal("missing root region")
	}
	if p.Metrics["hits_total"] != 3 {
		t.Fatalf("counter not carried over: %v", p.Metrics)
	}
	// The profile must serialize through the project's .cali writer.
	if _, err := p.JSON(); err != nil {
		t.Fatal(err)
	}
}

func TestPrometheusText(t *testing.T) {
	trace := buildTrace(t)
	text := trace.PrometheusText()
	for _, want := range []string{
		"# TYPE hits_total counter",
		"hits_total 3",
		"# TYPE inflight gauge",
		"inflight 2",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{stage="x",le="1"} 1`,
		`lat_seconds_bucket{stage="x",le="+Inf"} 1`,
		`lat_seconds_sum{stage="x"} 0.5`,
		`lat_seconds_count{stage="x"} 1`,
		"# TYPE benchpark_span_seconds counter",
		`benchpark_span_seconds{path="run/stage"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in exposition:\n%s", want, text)
		}
	}
	// Deterministic: rendering twice is identical.
	if text != trace.PrometheusText() {
		t.Fatal("exposition not deterministic")
	}
}

func TestFormatFloat(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{0, "0"}, {3, "3"}, {0.5, "0.5"}, {-2, "-2"},
	} {
		if got := formatFloat(tc.v); got != tc.want {
			t.Errorf("formatFloat(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestSplitJoinLabels(t *testing.T) {
	base, labels := splitLabels(`m{a="1",b="2"}`)
	if base != "m" || labels != `a="1",b="2"` {
		t.Fatalf("splitLabels: %q %q", base, labels)
	}
	if b, l := splitLabels("plain"); b != "plain" || l != "" {
		t.Fatalf("splitLabels plain: %q %q", b, l)
	}
	if got := joinLabels("m_bucket", appendLabel(labels, `le="+Inf"`)); got != `m_bucket{a="1",b="2",le="+Inf"}` {
		t.Fatalf("joinLabels: %q", got)
	}
	if got := joinLabels("m", ""); got != "m" {
		t.Fatalf("joinLabels empty: %q", got)
	}
}
