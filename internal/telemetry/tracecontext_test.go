package telemetry

import (
	"context"
	"net/http"
	"testing"
	"time"
)

func fixed() Clock { return FixedClock{T: time.Unix(1700000000, 0)} }

func TestTraceparentRoundTrip(t *testing.T) {
	tc := TraceContext{
		TraceID:  "0af7651916cd43dd8448eb211c80319c",
		ParentID: "b7ad6b7169203331",
	}
	hdr := tc.Traceparent()
	if hdr != "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01" {
		t.Fatalf("Traceparent = %q", hdr)
	}
	got, ok := ParseTraceparent(hdr)
	if !ok || got != tc {
		t.Fatalf("ParseTraceparent(%q) = %+v, %v", hdr, got, ok)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331", // missing flags
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
		"00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01", // uppercase
		"0-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
	}
	for _, s := range bad {
		if tc, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted: %+v", s, tc)
		}
	}
}

func TestTraceIDDeterministicUnderFixedClock(t *testing.T) {
	a, b := New(fixed()), New(fixed())
	if a.TraceID() == "" || a.TraceID() != b.TraceID() {
		t.Fatalf("FixedClock tracers disagree on trace ID: %q vs %q", a.TraceID(), b.TraceID())
	}
	c := New(FixedClock{T: time.Unix(1700000001, 0)})
	if c.TraceID() == a.TraceID() {
		t.Fatal("different epochs produced the same trace ID")
	}
	if !isLowerHex(a.TraceID(), 32) {
		t.Fatalf("trace ID %q is not 32 lowercase hex chars", a.TraceID())
	}
}

func TestInjectExtractJoinsRemoteTrace(t *testing.T) {
	// Caller process: a tracer with an open span injects its context.
	caller := New(fixed())
	ctx, span := StartSpan(WithTracer(context.Background(), caller), "push")
	h := http.Header{}
	Inject(ctx, h)
	span.End()
	if h.Get(TraceparentHeader) == "" {
		t.Fatal("Inject wrote no traceparent")
	}

	// Callee process: different epoch, hence a different native trace
	// ID — the request span must adopt the caller's.
	callee := New(FixedClock{T: time.Unix(1800000000, 0)})
	tc, ok := Extract(h)
	if !ok {
		t.Fatalf("Extract failed on %q", h.Get(TraceparentHeader))
	}
	sctx := WithRemote(WithTracer(context.Background(), callee), tc)
	_, srvSpan := StartSpan(sctx, "http:results")
	srvSpan.End()

	rec := callee.Snapshot().Spans[0]
	if rec.TraceID != caller.TraceID() {
		t.Fatalf("server span trace ID %q, want caller's %q", rec.TraceID, caller.TraceID())
	}
	if want := SpanContextID(caller.TraceID(), "push"); rec.RemoteParent != want {
		t.Fatalf("server span remote parent %q, want %q", rec.RemoteParent, want)
	}
	if rec.Parent != "" {
		t.Fatalf("remote-joined span has local parent %q", rec.Parent)
	}
}

func TestChildSpansInheritRemoteTraceID(t *testing.T) {
	callee := New(fixed())
	tc := TraceContext{TraceID: "0af7651916cd43dd8448eb211c80319c", ParentID: "b7ad6b7169203331"}
	ctx := WithRemote(WithTracer(context.Background(), callee), tc)
	ctx, root := StartSpan(ctx, "http:results")
	_, child := StartSpan(ctx, "wal:commit")
	child.End()
	root.End()
	for _, rec := range callee.Snapshot().Spans {
		if rec.TraceID != tc.TraceID {
			t.Fatalf("span %s trace ID %q, want remote %q", rec.ID, rec.TraceID, tc.TraceID)
		}
	}
	if got := TraceIDFrom(ctx); got != tc.TraceID {
		t.Fatalf("TraceIDFrom = %q, want %q", got, tc.TraceID)
	}
}

func TestPropagationContextPassThroughWithoutTracer(t *testing.T) {
	// An intermediary with no tracer of its own still forwards the
	// remote context on outbound calls.
	tc := TraceContext{TraceID: "0af7651916cd43dd8448eb211c80319c", ParentID: "b7ad6b7169203331"}
	ctx := WithRemote(context.Background(), tc)
	got, ok := PropagationContext(ctx)
	if !ok || got != tc {
		t.Fatalf("PropagationContext = %+v, %v; want pass-through of %+v", got, ok, tc)
	}
	if id := TraceIDFrom(ctx); id != tc.TraceID {
		t.Fatalf("TraceIDFrom = %q", id)
	}
	if _, ok := PropagationContext(context.Background()); ok {
		t.Fatal("PropagationContext on a bare context reported a trace")
	}
}

func TestMergeTracesDeterministic(t *testing.T) {
	build := func() (*Trace, *Trace) {
		caller := New(fixed())
		ctx, span := StartSpan(WithTracer(context.Background(), caller), "push")
		h := http.Header{}
		Inject(ctx, h)
		callee := New(FixedClock{T: time.Unix(1800000000, 0)})
		tc, _ := Extract(h)
		sctx := WithRemote(WithTracer(context.Background(), callee), tc)
		sctx, srvSpan := StartSpan(sctx, "http:results")
		_, wal := StartSpan(sctx, "wal:commit")
		wal.End()
		srvSpan.End()
		span.End()
		return caller.Snapshot(), callee.Snapshot()
	}
	a1, a2 := build()
	b1, b2 := build()
	ja, err := MergeTraces(a1, a2).JSON()
	if err != nil {
		t.Fatal(err)
	}
	// Merge order of arguments must not matter beyond span sorting,
	// and two identical runs must merge byte-identically.
	jb, err := MergeTraces(b2, b1).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if ja != jb {
		t.Fatalf("merged traces differ across runs:\n%s\nvs\n%s", ja, jb)
	}
	merged := MergeTraces(a1, a2)
	if len(merged.Spans) != 3 {
		t.Fatalf("merged trace has %d spans, want 3", len(merged.Spans))
	}
	for _, s := range merged.Spans {
		if s.TraceID != a1.Spans[0].TraceID {
			t.Fatalf("span %s not in the caller's trace: %q", s.ID, s.TraceID)
		}
	}
}
