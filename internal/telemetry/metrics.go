package telemetry

import (
	"math"
	"sort"
	"sync"
)

// Registry holds a run's counters, gauges and histograms. All
// instruments are nil-safe: instruments obtained from a nil registry
// silently drop observations, so instrumented code never branches on
// whether telemetry is enabled.
//
// Metric names follow the Prometheus convention and may carry a label
// set inline: `engine_stage_seconds{stage="execute"}`. The text
// exposition splits the label block back out (see export.go).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*exactSum
	gauges   map[string]*exactSum
	hists    map[string]*histState
}

type histState struct {
	bounds []float64 // sorted upper bounds, exclusive of +Inf
	counts []int64   // non-cumulative per-bound counts
	over   int64     // observations above the last bound
	sum    exactSum
	n      int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*exactSum{},
		gauges:   map[string]*exactSum{},
		hists:    map[string]*histState{},
	}
}

// exactSum accumulates float64 values with Shewchuk's expansion
// algorithm: the running total is a list of non-overlapping partials
// whose sum is the exact mathematical sum of everything added. Plain
// `+=` is not associative, so a concurrently-fed instrument's value
// would depend on the goroutine schedule; exact accumulation makes
// every instrument a pure function of the multiset of observations,
// which is what lets two identically-fed registries render
// byte-identical Prometheus text regardless of interleaving (pinned
// by the MetricsSnapshot determinism test).
type exactSum struct{ p []float64 }

func (e *exactSum) add(x float64) {
	if math.IsInf(x, 0) || math.IsNaN(x) {
		// A degenerate input poisons the expansion invariants;
		// collapse to a single sticky partial.
		e.p = append(e.p[:0], e.value()+x)
		return
	}
	i := 0
	for _, y := range e.p {
		if math.Abs(x) < math.Abs(y) {
			x, y = y, x
		}
		hi := x + y
		lo := y - (hi - x)
		if lo != 0 {
			e.p[i] = lo
			i++
		}
		x = hi
	}
	e.p = append(e.p[:i], x)
}

func (e *exactSum) set(x float64) { e.p = append(e.p[:0], x) }

// value sums the partials smallest-to-largest. Because they are
// non-overlapping, the result is the rounded exact sum, independent
// of the order the inputs arrived in.
func (e *exactSum) value() float64 {
	var s float64
	for _, v := range e.p {
		s += v
	}
	return s
}

// DefaultLatencyBuckets are the histogram bounds (seconds) used when
// a histogram is registered without explicit bounds.
var DefaultLatencyBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100, 500,
}

// Counter is a monotonically increasing value.
type Counter struct {
	r    *Registry
	name string
}

// Counter returns the named counter handle, creating it on first use.
func (r *Registry) Counter(name string) Counter {
	if r == nil {
		return Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.counters[name]; !ok {
		r.counters[name] = &exactSum{}
	}
	return Counter{r: r, name: name}
}

// Add increments the counter; negative deltas are ignored.
func (c Counter) Add(v float64) {
	if c.r == nil || v < 0 {
		return
	}
	c.r.mu.Lock()
	defer c.r.mu.Unlock()
	c.r.counters[c.name].add(v)
}

// Inc adds one.
func (c Counter) Inc() { c.Add(1) }

// Gauge is a value that can go up and down.
type Gauge struct {
	r    *Registry
	name string
}

// Gauge returns the named gauge handle, creating it on first use.
func (r *Registry) Gauge(name string) Gauge {
	if r == nil {
		return Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gauges[name]; !ok {
		r.gauges[name] = &exactSum{}
	}
	return Gauge{r: r, name: name}
}

// Set replaces the gauge's value.
func (g Gauge) Set(v float64) {
	if g.r == nil {
		return
	}
	g.r.mu.Lock()
	defer g.r.mu.Unlock()
	g.r.gauges[g.name].set(v)
}

// Add shifts the gauge's value by delta (negative to decrement).
func (g Gauge) Add(delta float64) {
	if g.r == nil {
		return
	}
	g.r.mu.Lock()
	defer g.r.mu.Unlock()
	g.r.gauges[g.name].add(delta)
}

// Histogram accumulates observations into fixed buckets.
type Histogram struct {
	r    *Registry
	name string
}

// Histogram returns the named histogram handle, registering it with
// the given upper bounds on first use (DefaultLatencyBuckets when
// none are supplied). Bounds are fixed at registration; later calls
// with different bounds reuse the original.
func (r *Registry) Histogram(name string, bounds ...float64) Histogram {
	if r == nil {
		return Histogram{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.hists[name]; !ok {
		if len(bounds) == 0 {
			bounds = DefaultLatencyBuckets
		}
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		r.hists[name] = &histState{bounds: bs, counts: make([]int64, len(bs))}
	}
	return Histogram{r: r, name: name}
}

// Observe records one value.
func (h Histogram) Observe(v float64) {
	if h.r == nil || math.IsNaN(v) {
		return
	}
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	st := h.r.hists[h.name]
	if st == nil {
		return
	}
	st.sum.add(v)
	st.n++
	for i, b := range st.bounds {
		if v <= b {
			st.counts[i]++
			return
		}
	}
	st.over++
}

// Bucket is one cumulative histogram bucket: observations <= LE.
type Bucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is a frozen histogram: cumulative finite buckets
// plus the overall sum and count (the count includes observations
// above the last bound — the implicit +Inf bucket).
type HistogramSnapshot struct {
	Buckets []Bucket `json:"buckets"`
	Sum     float64  `json:"sum"`
	Count   int64    `json:"count"`
}

// MetricsSnapshot is a frozen registry.
type MetricsSnapshot struct {
	Counters   map[string]float64           `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry. Nil-safe: a nil registry yields an
// empty snapshot. Map keys marshal sorted, so snapshots of identical
// runs are byte-identical in JSON.
func (r *Registry) Snapshot() MetricsSnapshot {
	var snap MetricsSnapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		snap.Counters = make(map[string]float64, len(r.counters))
		for k, v := range r.counters {
			snap.Counters[k] = v.value()
		}
	}
	if len(r.gauges) > 0 {
		snap.Gauges = make(map[string]float64, len(r.gauges))
		for k, v := range r.gauges {
			snap.Gauges[k] = v.value()
		}
	}
	if len(r.hists) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for k, st := range r.hists {
			hs := HistogramSnapshot{Sum: st.sum.value(), Count: st.n}
			cum := int64(0)
			for i, b := range st.bounds {
				cum += st.counts[i]
				hs.Buckets = append(hs.Buckets, Bucket{LE: b, Count: cum})
			}
			snap.Histograms[k] = hs
		}
	}
	return snap
}
