package telemetry

import (
	"context"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestNewLoggerDropsTimestamps(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf, slog.LevelInfo)
	l.Info("hello", "k", "v")
	l.Debug("hidden")
	got := buf.String()
	if strings.Contains(got, "time=") {
		t.Fatalf("log output carries a timestamp: %q", got)
	}
	if !strings.Contains(got, "msg=hello") || !strings.Contains(got, "k=v") {
		t.Fatalf("missing record content: %q", got)
	}
	if strings.Contains(got, "hidden") {
		t.Fatalf("debug record leaked at info level: %q", got)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "INFO": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn,
		"Error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("bad level must error")
	}
}

func TestLogAttachesSpanID(t *testing.T) {
	var buf strings.Builder
	base := NewLogger(&buf, slog.LevelInfo)
	tr := New(FixedClock{T: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)})
	ctx := WithTracer(WithLogger(context.Background(), base), tr)

	Log(ctx).Info("no span yet")
	sctx, s := StartSpan(ctx, "work")
	Log(sctx).Info("inside")
	s.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 records, got %d: %q", len(lines), buf.String())
	}
	if strings.Contains(lines[0], "span=") {
		t.Fatalf("record without a span carries a span attr: %q", lines[0])
	}
	if !strings.Contains(lines[1], "span=work") {
		t.Fatalf("record inside the span is missing span=work: %q", lines[1])
	}
}

func TestLogWithoutLoggerDiscards(t *testing.T) {
	// Must not panic, must not write anywhere.
	Log(context.Background()).Info("into the void")
	l := Log(context.Background())
	if l.Enabled(context.Background(), slog.LevelError) {
		t.Fatal("discard logger must report disabled at every level")
	}
}

func TestSpanLoggerWithoutSpan(t *testing.T) {
	var buf strings.Builder
	base := NewLogger(&buf, slog.LevelInfo)
	if got := SpanLogger(context.Background(), base); got != base {
		t.Fatal("SpanLogger without a span must return the base logger")
	}
}
