package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger returns a slog.Logger writing logfmt-style text records
// to w at the given level, with the timestamp attribute dropped so
// log output is deterministic (span and event timing belongs to the
// tracer, which owns the clock — not to the log stream).
func NewLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	h := slog.NewTextHandler(w, &slog.HandlerOptions{
		Level: level,
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if len(groups) == 0 && a.Key == slog.TimeKey {
				return slog.Attr{}
			}
			return a
		},
	})
	return slog.New(h)
}

// ParseLevel resolves a --log-level flag value.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("telemetry: unknown log level %q (want debug|info|warn|error)", s)
}

type loggerKey struct{}

// WithLogger returns a context carrying the logger for Log.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey{}, l)
}

// Log returns the context's logger with the current span's ID
// attached as a `span` attribute, so structured records correlate
// with the trace. Without a logger in the context it returns a
// discard logger; without a span, the bare logger.
func Log(ctx context.Context) *slog.Logger {
	l, _ := ctx.Value(loggerKey{}).(*slog.Logger)
	if l == nil {
		return discardLogger
	}
	return SpanLogger(ctx, l)
}

// SpanLogger returns base with the context's current span ID attached
// (base unchanged when no span is open).
func SpanLogger(ctx context.Context, base *slog.Logger) *slog.Logger {
	if s := Current(ctx); s != nil {
		return base.With("span", s.ID())
	}
	return base
}

// discardHandler drops every record (slog.DiscardHandler needs a
// newer toolchain than go.mod promises).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

var discardLogger = slog.New(discardHandler{})
