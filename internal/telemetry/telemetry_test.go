package telemetry

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestNilSafety(t *testing.T) {
	ctx := context.Background()
	sctx, s := StartSpan(ctx, "root")
	if s != nil {
		t.Fatal("StartSpan without a tracer must return a nil span")
	}
	if sctx != ctx {
		t.Fatal("StartSpan without a tracer must return ctx unchanged")
	}
	// Every method is a no-op on the nil receiver.
	s.SetAttr("k", "v")
	s.SetInt("n", 1)
	s.SetError(errors.New("boom"))
	s.AddEvent("e", "k", "v")
	s.End()
	if s.ID() != "" || s.Path() != "" || s.Duration() != 0 || !s.StartTime().IsZero() {
		t.Fatal("nil span accessors must return zero values")
	}

	var tr *Tracer
	if tr.Metrics() != nil {
		t.Fatal("nil tracer must yield a nil registry")
	}
	if got := tr.Snapshot(); got == nil || len(got.Spans) != 0 {
		t.Fatal("nil tracer snapshot must be empty, not nil")
	}

	var reg *Registry
	reg.Counter("c").Inc()
	reg.Gauge("g").Set(1)
	reg.Histogram("h").Observe(1)
	if snap := reg.Snapshot(); len(snap.Counters) != 0 {
		t.Fatal("nil registry must drop observations")
	}
}

func TestSpanHierarchyAndSiblingIDs(t *testing.T) {
	tr := New(FixedClock{T: epoch})
	ctx := WithTracer(context.Background(), tr)

	rctx, root := StartSpan(ctx, "run")
	c1ctx, c1 := StartSpan(rctx, "stage")
	_, g := StartSpan(c1ctx, "exp")
	g.End()
	c1.End()
	_, c2 := StartSpan(rctx, "stage")
	c2.End()
	_, c3 := StartSpan(rctx, "stage")
	c3.End()
	root.End()

	if root.ID() != "run" || root.Path() != "run" {
		t.Fatalf("root id/path: %q %q", root.ID(), root.Path())
	}
	if c1.ID() != "run/stage" {
		t.Fatalf("first sibling id: %q", c1.ID())
	}
	if c2.ID() != "run/stage#2" || c3.ID() != "run/stage#3" {
		t.Fatalf("repeated sibling ids: %q %q", c2.ID(), c3.ID())
	}
	if c2.Path() != "run/stage" || c3.Path() != "run/stage" {
		t.Fatal("repeated siblings must share the region path")
	}
	if g.ID() != "run/stage/exp" || g.Path() != "run/stage/exp" {
		t.Fatalf("grandchild id/path: %q %q", g.ID(), g.Path())
	}

	snap := tr.Snapshot()
	if len(snap.Spans) != 5 {
		t.Fatalf("want 5 finished spans, got %d", len(snap.Spans))
	}
	byID := map[string]SpanRecord{}
	for _, s := range snap.Spans {
		byID[s.ID] = s
	}
	if byID["run/stage/exp"].Parent != "run/stage" {
		t.Fatalf("grandchild parent: %q", byID["run/stage/exp"].Parent)
	}
}

func TestCurrentAndFromContext(t *testing.T) {
	tr := New(FixedClock{T: epoch})
	ctx := WithTracer(context.Background(), tr)
	if Current(ctx) != nil {
		t.Fatal("no span open yet")
	}
	sctx, s := StartSpan(ctx, "a")
	if Current(sctx) != s {
		t.Fatal("Current must return the innermost open span")
	}
	if FromContext(sctx) != tr {
		t.Fatal("tracer must survive span derivation")
	}
	s.End()
}

func TestEndIdempotentAndOpenSpansExcluded(t *testing.T) {
	clock := NewStepClock(epoch, time.Second)
	tr := New(clock)
	ctx := WithTracer(context.Background(), tr)
	_, a := StartSpan(ctx, "a")
	a.End()
	d := a.Duration()
	a.End() // no-op: duration must not change, span not re-recorded
	if a.Duration() != d {
		t.Fatal("second End changed the duration")
	}
	_, open := StartSpan(ctx, "open")
	if open.Duration() != 0 {
		t.Fatal("open span must report zero duration")
	}
	snap := tr.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("want only the ended span in the snapshot, got %d", len(snap.Spans))
	}
	open.End()
}

func TestStepClockDurations(t *testing.T) {
	clock := NewStepClock(epoch, time.Second)
	tr := New(clock) // epoch consumes one tick
	ctx := WithTracer(context.Background(), tr)
	_, s := StartSpan(ctx, "a") // start at +1s
	s.End()                     // end at +2s
	if got := s.Duration(); got != time.Second {
		t.Fatalf("step-clock duration: %v", got)
	}
	snap := tr.Snapshot()
	if snap.Spans[0].StartS != 1 || snap.Spans[0].DurS != 1 {
		t.Fatalf("span record times: start=%v dur=%v", snap.Spans[0].StartS, snap.Spans[0].DurS)
	}
}

func TestSpanErrorAttrsEvents(t *testing.T) {
	tr := New(FixedClock{T: epoch})
	ctx := WithTracer(context.Background(), tr)
	_, s := StartSpan(ctx, "a")
	s.SetAttr("k", "v")
	s.SetInt("n", 7)
	s.SetError(nil) // nil error must not mark the span failed
	s.AddEvent("checkpoint", "phase", "mid", "odd")
	s.SetError(errors.New("boom"))
	s.End()
	rec := tr.Snapshot().Spans[0]
	if rec.Error != "boom" {
		t.Fatalf("span error: %q", rec.Error)
	}
	if rec.Attrs["k"] != "v" || rec.Attrs["n"] != "7" {
		t.Fatalf("span attrs: %v", rec.Attrs)
	}
	if len(rec.Events) != 1 || rec.Events[0].Name != "checkpoint" {
		t.Fatalf("span events: %v", rec.Events)
	}
	if rec.Events[0].Attrs["phase"] != "mid" || rec.Events[0].Attrs["odd"] != "" {
		t.Fatalf("event attrs (odd trailing key): %v", rec.Events[0].Attrs)
	}
}

// Two identical concurrent runs under a FixedClock must export
// byte-identical JSON, whatever the goroutine interleaving.
func TestFixedClockByteIdenticalTraceJSON(t *testing.T) {
	run := func() string {
		tr := New(FixedClock{T: epoch})
		ctx := WithTracer(context.Background(), tr)
		rctx, root := StartSpan(ctx, "run")
		var wg sync.WaitGroup
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, s := StartSpan(rctx, fmt.Sprintf("exp_%02d", i))
				s.SetInt("i", i)
				tr.Metrics().Counter("done_total").Inc()
				tr.Metrics().Histogram("lat_seconds").Observe(0)
				s.End()
			}(i)
		}
		wg.Wait()
		root.End()
		out, err := tr.Snapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("traces differ:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

func TestMetricsSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotonic
	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	h := r.Histogram("h_seconds", 1, 10)
	for _, v := range []float64{0.5, 5, 50} {
		h.Observe(v)
	}

	snap := r.Snapshot()
	if snap.Counters["c_total"] != 3 {
		t.Fatalf("counter: %v", snap.Counters["c_total"])
	}
	if snap.Gauges["g"] != 7 {
		t.Fatalf("gauge: %v", snap.Gauges["g"])
	}
	hs := snap.Histograms["h_seconds"]
	if hs.Count != 3 || hs.Sum != 55.5 {
		t.Fatalf("histogram count/sum: %d %v", hs.Count, hs.Sum)
	}
	// Buckets are cumulative; the 50 observation only shows in Count.
	want := []Bucket{{LE: 1, Count: 1}, {LE: 10, Count: 2}}
	if len(hs.Buckets) != len(want) || hs.Buckets[0] != want[0] || hs.Buckets[1] != want[1] {
		t.Fatalf("buckets: %+v", hs.Buckets)
	}
}

func TestHistogramDefaultsAndFixedBounds(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h").Observe(0.003)
	// Re-registering with different bounds reuses the original.
	r.Histogram("h", 1000).Observe(0.003)
	hs := r.Snapshot().Histograms["h"]
	if len(hs.Buckets) != len(DefaultLatencyBuckets) {
		t.Fatalf("want default buckets, got %d", len(hs.Buckets))
	}
	if hs.Count != 2 {
		t.Fatalf("count: %d", hs.Count)
	}
}

func TestConcurrentMetricsAndSpans(t *testing.T) {
	tr := New(FixedClock{T: epoch})
	ctx := WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, s := StartSpan(ctx, "w")
			tr.Metrics().Counter("n_total").Inc()
			tr.Metrics().Gauge("g").Add(1)
			tr.Metrics().Histogram("h").Observe(1)
			s.AddEvent("tick")
			s.End()
		}()
	}
	wg.Wait()
	snap := tr.Snapshot()
	if len(snap.Spans) != 32 {
		t.Fatalf("spans: %d", len(snap.Spans))
	}
	if snap.Metrics.Counters["n_total"] != 32 {
		t.Fatalf("counter: %v", snap.Metrics.Counters["n_total"])
	}
}
