package telemetry

import (
	"sync"
	"testing"
)

// TestMetricsSnapshotDeterministicAcrossInterleavings pins the
// property the live /metrics endpoint depends on: the rendered
// Prometheus text is a function of WHAT was observed, not of the
// goroutine schedule that observed it. Two registries are fed the
// same commutative operation set — one sequentially, one sharded
// across goroutines in a different order — and must render
// byte-identical text.
func TestMetricsSnapshotDeterministicAcrossInterleavings(t *testing.T) {
	type op func(r *Registry)
	var ops []op
	for i := 0; i < 400; i++ {
		i := i
		ops = append(ops,
			func(r *Registry) { r.Counter(`req_total{route="a"}`).Inc() },
			func(r *Registry) { r.Counter(`req_total{route="b"}`).Add(float64(i % 3)) },
			func(r *Registry) { r.Gauge("inflight").Add(1) },
			func(r *Registry) { r.Gauge("inflight").Add(-1) },
			func(r *Registry) { r.Histogram("lat_seconds").Observe(float64(i%7) * 0.01) },
			func(r *Registry) { r.Histogram(`lat_seconds{route="a"}`).Observe(float64(i % 11)) },
		)
	}

	sequential := NewRegistry()
	for _, o := range ops {
		o(sequential)
	}

	interleaved := NewRegistry()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker takes a strided slice, and odd workers walk
			// it backwards, so the global observation order differs
			// wildly from the sequential feed.
			var mine []op
			for i := w; i < len(ops); i += workers {
				mine = append(mine, ops[i])
			}
			if w%2 == 1 {
				for i, j := 0, len(mine)-1; i < j; i, j = i+1, j-1 {
					mine[i], mine[j] = mine[j], mine[i]
				}
			}
			for _, o := range mine {
				o(interleaved)
			}
		}()
	}
	wg.Wait()

	want := sequential.PrometheusText()
	got := interleaved.PrometheusText()
	if want == "" {
		t.Fatal("sequential registry rendered empty")
	}
	if got != want {
		t.Fatalf("interleaved registry rendered differently:\n--- sequential\n%s\n--- interleaved\n%s", want, got)
	}
}

// TestRegistryPrometheusTextMatchesTraceExport: the live-registry
// render and the end-of-run trace export agree on the metrics block.
func TestRegistryPrometheusTextMatchesTraceExport(t *testing.T) {
	tr := New(fixed())
	m := tr.Metrics()
	m.Counter("a_total").Add(3)
	m.Gauge("g").Set(1.5)
	m.Histogram("h_seconds").Observe(0.02)

	live := m.PrometheusText()
	if live == "" {
		t.Fatal("live render is empty")
	}
	exported := tr.Snapshot().PrometheusText()
	// The trace export may append span families; the metrics block
	// must be its prefix.
	if len(exported) < len(live) || exported[:len(live)] != live {
		t.Fatalf("trace export does not start with the live metrics block:\nlive:\n%s\nexport:\n%s", live, exported)
	}

	var nilReg *Registry
	if nilReg.PrometheusText() != "" {
		t.Fatal("nil registry rendered non-empty text")
	}
}
