// Package telemetry is the observability layer of the benchmarking
// harness: context-propagated hierarchical spans, typed events, and a
// metrics registry (counters, gauges, histograms), all stdlib-only
// and driven by an injectable Clock.
//
// The paper's analysis pipeline hinges on instrumented runs — Caliper
// annotations flowing into a metrics database — and Omnibenchmark and
// exaCB both argue that the harness itself must emit auditable timing
// and provenance, not just the benchmarks it runs. This package is
// that instrumentation for our own execution stack: the engine, the
// session orchestration, the CI pipelines and the installer all start
// spans here, and three exporters (internal Caliper profile, a
// deterministic JSON trace, Prometheus text exposition — see
// export.go) turn a finished run into analyzable data.
//
// Design rules, mirrored from the execution engine's invariants:
//
//   - Tracing is opt-in via the context. telemetry.StartSpan on a
//     context without a Tracer returns a nil *Span whose methods are
//     all no-ops, so instrumented hot paths cost one context lookup
//     when telemetry is off.
//   - Time comes only from the Tracer's injected Clock. With a
//     FixedClock every duration is zero and two identical runs export
//     byte-identical traces, which is how the determinism tests keep
//     their guarantee with telemetry enabled (the wall clock is the
//     default for real runs).
//   - Span identity is structural, not temporal: a span's ID is its
//     slash-joined ancestry path (with a "#n" suffix for repeated
//     sibling names), so exports sort deterministically even when
//     spans were opened concurrently.
//   - Every StartSpan must be paired with End on all return paths;
//     cmd/benchlint's spanend analyzer enforces this mechanically.
package telemetry

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Clock supplies the tracer's timestamps. Injecting it keeps the
// instrumented packages free of wall-clock reads: the engine's
// determinism analyzer still holds because real time enters only
// here, and only when the caller chose the wall clock.
type Clock interface {
	Now() time.Time
}

// wallClock is the production clock.
type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// WallClock returns the real-time clock (the default for a nil clock
// passed to New).
func WallClock() Clock { return wallClock{} }

// FixedClock always reports the same instant. Under it every span
// duration is zero, which makes trace exports a pure function of the
// run's structure — the clock the byte-identical-trace tests inject.
type FixedClock struct{ T time.Time }

func (c FixedClock) Now() time.Time { return c.T }

// StepClock advances by a fixed step on every reading — a logical
// clock for unit tests that want nonzero, reproducible durations in
// sequential code.
type StepClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

// NewStepClock returns a StepClock starting at start.
func NewStepClock(start time.Time, step time.Duration) *StepClock {
	return &StepClock{t: start, step: step}
}

func (c *StepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.t
	c.t = c.t.Add(c.step)
	return now
}

// Tracer collects finished spans and owns the run's metrics registry.
// It is safe for concurrent use: the engine's worker pool opens and
// closes experiment spans from many goroutines.
type Tracer struct {
	clock   Clock
	epoch   time.Time
	traceID string
	metrics *Registry

	mu       sync.Mutex
	finished []*Span
	siblings map[string]int // parentID + "\x00" + name -> prior count
}

// New returns a Tracer reading the given clock (nil means the wall
// clock). The first clock reading becomes the trace epoch; exported
// span times are seconds since it.
func New(clock Clock) *Tracer {
	if clock == nil {
		clock = wallClock{}
	}
	epoch := clock.Now()
	return &Tracer{
		clock:    clock,
		epoch:    epoch,
		traceID:  deriveTraceID(epoch),
		metrics:  NewRegistry(),
		siblings: map[string]int{},
	}
}

// TraceID returns the tracer's 32-hex trace identity — deterministic
// under a FixedClock, see deriveTraceID. Spans started without a
// remote parent belong to this trace; "" on a nil tracer.
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// Metrics returns the tracer's registry; nil-safe (a nil tracer
// yields a nil registry whose instruments are no-ops).
func (t *Tracer) Metrics() *Registry {
	if t == nil {
		return nil
	}
	return t.metrics
}

// Now reads the tracer's clock; the zero time on a nil tracer.
func (t *Tracer) Now() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.clock.Now()
}

// Span is one timed region of the harness's execution: a name, an
// ancestry path, attributes, typed events, and an optional error.
// A nil *Span (StartSpan without a tracer) is a valid no-op receiver
// for every method.
type Span struct {
	tracer *Tracer
	id     string
	parent string
	name   string
	path   string
	start  time.Time
	// traceID and remoteParent are fixed at StartSpan: the trace the
	// span belongs to (inherited from the parent span, adopted from a
	// WithRemote caller, or the tracer's own) and, for a span joining
	// a remote caller's trace, the caller's wire-level span ID.
	traceID      string
	remoteParent string

	mu     sync.Mutex
	attrs  map[string]string
	events []spanEvent
	errMsg string
	end    time.Time
	ended  bool
}

type spanEvent struct {
	name    string
	offsetS float64
	attrs   map[string]string
}

type tracerKey struct{}
type spanKey struct{}

// WithTracer returns a context carrying the tracer; StartSpan on the
// derived context records into it.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// FromContext returns the context's tracer, nil when tracing is off.
func FromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// Current returns the context's innermost open span, nil when none.
func Current(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan opens a span named name under the context's current span
// and returns a derived context carrying it. Without a tracer in the
// context it returns ctx unchanged and a nil span. The caller must
// End the span on every return path (the spanend analyzer checks).
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := FromContext(ctx)
	if t == nil {
		return ctx, nil
	}
	parentID, base := "", ""
	traceID, remoteParent := t.traceID, ""
	if p := Current(ctx); p != nil {
		parentID = p.id
		base = p.path + "/"
		if p.traceID != "" {
			traceID = p.traceID
		}
	} else if tc, ok := RemoteFromContext(ctx); ok && tc.Valid() {
		// No local parent but a remote caller: join the caller's trace.
		traceID = tc.TraceID
		remoteParent = tc.ParentID
	}
	t.mu.Lock()
	key := parentID + "\x00" + name
	n := t.siblings[key]
	t.siblings[key] = n + 1
	t.mu.Unlock()
	id := parentID + "/" + name
	if parentID == "" {
		id = name
	}
	if n > 0 {
		id = fmt.Sprintf("%s#%d", id, n+1)
	}
	s := &Span{
		tracer:       t,
		id:           id,
		parent:       parentID,
		name:         name,
		path:         base + name,
		start:        t.clock.Now(),
		traceID:      traceID,
		remoteParent: remoteParent,
		attrs:        map[string]string{},
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// ID returns the span's unique identifier ("" for a nil span).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// TraceID returns the trace the span belongs to ("" for a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// ContextID returns the span's wire-level 16-hex ID — what a remote
// callee records as its remote parent; "" for a nil span.
func (s *Span) ContextID() string {
	if s == nil {
		return ""
	}
	return SpanContextID(s.traceID, s.id)
}

// Path returns the slash-joined region path (shared by repeated
// sibling spans; the Caliper exporter aggregates on it).
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// StartTime returns when the span opened (zero for a nil span).
func (s *Span) StartTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// SetAttr records a string attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.attrs[key] = value
}

// SetInt records an integer attribute.
func (s *Span) SetInt(key string, v int) { s.SetAttr(key, fmt.Sprintf("%d", v)) }

// SetError marks the span failed, recording the error message.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.errMsg = err.Error()
}

// AddEvent records a timed event with optional key/value attribute
// pairs (an odd trailing key gets an empty value).
func (s *Span) AddEvent(name string, kv ...string) {
	if s == nil {
		return
	}
	var attrs map[string]string
	if len(kv) > 0 {
		attrs = map[string]string{}
		for i := 0; i < len(kv); i += 2 {
			v := ""
			if i+1 < len(kv) {
				v = kv[i+1]
			}
			attrs[kv[i]] = v
		}
	}
	now := s.tracer.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, spanEvent{
		name:    name,
		offsetS: now.Sub(s.start).Seconds(),
		attrs:   attrs,
	})
}

// End closes the span and hands it to the tracer. Ending twice is a
// no-op, so a defer may back up an explicit mid-function End.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = s.tracer.clock.Now()
	s.mu.Unlock()
	s.tracer.mu.Lock()
	s.tracer.finished = append(s.tracer.finished, s)
	s.tracer.mu.Unlock()
}

// Duration returns the span's inclusive time; zero while open or for
// a nil span.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return 0
	}
	return s.end.Sub(s.start)
}

// SpanRecord is one finished span in a Trace snapshot. Times are
// seconds relative to the trace epoch so exports are portable across
// clock choices.
type SpanRecord struct {
	ID     string `json:"id"`
	Parent string `json:"parent,omitempty"`
	// TraceID is the cross-process trace this span belongs to;
	// RemoteParent, when set, is the wire-level span ID of the remote
	// caller this span joined (see SpanContextID). Together they let
	// MergeTraces reassemble one trace from per-process snapshots.
	TraceID      string            `json:"trace_id,omitempty"`
	RemoteParent string            `json:"remote_parent,omitempty"`
	Name         string            `json:"name"`
	Path         string            `json:"path"`
	StartS       float64           `json:"start_s"`
	DurS         float64           `json:"dur_s"`
	Error        string            `json:"error,omitempty"`
	Attrs        map[string]string `json:"attrs,omitempty"`
	Events       []EventRecord     `json:"events,omitempty"`
}

// EventRecord is one span event in a snapshot.
type EventRecord struct {
	Name    string            `json:"name"`
	OffsetS float64           `json:"offset_s"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Trace is an immutable snapshot of a tracer: finished spans in
// deterministic order plus the metrics state.
type Trace struct {
	Format  string          `json:"format"`
	Spans   []SpanRecord    `json:"spans"`
	Metrics MetricsSnapshot `json:"metrics"`
}

// TraceFormat tags the trace interchange version.
const TraceFormat = "benchpark-trace-1"

// Snapshot freezes the tracer's state: every finished span (open
// spans are excluded — End them first), sorted by start time then ID
// so concurrent completions export identically, plus the metrics
// snapshot. Nil-safe: a nil tracer yields an empty trace.
func (t *Tracer) Snapshot() *Trace {
	tr := &Trace{Format: TraceFormat, Spans: []SpanRecord{}}
	if t == nil {
		return tr
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.finished...)
	t.mu.Unlock()
	for _, s := range spans {
		s.mu.Lock()
		rec := SpanRecord{
			ID:           s.id,
			Parent:       s.parent,
			TraceID:      s.traceID,
			RemoteParent: s.remoteParent,
			Name:         s.name,
			Path:         s.path,
			StartS:       s.start.Sub(t.epoch).Seconds(),
			DurS:         s.end.Sub(s.start).Seconds(),
			Error:        s.errMsg,
		}
		if len(s.attrs) > 0 {
			rec.Attrs = make(map[string]string, len(s.attrs))
			for k, v := range s.attrs {
				rec.Attrs[k] = v
			}
		}
		for _, e := range s.events {
			rec.Events = append(rec.Events, EventRecord{Name: e.name, OffsetS: e.offsetS, Attrs: e.attrs})
		}
		s.mu.Unlock()
		tr.Spans = append(tr.Spans, rec)
	}
	sort.Slice(tr.Spans, func(i, j int) bool {
		a, b := tr.Spans[i], tr.Spans[j]
		if a.StartS != b.StartS {
			return a.StartS < b.StartS
		}
		return a.ID < b.ID
	})
	tr.Metrics = t.metrics.Snapshot()
	return tr
}
