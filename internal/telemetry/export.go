package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/caliper"
)

// JSON renders the trace as an indented, deterministic JSON document:
// spans are pre-sorted by Snapshot and encoding/json marshals map
// keys sorted, so identical runs under a FixedClock produce
// byte-identical output.
func (t *Trace) JSON() (string, error) {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}

// ParseTrace reads a trace back from its JSON form.
func ParseTrace(src string) (*Trace, error) {
	var t Trace
	if err := json.Unmarshal([]byte(src), &t); err != nil {
		return nil, fmt.Errorf("telemetry: bad trace file: %w", err)
	}
	if t.Format != TraceFormat {
		return nil, fmt.Errorf("telemetry: unsupported trace format %q", t.Format)
	}
	return &t, nil
}

// CaliperProfile converts the trace into the project's Caliper
// profile model: spans aggregate into hierarchical regions keyed by
// their path (repeated sibling spans merge into one region with
// count > 1, exactly like repeated Begin/End annotations on a
// Recorder), and metric counters carry over. The result serializes
// with caliper.Profile.JSON into the same .cali interchange form as
// benchmark profiles, so harness traces flow into the existing
// caliper → thicket → extrap analysis path alongside benchmark data.
func (t *Trace) CaliperProfile() *caliper.Profile {
	p := caliper.NewProfile()
	for _, s := range t.Spans {
		st := p.Regions[s.Path]
		if st.Count == 0 {
			st.Min = math.Inf(1)
		}
		st.Count++
		st.Total += s.DurS
		if s.DurS < st.Min {
			st.Min = s.DurS
		}
		if s.DurS > st.Max {
			st.Max = s.DurS
		}
		p.Regions[s.Path] = st
	}
	for name, v := range t.Metrics.Counters {
		p.Metrics[name] = v
	}
	return p
}

// PrometheusText renders the snapshot in the Prometheus text
// exposition format. Metric names may embed a label block
// (`x{k="v"}`); histogram bucket lines splice the `le` label into it.
// Output is fully sorted, so identical registry states render
// byte-identically regardless of observation interleaving.
func (m MetricsSnapshot) PrometheusText() string {
	var b strings.Builder
	m.writeText(&b)
	return b.String()
}

func (m MetricsSnapshot) writeText(b *strings.Builder) {
	names := sortedKeys(m.Counters)
	for _, name := range names {
		base, labels := splitLabels(name)
		fmt.Fprintf(b, "# TYPE %s counter\n", base)
		fmt.Fprintf(b, "%s %s\n", joinLabels(base, labels), formatFloat(m.Counters[name]))
	}

	names = sortedKeys(m.Gauges)
	for _, name := range names {
		base, labels := splitLabels(name)
		fmt.Fprintf(b, "# TYPE %s gauge\n", base)
		fmt.Fprintf(b, "%s %s\n", joinLabels(base, labels), formatFloat(m.Gauges[name]))
	}

	names = sortedKeys(m.Histograms)
	for _, name := range names {
		h := m.Histograms[name]
		base, labels := splitLabels(name)
		fmt.Fprintf(b, "# TYPE %s histogram\n", base)
		for _, bk := range h.Buckets {
			le := fmt.Sprintf("le=%q", formatFloat(bk.LE))
			fmt.Fprintf(b, "%s %d\n", joinLabels(base+"_bucket", appendLabel(labels, le)), bk.Count)
		}
		fmt.Fprintf(b, "%s %d\n", joinLabels(base+"_bucket", appendLabel(labels, `le="+Inf"`)), h.Count)
		fmt.Fprintf(b, "%s %s\n", joinLabels(base+"_sum", labels), formatFloat(h.Sum))
		fmt.Fprintf(b, "%s %d\n", joinLabels(base+"_count", labels), h.Count)
	}
}

// PrometheusText renders the registry's CURRENT state as Prometheus
// text — the live scrape path behind a /metrics endpoint, as opposed
// to the end-of-run Trace export below. Nil-safe: a nil registry
// renders empty.
func (r *Registry) PrometheusText() string {
	return r.Snapshot().PrometheusText()
}

// PrometheusText renders the trace's metrics in the Prometheus text
// exposition format, plus one derived metric family
// (benchpark_span_seconds) summing span time per region path.
func (t *Trace) PrometheusText() string {
	var b strings.Builder
	t.Metrics.writeText(&b)

	// Span time per region path, so a scrape sees where harness wall
	// time went without parsing the span list.
	totals := map[string]float64{}
	for _, s := range t.Spans {
		totals[s.Path] += s.DurS
	}
	if len(totals) > 0 {
		b.WriteString("# TYPE benchpark_span_seconds counter\n")
		for _, path := range sortedKeys(totals) {
			fmt.Fprintf(&b, "benchpark_span_seconds{path=%q} %s\n", path, formatFloat(totals[path]))
		}
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// splitLabels separates `base{k="v",...}` into base and the label
// body (without braces); labels is "" when the name has none.
func splitLabels(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

func appendLabel(labels, l string) string {
	if labels == "" {
		return l
	}
	return labels + "," + l
}

func joinLabels(base, labels string) string {
	if labels == "" {
		return base
	}
	return base + "{" + labels + "}"
}

// formatFloat renders a metric value the shortest way that round-trips.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
