package telemetry

import (
	"fmt"
	"testing"
)

// Registry hot paths: every instrumented request in resultsd touches
// Counter.Add and Histogram.Observe (often from many goroutines), and
// every /metrics scrape renders PrometheusText. These benchmarks feed
// BENCH_telemetry.json, extending the perf trajectory started by
// BENCH_pipeline.json.

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddContended(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) * 0.001)
	}
}

func BenchmarkHistogramObserveContended(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds")
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(float64(i%100) * 0.001)
			i++
		}
	})
}

// benchRegistry models a loaded resultsd: a few route-labeled
// counter/histogram families plus assorted gauges.
func benchRegistry() *Registry {
	r := NewRegistry()
	for _, route := range []string{"results", "series", "regressions", "systems"} {
		c := r.Counter(fmt.Sprintf("resultsd_requests_total{route=%q}", route))
		h := r.Histogram(fmt.Sprintf("resultsd_request_seconds{route=%q}", route))
		for i := 0; i < 200; i++ {
			c.Inc()
			h.Observe(float64(i%50) * 0.002)
		}
	}
	for i := 0; i < 16; i++ {
		r.Gauge(fmt.Sprintf("g_%02d", i)).Set(float64(i))
	}
	return r
}

func BenchmarkRegistrySnapshot(b *testing.B) {
	r := benchRegistry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}

func BenchmarkPrometheusText(b *testing.B) {
	r := benchRegistry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.PrometheusText()
	}
}
