package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/extrap"
	"repro/internal/hpcsim"
	"repro/internal/metricsdb"
	"repro/internal/ramble"
	"repro/internal/telemetry"
	"repro/internal/thicket"
)

// ScalingStudy is a Figure 14 style experiment set: one benchmark
// workload swept over process counts on one system, with the measured
// figure of merit fed to Extra-P.
type ScalingStudy struct {
	System    *hpcsim.System
	Benchmark string
	Workload  string
	FOM       string            // FOM name whose value is modeled
	Region    string            // Caliper region to model (alternative to FOM)
	Vars      map[string]string // fixed workload variables
	Scales    []int             // process counts (the paper's nprocs axis)
	Reps      int               // repetitions per scale (red dots per x)

	// VarsByScale, when set, computes per-scale variables — the hook
	// for strong scaling, where the global problem is fixed and the
	// per-rank share shrinks with p. Values here override Vars.
	VarsByScale func(p int) map[string]string
}

// StudyResult carries the measurements and the fitted model.
type StudyResult struct {
	Measurements []extrap.Measurement
	Model        *extrap.Model
	Thicket      *thicket.Thicket
}

// Run executes the study and fits the Extra-P model. Cancellable
// callers use RunContext.
//
//benchlint:compat
func (st *ScalingStudy) Run(bp *Benchpark) (*StudyResult, error) {
	return st.RunContext(context.Background(), bp, 0)
}

// RunContext executes the study's scale×rep points concurrently on a
// bounded worker pool (jobs <= 0 means NumCPU) and fits the Extra-P
// model. The kernels run in parallel; measurements, thicket profiles
// and metrics records are committed sequentially in sweep order, so
// the result is identical to the sequential study.
func (st *ScalingStudy) RunContext(ctx context.Context, bp *Benchpark, jobs int) (res *StudyResult, err error) {
	ctx, root := telemetry.StartSpan(ctx, "scaling.study")
	root.SetAttr("benchmark", st.Benchmark)
	root.SetAttr("workload", st.Workload)
	defer root.End()
	defer func() { root.SetError(err) }()
	if len(st.Scales) < 3 {
		return nil, fmt.Errorf("benchpark: scaling study needs >=3 scales")
	}
	if st.Reps <= 0 {
		st.Reps = 1
	}
	b, err := bench.Get(st.Benchmark)
	if err != nil {
		return nil, err
	}
	app, err := ramble.GetApplication(st.Benchmark)
	if err != nil {
		return nil, err
	}
	rpn := st.System.Node.Cores()
	for _, p := range st.Scales {
		if p < rpn {
			rpn = p
		}
	}

	// The sweep's point list, in the order results are committed.
	type point struct{ p, rep int }
	var points []point
	for _, p := range st.Scales {
		for rep := 0; rep < st.Reps; rep++ {
			points = append(points, point{p, rep})
		}
	}

	// Concurrent measurement: each kernel run is independent. Every
	// point gets its own span under the study root (the closure's ctx
	// shares the root ctx's cancellation, so deriving from ctx here
	// nests correctly).
	outs, errs := engine.Map(ctx, jobs, len(points), func(_ context.Context, i int) (*bench.Output, error) {
		pt := points[i]
		_, span := telemetry.StartSpan(ctx, fmt.Sprintf("point:p=%d,rep=%d", pt.p, pt.rep))
		defer span.End()
		p := pt.p
		vars := map[string]string{}
		for k, v := range st.Vars {
			vars[k] = v
		}
		if st.VarsByScale != nil {
			for k, v := range st.VarsByScale(p) {
				vars[k] = v
			}
		}
		vars["workload"] = st.Workload
		out, rerr := b.Run(bench.Params{
			System: st.System, Ranks: p, RanksPerNode: rpn,
			Vars: vars,
		})
		span.SetError(rerr)
		return out, rerr
	})

	// Sequential commit in sweep order keeps the thicket and metrics
	// database streams deterministic.
	th := thicket.New()
	var measurements []extrap.Measurement
	for i, pt := range points {
		if errs[i] != nil {
			return nil, fmt.Errorf("benchpark: scale %d: %w", pt.p, errs[i])
		}
		out := outs[i]
		foms := app.ExtractFOMs(out.Text)
		val, ok := metricsdb.ParseFOMs(foms)[st.FOM]
		if !ok {
			return nil, fmt.Errorf("benchpark: scale %d: FOM %q not in output:\n%s", pt.p, st.FOM, out.Text)
		}
		measurements = append(measurements, extrap.Measurement{P: float64(pt.p), Value: val})
		out.Metadata.Setf("nprocs", "%d", pt.p)
		th.Add(out.Profile, out.Metadata)
		bp.Metrics.Add(metricsdb.Result{
			Benchmark: st.Benchmark, Workload: st.Workload,
			System:     st.System.Name,
			Experiment: fmt.Sprintf("%s_%d_rep%d", st.Workload, pt.p, pt.rep),
			FOMs:       metricsdb.ParseFOMs(foms),
			Meta:       map[string]string{"nprocs": fmt.Sprintf("%d", pt.p)},
			Manifest:   fmt.Sprintf("system: %s\nscaling: %s/%s p=%d", st.System.Name, st.Benchmark, st.Workload, pt.p),
		})
	}
	model, err := extrap.Fit(measurements)
	if err != nil {
		return nil, err
	}
	return &StudyResult{
		Measurements: extrap.SortMeasurements(measurements),
		Model:        model,
		Thicket:      th,
	}, nil
}

// AMGStrongScalingStudy fixes a global grid (nx × ny × globalNZ) and
// divides the z extent across ranks — the "strong-scaling study of a
// benchmark (a set of experiments with the same problem size, scaled
// on a different number of resources)" that Section 2 gives as the
// canonical experiment example.
func AMGStrongScalingStudy(sys *hpcsim.System, nx, ny, globalNZ int, scales []int) (*ScalingStudy, error) {
	for _, p := range scales {
		if globalNZ%p != 0 || globalNZ/p < 2 {
			return nil, fmt.Errorf("benchpark: global nz %d does not divide across %d ranks (needs >=2 planes each)",
				globalNZ, p)
		}
	}
	return &ScalingStudy{
		System:    sys,
		Benchmark: "amg2023",
		Workload:  "problem1",
		FOM:       "solve_time",
		Vars: map[string]string{
			"nx": fmt.Sprintf("%d", nx), "ny": fmt.Sprintf("%d", ny),
			"tolerance": "1e-6",
		},
		VarsByScale: func(p int) map[string]string {
			return map[string]string{"nz": fmt.Sprintf("%d", globalNZ/p)}
		},
		Scales: scales,
		Reps:   1,
	}, nil
}

// Figure14Study returns the study reproducing the paper's Figure 14:
// MPI_Bcast total time on the CTS architecture, swept to 3456
// processes.
func Figure14Study(scales []int) (*ScalingStudy, error) {
	cts, err := hpcsim.Get("cts1")
	if err != nil {
		return nil, err
	}
	if len(scales) == 0 {
		scales = []int{64, 128, 256, 512, 1024, 2048, 3456}
	}
	return &ScalingStudy{
		System:    cts,
		Benchmark: "osu-micro-benchmarks",
		Workload:  "osu_bcast",
		FOM:       "total_time",
		Vars: map[string]string{
			"message_size": "8192",
			"iterations":   "100000",
		},
		Scales: scales,
		Reps:   1,
	}, nil
}

// Efficiency is one row of a strong-scaling analysis.
type Efficiency struct {
	P          float64
	Time       float64
	Speedup    float64 // T(p0)/T(p) · with p0 the smallest measured scale
	Efficiency float64 // Speedup / (p/p0); 1.0 is ideal strong scaling
}

// ParallelEfficiency derives speedup and efficiency from a
// strong-scaling measurement series (time-like FOM, smallest scale as
// baseline).
func ParallelEfficiency(measurements []extrap.Measurement) []Efficiency {
	if len(measurements) == 0 {
		return nil
	}
	sorted := extrap.SortMeasurements(append([]extrap.Measurement(nil), measurements...))
	base := sorted[0]
	out := make([]Efficiency, len(sorted))
	for i, m := range sorted {
		speedup := 0.0
		if m.Value > 0 {
			speedup = base.Value / m.Value
		}
		out[i] = Efficiency{
			P: m.P, Time: m.Value, Speedup: speedup,
			Efficiency: speedup / (m.P / base.P),
		}
	}
	return out
}

// RenderFigure14 renders the study result the way the paper's figure
// reads: the model string caption plus an ASCII plot of measurements
// (dots) and the model line.
func RenderFigure14(res *StudyResult) string {
	var b strings.Builder
	b.WriteString("CTS Extra-P Model\n")
	fmt.Fprintf(&b, "model: %s\n", res.Model)
	fmt.Fprintf(&b, "fit: adjusted R^2 = %.4f, SMAPE = %.2f%%\n\n", res.Model.RSquared, res.Model.SMAPE)
	b.WriteString(asciiPlot(res.Measurements, res.Model, 60, 16))
	return b.String()
}

// asciiPlot draws measurements (•) and the model line (─) on a small
// character grid.
func asciiPlot(data []extrap.Measurement, model *extrap.Model, w, h int) string {
	if len(data) == 0 {
		return ""
	}
	minP, maxP := data[0].P, data[0].P
	maxV := 0.0
	for _, d := range data {
		if d.P < minP {
			minP = d.P
		}
		if d.P > maxP {
			maxP = d.P
		}
		if d.Value > maxV {
			maxV = d.Value
		}
	}
	if mv := model.Eval(maxP); mv > maxV {
		maxV = mv
	}
	if maxV <= 0 || maxP <= minP {
		return ""
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	plot := func(p, v float64, ch byte) {
		x := int(float64(w-1) * (p - minP) / (maxP - minP))
		y := int(float64(h-1) * v / maxV)
		if x < 0 || x >= w || y < 0 || y >= h {
			return
		}
		row := h - 1 - y
		if ch == '*' || grid[row][x] == ' ' {
			grid[row][x] = ch
		}
	}
	for _, m := range model.Series(minP, maxP, w) {
		plot(m.P, m.Value, '-')
	}
	for _, d := range data {
		plot(d.P, d.Value, '*')
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%8.1f s ┤\n", maxV)
	for _, row := range grid {
		b.WriteString("           │" + string(row) + "\n")
	}
	fmt.Fprintf(&b, "           └%s\n", strings.Repeat("─", w))
	fmt.Fprintf(&b, "            %-10.0f %s %10.0f (nprocs)\n", minP, strings.Repeat(" ", w-22), maxP)
	return b.String()
}
