package core

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ci"
	"repro/internal/extrap"
	"repro/internal/hpcsim"
	"repro/internal/metricsdb"
	"repro/internal/ramble"
	"repro/internal/thicket"
)

func TestSystemConfigsGenerate(t *testing.T) {
	for _, name := range []string{"cts1", "ats2", "ats4", "cloud-c5n", "fugaku-a64fx"} {
		sys, err := hpcsim.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		files, err := SystemConfigs(sys)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, f := range []string{"compilers.yaml", "packages.yaml", "spack.yaml", "variables.yaml"} {
			if files[f] == "" {
				t.Errorf("%s: missing %s", name, f)
			}
		}
		if _, err := ConcretizerConfig(sys); err != nil {
			t.Errorf("%s: concretizer config: %v", name, err)
		}
	}
	// Scheduler-specific launchers (Figure 12 for slurm; jsrun on ats2).
	ats2, _ := hpcsim.Get("ats2")
	files, _ := SystemConfigs(ats2)
	if !strings.Contains(files["variables.yaml"], "jsrun") {
		t.Errorf("ats2 variables.yaml should use jsrun:\n%s", files["variables.yaml"])
	}
	cts, _ := hpcsim.Get("cts1")
	files, _ = SystemConfigs(cts)
	if !strings.Contains(files["variables.yaml"], "srun -N {n_nodes} -n {n_ranks}") {
		t.Errorf("cts1 variables.yaml should match Figure 12:\n%s", files["variables.yaml"])
	}
	if !strings.Contains(files["packages.yaml"], "buildable: false") {
		t.Errorf("packages.yaml should pin externals like Figure 4:\n%s", files["packages.yaml"])
	}
}

func TestTable1(t *testing.T) {
	rows := ComponentMatrix()
	if len(rows) != 6 {
		t.Fatalf("Table 1 has %d rows, want 6", len(rows))
	}
	wantNames := []string{"Source code", "Build instructions", "Benchmark input",
		"Run instructions", "Experiment evaluation", "CI testing"}
	for i, r := range rows {
		if r.Name != wantNames[i] {
			t.Errorf("row %d = %q, want %q", i+1, r.Name, wantNames[i])
		}
		pkgs, err := ImplementsComponent(r.Number)
		if err != nil || len(pkgs) == 0 {
			t.Errorf("component %d has no implementing packages", r.Number)
		}
	}
	tbl := ComponentTable()
	for _, want := range []string{"package.py", "application.py", "ramble.yaml: spack",
		"variables.yaml: scheduler, launcher", "Benchpark executable"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
	if _, err := ImplementsComponent(7); err == nil {
		t.Error("component 7 should not exist")
	}
}

// TestFigure1cQuickstart runs the full nine-step workflow: setup the
// saxpy suite on cts1, install software, run the 8 experiments of
// Figure 10 under the batch scheduler, analyze FOMs.
func TestFigure1cQuickstart(t *testing.T) {
	bp := New()
	sess, err := bp.Setup("saxpy/openmp", "cts1", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 8 {
		t.Fatalf("experiments = %d, want the Figure 10 matrix of 8", rep.Total)
	}
	if rep.Failed != 0 {
		for _, e := range rep.Experiments {
			if e.Status == ramble.Failed {
				t.Errorf("%s failed: %s", e.Name, e.FailMsg)
			}
		}
		t.Fatalf("%d experiments failed", rep.Failed)
	}
	// FOMs extracted per Figure 8.
	for _, e := range rep.Experiments {
		if e.FOMs["success"] != "Kernel done" {
			t.Errorf("%s: FOMs = %v", e.Name, e.FOMs)
		}
	}
	// Software was installed through Spack with the environment lockfile kept.
	lf, ok := sess.Lockfiles["saxpy"]
	if !ok {
		t.Fatal("saxpy environment lockfile missing")
	}
	names := strings.Join(lf.PackageNames(), ",")
	for _, want := range []string{"saxpy", "cmake", "mvapich2"} {
		if !strings.Contains(names, want) {
			t.Errorf("lockfile packages %s missing %s", names, want)
		}
	}
	// The installed saxpy spec targets the system's microarchitecture.
	s, err := sess.InstalledSpec("saxpy")
	if err != nil {
		t.Fatal(err)
	}
	if s.Target != "broadwell" {
		t.Errorf("saxpy target = %q", s.Target)
	}
	// Results landed in the metrics database with manifests.
	results := bp.Metrics.Query(metricsdb.Filter{Benchmark: "saxpy", System: "cts1"})
	if len(results) != 8 {
		t.Fatalf("metrics results = %d", len(results))
	}
	if !strings.Contains(results[0].Manifest, "system: cts1") {
		t.Errorf("manifest = %q", results[0].Manifest)
	}
	// Caliper profiles composed into the session thicket.
	if sess.Thicket.Len() != 8 {
		t.Errorf("thicket runs = %d", sess.Thicket.Len())
	}
	// Workspace directories materialized (Figure 1a).
	entries, err := os.ReadDir(filepath.Join(sess.Workspace.Root, "experiments", "saxpy", "problem"))
	if err != nil || len(entries) != 8 {
		t.Errorf("experiment dirs = %d, %v", len(entries), err)
	}
}

// TestSection4Matrix builds and runs both paper benchmarks on all
// three paper systems (the Section 4 demonstration).
func TestSection4Matrix(t *testing.T) {
	suiteFor := map[string]map[string]string{
		"cts1": {"saxpy": "saxpy/openmp", "amg2023": "amg2023/openmp"},
		"ats2": {"saxpy": "saxpy/cuda", "amg2023": "amg2023/cuda"},
		"ats4": {"saxpy": "saxpy/rocm", "amg2023": "amg2023/rocm"},
	}
	bp := New()
	for sysName, suites := range suiteFor {
		for benchName, suite := range suites {
			sess, err := bp.Setup(suite, sysName, t.TempDir())
			if err != nil {
				t.Fatalf("%s on %s: %v", suite, sysName, err)
			}
			rep, err := sess.RunAll()
			if err != nil {
				t.Fatalf("%s on %s: %v", suite, sysName, err)
			}
			if rep.Failed > 0 || rep.Total == 0 {
				t.Errorf("%s on %s: %d/%d failed", benchName, sysName, rep.Failed, rep.Total)
			}
		}
	}
	// All three systems appear in the shared metrics database.
	if got := bp.Metrics.Systems(); len(got) != 3 {
		t.Errorf("systems in metrics db = %v", got)
	}
}

func TestGPUVariantRejectedOnCPUSystem(t *testing.T) {
	bp := New()
	if _, err := bp.Setup("saxpy/cuda", "cts1", t.TempDir()); err == nil {
		t.Error("cuda suite on cts1 should fail")
	}
	if _, err := bp.Setup("saxpy/rocm", "ats2", t.TempDir()); err == nil {
		t.Error("rocm suite on ats2 (V100) should fail")
	}
}

func TestUnknownSuiteAndSystem(t *testing.T) {
	bp := New()
	if _, err := bp.Setup("nope/nope", "cts1", t.TempDir()); err == nil {
		t.Error("unknown suite should fail")
	}
	if _, err := bp.Setup("saxpy/openmp", "summit", t.TempDir()); err == nil {
		t.Error("unknown system should fail")
	}
	if len(ExperimentTemplates()) < 8 {
		t.Errorf("templates = %v", ExperimentTemplates())
	}
}

// TestFigure14 runs the MPI_Bcast scaling study (at reduced scales
// for test speed) and checks the Extra-P model shape: linear in p
// with positive slope, matching the paper's -0.6356 + 0.0466*p.
func TestFigure14(t *testing.T) {
	study, err := Figure14Study([]int{36, 72, 144, 288, 576})
	if err != nil {
		t.Fatal(err)
	}
	bp := New()
	res, err := study.Run(bp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.I != 1 || res.Model.J != 0 {
		t.Fatalf("model = %s; Figure 14 selects p^(1)", res.Model)
	}
	if res.Model.C1 <= 0 {
		t.Errorf("slope = %v, want positive", res.Model.C1)
	}
	// Slope within the paper's order of magnitude (0.0466 s/process).
	if res.Model.C1 < 0.005 || res.Model.C1 > 0.5 {
		t.Errorf("slope %v outside plausible band around 0.0466", res.Model.C1)
	}
	if math.IsNaN(res.Model.RSquared) || res.Model.RSquared < 0.95 {
		t.Errorf("fit quality R² = %v", res.Model.RSquared)
	}
	// Rendering includes the model caption and plot.
	txt := RenderFigure14(res)
	for _, want := range []string{"CTS Extra-P Model", "p^(1)", "*"} {
		if !strings.Contains(txt, want) {
			t.Errorf("render missing %q:\n%s", want, txt)
		}
	}
	// Measurements recorded in the metrics database.
	if got := bp.Metrics.Query(metricsdb.Filter{Workload: "osu_bcast"}); len(got) != 5 {
		t.Errorf("recorded points = %d", len(got))
	}
}

func TestScalingStudyValidation(t *testing.T) {
	cts, _ := hpcsim.Get("cts1")
	st := &ScalingStudy{System: cts, Benchmark: "osu-micro-benchmarks",
		Workload: "osu_bcast", FOM: "total_time", Scales: []int{2, 4}}
	if _, err := st.Run(New()); err == nil {
		t.Error("2 scales should fail")
	}
	st2 := &ScalingStudy{System: cts, Benchmark: "nope", Workload: "x",
		FOM: "t", Scales: []int{2, 4, 8}}
	if _, err := st2.Run(New()); err == nil {
		t.Error("unknown benchmark should fail")
	}
}

// TestFigure6Automation drives the full automation loop with real
// benchmark execution inside the CI jobs.
func TestFigure6Automation(t *testing.T) {
	bp := New()
	auto, err := NewAutomation(bp, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res, err := auto.SubmitContribution("jens", "add RIKEN results",
		map[string]string{"docs/riken.md": "notes"}, "olga")
	if err != nil {
		t.Fatal(err)
	}
	if res.Pipeline.Status() != ci.JobSuccess {
		for _, j := range res.Pipeline.Jobs {
			t.Logf("job %s: %s\n%s", j.Name, j.Status, j.Log)
		}
		t.Fatalf("pipeline = %v", res.Pipeline.Status())
	}
	if res.PR.State != ci.PRMerged {
		t.Errorf("PR state = %v", res.PR.State)
	}
	// The CI run produced metrics from both sites' runners.
	if len(res.Results) == 0 {
		t.Error("no benchmark results recorded by CI")
	}
	systems := map[string]bool{}
	for _, r := range res.Results {
		systems[r.System] = true
	}
	if !systems["cts1"] || !systems["cloud-c5n"] {
		t.Errorf("CI systems = %v, want cts1 and cloud-c5n", systems)
	}
	// Jacamar attributed the jobs: jens has no LLNL/AWS account, so
	// jobs ran as the approver.
	for _, entry := range auto.GitLab.Audit() {
		if entry.RunAs != "olga" {
			t.Errorf("audit: job %s ran as %q", entry.Job, entry.RunAs)
		}
	}
}

// TestSection71CloudIncident reproduces the Section 7.1 story through
// the system models: same binary, on-prem OK, cloud crash, diagnosis
// via archspec.
func TestSection71CloudIncident(t *testing.T) {
	onprem, _ := hpcsim.Get("onprem-icelake")
	cloud, _ := hpcsim.Get("cloud-m6i")
	m, err := onprem.Microarch()
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := onprem.CanRunBinary(m.Name); !ok {
		t.Fatal("binary must run on premise")
	}
	ok, reason := cloud.CanRunBinary(m.Name)
	if ok {
		t.Fatal("binary must crash on the cloud twin")
	}
	if !strings.Contains(reason, "SIGILL") {
		t.Errorf("reason = %q", reason)
	}
}

func TestAMGStrongScaling(t *testing.T) {
	cts, _ := hpcsim.Get("cts1")
	study, err := AMGStrongScalingStudy(cts, 16, 16, 64, []int{2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	bp := New()
	res, err := study.Run(bp)
	if err != nil {
		t.Fatal(err)
	}
	// Strong scaling: solve time should DECREASE (or at least not grow)
	// as ranks increase — the per-rank grid shrinks.
	first := res.Measurements[0].Value
	last := res.Measurements[len(res.Measurements)-1].Value
	if last >= first {
		t.Errorf("strong scaling broken: t(%v)=%v >= t(%v)=%v",
			res.Measurements[len(res.Measurements)-1].P, last, res.Measurements[0].P, first)
	}
	// Invalid decomposition rejected.
	if _, err := AMGStrongScalingStudy(cts, 16, 16, 64, []int{3}); err == nil {
		t.Error("non-dividing scale should fail")
	}
	if _, err := AMGStrongScalingStudy(cts, 16, 16, 64, []int{64}); err == nil {
		t.Error("1-plane slabs should fail")
	}
}

func TestResultsArtifactWritten(t *testing.T) {
	bp := New()
	dir := t.TempDir()
	sess, err := bp.Setup("saxpy/openmp", "cts1", dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RunAll(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "logs", "results.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["system"] != "cts1" || doc["passed"].(float64) != 8 {
		t.Errorf("artifact = %v", doc)
	}
	results := doc["results"].([]any)
	first := results[0].(map[string]any)
	if first["manifest"] == "" || first["status"] != "succeeded" {
		t.Errorf("first result = %v", first)
	}
}

// TestRunAllBatched: the whole experiment matrix is scheduled as one
// batch; concurrent jobs shrink the queue makespan versus serial
// execution, and results match the serial path.
func TestRunAllBatched(t *testing.T) {
	bp := New()
	sess, err := bp.Setup("saxpy/openmp", "cts1", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.RunAllBatched()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 8 || rep.Failed != 0 {
		t.Fatalf("batched: %d/%d failed", rep.Failed, rep.Total)
	}
	// All jobs completed through the scheduler, concurrently where
	// possible: with 8 jobs of 1-2 nodes on a 1200-node machine, the
	// makespan equals the slowest job, not the sum.
	jobs := sess.Scheduler.Completed()
	if len(jobs) != 8 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	var slowest, sum float64
	for _, j := range jobs {
		d := j.EndTime - j.StartTime
		sum += d
		if d > slowest {
			slowest = d
		}
		if j.StartTime != 0 {
			t.Errorf("job %s queued until %v; all should start immediately", j.Name, j.StartTime)
		}
	}
	if got := sess.Scheduler.Makespan(); got > slowest*1.0001 {
		t.Errorf("makespan %v should equal slowest job %v (concurrent)", got, slowest)
	}
	// FOMs match the serial path.
	sess2, err := bp.Setup("saxpy/openmp", "cts1", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := sess2.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	fomsByName := map[string]string{}
	for _, e := range rep2.Experiments {
		fomsByName[e.Name] = e.FOMs["saxpy_time"]
	}
	for _, e := range rep.Experiments {
		if e.FOMs["saxpy_time"] != fomsByName[e.Name] {
			t.Errorf("%s: batched %q != serial %q", e.Name, e.FOMs["saxpy_time"], fomsByName[e.Name])
		}
	}
}

// TestRunAllBatchedLSFandFlux: the #BSUB and #flux: script dialects
// drive the scheduler on ats2 and ats4.
func TestRunAllBatchedDialects(t *testing.T) {
	bp := New()
	for _, sysName := range []string{"ats2", "ats4"} {
		suite := map[string]string{"ats2": "saxpy/cuda", "ats4": "saxpy/rocm"}[sysName]
		sess, err := bp.Setup(suite, sysName, t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sess.RunAllBatched()
		if err != nil {
			t.Fatalf("%s: %v", sysName, err)
		}
		if rep.Failed > 0 {
			t.Errorf("%s: %d failed", sysName, rep.Failed)
		}
		// Node counts parsed from the dialect directives (1 and 2 nodes).
		seen := map[int]bool{}
		for _, j := range sess.Scheduler.Completed() {
			seen[j.Nodes] = true
		}
		if !seen[1] || !seen[2] {
			t.Errorf("%s: node widths parsed = %v", sysName, seen)
		}
	}
}

// TestFailurePropagatesThroughStack: an injected node fault fails the
// benchmark, the batch job, the experiment, and keeps the result out
// of the metrics database.
func TestFailurePropagatesThroughStack(t *testing.T) {
	bp := New()
	sess, err := bp.Setup("saxpy/openmp", "cts1", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Workspace.Setup(sess.InstallSoftware); err != nil {
		t.Fatal(err)
	}
	// Inject the fault into every experiment.
	for _, e := range sess.Workspace.Experiments {
		e.Vars["inject_failure"] = "0"
	}
	if err := sess.Workspace.On(func(e *ramble.Experiment) (string, float64, error) {
		return sess.Executor(e)
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Workspace.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != rep.Total {
		t.Fatalf("failures = %d/%d", rep.Failed, rep.Total)
	}
	for _, e := range rep.Experiments {
		if !strings.Contains(e.FailMsg, "SIGBUS") {
			t.Errorf("%s: failmsg = %q", e.Name, e.FailMsg)
		}
	}
	if bp.Metrics.Len() != 0 {
		t.Errorf("failed runs must not produce metrics, got %d", bp.Metrics.Len())
	}
}

// TestSuiteOnProvisionedCloudCluster: cloud as "another platform"
// (Section 7.2) — a freshly provisioned cluster runs the standard
// suite by name, with software concretized for its detected target.
func TestSuiteOnProvisionedCloudCluster(t *testing.T) {
	if _, err := hpcsim.ProvisionCloudCluster("test-burst", "hpc7g.16xlarge", 32); err != nil {
		t.Fatal(err)
	}
	bp := New()
	sess, err := bp.Setup("saxpy/openmp", "test-burst", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed > 0 {
		t.Fatalf("%d failed on the provisioned cluster", rep.Failed)
	}
	s, err := sess.InstalledSpec("saxpy")
	if err != nil {
		t.Fatal(err)
	}
	if s.Target != "neoverse_v1" {
		t.Errorf("saxpy target = %q, want the Graviton target", s.Target)
	}
}

func TestGenerateReport(t *testing.T) {
	var buf strings.Builder
	if err := GenerateReport(&buf, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Benchpark reproduction report",
		"Table 1", "Figure 14", "Section 4",
		"p^(1)", "MATCH",
		"A1 unified concretization",
		"A2 binary cache",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "MISMATCH") {
		t.Error("Figure 14 model family mismatched")
	}
}

func TestParallelEfficiency(t *testing.T) {
	// Ideal strong scaling: time halves as p doubles.
	data := []extrap.Measurement{
		{P: 2, Value: 8}, {P: 4, Value: 4}, {P: 8, Value: 2}, {P: 16, Value: 1.25},
	}
	rows := ParallelEfficiency(data)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Speedup != 1 || rows[0].Efficiency != 1 {
		t.Errorf("baseline row = %+v", rows[0])
	}
	if rows[2].Speedup != 4 || math.Abs(rows[2].Efficiency-1) > 1e-9 {
		t.Errorf("ideal row = %+v", rows[2])
	}
	// The 16-rank point lost efficiency (1.25 > 1.0 ideal).
	if rows[3].Efficiency >= 1 {
		t.Errorf("degraded row = %+v", rows[3])
	}
	if ParallelEfficiency(nil) != nil {
		t.Error("empty input")
	}
}

// TestNightlyContinuousRuns: repeated nightly pipelines build the
// time series that Section 1's in-service tracking needs; the series
// is reproducible night over night.
func TestNightlyContinuousRuns(t *testing.T) {
	bp := New()
	auto, err := NewAutomation(bp, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for night := 0; night < 2; night++ {
		p, err := auto.RunNightly()
		if err != nil {
			t.Fatal(err)
		}
		if p.Status() != ci.JobSuccess {
			for _, j := range p.Jobs {
				t.Logf("%s: %s\n%s", j.Name, j.Status, j.Log)
			}
			t.Fatalf("night %d pipeline: %v", night, p.Status())
		}
		if p.TriggeredBy != "benchpark-bot" {
			t.Errorf("triggered by %q", p.TriggeredBy)
		}
	}
	// Two nights × 2 site jobs × 8 experiments.
	series := bp.Metrics.Series(metricsdb.Filter{
		Benchmark: "saxpy", System: "cts1", Experiment: "saxpy_openmp_512_1_8_2",
	}, "saxpy_time")
	if len(series) != 2 {
		t.Fatalf("series = %v", series)
	}
	if series[0].Value != series[1].Value {
		t.Error("nightly series not reproducible")
	}
	// Regression detection is per-experiment (mixing the matrix's
	// different problem sizes in one series would be meaningless).
	regs := bp.Metrics.DetectRegressions(metricsdb.Filter{
		Benchmark: "saxpy", System: "cts1", Experiment: "saxpy_openmp_512_1_8_2",
	}, "saxpy_time", 4, 1.2)
	if len(regs) != 0 {
		t.Errorf("healthy nights flagged: %v", regs)
	}
}

// TestCaliFilesWritten: every experiment leaves a loadable .cali
// profile next to its output, and Thicket can ingest it.
func TestCaliFilesWritten(t *testing.T) {
	bp := New()
	sess, err := bp.Setup("saxpy/openmp", "cts1", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	e := rep.Experiments[0]
	data, err := os.ReadFile(filepath.Join(e.Dir, e.Name+".cali"))
	if err != nil {
		t.Fatalf("cali file: %v", err)
	}
	th := thicket.New()
	if err := th.AddFromJSON(string(data), "cluster=cts1"); err != nil {
		t.Fatal(err)
	}
	if th.RegionStats("main/saxpy_kernel").N == 0 {
		t.Errorf("regions = %v", th.Regions())
	}
}

// TestAMGCubeSuite: the 3-D decomposition flows through the whole
// Benchpark stack (ramble vars → bench kernel → FOMs).
func TestAMGCubeSuite(t *testing.T) {
	bp := New()
	sess, err := bp.Setup("amg2023/cube", "cts1", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 1 || rep.Failed != 0 {
		t.Fatalf("cube suite: %d/%d failed", rep.Failed, rep.Total)
	}
	e := rep.Experiments[0]
	if e.Name != "amg2023_cube_2x2x2" {
		t.Errorf("name = %q", e.Name)
	}
	if !strings.Contains(e.Output, "(P 2x2x2)") {
		t.Errorf("decomposition not threaded through:\n%s", e.Output)
	}
	if e.NRanks != 8 {
		t.Errorf("ranks = %d", e.NRanks)
	}
}
