package core

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/ci"
	"repro/internal/metricsdb"
	"repro/internal/resultsd"
	"repro/internal/resultstore"
	"repro/internal/telemetry"
)

// startResultsd spins up the full federation stack in-process: a
// durable store on a temp dir behind a real HTTP server.
func startResultsd(t *testing.T) (*resultstore.Store, *httptest.Server) {
	t.Helper()
	store, err := resultstore.Open(t.TempDir(), resultstore.Options{
		Clock:               telemetry.FixedClock{T: time.Unix(1700000000, 0)},
		NoBackgroundCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	ts := httptest.NewServer(resultsd.New(store, telemetry.New(telemetry.FixedClock{T: time.Unix(1700000000, 0)})).Handler())
	t.Cleanup(ts.Close)
	return store, ts
}

// TestPipelinePushesToResultsd is the end-to-end acceptance path for
// the federation service: nightly CI pipelines run real benchmark
// sessions and push every job's engine report over HTTP into the
// results service, where the series and regression scans are then
// observable through the query API — the complete Figure 6 loop with
// the shared metrics database as an actual network service.
func TestPipelinePushesToResultsd(t *testing.T) {
	store, ts := startResultsd(t)
	bp := New()
	auto, err := NewAutomation(bp, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	auto.Results = resultsd.NewClient(ts.URL)

	for night := 0; night < 2; night++ {
		p, err := auto.RunNightlyContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if p.Status() != ci.JobSuccess {
			for _, j := range p.Jobs {
				t.Logf("%s: %s\n%s", j.Name, j.Status, j.Log)
			}
			t.Fatalf("night %d pipeline: %v", night, p.Status())
		}
	}

	client := resultsd.NewClient(ts.URL)
	ctx := context.Background()
	// Both sites' runners pushed: the server knows both systems.
	systems, err := client.Systems(ctx)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, s := range systems {
		seen[s] = true
	}
	if !seen["cts1"] || !seen["cloud-c5n"] {
		t.Fatalf("server systems = %v, want cts1 and cloud-c5n", systems)
	}
	// One sample per night accrued for a fixed experiment, even though
	// the deterministic benchmark produced identical content both
	// nights — the push-sequence component of the ingest key keeps
	// nightly batches distinct.
	pts, err := client.Series(ctx, metricsdb.Filter{
		Benchmark: "saxpy", System: "cts1", Experiment: "saxpy_openmp_512_1_8_2",
	}, "saxpy_time")
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("nightly series has %d points, want 2: %+v", len(pts), pts)
	}
	if pts[0].Value != pts[1].Value {
		t.Errorf("deterministic benchmark pushed differing values: %+v", pts)
	}
	// The job logs show the push happened inside the CI job.
	audit := auto.GitLab.Audit()
	if len(audit) == 0 {
		t.Fatal("no CI jobs ran")
	}
	// Everything the store holds arrived via the WAL: reopenability is
	// covered by resultstore's own tests, here we just sanity-check
	// the store saw all pushes (2 nights x 2 jobs x 8 experiments).
	if store.Len() != 32 {
		t.Fatalf("store holds %d results, want 32", store.Len())
	}
}

// TestPipelineTraceProvenanceEndToEnd runs the whole federation loop
// under distributed tracing: a traced nightly pipeline pushes its
// results into a resultsd with its OWN tracer on a different epoch,
// and afterwards (a) the pipeline's trace ID is queryable as the
// provenance of every stored point, and (b) the runner and server
// snapshots merge into one trace that is byte-identical across two
// identical runs — the CI-scale version of resultsd's
// TestMergedTraceByteIdentical.
func TestPipelineTraceProvenanceEndToEnd(t *testing.T) {
	run := func() (pipelineTraceID string, pts []resultsd.SeriesPoint, merged string) {
		store, err := resultstore.Open(t.TempDir(), resultstore.Options{
			Clock:               telemetry.FixedClock{T: time.Unix(1800000000, 0)},
			NoBackgroundCompact: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Close() })
		srvTracer := telemetry.New(telemetry.FixedClock{T: time.Unix(1800000000, 0)})
		ts := httptest.NewServer(resultsd.New(store, srvTracer).Handler())
		defer ts.Close()

		bp := New()
		auto, err := NewAutomation(bp, t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		auto.Results = resultsd.NewClient(ts.URL)

		runner := telemetry.New(telemetry.FixedClock{T: time.Unix(1700000000, 0)})
		ctx := telemetry.WithTracer(context.Background(), runner)
		p, err := auto.RunNightlyContext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if p.Status() != ci.JobSuccess {
			t.Fatalf("pipeline: %v", p.Status())
		}
		if p.TraceID != runner.TraceID() {
			t.Fatalf("pipeline trace ID %q, want the runner tracer's %q", p.TraceID, runner.TraceID())
		}

		client := resultsd.NewClient(ts.URL)
		pts, err = client.Series(context.Background(), metricsdb.Filter{
			Benchmark: "saxpy", System: "cts1", Experiment: "saxpy_openmp_512_1_8_2",
		}, "saxpy_time")
		if err != nil {
			t.Fatal(err)
		}
		mt, err := telemetry.MergeTraces(runner.Snapshot(), srvTracer.Snapshot()).JSON()
		if err != nil {
			t.Fatal(err)
		}
		return p.TraceID, pts, mt
	}

	id1, pts1, merged1 := run()
	id2, _, merged2 := run()
	if id1 != id2 {
		t.Fatalf("pipeline trace IDs differ across identical runs: %q vs %q", id1, id2)
	}
	if len(pts1) == 0 {
		t.Fatal("no stored points")
	}
	for i, p := range pts1 {
		if p.TraceID != id1 {
			t.Fatalf("point %d provenance %q, want pipeline trace %q", i, p.TraceID, id1)
		}
	}
	if merged1 != merged2 {
		t.Fatalf("merged traces differ across identical runs:\n--- run 1\n%.2000s\n--- run 2\n%.2000s", merged1, merged2)
	}
}

// TestResultsdObservesInjectedRegression pushes a crafted slowdown
// into the service next to healthy CI data and observes it through
// GET /v1/regressions — the regression-tracking workflow of Section 1
// running over the network API.
func TestResultsdObservesInjectedRegression(t *testing.T) {
	_, ts := startResultsd(t)
	client := resultsd.NewClient(ts.URL)
	ctx := context.Background()
	// A synthetic nightly history: stable, then a 2x slowdown.
	for i, v := range []float64{1.0, 1.01, 0.99, 1.02, 2.05} {
		_, err := client.Push(ctx, fmt.Sprintf("synthetic-%d", i), []metricsdb.Result{{
			Benchmark:  "lulesh",
			Workload:   "problem",
			System:     "cts1",
			Experiment: "lulesh_p30",
			FOMs:       map[string]float64{"fom": v},
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	regs, err := client.Regressions(ctx, metricsdb.Filter{
		Benchmark: "lulesh", System: "cts1",
	}, "fom", 4, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly the injected spike", regs)
	}
	if regs[0].Value != 2.05 || regs[0].Ratio < 1.9 {
		t.Fatalf("flagged sample = %+v", regs[0])
	}
}

// TestPushResultsIdempotency: a retried push with the same ingest key
// is acknowledged as a duplicate and does not double-store.
func TestPushResultsIdempotency(t *testing.T) {
	store, ts := startResultsd(t)
	client := resultsd.NewClient(ts.URL)
	ctx := context.Background()
	batch := []metricsdb.Result{{
		Benchmark: "saxpy", System: "cts1", Experiment: "e1",
		FOMs: map[string]float64{"saxpy_time": 1.0},
	}}
	first, err := client.Push(ctx, "retry-key", batch)
	if err != nil {
		t.Fatal(err)
	}
	second, err := client.Push(ctx, "retry-key", batch)
	if err != nil {
		t.Fatal(err)
	}
	if first.Duplicate || !second.Duplicate {
		t.Fatalf("first=%+v second=%+v", first, second)
	}
	if store.Len() != 1 {
		t.Fatalf("store holds %d results, want 1", store.Len())
	}
}

// TestPushFailureFailsJob: when the results endpoint is down, the CI
// job fails — a run whose results never reached the shared store did
// not complete its continuous-benchmarking duty.
func TestPushFailureFailsJob(t *testing.T) {
	bp := New()
	auto, err := NewAutomation(bp, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dead := httptest.NewServer(nil)
	dead.Close()
	c := resultsd.NewClient(dead.URL)
	c.MaxRetries = 1
	c.RetryBackoff = time.Millisecond
	auto.Results = c
	p, err := auto.RunNightlyContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if p.Status() != ci.JobFailed {
		t.Fatalf("pipeline with unreachable results service: %v, want failed", p.Status())
	}
}

// TestIngestKeyDerivation pins the shape and determinism of CI ingest
// keys: same inputs, same key; any component changing changes it.
func TestIngestKeyDerivation(t *testing.T) {
	rs := []metricsdb.Result{{Benchmark: "b", System: "s", FOMs: map[string]float64{"t": 1}}}
	k1, err := ingestKey("bench-cts1", "saxpy@cts1", 1, rs)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := ingestKey("bench-cts1", "saxpy@cts1", 1, rs)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("same inputs gave %q and %q", k1, k2)
	}
	k3, err := ingestKey("bench-cts1", "saxpy@cts1", 2, rs)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k3 {
		t.Fatal("different push sequences must give different keys")
	}
}
