package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/telemetry"
)

// TestSessionTraceReconcilesAndIsByteIdentical runs the same real
// matrix twice with an 8-worker pool under a FixedClock tracer: the
// execute span count must equal the engine report's Executed, and the
// exported trace JSON must be byte-identical across the runs —
// telemetry must not reintroduce interleaving-dependent output.
func TestSessionTraceReconcilesAndIsByteIdentical(t *testing.T) {
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	runOnce := func() (string, *engine.Report) {
		t.Helper()
		bp := New()
		tr := telemetry.New(telemetry.FixedClock{T: epoch})
		bp.Cache.Instrument(tr.Metrics())
		ctx := telemetry.WithTracer(context.Background(), tr)
		sess, err := bp.Setup("saxpy/openmp", "cts1", t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		_, erep, err := sess.Run(ctx, RunOptions{Jobs: 8})
		if err != nil {
			t.Fatal(err)
		}
		src, err := tr.Snapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return src, erep
	}

	first, erep := runOnce()
	second, _ := runOnce()
	if first != second {
		t.Errorf("trace JSON differs across identical runs:\n--- first ---\n%s\n--- second ---\n%s",
			first, second)
	}

	trace, err := telemetry.ParseTrace(first)
	if err != nil {
		t.Fatal(err)
	}
	execSpans, commitSpans := 0, 0
	sawSession, sawEnv, sawInstall := false, false, false
	for _, s := range trace.Spans {
		parts := strings.Split(s.Path, "/")
		switch {
		case s.Path == "session":
			sawSession = true
		case len(parts) > 1 && strings.HasPrefix(parts[len(parts)-1], "env:"):
			sawEnv = true
		case strings.HasPrefix(parts[len(parts)-1], "install:"):
			sawInstall = true
		}
		if len(parts) >= 2 {
			switch parts[len(parts)-2] {
			case "execute":
				execSpans++
			case "commit":
				commitSpans++
			}
		}
	}
	if execSpans != erep.Executed {
		t.Errorf("execute spans = %d, want Executed = %d", execSpans, erep.Executed)
	}
	if commitSpans != erep.Executed {
		t.Errorf("commit spans = %d, want %d", commitSpans, erep.Executed)
	}
	if !sawSession || !sawEnv || !sawInstall {
		t.Errorf("missing expected spans: session=%v env=%v install=%v", sawSession, sawEnv, sawInstall)
	}

	// The instrumented build cache mirrored its statistics.
	if _, ok := trace.Metrics.Counters["buildcache_misses_total"]; !ok {
		t.Errorf("buildcache counters missing from trace metrics: %v", trace.Metrics.Counters)
	}
	// The installer recorded cache effectiveness.
	if _, ok := trace.Metrics.Counters["install_cache_misses_total"]; !ok {
		t.Errorf("install cache counters missing: %v", trace.Metrics.Counters)
	}
}

// TestExperimentFailuresErrorCarriesReport pins the typed-error
// contract: the error formats like the old string and exposes the
// engine's partial report through errors.As.
func TestExperimentFailuresErrorCarriesReport(t *testing.T) {
	rep := &engine.Report{Label: "x@y", Total: 5, Executed: 5, Failed: 2}
	var err error = &ExperimentFailuresError{Report: rep}
	if err.Error() != "2 experiments failed" {
		t.Fatalf("Error() = %q", err.Error())
	}
	var fe *ExperimentFailuresError
	if !errors.As(err, &fe) {
		t.Fatal("errors.As failed")
	}
	if fe.Report.Executed != 5 || fe.Report.Failed != 2 {
		t.Fatalf("report lost: %+v", fe.Report)
	}
}

// TestJobExecutorLogIsStructured checks the CI job log is slog text
// without timestamps (deterministic) and that a nightly pipeline run
// traced under a FixedClock records pipeline and job spans.
func TestJobExecutorLogIsStructured(t *testing.T) {
	bp := New()
	auto, err := NewAutomation(bp, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tr := telemetry.New(telemetry.FixedClock{T: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)})
	ctx := telemetry.WithTracer(context.Background(), tr)
	p, err := auto.RunNightlyContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range p.Jobs {
		if j.Log == "" {
			t.Fatalf("job %s has no log", j.Name)
		}
		if strings.Contains(j.Log, "time=") {
			t.Errorf("job %s log carries timestamps (nondeterministic):\n%s", j.Name, j.Log)
		}
		if !strings.Contains(j.Log, "msg=") || !strings.Contains(j.Log, "job="+j.Name) {
			t.Errorf("job %s log is not structured slog text:\n%s", j.Name, j.Log)
		}
		if !strings.Contains(j.Log, "span=pipeline/job:"+j.Name) {
			t.Errorf("job %s log records are missing the span ID:\n%s", j.Name, j.Log)
		}
	}
	trace := tr.Snapshot()
	pipelines, jobSpans := 0, 0
	for _, s := range trace.Spans {
		if s.Path == "pipeline" {
			pipelines++
		}
		if strings.HasPrefix(s.Path, "pipeline/job:") && strings.Count(s.Path, "/") == 1 {
			jobSpans++
		}
	}
	if pipelines != 1 {
		t.Errorf("pipeline spans = %d, want 1", pipelines)
	}
	if jobSpans != len(p.Jobs) {
		t.Errorf("job spans = %d, want %d", jobSpans, len(p.Jobs))
	}
}
