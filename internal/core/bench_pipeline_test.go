package core

import (
	"context"
	"testing"

	"repro/internal/cachekey"
)

// benchSession runs one full saxpy/openmp session on cts1 against an
// optional shared store and returns the engine report's hit count.
func benchSession(b *testing.B, st *cachekey.Store) int {
	b.Helper()
	bp := New()
	bp.UseCache(st)
	sess, err := bp.Setup("saxpy/openmp", "cts1", b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	_, erep, err := sess.Run(context.Background(), RunOptions{Jobs: 4})
	if err != nil {
		b.Fatal(err)
	}
	if erep.Failed != 0 {
		b.Fatalf("%d experiments failed", erep.Failed)
	}
	return erep.CacheHits
}

// BenchmarkSessionColdRun is the full cold pipeline — concretize,
// install, execute every experiment, analyze — with no durable cache.
func BenchmarkSessionColdRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSession(b, nil)
	}
}

// BenchmarkSessionWarmRun is the same session over a primed shared
// store: concretization, binaries, and every experiment outcome
// replay from the cache. The BENCH_pipeline.json baseline records the
// warm-vs-cold ratio from this pair.
func BenchmarkSessionWarmRun(b *testing.B) {
	st, err := cachekey.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	benchSession(b, st) // prime
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hits := benchSession(b, st); hits == 0 {
			b.Fatal("warm iteration replayed nothing")
		}
	}
}
