package core

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/adiak"
	"repro/internal/bench"
	"repro/internal/buildcache"
	"repro/internal/cachekey"
	"repro/internal/concretizer"
	"repro/internal/engine"
	"repro/internal/env"
	"repro/internal/hpcsim"
	"repro/internal/install"
	"repro/internal/metricsdb"
	"repro/internal/pkgrepo"
	"repro/internal/ramble"
	"repro/internal/scheduler"
	"repro/internal/spec"
	"repro/internal/telemetry"
	"repro/internal/thicket"
)

// Benchpark is the shared state of a continuous-benchmarking
// deployment: the package repository, the community binary cache, the
// metrics database results stream into, and the incremental-pipeline
// caches (concretization memo, durable content-addressed store).
type Benchpark struct {
	Repo    *pkgrepo.Repo
	Cache   *buildcache.Cache
	Metrics *metricsdb.DB

	// Memo caches concretization results across the deployment's
	// sessions (the "concretize" layer); always on — a memo hit is
	// pinned byte-identical to a fresh solve.
	Memo *concretizer.Memo
	// Store is the durable content-addressed store every cache layer
	// persists through (UseCache); nil keeps all caching in-memory.
	Store *cachekey.Store
}

// New returns a Benchpark instance over the builtin package repo.
func New() *Benchpark {
	return &Benchpark{
		Repo:    pkgrepo.Builtin(),
		Cache:   buildcache.New(),
		Metrics: metricsdb.New(),
		Memo:    concretizer.NewMemo(),
	}
}

// Session is one "benchpark $experiment $system $workspace"
// invocation: a generated workspace bound to a system, with its own
// concretizer, installer, and batch scheduler (Figure 1c steps 2-4).
type Session struct {
	Benchpark *Benchpark
	System    *hpcsim.System
	Suite     string
	Config    *concretizer.Config
	Installer *install.Installer
	Workspace *ramble.Workspace
	Scheduler *scheduler.Scheduler
	Thicket   *thicket.Thicket
	Lockfiles map[string]*env.Lockfile // software env name -> lockfile
}

// Setup implements Figure 1c steps 1-4: create the workspace, write
// the system configs, instantiate Spack and Ramble, and generate the
// workspace configuration from the experiment suite template.
func (bp *Benchpark) Setup(suite, systemName, workspaceDir string) (*Session, error) {
	sys, err := hpcsim.Get(systemName)
	if err != nil {
		return nil, err
	}
	gen, ok := experimentSuites[suite]
	if !ok {
		return nil, fmt.Errorf("benchpark: unknown experiment suite %q (have %v)",
			suite, ExperimentTemplates())
	}
	rambleYAML, err := gen(sys)
	if err != nil {
		return nil, err
	}

	cfg, err := ConcretizerConfig(sys)
	if err != nil {
		return nil, err
	}
	inst := install.New(bp.Repo)
	inst.Cache = bp.Cache
	inst.PushToCache = true

	ws, err := ramble.NewWorkspace(suite+"@"+systemName, workspaceDir)
	if err != nil {
		return nil, err
	}
	files, err := SystemConfigs(sys)
	if err != nil {
		return nil, err
	}
	for name, content := range files {
		if err := ws.WriteConfig(name, content); err != nil {
			return nil, err
		}
	}
	if err := ws.Configure(rambleYAML); err != nil {
		return nil, err
	}

	s := &Session{
		Benchpark: bp,
		System:    sys,
		Suite:     suite,
		Config:    cfg,
		Installer: inst,
		Workspace: ws,
		Scheduler: scheduler.New(sys),
		Thicket:   thicket.New(),
		Lockfiles: map[string]*env.Lockfile{},
	}
	return s, nil
}

// installSoftwareContext is the Ramble→Spack hook (Figure 1c step 6):
// each named environment concretizes together and installs, keeping
// the lockfile for provenance, with cancellation propagated through
// the install engine's worker pool.
func (s *Session) installSoftwareContext(ctx context.Context, envName string, specs []string) (err error) {
	ctx, span := telemetry.StartSpan(ctx, "env:"+envName)
	span.SetInt("specs", len(specs))
	defer span.End()
	defer func() { span.SetError(err) }()
	e := env.New(envName)
	for _, str := range specs {
		if err := e.Add(str); err != nil {
			return err
		}
	}
	// --reuse: anything already installed in this session is a
	// concretization candidate for later environments.
	var reuse []*spec.Spec
	for _, rec := range s.Installer.DB.Find(spec.New("")) {
		reuse = append(reuse, rec.Spec)
	}
	s.Config.ReuseInstalled = reuse
	c := concretizer.New(s.Benchpark.Repo, s.Config)
	c.Memo = s.Benchpark.Memo
	if err := e.Concretize(c); err != nil {
		return err
	}
	if _, err := e.InstallContext(ctx, s.Installer); err != nil {
		return err
	}
	lf, err := e.Lock()
	if err != nil {
		return err
	}
	s.Lockfiles[envName] = lf
	return nil
}

// executor turns a generated experiment into a batch job running the
// actual benchmark kernel on the simulated system (steps 7-8).
func (s *Session) executor(e *ramble.Experiment) (string, float64, error) {
	b, err := bench.Get(e.App.Name)
	if err != nil {
		return "", 0, err
	}
	params := bench.Params{
		System:       s.System,
		Ranks:        e.NRanks,
		RanksPerNode: e.ProcsPerNode,
		Threads:      e.NThreads,
		Variant:      rawVar(e, "variant"),
		Vars:         expandedVars(e),
	}
	var out *bench.Output
	limitMin := 60.0
	if t, err := e.Expander.Expand("{batch_time}"); err == nil {
		fmt.Sscanf(t, "%f", &limitMin) //nolint:errcheck
	}
	job, err := s.Scheduler.Submit(e.Name, e.NNodes, limitMin*60, func() (float64, error) {
		var rerr error
		out, rerr = b.Run(params)
		if rerr != nil {
			return 0, rerr
		}
		return out.Elapsed, nil
	})
	if err != nil {
		return "", 0, err
	}
	if err := s.Scheduler.Drain(); err != nil {
		return "", 0, err
	}
	switch job.State {
	case scheduler.Completed:
	case scheduler.TimedOut:
		return "", 0, job.Err
	default:
		return "", 0, job.Err
	}

	// Feed the analysis stack: Caliper profile + Adiak metadata into
	// the session thicket, FOMs + manifest into the metrics database;
	// persist the profile next to the experiment output (the .cali
	// file always-on profiling leaves behind, Section 5).
	md := out.Metadata
	md.Setf("experiment", "%s", e.Name)
	md.Setf("nprocs", "%d", e.NRanks)
	s.Thicket.Add(out.Profile, md)
	if cali, err := out.Profile.JSON(); err == nil {
		_ = os.WriteFile(filepath.Join(e.Dir, e.Name+".cali"), []byte(cali), 0o644)
	}
	return out.Text, out.Elapsed, nil
}

// NewSessionForWorkspace binds an already-configured workspace (e.g.
// one reopened from disk by the ramble CLI) to a system, giving it a
// fresh concretizer, installer and scheduler.
func NewSessionForWorkspace(bp *Benchpark, sys *hpcsim.System, ws *ramble.Workspace) (*Session, error) {
	cfg, err := ConcretizerConfig(sys)
	if err != nil {
		return nil, err
	}
	inst := install.New(bp.Repo)
	inst.Cache = bp.Cache
	inst.PushToCache = true
	return &Session{
		Benchpark: bp,
		System:    sys,
		Suite:     ws.Name,
		Config:    cfg,
		Installer: inst,
		Workspace: ws,
		Scheduler: scheduler.New(sys),
		Thicket:   thicket.New(),
		Lockfiles: map[string]*env.Lockfile{},
	}, nil
}

// InstallSoftware is the exported Ramble→Spack hook for external
// drivers (the ramble CLI), which have no pipeline context to thread
// through; engine-driven installs go via installSoftwareContext.
//
//benchlint:compat
func (s *Session) InstallSoftware(envName string, specs []string) error {
	return s.installSoftwareContext(context.Background(), envName, specs)
}

// Executor is the exported scheduler-backed experiment executor.
func (s *Session) Executor(e *ramble.Experiment) (string, float64, error) {
	return s.executor(e)
}

// rawVar fetches a variable's expanded value, "" when absent.
func rawVar(e *ramble.Experiment, name string) string {
	if _, ok := e.Expander.Get(name); !ok {
		return ""
	}
	v, err := e.Expander.Expand("{" + name + "}")
	if err != nil {
		return ""
	}
	return v
}

// expandedVars renders every experiment variable to its final value
// (skipping ones that need runtime-only context).
func expandedVars(e *ramble.Experiment) map[string]string {
	out := map[string]string{}
	for k := range e.Vars {
		v, err := e.Expander.Expand("{" + k + "}")
		if err == nil {
			out[k] = v
		}
	}
	return out
}

// RunOptions configures one Session.Run: worker-pool width and
// overall deadline for the engine, and whether experiments go through
// the per-experiment scheduler loop or one batched queue drain.
type RunOptions struct {
	// Jobs bounds the engine worker pool; <=0 means runtime.NumCPU().
	Jobs int
	// Timeout, when positive, caps the whole run.
	Timeout time.Duration
	// Batched submits every experiment's rendered batch script up
	// front and drains the queue as one simulation (Figure 13
	// semantics) instead of one submit+drain per experiment.
	Batched bool
	// Cache overrides the engine's run cache for this run. When nil,
	// the session falls back to the Benchpark store's "run" layer
	// (Benchpark.UseCache); when the store is nil too, experiment
	// replay is off.
	Cache engine.ExperimentCache
}

// RunAll executes the full Figure 1c workflow after Setup: workspace
// setup (software install + experiment generation), ramble on, and
// analyze, recording every result in the metrics database and writing
// the analysis artifact to the workspace's logs/ directory.
//
// Experiments execute concurrently on the engine's worker pool; the
// results are identical to a sequential run (see internal/engine).
// Cancellable callers use Run directly.
//
//benchlint:compat
func (s *Session) RunAll() (*ramble.AnalysisReport, error) {
	rep, _, err := s.Run(context.Background(), RunOptions{})
	return rep, err
}

// RunAllBatched is RunAll with real batch-queue semantics: every
// generated experiment is submitted to the system's scheduler from
// its rendered batch script (so the Figure 13 #SBATCH/#BSUB/#flux
// directives actually drive the allocation), the whole queue drains
// as one simulation — experiments run concurrently when nodes allow —
// and the analysis proceeds on the collected outputs. Cancellable
// callers use Run directly with RunOptions.Batched.
//
//benchlint:compat
func (s *Session) RunAllBatched() (*ramble.AnalysisReport, error) {
	rep, _, err := s.Run(context.Background(), RunOptions{Batched: true})
	return rep, err
}

// Run drives the session through the execution engine: setup →
// install → concurrent execute → ordered commit → analyze. It returns
// the ramble analysis, the engine's report (always non-nil — on
// cancellation or a stage failure it records how far the matrix got),
// and the terminal error if the run did not complete. Individual
// experiment failures do not fail the run; they appear as failed
// experiments in the analysis and as typed errors in the engine
// report.
func (s *Session) Run(ctx context.Context, o RunOptions) (*ramble.AnalysisReport, *engine.Report, error) {
	ctx, span := telemetry.StartSpan(ctx, "session")
	span.SetAttr("suite", s.Suite)
	span.SetAttr("system", s.System.Name)
	telemetry.Log(ctx).Info("session start", "suite", s.Suite, "system", s.System.Name)
	r := &sessionRunner{s: s, batched: o.Batched}
	cache := o.Cache
	if cache == nil && s.Benchpark.Store != nil {
		cache = s.Benchpark.Store.Layer("run")
	}
	memoBefore := s.Benchpark.Memo.Stats()
	bcHits, bcMisses, _ := s.Benchpark.Cache.Stats()
	erep, err := engine.Run(ctx, r, engine.Options{Jobs: o.Jobs, Timeout: o.Timeout, Cache: cache})
	s.appendCacheStats(ctx, erep, memoBefore, bcHits, bcMisses)
	span.SetError(err)
	span.End()
	telemetry.Log(ctx).Info("session done",
		"executed", erep.Executed, "failed", erep.Failed, "cancelled", erep.Cancelled)
	return r.analysis, erep, err
}

// sessionRunner adapts a Session to the engine's Runner interface.
// Execute runs the benchmark kernels concurrently (they are pure
// functions of their parameters — the simulated clock is per-run);
// every shared side effect (scheduler submission, thicket, metrics
// database, files) happens in the sequential Commit/Analyze stages,
// in experiment index order, so a concurrent run is byte-identical to
// a sequential one.
type sessionRunner struct {
	s       *Session
	batched bool

	exps     []*ramble.Experiment
	outs     []*bench.Output  // per-experiment kernel output
	errs     []error          // per-experiment kernel error
	jobs     []*scheduler.Job // batched mode: submitted jobs
	analysis *ramble.AnalysisReport
}

func (r *sessionRunner) Label() string {
	return r.s.Suite + "@" + r.s.System.Name
}

func (r *sessionRunner) Setup(ctx context.Context) error {
	// Generate experiments and materialize directories; software
	// installation is the engine's own install stage.
	if err := r.s.Workspace.Setup(nil); err != nil {
		return err
	}
	r.exps = r.s.Workspace.Experiments
	r.outs = make([]*bench.Output, len(r.exps))
	r.errs = make([]error, len(r.exps))
	r.jobs = make([]*scheduler.Job, len(r.exps))
	return nil
}

func (r *sessionRunner) Install(ctx context.Context) error {
	envSpecs, err := r.s.Workspace.SoftwareEnvironments()
	if err != nil {
		return err
	}
	names := make([]string, 0, len(envSpecs))
	for name := range envSpecs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := r.s.installSoftwareContext(ctx, name, envSpecs[name]); err != nil {
			return fmt.Errorf("ramble: installing environment %s: %w", name, err)
		}
	}
	return nil
}

func (r *sessionRunner) Experiments() []string {
	names := make([]string, len(r.exps))
	for i, e := range r.exps {
		names[i] = e.Name
	}
	return names
}

// Execute runs one experiment's kernel. It touches only this
// experiment's slots — no scheduler, no files — so the engine may run
// it concurrently with its siblings.
func (r *sessionRunner) Execute(ctx context.Context, i int) error {
	e := r.exps[i]
	b, err := bench.Get(e.App.Name)
	if err != nil {
		r.errs[i] = err
		return err
	}
	params := bench.Params{
		System:       r.s.System,
		Ranks:        e.NRanks,
		RanksPerNode: e.ProcsPerNode,
		Threads:      e.NThreads,
		Variant:      rawVar(e, "variant"),
		Vars:         expandedVars(e),
	}
	r.outs[i], r.errs[i] = b.Run(params)
	return r.errs[i]
}

// Commit records one executed experiment, in index order. In serial
// mode it submits and drains the experiment's batch job (steps 7-8);
// in batched mode it only submits — the single queue drain happens in
// Analyze, after every script is queued.
func (r *sessionRunner) Commit(ctx context.Context, i int) error {
	e := r.exps[i]
	out, rerr := r.outs[i], r.errs[i]
	payload := func() (float64, error) {
		if rerr != nil {
			return 0, rerr
		}
		return out.Elapsed, nil
	}

	if r.batched {
		job, err := r.s.Scheduler.SubmitScript(e.Name, e.Script, payload)
		if err != nil {
			return err
		}
		r.jobs[i] = job
		return nil
	}

	limitMin := 60.0
	if t, err := e.Expander.Expand("{batch_time}"); err == nil {
		fmt.Sscanf(t, "%f", &limitMin) //nolint:errcheck
	}
	job, err := r.s.Scheduler.Submit(e.Name, e.NNodes, limitMin*60, payload)
	if err != nil {
		return err
	}
	if err := r.s.Scheduler.DrainContext(ctx); err != nil {
		return err
	}
	return r.recordJob(e, job, out)
}

// recordJob settles one experiment from its finished batch job:
// status, output file, Caliper profile into the thicket.
func (r *sessionRunner) recordJob(e *ramble.Experiment, job *scheduler.Job, out *bench.Output) error {
	if job.State != scheduler.Completed || out == nil {
		e.Status = ramble.Failed
		if job.Err != nil {
			e.FailMsg = job.Err.Error()
		} else {
			e.FailMsg = "job " + job.State.String()
		}
		return nil
	}
	e.Output = out.Text
	e.Elapsed = out.Elapsed
	e.Status = ramble.Succeeded
	md := out.Metadata
	md.Setf("experiment", "%s", e.Name)
	md.Setf("nprocs", "%d", e.NRanks)
	r.s.Thicket.Add(out.Profile, md)
	if cali, err := out.Profile.JSON(); err == nil {
		_ = os.WriteFile(filepath.Join(e.Dir, e.Name+".cali"), []byte(cali), 0o644)
	}
	return os.WriteFile(filepath.Join(e.Dir, e.Name+".out"), []byte(e.Output), 0o644)
}

func (r *sessionRunner) Analyze(ctx context.Context) error {
	if r.batched {
		// One drain for the whole queue: jobs overlap when nodes allow.
		if err := r.s.Scheduler.DrainContext(ctx); err != nil {
			return err
		}
		for i, e := range r.exps {
			if r.jobs[i] == nil {
				continue // commit never ran (cancelled before queueing)
			}
			if err := r.recordJob(e, r.jobs[i], r.outs[i]); err != nil {
				return err
			}
		}
	}
	rep, err := r.s.Workspace.Analyze()
	if err != nil {
		return err
	}
	if err := r.s.writeResultsArtifact(rep); err != nil {
		return err
	}
	r.s.recordMetrics(rep, !r.batched)
	r.analysis = rep
	return nil
}

// Results implements engine.ResultReporter: after a successful
// analysis, the runner publishes every succeeded experiment's FOMs
// with the same identity coordinates recordMetrics writes to the
// local database. The engine attaches the slice to Report.Results,
// which is what the federation path (metricsdb.ResultsFromReport →
// resultsd) pushes to a shared results service.
func (r *sessionRunner) Results() []engine.ExperimentResult {
	if r.analysis == nil {
		return nil
	}
	var out []engine.ExperimentResult
	for _, e := range r.analysis.Experiments {
		if e.Status != ramble.Succeeded {
			continue
		}
		meta := map[string]string{
			"n_ranks": fmt.Sprintf("%d", e.NRanks),
			"n_nodes": fmt.Sprintf("%d", e.NNodes),
		}
		if !r.batched {
			meta["n_threads"] = fmt.Sprintf("%d", e.NThreads)
		}
		out = append(out, engine.ExperimentResult{
			Experiment: e.Name,
			Benchmark:  e.App.Name,
			Workload:   e.Workload,
			System:     r.s.System.Name,
			FOMs:       e.FOMs,
			Meta:       meta,
		})
	}
	return out
}

// Manifests renders the reproducibility manifest of every experiment
// in an analysis, keyed by experiment name — the map
// metricsdb.ResultsFromReport attaches to pushed results so a remote
// store carries the same provenance as the local one.
func (s *Session) Manifests(rep *ramble.AnalysisReport) map[string]string {
	out := map[string]string{}
	if rep == nil {
		return out
	}
	for _, e := range rep.Experiments {
		out[e.Name] = s.manifest(e)
	}
	return out
}

// recordMetrics streams succeeded experiments into the shared metrics
// database. The batched path historically omits the n_threads
// dimension (batch scripts do not pin threads); includeThreads keeps
// that distinction.
func (s *Session) recordMetrics(rep *ramble.AnalysisReport, includeThreads bool) {
	for _, e := range rep.Experiments {
		if e.Status != ramble.Succeeded {
			continue
		}
		meta := map[string]string{
			"n_ranks": fmt.Sprintf("%d", e.NRanks),
			"n_nodes": fmt.Sprintf("%d", e.NNodes),
		}
		if includeThreads {
			meta["n_threads"] = fmt.Sprintf("%d", e.NThreads)
		}
		s.Benchpark.Metrics.Add(metricsdb.Result{
			Benchmark:  e.App.Name,
			Workload:   e.Workload,
			System:     s.System.Name,
			Experiment: e.Name,
			FOMs:       metricsdb.ParseFOMs(e.FOMs),
			Meta:       meta,
			Manifest:   s.manifest(e),
		})
	}
}

// writeResultsArtifact stores the analysis as logs/results.json —
// the shareable record Section 5 wants contributors to publish
// alongside the manifests.
func (s *Session) writeResultsArtifact(rep *ramble.AnalysisReport) error {
	type entry struct {
		Experiment string            `json:"experiment"`
		Status     string            `json:"status"`
		Elapsed    float64           `json:"elapsed_s"`
		FOMs       map[string]string `json:"foms,omitempty"`
		Error      string            `json:"error,omitempty"`
		Manifest   string            `json:"manifest"`
	}
	var entries []entry
	for _, e := range rep.Experiments {
		entries = append(entries, entry{
			Experiment: e.Name,
			Status:     e.Status.String(),
			Elapsed:    e.Elapsed,
			FOMs:       e.FOMs,
			Error:      e.FailMsg,
			Manifest:   s.manifest(e),
		})
	}
	data, err := json.MarshalIndent(map[string]any{
		"system":  s.System.Name,
		"suite":   s.Suite,
		"total":   rep.Total,
		"passed":  rep.Succeeded,
		"failed":  rep.Failed,
		"results": entries,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(s.Workspace.Root, "logs", "results.json"), data, 0o644)
}

// manifest renders the exact experiment specification (Section 5:
// "Storing the Benchpark manifest with the performance results will
// enable introspection into benchmark performance across systems and
// time").
func (s *Session) manifest(e *ramble.Experiment) string {
	var b strings.Builder
	fmt.Fprintf(&b, "system: %s\nsuite: %s\nexperiment: %s\n", s.System.Name, s.Suite, e.Name)
	if lf, ok := s.Lockfiles[e.App.Name]; ok {
		fmt.Fprintf(&b, "software: %s\n", strings.Join(lf.PackageNames(), ", "))
		for _, root := range lf.Roots {
			fmt.Fprintf(&b, "root: %s\n", lf.Nodes[root].Spec)
		}
	}
	return b.String()
}

// InstalledSpec returns the installed concrete spec for a package in
// a session environment, for provenance checks.
func (s *Session) InstalledSpec(pkgName string) (*spec.Spec, error) {
	recs := s.Installer.DB.Find(spec.MustParse(pkgName))
	if len(recs) == 0 {
		return nil, fmt.Errorf("benchpark: %s not installed in this session", pkgName)
	}
	return recs[0].Spec, nil
}

// AdiakEnsembleMetadata builds shared metadata for the session's
// thicket entries.
func (s *Session) AdiakEnsembleMetadata() *adiak.Metadata {
	md := adiak.New()
	md.Set("cluster", s.System.Name)
	md.Set("suite", s.Suite)
	return md
}
