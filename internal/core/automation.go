package core

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"sync"

	"repro/internal/cachekey"
	"repro/internal/ci"
	"repro/internal/engine"
	"repro/internal/metricsdb"
	"repro/internal/ramble"
	"repro/internal/resultsd"
	"repro/internal/telemetry"
)

// ExperimentFailuresError is the typed error a CI job (or CLI run)
// returns when the matrix finished but some experiments failed. It
// carries the engine's partial report so callers can inspect exactly
// which experiments failed instead of parsing an error string.
type ExperimentFailuresError struct {
	Report *engine.Report
}

func (e *ExperimentFailuresError) Error() string {
	return fmt.Sprintf("%d experiments failed", e.Report.Failed)
}

// BenchparkCIYAML is the .gitlab-ci.yml a Benchpark deployment uses:
// one build+bench job per participating site (Table 1 row 6:
// "Hubcast@LLNL/RIKEN/AWS").
const BenchparkCIYAML = `
stages: [bench]
bench-cts1:
  stage: bench
  script:
  - benchpark saxpy/openmp cts1 ws-cts1
  tags: [llnl, cts1]
bench-cloud:
  stage: bench
  script:
  - benchpark saxpy/openmp cloud-c5n ws-cloud
  tags: [aws]
`

// Automation wires the Figure 6 loop: GitHub repo + users, Hubcast,
// GitLab with site runners whose jobs execute real Benchpark
// sessions, and the shared metrics database.
type Automation struct {
	Benchpark *Benchpark
	GitHub    *ci.GitHub
	GitLab    *ci.GitLab
	Hubcast   *ci.Hubcast

	// Results, when set, is the federation endpoint every CI job
	// pushes its engine report into (Figure 6's arrow from the
	// runners into the shared metrics database). Push failures fail
	// the job: a benchmark run whose results never reached the shared
	// store did not do its continuous-benchmarking duty.
	Results *resultsd.Client

	pushMu  sync.Mutex
	pushSeq int
}

// NewAutomation assembles a deployment with runners at LLNL and AWS.
// workDir hosts the CI-run workspaces.
func NewAutomation(bp *Benchpark, workDir string) (*Automation, error) {
	canonical := ci.NewRepo("benchpark")
	if _, err := canonical.Commit("main", "olga", "initial import", map[string]string{
		".gitlab-ci.yml": BenchparkCIYAML,
		"README.md":      "Benchpark: collaborative continuous benchmarking",
	}); err != nil {
		return nil, err
	}
	gh := ci.NewGitHub(canonical)
	gh.AddUser(ci.User{Name: "olga", Trusted: true, SiteAdmin: true, SiteAccounts: []string{"LLNL"}})
	gh.AddUser(ci.User{Name: "todd", Trusted: true, SiteAdmin: true, SiteAccounts: []string{"LLNL"}})
	gh.AddUser(ci.User{Name: "jens", Trusted: true, SiteAccounts: []string{"RIKEN"}})
	gh.AddUser(ci.User{Name: "heidi", Trusted: true, SiteAccounts: []string{"AWS"}})

	gl := ci.NewGitLab(ci.NewRepo("benchpark-mirror"), gh)
	a := &Automation{Benchpark: bp, GitHub: gh, GitLab: gl}
	gl.RegisterRunner(&ci.Runner{
		Name: "llnl-cts1", Site: "LLNL", Tags: []string{"llnl", "cts1"},
		Exec: a.jobExecutor(workDir),
	})
	gl.RegisterRunner(&ci.Runner{
		Name: "aws-cloud", Site: "AWS", Tags: []string{"aws"},
		Exec: a.jobExecutor(workDir),
	})
	a.Hubcast = ci.NewHubcast(gh, gl, ci.SecurityCriteria{
		RequireAdminApproval: true,
		ProtectedPaths:       []string{".gitlab-ci.yml"},
	})
	return a, nil
}

// UseCache attaches a shared durable content-addressed store to the
// deployment, so every pipeline job — nightly after nightly, PR after
// PR — reuses the concretize/buildcache/run layers and re-runs only
// the delta. Each job's hit/miss provenance lands on its CIJob.
func (a *Automation) UseCache(st *cachekey.Store) { a.Benchpark.UseCache(st) }

// jobExecutor interprets "benchpark <suite> <system> <workspace>"
// script lines by actually running the session — the Benchpark
// executable of Table 1 row 6. Each session runs on the experiment
// engine under the pipeline's context, so cancelling the pipeline
// cancels its benchmark matrices. The job log is a stream of
// structured slog records carrying the pipeline's span ID, so CI
// output correlates with the run's trace.
func (a *Automation) jobExecutor(workDir string) ci.JobExecutor {
	return func(ctx context.Context, job *ci.CIJob) (string, error) {
		var buf strings.Builder
		log := telemetry.SpanLogger(ctx, telemetry.NewLogger(&buf, slog.LevelInfo)).
			With("job", job.Name)
		for _, line := range job.Script {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[0] != "benchpark" {
				log.Info("skipped: not a benchpark invocation", "line", line)
				continue
			}
			suite, system, wsName := fields[1], fields[2], fields[3]
			dir, err := os.MkdirTemp(workDir, wsName+"-*")
			if err != nil {
				return buf.String(), err
			}
			sess, err := a.Benchpark.Setup(suite, system, dir)
			if err != nil {
				return buf.String(), err
			}
			rep, erep, err := sess.Run(ctx, RunOptions{})
			if err != nil {
				return buf.String(), err
			}
			log.Info("benchpark run finished", "line", line,
				"experiments", rep.Total, "succeeded", rep.Succeeded, "failed", rep.Failed)
			// Per-job cache provenance: which layers served the run, and
			// how much of it was replayed vs executed fresh.
			for _, cs := range erep.Cache {
				job.Cache = append(job.Cache, ci.CacheProvenance{
					Layer: cs.Layer, Hits: cs.Hits, Misses: cs.Misses,
				})
				log.Info("cache layer", "layer", cs.Layer, "hits", cs.Hits, "misses", cs.Misses)
			}
			if rep.Failed > 0 {
				return buf.String(), &ExperimentFailuresError{Report: erep}
			}
			if a.Results != nil {
				resp, err := a.pushResults(ctx, job.Name, sess, rep, erep)
				if err != nil {
					log.Error("results push failed", "error", err.Error())
					return buf.String(), err
				}
				if resp != nil {
					log.Info("results pushed", "accepted", resp.Accepted, "duplicate", resp.Duplicate)
				}
			}
		}
		return buf.String(), nil
	}
}

// pushResults ships one job's engine report to the configured
// results service through the metricsdb bridge, under a "push"
// telemetry span. The ingest key hashes the job identity, the result
// content, and a per-deployment push sequence: a client-level retry
// reuses the key (idempotent), while the next pipeline over the same
// deterministic benchmarks mints a fresh one, so nightly series
// actually accrue.
func (a *Automation) pushResults(ctx context.Context, jobName string, sess *Session, rep *ramble.AnalysisReport, erep *engine.Report) (*resultsd.IngestResponse, error) {
	results := metricsdb.ResultsFromReport(erep, sess.Manifests(rep))
	if len(results) == 0 {
		return nil, nil
	}
	a.pushMu.Lock()
	a.pushSeq++
	seq := a.pushSeq
	a.pushMu.Unlock()
	key, err := ingestKey(jobName, erep.Label, seq, results)
	if err != nil {
		return nil, err
	}
	ctx, span := telemetry.StartSpan(ctx, "push:"+jobName)
	defer span.End()
	span.SetAttr("ingest_key", key)
	span.SetInt("results", len(results))
	resp, err := a.Results.Push(ctx, key, results)
	if err != nil {
		span.SetError(err)
		return nil, err
	}
	return resp, nil
}

// ingestKey derives the deterministic idempotency key for one push.
func ingestKey(jobName, label string, seq int, results []metricsdb.Result) (string, error) {
	data, err := json.Marshal(results)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%d|", jobName, label, seq) //nolint:errcheck
	h.Write(data)                                    //nolint:errcheck
	return fmt.Sprintf("%s-%d-%x", jobName, seq, h.Sum(nil)[:8]), nil
}

// RunNightly executes the CI pipeline against the canonical main
// branch — the "in service" stage of Section 1, where continuous
// benchmarking tracks system performance over time. Results accrue in
// the shared metrics database; the caller can then run regression
// detection over the series. Cancellable deployments use
// RunNightlyContext.
//
//benchlint:compat
func (a *Automation) RunNightly() (*ci.Pipeline, error) {
	return a.RunNightlyContext(context.Background())
}

// RunNightlyContext is RunNightly with cancellation propagated
// through the pipeline into the benchmark engine.
func (a *Automation) RunNightlyContext(ctx context.Context) (*ci.Pipeline, error) {
	head, ok := a.GitHub.Canonical.Head("main")
	if !ok || head == "" {
		return nil, fmt.Errorf("benchpark: canonical main has no commits")
	}
	commit, ok := a.GitHub.Canonical.Get(head)
	if !ok {
		return nil, fmt.Errorf("benchpark: dangling main head")
	}
	a.GitLab.Mirror.ImportCommit(commit, "main")
	// Nightly runs are triggered by the bot and pre-trusted: they
	// execute under the service owner's identity.
	return a.GitLab.RunPipelineContext(ctx, head, "benchpark-bot", "olga")
}

// ContributionResult summarizes one PR's trip through the Figure 6
// loop.
type ContributionResult struct {
	PR       *ci.PullRequest
	Pipeline *ci.Pipeline
	Results  []metricsdb.Result
}

// SubmitContribution opens a PR from a contributor's fork, has an
// admin approve it, syncs through Hubcast (running the pipelines on
// the site runners), and merges on success. Cancellable deployments
// use SubmitContributionContext.
//
//benchlint:compat
func (a *Automation) SubmitContribution(author, title string, files map[string]string, approver string) (*ContributionResult, error) {
	return a.SubmitContributionContext(context.Background(), author, title, files, approver)
}

// SubmitContributionContext is SubmitContribution with cancellation
// propagated through Hubcast into the pipeline's benchmark runs.
func (a *Automation) SubmitContributionContext(ctx context.Context, author, title string, files map[string]string, approver string) (*ContributionResult, error) {
	fork := a.GitHub.Fork(author + "/benchpark")
	if _, err := fork.Commit("contribution", author, title, files); err != nil {
		return nil, err
	}
	pr, err := a.GitHub.OpenPR(title, author, fork, "contribution", "main")
	if err != nil {
		return nil, err
	}
	if err := a.GitHub.Approve(pr.ID, approver); err != nil {
		return nil, err
	}
	before := a.Benchpark.Metrics.Len()
	pipeline, err := a.Hubcast.SyncContext(ctx, pr.ID)
	if err != nil {
		return nil, err
	}
	if pipeline.Status() == ci.JobSuccess {
		if err := a.GitHub.Merge(pr.ID); err != nil {
			return nil, err
		}
	}
	var fresh []metricsdb.Result
	for _, r := range a.Benchpark.Metrics.Query(metricsdb.Filter{}) {
		if r.Seq > before {
			fresh = append(fresh, r)
		}
	}
	return &ContributionResult{PR: pr, Pipeline: pipeline, Results: fresh}, nil
}
