package core

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cachekey"
	"repro/internal/ci"
	"repro/internal/engine"
	"repro/internal/hpcsim"
	"repro/internal/ramble"
	"repro/internal/telemetry"
)

// runStat extracts one layer's row from a report's cache table.
func runStat(t *testing.T, rep *engine.Report, layer string) engine.CacheStat {
	t.Helper()
	for _, cs := range rep.Cache {
		if cs.Layer == layer {
			return cs
		}
	}
	t.Fatalf("report has no %q cache layer: %+v", layer, rep.Cache)
	return engine.CacheStat{}
}

// TestWarmSessionRunReplaysByteIdentical is the incremental pipeline's
// headline guarantee at the session level: a warm re-run of an
// unchanged suite over a shared run layer executes zero experiments —
// every outcome replays from the cache — yet leaves a byte-identical
// results.json behind, emits the identical results batch, and produces
// the identical span tree (cold vs warm) under a FixedClock tracer.
// Two warm runs must produce byte-identical full traces, metrics
// included.
func TestWarmSessionRunReplaysByteIdentical(t *testing.T) {
	st, err := cachekey.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Only the run layer is shared: a shared buildcache would
	// legitimately change the install spans of the warm run, and this
	// test pins span identity.
	runLayer := st.Layer("run")
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

	runOnce := func() (results string, trace *telemetry.Trace, traceJSON string, erep *engine.Report) {
		t.Helper()
		bp := New()
		tr := telemetry.New(telemetry.FixedClock{T: epoch})
		bp.Cache.Instrument(tr.Metrics())
		ctx := telemetry.WithTracer(context.Background(), tr)
		dir := t.TempDir()
		sess, err := bp.Setup("saxpy/openmp", "cts1", dir)
		if err != nil {
			t.Fatal(err)
		}
		_, erep, err = sess.Run(ctx, RunOptions{Jobs: 8, Cache: runLayer})
		if err != nil {
			t.Fatal(err)
		}
		artifact, err := os.ReadFile(filepath.Join(dir, "logs", "results.json"))
		if err != nil {
			t.Fatal(err)
		}
		src, err := tr.Snapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := telemetry.ParseTrace(src)
		if err != nil {
			t.Fatal(err)
		}
		return string(artifact), parsed, src, erep
	}

	coldRes, coldTrace, _, coldRep := runOnce()
	warmRes, warmTrace, warmJSON, warmRep := runOnce()
	warm2Res, _, warm2JSON, warm2Rep := runOnce()

	if coldRep.Total == 0 {
		t.Fatal("suite generated no experiments")
	}
	cold := runStat(t, coldRep, "run")
	if cold.Hits != 0 || cold.Misses != coldRep.Total || cold.Bytes == 0 {
		t.Errorf("cold run layer = %+v, want 0 hits, %d misses, bytes>0", cold, coldRep.Total)
	}

	// Warm: zero executions — every experiment replays.
	for _, rep := range []*engine.Report{warmRep, warm2Rep} {
		warm := runStat(t, rep, "run")
		if warm.Misses != 0 || warm.Hits != rep.Total {
			t.Errorf("warm run layer = %+v, want %d hits, 0 misses", warm, rep.Total)
		}
		if rep.CacheHits != rep.Total {
			t.Errorf("warm CacheHits = %d, want %d", rep.CacheHits, rep.Total)
		}
		if rep.Executed != rep.Total || rep.Failed != 0 {
			t.Errorf("warm report executed=%d failed=%d, want %d committed replays",
				rep.Executed, rep.Failed, rep.Total)
		}
	}

	// The replayed run settles into the same artifact, byte for byte.
	if coldRes != warmRes {
		t.Errorf("results.json differs cold vs warm:\n--- cold ---\n%s\n--- warm ---\n%s", coldRes, warmRes)
	}
	if warmRes != warm2Res {
		t.Errorf("results.json differs across warm runs")
	}

	// The results batch — what a CI job would push to the federation
	// service — replays identically too.
	coldBatch, err := json.Marshal(coldRep.Results)
	if err != nil {
		t.Fatal(err)
	}
	warmBatch, err := json.Marshal(warmRep.Results)
	if err != nil {
		t.Fatal(err)
	}
	if string(coldBatch) != string(warmBatch) {
		t.Errorf("results batch differs cold vs warm:\n%s\nvs\n%s", coldBatch, warmBatch)
	}

	// Span trees are identical cold vs warm: a cache hit opens the
	// same spans an execution would. (The full trace JSON legitimately
	// differs — cache hit/miss counters — so compare spans only.)
	coldSpans, err := json.Marshal(coldTrace.Spans)
	if err != nil {
		t.Fatal(err)
	}
	warmSpans, err := json.Marshal(warmTrace.Spans)
	if err != nil {
		t.Fatal(err)
	}
	if string(coldSpans) != string(warmSpans) {
		t.Errorf("span tree differs cold vs warm:\n--- cold ---\n%s\n--- warm ---\n%s", coldSpans, warmSpans)
	}

	// Warm vs warm, nothing differs — metrics included.
	if warmJSON != warm2JSON {
		t.Errorf("full trace differs across warm runs:\n--- first ---\n%s\n--- second ---\n%s", warmJSON, warm2JSON)
	}
}

// deltaSuiteYAML is a three-experiment saxpy suite whose middle
// experiment's problem size is the fmt parameter — the "single
// variable edit" of the incremental-pipeline acceptance test.
const deltaSuiteYAML = `
ramble:
  include:
  - ./configs/spack.yaml
  - ./configs/variables.yaml
  applications:
    saxpy:
      workloads:
        problem:
          env_vars:
            set:
              OMP_NUM_THREADS: '{n_threads}'
          variables:
            variant: 'openmp'
            batch_time: '120'
            processes_per_node: '8'
            n_nodes: '1'
            n_threads: '2'
          experiments:
            saxpy_small_{n}:
              variables:
                n: '512'
            saxpy_medium_{n}:
              variables:
                n: '%s'
            saxpy_large_{n}:
              variables:
                n: '4096'
  spack:
    packages:
      saxpy:
        spack_spec: saxpy@1.0.0 +openmp ^cmake@3.23.1
        compiler: default-compiler
    environments:
      saxpy:
        packages:
        - default-mpi
        - saxpy
`

// deltaSession builds a session over the delta suite with the middle
// experiment's size set to mediumN.
func deltaSession(t *testing.T, bp *Benchpark, mediumN string) *Session {
	t.Helper()
	sys, err := hpcsim.Get("cts1")
	if err != nil {
		t.Fatal(err)
	}
	ws, err := ramble.NewWorkspace("saxpy/delta@cts1", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	files, err := SystemConfigs(sys)
	if err != nil {
		t.Fatal(err)
	}
	for name, content := range files {
		if err := ws.WriteConfig(name, content); err != nil {
			t.Fatal(err)
		}
	}
	if err := ws.Configure(fmt.Sprintf(deltaSuiteYAML, mediumN)); err != nil {
		t.Fatal(err)
	}
	sess, err := NewSessionForWorkspace(bp, sys, ws)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

// TestWarmRunReExecutesOnlyTheEditedExperiment: after one variable
// edit, a warm run over the shared layer re-executes exactly the
// changed experiment and replays the rest.
func TestWarmRunReExecutesOnlyTheEditedExperiment(t *testing.T) {
	st, err := cachekey.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	runLayer := st.Layer("run")
	run := func(mediumN string) *engine.Report {
		t.Helper()
		bp := New()
		sess := deltaSession(t, bp, mediumN)
		_, erep, err := sess.Run(context.Background(), RunOptions{Jobs: 4, Cache: runLayer})
		if err != nil {
			t.Fatal(err)
		}
		if erep.Failed != 0 {
			t.Fatalf("%d experiments failed", erep.Failed)
		}
		return erep
	}

	cold := run("1024")
	if cold.Total != 3 {
		t.Fatalf("delta suite generated %d experiments, want 3", cold.Total)
	}
	if cold.CacheHits != 0 {
		t.Fatalf("cold run hit %d entries in an empty cache", cold.CacheHits)
	}

	warm := run("1024")
	if cs := runStat(t, warm, "run"); cs.Hits != 3 || cs.Misses != 0 {
		t.Errorf("unchanged warm run = %+v, want 3 hits, 0 misses", cs)
	}

	edited := run("2048")
	if cs := runStat(t, edited, "run"); cs.Hits != 2 || cs.Misses != 1 {
		t.Errorf("after a one-variable edit, run layer = %+v, want 2 hits, 1 miss", cs)
	}

	again := run("2048")
	if cs := runStat(t, again, "run"); cs.Hits != 3 || cs.Misses != 0 {
		t.Errorf("re-run of the edited suite = %+v, want 3 hits (delta now cached)", cs)
	}
}

// TestNightlyPipelineCacheProvenance: a CI deployment over a shared
// durable store records per-job cache provenance, and the second
// nightly's jobs are 100% run-layer hits — the pipeline re-ran the
// benchmarks without executing any of them.
func TestNightlyPipelineCacheProvenance(t *testing.T) {
	bp := New()
	auto, err := NewAutomation(bp, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st, err := cachekey.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	auto.UseCache(st)

	jobProvenance := func(j *ci.CIJob, layer string) (ci.CacheProvenance, bool) {
		for _, cp := range j.Cache {
			if cp.Layer == layer {
				return cp, true
			}
		}
		return ci.CacheProvenance{}, false
	}

	first, err := auto.RunNightly()
	if err != nil {
		t.Fatal(err)
	}
	if first.Status() != ci.JobSuccess {
		t.Fatalf("first nightly = %v", first.Status())
	}
	for _, j := range first.Jobs {
		cp, ok := jobProvenance(j, "run")
		if !ok {
			t.Fatalf("job %s recorded no run-layer provenance: %+v", j.Name, j.Cache)
		}
		if cp.Hits != 0 || cp.Misses == 0 {
			t.Errorf("job %s cold provenance = %+v, want all misses", j.Name, cp)
		}
	}

	second, err := auto.RunNightly()
	if err != nil {
		t.Fatal(err)
	}
	if second.Status() != ci.JobSuccess {
		t.Fatalf("second nightly = %v", second.Status())
	}
	for _, j := range second.Jobs {
		cp, ok := jobProvenance(j, "run")
		if !ok {
			t.Fatalf("job %s recorded no run-layer provenance: %+v", j.Name, j.Cache)
		}
		if cp.Misses != 0 || cp.Hits == 0 {
			t.Errorf("job %s warm provenance = %+v, want all hits", j.Name, cp)
		}
		if _, ok := jobProvenance(j, "concretize"); !ok {
			t.Errorf("job %s has no concretize provenance: %+v", j.Name, j.Cache)
		}
	}
}
