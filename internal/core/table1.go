package core

import (
	"fmt"
	"strings"
)

// Component is one row of Table 1: a concern of continuous
// benchmarking and where each orthogonal piece of it lives.
type Component struct {
	Number             int
	Name               string
	BenchmarkSpecific  string
	SystemSpecific     string
	ExperimentSpecific string
}

// ComponentMatrix returns Table 1 of the paper: the components of
// Benchpark and the implementation choices that orthogonalize
// benchmarks, systems, and experiments.
func ComponentMatrix() []Component {
	return []Component{
		{1, "Source code", "package.py", "archspec (Sec. 3.1.3)", "ramble.yaml: spack"},
		{2, "Build instructions", "package.py", "Spack config. files, spack.yaml", "ramble.yaml: spack"},
		{3, "Benchmark input", "application.py, (optional) data", "variables.yaml", "ramble.yaml: experiments"},
		{4, "Run instructions", "application.py", "variables.yaml: scheduler, launcher", "ramble.yaml: experiments"},
		{5, "Experiment evaluation", "(optional) application.py", "(optional) hardware counters, etc.", "ramble.yaml: success_criteria"},
		{6, "CI testing", ".gitlab-ci.yml", "Hubcast@LLNL/RIKEN/AWS", "Benchpark executable"},
	}
}

// ComponentTable renders Table 1 as ASCII.
func ComponentTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-3s %-24s %-32s %-36s %-30s\n", "#", "Component", "Benchmark-specific", "HPC System-specific", "Experiment-specific")
	b.WriteString(strings.Repeat("-", 128) + "\n")
	for _, c := range ComponentMatrix() {
		fmt.Fprintf(&b, "%-3d %-24s %-32s %-36s %-30s\n",
			c.Number, c.Name, c.BenchmarkSpecific, c.SystemSpecific, c.ExperimentSpecific)
	}
	return b.String()
}

// ImplementsComponent maps each Table 1 row to the Go packages that
// implement it in this reproduction — the DESIGN.md inventory,
// queryable at runtime.
func ImplementsComponent(number int) ([]string, error) {
	m := map[int][]string{
		1: {"internal/pkgrepo", "internal/archspec", "internal/ramble"},
		2: {"internal/pkgrepo", "internal/concretizer", "internal/env", "internal/install"},
		3: {"internal/ramble", "internal/bench"},
		4: {"internal/ramble", "internal/scheduler", "internal/mpisim"},
		5: {"internal/ramble", "internal/caliper", "internal/thicket", "internal/extrap"},
		6: {"internal/ci", "internal/metricsdb", "internal/buildcache"},
	}
	pkgs, ok := m[number]
	if !ok {
		return nil, fmt.Errorf("benchpark: Table 1 has no component %d", number)
	}
	return pkgs, nil
}
