package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/adiak"
	"repro/internal/bench"
	"repro/internal/cachekey"
	"repro/internal/caliper"
	"repro/internal/concretizer"
	"repro/internal/engine"
	"repro/internal/telemetry"
)

// UseCache attaches a durable content-addressed store to the
// deployment: the concretization memo and the binary cache persist
// through it, and every Session.Run consults the store's "run" layer
// to replay unchanged experiments. Passing nil detaches nothing —
// call it once, at deployment construction (cmd/benchpark --cache-dir,
// Automation over a shared CI cache).
func (bp *Benchpark) UseCache(st *cachekey.Store) {
	if st == nil {
		return
	}
	bp.Store = st
	if bp.Memo == nil {
		bp.Memo = concretizer.NewMemo()
	}
	bp.Memo.Persist(st.Layer("concretize"))
	bp.Cache.Persist(st.Layer("buildcache"))
}

// appendCacheStats prepends the upstream layers' traffic during this
// run (concretize memo, buildcache) to the engine report's cache
// table, which already carries the "run" layer, and mirrors the
// deltas into cache_hits_total / cache_misses_total counters labeled
// per layer — the same naming the engine uses for the run layer.
func (s *Session) appendCacheStats(ctx context.Context, rep *engine.Report,
	memoBefore concretizer.MemoStats, bcHits, bcMisses int) {
	if rep == nil {
		return
	}
	var upstream []engine.CacheStat
	memoAfter := s.Benchpark.Memo.Stats()
	if d := (engine.CacheStat{Layer: "concretize",
		Hits:   memoAfter.Hits - memoBefore.Hits,
		Misses: memoAfter.Misses - memoBefore.Misses}); d.Hits+d.Misses > 0 {
		upstream = append(upstream, d)
	}
	hitsAfter, missesAfter, _ := s.Benchpark.Cache.Stats()
	if d := (engine.CacheStat{Layer: "buildcache",
		Hits:   hitsAfter - bcHits,
		Misses: missesAfter - bcMisses}); d.Hits+d.Misses > 0 {
		upstream = append(upstream, d)
	}
	met := telemetry.FromContext(ctx).Metrics()
	for _, d := range upstream {
		met.Counter(fmt.Sprintf("cache_hits_total{layer=%q}", d.Layer)).Add(float64(d.Hits))
		met.Counter(fmt.Sprintf("cache_misses_total{layer=%q}", d.Layer)).Add(float64(d.Misses))
	}
	rep.Cache = append(upstream, rep.Cache...)
}

// ExperimentKey implements engine.CacheableRunner: the content key of
// one experiment's execution covers everything that can change its
// outcome — the suite and system coordinates, the experiment's
// rendered variables, environment, modifiers and batch script, its
// execution geometry, the run mode, and the lockfile of its software
// environment (so a dependency bump re-executes even when the
// experiment text is unchanged). cachekey.Hash folds in the schema
// and toolchain versions on top.
//
// The workspace root is normalized out of every rendered value: batch
// scripts and expanded variables legitimately embed the workspace
// path, but an experiment's outcome does not depend on where the
// workspace lives — the same normalization the determinism tests
// apply to committed artifacts.
func (r *sessionRunner) ExperimentKey(i int) cachekey.Key {
	e := r.exps[i]
	norm := func(v string) string {
		return strings.ReplaceAll(v, r.s.Workspace.Root, "$WORKSPACE")
	}
	normMap := func(m map[string]string) map[string]string {
		out := make(map[string]string, len(m))
		for k, v := range m {
			out[k] = norm(v)
		}
		return out
	}
	lock := ""
	if lf, ok := r.s.Lockfiles[e.App.Name]; ok {
		j, err := lf.JSON()
		if err != nil {
			return "" // no provenance, no caching
		}
		lock = j
	}
	in := struct {
		Suite      string
		System     string
		Experiment string
		App        string
		Workload   string
		Batched    bool
		Vars       map[string]string
		Env        map[string]string
		Modifiers  []string
		Script     string
		NNodes     int
		ProcsNode  int
		NRanks     int
		NThreads   int
		Lockfile   string
	}{
		Suite:      r.s.Suite,
		System:     r.s.System.Name,
		Experiment: e.Name,
		App:        e.App.Name,
		Workload:   e.Workload,
		Batched:    r.batched,
		Vars:       normMap(expandedVars(e)),
		Env:        normMap(e.Env),
		Modifiers:  e.Modifiers,
		Script:     norm(e.Script),
		NNodes:     e.NNodes,
		ProcsNode:  e.ProcsPerNode,
		NRanks:     e.NRanks,
		NThreads:   e.NThreads,
		Lockfile:   lock,
	}
	return cachekey.Hash(in).Derive("execute")
}

// cachedOutcome is the serialized form of one successful execution:
// the kernel's text output and elapsed time, the Caliper profile, and
// the Adiak metadata — everything Commit needs to settle the
// experiment exactly as a fresh execution would.
type cachedOutcome struct {
	Text    string            `json:"text"`
	Elapsed float64           `json:"elapsed_s"`
	Profile string            `json:"profile,omitempty"`
	Meta    map[string]string `json:"meta,omitempty"`
}

// MarshalExperiment implements engine.CacheableRunner; the engine
// calls it only after a successful Execute.
func (r *sessionRunner) MarshalExperiment(i int) ([]byte, error) {
	out := r.outs[i]
	if out == nil {
		return nil, fmt.Errorf("core: experiment %d has no output to cache", i)
	}
	co := cachedOutcome{Text: out.Text, Elapsed: out.Elapsed}
	if out.Profile != nil {
		p, err := out.Profile.JSON()
		if err != nil {
			return nil, err
		}
		co.Profile = p
	}
	if out.Metadata != nil {
		co.Meta = map[string]string{}
		for _, name := range out.Metadata.Names() {
			if v, ok := out.Metadata.Get(name); ok {
				co.Meta[name] = v
			}
		}
	}
	return json.Marshal(co)
}

// RestoreExperiment implements engine.CacheableRunner: it reinstates
// the cached outcome in the experiment's execution slots, so the
// sequential Commit stage — scheduler submission, profile into the
// thicket, .cali/.out files — replays identically to a cold run. Any
// decode failure returns an error and the engine re-executes.
func (r *sessionRunner) RestoreExperiment(_ context.Context, i int, data []byte) error {
	var co cachedOutcome
	if err := json.Unmarshal(data, &co); err != nil {
		return err
	}
	out := &bench.Output{Text: co.Text, Elapsed: co.Elapsed}
	if co.Profile != "" {
		p, err := caliper.ParseProfile(co.Profile)
		if err != nil {
			return err
		}
		out.Profile = p
	}
	md := adiak.New()
	names := make([]string, 0, len(co.Meta))
	for name := range co.Meta {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		md.Set(name, co.Meta[name])
	}
	out.Metadata = md
	r.outs[i], r.errs[i] = out, nil
	return nil
}
