// Package core is Benchpark itself: the driver that combines the
// Spack layer (spec/concretizer/install), the Ramble layer
// (workspaces/experiments), the system models, the batch scheduler,
// the benchmarks, and the analysis stack (Caliper/Adiak/Thicket/
// Extra-P) into the collaborative continuous benchmarking workflow of
// the paper — Figure 1's directory structure, component interaction,
// and nine-step user workflow.
package core

import (
	"fmt"
	"strings"

	"repro/internal/concretizer"
	"repro/internal/hpcsim"
)

// SystemConfigs renders the system-specific configuration files of
// Figure 1a's configs/<system>/ directory: compilers.yaml,
// packages.yaml (Figure 4), spack.yaml (Figure 9) and variables.yaml
// (Figure 12), derived from the simulated system's profile.
func SystemConfigs(sys *hpcsim.System) (map[string]string, error) {
	arch, err := sys.Microarch()
	if err != nil {
		return nil, err
	}
	compiler, mpi, blas := systemToolchain(sys)

	var compilers strings.Builder
	compilers.WriteString("compilers:\n")
	for _, c := range []string{compiler, "gcc@12.1.1"} {
		fmt.Fprintf(&compilers, "- compiler:\n    spec: %s\n    prefix: /usr/tce/%s\n",
			c, strings.ReplaceAll(c, "@", "-"))
		if c == compiler && compiler == "gcc@12.1.1" {
			break // avoid duplicating gcc
		}
	}

	var packages strings.Builder
	packages.WriteString("packages:\n")
	fmt.Fprintf(&packages, "  mpi:\n    externals:\n    - spec: %s\n      prefix: /usr/tce/%s\n    buildable: false\n",
		mpi, specDir(mpi))
	fmt.Fprintf(&packages, "  blas:\n    externals:\n    - spec: %s\n      prefix: /usr/tce/%s\n    buildable: false\n",
		blas, specDir(blas))
	fmt.Fprintf(&packages, "  lapack:\n    externals:\n    - spec: %s\n      prefix: /usr/tce/%s\n    buildable: false\n",
		blas, specDir(blas))
	fmt.Fprintf(&packages, "  all:\n    compiler: [%s]\n    target: [%s]\n", compiler, arch.Name)

	// spack.yaml: the named package aliases of Figure 9.
	var spack strings.Builder
	spack.WriteString("spack:\n  packages:\n")
	fmt.Fprintf(&spack, "    default-compiler:\n      spack_spec: %s\n", compiler)
	fmt.Fprintf(&spack, "    default-mpi:\n      spack_spec: %s\n", mpi)
	fmt.Fprintf(&spack, "    blas:\n      spack_spec: %s\n", blas)
	fmt.Fprintf(&spack, "    lapack:\n      spack_spec: %s\n", blas)

	// variables.yaml: scheduler and launcher (Figure 12).
	var variables strings.Builder
	variables.WriteString("variables:\n")
	switch sys.Scheduler {
	case "lsf":
		variables.WriteString("  mpi_command: 'jsrun -n {n_ranks} -r {processes_per_node}'\n")
		variables.WriteString("  batch_submit: 'bsub {execute_experiment}'\n")
		variables.WriteString("  batch_nodes: '#BSUB -nnodes {n_nodes}'\n")
		variables.WriteString("  batch_ranks: '#SBATCH -n {n_ranks}'\n")
	case "flux":
		variables.WriteString("  mpi_command: 'flux run -N {n_nodes} -n {n_ranks}'\n")
		variables.WriteString("  batch_submit: 'flux batch {execute_experiment}'\n")
		variables.WriteString("  batch_nodes: '#flux: -N {n_nodes}'\n")
		variables.WriteString("  batch_ranks: '#SBATCH -n {n_ranks}'\n")
	default: // slurm
		variables.WriteString("  mpi_command: 'srun -N {n_nodes} -n {n_ranks}'\n")
		variables.WriteString("  batch_submit: 'sbatch {execute_experiment}'\n")
		variables.WriteString("  batch_nodes: '#SBATCH -N {n_nodes}'\n")
		variables.WriteString("  batch_ranks: '#SBATCH -n {n_ranks}'\n")
	}
	variables.WriteString("  batch_timeout: '#SBATCH -t {batch_time}:00'\n")
	fmt.Fprintf(&variables, "  system: %s\n", sys.Name)
	fmt.Fprintf(&variables, "  scheduler: %s\n", sys.Scheduler)
	fmt.Fprintf(&variables, "  launcher: '%s'\n", sys.Launcher)
	fmt.Fprintf(&variables, "  sys_cores_per_node: '%d'\n", sys.Node.Cores())

	return map[string]string{
		"compilers.yaml": compilers.String(),
		"packages.yaml":  packages.String(),
		"spack.yaml":     spack.String(),
		"variables.yaml": variables.String(),
	}, nil
}

// systemToolchain picks the site toolchain (compiler, MPI, BLAS) the
// way facility staff would for each Section 4 system.
func systemToolchain(sys *hpcsim.System) (compiler, mpi, blas string) {
	switch sys.CPU.Family {
	case "ppc64le":
		return "gcc@12.1.1", "spectrum-mpi@10.4.0", "essl@6.3.0"
	case "aarch64":
		return "gcc@12.1.1", "openmpi@4.1.4", "openblas@0.3.20"
	}
	switch {
	case sys.CPU.VendorID == "AuthenticAMD":
		return "gcc@12.1.1", "cray-mpich@8.1.16", "openblas@0.3.20"
	case sys.Site == "AWS":
		return "gcc@12.1.1", "openmpi@4.1.4", "intel-oneapi-mkl@2022.1.0"
	default:
		return "gcc@12.1.1", "mvapich2@2.3.7", "intel-oneapi-mkl@2022.1.0"
	}
}

func specDir(s string) string { return strings.ReplaceAll(s, "@", "-") }

// ConcretizerConfig builds the concretizer configuration for a system
// by loading its generated packages.yaml and compilers.yaml — the
// same path a user-provided config would take.
func ConcretizerConfig(sys *hpcsim.System) (*concretizer.Config, error) {
	files, err := SystemConfigs(sys)
	if err != nil {
		return nil, err
	}
	cfg := concretizer.NewConfig()
	cfg.Platform = "linux"
	if err := cfg.LoadCompilersYAML(files["compilers.yaml"]); err != nil {
		return nil, err
	}
	if err := cfg.LoadPackagesYAML(files["packages.yaml"]); err != nil {
		return nil, err
	}
	// Provider preferences follow the externals.
	_, mpi, blas := systemToolchain(sys)
	cfg.ProviderPrefs["mpi"] = []string{specName(mpi)}
	cfg.ProviderPrefs["blas"] = []string{specName(blas)}
	cfg.ProviderPrefs["lapack"] = []string{specName(blas)}
	cfg.ReuseFromContext = true
	return cfg, nil
}

func specName(s string) string {
	if i := strings.IndexByte(s, '@'); i >= 0 {
		return s[:i]
	}
	return s
}

// ExperimentTemplates returns the ramble.yaml text for a named
// experiment suite on a system — the "$experiment" argument of the
// Figure 1c workflow (`benchpark $experiment $system $workspace`).
// Suites are "<benchmark>/<variant-or-workload>".
func ExperimentTemplates() []string {
	out := make([]string, 0, len(experimentSuites))
	for name := range experimentSuites {
		out = append(out, name)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// suiteDef generates a ramble.yaml given the system (for GPU counts
// and core counts).
type suiteDef func(sys *hpcsim.System) (string, error)

var experimentSuites = map[string]suiteDef{
	"saxpy/openmp": func(sys *hpcsim.System) (string, error) {
		return saxpySuite(sys, "openmp")
	},
	"saxpy/cuda": func(sys *hpcsim.System) (string, error) {
		return saxpySuite(sys, "cuda")
	},
	"saxpy/rocm": func(sys *hpcsim.System) (string, error) {
		return saxpySuite(sys, "rocm")
	},
	"amg2023/openmp": func(sys *hpcsim.System) (string, error) {
		return amgSuite(sys, "openmp")
	},
	"amg2023/cuda": func(sys *hpcsim.System) (string, error) {
		return amgSuite(sys, "cuda")
	},
	"amg2023/rocm": func(sys *hpcsim.System) (string, error) {
		return amgSuite(sys, "rocm")
	},
	"amg2023/cube": func(sys *hpcsim.System) (string, error) {
		return amgCubeSuite(sys)
	},
	"stream/triad": func(sys *hpcsim.System) (string, error) {
		return streamSuite(sys)
	},
	"hpcg/hpcg": func(sys *hpcsim.System) (string, error) {
		return hpcgSuite(sys)
	},
	"lulesh/hydro": func(sys *hpcsim.System) (string, error) {
		return luleshSuite(sys)
	},
	"osu/bcast": func(sys *hpcsim.System) (string, error) {
		return osuSuite(sys, "osu_bcast")
	},
	"osu/allreduce": func(sys *hpcsim.System) (string, error) {
		return osuSuite(sys, "osu_allreduce")
	},
}

func checkGPU(sys *hpcsim.System, variant string) error {
	if variant != "cuda" && variant != "rocm" {
		return nil
	}
	if sys.Node.GPU == nil {
		return fmt.Errorf("benchpark: system %s has no GPUs for variant %s", sys.Name, variant)
	}
	if sys.Node.GPU.Runtime != variant {
		return fmt.Errorf("benchpark: system %s GPUs use %s, not %s", sys.Name, sys.Node.GPU.Runtime, variant)
	}
	return nil
}

// saxpySuite is the paper's Figure 10 configuration, with the GPU
// variants of Figure 1a's experiments/saxpy/{cuda,rocm} directories.
func saxpySuite(sys *hpcsim.System, variant string) (string, error) {
	if err := checkGPU(sys, variant); err != nil {
		return "", err
	}
	spackVariant := "+openmp"
	if variant != "openmp" {
		spackVariant = "+" + variant + "~openmp"
	}
	return fmt.Sprintf(`
ramble:
  include:
  - ./configs/spack.yaml
  - ./configs/variables.yaml
  applications:
    saxpy:
      workloads:
        problem:
          env_vars:
            set:
              OMP_NUM_THREADS: '{n_threads}'
          variables:
            variant: '%s'
            batch_time: '120'
          experiments:
            saxpy_%s_{n}_{n_nodes}_{n_ranks}_{n_threads}:
              variables:
                processes_per_node: ['8', '4']
                n_nodes: ['1', '2']
                n_threads: ['2', '4']
                n: ['512', '1024']
              matrices:
              - size_threads:
                - n
                - n_threads
  spack:
    packages:
      saxpy:
        spack_spec: saxpy@1.0.0 %s ^cmake@3.23.1
        compiler: default-compiler
    environments:
      saxpy:
        packages:
        - default-mpi
        - saxpy
`, variant, variant, spackVariant), nil
}

func amgSuite(sys *hpcsim.System, variant string) (string, error) {
	if err := checkGPU(sys, variant); err != nil {
		return "", err
	}
	spackVariant := "+caliper"
	if variant != "openmp" {
		spackVariant += "+" + variant
	} else {
		spackVariant += "+openmp"
	}
	ppn := 8
	if variant != "openmp" && sys.Node.GPU != nil {
		ppn = sys.Node.GPU.PerNode // one rank per GPU
	}
	return fmt.Sprintf(`
ramble:
  include:
  - ./configs/spack.yaml
  - ./configs/variables.yaml
  applications:
    amg2023:
      workloads:
        problem1:
          variables:
            variant: '%s'
            batch_time: '120'
            processes_per_node: '%d'
            nx: '32'
            ny: '32'
            nz: '32'
          experiments:
            amg2023_%s_{n_nodes}_{n_ranks}:
              variables:
                n_nodes: ['1', '2']
  spack:
    packages:
      amg2023:
        spack_spec: amg2023@1.0 %s ^hypre@2.28.0
        compiler: default-compiler
    environments:
      amg2023:
        packages:
        - default-mpi
        - amg2023
`, variant, ppn, variant, spackVariant), nil
}

// amgCubeSuite runs AMG with a 2x2x2 process cube — the 3-D
// decomposition path of the proxy.
func amgCubeSuite(sys *hpcsim.System) (string, error) {
	return `
ramble:
  include:
  - ./configs/spack.yaml
  - ./configs/variables.yaml
  applications:
    amg2023:
      workloads:
        problem1:
          variables:
            batch_time: '120'
            processes_per_node: '8'
            n_nodes: '1'
            px: '2'
            py: '2'
            pz: '2'
            nx: '16'
            ny: '16'
            nz: '16'
          experiments:
            amg2023_cube_{px}x{py}x{pz}:
              variables:
                tolerance: '1e-6'
  spack:
    packages:
      amg2023:
        spack_spec: amg2023@1.0 +caliper ^hypre@2.28.0
        compiler: default-compiler
    environments:
      amg2023:
        packages:
        - default-mpi
        - amg2023
`, nil
}

func streamSuite(sys *hpcsim.System) (string, error) {
	return fmt.Sprintf(`
ramble:
  include:
  - ./configs/spack.yaml
  - ./configs/variables.yaml
  applications:
    stream:
      workloads:
        triad:
          variables:
            batch_time: '30'
            processes_per_node: '1'
            n_threads: '%d'
          experiments:
            stream_{n}_{n_nodes}:
              variables:
                n_nodes: '1'
                n: '10000000'
  spack:
    packages:
      stream:
        spack_spec: stream@5.10 +openmp
        compiler: default-compiler
    environments:
      stream:
        packages:
        - stream
`, sys.Node.Cores()), nil
}

func hpcgSuite(sys *hpcsim.System) (string, error) {
	return `
ramble:
  include:
  - ./configs/spack.yaml
  - ./configs/variables.yaml
  applications:
    hpcg:
      workloads:
        hpcg:
          modifiers:
          - papi
          variables:
            batch_time: '60'
            processes_per_node: '8'
            nx: '16'
            ny: '16'
            nz: '16'
          experiments:
            hpcg_{n_nodes}_{n_ranks}:
              variables:
                n_nodes: ['1', '2']
  spack:
    packages:
      hpcg:
        spack_spec: hpcg@3.1 +openmp
        compiler: default-compiler
    environments:
      hpcg:
        packages:
        - default-mpi
        - hpcg
`, nil
}

func luleshSuite(sys *hpcsim.System) (string, error) {
	return `
ramble:
  include:
  - ./configs/spack.yaml
  - ./configs/variables.yaml
  applications:
    lulesh:
      workloads:
        hydro:
          variables:
            batch_time: '60'
            processes_per_node: '8'
            size: '16'
            iterations: '20'
          experiments:
            lulesh_{size}_{n_nodes}_{n_ranks}:
              variables:
                n_nodes: ['1', '2']
  spack:
    packages:
      lulesh:
        spack_spec: lulesh@2.0.3 +openmp
        compiler: default-compiler
    environments:
      lulesh:
        packages:
        - default-mpi
        - lulesh
`, nil
}

func osuSuite(sys *hpcsim.System, workload string) (string, error) {
	ppn := sys.Node.Cores()
	return fmt.Sprintf(`
ramble:
  include:
  - ./configs/spack.yaml
  - ./configs/variables.yaml
  applications:
    osu-micro-benchmarks:
      workloads:
        %s:
          variables:
            workload: '%s'
            batch_time: '60'
            processes_per_node: '%d'
            message_size: '8192'
            iterations: '32000'
          experiments:
            %s_{n_ranks}:
              variables:
                n_nodes: ['1', '2', '4']
  spack:
    packages:
      osu-micro-benchmarks:
        spack_spec: osu-micro-benchmarks@6.1
        compiler: default-compiler
    environments:
      osu-micro-benchmarks:
        packages:
        - default-mpi
        - osu-micro-benchmarks
`, workload, workload, ppn, workload), nil
}
