package core

import (
	"fmt"
	"io"
	"os"

	"repro/internal/buildcache"
	"repro/internal/concretizer"
	"repro/internal/env"
	"repro/internal/hpcsim"
	"repro/internal/install"
	"repro/internal/pkgrepo"
)

// GenerateReport runs the reproduction experiments and writes a
// markdown paper-vs-measured report — the programmatic counterpart of
// EXPERIMENTS.md. With full=true the Figure 14 sweep extends to the
// paper's 3456 processes (minutes of wall time); otherwise a reduced
// sweep is used.
func GenerateReport(w io.Writer, full bool) error {
	bp := New()
	fmt.Fprintf(w, "# Benchpark reproduction report\n\n")
	fmt.Fprintf(w, "Regenerated programmatically by `benchpark report`.\n\n")

	// ---- Table 1 -------------------------------------------------------
	fmt.Fprintf(w, "## Table 1 — component matrix\n\n```\n%s```\n\n", ComponentTable())

	// ---- Figure 10 matrix ------------------------------------------------
	dir, err := os.MkdirTemp("", "benchpark-report-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	sess, err := bp.Setup("saxpy/openmp", "cts1", dir)
	if err != nil {
		return err
	}
	rep, err := sess.RunAll()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Figures 7-13 — the saxpy suite on cts1\n\n")
	fmt.Fprintf(w, "Paper: 8 experiments (size_threads matrix × zipped vectors), FOM `Kernel done`.\n\n")
	fmt.Fprintf(w, "| experiment | status | saxpy_time (s) |\n|---|---|---|\n")
	for _, e := range rep.Experiments {
		fmt.Fprintf(w, "| %s | %s | %s |\n", e.Name, e.Status, e.FOMs["saxpy_time"])
	}
	fmt.Fprintf(w, "\nMeasured: %d/%d passed.\n\n", rep.Succeeded, rep.Total)

	// ---- Section 4 matrix ---------------------------------------------------
	fmt.Fprintf(w, "## Section 4 — benchmarks × systems\n\n")
	fmt.Fprintf(w, "| suite | system | experiments | passed |\n|---|---|---|---|\n")
	for _, cell := range []struct{ suite, system string }{
		{"saxpy/openmp", "cts1"}, {"amg2023/openmp", "cts1"},
		{"saxpy/cuda", "ats2"}, {"amg2023/cuda", "ats2"},
		{"saxpy/rocm", "ats4"}, {"amg2023/rocm", "ats4"},
	} {
		d, err := os.MkdirTemp("", "benchpark-report-*")
		if err != nil {
			return err
		}
		s, err := bp.Setup(cell.suite, cell.system, d)
		if err != nil {
			return err
		}
		r, err := s.RunAll()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "| %s | %s | %d | %d |\n", cell.suite, cell.system, r.Total, r.Succeeded)
		os.RemoveAll(d)
	}
	fmt.Fprintln(w)

	// ---- Figure 14 ---------------------------------------------------------------
	scales := []int{36, 72, 144, 288, 576, 1152}
	if full {
		scales = []int{64, 128, 256, 512, 1024, 2048, 3456}
	}
	study, err := Figure14Study(scales)
	if err != nil {
		return err
	}
	res, err := study.Run(bp)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Figure 14 — Extra-P model of MPI_Bcast on CTS\n\n")
	fmt.Fprintf(w, "Paper model: `-0.6355857931034596 + 0.04660217702356169 * p^(1)`\n\n")
	fmt.Fprintf(w, "Measured model: `%s` (adj. R² %.4f, SMAPE %.2f%%)\n\n",
		res.Model, res.Model.RSquared, res.Model.SMAPE)
	fmt.Fprintf(w, "| nprocs | measured (s) | model (s) |\n|---|---|---|\n")
	for _, m := range res.Measurements {
		fmt.Fprintf(w, "| %.0f | %.3f | %.3f |\n", m.P, m.Value, res.Model.Eval(m.P))
	}
	match := "MATCH"
	if res.Model.I != 1 || res.Model.J != 0 {
		match = "MISMATCH"
	}
	fmt.Fprintf(w, "\nModel family: p^(%g)·log2^%d — %s with the paper's linear term.\n\n",
		res.Model.I, res.Model.J, match)

	// ---- Ablations -----------------------------------------------------------------
	fmt.Fprintf(w, "## Ablations\n\n")
	cts, err := hpcsim.Get("cts1")
	if err != nil {
		return err
	}
	// A1: unify
	counts := map[bool]int{}
	for _, unify := range []bool{true, false} {
		cfg, err := ConcretizerConfig(cts)
		if err != nil {
			return err
		}
		e := env.New("report-a1")
		_ = e.Add("adiak ^cmake@3.20.6")
		_ = e.Add("amg2023+caliper")
		e.Unify = unify
		if err := e.Concretize(concretizer.New(pkgrepo.Builtin(), cfg)); err != nil {
			return err
		}
		counts[unify] = e.DistinctInstalls()
	}
	fmt.Fprintf(w, "- **A1 unified concretization**: unify=true → %d installs; unify=false → %d installs\n",
		counts[true], counts[false])

	// A2: binary cache
	cfg, err := ConcretizerConfig(cts)
	if err != nil {
		return err
	}
	e := env.New("report-a2")
	_ = e.Add("amg2023+caliper")
	if err := e.Concretize(concretizer.New(pkgrepo.Builtin(), cfg)); err != nil {
		return err
	}
	cache := buildcache.New()
	siteA := install.New(pkgrepo.Builtin())
	siteA.Cache = cache
	siteA.PushToCache = true
	repA, err := e.Install(siteA)
	if err != nil {
		return err
	}
	siteB := install.New(pkgrepo.Builtin())
	siteB.Cache = cache
	repB, err := e.Install(siteB)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "- **A2 binary cache**: source %.0fs vs cache %.0fs simulated (%.1fx)\n",
		repA.Makespan, repB.Makespan, repA.Makespan/repB.Makespan)
	fmt.Fprintf(w, "\n_Generated on simulated hardware; see DESIGN.md §2 for substitutions._\n")
	return nil
}
