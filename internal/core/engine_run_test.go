package core

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/metricsdb"
)

// TestRunDeterministicAcrossJobs is the engine's core guarantee: the
// concurrent matrix (jobs=8) produces a byte-identical results
// artifact — same FOMs, same statuses, same ordering — as the
// sequential matrix (jobs=1).
func TestRunDeterministicAcrossJobs(t *testing.T) {
	runOnce := func(jobs int) ([]byte, []metricsdb.Result, *engine.Report) {
		t.Helper()
		bp := New()
		dir := t.TempDir()
		sess, err := bp.Setup("saxpy/openmp", "cts1", dir)
		if err != nil {
			t.Fatal(err)
		}
		rep, erep, err := sess.Run(context.Background(), RunOptions{Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if rep.Failed != 0 {
			t.Fatalf("jobs=%d: %d experiments failed", jobs, rep.Failed)
		}
		artifact, err := os.ReadFile(filepath.Join(dir, "logs", "results.json"))
		if err != nil {
			t.Fatal(err)
		}
		return artifact, bp.Metrics.Query(metricsdb.Filter{}), erep
	}

	serial, serialMetrics, _ := runOnce(1)
	concurrent, concurrentMetrics, erep := runOnce(8)

	if erep.Jobs < 2 {
		t.Fatalf("engine resolved %d workers, want a genuinely concurrent pool", erep.Jobs)
	}
	if string(serial) != string(concurrent) {
		t.Errorf("results.json differs between jobs=1 and jobs=8:\n--- serial ---\n%s\n--- concurrent ---\n%s",
			serial, concurrent)
	}
	if len(serialMetrics) != len(concurrentMetrics) {
		t.Fatalf("metrics count: %d vs %d", len(serialMetrics), len(concurrentMetrics))
	}
	for i := range serialMetrics {
		a, b := serialMetrics[i], concurrentMetrics[i]
		if a.Experiment != b.Experiment || a.Seq != b.Seq {
			t.Errorf("metrics stream diverges at %d: %s/%d vs %s/%d",
				i, a.Experiment, a.Seq, b.Experiment, b.Seq)
		}
		for k, v := range a.FOMs {
			if b.FOMs[k] != v {
				t.Errorf("%s: FOM %s = %v vs %v", a.Experiment, k, v, b.FOMs[k])
			}
		}
	}
}

// TestRunRepeatableByteIdentical is the regression test behind the
// determinism analyzer's wall-clock audit: two runs of the same
// matrix — same suite, same system, fresh deployments — must leave
// byte-identical artifacts behind (results.json, per-experiment .out
// and .cali files) and identical metrics streams. Any wall-clock
// read, unseeded randomness, or map-ordered commit leaking into the
// committed results breaks this.
func TestRunRepeatableByteIdentical(t *testing.T) {
	runOnce := func() (map[string]string, []metricsdb.Result) {
		t.Helper()
		bp := New()
		dir := t.TempDir()
		sess, err := bp.Setup("saxpy/openmp", "cts1", dir)
		if err != nil {
			t.Fatal(err)
		}
		rep, _, err := sess.Run(context.Background(), RunOptions{Jobs: 8})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed != 0 {
			t.Fatalf("%d experiments failed", rep.Failed)
		}
		artifacts := map[string]string{}
		err = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
			if err != nil || info.IsDir() {
				return err
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			rel, err := filepath.Rel(dir, path)
			if err != nil {
				return err
			}
			// Batch scripts legitimately embed the workspace path;
			// normalize it so only real nondeterminism can differ.
			artifacts[rel] = strings.ReplaceAll(string(data), dir, "$WORKSPACE")
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return artifacts, bp.Metrics.Query(metricsdb.Filter{})
	}

	first, firstMetrics := runOnce()
	second, secondMetrics := runOnce()

	if len(first) == 0 {
		t.Fatal("run left no artifacts behind")
	}
	for rel, data := range first {
		other, ok := second[rel]
		if !ok {
			t.Errorf("second run is missing artifact %s", rel)
			continue
		}
		if data != other {
			t.Errorf("artifact %s differs between identical runs", rel)
		}
	}
	for rel := range second {
		if _, ok := first[rel]; !ok {
			t.Errorf("second run grew an extra artifact %s", rel)
		}
	}
	if len(firstMetrics) != len(secondMetrics) {
		t.Fatalf("metrics count: %d vs %d", len(firstMetrics), len(secondMetrics))
	}
	for i := range firstMetrics {
		a, b := firstMetrics[i], secondMetrics[i]
		if a.Experiment != b.Experiment || a.Manifest != b.Manifest {
			t.Errorf("metrics stream diverges at %d: %s vs %s", i, a.Experiment, b.Experiment)
		}
		for k, v := range a.FOMs {
			if b.FOMs[k] != v {
				t.Errorf("%s: FOM %s = %v vs %v", a.Experiment, k, v, b.FOMs[k])
			}
		}
	}
}

// TestRunBatchedDeterministicAcrossJobs: the batched path (single
// queue drain) is deterministic under concurrency too.
func TestRunBatchedDeterministicAcrossJobs(t *testing.T) {
	runOnce := func(jobs int) []byte {
		t.Helper()
		bp := New()
		dir := t.TempDir()
		sess, err := bp.Setup("saxpy/openmp", "cts1", dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := sess.Run(context.Background(), RunOptions{Jobs: jobs, Batched: true}); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		artifact, err := os.ReadFile(filepath.Join(dir, "logs", "results.json"))
		if err != nil {
			t.Fatal(err)
		}
		return artifact
	}
	if a, b := runOnce(1), runOnce(8); string(a) != string(b) {
		t.Errorf("batched results.json differs between jobs=1 and jobs=8")
	}
}

// TestRunCancellation: a cancelled context yields a typed engine
// error and a partial report instead of a hang or a silent success.
func TestRunCancellation(t *testing.T) {
	bp := New()
	sess, err := bp.Setup("saxpy/openmp", "cts1", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first stage
	rep, erep, err := sess.Run(ctx, RunOptions{})
	if err == nil {
		t.Fatal("cancelled run must fail")
	}
	var se *engine.StageError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T, want *engine.StageError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error must unwrap to context.Canceled: %v", err)
	}
	if se.System != "saxpy/openmp@cts1" {
		t.Errorf("stage error system = %q", se.System)
	}
	if erep == nil || !erep.Cancelled {
		t.Errorf("engine report = %+v, want Cancelled", erep)
	}
	if rep != nil {
		t.Errorf("no analysis should exist for a run cancelled before setup")
	}
	if bp.Metrics.Len() != 0 {
		t.Errorf("cancelled run recorded %d metrics", bp.Metrics.Len())
	}
}

// TestRunTimeoutOption: RunOptions.Timeout flows into the engine
// context and expires the run.
func TestRunTimeoutOption(t *testing.T) {
	bp := New()
	sess, err := bp.Setup("saxpy/openmp", "cts1", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, erep, err := sess.Run(context.Background(), RunOptions{Timeout: 1})
	if err == nil {
		t.Fatal("1ns timeout must fail the run")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want deadline exceeded", err)
	}
	if !erep.Cancelled {
		t.Errorf("report = %+v", erep)
	}
}

// TestScalingStudyDeterministicAcrossJobs: the concurrent scaling
// sweep commits measurements and metrics in sweep order, matching the
// sequential study exactly.
func TestScalingStudyDeterministicAcrossJobs(t *testing.T) {
	runOnce := func(jobs int) (*StudyResult, []metricsdb.Result) {
		t.Helper()
		study, err := Figure14Study([]int{36, 72, 144, 288})
		if err != nil {
			t.Fatal(err)
		}
		bp := New()
		res, err := study.RunContext(context.Background(), bp, jobs)
		if err != nil {
			t.Fatal(err)
		}
		return res, bp.Metrics.Query(metricsdb.Filter{})
	}
	serial, serialMetrics := runOnce(1)
	concurrent, concurrentMetrics := runOnce(8)
	if len(serial.Measurements) != len(concurrent.Measurements) {
		t.Fatalf("measurement counts differ")
	}
	for i := range serial.Measurements {
		a, b := serial.Measurements[i], concurrent.Measurements[i]
		if a.P != b.P || a.Value != b.Value {
			t.Errorf("measurement %d: %v vs %v", i, a, b)
		}
	}
	if serial.Model.String() != concurrent.Model.String() {
		t.Errorf("models differ: %s vs %s", serial.Model, concurrent.Model)
	}
	if len(serialMetrics) != len(concurrentMetrics) {
		t.Fatalf("metrics count: %d vs %d", len(serialMetrics), len(concurrentMetrics))
	}
	for i := range serialMetrics {
		if serialMetrics[i].Experiment != concurrentMetrics[i].Experiment {
			t.Errorf("metrics order diverges at %d", i)
		}
	}
}
