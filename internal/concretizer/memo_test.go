package concretizer

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cachekey"
	"repro/internal/pkgrepo"
	"repro/internal/spec"
)

func TestMemoHitReplaysEqualResult(t *testing.T) {
	c := newC(t)
	c.Memo = NewMemo()
	roots := []*spec.Spec{spec.MustParse("saxpy@1.0.0 +openmp ^cmake@3.23.1")}

	cold, err := c.ConcretizeTogether(roots)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := c.ConcretizeTogether([]*spec.Spec{spec.MustParse("saxpy@1.0.0 +openmp ^cmake@3.23.1")})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Memo.Stats(); got.Hits != 1 || got.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit 1 miss", got)
	}
	if cold[0].DAGHash() != warm[0].DAGHash() {
		t.Errorf("memo hit must replay the identical DAG:\ncold %s\nwarm %s", cold[0], warm[0])
	}
	if cold[0] == warm[0] {
		t.Error("memo hit must decode a fresh DAG, not alias the cold result")
	}
	if !warm[0].IsConcrete() {
		t.Error("replayed root not concrete")
	}
}

func TestMemoKeySensitivity(t *testing.T) {
	c := newC(t)
	c.Memo = NewMemo()
	if _, err := c.ConcretizeTogether([]*spec.Spec{spec.MustParse("saxpy@1.0.0")}); err != nil {
		t.Fatal(err)
	}

	// A different abstract root is a miss.
	if _, err := c.ConcretizeTogether([]*spec.Spec{spec.MustParse("saxpy@1.0.0 +openmp")}); err != nil {
		t.Fatal(err)
	}
	if got := c.Memo.Stats(); got.Hits != 0 || got.Misses != 2 {
		t.Fatalf("stats after distinct roots = %+v, want 0 hits 2 misses", got)
	}

	// A configuration change is a miss even for the same root.
	c.Config.VariantPrefs["saxpy"] = "+openmp"
	if _, err := c.ConcretizeTogether([]*spec.Spec{spec.MustParse("saxpy@1.0.0")}); err != nil {
		t.Fatal(err)
	}
	if got := c.Memo.Stats(); got.Hits != 0 || got.Misses != 3 {
		t.Fatalf("stats after config change = %+v, want 0 hits 3 misses", got)
	}
}

func TestConfigFingerprintSensitivity(t *testing.T) {
	base := testConfig(t).Fingerprint()
	if !base.Valid() {
		t.Fatalf("fingerprint %q invalid", base)
	}
	if testConfig(t).Fingerprint() != base {
		t.Error("equal configs must fingerprint equally")
	}

	mut := testConfig(t)
	mut.Target = "zen2"
	if mut.Fingerprint() == base {
		t.Error("target change must change the fingerprint")
	}

	mut = testConfig(t)
	if err := mut.AddCompiler("clang@14.0.6", "/usr/bin"); err != nil {
		t.Fatal(err)
	}
	if mut.Fingerprint() == base {
		t.Error("compiler change must change the fingerprint")
	}

	mut = testConfig(t)
	mut.ReuseInstalled = []*spec.Spec{mustConcrete(t, "cmake@3.23.1")}
	if mut.Fingerprint() == base {
		t.Error("reuse set change must change the fingerprint")
	}
}

func mustConcrete(t *testing.T, s string) *spec.Spec {
	t.Helper()
	got, err := New(pkgrepo.Builtin(), testConfig(t)).Concretize(spec.MustParse(s))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestMemoDurableLayerSharedAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	st1, err := cachekey.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1 := newC(t)
	c1.Memo = NewMemo()
	c1.Memo.Persist(st1.Layer("concretize"))
	cold, err := c1.ConcretizeTogether([]*spec.Spec{spec.MustParse("saxpy@1.0.0 +openmp")})
	if err != nil {
		t.Fatal(err)
	}

	// A second memo over the same store directory (a new process in a
	// CI pipeline) hits without solving.
	st2, err := cachekey.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := newC(t)
	c2.Memo = NewMemo()
	c2.Memo.Persist(st2.Layer("concretize"))
	warm, err := c2.ConcretizeTogether([]*spec.Spec{spec.MustParse("saxpy@1.0.0 +openmp")})
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Memo.Stats(); got.Hits != 1 || got.Misses != 0 {
		t.Errorf("durable stats = %+v, want 1 hit 0 misses", got)
	}
	if cold[0].DAGHash() != warm[0].DAGHash() {
		t.Errorf("durable hit must replay the identical DAG")
	}
}

func TestMemoCorruptDurableEntryIsColdMiss(t *testing.T) {
	dir := t.TempDir()
	st, err := cachekey.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := newC(t)
	c.Memo = NewMemo()
	c.Memo.Persist(st.Layer("concretize"))
	if _, err := c.ConcretizeTogether([]*spec.Spec{spec.MustParse("saxpy@1.0.0")}); err != nil {
		t.Fatal(err)
	}

	// Corrupt every persisted entry on disk.
	root := filepath.Join(dir, "concretize")
	err = filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		return os.WriteFile(path, []byte("garbage"), 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}

	// A fresh memo over the corrupted store must re-solve, not fail.
	st2, err := cachekey.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := newC(t)
	c2.Memo = NewMemo()
	c2.Memo.Persist(st2.Layer("concretize"))
	got, err := c2.ConcretizeTogether([]*spec.Spec{spec.MustParse("saxpy@1.0.0")})
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].IsConcrete() {
		t.Error("re-solve after corruption must yield a concrete spec")
	}
	if s := c2.Memo.Stats(); s.Hits != 0 || s.Misses != 1 {
		t.Errorf("stats = %+v, want the corrupt entry counted as a miss", s)
	}
}
