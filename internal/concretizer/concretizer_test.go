package concretizer

import (
	"strings"
	"testing"

	"repro/internal/pkgrepo"
	"repro/internal/spec"
)

// testConfig builds a CTS-like configuration: gcc and intel compilers,
// external MVAPICH2 and MKL, broadwell target (Figures 4, 9, 12).
func testConfig(t testing.TB) *Config {
	t.Helper()
	cfg := NewConfig()
	cfg.Platform = "linux"
	cfg.Target = "broadwell"
	cfg.DefaultCompiler = "gcc@12.1.1"
	for _, c := range []string{"gcc@12.1.1", "gcc@10.3.1", "intel-oneapi-compilers@2021.6.0"} {
		if err := cfg.AddCompiler(c, "/usr/tce/"+c); err != nil {
			t.Fatal(err)
		}
	}
	if err := cfg.AddExternal("mvapich2@2.3.7", "/usr/tce/mvapich2"); err != nil {
		t.Fatal(err)
	}
	if err := cfg.AddExternal("intel-oneapi-mkl@2022.1.0", "/opt/intel/mkl"); err != nil {
		t.Fatal(err)
	}
	cfg.ProviderPrefs["mpi"] = []string{"mvapich2"}
	cfg.ProviderPrefs["lapack"] = []string{"intel-oneapi-mkl"}
	cfg.ProviderPrefs["blas"] = []string{"intel-oneapi-mkl"}
	return cfg
}

func newC(t testing.TB) *Concretizer {
	return New(pkgrepo.Builtin(), testConfig(t))
}

func TestConcretizeSaxpy(t *testing.T) {
	c := newC(t)
	// The paper's Figure 10 spec.
	got, err := c.Concretize(spec.MustParse("saxpy@1.0.0 +openmp ^cmake@3.23.1"))
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsConcrete() {
		t.Fatal("result not concrete")
	}
	if got.ConcreteVersion().String() != "1.0.0" {
		t.Errorf("version = %s", got.ConcreteVersion())
	}
	if v := got.Variants["openmp"]; !v.IsBool || !v.Bool {
		t.Errorf("openmp = %#v", v)
	}
	if got.Compiler == nil || got.Compiler.Name != "gcc" {
		t.Errorf("compiler = %v", got.Compiler)
	}
	if got.Target != "broadwell" {
		t.Errorf("target = %q", got.Target)
	}
	cmake := got.FindDep("cmake")
	if cmake == nil || cmake.ConcreteVersion().String() != "3.23.1" {
		t.Errorf("cmake = %v", cmake)
	}
	// mpi resolved to the preferred external mvapich2
	mv := got.FindDep("mvapich2")
	if mv == nil {
		t.Fatalf("mpi not resolved to mvapich2; spec = %s", got.String())
	}
	if mv.External == "" {
		t.Error("mvapich2 should come from the external")
	}
	// GPU deps must NOT appear.
	if got.FindDep("cuda") != nil || got.FindDep("rocm") != nil {
		t.Error("GPU dependencies must not activate for ~cuda~rocm")
	}
}

func TestConcretizeDefaultsApplied(t *testing.T) {
	c := newC(t)
	got, err := c.Concretize(spec.MustParse("saxpy"))
	if err != nil {
		t.Fatal(err)
	}
	// openmp defaults true, cuda/rocm default false.
	if v := got.Variants["openmp"]; !v.Bool {
		t.Error("openmp default should be true")
	}
	if v := got.Variants["cuda"]; v.Bool {
		t.Error("cuda default should be false")
	}
	// All nodes concrete.
	got.Traverse(func(n *spec.Spec) {
		if !n.IsConcrete() {
			t.Errorf("node %s not concrete", n.Name)
		}
	})
}

func TestConcretizeAMGWithCaliper(t *testing.T) {
	c := newC(t)
	// Figure 2/3's spec: amg2023+caliper.
	got, err := c.Concretize(spec.MustParse("amg2023+caliper"))
	if err != nil {
		t.Fatal(err)
	}
	if got.FindDep("caliper") == nil {
		t.Error("+caliper must pull in caliper")
	}
	if got.FindDep("adiak") == nil {
		t.Error("caliper+adiak must pull in adiak")
	}
	hypre := got.FindDep("hypre")
	if hypre == nil {
		t.Fatal("amg2023 must depend on hypre")
	}
	// blas/lapack resolved to preferred MKL external.
	mkl := got.FindDep("intel-oneapi-mkl")
	if mkl == nil || mkl.External == "" {
		t.Errorf("mkl = %v", mkl)
	}

	// Without +caliper, no caliper in the DAG.
	got2, err := c.Concretize(spec.MustParse("amg2023~caliper"))
	if err != nil {
		t.Fatal(err)
	}
	if got2.FindDep("caliper") != nil {
		t.Error("~caliper must not pull in caliper")
	}
}

func TestConcretizeCudaChain(t *testing.T) {
	cfg := testConfig(t)
	cfg.Target = "power9le" // ats2-like
	c := New(pkgrepo.Builtin(), cfg)
	got, err := c.Concretize(spec.MustParse("amg2023+cuda"))
	if err != nil {
		t.Fatal(err)
	}
	if got.FindDep("cuda") == nil {
		t.Error("+cuda must pull in cuda")
	}
	hypre := got.FindDep("hypre")
	if hypre == nil || !hypre.Variants["cuda"].Bool {
		t.Errorf("hypre must be +cuda, got %v", hypre)
	}
}

func TestConflictDetected(t *testing.T) {
	c := newC(t)
	_, err := c.Concretize(spec.MustParse("amg2023+cuda+rocm"))
	if err == nil || !strings.Contains(err.Error(), "conflict") {
		t.Errorf("want conflict error, got %v", err)
	}
}

func TestUnknownVariantRejected(t *testing.T) {
	c := newC(t)
	if _, err := c.Concretize(spec.MustParse("saxpy+nonexistent")); err == nil {
		t.Error("unknown variant should fail")
	}
}

func TestUnknownPackageRejected(t *testing.T) {
	c := newC(t)
	if _, err := c.Concretize(spec.MustParse("no-such-pkg")); err == nil {
		t.Error("unknown package should fail")
	}
}

func TestCompilerSelection(t *testing.T) {
	c := newC(t)
	got, err := c.Concretize(spec.MustParse("saxpy%gcc@10.3.1"))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Compiler.Versions.Contains(spec.NewVersion("10.3.1")) {
		t.Errorf("compiler = %v", got.Compiler)
	}
	// Unavailable compiler version fails with a helpful message.
	_, err = c.Concretize(spec.MustParse("saxpy%gcc@13"))
	if err == nil || !strings.Contains(err.Error(), "no configured compiler") {
		t.Errorf("err = %v", err)
	}
	// Compiler propagates to built dependencies.
	cmake := got.FindDep("cmake")
	if cmake.Compiler == nil || cmake.Compiler.Name != "gcc" ||
		!cmake.Compiler.Versions.Contains(spec.NewVersion("10.3.1")) {
		t.Errorf("cmake compiler = %v", cmake.Compiler)
	}
}

func TestVersionPreference(t *testing.T) {
	cfg := testConfig(t)
	cfg.VersionPrefs["cmake"] = "3.20.6"
	c := New(pkgrepo.Builtin(), cfg)
	got, err := c.Concretize(spec.MustParse("adiak"))
	if err != nil {
		t.Fatal(err)
	}
	cmake := got.FindDep("cmake")
	if cmake.ConcreteVersion().String() != "3.20.6" {
		t.Errorf("cmake = %s, want preferred 3.20.6", cmake.ConcreteVersion())
	}
	// An explicit user constraint overrides the preference.
	got2, err := c.Concretize(spec.MustParse("adiak ^cmake@3.23.1"))
	if err != nil {
		t.Fatal(err)
	}
	if got2.FindDep("cmake").ConcreteVersion().String() != "3.23.1" {
		t.Error("user constraint should beat preference")
	}
}

func TestVariantPreference(t *testing.T) {
	cfg := testConfig(t)
	cfg.VariantPrefs["hypre"] = "+openmp"
	c := New(pkgrepo.Builtin(), cfg)
	got, err := c.Concretize(spec.MustParse("amg2023"))
	if err != nil {
		t.Fatal(err)
	}
	hypre := got.FindDep("hypre")
	if !hypre.Variants["openmp"].Bool {
		t.Error("variant preference not applied")
	}
}

func TestNotBuildableRequiresExternal(t *testing.T) {
	cfg := testConfig(t)
	cfg.NotBuildable["cmake"] = true // no cmake external configured
	c := New(pkgrepo.Builtin(), cfg)
	_, err := c.Concretize(spec.MustParse("saxpy"))
	if err == nil || !strings.Contains(err.Error(), "not buildable") {
		t.Errorf("err = %v", err)
	}
}

func TestVirtualNotBuildable(t *testing.T) {
	cfg := testConfig(t)
	cfg.NotBuildable["mpi"] = true
	c := New(pkgrepo.Builtin(), cfg)
	got, err := c.Concretize(spec.MustParse("saxpy"))
	if err != nil {
		t.Fatal(err)
	}
	mv := got.FindDep("mvapich2")
	if mv == nil || mv.External == "" {
		t.Error("mpi must resolve to the external provider")
	}

	// Remove the external: now it must fail.
	cfg2 := testConfig(t)
	cfg2.NotBuildable["mpi"] = true
	cfg2.Externals = map[string][]External{}
	c2 := New(pkgrepo.Builtin(), cfg2)
	if _, err := c2.Concretize(spec.MustParse("saxpy")); err == nil {
		t.Error("unbuildable virtual without external should fail")
	}
}

func TestDAGWideUserConstraint(t *testing.T) {
	c := newC(t)
	// ^cmake@3.20.6 must constrain cmake even though it is a transitive
	// dependency (via adiak via caliper).
	got, err := c.Concretize(spec.MustParse("amg2023+caliper ^cmake@3.20.6"))
	if err != nil {
		t.Fatal(err)
	}
	cmake := got.FindDep("cmake")
	if cmake.ConcreteVersion().String() != "3.20.6" {
		t.Errorf("cmake = %s, want 3.20.6", cmake.ConcreteVersion())
	}
}

func TestUnifiedConcretization(t *testing.T) {
	cfg := testConfig(t)
	cfg.ReuseFromContext = true
	c := New(pkgrepo.Builtin(), cfg)
	roots, err := c.ConcretizeTogether([]*spec.Spec{
		spec.MustParse("saxpy"),
		spec.MustParse("amg2023+caliper"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Shared packages must be the SAME node (one install).
	saxpyMPI := roots[0].FindDep("mvapich2")
	amgMPI := roots[1].FindDep("mvapich2")
	if saxpyMPI != amgMPI {
		t.Error("unify: true must share the mpi node")
	}
	saxpyCmake := roots[0].FindDep("cmake")
	amgCmake := roots[1].FindDep("cmake")
	if saxpyCmake != amgCmake {
		t.Error("unify: true must share the cmake node")
	}
}

func TestUnifiedConflictAcrossRoots(t *testing.T) {
	cfg := testConfig(t)
	cfg.ReuseFromContext = true
	c := New(pkgrepo.Builtin(), cfg)
	_, err := c.ConcretizeTogether([]*spec.Spec{
		spec.MustParse("adiak ^cmake@3.23.1"),
		spec.MustParse("caliper ^cmake@3.20.6"),
	})
	if err == nil {
		t.Error("conflicting cmake pins across unified roots should fail")
	}
}

func TestIndependentConcretization(t *testing.T) {
	cfg := testConfig(t)
	cfg.ReuseFromContext = false
	c := New(pkgrepo.Builtin(), cfg)
	roots, err := c.ConcretizeTogether([]*spec.Spec{
		spec.MustParse("adiak ^cmake@3.23.1"),
		spec.MustParse("caliper ^cmake@3.20.6"),
	})
	if err != nil {
		t.Fatal(err)
	}
	v1 := roots[0].FindDep("cmake").ConcreteVersion().String()
	v2 := roots[1].FindDep("cmake").ConcreteVersion().String()
	if v1 != "3.23.1" || v2 != "3.20.6" {
		t.Errorf("independent solves: cmake = %s, %s", v1, v2)
	}
}

func TestDeterminism(t *testing.T) {
	c := newC(t)
	a, err := c.Concretize(spec.MustParse("amg2023+caliper"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b, err := c.Concretize(spec.MustParse("amg2023+caliper"))
		if err != nil {
			t.Fatal(err)
		}
		if a.DAGHash() != b.DAGHash() {
			t.Fatalf("non-deterministic concretization:\n%s\nvs\n%s", a, b)
		}
	}
}

func TestLoadPackagesYAMLFigure4(t *testing.T) {
	cfg := NewConfig()
	err := cfg.LoadPackagesYAML(`
packages:
  blas:
    externals:
    - spec: intel-oneapi-mkl@2022.1.0
      prefix: /path/to/intel-oneapi-mkl
    buildable: false
  mpi:
    externals:
    - spec: mvapich2@2.3.7
      prefix: /path/to/mvapich2
    buildable: false
  all:
    compiler: [gcc@12.1.1]
    target: [broadwell]
`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DefaultCompiler != "gcc@12.1.1" || cfg.Target != "broadwell" {
		t.Errorf("all: section not applied: %q %q", cfg.DefaultCompiler, cfg.Target)
	}
	if !cfg.NotBuildable["blas"] || !cfg.NotBuildable["mpi"] {
		t.Error("buildable: false not recorded")
	}
	if len(cfg.Externals["intel-oneapi-mkl"]) != 1 || len(cfg.Externals["mvapich2"]) != 1 {
		t.Errorf("externals = %v", cfg.Externals)
	}
	if cfg.Externals["mvapich2"][0].Prefix != "/path/to/mvapich2" {
		t.Error("prefix lost")
	}
}

func TestLoadCompilersYAML(t *testing.T) {
	cfg := NewConfig()
	err := cfg.LoadCompilersYAML(`
compilers:
- compiler:
    spec: gcc@12.1.1
    prefix: /usr/tce/gcc-12.1.1
- compiler:
    spec: intel-oneapi-compilers@2021.6.0
    prefix: /usr/tce/intel
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Compilers) != 2 {
		t.Fatalf("compilers = %v", cfg.Compilers)
	}
	def, err := cfg.FindCompiler(&spec.Compiler{Name: "gcc"})
	if err != nil || def.Version.String() != "12.1.1" {
		t.Errorf("FindCompiler = %v, %v", def, err)
	}
}

func TestExternalNotUsedWhenIncompatible(t *testing.T) {
	cfg := testConfig(t)
	c := New(pkgrepo.Builtin(), cfg)
	// Request a different mvapich2 version than the external provides:
	// the concretizer must build from source instead.
	got, err := c.Concretize(spec.MustParse("mvapich2@2.3.6"))
	if err != nil {
		t.Fatal(err)
	}
	if got.External != "" {
		t.Error("incompatible external must not be used")
	}
	if got.ConcreteVersion().String() != "2.3.6" {
		t.Errorf("version = %s", got.ConcreteVersion())
	}
}

func TestCircularDependencyDetected(t *testing.T) {
	repo := pkgrepo.NewRepo()
	a := pkgrepo.NewPackage("aaa").AddVersion("1").DependsOn("bbb", pkgrepo.LinkDep)
	b := pkgrepo.NewPackage("bbb").AddVersion("1").DependsOn("aaa", pkgrepo.LinkDep)
	if err := repo.AddScope("t", a, b); err != nil {
		t.Fatal(err)
	}
	cfg := NewConfig()
	if err := cfg.AddCompiler("gcc@12.1.1", "/usr"); err != nil {
		t.Fatal(err)
	}
	c := New(repo, cfg)
	_, err := c.Concretize(spec.MustParse("aaa"))
	if err == nil || !strings.Contains(err.Error(), "circular") {
		t.Errorf("err = %v", err)
	}
}

func TestTargetValidation(t *testing.T) {
	cfg := testConfig(t)
	cfg.Target = "not-a-real-target"
	c := New(pkgrepo.Builtin(), cfg)
	if _, err := c.Concretize(spec.MustParse("zlib")); err == nil {
		t.Error("invalid target should fail")
	}
}

// TestConcretizePetscDeepDAG exercises a deep diamond-heavy DAG:
// petsc -> hypre/parmetis -> metis/blas/mpi with unification.
func TestConcretizePetscDeepDAG(t *testing.T) {
	c := newC(t)
	got, err := c.Concretize(spec.MustParse("petsc+hypre+metis"))
	if err != nil {
		t.Fatal(err)
	}
	for _, dep := range []string{"hypre", "parmetis", "metis", "python", "cmake", "mvapich2", "intel-oneapi-mkl"} {
		if got.FindDep(dep) == nil {
			t.Errorf("petsc DAG missing %s:\n%s", dep, spec.FormatTree(got))
		}
	}
	// Unification: exactly one cmake node in the whole DAG.
	count := 0
	got.Traverse(func(n *spec.Spec) {
		if n.Name == "cmake" {
			count++
		}
	})
	if count != 1 {
		t.Errorf("cmake nodes = %d, want 1 (unified)", count)
	}
	// ~metis drops the partitioning chain.
	got2, err := c.Concretize(spec.MustParse("petsc~metis"))
	if err != nil {
		t.Fatal(err)
	}
	if got2.FindDep("parmetis") != nil || got2.FindDep("metis") != nil {
		t.Error("~metis must not pull partitioners")
	}
}

func TestConcretizeKokkosBackendConflict(t *testing.T) {
	c := newC(t)
	if _, err := c.Concretize(spec.MustParse("kokkos+cuda+rocm")); err == nil {
		t.Error("kokkos with two device backends must conflict")
	}
}

// TestReuseInstalled: `--reuse` prefers an already-installed older
// configuration over re-deriving the newest one.
func TestReuseInstalled(t *testing.T) {
	c := newC(t)
	// A site previously installed cmake 3.22.2.
	old, err := c.Concretize(spec.MustParse("cmake@3.22.2"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t)
	cfg.ReuseInstalled = []*spec.Spec{old}
	reuser := New(pkgrepo.Builtin(), cfg)

	// adiak needs cmake@3.20: — the installed 3.22.2 satisfies it, so
	// reuse wins over the newest 3.23.1.
	got, err := reuser.Concretize(spec.MustParse("adiak"))
	if err != nil {
		t.Fatal(err)
	}
	cmake := got.FindDep("cmake")
	if cmake.ConcreteVersion().String() != "3.22.2" {
		t.Errorf("cmake = %s, want reused 3.22.2", cmake.ConcreteVersion())
	}
	if cmake.DAGHash() != old.DAGHash() {
		t.Error("reused node should be hash-identical to the installed one")
	}

	// An explicit user pin past the installed version still rebuilds.
	got2, err := reuser.Concretize(spec.MustParse("adiak ^cmake@3.23.1"))
	if err != nil {
		t.Fatal(err)
	}
	if got2.FindDep("cmake").ConcreteVersion().String() != "3.23.1" {
		t.Error("explicit constraint must override reuse")
	}

	// Without reuse, the newest version is chosen.
	plain, err := newC(t).Concretize(spec.MustParse("adiak"))
	if err != nil {
		t.Fatal(err)
	}
	if plain.FindDep("cmake").ConcreteVersion().String() != "3.23.1" {
		t.Errorf("fresh concretization = %s", plain.FindDep("cmake").ConcreteVersion())
	}
}

// TestReuseInstalledSubtree: reusing a spec registers its whole
// dependency subtree for unification.
func TestReuseInstalledSubtree(t *testing.T) {
	c := newC(t)
	oldCaliper, err := c.Concretize(spec.MustParse("caliper ^cmake@3.22.2"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t)
	cfg.ReuseInstalled = []*spec.Spec{oldCaliper}
	cfg.ReuseFromContext = true
	reuser := New(pkgrepo.Builtin(), cfg)
	got, err := reuser.Concretize(spec.MustParse("amg2023+caliper"))
	if err != nil {
		t.Fatal(err)
	}
	// The reused caliper subtree's cmake must be shared with the rest
	// of the DAG.
	if got.FindDep("caliper").DAGHash() != oldCaliper.DAGHash() {
		t.Error("caliper not reused")
	}
	count := 0
	got.Traverse(func(n *spec.Spec) {
		if n.Name == "cmake" {
			count++
			if n.ConcreteVersion().String() != "3.22.2" {
				t.Errorf("cmake = %s", n.ConcreteVersion())
			}
		}
	})
	if count != 1 {
		t.Errorf("cmake nodes = %d", count)
	}
}
