// Package concretizer implements Spack's concretization algorithm
// (Section 3.1 of the Benchpark paper): it takes abstract specs with
// user constraints and fills in every remaining choice point of the
// build space — versions, variants, compilers, targets, virtual
// providers, and the full dependency DAG — producing concrete specs.
//
// Concretization is driven by system-specific configuration
// (compilers.yaml, packages.yaml; Figures 4 and 9 of the paper):
// available compilers, externally installed packages, provider
// preferences, and the default target of the machine.
package concretizer

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cachekey"
	"repro/internal/spec"
	"repro/internal/yamlite"
)

// External describes one externally installed package usable instead
// of building from source (packages.yaml "externals:" entries).
type External struct {
	Spec   *spec.Spec // pinned spec, e.g. mvapich2@2.3.7-gcc12.1.1-magic
	Prefix string     // installation prefix on the system
}

// CompilerDef is one entry of compilers.yaml.
type CompilerDef struct {
	Name    string
	Version spec.Version
	Prefix  string
}

// Config is the system-specific configuration scope consulted during
// concretization.
type Config struct {
	// Platform and Target identify the machine ("linux", "broadwell").
	Platform string
	Target   string

	// Compilers lists compilers available on the system; the first one
	// compatible with a request is used. DefaultCompiler (a spec like
	// "gcc@12.1.1") is used when a spec carries no %compiler.
	Compilers       []CompilerDef
	DefaultCompiler string

	// Externals maps package name to available system installations;
	// NotBuildable marks packages that MUST come from an external
	// (Figure 4's "buildable: false").
	Externals    map[string][]External
	NotBuildable map[string]bool

	// ProviderPrefs maps a virtual package to providers in preference
	// order (e.g. mpi -> [mvapich2]).
	ProviderPrefs map[string][]string

	// VersionPrefs maps package name to a preferred version constraint
	// applied before choosing (e.g. cmake -> "3.23.1").
	VersionPrefs map[string]string

	// VariantPrefs maps package name to extra constraint text applied
	// as a low-priority default (e.g. hypre -> "+openmp").
	VariantPrefs map[string]string

	// ReuseFromContext ("unify: true" in Figure 3) makes environment
	// concretization share one node per package name across all roots.
	ReuseFromContext bool

	// ReuseInstalled holds concrete specs already present in an
	// install database; when a constraint is satisfied by one of them,
	// the concretizer reuses it instead of re-deriving a (possibly
	// newer) configuration — Spack's `spack install --reuse`.
	ReuseInstalled []*spec.Spec
}

// Fingerprint returns the content key of everything in the
// configuration that can influence a concretization result: two
// configs with equal fingerprints concretize any spec identically.
// It anchors the memo key of every concretization (the "concretize"
// cache layer), so adding a compiler, changing a preference, or
// growing the reuse set invalidates exactly the solves it could
// affect.
func (c *Config) Fingerprint() cachekey.Key {
	type extFP struct {
		Spec   string
		Prefix string
	}
	fp := struct {
		Platform         string
		Target           string
		Compilers        []string
		DefaultCompiler  string
		Externals        map[string][]extFP
		NotBuildable     []string
		ProviderPrefs    map[string][]string
		VersionPrefs     map[string]string
		VariantPrefs     map[string]string
		ReuseFromContext bool
		ReuseInstalled   []string
	}{
		Platform:         c.Platform,
		Target:           c.Target,
		DefaultCompiler:  c.DefaultCompiler,
		ProviderPrefs:    c.ProviderPrefs,
		VersionPrefs:     c.VersionPrefs,
		VariantPrefs:     c.VariantPrefs,
		ReuseFromContext: c.ReuseFromContext,
	}
	for _, def := range c.Compilers {
		fp.Compilers = append(fp.Compilers, def.Name+"@"+def.Version.String()+" prefix="+def.Prefix)
	}
	if len(c.Externals) > 0 {
		fp.Externals = map[string][]extFP{}
		for name, exts := range c.Externals {
			for _, e := range exts {
				fp.Externals[name] = append(fp.Externals[name], extFP{Spec: e.Spec.String(), Prefix: e.Prefix})
			}
		}
	}
	for name, nb := range c.NotBuildable {
		if nb {
			fp.NotBuildable = append(fp.NotBuildable, name)
		}
	}
	sort.Strings(fp.NotBuildable)
	// Reuse order is load-bearing (the first compatible candidate wins
	// during seeding), so it is hashed in order, not sorted: a reordered
	// reuse set may miss, but can never hit a result it would not have
	// produced.
	for _, s := range c.ReuseInstalled {
		if s != nil {
			fp.ReuseInstalled = append(fp.ReuseInstalled, s.String())
		}
	}
	return cachekey.Hash(fp)
}

// NewConfig returns an empty configuration.
func NewConfig() *Config {
	return &Config{
		Externals:     map[string][]External{},
		NotBuildable:  map[string]bool{},
		ProviderPrefs: map[string][]string{},
		VersionPrefs:  map[string]string{},
		VariantPrefs:  map[string]string{},
	}
}

// AddCompiler registers an available compiler from its spec string.
func (c *Config) AddCompiler(specStr, prefix string) error {
	s, err := spec.Parse(specStr)
	if err != nil {
		return err
	}
	v, ok := s.Versions.Concrete()
	if !ok {
		return fmt.Errorf("concretizer: compiler %q must have an exact version", specStr)
	}
	c.Compilers = append(c.Compilers, CompilerDef{Name: s.Name, Version: v, Prefix: prefix})
	return nil
}

// AddExternal registers a system installation of a package.
func (c *Config) AddExternal(specStr, prefix string) error {
	s, err := spec.Parse(specStr)
	if err != nil {
		return err
	}
	if _, ok := s.Versions.Concrete(); !ok {
		return fmt.Errorf("concretizer: external %q must have an exact version", specStr)
	}
	c.Externals[s.Name] = append(c.Externals[s.Name], External{Spec: s, Prefix: prefix})
	return nil
}

// LoadPackagesYAML merges a packages.yaml document (Figure 4) into the
// configuration. Recognized keys per package: externals (spec/prefix),
// buildable, providers, version, variants. The special package "all"
// sets global compiler/target preferences.
func (c *Config) LoadPackagesYAML(src string) error {
	doc, err := yamlite.ParseMap(src)
	if err != nil {
		return err
	}
	pkgs := doc.GetMap("packages")
	if pkgs == nil {
		return fmt.Errorf("concretizer: packages.yaml missing top-level 'packages' key")
	}
	for _, name := range pkgs.Keys() {
		entry := pkgs.GetMap(name)
		if entry == nil {
			continue
		}
		if name == "all" {
			if comp := entry.GetStrings("compiler"); len(comp) > 0 {
				c.DefaultCompiler = comp[0]
			}
			if tgt := entry.GetStrings("target"); len(tgt) > 0 {
				c.Target = tgt[0]
			}
			continue
		}
		for _, ev := range entry.GetSlice("externals") {
			em, ok := ev.(*yamlite.Map)
			if !ok {
				return fmt.Errorf("concretizer: bad externals entry for %s", name)
			}
			if err := c.AddExternal(em.GetString("spec"), em.GetString("prefix")); err != nil {
				return err
			}
		}
		if entry.Has("buildable") && !entry.GetBool("buildable", true) {
			c.NotBuildable[name] = true
		}
		if provs := entry.GetStrings("providers"); len(provs) > 0 {
			c.ProviderPrefs[name] = provs
		}
		if v := entry.GetString("version"); v != "" {
			c.VersionPrefs[name] = v
		}
		if v := entry.GetString("variants"); v != "" {
			c.VariantPrefs[name] = v
		}
	}
	return nil
}

// LoadCompilersYAML merges a compilers.yaml document into the
// configuration.
//
//	compilers:
//	- compiler:
//	    spec: gcc@12.1.1
//	    prefix: /usr/tce
func (c *Config) LoadCompilersYAML(src string) error {
	doc, err := yamlite.ParseMap(src)
	if err != nil {
		return err
	}
	for _, cv := range doc.GetSlice("compilers") {
		cm, ok := cv.(*yamlite.Map)
		if !ok {
			return fmt.Errorf("concretizer: bad compilers.yaml entry")
		}
		inner := cm.GetMap("compiler")
		if inner == nil {
			return fmt.Errorf("concretizer: compilers.yaml entry missing 'compiler' key")
		}
		if err := c.AddCompiler(inner.GetString("spec"), inner.GetString("prefix")); err != nil {
			return err
		}
	}
	return nil
}

// FindCompiler returns the configured compiler matching the request
// (nil request = the default compiler).
func (c *Config) FindCompiler(req *spec.Compiler) (CompilerDef, error) {
	want := req
	if want == nil {
		if c.DefaultCompiler == "" {
			if len(c.Compilers) > 0 {
				return c.Compilers[0], nil
			}
			return CompilerDef{}, fmt.Errorf("concretizer: no compilers configured")
		}
		s, err := spec.Parse(c.DefaultCompiler)
		if err != nil {
			return CompilerDef{}, fmt.Errorf("concretizer: bad default compiler %q: %w", c.DefaultCompiler, err)
		}
		want = &spec.Compiler{Name: s.Name, Versions: s.Versions}
	}
	for _, def := range c.Compilers {
		if def.Name == want.Name && want.Versions.Contains(def.Version) {
			return def, nil
		}
	}
	var have []string
	for _, def := range c.Compilers {
		have = append(have, "%"+def.Name+"@"+def.Version.String())
	}
	return CompilerDef{}, fmt.Errorf("concretizer: no configured compiler satisfies %s (have: %s)",
		want, strings.Join(have, ", "))
}
