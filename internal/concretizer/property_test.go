package concretizer

import (
	"math/rand"
	"testing"

	"repro/internal/pkgrepo"
	"repro/internal/spec"
)

// genAbstract builds a random but well-formed abstract request over
// the builtin repository.
func genAbstract(r *rand.Rand) *spec.Spec {
	roots := []string{"saxpy", "amg2023", "caliper", "hypre", "stream", "hpcg", "lulesh", "adiak"}
	s := spec.New(roots[r.Intn(len(roots))])
	// Flip a boolean variant the package actually has.
	variantsByPkg := map[string][]string{
		"saxpy":   {"openmp"},
		"amg2023": {"caliper", "openmp"},
		"caliper": {"adiak", "papi"},
		"hypre":   {"openmp", "mpi"},
		"stream":  {"openmp"},
		"hpcg":    {"openmp"},
		"lulesh":  {"openmp"},
	}
	if vs := variantsByPkg[s.Name]; len(vs) > 0 && r.Intn(2) == 0 {
		s.SetVariant(vs[r.Intn(len(vs))], spec.BoolVariant(r.Intn(2) == 0))
	}
	if r.Intn(3) == 0 {
		s.Compiler = &spec.Compiler{Name: "gcc"}
	}
	if r.Intn(3) == 0 {
		_ = s.AddDep(spec.MustParse("zlib@1.2.12"))
	}
	return s
}

// TestPropertyConcretizeSatisfiesInput: every successful
// concretization must satisfy the abstract request — the fundamental
// contract of the concretizer.
func TestPropertyConcretizeSatisfiesInput(t *testing.T) {
	c := newC(t)
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		abstract := genAbstract(r)
		concrete, err := c.Concretize(abstract.Clone())
		if err != nil {
			t.Fatalf("concretize %s: %v", abstract, err)
		}
		if !concrete.IsConcrete() {
			t.Fatalf("%s: not concrete", abstract)
		}
		if !concrete.Satisfies(abstract) {
			t.Fatalf("result does not satisfy input:\n in:  %s\n out: %s", abstract, concrete)
		}
		// Every node fully assigned.
		concrete.Traverse(func(n *spec.Spec) {
			if !n.IsConcrete() {
				t.Fatalf("node %s of %s not concrete", n.Name, abstract)
			}
			if n.External == "" && n.Compiler == nil {
				t.Fatalf("built node %s has no compiler", n.Name)
			}
			if n.Target == "" {
				t.Fatalf("node %s has no target", n.Name)
			}
		})
	}
}

// TestPropertyConcretizeIdempotent: concretizing the concrete result
// again (as a constraint) must yield the identical DAG hash.
func TestPropertyConcretizeIdempotent(t *testing.T) {
	c := newC(t)
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 100; i++ {
		abstract := genAbstract(r)
		first, err := c.Concretize(abstract.Clone())
		if err != nil {
			t.Fatal(err)
		}
		again, err := c.Concretize(abstract.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if first.DAGHash() != again.DAGHash() {
			t.Fatalf("non-deterministic: %s vs %s", first, again)
		}
	}
}

// TestPropertyDAGAcyclic: concretized DAGs never contain cycles
// (Traverse must terminate and visit each node once).
func TestPropertyDAGAcyclic(t *testing.T) {
	c := New(pkgrepo.Builtin(), testConfig(t))
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 100; i++ {
		concrete, err := c.Concretize(genAbstract(r))
		if err != nil {
			t.Fatal(err)
		}
		visits := 0
		concrete.Traverse(func(*spec.Spec) { visits++ })
		if visits == 0 || visits > 64 {
			t.Fatalf("suspicious traversal count %d", visits)
		}
	}
}
