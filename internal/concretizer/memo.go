package concretizer

import (
	"encoding/json"
	"sync"

	"repro/internal/cachekey"
	"repro/internal/spec"
)

// Memo caches concretization results per input key — the "concretize"
// layer of the incremental pipeline. A key is the configuration
// fingerprint derived with the abstract root specs (see
// Concretizer.ConcretizeTogether), so any change to the system
// configuration, the reuse set, or the requested specs is a miss.
//
// Entries are stored as encoded DAG bytes (spec.EncodeDAG) and decoded
// fresh on every hit: callers receive private node graphs, never
// aliases of cached pointers, so downstream mutation (the install
// database holds spec pointers) cannot poison the memo. Attach a
// durable cachekey.Layer with Persist to share the memo across
// processes; corrupt or tampered durable entries fail DecodeDAG's hash
// verification and degrade to a cold miss.
type Memo struct {
	mu     sync.Mutex
	mem    map[cachekey.Key][]byte
	layer  *cachekey.Layer
	hits   int
	misses int
}

// memoEntry is the serialized form of one concretization result.
type memoEntry struct {
	Nodes map[string]spec.EncodedNode `json:"nodes"`
	Roots []string                    `json:"roots"`
}

// NewMemo returns an empty in-memory memo.
func NewMemo() *Memo { return &Memo{mem: map[cachekey.Key][]byte{}} }

// Persist attaches a durable cache layer: lookups fall through to it
// on in-memory misses and stores write through to it.
func (m *Memo) Persist(l *cachekey.Layer) {
	m.mu.Lock()
	m.layer = l
	m.mu.Unlock()
}

// MemoStats counts memo traffic.
type MemoStats struct {
	Hits   int
	Misses int
}

// Stats returns the memo's lifetime hit/miss counters.
func (m *Memo) Stats() MemoStats {
	if m == nil {
		return MemoStats{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return MemoStats{Hits: m.hits, Misses: m.misses}
}

// lookup fetches and decodes the result stored under key. Any failure
// — missing entry, corrupt bytes, DAG hash mismatch — is a miss.
func (m *Memo) lookup(key cachekey.Key) ([]*spec.Spec, bool) {
	if m == nil || !key.Valid() {
		return nil, false
	}
	m.mu.Lock()
	data, ok := m.mem[key]
	layer := m.layer
	m.mu.Unlock()
	if !ok && layer != nil {
		if d, hit := layer.Get(key); hit {
			data, ok = d, true
			m.mu.Lock()
			m.mem[key] = d
			m.mu.Unlock()
		}
	}
	if !ok {
		m.note(false)
		return nil, false
	}
	var ent memoEntry
	if err := json.Unmarshal(data, &ent); err != nil {
		m.note(false)
		return nil, false
	}
	out, err := spec.DecodeDAG(ent.Nodes, ent.Roots)
	if err != nil {
		m.note(false)
		return nil, false
	}
	m.note(true)
	return out, true
}

// store records a concretization result under key, writing through to
// the durable layer when attached. Failures are silent: the memo is an
// accelerator, never a correctness dependency.
func (m *Memo) store(key cachekey.Key, roots []*spec.Spec) {
	if m == nil || !key.Valid() {
		return
	}
	nodes, rootHashes := spec.EncodeDAG(roots)
	data, err := json.Marshal(memoEntry{Nodes: nodes, Roots: rootHashes})
	if err != nil {
		return
	}
	m.mu.Lock()
	m.mem[key] = data
	layer := m.layer
	m.mu.Unlock()
	if layer != nil {
		layer.Put(key, data) //nolint:errcheck // cache write failure must not fail the solve
	}
}

func (m *Memo) note(hit bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if hit {
		m.hits++
	} else {
		m.misses++
	}
}
