package concretizer

import (
	"testing"

	"repro/internal/pkgrepo"
	"repro/internal/spec"
)

// benchRoots is the Figure 10 environment: the saxpy root plus the
// site MPI, concretized together.
func benchRoots(b *testing.B) []*spec.Spec {
	b.Helper()
	return []*spec.Spec{
		spec.MustParse("mvapich2"),
		spec.MustParse("saxpy@1.0.0 +openmp ^cmake@3.23.1"),
	}
}

// BenchmarkConcretizeTogetherCold solves the environment from scratch
// every iteration — the pre-memo cost of each session's install stage.
func BenchmarkConcretizeTogetherCold(b *testing.B) {
	repo := pkgrepo.Builtin()
	cfg := testConfig(b)
	for i := 0; i < b.N; i++ {
		c := New(repo, cfg)
		if _, err := c.ConcretizeTogether(benchRoots(b)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcretizeTogetherMemoWarm replays the solve from a shared
// memo: the per-session cost once any session of the deployment has
// concretized the same environment.
func BenchmarkConcretizeTogetherMemoWarm(b *testing.B) {
	repo := pkgrepo.Builtin()
	cfg := testConfig(b)
	memo := NewMemo()
	prime := New(repo, cfg)
	prime.Memo = memo
	if _, err := prime.ConcretizeTogether(benchRoots(b)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := New(repo, cfg)
		c.Memo = memo
		if _, err := c.ConcretizeTogether(benchRoots(b)); err != nil {
			b.Fatal(err)
		}
	}
	if s := memo.Stats(); s.Hits < b.N {
		b.Fatalf("memo hits = %d, want at least %d", s.Hits, b.N)
	}
}
