package concretizer

import (
	"fmt"
	"sort"

	"repro/internal/archspec"
	"repro/internal/cachekey"
	"repro/internal/pkgrepo"
	"repro/internal/spec"
)

// Concretizer resolves abstract specs against a package repository
// and a system configuration.
type Concretizer struct {
	Repo   *pkgrepo.Repo
	Config *Config

	// Memo, when set, short-circuits ConcretizeTogether for inputs it
	// has solved before (the "concretize" layer of the incremental
	// pipeline). nil disables memoization.
	Memo *Memo
}

// New returns a concretizer.
func New(repo *pkgrepo.Repo, cfg *Config) *Concretizer {
	if cfg == nil {
		cfg = NewConfig()
	}
	return &Concretizer{Repo: repo, Config: cfg}
}

// Concretize resolves one abstract spec into a fully concrete DAG.
func (c *Concretizer) Concretize(abstract *spec.Spec) (*spec.Spec, error) {
	out, err := c.ConcretizeTogether([]*spec.Spec{abstract})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// ConcretizeTogether resolves a set of roots. With
// Config.ReuseFromContext (unify: true), all roots share one concrete
// node per package name; otherwise each root is solved independently.
//
// With a Memo attached, the solve is keyed by the configuration
// fingerprint derived with the abstract root renderings
// (Config.Fingerprint().Derive("concretize", ...)); repeated requests
// replay the stored DAG, decoded fresh on every hit so callers never
// share mutable nodes with the cache. The key is computed here — not
// at construction — because callers (internal/env) toggle Config
// fields around the call.
func (c *Concretizer) ConcretizeTogether(roots []*spec.Spec) ([]*spec.Spec, error) {
	if c.Memo == nil {
		return c.concretizeTogether(roots)
	}
	rootStrs := make([]string, len(roots))
	for i, r := range roots {
		rootStrs[i] = r.String()
	}
	key := c.Config.Fingerprint().Derive("concretize", cachekey.Hash(rootStrs))
	if out, ok := c.Memo.lookup(key); ok {
		return out, nil
	}
	out, err := c.concretizeTogether(roots)
	if err != nil {
		return nil, err
	}
	c.Memo.store(key, out)
	return out, nil
}

func (c *Concretizer) concretizeTogether(roots []*spec.Spec) ([]*spec.Spec, error) {
	out := make([]*spec.Spec, len(roots))
	var shared *solve
	if c.Config.ReuseFromContext {
		shared = c.newSolve()
		// Collect DAG-wide ^constraints from every root up front so
		// unified nodes honor all of them regardless of solve order.
		for _, r := range roots {
			if err := shared.collectUserConstraints(r); err != nil {
				return nil, err
			}
		}
		shared.seedReuse()
	}
	for i, r := range roots {
		sv := shared
		if sv == nil {
			sv = c.newSolve()
			if err := sv.collectUserConstraints(r); err != nil {
				return nil, err
			}
			sv.seedReuse()
		}
		node, err := sv.resolve(r.Clone())
		if err != nil {
			return nil, fmt.Errorf("concretize %q: %w", r.String(), err)
		}
		out[i] = node
	}
	return out, nil
}

type solve struct {
	c     *Concretizer
	nodes map[string]*spec.Spec // package name -> concrete node
	stack map[string]bool       // in-progress, for cycle detection
	// userConstraints are DAG-wide ^dep constraints gathered from the
	// roots: in Spack, "app ^cmake@3.23.1" constrains cmake wherever it
	// appears in the DAG.
	userConstraints map[string]*spec.Spec
}

func (c *Concretizer) newSolve() *solve {
	return &solve{
		c:               c,
		nodes:           map[string]*spec.Spec{},
		stack:           map[string]bool{},
		userConstraints: map[string]*spec.Spec{},
	}
}

func (sv *solve) collectUserConstraints(root *spec.Spec) error {
	for name, d := range root.Deps {
		if prev, ok := sv.userConstraints[name]; ok {
			if err := prev.Constrain(d); err != nil {
				return err
			}
			continue
		}
		sv.userConstraints[name] = d.Clone()
	}
	return nil
}

// seedReuse pre-registers already-installed concrete specs (Spack's
// `--reuse`) in the solve context so every resolution unifies against
// them. A candidate node is skipped when it contradicts a DAG-wide
// user constraint — an explicit pin always beats reuse. Call after
// collectUserConstraints.
func (sv *solve) seedReuse() {
	for _, cand := range sv.c.Config.ReuseInstalled {
		if cand == nil || !cand.IsConcrete() {
			continue
		}
		cand.Clone().Traverse(func(n *spec.Spec) {
			if _, ok := sv.nodes[n.Name]; ok {
				return
			}
			if uc, has := sv.userConstraints[n.Name]; has && !n.Satisfies(uc.WithoutDeps()) {
				return
			}
			sv.nodes[n.Name] = n
		})
	}
}

// resolve turns one abstract constraint into a concrete node,
// registering it in the solve context.
func (sv *solve) resolve(constraint *spec.Spec) (*spec.Spec, error) {
	if constraint.Name == "" {
		return nil, fmt.Errorf("cannot concretize anonymous spec %q", constraint.String())
	}

	// Virtual package: choose a provider, then resolve the provider.
	if sv.c.Repo.IsVirtual(constraint.Name) {
		return sv.resolveVirtual(constraint)
	}

	name := constraint.Name
	if sv.stack[name] {
		return nil, fmt.Errorf("circular dependency through %s", name)
	}

	// Fold in DAG-wide user constraints for this package.
	if uc, ok := sv.userConstraints[name]; ok {
		if err := constraint.Constrain(uc); err != nil {
			return nil, err
		}
	}

	// Unification: reuse an existing node when compatible. Externals
	// are compiler-agnostic, so a propagated %compiler constraint does
	// not apply to them.
	if node, ok := sv.nodes[name]; ok {
		cons := constraint.WithoutDeps()
		if node.External != "" {
			cons.Compiler = nil
		}
		if err := node.Constrain(cons); err != nil {
			return nil, fmt.Errorf("unifying %s: %w", name, err)
		}
		return node, nil
	}

	pkg, err := sv.c.Repo.Get(name)
	if err != nil {
		return nil, err
	}
	if pkg.Virtual {
		return nil, fmt.Errorf("package %s is virtual and cannot be resolved directly", name)
	}

	// Externals take precedence; buildable:false requires one.
	if node, ok, err := sv.tryExternal(pkg, constraint); err != nil {
		return nil, err
	} else if ok {
		sv.nodes[name] = node
		return node, nil
	}
	if sv.c.Config.NotBuildable[name] {
		return nil, fmt.Errorf("package %s is not buildable and no external satisfies %q",
			name, constraint.String())
	}

	node := spec.New(name)

	// --- version ---------------------------------------------------------
	vcons := constraint.Versions
	if prefText, ok := sv.c.Config.VersionPrefs[name]; ok {
		pref, perr := spec.ParseVersionList(prefText)
		if perr != nil {
			return nil, fmt.Errorf("bad version preference for %s: %w", name, perr)
		}
		if merged, merr := vcons.Constrain(pref); merr == nil {
			vcons = merged // preference applies only when compatible
		}
	}
	version, err := pkg.BestVersion(vcons)
	if err != nil {
		return nil, err
	}
	node.Versions, _ = spec.ParseVersionList(version.String())

	// --- variants ----------------------------------------------------------
	for vname, vdef := range pkg.Variants {
		node.SetVariant(vname, vdef.Default)
	}
	if prefText, ok := sv.c.Config.VariantPrefs[name]; ok {
		pref, perr := spec.Parse(name + " " + prefText)
		if perr != nil {
			return nil, fmt.Errorf("bad variant preference for %s: %w", name, perr)
		}
		for vname, vv := range pref.Variants {
			node.SetVariant(vname, vv)
		}
	}
	for vname, vv := range constraint.Variants {
		vdef, known := pkg.Variants[vname]
		if !known {
			return nil, fmt.Errorf("package %s has no variant %q", name, vname)
		}
		if len(vdef.Values) > 0 && !vv.IsBool {
			for _, val := range vv.Values {
				if !contains(vdef.Values, val) {
					return nil, fmt.Errorf("package %s variant %s: invalid value %q (allowed: %v)",
						name, vname, val, vdef.Values)
				}
			}
		}
		node.SetVariant(vname, vv)
	}

	// --- compiler -------------------------------------------------------------
	def, err := sv.c.Config.FindCompiler(constraint.Compiler)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	cvl, _ := spec.ParseVersionList(def.Version.String())
	node.Compiler = &spec.Compiler{Name: def.Name, Versions: cvl}

	// --- target & platform ------------------------------------------------------
	node.Target = constraint.Target
	if node.Target == "" {
		node.Target = sv.c.Config.Target
	}
	if node.Target != "" {
		if _, err := archspec.Lookup(node.Target); err != nil {
			return nil, err
		}
	}
	node.Platform = constraint.Platform
	if node.Platform == "" {
		node.Platform = sv.c.Config.Platform
	}

	// Register before dependencies so diamonds unify and cycles fail.
	sv.nodes[name] = node
	sv.stack[name] = true
	defer delete(sv.stack, name)

	// --- dependencies -------------------------------------------------------------
	// Merge all active constraints per dependency name first: a
	// package may declare both "hypre@2.25:" and "hypre+cuda when
	// +cuda", which must concretize as one node.
	merged := map[string]*spec.Spec{}
	var depOrder []string
	for _, d := range pkg.Dependencies {
		if d.When != nil && !node.Satisfies(d.When) {
			continue
		}
		if prev, ok := merged[d.Spec.Name]; ok {
			if err := prev.Constrain(d.Spec.Clone()); err != nil {
				return nil, fmt.Errorf("%s: dependency constraints on %s conflict: %w",
					name, d.Spec.Name, err)
			}
			continue
		}
		merged[d.Spec.Name] = d.Spec.Clone()
		depOrder = append(depOrder, d.Spec.Name)
	}
	for _, depName := range depOrder {
		depCons := merged[depName]
		// Merge any matching user ^constraint early so virtual provider
		// choice can see it.
		if uc, ok := sv.userConstraints[depCons.Name]; ok && !sv.c.Repo.IsVirtual(depCons.Name) {
			if err := depCons.Constrain(uc); err != nil {
				return nil, err
			}
		}
		// Compiler propagation: dependencies default to the parent's
		// compiler unless they constrain their own.
		if depCons.Compiler == nil {
			cc := *node.Compiler
			depCons.Compiler = &cc
		}
		if depCons.Target == "" {
			depCons.Target = node.Target
		}
		if depCons.Platform == "" {
			depCons.Platform = node.Platform
		}
		depNode, err := sv.resolve(depCons)
		if err != nil {
			return nil, fmt.Errorf("%s depends on %s: %w", name, depName, err)
		}
		node.Deps[depNode.Name] = depNode
	}

	// User ^constraints that name direct deps not in the recipe are an
	// error only if they are not resolvable packages at all; Spack
	// attaches extra user deps to the root. Here: attach to root only.
	for depName, depCons := range constraint.Deps {
		if _, ok := node.Deps[depName]; ok {
			continue // already resolved via recipe
		}
		if node.FindDep(depName) != nil {
			continue // appears transitively; DAG-wide constraint already applied
		}
		if sv.c.Repo.IsVirtual(depName) {
			// A ^mpi style constraint with no recipe edge: resolve via provider.
			depNode, err := sv.resolveVirtual(depCons.Clone())
			if err != nil {
				return nil, err
			}
			node.Deps[depNode.Name] = depNode
			continue
		}
		depNode, err := sv.resolve(depCons.Clone())
		if err != nil {
			return nil, err
		}
		node.Deps[depName] = depNode
	}

	// --- conflicts -----------------------------------------------------------------
	for _, cf := range pkg.Conflicts {
		whenOK := cf.When == nil || node.Satisfies(cf.When)
		if whenOK && node.Satisfies(cf.Spec) {
			return nil, fmt.Errorf("package %s: conflict %q: %s", name, cf.Spec.String(), cf.Msg)
		}
	}

	if err := node.MarkConcrete(); err != nil {
		return nil, err
	}
	return node, nil
}

// resolveVirtual picks a provider for a virtual constraint and
// resolves it.
func (sv *solve) resolveVirtual(constraint *spec.Spec) (*spec.Spec, error) {
	virtual := constraint.Name
	providers := sv.c.Repo.Providers(virtual)
	if len(providers) == 0 {
		return nil, fmt.Errorf("no providers for virtual package %s", virtual)
	}

	// 1. A node already in the context that provides the virtual wins
	//    (unification).
	for _, p := range providers {
		if _, ok := sv.nodes[p]; ok {
			return sv.resolve(mapVirtualConstraint(constraint, p))
		}
	}

	ordered := orderProviders(providers, sv.c.Config.ProviderPrefs[virtual], sv.c.Config)

	// "buildable: false" on the virtual name (Figure 4) restricts the
	// choice to providers available as externals.
	if sv.c.Config.NotBuildable[virtual] {
		var withExt []string
		for _, p := range ordered {
			if len(sv.c.Config.Externals[p]) > 0 {
				withExt = append(withExt, p)
			}
		}
		if len(withExt) == 0 {
			return nil, fmt.Errorf("virtual %s is not buildable and no provider has an external", virtual)
		}
		ordered = withExt
	}

	var firstErr error
	for _, p := range ordered {
		node, err := sv.resolve(mapVirtualConstraint(constraint, p))
		if err == nil {
			return node, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, fmt.Errorf("no provider of %s satisfies %q: %w", virtual, constraint.String(), firstErr)
}

// mapVirtualConstraint rewrites a constraint on a virtual package into
// a constraint on a chosen provider. Version constraints on the
// virtual interface do not transfer (interface versions are not
// implementation versions); variants, compiler, target and deps do.
func mapVirtualConstraint(c *spec.Spec, provider string) *spec.Spec {
	out := c.Clone()
	out.Name = provider
	out.Versions = spec.VersionList{}
	return out
}

// orderProviders sorts candidate providers: configured preferences
// first, then providers with a configured external, then the rest
// alphabetically.
func orderProviders(providers, prefs []string, cfg *Config) []string {
	rank := func(p string) int {
		for i, pref := range prefs {
			if p == pref {
				return i
			}
		}
		if len(cfg.Externals[p]) > 0 {
			return len(prefs)
		}
		return len(prefs) + 1
	}
	out := append([]string(nil), providers...)
	sort.SliceStable(out, func(i, j int) bool {
		ri, rj := rank(out[i]), rank(out[j])
		if ri != rj {
			return ri < rj
		}
		return out[i] < out[j]
	})
	return out
}

// tryExternal returns a concrete node built from a configured
// external if one satisfies the constraint.
func (sv *solve) tryExternal(pkg *pkgrepo.Package, constraint *spec.Spec) (*spec.Spec, bool, error) {
	for _, ext := range sv.c.Config.Externals[pkg.Name] {
		if !ext.Spec.Intersects(constraint.WithoutDeps()) {
			continue
		}
		node := ext.Spec.Clone()
		node.External = ext.Prefix
		// Record requested variants so downstream conditions see them.
		for vname, vv := range constraint.Variants {
			if _, ok := node.Variants[vname]; !ok {
				node.SetVariant(vname, vv)
			}
		}
		if node.Target == "" {
			node.Target = sv.c.Config.Target
		}
		if node.Platform == "" {
			node.Platform = sv.c.Config.Platform
		}
		if err := node.MarkConcrete(); err != nil {
			return nil, false, err
		}
		return node, true, nil
	}
	return nil, false, nil
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
