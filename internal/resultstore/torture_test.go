package resultstore

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestPowerCutAtEveryByte is the crash-safety contract of the WAL,
// checked exhaustively: write a sequence of batches, then simulate a
// power cut at EVERY byte offset of the segment by truncating a copy
// there, and require that recovery (a) keeps exactly the batches whose
// final byte made it to disk, (b) drops the torn tail without an
// error, and (c) accepts new appends afterwards. Offsets are exact
// because the WAL has no file header — a batch is durable iff the file
// reaches its commit boundary.
func TestPowerCutAtEveryByte(t *testing.T) {
	const batches = 6
	golden := t.TempDir()
	opts := Options{
		SegmentBytes:        1 << 20, // never rotate: one segment, exact offsets
		Clock:               telemetry.FixedClock{T: time.Unix(1700000000, 0)},
		NoBackgroundCompact: true,
	}
	s, err := Open(golden, opts)
	if err != nil {
		t.Fatal(err)
	}
	// boundaries[i] is the commit point of batch i: the segment size
	// after its append.
	boundaries := make([]int64, batches)
	segPath := filepath.Join(golden, segmentName(1))
	for i := 0; i < batches; i++ {
		mustAppend(t, s, fmt.Sprintf("batch-%d", i),
			res("saxpy", "cts1", "saxpy_time", float64(i)),
			res("saxpy", "cloud-c5n", "saxpy_time", float64(i)+0.5))
		fi, err := os.Stat(segPath)
		if err != nil {
			t.Fatal(err)
		}
		boundaries[i] = fi.Size()
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != boundaries[batches-1] {
		t.Fatalf("segment is %d bytes, want %d", len(data), boundaries[batches-1])
	}

	root := t.TempDir()
	for off := 0; off <= len(data); off++ {
		dir := filepath.Join(root, fmt.Sprintf("off-%06d", off))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		wantBatches := 0
		var lastGood int64
		for _, b := range boundaries {
			if b <= int64(off) {
				wantBatches++
				lastGood = b
			}
		}

		rec, err := Open(dir, opts)
		if err != nil {
			t.Fatalf("offset %d: recovery errored: %v", off, err)
		}
		if got := rec.Len(); got != wantBatches*2 {
			t.Fatalf("offset %d: recovered %d results, want %d", off, got, wantBatches*2)
		}
		for i := 0; i < batches; i++ {
			want := i < wantBatches
			if got := rec.HasKey(fmt.Sprintf("batch-%d", i)); got != want {
				t.Fatalf("offset %d: HasKey(batch-%d) = %v, want %v", off, i, got, want)
			}
		}
		// Recovery must have truncated the torn tail back to the last
		// commit boundary so new appends land on clean ground.
		fi, err := os.Stat(filepath.Join(dir, segmentName(1)))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != lastGood {
			t.Fatalf("offset %d: segment is %d bytes after recovery, want %d", off, fi.Size(), lastGood)
		}
		mustAppend(t, rec, "post-crash", res("saxpy", "cts1", "saxpy_time", 9.9))
		if err := rec.Close(); err != nil {
			t.Fatalf("offset %d: close: %v", off, err)
		}
		// And the post-crash append itself survives another recovery.
		rec2, err := Open(dir, opts)
		if err != nil {
			t.Fatalf("offset %d: second recovery: %v", off, err)
		}
		if got := rec2.Len(); got != wantBatches*2+1 {
			t.Fatalf("offset %d: second recovery holds %d results, want %d", off, got, wantBatches*2+1)
		}
		rec2.Close()
		os.RemoveAll(dir)
	}
}

// TestPowerCutWithBitrot flips a byte inside the tail record instead
// of truncating: CRC validation must drop the corrupted record and
// everything after it while keeping the intact prefix.
func TestPowerCutWithBitrot(t *testing.T) {
	golden := t.TempDir()
	opts := Options{
		SegmentBytes:        1 << 20,
		Clock:               telemetry.FixedClock{T: time.Unix(1700000000, 0)},
		NoBackgroundCompact: true,
	}
	s, err := Open(golden, opts)
	if err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(golden, segmentName(1))
	mustAppend(t, s, "good", res("saxpy", "cts1", "saxpy_time", 1.0))
	fi, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	boundary := fi.Size()
	mustAppend(t, s, "casualty", res("saxpy", "cts1", "saxpy_time", 2.0))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	data[boundary+recordHeaderSize+4] ^= 0xff // corrupt the second payload
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("recovery errored on bitrot: %v", err)
	}
	defer rec.Close()
	if rec.Len() != 1 || !rec.HasKey("good") || rec.HasKey("casualty") {
		t.Fatalf("bitrot recovery: Len=%d good=%v casualty=%v",
			rec.Len(), rec.HasKey("good"), rec.HasKey("casualty"))
	}
}

// TestScanRecordsRejectsHugeLength pins that a corrupt length field is
// treated as a torn tail, not an allocation request.
func TestScanRecordsRejectsHugeLength(t *testing.T) {
	data := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	payloads, good := scanRecords(data)
	if len(payloads) != 0 || good != 0 {
		t.Fatalf("scanRecords = %d payloads, good=%d; want 0, 0", len(payloads), good)
	}
}

// TestTornTailInteriorSegment: only the newest segment may be
// truncated on recovery; an older (sealed) segment with a tear stops
// replaying at the tear but keeps its bytes.
func TestTornTailInteriorSegment(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		SegmentBytes:        40, // tiny: force rotation between batches
		Clock:               telemetry.FixedClock{T: time.Unix(1700000000, 0)},
		NoBackgroundCompact: true,
	}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, "k1", res("saxpy", "cts1", "saxpy_time", 1.0))
	mustAppend(t, s, "k2", res("saxpy", "cts1", "saxpy_time", 2.0))
	mustAppend(t, s, "k3", res("saxpy", "cts1", "saxpy_time", 3.0))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listNumbered(dir, segmentPrefix, segmentSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("need at least two segments, got %v", segs)
	}
	// Tear the FIRST segment mid-record.
	first := filepath.Join(dir, segmentName(segs[0]))
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	torn := int64(len(data) - 3)
	if err := os.Truncate(first, torn); err != nil {
		t.Fatal(err)
	}
	rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("recovery errored: %v", err)
	}
	defer rec.Close()
	// k1's record was torn away; later segments still replay.
	if rec.HasKey("k1") {
		t.Fatal("torn k1 should not have been recovered")
	}
	if !rec.HasKey("k2") || !rec.HasKey("k3") {
		t.Fatal("segments after the torn one must still replay")
	}
	fi, err := os.Stat(first)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != torn {
		t.Fatalf("sealed segment was modified: %d bytes, want %d", fi.Size(), torn)
	}
}
