package resultstore

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/metricsdb"
)

// TestAppendManyGroupCommit: a group of batches lands atomically under
// one fsync, with identity assigned in group order, and survives
// recovery exactly.
func TestAppendManyGroupCommit(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, fixedOpts())
	if err != nil {
		t.Fatal(err)
	}
	batches := []Batch{
		{Key: "g1", Results: []metricsdb.Result{res("saxpy", "cts1", "t", 1), res("saxpy", "cts1", "t", 2)}},
		{Key: "g2", Results: []metricsdb.Result{res("stream", "cts1", "bw", 90)}},
		{Key: "g3", Results: []metricsdb.Result{res("hpcg", "tioga", "gflops", 7)}},
	}
	applied, err := s.AppendMany(context.Background(), batches)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range applied {
		if !a {
			t.Fatalf("batch %d reported duplicate on first apply", i)
		}
	}
	if got := s.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	all := s.Query(metricsdb.Filter{})
	for i, r := range all {
		if r.Seq != i+1 {
			t.Fatalf("result %d has Seq %d — group order broken", i, r.Seq)
		}
	}
	before, _ := json.Marshal(all)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery replays the group exactly.
	s2, err := Open(dir, fixedOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	after, _ := json.Marshal(s2.Query(metricsdb.Filter{}))
	if string(before) != string(after) {
		t.Fatalf("group commit not byte-identical across recovery:\n%s\n%s", before, after)
	}
	if !s2.HasKey("g1") || !s2.HasKey("g2") || !s2.HasKey("g3") {
		t.Fatal("recovered store lost group keys")
	}
}

// TestAppendManyDedupsWithinAndAcrossGroups: a key repeated inside one
// group applies once; a key replayed in a later group is a duplicate.
func TestAppendManyDedupsWithinAndAcrossGroups(t *testing.T) {
	s, err := Open(t.TempDir(), fixedOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	applied, err := s.AppendMany(context.Background(), []Batch{
		{Key: "dup", Results: []metricsdb.Result{res("a", "x", "t", 1)}},
		{Key: "dup", Results: []metricsdb.Result{res("a", "x", "t", 2)}},
		{Key: "other", Results: []metricsdb.Result{res("b", "x", "t", 3)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true}
	for i := range want {
		if applied[i] != want[i] {
			t.Fatalf("applied = %v, want %v", applied, want)
		}
	}
	if got := s.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2 (within-group duplicate applied)", got)
	}
	applied, err = s.AppendMany(context.Background(), []Batch{
		{Key: "dup", Results: []metricsdb.Result{res("a", "x", "t", 9)}},
	})
	if err != nil || applied[0] {
		t.Fatalf("cross-group replay: applied=%v err=%v", applied, err)
	}
}

// TestAppendManyValidatesUpFront: one bad batch rejects the whole
// group before anything is written.
func TestAppendManyValidatesUpFront(t *testing.T) {
	s, err := Open(t.TempDir(), fixedOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, err = s.AppendMany(context.Background(), []Batch{
		{Key: "ok", Results: []metricsdb.Result{res("a", "x", "t", 1)}},
		{Key: "", Results: []metricsdb.Result{res("b", "x", "t", 2)}},
	})
	if err == nil {
		t.Fatal("group with a keyless batch should fail")
	}
	if got := s.Len(); got != 0 {
		t.Fatalf("failed group leaked %d results", got)
	}
}

// TestAppendManyEmptyGroup: an empty group is a no-op, not an error.
func TestAppendManyEmptyGroup(t *testing.T) {
	s, err := Open(t.TempDir(), fixedOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	applied, err := s.AppendMany(context.Background(), nil)
	if err != nil || len(applied) != 0 {
		t.Fatalf("empty group: applied=%v err=%v", applied, err)
	}
}

// TestReplicationAccessors: ResultsAfter/MaxSeq/AppliedBatches expose
// the watermark protocol primitives.
func TestReplicationAccessors(t *testing.T) {
	s, err := Open(t.TempDir(), fixedOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustAppend(t, s, "k1", res("a", "x", "t", 1), res("a", "x", "t", 2))
	mustAppend(t, s, "k2", res("b", "x", "t", 3))
	if got := s.MaxSeq(); got != 3 {
		t.Fatalf("MaxSeq = %d, want 3", got)
	}
	if got := s.AppliedBatches(); got != 2 {
		t.Fatalf("AppliedBatches = %d, want 2", got)
	}
	delta := s.ResultsAfter(1)
	if len(delta) != 2 || delta[0].Seq != 2 || delta[1].Seq != 3 {
		t.Fatalf("ResultsAfter(1) = %+v", delta)
	}
	if got := s.ResultsAfter(3); len(got) != 0 {
		t.Fatalf("ResultsAfter(MaxSeq) = %+v, want empty", got)
	}
	// Watermark 0 is the full bootstrap snapshot.
	if got := s.ResultsAfter(0); len(got) != 3 {
		t.Fatalf("ResultsAfter(0) returned %d results, want 3", len(got))
	}
}
