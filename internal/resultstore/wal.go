package resultstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// WAL framing: every record is
//
//	uint32 big-endian payload length
//	uint32 big-endian CRC-32 (IEEE) of the payload
//	payload bytes
//
// There is no file header, so a record's commit point is simply the
// byte offset past its payload — which is what makes the power-cut
// torture test's "truncate at every offset" model exact. A record is
// committed iff all of its bytes (header + payload) reached the file;
// any shorter prefix is a torn tail that recovery silently drops.
const recordHeaderSize = 8

// maxRecordSize bounds a single record; a length field above it is
// treated as corruption (torn tail), not an allocation request.
const maxRecordSize = 64 << 20

// appendRecord frames payload onto w and returns the bytes written.
func appendRecord(w io.Writer, payload []byte) (int, error) {
	var hdr [recordHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return recordHeaderSize + len(payload), nil
}

// scanRecords walks a segment's bytes and returns the committed
// payloads plus the offset of the first torn or corrupt record (==
// len(data) when the segment is clean). It never returns an error:
// a torn tail is an expected crash artifact, and recovery's contract
// is to keep every fully-committed record before it.
func scanRecords(data []byte) (payloads [][]byte, good int) {
	off := 0
	for {
		if off+recordHeaderSize > len(data) {
			return payloads, off
		}
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		sum := binary.BigEndian.Uint32(data[off+4 : off+8])
		if n > maxRecordSize || off+recordHeaderSize+n > len(data) {
			return payloads, off
		}
		payload := data[off+recordHeaderSize : off+recordHeaderSize+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return payloads, off
		}
		payloads = append(payloads, payload)
		off += recordHeaderSize + n
	}
}

const (
	segmentPrefix  = "wal-"
	segmentSuffix  = ".log"
	snapshotPrefix = "snap-"
	snapshotSuffix = ".json"
)

func segmentName(n int) string  { return fmt.Sprintf("%s%08d%s", segmentPrefix, n, segmentSuffix) }
func snapshotName(n int) string { return fmt.Sprintf("%s%08d%s", snapshotPrefix, n, snapshotSuffix) }

// parseNumbered extracts the sequence number from a segment or
// snapshot file name.
func parseNumbered(name, prefix, suffix string) (int, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	n := 0
	if len(mid) == 0 {
		return 0, false
	}
	for _, c := range mid {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// listNumbered returns the sequence numbers of the files in dir
// matching prefix/suffix, ascending.
func listNumbered(dir, prefix, suffix string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []int
	for _, e := range entries {
		if n, ok := parseNumbered(e.Name(), prefix, suffix); ok {
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out, nil
}

// syncDir fsyncs a directory so renames and creates inside it are
// durable. Errors are returned; on platforms where directories cannot
// be fsynced the caller treats it as best-effort.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// atomicWriteFile writes data to path via a temp file + rename +
// directory fsync, so a crash leaves either the old file or the new
// one, never a partial write under the final name.
func atomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}
