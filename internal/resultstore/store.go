// Package resultstore is the durable half of the results federation
// service: a crash-safe storage engine for metricsdb results. The
// paper's Figure 6 workflow ends in a shared metrics database that
// federated CI runners push into; a database that forgets its
// contents on restart (or corrupts them on a power cut) cannot be
// the accrual point exaCB-style collaborative benchmarking needs, so
// this package provides the on-disk contract:
//
//   - Append-only WAL. Every ingested batch is one length+CRC framed
//     record (see wal.go), fsynced before the append is acknowledged,
//     so an acknowledged batch survives a crash.
//   - Idempotent ingest. Batches carry a client-supplied key; a key
//     already applied is a no-op, which makes CI retries safe.
//   - Segment rotation + compaction. The WAL rotates at a size
//     threshold; sealed segments fold into a sorted snapshot in the
//     background, bounding recovery time.
//   - Deterministic recovery. Replay applies committed batches in
//     write order and truncates a torn tail — it never errors on one.
//     Reopening a store yields byte-identical query results (the
//     resultsd determinism test pins this over HTTP).
//
// Timestamps on WAL records come from an injectable telemetry.Clock,
// so tests using FixedClock produce byte-identical WAL files.
package resultstore

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/metricsdb"
	"repro/internal/telemetry"
)

// Options configures a store.
type Options struct {
	// SegmentBytes is the rotation threshold for the active WAL
	// segment; <=0 means 256 KiB.
	SegmentBytes int64
	// Clock stamps WAL batches (ingest audit trail); nil means the
	// wall clock. Query responses never contain these stamps, so the
	// clock choice cannot leak into served results.
	Clock telemetry.Clock
	// NoBackgroundCompact disables the compaction goroutine; sealed
	// segments then only fold into a snapshot on explicit Compact
	// calls (tests use this for deterministic file layouts).
	NoBackgroundCompact bool
}

const defaultSegmentBytes = 256 << 10

// Batch is one idempotent ingest unit: a client-chosen key and the
// results it covers. A key is applied at most once for the lifetime
// of the store, including across restarts.
type Batch struct {
	Key string
	// TraceID is the originating run's trace ID (32 lowercase hex
	// chars when set). It is stamped onto every result in the batch
	// that does not already carry one, so a later GET /v1/series can
	// answer "which run produced this point".
	TraceID string
	Results []metricsdb.Result
}

// walBatch is the WAL record payload. Results carry their assigned
// ID/Seq so replay reconstructs the exact in-memory state.
type walBatch struct {
	Key      string             `json:"key"`
	TraceID  string             `json:"trace_id,omitempty"`
	Received int64              `json:"received_unix_ns"`
	Results  []metricsdb.Result `json:"results"`
}

// snapshot is the compacted on-disk form: the full store state as of
// the last sealed segment. snapshotFormat tags the file so future
// layout changes can migrate.
type snapshot struct {
	Format  string             `json:"format"`
	Covered int                `json:"covered_segment"`
	NextID  int                `json:"next_id"`
	NextSeq int                `json:"next_seq"`
	Keys    []string           `json:"keys"`
	Results []metricsdb.Result `json:"results"`
}

const snapshotFormat = "benchpark-snap-1"

// Store is a durable, thread-safe result store. Queries delegate to
// an in-memory metricsdb.DB rebuilt on Open from the newest snapshot
// plus a WAL replay.
type Store struct {
	dir   string
	opts  Options
	clock telemetry.Clock

	mu          sync.Mutex
	db          *metricsdb.DB
	keys        map[string]bool
	nextID      int
	nextSeq     int
	active      *os.File
	activeSeq   int
	activeSize  int64
	snapCovered int
	closed      bool
	failed      error // sticky: set when the WAL is in an unknown state
	compactErr  error // last Compact outcome; cleared by a later success

	compactCh chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup
}

// Open recovers (or creates) a store in dir. Recovery loads the
// newest snapshot, replays every newer WAL segment in order, skips
// batches whose ingest key is already applied, and truncates a torn
// tail on the active segment. It never fails on a torn tail — that
// is the expected shape of a crash.
func Open(dir string, opts Options) (*Store, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	clock := opts.Clock
	if clock == nil {
		clock = telemetry.WallClock()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	s := &Store{
		dir:       dir,
		opts:      opts,
		clock:     clock,
		db:        metricsdb.New(),
		keys:      map[string]bool{},
		compactCh: make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	if !opts.NoBackgroundCompact {
		s.wg.Add(1)
		go s.compactor()
	}
	return s, nil
}

// recover rebuilds in-memory state from disk and opens the active
// segment for appending.
func (s *Store) recover() error {
	snaps, err := listNumbered(s.dir, snapshotPrefix, snapshotSuffix)
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if len(snaps) > 0 {
		s.snapCovered = snaps[len(snaps)-1]
		if err := s.loadSnapshot(s.snapCovered); err != nil {
			return err
		}
	}
	segs, err := listNumbered(s.dir, segmentPrefix, segmentSuffix)
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	for i, seg := range segs {
		if seg <= s.snapCovered {
			continue // already folded into the snapshot
		}
		if err := s.replaySegment(seg, i == len(segs)-1); err != nil {
			return err
		}
	}
	s.activeSeq = s.snapCovered + 1
	if len(segs) > 0 && segs[len(segs)-1] > s.snapCovered {
		s.activeSeq = segs[len(segs)-1]
	}
	path := filepath.Join(s.dir, segmentName(s.activeSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("resultstore: opening active segment: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("resultstore: %w", err)
	}
	s.active = f
	s.activeSize = fi.Size()
	return nil
}

// loadSnapshot restores the full store state from snap-N.json.
func (s *Store) loadSnapshot(n int) error {
	data, err := os.ReadFile(filepath.Join(s.dir, snapshotName(n)))
	if err != nil {
		return fmt.Errorf("resultstore: reading snapshot: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("resultstore: snapshot %s: %w", snapshotName(n), err)
	}
	if snap.Format != snapshotFormat {
		return fmt.Errorf("resultstore: snapshot %s has unknown format %q", snapshotName(n), snap.Format)
	}
	for _, r := range snap.Results {
		s.db.Insert(r)
	}
	for _, k := range snap.Keys {
		s.keys[k] = true
	}
	s.noteCounters(snap.NextID, snap.NextSeq)
	return nil
}

// replaySegment applies a WAL segment's committed batches. A torn
// tail is truncated away when the segment is the newest one (the only
// place a crash can legitimately tear); older segments just stop at
// the tear.
func (s *Store) replaySegment(seg int, newest bool) error {
	path := filepath.Join(s.dir, segmentName(seg))
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("resultstore: reading segment: %w", err)
	}
	payloads, good := scanRecords(data)
	for _, p := range payloads {
		var b walBatch
		if err := json.Unmarshal(p, &b); err != nil {
			return fmt.Errorf("resultstore: segment %s holds a CRC-valid but undecodable record: %w",
				segmentName(seg), err)
		}
		if s.keys[b.Key] {
			continue // snapshot already covers this batch
		}
		s.keys[b.Key] = true
		for _, r := range b.Results {
			s.db.Insert(r)
			s.noteCounters(r.ID, r.Seq)
		}
	}
	if good < len(data) && newest {
		if err := os.Truncate(path, int64(good)); err != nil {
			return fmt.Errorf("resultstore: truncating torn tail: %w", err)
		}
	}
	return nil
}

// noteCounters raises the ID/Seq watermarks.
func (s *Store) noteCounters(id, seq int) {
	if id > s.nextID {
		s.nextID = id
	}
	if seq > s.nextSeq {
		s.nextSeq = seq
	}
}

// Append durably ingests one batch. It assigns each result its ID and
// sequence number, writes the batch as a single WAL record, fsyncs,
// and only then applies it to the queryable state — so an
// acknowledged batch is always recoverable. A batch whose key was
// already applied returns (false, nil) without touching the WAL.
func (s *Store) Append(ctx context.Context, b Batch) (applied bool, err error) {
	if b.Key == "" {
		return false, fmt.Errorf("resultstore: batch needs an ingest key")
	}
	if len(b.Results) == 0 {
		return false, fmt.Errorf("resultstore: batch %q holds no results", b.Key)
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	_, span := telemetry.StartSpan(ctx, "wal:commit")
	defer span.End()
	span.SetAttr("key", b.Key)
	span.SetInt("results", len(b.Results))
	defer func() {
		if err != nil {
			span.SetError(err)
		} else {
			span.SetAttr("applied", fmt.Sprintf("%v", applied))
		}
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, fmt.Errorf("resultstore: store is closed")
	}
	if s.failed != nil {
		return false, fmt.Errorf("resultstore: store failed: %w", s.failed)
	}
	if s.keys[b.Key] {
		return false, nil
	}
	// Rotate first so a rotation failure leaves the batch unwritten
	// (clean retry semantics) rather than half-applied.
	if s.activeSize >= s.opts.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return false, err
		}
	}

	rs := make([]metricsdb.Result, len(b.Results))
	copy(rs, b.Results)
	for i := range rs {
		s.nextID++
		s.nextSeq++
		rs[i].ID = s.nextID
		rs[i].Seq = s.nextSeq
		if rs[i].TraceID == "" {
			rs[i].TraceID = b.TraceID
		}
	}
	payload, err := json.Marshal(walBatch{
		Key:      b.Key,
		TraceID:  b.TraceID,
		Received: s.clock.Now().UnixNano(),
		Results:  rs,
	})
	if err != nil {
		s.nextID -= len(rs)
		s.nextSeq -= len(rs)
		return false, fmt.Errorf("resultstore: %w", err)
	}
	n, werr := appendRecord(s.active, payload)
	if werr == nil {
		werr = s.active.Sync()
	}
	if werr != nil {
		// The segment may hold a torn record now; cut it back to the
		// last known-good offset so later appends don't land behind a
		// tear replay would drop.
		s.nextID -= len(rs)
		s.nextSeq -= len(rs)
		if terr := s.active.Truncate(s.activeSize); terr != nil {
			s.failed = fmt.Errorf("append failed (%v) and truncate failed (%v)", werr, terr)
		}
		return false, fmt.Errorf("resultstore: appending batch: %w", werr)
	}
	s.activeSize += int64(n)
	s.keys[b.Key] = true
	for _, r := range rs {
		s.db.Insert(r)
	}
	return true, nil
}

// rotateLocked seals the active segment and opens the next one,
// nudging the background compactor. Caller holds s.mu.
func (s *Store) rotateLocked() error {
	if err := s.active.Close(); err != nil {
		return fmt.Errorf("resultstore: sealing segment: %w", err)
	}
	next := s.activeSeq + 1
	f, err := os.OpenFile(filepath.Join(s.dir, segmentName(next)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// Reopen the sealed segment so the store keeps accepting
		// appends; rotation retries on the next append.
		re, rerr := os.OpenFile(filepath.Join(s.dir, segmentName(s.activeSeq)), os.O_WRONLY|os.O_APPEND, 0o644)
		if rerr != nil {
			s.failed = fmt.Errorf("rotation failed (%v) and reopen failed (%v)", err, rerr)
			return fmt.Errorf("resultstore: %w", s.failed)
		}
		s.active = re
		return fmt.Errorf("resultstore: rotating segment: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		f.Close()
		return fmt.Errorf("resultstore: %w", err)
	}
	s.active = f
	s.activeSeq = next
	s.activeSize = 0
	select {
	case s.compactCh <- struct{}{}:
	default:
	}
	return nil
}

// compactor folds sealed segments into snapshots off the append path.
func (s *Store) compactor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.compactCh:
			// A failed background compaction is retried on the next
			// rotation; the WAL alone remains a complete record.
			_ = s.Compact()
		}
	}
}

// Compact writes the current state as a sorted snapshot covering all
// sealed segments, then removes them and older snapshots. The active
// segment stays; replaying it over the snapshot is harmless because
// ingest keys dedup. Safe to call at any time, including with
// background compaction enabled.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.compactLocked()
	s.compactErr = err
	return err
}

// compactLocked does the snapshot fold; caller holds s.mu.
func (s *Store) compactLocked() error {
	if s.closed {
		return fmt.Errorf("resultstore: store is closed")
	}
	covered := s.activeSeq - 1
	if covered <= s.snapCovered {
		return nil // nothing sealed since the last snapshot
	}
	keys := make([]string, 0, len(s.keys))
	for k := range s.keys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	snap := snapshot{
		Format:  snapshotFormat,
		Covered: covered,
		NextID:  s.nextID,
		NextSeq: s.nextSeq,
		Keys:    keys,
		Results: s.db.Query(metricsdb.Filter{}), // sorted by Seq
	}
	data, err := json.Marshal(&snap)
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := atomicWriteFile(filepath.Join(s.dir, snapshotName(covered)), data); err != nil {
		return fmt.Errorf("resultstore: writing snapshot: %w", err)
	}
	prevSnap := s.snapCovered
	s.snapCovered = covered
	// Garbage-collect what the snapshot supersedes. Removal failures
	// are harmless (recovery skips covered segments) so only the
	// first error is surfaced.
	var firstErr error
	segs, err := listNumbered(s.dir, segmentPrefix, segmentSuffix)
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	for _, seg := range segs {
		if seg <= covered {
			if err := os.Remove(filepath.Join(s.dir, segmentName(seg))); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if prevSnap > 0 {
		if err := os.Remove(filepath.Join(s.dir, snapshotName(prevSnap))); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close stops the compactor and seals the active segment. The store
// rejects appends afterwards; a new Open recovers the same state.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		return nil
	}
	err := s.active.Sync()
	if cerr := s.active.Close(); err == nil {
		err = cerr
	}
	s.active = nil
	return err
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Len reports the number of stored results.
func (s *Store) Len() int { return s.db.Len() }

// HasKey reports whether an ingest key has been applied.
func (s *Store) HasKey(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.keys[key]
}

// Query, Series, DetectRegressions, Systems, Usage and CompareSystems
// delegate to the in-memory metricsdb state, which the WAL keeps
// durable. See the metricsdb package for semantics.

func (s *Store) Query(f metricsdb.Filter) []metricsdb.Result { return s.db.Query(f) }

func (s *Store) Series(f metricsdb.Filter, fom string) []metricsdb.Point {
	return s.db.Series(f, fom)
}

func (s *Store) DetectRegressions(f metricsdb.Filter, fom string, window int, threshold float64) []metricsdb.Regression {
	return s.db.DetectRegressions(f, fom, window, threshold)
}

func (s *Store) Systems() []string { return s.db.Systems() }

func (s *Store) Usage() []metricsdb.UsageRow { return s.db.Usage() }

func (s *Store) CompareSystems(benchmark, sysA, sysB, fom string) []metricsdb.Comparison {
	return s.db.CompareSystems(benchmark, sysA, sysB, fom)
}
