// Package resultstore is the durable half of the results federation
// service: a crash-safe storage engine for metricsdb results. The
// paper's Figure 6 workflow ends in a shared metrics database that
// federated CI runners push into; a database that forgets its
// contents on restart (or corrupts them on a power cut) cannot be
// the accrual point exaCB-style collaborative benchmarking needs, so
// this package provides the on-disk contract:
//
//   - Append-only WAL. Every ingested batch is one length+CRC framed
//     record (see wal.go), fsynced before the append is acknowledged,
//     so an acknowledged batch survives a crash.
//   - Idempotent ingest. Batches carry a client-supplied key; a key
//     already applied is a no-op, which makes CI retries safe.
//   - Segment rotation + compaction. The WAL rotates at a size
//     threshold; sealed segments fold into a sorted snapshot in the
//     background, bounding recovery time.
//   - Deterministic recovery. Replay applies committed batches in
//     write order and truncates a torn tail — it never errors on one.
//     Reopening a store yields byte-identical query results (the
//     resultsd determinism test pins this over HTTP).
//
// Timestamps on WAL records come from an injectable telemetry.Clock,
// so tests using FixedClock produce byte-identical WAL files.
package resultstore

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/metricsdb"
	"repro/internal/telemetry"
)

// Options configures a store.
type Options struct {
	// SegmentBytes is the rotation threshold for the active WAL
	// segment; <=0 means 256 KiB.
	SegmentBytes int64
	// Clock stamps WAL batches (ingest audit trail); nil means the
	// wall clock. Query responses never contain these stamps, so the
	// clock choice cannot leak into served results.
	Clock telemetry.Clock
	// NoBackgroundCompact disables the compaction goroutine; sealed
	// segments then only fold into a snapshot on explicit Compact
	// calls (tests use this for deterministic file layouts).
	NoBackgroundCompact bool
}

const defaultSegmentBytes = 256 << 10

// Batch is one idempotent ingest unit: a client-chosen key and the
// results it covers. A key is applied at most once for the lifetime
// of the store, including across restarts.
type Batch struct {
	Key string
	// TraceID is the originating run's trace ID (32 lowercase hex
	// chars when set). It is stamped onto every result in the batch
	// that does not already carry one, so a later GET /v1/series can
	// answer "which run produced this point".
	TraceID string
	Results []metricsdb.Result
}

// walBatch is the WAL record payload. Results carry their assigned
// ID/Seq so replay reconstructs the exact in-memory state.
type walBatch struct {
	Key      string             `json:"key"`
	TraceID  string             `json:"trace_id,omitempty"`
	Received int64              `json:"received_unix_ns"`
	Results  []metricsdb.Result `json:"results"`
}

// snapshot is the compacted on-disk form: the full store state as of
// the last sealed segment. snapshotFormat tags the file so future
// layout changes can migrate.
type snapshot struct {
	Format  string             `json:"format"`
	Covered int                `json:"covered_segment"`
	NextID  int                `json:"next_id"`
	NextSeq int                `json:"next_seq"`
	Keys    []string           `json:"keys"`
	Results []metricsdb.Result `json:"results"`
}

const snapshotFormat = "benchpark-snap-1"

// Store is a durable, thread-safe result store. Queries delegate to
// an in-memory metricsdb.DB rebuilt on Open from the newest snapshot
// plus a WAL replay.
type Store struct {
	dir   string
	opts  Options
	clock telemetry.Clock

	mu          sync.Mutex
	db          *metricsdb.DB
	keys        map[string]bool
	nextID      int
	nextSeq     int
	active      *os.File
	activeSeq   int
	activeSize  int64
	snapCovered int
	closed      bool
	failed      error // sticky: set when the WAL is in an unknown state
	compactErr  error // last Compact outcome; cleared by a later success

	compactCh chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup
}

// Open recovers (or creates) a store in dir. Recovery loads the
// newest snapshot, replays every newer WAL segment in order, skips
// batches whose ingest key is already applied, and truncates a torn
// tail on the active segment. It never fails on a torn tail — that
// is the expected shape of a crash.
func Open(dir string, opts Options) (*Store, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	clock := opts.Clock
	if clock == nil {
		clock = telemetry.WallClock()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	s := &Store{
		dir:       dir,
		opts:      opts,
		clock:     clock,
		db:        metricsdb.New(),
		keys:      map[string]bool{},
		compactCh: make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	if !opts.NoBackgroundCompact {
		s.wg.Add(1)
		go s.compactor()
	}
	return s, nil
}

// recover rebuilds in-memory state from disk and opens the active
// segment for appending.
func (s *Store) recover() error {
	snaps, err := listNumbered(s.dir, snapshotPrefix, snapshotSuffix)
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if len(snaps) > 0 {
		s.snapCovered = snaps[len(snaps)-1]
		if err := s.loadSnapshot(s.snapCovered); err != nil {
			return err
		}
	}
	segs, err := listNumbered(s.dir, segmentPrefix, segmentSuffix)
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	for i, seg := range segs {
		if seg <= s.snapCovered {
			continue // already folded into the snapshot
		}
		if err := s.replaySegment(seg, i == len(segs)-1); err != nil {
			return err
		}
	}
	s.activeSeq = s.snapCovered + 1
	if len(segs) > 0 && segs[len(segs)-1] > s.snapCovered {
		s.activeSeq = segs[len(segs)-1]
	}
	path := filepath.Join(s.dir, segmentName(s.activeSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("resultstore: opening active segment: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("resultstore: %w", err)
	}
	s.active = f
	s.activeSize = fi.Size()
	return nil
}

// loadSnapshot restores the full store state from snap-N.json.
func (s *Store) loadSnapshot(n int) error {
	data, err := os.ReadFile(filepath.Join(s.dir, snapshotName(n)))
	if err != nil {
		return fmt.Errorf("resultstore: reading snapshot: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("resultstore: snapshot %s: %w", snapshotName(n), err)
	}
	if snap.Format != snapshotFormat {
		return fmt.Errorf("resultstore: snapshot %s has unknown format %q", snapshotName(n), snap.Format)
	}
	for _, r := range snap.Results {
		s.db.Insert(r)
	}
	for _, k := range snap.Keys {
		s.keys[k] = true
	}
	s.noteCounters(snap.NextID, snap.NextSeq)
	return nil
}

// replaySegment applies a WAL segment's committed batches. A torn
// tail is truncated away when the segment is the newest one (the only
// place a crash can legitimately tear); older segments just stop at
// the tear.
func (s *Store) replaySegment(seg int, newest bool) error {
	path := filepath.Join(s.dir, segmentName(seg))
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("resultstore: reading segment: %w", err)
	}
	payloads, good := scanRecords(data)
	for _, p := range payloads {
		var b walBatch
		if err := json.Unmarshal(p, &b); err != nil {
			return fmt.Errorf("resultstore: segment %s holds a CRC-valid but undecodable record: %w",
				segmentName(seg), err)
		}
		if s.keys[b.Key] {
			continue // snapshot already covers this batch
		}
		s.keys[b.Key] = true
		for _, r := range b.Results {
			s.db.Insert(r)
			s.noteCounters(r.ID, r.Seq)
		}
	}
	if good < len(data) && newest {
		if err := os.Truncate(path, int64(good)); err != nil {
			return fmt.Errorf("resultstore: truncating torn tail: %w", err)
		}
	}
	return nil
}

// noteCounters raises the ID/Seq watermarks.
func (s *Store) noteCounters(id, seq int) {
	if id > s.nextID {
		s.nextID = id
	}
	if seq > s.nextSeq {
		s.nextSeq = seq
	}
}

// Append durably ingests one batch. It assigns each result its ID and
// sequence number, writes the batch as a single WAL record, fsyncs,
// and only then applies it to the queryable state — so an
// acknowledged batch is always recoverable. A batch whose key was
// already applied returns (false, nil) without touching the WAL.
func (s *Store) Append(ctx context.Context, b Batch) (applied bool, err error) {
	if err := validateBatch(b); err != nil {
		return false, err
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	_, span := telemetry.StartSpan(ctx, "wal:commit")
	defer span.End()
	span.SetAttr("key", b.Key)
	span.SetInt("results", len(b.Results))
	defer func() {
		if err != nil {
			span.SetError(err)
		} else {
			span.SetAttr("applied", fmt.Sprintf("%v", applied))
		}
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.maybeRotateLocked(); err != nil {
		return false, err
	}
	ok, err := s.appendGroupLocked([]Batch{b})
	if err != nil {
		return false, err
	}
	return ok[0], nil
}

// AppendMany durably ingests a group of batches under one fsync: every
// batch becomes its own WAL record (so replay and idempotency are
// unchanged), but the group shares a single Sync before any batch is
// acknowledged. This is the group-commit primitive the sharded
// router's ingest workers use to amortize fsync cost across the
// batches queued behind one durable write. applied[i] reports whether
// batches[i] was new (false = its key was already applied, including
// by an earlier batch in the same group). On error nothing from the
// group is acknowledged; retrying the whole group is safe because
// ingest keys dedup.
func (s *Store) AppendMany(ctx context.Context, batches []Batch) (applied []bool, err error) {
	if len(batches) == 0 {
		return nil, nil
	}
	for _, b := range batches {
		if err := validateBatch(b); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, span := telemetry.StartSpan(ctx, "wal:commit")
	defer span.End()
	span.SetInt("group", len(batches))
	defer func() {
		if err != nil {
			span.SetError(err)
		}
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.maybeRotateLocked(); err != nil {
		return nil, err
	}
	return s.appendGroupLocked(batches)
}

// validateBatch rejects the shapes Append never accepts.
func validateBatch(b Batch) error {
	if b.Key == "" {
		return fmt.Errorf("resultstore: batch needs an ingest key")
	}
	if len(b.Results) == 0 {
		return fmt.Errorf("resultstore: batch %q holds no results", b.Key)
	}
	return nil
}

// maybeRotateLocked seals the active segment once it has outgrown the
// segment bound. Callers rotate BEFORE appendGroupLocked so a
// rotation failure leaves the group unwritten (clean retry semantics)
// rather than half-applied — and so rotation's own seal-fsync stays
// out of appendGroupLocked, whose single Sync call is the group's
// entire durability story (walack's fact for it must go dirty the
// moment that call is stripped).
func (s *Store) maybeRotateLocked() error {
	if s.activeSize >= s.opts.SegmentBytes {
		return s.rotateLocked()
	}
	return nil
}

// appendGroupLocked writes one record per new batch, fsyncs once, and
// only then applies the group to the queryable state. Caller holds
// s.mu, has validated every batch, and has rotated the segment.
func (s *Store) appendGroupLocked(batches []Batch) ([]bool, error) {
	if s.closed {
		return nil, fmt.Errorf("resultstore: store is closed")
	}
	if s.failed != nil {
		return nil, fmt.Errorf("resultstore: store failed: %w", s.failed)
	}
	applied := make([]bool, len(batches))
	var (
		assigned int // ID/Seq counter advance to roll back on failure
		payloads [][]byte
		results  [][]metricsdb.Result
		keys     []string
		seen     = map[string]bool{} // keys earlier in this group
	)
	rollback := func() {
		s.nextID -= assigned
		s.nextSeq -= assigned
	}
	for i, b := range batches {
		if s.keys[b.Key] || seen[b.Key] {
			continue // duplicate: acknowledged without a write
		}
		seen[b.Key] = true
		rs := make([]metricsdb.Result, len(b.Results))
		copy(rs, b.Results)
		for j := range rs {
			s.nextID++
			s.nextSeq++
			assigned++
			rs[j].ID = s.nextID
			rs[j].Seq = s.nextSeq
			if rs[j].TraceID == "" {
				rs[j].TraceID = b.TraceID
			}
		}
		payload, err := json.Marshal(walBatch{
			Key:      b.Key,
			TraceID:  b.TraceID,
			Received: s.clock.Now().UnixNano(),
			Results:  rs,
		})
		if err != nil {
			rollback()
			return nil, fmt.Errorf("resultstore: %w", err)
		}
		payloads = append(payloads, payload)
		results = append(results, rs)
		keys = append(keys, b.Key)
		applied[i] = true
	}
	var written int64
	var werr error
	for _, payload := range payloads {
		n, err := appendRecord(s.active, payload)
		written += int64(n)
		if err != nil {
			werr = err
			break
		}
	}
	if werr == nil && len(payloads) > 0 {
		werr = s.active.Sync()
	}
	if werr != nil {
		// The segment may hold torn records now; cut it back to the
		// last known-good offset so later appends don't land behind a
		// tear replay would drop.
		rollback()
		if terr := s.active.Truncate(s.activeSize); terr != nil {
			s.failed = fmt.Errorf("append failed (%v) and truncate failed (%v)", werr, terr)
		}
		return nil, fmt.Errorf("resultstore: appending batch: %w", werr)
	}
	s.activeSize += written
	for i, rs := range results {
		s.keys[keys[i]] = true
		for _, r := range rs {
			s.db.Insert(r)
		}
	}
	return applied, nil
}

// rotateLocked seals the active segment and opens the next one,
// nudging the background compactor. Caller holds s.mu.
func (s *Store) rotateLocked() error {
	if err := s.active.Close(); err != nil {
		return fmt.Errorf("resultstore: sealing segment: %w", err)
	}
	next := s.activeSeq + 1
	f, err := os.OpenFile(filepath.Join(s.dir, segmentName(next)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// Reopen the sealed segment so the store keeps accepting
		// appends; rotation retries on the next append.
		re, rerr := os.OpenFile(filepath.Join(s.dir, segmentName(s.activeSeq)), os.O_WRONLY|os.O_APPEND, 0o644)
		if rerr != nil {
			s.failed = fmt.Errorf("rotation failed (%v) and reopen failed (%v)", err, rerr)
			return fmt.Errorf("resultstore: %w", s.failed)
		}
		s.active = re
		return fmt.Errorf("resultstore: rotating segment: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		f.Close()
		return fmt.Errorf("resultstore: %w", err)
	}
	s.active = f
	s.activeSeq = next
	s.activeSize = 0
	select {
	case s.compactCh <- struct{}{}:
	default:
	}
	return nil
}

// compactor folds sealed segments into snapshots off the append path.
func (s *Store) compactor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.compactCh:
			// A failed background compaction is retried on the next
			// rotation; the WAL alone remains a complete record.
			_ = s.Compact()
		}
	}
}

// Compact writes the current state as a sorted snapshot covering all
// sealed segments, then removes them and older snapshots. The active
// segment stays; replaying it over the snapshot is harmless because
// ingest keys dedup. Safe to call at any time, including with
// background compaction enabled.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.compactLocked()
	s.compactErr = err
	return err
}

// compactLocked does the snapshot fold; caller holds s.mu.
func (s *Store) compactLocked() error {
	if s.closed {
		return fmt.Errorf("resultstore: store is closed")
	}
	covered := s.activeSeq - 1
	if covered <= s.snapCovered {
		return nil // nothing sealed since the last snapshot
	}
	keys := make([]string, 0, len(s.keys))
	for k := range s.keys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	snap := snapshot{
		Format:  snapshotFormat,
		Covered: covered,
		NextID:  s.nextID,
		NextSeq: s.nextSeq,
		Keys:    keys,
		Results: s.db.Query(metricsdb.Filter{}), // sorted by Seq
	}
	data, err := json.Marshal(&snap)
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := atomicWriteFile(filepath.Join(s.dir, snapshotName(covered)), data); err != nil {
		return fmt.Errorf("resultstore: writing snapshot: %w", err)
	}
	prevSnap := s.snapCovered
	s.snapCovered = covered
	// Garbage-collect what the snapshot supersedes. Removal failures
	// are harmless (recovery skips covered segments) so only the
	// first error is surfaced.
	var firstErr error
	segs, err := listNumbered(s.dir, segmentPrefix, segmentSuffix)
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	for _, seg := range segs {
		if seg <= covered {
			if err := os.Remove(filepath.Join(s.dir, segmentName(seg))); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if prevSnap > 0 {
		if err := os.Remove(filepath.Join(s.dir, snapshotName(prevSnap))); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close stops the compactor and seals the active segment. The store
// rejects appends afterwards; a new Open recovers the same state.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		return nil
	}
	err := s.active.Sync()
	if cerr := s.active.Close(); err == nil {
		err = cerr
	}
	s.active = nil
	return err
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Len reports the number of stored results.
func (s *Store) Len() int { return s.db.Len() }

// HasKey reports whether an ingest key has been applied.
func (s *Store) HasKey(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.keys[key]
}

// Query, Series, DetectRegressions, Systems, Usage and CompareSystems
// delegate to the in-memory metricsdb state, which the WAL keeps
// durable. See the metricsdb package for semantics.

func (s *Store) Query(f metricsdb.Filter) []metricsdb.Result { return s.db.Query(f) }

// ResultsAfter returns every stored result with Seq strictly greater
// than seq, in sequence order. Together with MaxSeq it is the
// snapshot-shipping primitive: a follower at watermark W applies
// ResultsAfter(W) and holds the primary's exact state — including
// IDs, Seqs and trace provenance — so its query responses are
// byte-identical to the primary's. ResultsAfter(0) is the full
// snapshot a fresh follower bootstraps from.
func (s *Store) ResultsAfter(seq int) []metricsdb.Result { return s.db.QueryAfter(seq) }

// MaxSeq reports the highest assigned sequence number (0 when empty) —
// the replication watermark.
func (s *Store) MaxSeq() int { return s.db.MaxSeq() }

// AppliedBatches reports how many distinct ingest batches the store
// has applied over its lifetime (the follower-lag gauge's batch-count
// companion to MaxSeq).
func (s *Store) AppliedBatches() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.keys)
}

func (s *Store) Series(f metricsdb.Filter, fom string) []metricsdb.Point {
	return s.db.Series(f, fom)
}

func (s *Store) DetectRegressions(f metricsdb.Filter, fom string, window int, threshold float64) []metricsdb.Regression {
	return s.db.DetectRegressions(f, fom, window, threshold)
}

func (s *Store) Systems() []string { return s.db.Systems() }

func (s *Store) Usage() []metricsdb.UsageRow { return s.db.Usage() }

func (s *Store) CompareSystems(benchmark, sysA, sysB, fom string) []metricsdb.Comparison {
	return s.db.CompareSystems(benchmark, sysA, sysB, fom)
}
