package resultstore

import (
	"fmt"
	"os"
	"path/filepath"
)

// Health is a point-in-time operational snapshot of the store. It
// backs resultsd's /readyz (the Ready/Reason pair) and /debug/ops
// (the gauges) endpoints. Readiness means the store can still accept
// durable appends: it is open, not in the sticky failed state, its
// WAL directory accepts writes, and compaction is not wedged. A store
// that is not Ready can usually still serve queries — the in-memory
// state stays intact — which is why resultsd keeps /healthz and the
// read API up while flipping /readyz to 503.
type Health struct {
	Ready           bool   `json:"ready"`
	Reason          string `json:"reason,omitempty"`
	Results         int    `json:"results"`
	IngestKeys      int    `json:"ingest_keys"`
	ActiveSegment   int    `json:"active_segment"`
	ActiveSizeBytes int64  `json:"active_size_bytes"`
	SnapshotCovered int    `json:"snapshot_covered"`
	CompactError    string `json:"compact_error,omitempty"`
}

// Health probes the store's ability to take durable writes and
// reports its WAL geometry. The writability probe round-trips a
// scratch file through the WAL directory, so a directory that was
// removed, remounted read-only, or filled up is detected even though
// the already-open active segment might still accept buffered writes.
func (s *Store) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := Health{
		Ready:           true,
		Results:         s.db.Len(),
		IngestKeys:      len(s.keys),
		ActiveSegment:   s.activeSeq,
		ActiveSizeBytes: s.activeSize,
		SnapshotCovered: s.snapCovered,
	}
	if s.compactErr != nil {
		h.CompactError = s.compactErr.Error()
	}
	switch {
	case s.closed:
		h.Ready, h.Reason = false, "store is closed"
	case s.failed != nil:
		h.Ready, h.Reason = false, fmt.Sprintf("store failed: %v", s.failed)
	default:
		if err := s.probeWritableLocked(); err != nil {
			h.Ready, h.Reason = false, fmt.Sprintf("wal directory not writable: %v", err)
		} else if s.compactErr != nil {
			h.Ready, h.Reason = false, fmt.Sprintf("compaction wedged: %v", s.compactErr)
		}
	}
	return h
}

// probeWritableLocked round-trips a scratch file through the WAL
// directory. Caller holds s.mu, so the probe cannot interleave with a
// rotation renaming files around it.
func (s *Store) probeWritableLocked() error {
	path := filepath.Join(s.dir, ".readyz.probe")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write([]byte("ok"))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if rerr := os.Remove(path); werr == nil {
		werr = rerr
	}
	return werr
}
