package resultstore

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/metricsdb"
	"repro/internal/telemetry"
)

func fixedOpts() Options {
	return Options{
		Clock:               telemetry.FixedClock{T: time.Unix(1700000000, 0)},
		NoBackgroundCompact: true,
	}
}

func res(bench, system string, fom string, v float64) metricsdb.Result {
	return metricsdb.Result{
		Benchmark:  bench,
		Workload:   "problem",
		System:     system,
		Experiment: bench + "_exp",
		FOMs:       map[string]float64{fom: v},
	}
}

func mustAppend(t *testing.T, s *Store, key string, rs ...metricsdb.Result) {
	t.Helper()
	applied, err := s.Append(context.Background(), Batch{Key: key, Results: rs})
	if err != nil {
		t.Fatalf("Append(%s): %v", key, err)
	}
	if !applied {
		t.Fatalf("Append(%s): unexpectedly reported duplicate", key)
	}
}

func TestAppendAssignsIdentityAndQueries(t *testing.T) {
	s, err := Open(t.TempDir(), fixedOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustAppend(t, s, "k1", res("saxpy", "cts1", "saxpy_time", 1.0), res("saxpy", "cts1", "saxpy_time", 1.1))
	mustAppend(t, s, "k2", res("stream", "cloud-c5n", "triad_bw", 90))

	if got := s.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	all := s.Query(metricsdb.Filter{})
	for i, r := range all {
		if r.ID != i+1 || r.Seq != i+1 {
			t.Fatalf("result %d has ID=%d Seq=%d, want %d/%d", i, r.ID, r.Seq, i+1, i+1)
		}
	}
	pts := s.Series(metricsdb.Filter{Benchmark: "saxpy"}, "saxpy_time")
	if len(pts) != 2 || pts[0].Value != 1.0 || pts[1].Value != 1.1 {
		t.Fatalf("Series = %+v", pts)
	}
	if got := s.Systems(); !reflect.DeepEqual(got, []string{"cloud-c5n", "cts1"}) {
		t.Fatalf("Systems = %v", got)
	}
}

func TestAppendValidatesBatch(t *testing.T) {
	s, err := Open(t.TempDir(), fixedOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Append(context.Background(), Batch{Results: []metricsdb.Result{res("a", "b", "t", 1)}}); err == nil {
		t.Fatal("append without key should fail")
	}
	if _, err := s.Append(context.Background(), Batch{Key: "k"}); err == nil {
		t.Fatal("append without results should fail")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Append(ctx, Batch{Key: "k", Results: []metricsdb.Result{res("a", "b", "t", 1)}}); err == nil {
		t.Fatal("append on a cancelled context should fail")
	}
}

func TestDuplicateKeyIsNoOp(t *testing.T) {
	s, err := Open(t.TempDir(), fixedOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustAppend(t, s, "k1", res("saxpy", "cts1", "saxpy_time", 1.0))
	applied, err := s.Append(context.Background(), Batch{
		Key:     "k1",
		Results: []metricsdb.Result{res("saxpy", "cts1", "saxpy_time", 99)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if applied {
		t.Fatal("duplicate key was applied")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after duplicate, want 1", s.Len())
	}
	if !s.HasKey("k1") || s.HasKey("k2") {
		t.Fatal("HasKey bookkeeping wrong")
	}
}

func TestReopenRecoversState(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, fixedOpts())
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, "k1", res("saxpy", "cts1", "saxpy_time", 1.0))
	mustAppend(t, s, "k2", res("saxpy", "cts1", "saxpy_time", 1.2))
	before := s.Query(metricsdb.Filter{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, fixedOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Query(metricsdb.Filter{}); !reflect.DeepEqual(got, before) {
		t.Fatalf("recovered state differs:\n got %+v\nwant %+v", got, before)
	}
	// Identity assignment continues past the recovered watermark, and
	// applied keys stay applied.
	if applied, err := s2.Append(context.Background(), Batch{
		Key: "k1", Results: []metricsdb.Result{res("x", "y", "t", 1)},
	}); err != nil || applied {
		t.Fatalf("k1 after reopen: applied=%v err=%v, want duplicate no-op", applied, err)
	}
	mustAppend(t, s2, "k3", res("saxpy", "cts1", "saxpy_time", 1.4))
	all := s2.Query(metricsdb.Filter{})
	if last := all[len(all)-1]; last.Seq != 3 || last.ID != 3 {
		t.Fatalf("post-recovery identity: ID=%d Seq=%d, want 3/3", last.ID, last.Seq)
	}
}

func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := fixedOpts()
	opts.SegmentBytes = 64 // rotate roughly every batch
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		mustAppend(t, s, "k"+string(rune('a'+i)), res("saxpy", "cts1", "saxpy_time", float64(i)))
	}
	segs, err := listNumbered(dir, segmentPrefix, segmentSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation to create several segments, got %v", segs)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// Compaction keeps only the active segment plus one snapshot.
	segs, err = listNumbered(dir, segmentPrefix, segmentSuffix)
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := listNumbered(dir, snapshotPrefix, snapshotSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || len(snaps) != 1 {
		t.Fatalf("after compaction: segments %v snapshots %v, want 1 and 1", segs, snaps)
	}
	if s.Len() != 6 {
		t.Fatalf("Len = %d after compaction, want 6", s.Len())
	}
	// A second compact with nothing new sealed is a no-op.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	before := s.Query(metricsdb.Filter{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery from snapshot + active segment reproduces the state.
	s2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Query(metricsdb.Filter{}); !reflect.DeepEqual(got, before) {
		t.Fatalf("state after snapshot recovery differs:\n got %+v\nwant %+v", got, before)
	}
	for i := 0; i < 6; i++ {
		if !s2.HasKey("k" + string(rune('a'+i))) {
			t.Fatalf("key k%c lost across snapshot recovery", 'a'+i)
		}
	}
}

func TestBackgroundCompactor(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{
		SegmentBytes: 64,
		Clock:        telemetry.FixedClock{T: time.Unix(1700000000, 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		mustAppend(t, s, "bg"+string(rune('a'+i)), res("saxpy", "cts1", "saxpy_time", float64(i)))
	}
	// Close waits for the compactor goroutine, so after Close the
	// store must still hold every result when reopened.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, fixedOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 8 {
		t.Fatalf("Len after background compaction + reopen = %d, want 8", s2.Len())
	}
}

func TestConcurrentAppend(t *testing.T) {
	s, err := Open(t.TempDir(), Options{
		SegmentBytes: 256,
		Clock:        telemetry.FixedClock{T: time.Unix(1700000000, 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				key := "g" + string(rune('0'+g)) + "-" + string(rune('0'+i))
				if _, err := s.Append(context.Background(), Batch{
					Key:     key,
					Results: []metricsdb.Result{res("saxpy", "cts1", "saxpy_time", float64(i))},
				}); err != nil {
					t.Errorf("append %s: %v", key, err)
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 80 {
		t.Fatalf("Len = %d, want 80", s.Len())
	}
	// Seqs are unique and dense.
	seen := map[int]bool{}
	for _, r := range s.Query(metricsdb.Filter{}) {
		if seen[r.Seq] {
			t.Fatalf("duplicate seq %d", r.Seq)
		}
		seen[r.Seq] = true
	}
	for i := 1; i <= 80; i++ {
		if !seen[i] {
			t.Fatalf("missing seq %d", i)
		}
	}
}

func TestCloseSemantics(t *testing.T) {
	s, err := Open(t.TempDir(), fixedOpts())
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, "k1", res("saxpy", "cts1", "saxpy_time", 1.0))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := s.Append(context.Background(), Batch{
		Key: "k2", Results: []metricsdb.Result{res("a", "b", "t", 1)},
	}); err == nil {
		t.Fatal("append after Close should fail")
	}
	if err := s.Compact(); err == nil {
		t.Fatal("compact after Close should fail")
	}
}

func TestRecoveryIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, fixedOpts())
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, "k1", res("saxpy", "cts1", "saxpy_time", 1.0))
	s.Close()
	for _, name := range []string{"notes.txt", "wal-abc.log", "snap-.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir, fixedOpts())
	if err != nil {
		t.Fatalf("reopen with foreign files: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s2.Len())
	}
}
