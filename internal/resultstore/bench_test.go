package resultstore

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/metricsdb"
)

// benchBatch builds one n-result batch with distinct keys per i.
func benchBatch(i, n int) Batch {
	rs := make([]metricsdb.Result, n)
	for j := range rs {
		rs[j] = res(fmt.Sprintf("bench-%02d", j%7), fmt.Sprintf("sys-%02d", j%5), "fom", float64(i*n+j))
	}
	return Batch{Key: fmt.Sprintf("bench-key-%08d", i), Results: rs}
}

// BenchmarkWALAppend measures the full durable-append path for one
// 5-result batch: marshal, framed write, fsync, apply. This is the
// per-push floor a single shard imposes; fsync dominates.
func BenchmarkWALAppend(b *testing.B) {
	s, err := Open(b.TempDir(), fixedOpts())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Append(context.Background(), benchBatch(i, 5)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppendMany16 measures the group-commit path: 16 batches
// (5 results each) under ONE fsync. Compare ns/op here against 16x
// BenchmarkWALAppend to see what the router's ingest workers buy by
// draining their queue into a single commit.
func BenchmarkWALAppendMany16(b *testing.B) {
	s, err := Open(b.TempDir(), fixedOpts())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const group = 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batches := make([]Batch, group)
		for g := range batches {
			batches[g] = benchBatch(i*group+g, 5)
		}
		if _, err := s.AppendMany(context.Background(), batches); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALRecovery measures reopening a store holding 1000 batches
// (5000 results): segment scan, CRC verify, JSON decode, state
// rebuild. This is the crash-restart cost a shard pays before serving.
func BenchmarkWALRecovery(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, fixedOpts())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := s.Append(context.Background(), benchBatch(i, 5)); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s2, err := Open(dir, fixedOpts())
		if err != nil {
			b.Fatal(err)
		}
		if s2.Len() != 5000 {
			b.Fatalf("recovered %d results", s2.Len())
		}
		b.StopTimer()
		s2.Close()
		b.StartTimer()
	}
}
