package caliper

import (
	"math"
	"testing"
)

// fakeClock is a manually advanced clock.
type fakeClock struct{ t float64 }

func (c *fakeClock) now() float64      { return c.t }
func (c *fakeClock) advance(d float64) { c.t += d }

func TestRegionTiming(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(clk.now)
	r.Begin("main")
	clk.advance(1)
	r.Begin("solve")
	clk.advance(2)
	if err := r.End("solve"); err != nil {
		t.Fatal(err)
	}
	clk.advance(0.5)
	if err := r.End("main"); err != nil {
		t.Fatal(err)
	}
	p, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Region("main").Total; math.Abs(got-3.5) > 1e-12 {
		t.Errorf("main total = %v", got)
	}
	if got := p.Region("main/solve").Total; math.Abs(got-2) > 1e-12 {
		t.Errorf("main/solve total = %v", got)
	}
	if len(p.Paths()) != 2 {
		t.Errorf("paths = %v", p.Paths())
	}
}

func TestRepeatedRegionStats(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(clk.now)
	for i, d := range []float64{1, 3, 2} {
		r.Begin("iter")
		clk.advance(d)
		if err := r.End("iter"); err != nil {
			t.Fatal(err)
		}
		_ = i
	}
	p, _ := r.Snapshot()
	st := p.Region("iter")
	if st.Count != 3 || st.Total != 6 || st.Min != 1 || st.Max != 3 || st.Mean() != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMismatchedEnd(t *testing.T) {
	r := NewRecorder(func() float64 { return 0 })
	r.Begin("a")
	if err := r.End("b"); err == nil {
		t.Error("mismatched End should error")
	}
	if err := r.End("a"); err != nil {
		t.Errorf("matching End after failed End: %v", err)
	}
	if err := r.End("a"); err == nil {
		t.Error("End on empty stack should error")
	}
}

func TestSnapshotWithOpenRegion(t *testing.T) {
	r := NewRecorder(func() float64 { return 0 })
	r.Begin("open")
	if _, err := r.Snapshot(); err == nil {
		t.Error("snapshot with open region should error")
	}
}

func TestWrapAndMetrics(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(clk.now)
	err := r.Wrap("kernel", func() {
		clk.advance(4)
		r.AddMetric("bytes", 100)
		r.AddMetric("bytes", 50)
	})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := r.Snapshot()
	if p.Region("kernel").Total != 4 {
		t.Errorf("kernel = %+v", p.Region("kernel"))
	}
	if p.Metrics["bytes"] != 150 {
		t.Errorf("bytes = %v", p.Metrics["bytes"])
	}
}

func TestMergeRanks(t *testing.T) {
	mk := func(total float64) *Profile {
		p := NewProfile()
		p.Regions["solve"] = RegionStat{Count: 2, Total: total, Min: total / 3, Max: 2 * total / 3}
		p.Metrics["iters"] = 10
		return p
	}
	merged := MergeRanks([]*Profile{mk(3), mk(9), mk(6)})
	st := merged.Region("solve")
	if st.Count != 6 {
		t.Errorf("count = %d", st.Count)
	}
	if st.Total != 9 { // critical rank
		t.Errorf("total = %v (want max across ranks)", st.Total)
	}
	if st.Min != 1 || st.Max != 6 {
		t.Errorf("min/max = %v/%v", st.Min, st.Max)
	}
	if merged.Metrics["iters"] != 30 {
		t.Errorf("iters = %v", merged.Metrics["iters"])
	}
}

func TestMergeEmpty(t *testing.T) {
	m := MergeRanks(nil)
	if len(m.Regions) != 0 || len(m.Metrics) != 0 {
		t.Error("merge of nothing should be empty")
	}
}

func TestExclusiveTimes(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(clk.now)
	r.Begin("main")
	clk.advance(1) // main exclusive
	r.Begin("solve")
	clk.advance(2) // solve exclusive
	r.Begin("matvec")
	clk.advance(3)
	_ = r.End("matvec")
	_ = r.End("solve")
	clk.advance(0.5) // more main exclusive
	_ = r.End("main")
	p, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Exclusive("main"); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("main exclusive = %v", got)
	}
	if got := p.Exclusive("main/solve"); math.Abs(got-2) > 1e-12 {
		t.Errorf("solve exclusive = %v", got)
	}
	if got := p.Exclusive("main/solve/matvec"); math.Abs(got-3) > 1e-12 {
		t.Errorf("matvec exclusive = %v (leaf exclusive == inclusive)", got)
	}
	if got := p.Exclusive("absent"); got != 0 {
		t.Errorf("absent = %v", got)
	}
	// Breakdown sums to the root inclusive time.
	var sum float64
	for _, v := range p.ExclusiveBreakdown() {
		sum += v
	}
	if math.Abs(sum-p.Region("main").Total) > 1e-12 {
		t.Errorf("breakdown sum %v != root inclusive %v", sum, p.Region("main").Total)
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(clk.now)
	r.Begin("main")
	clk.advance(2.5)
	_ = r.End("main")
	r.AddMetric("iterations", 12)
	p, _ := r.Snapshot()

	js, err := p.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseProfile(js)
	if err != nil {
		t.Fatal(err)
	}
	if back.Region("main").Total != 2.5 || back.Metrics["iterations"] != 12 {
		t.Errorf("round trip: %+v", back)
	}
	if _, err := ParseProfile("{not json"); err == nil {
		t.Error("bad json should fail")
	}
	if _, err := ParseProfile(`{"format":"cali-v99"}`); err == nil {
		t.Error("unknown format should fail")
	}
}
