// Package caliper is a performance-introspection library for the
// simulated HPC stack — the Go analogue of LLNL's Caliper, which the
// Benchpark paper plans to use for "function-level timings and GPU
// performance counters" with always-on profiling (Section 5).
//
// A Recorder is owned by one simulated rank; it reads time from an
// injected clock (the rank's logical clock in mpisim), tracks a stack
// of annotated regions, and produces a Profile of inclusive times per
// hierarchical region path. Profiles from many ranks merge into a
// per-run profile, and Thicket (internal/thicket) composes profiles
// across runs, scales and systems.
package caliper

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// RegionStat aggregates one region path.
type RegionStat struct {
	Count int
	Total float64 // inclusive seconds
	Min   float64
	Max   float64
}

// mean returns Total/Count.
func (s RegionStat) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Total / float64(s.Count)
}

// Profile is the output of a Recorder (or a merge of recorders):
// region path -> statistics, plus free-form metrics.
type Profile struct {
	Regions map[string]RegionStat
	Metrics map[string]float64 // counters: bytes moved, iterations, ...
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{Regions: map[string]RegionStat{}, Metrics: map[string]float64{}}
}

// Paths returns the region paths, sorted.
func (p *Profile) Paths() []string {
	out := make([]string, 0, len(p.Regions))
	for k := range p.Regions {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Region returns the stats for a path ("" stats if absent).
func (p *Profile) Region(path string) RegionStat { return p.Regions[path] }

// Recorder annotates regions against an injected clock.
type Recorder struct {
	clock func() float64
	stack []frame
	prof  *Profile
}

type frame struct {
	name  string
	start float64
}

// NewRecorder returns a recorder reading the given clock
// (e.g. a mpisim rank's Now).
func NewRecorder(clock func() float64) *Recorder {
	return &Recorder{clock: clock, prof: NewProfile()}
}

// Begin opens a region. Regions nest: Begin("solve") inside
// Begin("main") records under "main/solve".
func (r *Recorder) Begin(name string) {
	r.stack = append(r.stack, frame{name: name, start: r.clock()})
}

// End closes the innermost region; the name must match.
func (r *Recorder) End(name string) error {
	if len(r.stack) == 0 {
		return fmt.Errorf("caliper: End(%q) with no open region", name)
	}
	top := r.stack[len(r.stack)-1]
	if top.name != name {
		return fmt.Errorf("caliper: End(%q) does not match open region %q", name, top.name)
	}
	r.stack = r.stack[:len(r.stack)-1]
	elapsed := r.clock() - top.start
	path := r.path() + name
	st := r.prof.Regions[path]
	if st.Count == 0 {
		st.Min = math.Inf(1)
	}
	st.Count++
	st.Total += elapsed
	if elapsed < st.Min {
		st.Min = elapsed
	}
	if elapsed > st.Max {
		st.Max = elapsed
	}
	r.prof.Regions[path] = st
	return nil
}

// path renders the open stack as "a/b/" (empty at top level).
func (r *Recorder) path() string {
	if len(r.stack) == 0 {
		return ""
	}
	var b strings.Builder
	for _, f := range r.stack {
		b.WriteString(f.name)
		b.WriteString("/")
	}
	return b.String()
}

// Wrap times fn inside a region.
func (r *Recorder) Wrap(name string, fn func()) error {
	r.Begin(name)
	fn()
	return r.End(name)
}

// AddMetric accumulates a counter value.
func (r *Recorder) AddMetric(name string, v float64) {
	r.prof.Metrics[name] += v
}

// Snapshot returns the profile; open regions are an error.
func (r *Recorder) Snapshot() (*Profile, error) {
	if len(r.stack) != 0 {
		return nil, fmt.Errorf("caliper: %d regions still open (innermost %q)",
			len(r.stack), r.stack[len(r.stack)-1].name)
	}
	return r.prof, nil
}

// Exclusive returns the exclusive time of a region path: its
// inclusive total minus the inclusive totals of its direct children
// ("a/b" is a direct child of "a"). Negative rounding residue clamps
// to zero.
func (p *Profile) Exclusive(path string) float64 {
	st, ok := p.Regions[path]
	if !ok {
		return 0
	}
	excl := st.Total
	prefix := path + "/"
	for child, cst := range p.Regions {
		if !strings.HasPrefix(child, prefix) {
			continue
		}
		// Direct children only: no further '/' after the prefix.
		if strings.ContainsRune(child[len(prefix):], '/') {
			continue
		}
		excl -= cst.Total
	}
	if excl < 0 {
		return 0
	}
	return excl
}

// ExclusiveBreakdown returns every region path with its exclusive
// time — the flat profile view performance reports use.
func (p *Profile) ExclusiveBreakdown() map[string]float64 {
	out := make(map[string]float64, len(p.Regions))
	for path := range p.Regions {
		out[path] = p.Exclusive(path)
	}
	return out
}

// MergeRanks combines per-rank profiles into one per-run profile:
// counts sum; totals become the max across ranks (the critical rank)
// while Min/Max span all ranks. Metrics sum.
func MergeRanks(profiles []*Profile) *Profile {
	out := NewProfile()
	totals := map[string]float64{}
	for _, p := range profiles {
		for path, st := range p.Regions {
			acc := out.Regions[path]
			if acc.Count == 0 {
				acc.Min = math.Inf(1)
			}
			acc.Count += st.Count
			if st.Total > totals[path] {
				totals[path] = st.Total
			}
			if st.Min < acc.Min {
				acc.Min = st.Min
			}
			if st.Max > acc.Max {
				acc.Max = st.Max
			}
			out.Regions[path] = acc
		}
		for k, v := range p.Metrics {
			out.Metrics[k] += v
		}
	}
	for path, tot := range totals {
		st := out.Regions[path]
		st.Total = tot
		out.Regions[path] = st
	}
	return out
}
