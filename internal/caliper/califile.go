package caliper

import (
	"encoding/json"
	"fmt"
)

// caliFile is the JSON schema of a serialized profile — the simulated
// analogue of a .cali file, letting always-on profiles travel with
// shared results (Section 5) and load into Thicket elsewhere.
type caliFile struct {
	Format  string                `json:"format"`
	Regions map[string]RegionStat `json:"regions"`
	Metrics map[string]float64    `json:"metrics,omitempty"`
}

// caliFormat tags the interchange version.
const caliFormat = "cali-json-1"

// JSON serializes the profile as a .cali-style JSON document.
func (p *Profile) JSON() (string, error) {
	b, err := json.MarshalIndent(caliFile{
		Format:  caliFormat,
		Regions: p.Regions,
		Metrics: p.Metrics,
	}, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// ParseProfile reads a profile back from its JSON form.
func ParseProfile(src string) (*Profile, error) {
	var f caliFile
	if err := json.Unmarshal([]byte(src), &f); err != nil {
		return nil, fmt.Errorf("caliper: bad profile file: %w", err)
	}
	if f.Format != caliFormat {
		return nil, fmt.Errorf("caliper: unsupported profile format %q", f.Format)
	}
	p := NewProfile()
	for k, v := range f.Regions {
		p.Regions[k] = v
	}
	for k, v := range f.Metrics {
		p.Metrics[k] = v
	}
	return p, nil
}
