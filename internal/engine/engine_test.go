package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// mockRunner is a configurable Runner for exercising the engine.
type mockRunner struct {
	label      string
	n          int
	setupErr   error
	installErr error
	analyzeErr error
	execErr    func(i int) error
	execHook   func(ctx context.Context, i int)

	mu       sync.Mutex
	commits  []int
	executed []int
	analyzed bool
}

func (m *mockRunner) Label() string                     { return m.label }
func (m *mockRunner) Setup(ctx context.Context) error   { return m.setupErr }
func (m *mockRunner) Install(ctx context.Context) error { return m.installErr }
func (m *mockRunner) Analyze(ctx context.Context) error { m.analyzed = true; return m.analyzeErr }
func (m *mockRunner) Experiments() []string {
	out := make([]string, m.n)
	for i := range out {
		out[i] = fmt.Sprintf("exp-%03d", i)
	}
	return out
}
func (m *mockRunner) Execute(ctx context.Context, i int) error {
	if m.execHook != nil {
		m.execHook(ctx, i)
	}
	m.mu.Lock()
	m.executed = append(m.executed, i)
	m.mu.Unlock()
	if m.execErr != nil {
		return m.execErr(i)
	}
	return nil
}
func (m *mockRunner) Commit(ctx context.Context, i int) error {
	m.mu.Lock()
	m.commits = append(m.commits, i)
	m.mu.Unlock()
	return nil
}

func TestRunCommitsInIndexOrder(t *testing.T) {
	// Stagger executions so later indices finish first; commits must
	// still land in matrix order (the sorted merge).
	m := &mockRunner{label: "sorted@test", n: 16, execHook: func(ctx context.Context, i int) {
		time.Sleep(time.Duration(16-i) * time.Millisecond)
	}}
	rep, err := Run(context.Background(), m, Options{Jobs: 8})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Total != 16 || rep.Executed != 16 || rep.Failed != 0 || rep.Cancelled {
		t.Fatalf("report = %+v", rep)
	}
	if len(m.commits) != 16 {
		t.Fatalf("commits = %v", m.commits)
	}
	for i, c := range m.commits {
		if c != i {
			t.Fatalf("commit order broken at %d: %v", i, m.commits)
		}
	}
	if !m.analyzed {
		t.Error("analyze did not run")
	}
}

func TestRunPartialFailure(t *testing.T) {
	// Two failing experiments must not abort the matrix.
	m := &mockRunner{label: "partial@test", n: 8, execErr: func(i int) error {
		if i == 2 || i == 5 {
			return fmt.Errorf("SIGBUS in exp %d", i)
		}
		return nil
	}}
	rep, err := Run(context.Background(), m, Options{Jobs: 4})
	if err != nil {
		t.Fatalf("run should survive experiment failures: %v", err)
	}
	if rep.Executed != 8 || rep.Failed != 2 || rep.Succeeded() != 6 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Errors) != 2 {
		t.Fatalf("errors = %v", rep.Errors)
	}
	if rep.Errors[0].Experiment != "exp-002" || rep.Errors[1].Experiment != "exp-005" {
		t.Errorf("error ordering = %v", rep.Errors)
	}
	for _, se := range rep.Errors {
		if se.Stage != StageExecute || se.System != "partial@test" {
			t.Errorf("bad stage error: %+v", se)
		}
	}
	// All 8 commits still happen, failures included.
	if len(m.commits) != 8 {
		t.Errorf("commits = %v", m.commits)
	}
	if !m.analyzed {
		t.Error("analyze skipped despite partial failure being non-fatal")
	}
}

func TestRunCancellationMidMatrix(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	m := &mockRunner{label: "cancel@test", n: 32, execHook: func(ctx context.Context, i int) {
		if ran.Add(1) == 4 {
			cancel() // pull the plug a few experiments in
		}
	}}
	rep, err := Run(ctx, m, Options{Jobs: 2})
	if err == nil {
		t.Fatal("cancelled run must return an error")
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("error is not a StageError: %T %v", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("StageError must unwrap to context.Canceled, got %v", err)
	}
	if !rep.Cancelled {
		t.Error("report not marked cancelled")
	}
	if rep.Executed == 0 || rep.Executed >= rep.Total {
		t.Errorf("expected a partial matrix, got %d/%d", rep.Executed, rep.Total)
	}
	// Every unexecuted experiment carries a typed context error.
	skipped := 0
	for _, e := range rep.Errors {
		if errors.Is(e, context.Canceled) {
			skipped++
		}
	}
	if skipped != rep.Total-rep.Executed {
		t.Errorf("skipped errors = %d, want %d", skipped, rep.Total-rep.Executed)
	}
	// Executed experiments are still committed (partial results kept).
	if len(m.commits) != rep.Executed {
		t.Errorf("commits = %d, executed = %d", len(m.commits), rep.Executed)
	}
	if m.analyzed {
		t.Error("analyze must not run on a cancelled matrix")
	}
}

func TestRunSetupInstallErrors(t *testing.T) {
	m := &mockRunner{label: "s@t", n: 4, setupErr: errors.New("no workspace")}
	rep, err := Run(context.Background(), m, Options{})
	var se *StageError
	if !errors.As(err, &se) || se.Stage != StageSetup {
		t.Fatalf("setup error = %v", err)
	}
	if rep.Executed != 0 {
		t.Errorf("executed after setup failure: %+v", rep)
	}

	m = &mockRunner{label: "s@t", n: 4, installErr: errors.New("concretize failed")}
	_, err = Run(context.Background(), m, Options{})
	if !errors.As(err, &se) || se.Stage != StageInstall {
		t.Fatalf("install error = %v", err)
	}
}

func TestRunWorkerPoolBounds(t *testing.T) {
	var cur, max atomic.Int32
	m := &mockRunner{label: "bounds@test", n: 64, execHook: func(ctx context.Context, i int) {
		c := cur.Add(1)
		for {
			old := max.Load()
			if c <= old || max.CompareAndSwap(old, c) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		cur.Add(-1)
	}}
	rep, err := Run(context.Background(), m, Options{Jobs: 3})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Jobs != 3 {
		t.Errorf("resolved jobs = %d", rep.Jobs)
	}
	if got := max.Load(); got > 3 {
		t.Errorf("observed %d concurrent executions, pool bound is 3", got)
	}
	if got := max.Load(); got < 2 {
		t.Logf("note: only %d concurrent executions observed", got)
	}
}

func TestRunTimeout(t *testing.T) {
	m := &mockRunner{label: "timeout@test", n: 16, execHook: func(ctx context.Context, i int) {
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
		}
	}}
	rep, err := Run(context.Background(), m, Options{Jobs: 1, Timeout: 30 * time.Millisecond})
	if err == nil {
		t.Fatal("timeout must surface as an error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
	if !rep.Cancelled {
		t.Errorf("report = %+v", rep)
	}
}

func TestMapOrderingAndBounds(t *testing.T) {
	vals, errs := Map(context.Background(), 4, 20, func(ctx context.Context, i int) (int, error) {
		time.Sleep(time.Duration(20-i) % 5 * time.Millisecond)
		if i == 7 {
			return 0, errors.New("boom")
		}
		return i * i, nil
	})
	for i := 0; i < 20; i++ {
		if i == 7 {
			if errs[i] == nil {
				t.Error("index 7 should error")
			}
			continue
		}
		if errs[i] != nil || vals[i] != i*i {
			t.Errorf("vals[%d] = %d, err = %v", i, vals[i], errs[i])
		}
	}
}

func TestMapCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	vals, errs := Map(ctx, 4, 8, func(ctx context.Context, i int) (int, error) { return 1, nil })
	for i := range vals {
		if !errors.Is(errs[i], context.Canceled) {
			t.Errorf("errs[%d] = %v", i, errs[i])
		}
	}
}

func TestMapZero(t *testing.T) {
	vals, errs := Map(context.Background(), 0, 0, func(ctx context.Context, i int) (int, error) { return 0, nil })
	if len(vals) != 0 || len(errs) != 0 {
		t.Errorf("zero map = %v %v", vals, errs)
	}
}

func TestSeededRNGDeterministic(t *testing.T) {
	a, b := SeededRNG("exp-001"), SeededRNG("exp-001")
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same name must yield the same stream")
		}
	}
	if SeededRNG("exp-001").Int63() == SeededRNG("exp-002").Int63() {
		t.Error("different names should (almost surely) diverge")
	}
}

func TestStageErrorFormat(t *testing.T) {
	se := &StageError{Stage: StageExecute, Experiment: "saxpy_n64", System: "suite@sys", Err: errors.New("SIGBUS")}
	if got := se.Error(); got != "engine: execute stage failed for experiment saxpy_n64 (suite@sys): SIGBUS" {
		t.Errorf("error string = %q", got)
	}
	se2 := &StageError{Stage: StageInstall, System: "suite@sys", Err: errors.New("down")}
	if got := se2.Error(); got != "engine: install stage failed (suite@sys): down" {
		t.Errorf("error string = %q", got)
	}
	for st, want := range map[Stage]string{
		StageSetup: "setup", StageInstall: "install", StageExecute: "execute",
		StageCommit: "commit", StageAnalyze: "analyze", Stage(99): "unknown",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q", st, st.String())
		}
	}
}

// reportingRunner is a mockRunner that also implements ResultReporter.
type reportingRunner struct {
	mockRunner
	results []ExperimentResult
}

func (r *reportingRunner) Results() []ExperimentResult { return r.results }

func TestRunAttachesReportedResults(t *testing.T) {
	r := &reportingRunner{
		mockRunner: mockRunner{label: "suite@sys", n: 2},
		results: []ExperimentResult{
			{Experiment: "exp-000", Benchmark: "saxpy", System: "cts1",
				FOMs: map[string]string{"saxpy_time": "1.5"}},
		},
	}
	rep, err := Run(context.Background(), r, Options{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Experiment != "exp-000" {
		t.Fatalf("Report.Results = %+v", rep.Results)
	}
}

func TestRunNoResultsOnAnalyzeFailure(t *testing.T) {
	r := &reportingRunner{
		mockRunner: mockRunner{label: "suite@sys", n: 1, analyzeErr: errors.New("boom")},
		results:    []ExperimentResult{{Experiment: "exp-000"}},
	}
	rep, err := Run(context.Background(), r, Options{Jobs: 1})
	if err == nil {
		t.Fatal("expected analyze failure")
	}
	if rep != nil && len(rep.Results) != 0 {
		t.Fatalf("failed run must not publish results: %+v", rep.Results)
	}
}

func TestRunWithoutReporterLeavesResultsNil(t *testing.T) {
	m := &mockRunner{label: "plain", n: 1}
	rep, err := Run(context.Background(), m, Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results != nil {
		t.Fatalf("plain Runner produced Results: %+v", rep.Results)
	}
}
