package engine

import (
	"context"

	"repro/internal/cachekey"
)

// ExperimentCache is the engine-facing contract of the run-cache
// layer: a durable byte store keyed by content. *cachekey.Layer
// implements it; tests substitute fakes.
type ExperimentCache interface {
	// Get fetches the payload stored under key; any corruption is a
	// miss.
	Get(key cachekey.Key) ([]byte, bool)
	// Put durably stores payload under key.
	Put(key cachekey.Key, data []byte) error
}

// CacheableRunner is the optional Runner extension behind the
// incremental pipeline's "run" layer. When the Runner implements it
// and Options.Cache is set, the engine consults the cache before
// dispatching each experiment:
//
//   - ExperimentKey(i) is the content key of experiment i's execution
//     — everything that can influence its outcome (spec, system,
//     variables, software provenance), derived via cachekey. An
//     invalid key (cachekey.Key("")) opts the experiment out.
//   - On a hit, the engine calls RestoreExperiment instead of Execute:
//     the runner reinstates the cached outcome so the subsequent
//     Commit — still run through the same sorted merge, in index
//     order — observes exactly the state a fresh execution would have
//     left. The experiment's telemetry span is opened either way, so
//     a warm run's span structure is identical to a cold run's.
//   - On a miss, Execute runs normally; if it succeeds, the engine
//     stores MarshalExperiment's bytes under the key. Failed
//     executions are never cached, and cache I/O errors degrade to
//     the uncached path — the cache is an accelerator, not a
//     correctness dependency.
type CacheableRunner interface {
	Runner
	// ExperimentKey returns the content key of experiment i.
	ExperimentKey(i int) cachekey.Key
	// MarshalExperiment serializes experiment i's outcome after a
	// successful Execute.
	MarshalExperiment(i int) ([]byte, error)
	// RestoreExperiment reinstates a previously marshalled outcome for
	// experiment i. ctx carries the experiment's telemetry span. An
	// error falls back to a real execution.
	RestoreExperiment(ctx context.Context, i int, data []byte) error
}

// CacheStat is one cache layer's traffic during a run.
type CacheStat struct {
	Layer  string
	Hits   int
	Misses int
	Bytes  int64 // payload bytes replayed by hits plus written on misses
}
