package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/cachekey"
)

// cacheableRunner wraps mockRunner with the CacheableRunner contract:
// each experiment's outcome is a deterministic string derived from its
// salt, kept in outcomes[] whether executed or restored.
type cacheableRunner struct {
	mockRunner
	salts    []string // per-experiment key input; edit one to model a spec change
	outcomes []string
	execs    atomic.Int64 // real Execute calls (not replays)
	restored atomic.Int64
}

func newCacheableRunner(n int) *cacheableRunner {
	r := &cacheableRunner{mockRunner: mockRunner{label: "cached@test", n: n}}
	r.salts = make([]string, n)
	r.outcomes = make([]string, n)
	for i := range r.salts {
		r.salts[i] = fmt.Sprintf("salt-%d", i)
	}
	return r
}

func (r *cacheableRunner) Execute(ctx context.Context, i int) error {
	r.execs.Add(1)
	r.outcomes[i] = "computed:" + r.salts[i]
	return r.mockRunner.Execute(ctx, i)
}

func (r *cacheableRunner) ExperimentKey(i int) cachekey.Key {
	return cachekey.Hash(r.salts[i]).Derive("execute")
}

func (r *cacheableRunner) MarshalExperiment(i int) ([]byte, error) {
	return json.Marshal(r.outcomes[i])
}

func (r *cacheableRunner) RestoreExperiment(_ context.Context, i int, data []byte) error {
	var out string
	if err := json.Unmarshal(data, &out); err != nil {
		return err
	}
	r.outcomes[i] = out
	r.restored.Add(1)
	return nil
}

func openRunLayer(t testing.TB, dir string) *cachekey.Layer {
	t.Helper()
	st, err := cachekey.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st.Layer("run")
}

func TestWarmRunExecutesZeroExperiments(t *testing.T) {
	dir := t.TempDir()

	cold := newCacheableRunner(12)
	crep, err := Run(context.Background(), cold, Options{Jobs: 4, Cache: openRunLayer(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	if cold.execs.Load() != 12 || crep.CacheHits != 0 {
		t.Fatalf("cold run: execs=%d hits=%d", cold.execs.Load(), crep.CacheHits)
	}

	warm := newCacheableRunner(12)
	wrep, err := Run(context.Background(), warm, Options{Jobs: 4, Cache: openRunLayer(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.execs.Load(); got != 0 {
		t.Errorf("warm run executed %d experiments, want 0", got)
	}
	if wrep.CacheHits != 12 || warm.restored.Load() != 12 {
		t.Errorf("warm run: CacheHits=%d restored=%d, want 12/12", wrep.CacheHits, warm.restored.Load())
	}
	// The report is otherwise indistinguishable from the cold run's.
	if wrep.Executed != 12 || wrep.Failed != 0 || wrep.Total != 12 {
		t.Errorf("warm report = %+v", wrep)
	}
	if warm.outcomes[3] != "computed:salt-3" {
		t.Errorf("restored outcome = %q", warm.outcomes[3])
	}
	// Commits still run for replayed experiments, in index order.
	if len(warm.commits) != 12 {
		t.Fatalf("warm commits = %v", warm.commits)
	}
	for i, c := range warm.commits {
		if c != i {
			t.Fatalf("warm commit order broken: %v", warm.commits)
		}
	}
	// Per-layer accounting lands in the report and its summary.
	if len(wrep.Cache) != 1 || wrep.Cache[0].Layer != "run" ||
		wrep.Cache[0].Hits != 12 || wrep.Cache[0].Misses != 0 || wrep.Cache[0].Bytes == 0 {
		t.Errorf("cache stats = %+v", wrep.Cache)
	}
}

func TestWarmRunReExecutesOnlyTheDelta(t *testing.T) {
	dir := t.TempDir()
	cold := newCacheableRunner(8)
	if _, err := Run(context.Background(), cold, Options{Jobs: 4, Cache: openRunLayer(t, dir)}); err != nil {
		t.Fatal(err)
	}

	// One experiment's key input changes — a single spec/variable edit.
	warm := newCacheableRunner(8)
	warm.salts[5] = "salt-5-edited"
	wrep, err := Run(context.Background(), warm, Options{Jobs: 4, Cache: openRunLayer(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.execs.Load(); got != 1 {
		t.Errorf("delta run executed %d experiments, want exactly 1", got)
	}
	if wrep.CacheHits != 7 {
		t.Errorf("delta run CacheHits = %d, want 7", wrep.CacheHits)
	}
	if warm.outcomes[5] != "computed:salt-5-edited" {
		t.Errorf("edited experiment outcome = %q", warm.outcomes[5])
	}

	// The edited result was cached in turn: a third run is fully warm.
	third := newCacheableRunner(8)
	third.salts[5] = "salt-5-edited"
	if _, err := Run(context.Background(), third, Options{Jobs: 4, Cache: openRunLayer(t, dir)}); err != nil {
		t.Fatal(err)
	}
	if got := third.execs.Load(); got != 0 {
		t.Errorf("third run executed %d experiments, want 0", got)
	}
}

func TestCorruptedCacheEntryReExecutes(t *testing.T) {
	dir := t.TempDir()
	cold := newCacheableRunner(4)
	if _, err := Run(context.Background(), cold, Options{Jobs: 2, Cache: openRunLayer(t, dir)}); err != nil {
		t.Fatal(err)
	}
	// Corrupt every persisted entry.
	err := filepath.Walk(filepath.Join(dir, "run"), func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		return os.WriteFile(path, []byte("zap"), 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}

	warm := newCacheableRunner(4)
	wrep, err := Run(context.Background(), warm, Options{Jobs: 2, Cache: openRunLayer(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.execs.Load(); got != 4 {
		t.Errorf("corrupt cache: executed %d, want 4 (all cold misses)", got)
	}
	if wrep.CacheHits != 0 || wrep.Failed != 0 {
		t.Errorf("corrupt cache report: hits=%d failed=%d", wrep.CacheHits, wrep.Failed)
	}
}

// failingRestoreCache serves bytes the runner cannot restore.
type failingRestoreCache struct{ inner ExperimentCache }

func (f failingRestoreCache) Get(k cachekey.Key) ([]byte, bool) {
	if _, ok := f.inner.Get(k); ok {
		return []byte("not json"), true
	}
	return nil, false
}
func (f failingRestoreCache) Put(k cachekey.Key, d []byte) error { return f.inner.Put(k, d) }

func TestRestoreFailureFallsBackToExecute(t *testing.T) {
	dir := t.TempDir()
	cold := newCacheableRunner(3)
	if _, err := Run(context.Background(), cold, Options{Jobs: 1, Cache: openRunLayer(t, dir)}); err != nil {
		t.Fatal(err)
	}

	warm := newCacheableRunner(3)
	cache := failingRestoreCache{inner: openRunLayer(t, dir)}
	wrep, err := Run(context.Background(), warm, Options{Jobs: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.execs.Load(); got != 3 {
		t.Errorf("restore failures must re-execute: execs=%d, want 3", got)
	}
	if wrep.CacheHits != 0 || wrep.Failed != 0 {
		t.Errorf("report after restore failures: %+v", wrep)
	}
}

func TestFailedExecutionsAreNotCached(t *testing.T) {
	dir := t.TempDir()
	cold := newCacheableRunner(4)
	cold.execErr = func(i int) error {
		if i == 2 {
			return fmt.Errorf("node failure")
		}
		return nil
	}
	crep, err := Run(context.Background(), cold, Options{Jobs: 2, Cache: openRunLayer(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	if crep.Failed != 1 {
		t.Fatalf("cold failed = %d", crep.Failed)
	}

	// The failed experiment stays a miss and re-executes warm.
	warm := newCacheableRunner(4)
	wrep, err := Run(context.Background(), warm, Options{Jobs: 2, Cache: openRunLayer(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.execs.Load(); got != 1 {
		t.Errorf("warm run executed %d, want 1 (only the previously failed one)", got)
	}
	if wrep.CacheHits != 3 || wrep.Failed != 0 {
		t.Errorf("warm report: hits=%d failed=%d", wrep.CacheHits, wrep.Failed)
	}
}

func TestUncacheableRunnerIgnoresCache(t *testing.T) {
	// A plain Runner with Options.Cache set runs exactly as before.
	dir := t.TempDir()
	m := &mockRunner{label: "plain@test", n: 5}
	rep, err := Run(context.Background(), m, Options{Jobs: 2, Cache: openRunLayer(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheHits != 0 || len(rep.Cache) != 0 {
		t.Errorf("plain runner must not report cache traffic: %+v", rep)
	}
	if len(m.executed) != 5 {
		t.Errorf("executed = %v", m.executed)
	}
}

func TestTimingSummaryRendersCacheTable(t *testing.T) {
	rep := &Report{Cache: []CacheStat{{Layer: "run", Hits: 3, Misses: 1, Bytes: 2048}}}
	got := rep.TimingSummary()
	for _, want := range []string{"cache", "hits", "run", "2048"} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
}
