package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

var traceEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// tracedRun executes a mock matrix under a FixedClock tracer and
// returns the report plus the trace snapshot.
func tracedRun(t *testing.T, m *mockRunner, jobs int) (*Report, *telemetry.Trace) {
	t.Helper()
	tr := telemetry.New(telemetry.FixedClock{T: traceEpoch})
	ctx := telemetry.WithTracer(context.Background(), tr)
	rep, _ := Run(ctx, m, Options{Jobs: jobs})
	return rep, tr.Snapshot()
}

// spanCounts tallies spans by the stage-level path segment under
// engine.run ("engine.run/execute/exp-001" → "execute").
func spanCounts(trace *telemetry.Trace) (stages map[string]int, experiments map[string]int, errored int) {
	stages = map[string]int{}
	experiments = map[string]int{}
	for _, s := range trace.Spans {
		parts := strings.Split(s.Path, "/")
		if len(parts) < 2 || parts[0] != "engine.run" {
			continue
		}
		if len(parts) == 2 {
			stages[parts[1]]++
		} else {
			experiments[parts[1]]++
			if s.Error != "" {
				errored++
			}
		}
	}
	return stages, experiments, errored
}

// The trace must reconcile exactly with the report: one execute span
// per executed experiment, errored execute spans matching Failed, one
// commit span per commit, one span per matrix-level stage.
func TestTraceReconcilesWithReport(t *testing.T) {
	m := &mockRunner{label: "traced@test", n: 12, execErr: func(i int) error {
		if i%4 == 0 {
			return fmt.Errorf("boom %d", i)
		}
		return nil
	}}
	rep, trace := tracedRun(t, m, 4)
	if rep.Executed != 12 || rep.Failed != 3 {
		t.Fatalf("report = %+v", rep)
	}
	stages, experiments, errored := spanCounts(trace)
	for _, st := range []string{"setup", "install", "execute", "commit", "analyze"} {
		if stages[st] != 1 {
			t.Fatalf("stage %s: want 1 span, got %d (stages=%v)", st, stages[st], stages)
		}
	}
	if experiments["execute"] != rep.Executed {
		t.Fatalf("execute spans = %d, want Executed = %d", experiments["execute"], rep.Executed)
	}
	if experiments["commit"] != rep.Executed {
		t.Fatalf("commit spans = %d, want %d", experiments["commit"], rep.Executed)
	}
	if errored != rep.Failed {
		t.Fatalf("errored execute spans = %d, want Failed = %d", errored, rep.Failed)
	}

	// The root span's attributes restate the report.
	var root *telemetry.SpanRecord
	for i := range trace.Spans {
		if trace.Spans[i].ID == "engine.run" {
			root = &trace.Spans[i]
		}
	}
	if root == nil {
		t.Fatal("no engine.run root span")
	}
	if root.Attrs["executed"] != "12" || root.Attrs["failed"] != "3" || root.Attrs["label"] != "traced@test" {
		t.Fatalf("root attrs = %v", root.Attrs)
	}
}

// Two identical concurrent runs under a FixedClock export
// byte-identical traces — the determinism guarantee with telemetry on.
func TestTraceByteIdenticalAcrossRuns(t *testing.T) {
	run := func() string {
		m := &mockRunner{label: "det@test", n: 16, execHook: func(ctx context.Context, i int) {
			time.Sleep(time.Duration(16-i) * time.Millisecond) // adversarial interleaving
		}}
		_, trace := tracedRun(t, m, 8)
		src, err := trace.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("traces differ across identical runs:\n%s\n---\n%s", a, b)
	}
}

func TestReportTimings(t *testing.T) {
	m := &mockRunner{label: "timed@test", n: 6}
	rep, _ := tracedRun(t, m, 3)
	byStage := map[Stage]StageTiming{}
	for _, tm := range rep.Timings {
		byStage[tm.Stage] = tm
	}
	for _, st := range []Stage{StageSetup, StageInstall, StageAnalyze} {
		if byStage[st].Count != 1 {
			t.Fatalf("stage %s count = %d, timings = %+v", st, byStage[st].Count, rep.Timings)
		}
	}
	if byStage[StageExecute].Count != 6 || byStage[StageCommit].Count != 6 {
		t.Fatalf("execute/commit counts: %+v", rep.Timings)
	}
	// Timings come out in stage order.
	for i := 1; i < len(rep.Timings); i++ {
		if rep.Timings[i-1].Stage >= rep.Timings[i].Stage {
			t.Fatalf("timings out of stage order: %+v", rep.Timings)
		}
	}
	sum := rep.TimingSummary()
	for _, want := range []string{"stage", "execute", "commit", "analyze"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
}

// Without a tracer the engine must behave exactly as before: no
// timings with nonzero counts is fine, but the report still works and
// nothing panics on the nil-span path.
func TestRunWithoutTracer(t *testing.T) {
	m := &mockRunner{label: "plain@test", n: 4}
	rep, err := Run(context.Background(), m, Options{Jobs: 2})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Executed != 4 {
		t.Fatalf("report = %+v", rep)
	}
}

// Stage histograms and the queue-wait histogram land in the registry.
func TestEngineMetrics(t *testing.T) {
	m := &mockRunner{label: "metrics@test", n: 5}
	_, trace := tracedRun(t, m, 2)
	h, ok := trace.Metrics.Histograms[`engine_stage_seconds{stage="execute"}`]
	if !ok {
		t.Fatalf("missing execute stage histogram; have %v", trace.Metrics.Histograms)
	}
	if h.Count != 5 {
		t.Fatalf("execute observations = %d, want 5", h.Count)
	}
	qw, ok := trace.Metrics.Histograms["engine_queue_wait_seconds"]
	if !ok || qw.Count != 5 {
		t.Fatalf("queue wait observations = %+v", qw)
	}
	// In-flight gauge winds back down to zero.
	if g := trace.Metrics.Gauges["engine_inflight_jobs"]; g != 0 {
		t.Fatalf("inflight gauge = %v, want 0 after the run", g)
	}
}
