package engine

import (
	"context"
	"testing"
)

// BenchmarkEngineCommitPath measures the engine's fixed overhead per
// matrix: staged lifecycle, worker pool, sorted-merge commit — with
// near-free Execute bodies, so the number is the orchestration cost
// the incremental pipeline rides on.
func BenchmarkEngineCommitPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := &mockRunner{label: "bench@test", n: 64}
		if _, err := Run(context.Background(), m, Options{Jobs: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// busyKernel is a deterministic stand-in for a benchmark kernel: a
// fixed amount of arithmetic per experiment, so cold runs pay a real
// execution cost that warm runs replay away.
func busyKernel(i int) int {
	acc := i
	for k := 0; k < 2_000_000; k++ {
		acc = acc*1664525 + 1013904223
	}
	return acc
}

// kernelRunner is a cacheableRunner whose Execute performs busyKernel
// work before recording its outcome.
type kernelRunner struct {
	cacheableRunner
	sink int
}

func newKernelRunner(n int) *kernelRunner {
	r := &kernelRunner{}
	r.mockRunner = mockRunner{label: "kernel@test", n: n}
	r.salts = make([]string, n)
	r.outcomes = make([]string, n)
	for i := range r.salts {
		r.salts[i] = "kernel-salt"
	}
	return r
}

func (r *kernelRunner) Execute(ctx context.Context, i int) error {
	r.sink = busyKernel(i)
	return r.cacheableRunner.Execute(ctx, i)
}

// BenchmarkEngineRunColdKernel is the cold baseline: every experiment
// executes its kernel. Compare against BenchmarkEngineRunWarmKernel
// for the replay speedup recorded in BENCH_pipeline.json.
func BenchmarkEngineRunColdKernel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := newKernelRunner(16)
		if _, err := Run(context.Background(), m, Options{Jobs: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRunWarmKernel replays every experiment from a primed
// durable run layer: zero kernel executions per iteration.
func BenchmarkEngineRunWarmKernel(b *testing.B) {
	dir := b.TempDir()
	layer := openRunLayer(b, dir)
	if _, err := Run(context.Background(), newKernelRunner(16), Options{Jobs: 4, Cache: layer}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := newKernelRunner(16)
		rep, err := Run(context.Background(), m, Options{Jobs: 4, Cache: layer})
		if err != nil {
			b.Fatal(err)
		}
		if rep.CacheHits != rep.Total {
			b.Fatalf("warm iteration executed experiments: %+v", rep)
		}
	}
}
