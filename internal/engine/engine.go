// Package engine is the concurrent, cancellable experiment-execution
// engine behind the Benchpark orchestration path. A continuous
// benchmarking deployment runs benchmark × system × scale matrices
// (Figure 1c, Figure 10) repeatedly and unattended; the engine gives
// that matrix the properties a production orchestrator needs:
//
//   - Staged execution: a Runner exposes the four lifecycle stages
//     (setup → install → execute → analyze). Setup, install and
//     analyze run once per matrix; execute runs once per experiment.
//   - Bounded concurrency: independent experiments execute on a
//     worker pool of Options.Jobs goroutines.
//   - Deterministic results: concurrent completions are merged back
//     in experiment index order (a sorted merge), and all shared
//     side effects happen in the sequential Commit stage, so a run
//     with Jobs=N is byte-identical to Jobs=1.
//   - Cancellation: a context cancels between stages, between
//     experiment dispatches, and inside cooperating stage code.
//   - Partial failure: one failed experiment no longer aborts the
//     matrix; failures surface as typed *StageError values in the
//     Report.
//
// Wall-clock audit: the only real-time value the engine touches is
// Options.Timeout, a duration bound handed to context.WithTimeout —
// it can cancel a run but never feeds committed results. Nothing in
// the commit path reads time.Now or draws from the global math/rand
// generator; cmd/benchlint's determinism analyzer enforces this, and
// core's TestRunRepeatableByteIdentical pins the observable
// consequence (re-running a matrix is byte-identical).
//
// Observability: when the context carries a telemetry.Tracer, Run
// opens a span per stage and per experiment (execute and commit),
// observes stage latencies and queue waits into histograms, tracks
// in-flight jobs in a gauge, and summarizes stage time in
// Report.Timings. All timing flows through the tracer's injected
// clock — the engine itself still never reads real time, so the
// determinism guarantee survives with telemetry enabled.
package engine

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Stage identifies one phase of the experiment lifecycle.
type Stage int

const (
	// StageSetup generates the workspace and experiment matrix.
	StageSetup Stage = iota
	// StageInstall resolves and installs the software environments.
	StageInstall
	// StageExecute runs one experiment's payload (concurrent).
	StageExecute
	// StageCommit records one experiment's results (sequential).
	StageCommit
	// StageAnalyze extracts figures of merit over the whole matrix.
	StageAnalyze
)

func (s Stage) String() string {
	switch s {
	case StageSetup:
		return "setup"
	case StageInstall:
		return "install"
	case StageExecute:
		return "execute"
	case StageCommit:
		return "commit"
	case StageAnalyze:
		return "analyze"
	}
	return "unknown"
}

// StageError is the typed error the engine wraps every failure in:
// which stage failed, for which experiment (empty for matrix-level
// stages), on which system/matrix.
type StageError struct {
	Stage      Stage
	Experiment string // empty for setup/install/analyze failures
	System     string // the Runner's label (suite@system)
	Err        error
}

func (e *StageError) Error() string {
	if e.Experiment == "" {
		return fmt.Sprintf("engine: %s stage failed (%s): %v", e.Stage, e.System, e.Err)
	}
	return fmt.Sprintf("engine: %s stage failed for experiment %s (%s): %v",
		e.Stage, e.Experiment, e.System, e.Err)
}

func (e *StageError) Unwrap() error { return e.Err }

// Runner is the contract a matrix driver implements so the engine can
// run it. Execute is called concurrently from the worker pool and
// must only touch per-experiment state; every shared side effect
// (schedulers, metric stores, profile ensembles, files) belongs in
// Commit, which the engine calls sequentially in experiment index
// order — regardless of completion order — so results are
// deterministic. Commit is invoked for every experiment whose Execute
// ran, including ones that returned an error, letting the runner
// record the partial failure.
type Runner interface {
	// Label names the matrix for error reporting (e.g. "saxpy/openmp@cts1").
	Label() string
	Setup(ctx context.Context) error
	Install(ctx context.Context) error
	// Experiments returns the experiment names; the slice defines the
	// matrix order used for dispatch and for the Commit merge.
	Experiments() []string
	Execute(ctx context.Context, i int) error
	Commit(ctx context.Context, i int) error
	Analyze(ctx context.Context) error
}

// Options configures one engine run.
type Options struct {
	// Jobs bounds the worker pool; <=0 means runtime.NumCPU().
	Jobs int
	// Timeout, when positive, caps the whole run.
	Timeout time.Duration
	// Cache, when set and the Runner implements CacheableRunner,
	// replays previously executed experiments instead of dispatching
	// them (the incremental pipeline's "run" layer).
	Cache ExperimentCache
}

// Report is the engine's account of one matrix run. It is always
// returned, even on cancellation or a fatal stage error, so callers
// see exactly how far the matrix got.
type Report struct {
	Label string
	// TraceID is the distributed-trace identity of this run (from the
	// context's telemetry.Tracer; empty when the run is untraced). It
	// travels with the published results into the federation layer so
	// stored points name the run that produced them.
	TraceID string
	Jobs    int // resolved worker-pool size
	Total    int // experiments in the matrix
	Executed int // experiments that reached the execute stage (run or replayed)
	Failed   int // executed experiments whose Execute returned an error
	// CacheHits counts the experiments replayed from Options.Cache
	// instead of executed; Executed includes them, so a fully warm run
	// reports Executed == Total with CacheHits == Total and zero real
	// executions.
	CacheHits int
	// Cancelled is set when the context expired before the matrix
	// completed; unexecuted experiments carry a StageError wrapping
	// the context's error.
	Cancelled bool
	// Errors holds one typed error per failed or skipped experiment,
	// in experiment index order.
	Errors []*StageError
	// Err is the terminal error for fatal failures (setup, install,
	// commit, analyze, or cancellation); nil when the run finished,
	// even with partial experiment failures.
	Err *StageError
	// Timings summarizes where the run's time went, one entry per
	// stage that ran, in stage order. Span counts are always
	// populated; the seconds columns are nonzero only when the run's
	// context carried a telemetry.Tracer with a non-fixed clock.
	Timings []StageTiming
	// Results holds the per-experiment outcomes the Runner chose to
	// publish (see ResultReporter); nil when the Runner does not
	// report results or the analyze stage did not complete. This is
	// the bridge a federation layer (metricsdb.ResultsFromReport,
	// internal/resultsd) converts into durable metric records.
	Results []ExperimentResult
	// Cache holds per-layer cache-traffic accounts for the run: the
	// engine appends the "run" layer when Options.Cache is active, and
	// callers (internal/core) append upstream layers (concretize,
	// buildcache). TimingSummary renders the table.
	Cache []CacheStat
}

// ExperimentResult is one experiment's published outcome: the
// identity coordinates of the metrics database plus the raw figures
// of merit the analyze stage extracted. FOM values stay strings here
// (exactly as the workload reported them); the metricsdb bridge
// parses the numeric ones.
type ExperimentResult struct {
	Experiment string
	Benchmark  string
	Workload   string
	System     string
	FOMs       map[string]string
	Meta       map[string]string
}

// ResultReporter is an optional Runner extension. When a Runner
// implements it, Run calls Results exactly once, after a successful
// Analyze stage, and attaches the slice to Report.Results. The engine
// never calls it on a run whose analysis did not complete, so the
// published results always reflect a fully analyzed matrix.
type ResultReporter interface {
	Results() []ExperimentResult
}

// StageTiming aggregates the telemetry spans of one lifecycle stage.
type StageTiming struct {
	Stage Stage
	// Count is the number of spans the stage recorded: 1 for the
	// matrix-level stages, one per executed experiment for the
	// execute and commit stages.
	Count int
	// Seconds sums the inclusive span durations; MaxSeconds is the
	// slowest single span.
	Seconds    float64
	MaxSeconds float64
	// WallSeconds is the stage's elapsed wall time: for the execute
	// stage it is the phase duration (less than Seconds when the
	// worker pool overlapped experiments), for sequential stages it
	// equals Seconds.
	WallSeconds float64
}

// Succeeded reports the number of cleanly executed experiments.
func (r *Report) Succeeded() int { return r.Executed - r.Failed }

// TimingSummary renders the per-stage timing table, followed by the
// per-layer cache-traffic table when the run used any cache layer
// (empty string when the run recorded neither).
func (r *Report) TimingSummary() string {
	if len(r.Timings) == 0 && len(r.Cache) == 0 {
		return ""
	}
	var b strings.Builder
	if len(r.Timings) > 0 {
		fmt.Fprintf(&b, "%-8s %6s %10s %10s %10s\n", "stage", "spans", "total(s)", "max(s)", "wall(s)")
		for _, t := range r.Timings {
			fmt.Fprintf(&b, "%-8s %6d %10.3f %10.3f %10.3f\n",
				t.Stage, t.Count, t.Seconds, t.MaxSeconds, t.WallSeconds)
		}
	}
	if len(r.Cache) > 0 {
		fmt.Fprintf(&b, "%-12s %6s %8s %12s\n", "cache", "hits", "misses", "bytes")
		for _, cs := range r.Cache {
			fmt.Fprintf(&b, "%-12s %6d %8d %12d\n", cs.Layer, cs.Hits, cs.Misses, cs.Bytes)
		}
	}
	return b.String()
}

// resolveJobs applies the Options.Jobs default and cap.
func resolveJobs(jobs, n int) int {
	if jobs <= 0 {
		jobs = runtime.NumCPU()
	}
	if n > 0 && jobs > n {
		jobs = n
	}
	if jobs < 1 {
		jobs = 1
	}
	return jobs
}

// timingAcc accumulates per-stage span statistics sequentially; the
// engine folds concurrent execute durations in after the pool drains,
// so the accumulator itself needs no lock.
type timingAcc [StageAnalyze + 1]StageTiming

func (a *timingAcc) note(st Stage, secs float64) {
	t := &a[st]
	t.Count++
	t.Seconds += secs
	if secs > t.MaxSeconds {
		t.MaxSeconds = secs
	}
	t.WallSeconds += secs
}

// timings returns the entries for stages that ran, in stage order.
func (a *timingAcc) timings() []StageTiming {
	var out []StageTiming
	for st := StageSetup; st <= StageAnalyze; st++ {
		if a[st].Count == 0 {
			continue
		}
		t := a[st]
		t.Stage = st
		out = append(out, t)
	}
	return out
}

// Run drives a Runner through the full lifecycle. It returns the
// Report and, for fatal failures (setup/install/commit/analyze errors
// or cancellation), the terminal error; per-experiment execute
// failures are recorded in the Report without failing the run.
//
// When ctx carries a telemetry.Tracer, Run opens an "engine.run" root
// span with one child span per matrix stage and per experiment; all
// timestamps come from the tracer's clock, never from the engine.
func Run(ctx context.Context, r Runner, opts Options) (*Report, error) {
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	rep := &Report{Label: r.Label()}
	met := telemetry.FromContext(ctx).Metrics()
	var acc timingAcc

	ctx, root := telemetry.StartSpan(ctx, "engine.run")
	rep.TraceID = root.TraceID()
	root.SetAttr("label", rep.Label)
	defer root.End()
	defer func() {
		rep.Timings = acc.timings()
		root.SetInt("jobs", rep.Jobs)
		root.SetInt("total", rep.Total)
		root.SetInt("executed", rep.Executed)
		root.SetInt("failed", rep.Failed)
		if rep.Err != nil {
			root.SetError(rep.Err)
		}
	}()

	fatal := func(st Stage, err error) (*Report, error) {
		rep.Err = &StageError{Stage: st, System: rep.Label, Err: err}
		return rep, rep.Err
	}

	// Matrix-level front stages.
	for _, st := range []struct {
		stage Stage
		fn    func(context.Context) error
	}{
		{StageSetup, r.Setup},
		{StageInstall, r.Install},
	} {
		if err := ctx.Err(); err != nil {
			rep.Cancelled = true
			return fatal(st.stage, err)
		}
		sctx, span := telemetry.StartSpan(ctx, st.stage.String())
		err := st.fn(sctx)
		span.SetError(err)
		span.End()
		secs := span.Duration().Seconds()
		acc.note(st.stage, secs)
		stageSeconds(met, st.stage).Observe(secs)
		if err != nil {
			return fatal(st.stage, err)
		}
	}

	names := r.Experiments()
	rep.Total = len(names)
	rep.Jobs = resolveJobs(opts.Jobs, len(names))

	// Execute stage: bounded worker pool over the matrix. Each
	// experiment gets its own span; queue wait (dispatch delay behind
	// the pool) and in-flight worker count feed the registry. Span
	// durations land in a per-index slice — no lock — and fold into
	// the accumulator after the pool drains.
	//
	// With a run cache active, each worker first consults the cache
	// under the runner's experiment key: a hit restores the cached
	// outcome in place of Execute (the span still opens, so warm and
	// cold runs record identical span trees); a miss executes and, on
	// success, stores the marshalled outcome for the next run.
	rc, _ := r.(CacheableRunner)
	useCache := opts.Cache != nil && rc != nil
	phaseCtx, phase := telemetry.StartSpan(ctx, StageExecute.String())
	phaseStart := phase.StartTime()
	execSecs := make([]float64, len(names))
	queueWait := met.Histogram("engine_queue_wait_seconds")
	inflight := met.Gauge("engine_inflight_jobs")
	executed := make([]bool, len(names))
	replayed := make([]bool, len(names))
	cacheIO := make([]int64, len(names))
	_, errs := Map(ctx, rep.Jobs, len(names), func(_ context.Context, i int) (struct{}, error) {
		executed[i] = true
		// phaseCtx shares ctx's cancellation chain; deriving the
		// experiment span from it nests spans without detaching
		// Execute from the run's cancellation.
		sctx, span := telemetry.StartSpan(phaseCtx, names[i])
		queueWait.Observe(span.StartTime().Sub(phaseStart).Seconds())
		inflight.Add(1)
		var err error
		if useCache {
			if key := rc.ExperimentKey(i); key.Valid() {
				if data, ok := opts.Cache.Get(key); ok {
					if rerr := rc.RestoreExperiment(sctx, i, data); rerr == nil {
						replayed[i] = true
						cacheIO[i] = int64(len(data))
					}
				}
			}
		}
		if !replayed[i] {
			err = r.Execute(sctx, i)
			if useCache && err == nil {
				if key := rc.ExperimentKey(i); key.Valid() {
					if data, merr := rc.MarshalExperiment(i); merr == nil {
						if perr := opts.Cache.Put(key, data); perr == nil {
							cacheIO[i] = int64(len(data))
						}
					}
				}
			}
		}
		inflight.Add(-1)
		span.SetError(err)
		span.End()
		execSecs[i] = span.Duration().Seconds()
		return struct{}{}, err
	})
	phase.End()
	if useCache {
		st := CacheStat{Layer: "run"}
		for i := range names {
			if !executed[i] {
				continue
			}
			st.Bytes += cacheIO[i]
			if replayed[i] {
				st.Hits++
			} else {
				st.Misses++
			}
		}
		rep.CacheHits = st.Hits
		rep.Cache = append(rep.Cache, st)
		met.Counter(`cache_hits_total{layer="run"}`).Add(float64(st.Hits))
		met.Counter(`cache_misses_total{layer="run"}`).Add(float64(st.Misses))
		met.Counter(`cache_bytes_total{layer="run"}`).Add(float64(st.Bytes))
	}
	execHist := stageSeconds(met, StageExecute)
	for i := range names {
		if !executed[i] {
			continue
		}
		acc.note(StageExecute, execSecs[i])
		execHist.Observe(execSecs[i])
	}
	if acc[StageExecute].Count > 0 {
		acc[StageExecute].WallSeconds = phase.Duration().Seconds()
	}

	// Sorted merge: commit results in experiment index order, however
	// the concurrent executions interleaved. Commits still run for
	// already-executed experiments after a cancellation — under a
	// detached context — so the partial report reflects real state.
	commitCtx := context.WithoutCancel(ctx)
	cphaseCtx, cphase := telemetry.StartSpan(commitCtx, StageCommit.String())
	commitHist := stageSeconds(met, StageCommit)
	for i, name := range names {
		if !executed[i] {
			cause := ctx.Err()
			if cause == nil {
				cause = context.Canceled
			}
			rep.Cancelled = true
			rep.Errors = append(rep.Errors, &StageError{
				Stage: StageExecute, Experiment: name, System: rep.Label, Err: cause,
			})
			continue
		}
		rep.Executed++
		if errs[i] != nil {
			rep.Failed++
			rep.Errors = append(rep.Errors, &StageError{
				Stage: StageExecute, Experiment: name, System: rep.Label, Err: errs[i],
			})
		}
		sctx, span := telemetry.StartSpan(cphaseCtx, name)
		err := r.Commit(sctx, i)
		span.SetError(err)
		span.End()
		secs := span.Duration().Seconds()
		acc.note(StageCommit, secs)
		commitHist.Observe(secs)
		if err != nil {
			cphase.End()
			rep.Err = &StageError{Stage: StageCommit, Experiment: name, System: rep.Label, Err: err}
			return rep, rep.Err
		}
	}
	cphase.End()
	if acc[StageCommit].Count > 0 {
		acc[StageCommit].WallSeconds = cphase.Duration().Seconds()
	}
	if rep.Cancelled {
		cause := ctx.Err()
		if cause == nil {
			cause = context.Canceled
		}
		return fatal(StageExecute, cause)
	}

	if err := ctx.Err(); err != nil {
		rep.Cancelled = true
		return fatal(StageAnalyze, err)
	}
	actx, aspan := telemetry.StartSpan(ctx, StageAnalyze.String())
	aerr := r.Analyze(actx)
	aspan.SetError(aerr)
	aspan.End()
	asecs := aspan.Duration().Seconds()
	acc.note(StageAnalyze, asecs)
	stageSeconds(met, StageAnalyze).Observe(asecs)
	if aerr != nil {
		return fatal(StageAnalyze, aerr)
	}
	if rr, ok := r.(ResultReporter); ok {
		rep.Results = rr.Results()
	}
	return rep, nil
}

// stageSeconds returns the labeled stage-latency histogram.
func stageSeconds(met *telemetry.Registry, st Stage) telemetry.Histogram {
	return met.Histogram(fmt.Sprintf("engine_stage_seconds{stage=%q}", st))
}

// Map runs fn over the indices [0, n) on a bounded worker pool of
// `jobs` goroutines and returns results and errors in index order —
// the deterministic sorted merge of the concurrent completions.
// When the context is cancelled, dispatch stops and every unexecuted
// index reports the context's error; executions already in flight
// finish. Map never fails as a whole: callers inspect errs.
func Map[T any](ctx context.Context, jobs, n int, fn func(ctx context.Context, i int) (T, error)) (vals []T, errs []error) {
	vals = make([]T, n)
	errs = make([]error, n)
	if n == 0 {
		return vals, errs
	}
	jobs = resolveJobs(jobs, n)

	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := 0; i < n; i++ {
			select {
			case idx <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	done := make([]bool, n)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					continue // drain without executing
				}
				vals[i], errs[i] = fn(ctx, i)
				done[i] = true
			}
		}()
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if !done[i] && errs[i] == nil {
			if err := ctx.Err(); err != nil {
				errs[i] = err
			} else {
				errs[i] = context.Canceled
			}
		}
	}
	return vals, errs
}

// SeededRNG returns a deterministic per-experiment random source
// seeded from the experiment name. Runners that want randomized
// payloads (perturbation, sampling) must draw from a per-experiment
// source like this one rather than a shared generator, so figures of
// merit stay byte-identical whatever the worker-pool interleaving.
func SeededRNG(name string) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return rand.New(rand.NewSource(int64(h.Sum64())))
}
